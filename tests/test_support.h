// Shared fixtures and builders for the test suite.
#pragma once

#include <vector>

#include "core/factory.h"
#include "sim/machine.h"
#include "sim/schedule.h"
#include "sim/simulator.h"
#include "workload/workload.h"

namespace jsched::test {

/// Shorthand job builder (id assigned by Workload::finalize).
Job make_job(Time submit, int nodes, Duration runtime, Duration estimate = 0);

/// Build a finalized workload from jobs (estimates default to runtimes).
workload::Workload make_workload(std::vector<Job> jobs);

/// Simulate `spec` over `w` on an `nodes`-wide machine with validation on.
sim::Schedule run(const core::AlgorithmSpec& spec, const workload::Workload& w,
                  int nodes = 16);

/// A small mixed workload exercising queueing, backfilling holes and
/// over-estimation; deterministic.
workload::Workload small_mixed_workload();

}  // namespace jsched::test
