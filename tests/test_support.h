// Shared fixtures and builders for the test suite.
#pragma once

#include <cstdint>
#include <vector>

#include "core/factory.h"
#include "sim/machine.h"
#include "sim/schedule.h"
#include "sim/simulator.h"
#include "workload/workload.h"

namespace jsched::test {

/// Shorthand job builder (id assigned by Workload::finalize).
Job make_job(Time submit, int nodes, Duration runtime, Duration estimate = 0);

/// Build a finalized workload from jobs (estimates default to runtimes).
workload::Workload make_workload(std::vector<Job> jobs);

/// Simulate `spec` over `w` on an `nodes`-wide machine with validation on.
sim::Schedule run(const core::AlgorithmSpec& spec, const workload::Workload& w,
                  int nodes = 16);

/// A small mixed workload exercising queueing, backfilling holes and
/// over-estimation; deterministic.
workload::Workload small_mixed_workload();

/// Simulate `spec` over `w` and return the schedule's FNV-1a fingerprint
/// (sim::schedule_fingerprint). Two runs producing the same fingerprint
/// scheduled every job bit-identically — the one-assert witness used by
/// the golden-grid regression test and by future optimization PRs.
std::uint64_t run_fingerprint(const core::AlgorithmSpec& spec,
                              const workload::Workload& w, int nodes = 16);

}  // namespace jsched::test
