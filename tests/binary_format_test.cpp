// JWB1 binary workload format: round-trip fidelity and corruption
// detection. The format's promise is "either the exact job stream that was
// written, or a named error" — never silently wrong jobs.
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "test_support.h"
#include "util/rng.h"
#include "workload/binary.h"
#include "workload/ctc_model.h"
#include "workload/job_source.h"

namespace jsched {
namespace {

class BinaryFormatTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "/binary_format_test.jwb";
  void TearDown() override { std::remove(path_.c_str()); }

  std::string file_bytes() const {
    std::ifstream in(path_, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
  }

  void write_bytes(const std::string& bytes) const {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  void drain() const {
    workload::BinaryJobSource source(path_);
    Job j;
    while (source.next(j)) {
    }
  }
};

TEST_F(BinaryFormatTest, RoundTripsCtcWorkloadFieldExact) {
  workload::CtcModelParams params;
  params.job_count = 1000;
  const workload::Workload w = workload::generate_ctc(params, 1999);
  workload::write_binary_file(path_, w);

  const workload::Workload back = workload::read_binary_file(path_, w.name());
  ASSERT_EQ(back.size(), w.size());
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_EQ(back[i].id, w[i].id) << "job " << i;
    EXPECT_EQ(back[i].submit, w[i].submit) << "job " << i;
    EXPECT_EQ(back[i].nodes, w[i].nodes) << "job " << i;
    EXPECT_EQ(back[i].runtime, w[i].runtime) << "job " << i;
    EXPECT_EQ(back[i].estimate, w[i].estimate) << "job " << i;
    EXPECT_EQ(back[i].user, w[i].user) << "job " << i;
    EXPECT_EQ(back[i].priority_class, w[i].priority_class) << "job " << i;
    EXPECT_EQ(back[i].status, w[i].status) << "job " << i;
  }
  EXPECT_EQ(workload::fingerprint(back), workload::fingerprint(w));
}

TEST_F(BinaryFormatTest, RoundTripsRandomizedFuzzWorkloads) {
  // Adversarial field values: huge runtimes, estimate far below/above
  // runtime, negative users and classes, tiny and machine-wide jobs, equal
  // submits — everything the varint/zigzag coding has to carry. The block
  // size of 7 forces many partial blocks.
  util::Rng rng(0xfeedu);
  for (int round = 0; round < 10; ++round) {
    std::vector<Job> jobs;
    Time submit = 0;
    const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform_int(0, 40));
    for (std::size_t i = 0; i < n; ++i) {
      Job j;
      submit += rng.uniform_int(0, 1u << 20);
      j.submit = submit;
      j.nodes = static_cast<int>(rng.uniform_int(1, 4096));
      j.runtime = rng.uniform_int(1, 1ll << 40);
      j.estimate = rng.uniform_int(1, 1ll << 40);
      j.user = static_cast<std::int32_t>(rng.uniform_int(-5, 100000));
      j.priority_class = static_cast<std::int32_t>(rng.uniform_int(-3, 3));
      j.status = static_cast<JobStatus>(rng.uniform_int(0, 3));
      jobs.push_back(j);
    }
    workload::Workload w(std::move(jobs), "fuzz");
    {
      std::ofstream out(path_, std::ios::binary | std::ios::trunc);
      workload::write_binary(out, w, /*block_jobs=*/7);
    }
    const workload::Workload back = workload::read_binary_file(path_);
    ASSERT_EQ(back.size(), w.size()) << "round " << round;
    EXPECT_EQ(workload::fingerprint(back), workload::fingerprint(w))
        << "round " << round;
    for (std::size_t i = 0; i < w.size(); ++i) {
      EXPECT_EQ(back[i].runtime, w[i].runtime) << "round " << round;
      EXPECT_EQ(back[i].estimate, w[i].estimate) << "round " << round;
      EXPECT_EQ(back[i].user, w[i].user) << "round " << round;
    }
  }
}

TEST_F(BinaryFormatTest, EmptyStreamRoundTrips) {
  {
    std::ofstream out(path_, std::ios::binary);
    workload::BinaryWriter writer(out);
    writer.finish();
    EXPECT_EQ(writer.count(), 0u);
  }
  workload::BinaryJobSource source(path_);
  Job j;
  EXPECT_FALSE(source.next(j));
}

TEST_F(BinaryFormatTest, WriterRejectsOutOfOrderAndInvalidJobs) {
  std::ostringstream out;
  workload::BinaryWriter writer(out);
  Job j;
  j.submit = 100;
  j.nodes = 1;
  j.runtime = 10;
  j.estimate = 10;
  writer.add(j);
  Job earlier = j;
  earlier.submit = 99;
  EXPECT_THROW(writer.add(earlier), std::invalid_argument);
  Job invalid = j;
  invalid.nodes = 0;
  EXPECT_THROW(writer.add(invalid), std::invalid_argument);
}

TEST_F(BinaryFormatTest, TruncationAtEveryPrefixIsDetected) {
  workload::CtcModelParams params;
  params.job_count = 64;
  const workload::Workload w = workload::generate_ctc(params, 3);
  {
    std::ofstream out(path_, std::ios::binary);
    workload::write_binary(out, w, /*block_jobs=*/16);
  }
  const std::string bytes = file_bytes();
  ASSERT_GT(bytes.size(), 8u);
  // Every proper prefix must fail loudly — at open (bad header), at a
  // block boundary (truncated block), or at the missing footer.
  for (std::size_t cut = 0; cut < bytes.size(); cut += 13) {
    write_bytes(bytes.substr(0, cut));
    EXPECT_THROW(drain(), std::runtime_error) << "prefix " << cut;
  }
}

TEST_F(BinaryFormatTest, PayloadCorruptionIsDetected) {
  workload::CtcModelParams params;
  params.job_count = 256;
  const workload::Workload w = workload::generate_ctc(params, 4);
  workload::write_binary_file(path_, w);
  const std::string bytes = file_bytes();

  // Flip one byte in the middle of the (single) block payload: the block
  // checksum must catch it before any decoded job escapes.
  std::string corrupt = bytes;
  corrupt[corrupt.size() / 2] =
      static_cast<char>(corrupt[corrupt.size() / 2] ^ 0x40);
  write_bytes(corrupt);
  EXPECT_THROW(drain(), std::runtime_error);
}

TEST_F(BinaryFormatTest, HeaderCorruptionIsDetected) {
  workload::CtcModelParams params;
  params.job_count = 16;
  workload::write_binary_file(path_, workload::generate_ctc(params, 5));
  std::string bytes = file_bytes();
  bytes[0] = 'X';
  write_bytes(bytes);
  EXPECT_THROW(workload::BinaryJobSource{path_}, std::runtime_error);
}

TEST_F(BinaryFormatTest, FooterCountMismatchIsDetected) {
  workload::CtcModelParams params;
  params.job_count = 32;
  workload::write_binary_file(path_, workload::generate_ctc(params, 6));
  std::string bytes = file_bytes();
  // The footer's u64 count is 16 bytes from the end (count + fingerprint);
  // bump its low byte.
  const std::size_t count_off = bytes.size() - 16;
  bytes[count_off] = static_cast<char>(bytes[count_off] + 1);
  write_bytes(bytes);
  EXPECT_THROW(drain(), std::runtime_error);
}

TEST_F(BinaryFormatTest, StreamedReadMatchesSourceContract) {
  workload::CtcModelParams params;
  params.job_count = 300;
  const workload::Workload w = workload::generate_ctc(params, 8);
  workload::write_binary_file(path_, w);
  workload::BinaryJobSource source(path_);
  Job j;
  JobId expected = 0;
  Time prev = 0;
  while (source.next(j)) {
    EXPECT_EQ(j.id, expected++);
    EXPECT_GE(j.submit, prev);
    prev = j.submit;
  }
  EXPECT_EQ(expected, w.size());
}

}  // namespace
}  // namespace jsched
