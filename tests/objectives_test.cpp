#include "metrics/objectives.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "test_support.h"

namespace jsched::metrics {
namespace {

using test::make_job;

sim::Machine machine(int nodes = 8) {
  sim::Machine m;
  m.nodes = nodes;
  return m;
}

/// Hand-built two-job schedule:
///   job 0: submit 0, start 10, end 110, 4 nodes (response 110, run 100)
///   job 1: submit 20, start 110, end 160, 2 nodes (response 140, run 50)
sim::Schedule two_job_schedule() {
  sim::Schedule s(machine(), 2, "hand");
  s.record_start(0, 0, 10, 4);
  s.record_end(0, 110, false);
  s.record_start(1, 20, 110, 2);
  s.record_end(1, 160, false);
  return s;
}

TEST(Objectives, AverageResponseTime) {
  EXPECT_DOUBLE_EQ(average_response_time(two_job_schedule()),
                   (110.0 + 140.0) / 2.0);
}

TEST(Objectives, AverageWaitTime) {
  EXPECT_DOUBLE_EQ(average_wait_time(two_job_schedule()),
                   (10.0 + 90.0) / 2.0);
}

TEST(Objectives, AverageWeightedResponseTime) {
  // weights: 4*100 = 400 and 2*50 = 100.
  EXPECT_DOUBLE_EQ(average_weighted_response_time(two_job_schedule()),
                   (400.0 * 110.0 + 100.0 * 140.0) / 2.0);
}

TEST(Objectives, WeightNormalizedVariant) {
  EXPECT_DOUBLE_EQ(weight_normalized_response_time(two_job_schedule()),
                   (400.0 * 110.0 + 100.0 * 140.0) / 500.0);
}

TEST(Objectives, WeightedAndUnweightedAgreeOnUnitJobs) {
  // 1-node, 1-second jobs: weight = 1 for every job, so AWRT == ART.
  sim::Schedule s(machine(), 2, "unit");
  s.record_start(0, 0, 0, 1);
  s.record_end(0, 1, false);
  s.record_start(1, 0, 1, 1);
  s.record_end(1, 2, false);
  EXPECT_DOUBLE_EQ(average_response_time(s),
                   average_weighted_response_time(s));
}

TEST(Objectives, BoundedSlowdown) {
  // job 0: response 110, run 100 -> 1.1; job 1: response 140, run 50 -> 2.8.
  EXPECT_DOUBLE_EQ(average_bounded_slowdown(two_job_schedule(), 10),
                   (1.1 + 2.8) / 2.0);
  // A tiny job's slowdown is bounded by tau.
  sim::Schedule s(machine(), 1, "tiny");
  s.record_start(0, 0, 0, 1);
  s.record_end(0, 1, false);  // run 1, response 1
  EXPECT_DOUBLE_EQ(average_bounded_slowdown(s, 10), 1.0 / 10.0);
}

TEST(Objectives, MakespanAndUtilization) {
  const auto s = two_job_schedule();
  EXPECT_EQ(makespan(s), 160);
  // busy = 400 + 100 node-seconds over 8 * 160.
  EXPECT_DOUBLE_EQ(utilization(s), 500.0 / (8.0 * 160.0));
}

TEST(Objectives, IdleNodeSecondsWithinFrame) {
  const auto s = two_job_schedule();
  // Frame [0, 100): job 0 busy [10,100) with 4 nodes -> 360 busy.
  EXPECT_DOUBLE_EQ(idle_node_seconds(s, 0, 100), 8.0 * 100.0 - 360.0);
  // Frame fully idle.
  EXPECT_DOUBLE_EQ(idle_node_seconds(s, 200, 300), 800.0);
  EXPECT_THROW(idle_node_seconds(s, 100, 100), std::invalid_argument);
}

TEST(Objectives, EmptyScheduleThrows) {
  sim::Schedule s(machine(), 0, "empty");
  EXPECT_THROW(average_response_time(s), std::invalid_argument);
  EXPECT_THROW(average_weighted_response_time(s), std::invalid_argument);
}

TEST(Objectives, CancelledJobWeightUsesOccupiedTime) {
  // Cancelled at its 50 s limit while asking 2 nodes: weight 100.
  sim::Schedule s(machine(), 1, "cancel");
  s.record_start(0, 0, 0, 2);
  s.record_end(0, 50, true);
  EXPECT_DOUBLE_EQ(average_weighted_response_time(s), 100.0 * 50.0);
}

TEST(Objectives, NamedObjectivesEvaluate) {
  const auto s = two_job_schedule();
  const Objective u = unweighted_objective();
  const Objective w = weighted_objective();
  EXPECT_EQ(u.name, "average response time");
  EXPECT_DOUBLE_EQ(u.cost(s), average_response_time(s));
  EXPECT_DOUBLE_EQ(w.cost(s), average_weighted_response_time(s));
  EXPECT_TRUE(u.minimize);
}

TEST(Objectives, FilteredResponseTimes) {
  const auto s = two_job_schedule();
  // Only job 0 (submitted at 0).
  auto only0 = [](JobId id, const sim::JobRecord&) { return id == 0; };
  EXPECT_DOUBLE_EQ(average_response_time_if(s, only0), 110.0);
  EXPECT_DOUBLE_EQ(average_weighted_response_time_if(s, only0),
                   400.0 * 110.0);
  // Nobody matches -> 0.
  auto none = [](JobId, const sim::JobRecord&) { return false; };
  EXPECT_DOUBLE_EQ(average_response_time_if(s, none), 0.0);
  // Everybody matches -> plain metric.
  auto all = [](JobId, const sim::JobRecord&) { return true; };
  EXPECT_DOUBLE_EQ(average_response_time_if(s, all),
                   average_response_time(s));
}

TEST(Objectives, ClassMetrics) {
  const auto w = test::make_workload([] {
    std::vector<Job> jobs;
    Job a = make_job(0, 1, 10);
    a.priority_class = 1;
    Job b = make_job(0, 1, 10);
    b.priority_class = 0;
    return std::vector<Job>{a, b};
  }());
  sim::Schedule s(machine(), 2, "cls");
  s.record_start(0, 0, 0, 1);
  s.record_end(0, 10, false);
  s.record_start(1, 0, 100, 1);
  s.record_end(1, 110, false);
  EXPECT_DOUBLE_EQ(class_average_response_time(s, w, 1), 10.0);
  EXPECT_DOUBLE_EQ(class_average_response_time(s, w, 0), 110.0);
  EXPECT_DOUBLE_EQ(class_average_response_time(s, w, 9), 0.0);
  EXPECT_DOUBLE_EQ(fraction_within(s, w, 1, 10), 1.0);
  EXPECT_DOUBLE_EQ(fraction_within(s, w, 0, 10), 0.0);
  EXPECT_DOUBLE_EQ(fraction_within(s, w, 9, 10), 1.0);  // empty class
}

}  // namespace
}  // namespace jsched::metrics
