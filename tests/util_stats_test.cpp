#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "util/rng.h"

namespace jsched::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.sum(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic population-variance example
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, SampleVarianceUsesNMinusOne) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  // Population: m2 / n = 32 / 8 = 4; sample: m2 / (n-1) = 32 / 7.
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.sample_variance(), 32.0 / 7.0);
  EXPECT_DOUBLE_EQ(s.sample_stddev(), std::sqrt(32.0 / 7.0));
  EXPECT_GT(s.sample_stddev(), s.stddev());  // always wider for finite n
}

TEST(RunningStats, SampleVarianceZeroBelowTwoSamples) {
  RunningStats s;
  EXPECT_EQ(s.sample_variance(), 0.0);
  s.add(42.0);
  EXPECT_EQ(s.sample_variance(), 0.0);
  EXPECT_EQ(s.sample_stddev(), 0.0);
}

TEST(RunningStats, TwoSampleStddevMatchesClosedForm) {
  // For two samples a, b: sample variance = (b-a)^2 / 2.
  RunningStats s;
  s.add(10.0);
  s.add(12.0);
  EXPECT_DOUBLE_EQ(s.sample_variance(), 2.0);
  EXPECT_DOUBLE_EQ(s.variance(), 1.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats all, a, b;
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-3, 7);
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeOfShardsMatchesSinglePass) {
  // Associativity over the sharding pattern a parallel sweep produces:
  // fold 4 shards left-to-right and right-to-left; both must match the
  // single-pass statistics.
  RunningStats all;
  RunningStats shard[4];
  Rng rng(99);
  for (int i = 0; i < 4000; ++i) {
    const double x = rng.uniform(0, 1e6);
    all.add(x);
    shard[i % 4].add(x);
  }
  RunningStats left = shard[0];
  for (int i = 1; i < 4; ++i) left.merge(shard[i]);
  RunningStats right = shard[3];
  for (int i = 2; i >= 0; --i) {
    RunningStats tmp = shard[i];
    tmp.merge(right);
    right = tmp;
  }
  for (const RunningStats& merged : {left, right}) {
    EXPECT_EQ(merged.count(), all.count());
    EXPECT_NEAR(merged.mean(), all.mean(), 1e-6);
    EXPECT_NEAR(merged.variance() / all.variance(), 1.0, 1e-9);
    EXPECT_NEAR(merged.sample_variance() / all.sample_variance(), 1.0, 1e-9);
    EXPECT_EQ(merged.min(), all.min());
    EXPECT_EQ(merged.max(), all.max());
  }
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(Quantile, NearestRank) {
  const std::vector<double> v = {9, 1, 7, 3, 5};
  EXPECT_EQ(quantile(v, 0.0), 1.0);
  EXPECT_EQ(quantile(v, 0.5), 5.0);
  EXPECT_EQ(quantile(v, 1.0), 9.0);
}

TEST(Quantile, RejectsBadInput) {
  EXPECT_THROW(quantile({}, 0.5), std::invalid_argument);
  const std::vector<double> v = {1.0};
  EXPECT_THROW(quantile(v, -0.1), std::invalid_argument);
  EXPECT_THROW(quantile(v, 1.1), std::invalid_argument);
}

TEST(Histogram, BinAssignment) {
  Histogram h({10.0, 100.0, 1000.0});
  EXPECT_EQ(h.bin_of(5.0), 0u);
  EXPECT_EQ(h.bin_of(10.0), 0u);    // bounds are inclusive upper edges
  EXPECT_EQ(h.bin_of(10.5), 1u);
  EXPECT_EQ(h.bin_of(100.0), 1u);
  EXPECT_EQ(h.bin_of(999.0), 2u);
  EXPECT_EQ(h.bin_of(99999.0), 2u);  // overflow clamps to last bin
}

TEST(Histogram, CountsAndTotal) {
  Histogram h({1.0, 2.0});
  h.add(0.5);
  h.add(1.5);
  h.add(1.7);
  h.add(50.0);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.count(0), 1u);
  // 1.5, 1.7 land in bin 1; 50.0 clamps into the last bin (also 1).
  EXPECT_EQ(h.count(1), 3u);
  EXPECT_EQ(h.bin_of(50.0), 1u);
}

TEST(Histogram, RejectsBadBounds) {
  EXPECT_THROW(Histogram({}), std::invalid_argument);
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({1.0, 1.0}), std::invalid_argument);
}

TEST(Histogram, WeightsMatchCounts) {
  Histogram h({1.0, 2.0, 3.0});
  h.add(0.5);
  h.add(2.5);
  h.add(2.6);
  const auto w = h.weights();
  ASSERT_EQ(w.size(), 3u);
  EXPECT_EQ(w[0], 1.0);
  EXPECT_EQ(w[1], 0.0);
  EXPECT_EQ(w[2], 2.0);
}

TEST(GeometricBounds, PowersOfTwo) {
  const auto b = geometric_bounds(1.0, 2.0, 5);
  ASSERT_EQ(b.size(), 5u);
  EXPECT_DOUBLE_EQ(b[0], 1.0);
  EXPECT_DOUBLE_EQ(b[4], 16.0);
}

TEST(FitWeibull, RecoverParameters) {
  Rng rng(2024);
  std::vector<double> samples;
  const double shape = 0.8, scale = 120.0;
  for (int i = 0; i < 200000; ++i) samples.push_back(rng.weibull(shape, scale));
  const WeibullFit fit = fit_weibull(samples);
  EXPECT_NEAR(fit.shape / shape, 1.0, 0.05);
  EXPECT_NEAR(fit.scale / scale, 1.0, 0.05);
}

TEST(FitWeibull, RejectsDegenerateInput) {
  EXPECT_THROW(fit_weibull(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW(fit_weibull(std::vector<double>{1.0}), std::invalid_argument);
  // Non-positive samples are filtered; if fewer than 2 remain it throws.
  EXPECT_THROW(fit_weibull(std::vector<double>{-1.0, 0.0, 5.0}),
               std::invalid_argument);
}

TEST(FitWeibull, IgnoresNonPositive) {
  Rng rng(7);
  std::vector<double> samples = {-5.0, 0.0};
  for (int i = 0; i < 100000; ++i) samples.push_back(rng.weibull(1.0, 10.0));
  const WeibullFit fit = fit_weibull(samples);
  EXPECT_NEAR(fit.shape, 1.0, 0.05);
  EXPECT_NEAR(fit.scale, 10.0, 0.5);
}

}  // namespace
}  // namespace jsched::util
