#include "sim/profile.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace jsched::sim {
namespace {

TEST(Profile, StartsAtFullCapacity) {
  Profile p(16);
  EXPECT_EQ(p.total_nodes(), 16);
  EXPECT_EQ(p.capacity_at(0), 16);
  EXPECT_EQ(p.capacity_at(1'000'000), 16);
}

TEST(Profile, RejectsNonPositiveCapacity) {
  EXPECT_THROW(Profile(0), std::invalid_argument);
}

TEST(Profile, AllocateCarvesWindow) {
  Profile p(10);
  p.allocate(100, 50, 4);
  EXPECT_EQ(p.capacity_at(99), 10);
  EXPECT_EQ(p.capacity_at(100), 6);
  EXPECT_EQ(p.capacity_at(149), 6);
  EXPECT_EQ(p.capacity_at(150), 10);
}

TEST(Profile, OverlappingAllocationsStack) {
  Profile p(10);
  p.allocate(0, 100, 3);
  p.allocate(50, 100, 4);
  EXPECT_EQ(p.capacity_at(25), 7);
  EXPECT_EQ(p.capacity_at(75), 3);
  EXPECT_EQ(p.capacity_at(125), 6);
  EXPECT_EQ(p.capacity_at(150), 10);
}

TEST(Profile, ReleaseUndoesAllocate) {
  Profile p(8);
  p.allocate(10, 20, 5);
  p.release(10, 20, 5);
  EXPECT_EQ(p.capacity_at(15), 8);
  EXPECT_EQ(p.breakpoints(), 1u);  // merged back to a flat line
}

TEST(Profile, PartialReleaseForEarlyCompletion) {
  Profile p(8);
  p.allocate(0, 100, 5);  // runs 0..100 by estimate
  p.release(40, 60, 5);   // actually finished at 40
  EXPECT_EQ(p.capacity_at(20), 3);
  EXPECT_EQ(p.capacity_at(40), 8);
}

TEST(Profile, FitsChecksWholeWindow) {
  Profile p(10);
  p.allocate(50, 50, 8);
  EXPECT_TRUE(p.fits(0, 50, 10));    // ends exactly at the allocation
  EXPECT_FALSE(p.fits(0, 51, 3));    // leaks one second into it
  EXPECT_TRUE(p.fits(0, 51, 2));     // narrow enough to coexist
  EXPECT_TRUE(p.fits(100, 1000, 10));
}

TEST(Profile, EarliestFitImmediate) {
  Profile p(10);
  EXPECT_EQ(p.earliest_fit(7, 100, 10), 7);
}

TEST(Profile, EarliestFitAfterBusyWindow) {
  Profile p(10);
  p.allocate(0, 100, 8);
  EXPECT_EQ(p.earliest_fit(0, 10, 2), 0);    // fits beside
  EXPECT_EQ(p.earliest_fit(0, 10, 3), 100);  // must wait
}

TEST(Profile, EarliestFitSkipsShortGap) {
  Profile p(10);
  p.allocate(0, 100, 8);
  p.allocate(120, 100, 8);
  // Gap [100,120) is 20 long; a 30-second job of 5 nodes must go after 220.
  EXPECT_EQ(p.earliest_fit(0, 30, 5), 220);
  // A 10-second job fits in the gap.
  EXPECT_EQ(p.earliest_fit(0, 10, 5), 100);
}

TEST(Profile, EarliestFitHonorsFromBound) {
  Profile p(10);
  EXPECT_EQ(p.earliest_fit(500, 10, 1), 500);
}

TEST(Profile, EarliestFitRejectsTooWide) {
  Profile p(10);
  EXPECT_THROW(p.earliest_fit(0, 10, 11), std::invalid_argument);
}

TEST(Profile, ReservationPackingScenario) {
  // Conservative backfilling pattern: running job + two reservations.
  Profile p(16);
  p.allocate(0, 100, 10);                      // running until estimate 100
  const Time r1 = p.earliest_fit(0, 50, 10);   // must wait for the runner
  EXPECT_EQ(r1, 100);
  p.allocate(r1, 50, 10);
  const Time r2 = p.earliest_fit(0, 200, 6);   // fits beside everything
  EXPECT_EQ(r2, 0);
  p.allocate(r2, 200, 6);
  // 4 nodes free nowhere before 150... check a wide follow-up.
  EXPECT_EQ(p.earliest_fit(0, 10, 16), 200);
}

TEST(Profile, CompactDropsHistory) {
  Profile p(8);
  p.allocate(0, 10, 4);
  p.allocate(20, 10, 4);
  p.allocate(100, 10, 4);
  p.compact(50);
  EXPECT_EQ(p.capacity_at(50), 8);
  EXPECT_EQ(p.capacity_at(105), 4);
  // Past is gone, future intact.
  EXPECT_LE(p.breakpoints(), 3u);
}

TEST(Profile, CompactAtBreakpointKeepsValue) {
  Profile p(8);
  p.allocate(10, 10, 3);
  p.compact(10);
  EXPECT_EQ(p.capacity_at(10), 5);
  EXPECT_EQ(p.capacity_at(20), 8);
}

TEST(Profile, BreakpointsMergeWhenAdjacentEqual) {
  Profile p(8);
  p.allocate(0, 10, 4);
  p.allocate(10, 10, 4);  // same depth, contiguous
  // Profile is 4 over [0,20): interior breakpoint at 10 should be merged.
  EXPECT_EQ(p.capacity_at(5), 4);
  EXPECT_EQ(p.capacity_at(15), 4);
  EXPECT_EQ(p.capacity_at(20), 8);
  EXPECT_LE(p.breakpoints(), 2u);
}

TEST(Profile, ZeroNodeAllocationIsNoop) {
  Profile p(8);
  p.allocate(0, 10, 0);
  EXPECT_EQ(p.capacity_at(5), 8);
}

TEST(Profile, CompactAtFirstBreakpointIsNoop) {
  // Regression: compact(now) with `now` exactly on the first breakpoint
  // used to erase and re-emplace the front entry even though nothing
  // changes; it must leave the profile untouched (and stay idempotent).
  Profile p(8);
  p.allocate(0, 10, 3);
  p.allocate(20, 10, 5);
  const std::string before = p.dump();
  p.compact(0);  // `now` == first breakpoint key
  EXPECT_EQ(p.dump(), before);
  p.compact(0);
  EXPECT_EQ(p.dump(), before);
  // Compacting to a later breakpoint re-keys once, then becomes a no-op.
  p.compact(20);
  const std::string at20 = p.dump();
  EXPECT_EQ(p.capacity_at(20), 3);
  p.compact(20);
  EXPECT_EQ(p.dump(), at20);
}

TEST(Profile, CompactInsideFirstSegmentKeepsFrontKey) {
  // `now` inside the first segment: nothing precedes it, so the front key
  // is preserved (same as the seed implementation). `now` earlier than
  // all breakpoints is an asserted precondition — simulation time never
  // flows backwards — documented on Profile::compact.
  Profile p(8);
  p.allocate(50, 10, 3);
  const std::string before = p.dump();
  p.compact(25);
  EXPECT_EQ(p.dump(), before);
  EXPECT_EQ(p.capacity_at(25), 8);
}

TEST(Profile, InfiniteDurationAllocationSaturates) {
  Profile p(8);
  p.allocate(100, kTimeInfinity, 5);  // open-ended: [100, infinity)
  EXPECT_EQ(p.capacity_at(99), 8);
  EXPECT_EQ(p.capacity_at(100), 3);
  EXPECT_EQ(p.capacity_at(kTimeInfinity - 1), 3);
  EXPECT_EQ(p.breakpoints(), 2u);  // no breakpoint materialized at infinity
  // A window ending exactly at the open-ended range still fits...
  EXPECT_TRUE(p.fits(0, 100, 8));
  EXPECT_EQ(p.earliest_fit(0, 100, 8), 0);
  // ...and jobs within the remaining capacity run anywhere...
  EXPECT_EQ(p.earliest_fit(0, 1000, 3), 0);
  // ...but a wide job can never run once capacity is held forever.
  EXPECT_FALSE(p.fits(0, 101, 4));
  EXPECT_THROW(p.earliest_fit(0, 101, 4), std::logic_error);
  // Releasing the open-ended range restores the flat line.
  p.release(100, kTimeInfinity, 5);
  EXPECT_EQ(p.breakpoints(), 1u);
  EXPECT_EQ(p.capacity_at(kTimeInfinity - 1), 8);
}

TEST(Profile, NearInfinityStartSaturatesInsteadOfOverflowing) {
  // start + duration would overflow past kTimeInfinity: the end clamps.
  Profile p(8);
  p.allocate(kTimeInfinity - 10, 100, 3);
  EXPECT_EQ(p.capacity_at(kTimeInfinity - 11), 8);
  EXPECT_EQ(p.capacity_at(kTimeInfinity - 10), 5);
  EXPECT_EQ(p.capacity_at(kTimeInfinity - 1), 5);
  EXPECT_EQ(p.breakpoints(), 2u);
  p.release(kTimeInfinity - 10, 100, 3);
  EXPECT_EQ(p.breakpoints(), 1u);
}

TEST(Profile, EarliestFitWindowReachingInfinitySaturates) {
  // The requested window itself saturates: [t, infinity) must be fully
  // free, so the fit lands after every finite allocation.
  Profile p(8);
  p.allocate(0, 100, 8);
  EXPECT_EQ(p.earliest_fit(0, kTimeInfinity, 8), 100);
  EXPECT_TRUE(p.fits(100, kTimeInfinity, 8));
  EXPECT_FALSE(p.fits(99, kTimeInfinity, 1));
}

}  // namespace
}  // namespace jsched::sim
