#include "core/dispatch.h"

#include <gtest/gtest.h>

#include "core/factory.h"
#include "test_support.h"

namespace jsched::core {
namespace {

using test::make_job;

AlgorithmSpec spec(DispatchKind d) {
  AlgorithmSpec s;
  s.dispatch = d;
  return s;
}

TEST(HeadOnlyDispatch, BlockedHeadBlocksQueue) {
  // Wide job 1 blocks narrow job 2 although node space is free: the plain
  // greedy list schedule "may produce schedules with a relatively large
  // percentage of idle nodes" (paper §5.1).
  const auto w = test::make_workload({
      make_job(0, 6, 100),   // 0: running, leaves 2 free
      make_job(1, 4, 50),    // 1: head, needs 4 > 2 -> waits
      make_job(2, 2, 10),    // 2: would fit, must not start (FCFS fairness)
  });
  const auto s = test::run(spec(DispatchKind::kList), w, 8);
  EXPECT_EQ(s[0].start, 0);
  EXPECT_EQ(s[1].start, 100);
  EXPECT_GE(s[2].start, 100);  // strictly after the head started
}

TEST(HeadOnlyDispatch, StartsPrefixThatFits) {
  const auto w = test::make_workload({
      make_job(0, 3, 100),
      make_job(0, 3, 100),
      make_job(0, 3, 100),  // third doesn't fit on 8 nodes
  });
  const auto s = test::run(spec(DispatchKind::kList), w, 8);
  EXPECT_EQ(s[0].start, 0);
  EXPECT_EQ(s[1].start, 0);
  EXPECT_EQ(s[2].start, 100);
}

TEST(FirstFitDispatch, SkipsBlockedHead) {
  // Garey&Graham "always starts the next job for which enough resources
  // are available" — job 2 jumps the blocked head.
  const auto w = test::make_workload({
      make_job(0, 6, 100),   // 0
      make_job(1, 4, 50),    // 1: blocked
      make_job(2, 2, 10),    // 2: fits the 2 free nodes
  });
  const auto s = test::run(spec(DispatchKind::kFirstFit), w, 8);
  EXPECT_EQ(s[2].start, 2);   // starts on arrival
  EXPECT_EQ(s[1].start, 100);
}

TEST(FirstFitDispatch, TakesMultipleFittingJobs) {
  const auto w = test::make_workload({
      make_job(0, 7, 100),   // 0: leaves 1 free
      make_job(1, 2, 50),    // 1: blocked
      make_job(2, 1, 10),    // 2: fits
      make_job(3, 1, 10),    // 3: fits after 2? only 1 node free total
  });
  const auto s = test::run(spec(DispatchKind::kFirstFit), w, 8);
  EXPECT_EQ(s[2].start, 2);
  // Node freed by job 2 at t=12 lets job 3 start then (1 free node again).
  EXPECT_EQ(s[3].start, 12);
  EXPECT_EQ(s[1].start, 100);
}

TEST(FirstFitDispatch, NoEstimateKnowledgeRequired) {
  // G&G must behave identically whether estimates are tight or wildly
  // wrong — it never looks at them.
  const auto tight = test::make_workload({
      make_job(0, 6, 100, 100),
      make_job(1, 4, 50, 50),
      make_job(2, 2, 10, 10),
  });
  const auto loose = test::make_workload({
      make_job(0, 6, 100, 86400),
      make_job(1, 4, 50, 86400),
      make_job(2, 2, 10, 86400),
  });
  const auto st = test::run(spec(DispatchKind::kFirstFit), tight, 8);
  const auto sl = test::run(spec(DispatchKind::kFirstFit), loose, 8);
  for (JobId i = 0; i < tight.size(); ++i) {
    EXPECT_EQ(st[i].start, sl[i].start);
  }
}

TEST(HeadOnlyDispatch, NoEstimateKnowledgeRequired) {
  const auto tight = test::make_workload({
      make_job(0, 6, 100, 100),
      make_job(1, 4, 50, 50),
  });
  const auto loose = test::make_workload({
      make_job(0, 6, 100, 86400),
      make_job(1, 4, 50, 86400),
  });
  const auto st = test::run(spec(DispatchKind::kList), tight, 8);
  const auto sl = test::run(spec(DispatchKind::kList), loose, 8);
  for (JobId i = 0; i < tight.size(); ++i) {
    EXPECT_EQ(st[i].start, sl[i].start);
  }
}

TEST(FirstFitDispatch, FactoryRejectsNonFcfsOrder) {
  AlgorithmSpec s;
  s.order = OrderKind::kPsrs;
  s.dispatch = DispatchKind::kFirstFit;
  EXPECT_THROW(make_scheduler(s), std::invalid_argument);
}

}  // namespace
}  // namespace jsched::core
