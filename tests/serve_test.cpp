// The serve subsystem: protocol parsing, feeds, the daemon's decision
// loop, overload behavior, and the load generator.
//
// The headline test is bit-identity: serving a replayed trace through
// serve() must produce the *same schedule fingerprint* as the offline
// simulator on the same workload — the daemon is the simulator core
// behind a feed, not a reimplementation. Overload tests pin *exact* shed
// counts and queue depths (the admission path is deterministic), and the
// paced tests run under util::ManualClock so no test ever actually waits.
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/factory.h"
#include "fault/fault.h"
#include "metrics/streaming.h"
#include "serve/daemon.h"
#include "serve/feed.h"
#include "serve/loadgen.h"
#include "serve/report.h"
#include "sim/streaming.h"
#include "util/clock.h"
#include "workload/ctc_model.h"
#include "workload/job_source.h"
#include "workload/transforms.h"

namespace jsched {
namespace {

using serve::OverloadPolicy;
using serve::ParseResult;
using serve::ScriptFeed;
using serve::ServeOptions;
using serve::ServeReport;
using serve::SubmitRecord;

core::AlgorithmSpec fcfs_with(core::DispatchKind dispatch) {
  core::AlgorithmSpec spec;
  spec.order = core::OrderKind::kFcfs;
  spec.dispatch = dispatch;
  return spec;
}

/// n identical 1-node jobs submitted at t = 0 (the canonical burst).
std::vector<SubmitRecord> burst(std::size_t n, Duration runtime = 100) {
  std::vector<SubmitRecord> records(n);
  for (SubmitRecord& r : records) {
    r.submit = 0;
    r.nodes = 1;
    r.runtime = runtime;
    r.estimate = runtime;
  }
  return records;
}

// ---------------------------------------------------------------- protocol

TEST(Serve, ParsesTimedRecord) {
  SubmitRecord r;
  ASSERT_EQ(serve::parse_submit_line("@120 8 3600 7200 42", r),
            ParseResult::kRecord);
  EXPECT_EQ(r.submit, 120);
  EXPECT_EQ(r.nodes, 8);
  EXPECT_EQ(r.runtime, 3600);
  EXPECT_EQ(r.estimate, 7200);
  EXPECT_EQ(r.user, 42);
}

TEST(Serve, ParsesLiveRecordWithDefaultUser) {
  SubmitRecord r;
  ASSERT_EQ(serve::parse_submit_line("4 60 300", r), ParseResult::kRecord);
  EXPECT_EQ(r.submit, -1);
  EXPECT_EQ(r.nodes, 4);
  EXPECT_EQ(r.runtime, 60);
  EXPECT_EQ(r.estimate, 300);
  EXPECT_EQ(r.user, 0);
}

TEST(Serve, ParseSkipsCommentsAndBlanks) {
  SubmitRecord r;
  EXPECT_EQ(serve::parse_submit_line("", r), ParseResult::kSkip);
  EXPECT_EQ(serve::parse_submit_line("   ", r), ParseResult::kSkip);
  EXPECT_EQ(serve::parse_submit_line("# a comment", r), ParseResult::kSkip);
}

TEST(Serve, ParseRecognizesEndSentinel) {
  SubmitRecord r;
  EXPECT_EQ(serve::parse_submit_line("end", r), ParseResult::kEnd);
}

TEST(Serve, ParseStripsCarriageReturn) {
  SubmitRecord r;
  ASSERT_EQ(serve::parse_submit_line("2 10 10\r", r), ParseResult::kRecord);
  EXPECT_EQ(r.nodes, 2);
}

TEST(Serve, ParseRejectsMalformedLines) {
  SubmitRecord r;
  std::string error;
  EXPECT_EQ(serve::parse_submit_line("1 2", r, &error), ParseResult::kError);
  EXPECT_FALSE(error.empty());
  EXPECT_EQ(serve::parse_submit_line("one two three", r), ParseResult::kError);
  EXPECT_EQ(serve::parse_submit_line("0 10 10", r), ParseResult::kError);
  EXPECT_EQ(serve::parse_submit_line("1 0 10", r), ParseResult::kError);
  EXPECT_EQ(serve::parse_submit_line("1 10 0", r), ParseResult::kError);
  EXPECT_EQ(serve::parse_submit_line("@-5 1 10 10", r), ParseResult::kError);
  EXPECT_EQ(serve::parse_submit_line("1 2 3 4 5 6", r), ParseResult::kError);
}

TEST(Serve, ScriptFeedRejectsUnsortedOrLiveRecords) {
  std::vector<SubmitRecord> unsorted(2);
  unsorted[0].submit = 10;
  unsorted[1].submit = 5;
  EXPECT_THROW(ScriptFeed feed(unsorted), std::invalid_argument);

  std::vector<SubmitRecord> live(1);  // submit = -1
  EXPECT_THROW(ScriptFeed feed(live), std::invalid_argument);
}

// ------------------------------------------------------------ bit-identity

metrics::StreamedMetrics run_offline(const core::AlgorithmSpec& spec,
                                     const workload::Workload& w, int nodes) {
  const sim::Machine machine{nodes};
  auto scheduler = core::make_scheduler(spec);
  workload::WorkloadSource source(w);
  metrics::StreamingAggregator aggregator(machine.nodes);
  sim::simulate_stream(machine, *scheduler, source, aggregator, {});
  return aggregator.finish();
}

ServeReport run_served(const core::AlgorithmSpec& spec,
                       const workload::Workload& w, int nodes) {
  workload::WorkloadSource source(w);
  serve::JobSourceFeed feed(source);
  ServeOptions options;
  options.machine.nodes = nodes;
  options.spec = spec;
  options.speed = 0;  // free-run
  return serve::serve(feed, options);
}

const workload::Workload& replay_workload() {
  static const workload::Workload w = [] {
    workload::CtcModelParams params;
    params.job_count = 1500;
    return workload::trim_to_machine(workload::generate_ctc(params, 1999),
                                     256);
  }();
  return w;
}

TEST(Serve, ReplayIsBitIdenticalToOfflineSimulatorEasy) {
  const auto& w = replay_workload();
  const metrics::StreamedMetrics offline =
      run_offline(fcfs_with(core::DispatchKind::kEasy), w, 256);
  const ServeReport served =
      run_served(fcfs_with(core::DispatchKind::kEasy), w, 256);

  ASSERT_TRUE(served.has_metrics);
  EXPECT_EQ(served.submitted, w.size());
  EXPECT_EQ(served.completed, w.size());
  EXPECT_EQ(served.schedule_fnv, offline.schedule_fnv);
  EXPECT_EQ(served.metrics.art, offline.art);    // bit-identical
  EXPECT_EQ(served.metrics.awrt, offline.awrt);  // bit-identical
  EXPECT_EQ(served.metrics.makespan, offline.makespan);
  EXPECT_EQ(served.virtual_makespan, offline.makespan);
  EXPECT_EQ(served.shed_capacity + served.shed_backlog, 0u);
  EXPECT_EQ(served.decision_latency_ns.count(), served.decisions);
  EXPECT_GT(served.decisions, 0u);
}

TEST(Serve, ReplayIsBitIdenticalToOfflineSimulatorConservative) {
  const auto& w = replay_workload();
  const metrics::StreamedMetrics offline =
      run_offline(fcfs_with(core::DispatchKind::kConservative), w, 256);
  const ServeReport served =
      run_served(fcfs_with(core::DispatchKind::kConservative), w, 256);

  ASSERT_TRUE(served.has_metrics);
  EXPECT_EQ(served.completed, w.size());
  EXPECT_EQ(served.schedule_fnv, offline.schedule_fnv);
  EXPECT_EQ(served.metrics.art, offline.art);
  EXPECT_EQ(served.metrics.utilization, offline.utilization);
}

TEST(Serve, FreeRunKeepsAdmissionQueueBounded) {
  // The whole point of poll_at = min(t, next_submit): a replayed trace
  // streams through the daemon instead of being inhaled into the queue.
  const auto& w = replay_workload();
  workload::WorkloadSource source(w);
  serve::JobSourceFeed feed(source);
  ServeOptions options;
  options.machine.nodes = 256;
  options.spec = fcfs_with(core::DispatchKind::kEasy);
  options.queue_capacity = 64;
  const ServeReport report = serve::serve(feed, options);
  EXPECT_EQ(report.completed, w.size());
  EXPECT_LE(report.peak_admission_queue, 64u);
  // Arrivals are spread in time, so the queue never even approaches the
  // workload size.
  EXPECT_LT(report.peak_admission_queue, w.size() / 4);
}

// ---------------------------------------------------------------- overload

TEST(Serve, ShedPolicyDropsExactOverflowOfABurst) {
  ScriptFeed feed(burst(10));
  ServeOptions options;
  options.machine.nodes = 16;
  options.spec = fcfs_with(core::DispatchKind::kEasy);
  options.queue_capacity = 4;
  options.overload = OverloadPolicy::kShed;
  const ServeReport report = serve::serve(feed, options);

  EXPECT_EQ(report.shed_capacity, 6u);  // 10 arrive, 4 fit
  EXPECT_EQ(report.shed_backlog, 0u);
  EXPECT_EQ(report.submitted, 4u);
  EXPECT_EQ(report.completed, 4u);
  EXPECT_EQ(report.peak_admission_queue, 4u);
  EXPECT_EQ(report.delayed_admissions, 0u);
}

TEST(Serve, BlockPolicyDelaysButNeverDropsABurst) {
  ScriptFeed feed(burst(10));
  ServeOptions options;
  options.machine.nodes = 16;
  options.spec = fcfs_with(core::DispatchKind::kEasy);
  options.queue_capacity = 4;
  options.overload = OverloadPolicy::kBlock;
  const ServeReport report = serve::serve(feed, options);

  EXPECT_EQ(report.shed_capacity, 0u);
  EXPECT_EQ(report.submitted, 10u);  // everyone gets in eventually
  EXPECT_EQ(report.completed, 10u);
  EXPECT_EQ(report.delayed_admissions, 6u);  // 10 arrive, 4 fit immediately
  EXPECT_EQ(report.peak_admission_queue, 4u);
}

TEST(Serve, MaxBacklogShedsAcrossBothQueues) {
  // One node, serial 50 s jobs: the backlog guard counts the scheduler's
  // queue too, so only 3 of the 10 burst jobs are ever admitted.
  ScriptFeed feed(burst(10, /*runtime=*/50));
  ServeOptions options;
  options.machine.nodes = 1;
  options.spec = fcfs_with(core::DispatchKind::kEasy);
  options.queue_capacity = 16;
  options.overload = OverloadPolicy::kShed;
  options.max_backlog = 3;
  const ServeReport report = serve::serve(feed, options);

  EXPECT_EQ(report.shed_backlog, 7u);
  EXPECT_EQ(report.shed_capacity, 0u);
  EXPECT_EQ(report.submitted, 3u);
  EXPECT_EQ(report.completed, 3u);
}

TEST(Serve, RejectsJobsWiderThanTheMachine) {
  std::vector<SubmitRecord> records = burst(3);
  records[1].nodes = 500;  // machine has 16
  ScriptFeed feed(records);
  ServeOptions options;
  options.machine.nodes = 16;
  options.spec = fcfs_with(core::DispatchKind::kEasy);
  const ServeReport report = serve::serve(feed, options);

  EXPECT_EQ(report.rejected_invalid, 1u);
  EXPECT_EQ(report.submitted, 2u);
  EXPECT_EQ(report.completed, 2u);
}

// ---------------------------------------------------- pacing (ManualClock)

TEST(Serve, PacedRunUnderManualClockIsDeterministic) {
  std::vector<SubmitRecord> records(3);
  for (std::size_t i = 0; i < records.size(); ++i) {
    records[i].submit = static_cast<Time>(10 * i);
    records[i].nodes = 1;
    records[i].runtime = 5;
    records[i].estimate = 5;
  }
  ScriptFeed feed(records);
  util::ManualClock clock;
  ServeOptions options;
  options.machine.nodes = 4;
  options.spec = fcfs_with(core::DispatchKind::kEasy);
  options.speed = 100.0;  // 100 virtual seconds per wall second
  options.clock = &clock;
  const ServeReport report = serve::serve(feed, options);

  EXPECT_EQ(report.completed, 3u);
  EXPECT_EQ(report.virtual_makespan, 25);  // last job: submit 20 + 5 s
  // The fake clock never moves during a decision: latencies read exactly 0.
  EXPECT_EQ(report.decision_latency_ns.max(), 0u);
  // Virtual second 25 at speed 100 falls due 0.25 wall seconds after the
  // epoch; the paced loop slept the fake clock exactly there.
  EXPECT_GE(report.wall_seconds, 0.25);
  EXPECT_LT(report.wall_seconds, 0.30);
}

TEST(Serve, PacedReplayMatchesFreeRunFingerprint) {
  // Pacing changes when decisions happen in wall time, never what they are.
  const auto& w = replay_workload();
  const ServeReport free_run =
      run_served(fcfs_with(core::DispatchKind::kEasy), w, 256);

  workload::WorkloadSource source(w);
  serve::JobSourceFeed feed(source);
  util::ManualClock clock;
  ServeOptions options;
  options.machine.nodes = 256;
  options.spec = fcfs_with(core::DispatchKind::kEasy);
  options.speed = 100000.0;
  options.clock = &clock;
  const ServeReport paced = serve::serve(feed, options);

  EXPECT_EQ(paced.completed, free_run.completed);
  EXPECT_EQ(paced.schedule_fnv, free_run.schedule_fnv);
}

// ------------------------------------------------------------ drain / abort

TEST(Serve, DrainRequestStopsIntakeAndFinishesAdmittedWork) {
  workload::CtcModelParams params;
  params.job_count = 400;
  const workload::Workload w =
      workload::trim_to_machine(workload::generate_ctc(params, 7), 64);
  workload::WorkloadSource source(w);
  serve::JobSourceFeed feed(source);

  int rounds = 0;
  ServeOptions options;
  options.machine.nodes = 64;
  options.spec = fcfs_with(core::DispatchKind::kEasy);
  options.poll_signal = [&rounds]() { return ++rounds > 50 ? 1 : 0; };
  const ServeReport report = serve::serve(feed, options);

  EXPECT_TRUE(report.drained);
  EXPECT_FALSE(report.aborted);
  EXPECT_GT(report.submitted, 0u);
  EXPECT_LT(report.submitted, w.size());  // intake stopped early...
  EXPECT_EQ(report.completed, report.submitted);  // ...but admitted work ran
  ASSERT_TRUE(report.has_metrics);
  EXPECT_NE(report.schedule_fnv, 0u);
}

TEST(Serve, AbortRequestReturnsImmediately) {
  ScriptFeed feed(burst(5));
  ServeOptions options;
  options.machine.nodes = 16;
  options.spec = fcfs_with(core::DispatchKind::kEasy);
  options.poll_signal = []() { return 2; };
  const ServeReport report = serve::serve(feed, options);

  EXPECT_TRUE(report.aborted);
  EXPECT_EQ(report.submitted, 0u);
  EXPECT_FALSE(report.has_metrics);
}

// -------------------------------------------------------------- transports

TEST(Serve, FdLineFeedServesAPipe) {
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  const std::string script =
      "# two timed jobs, one junk line\n"
      "@0 2 10 10\n"
      "this is not a job\n"
      "@5 1 20 30 7\n"
      "end\n";
  ASSERT_EQ(write(fds[1], script.data(), script.size()),
            static_cast<ssize_t>(script.size()));
  close(fds[1]);

  serve::FdLineFeed feed(fds[0], /*tail=*/false, /*close_fd=*/true);
  ServeOptions options;
  options.machine.nodes = 4;
  options.spec = fcfs_with(core::DispatchKind::kEasy);
  const ServeReport report = serve::serve(feed, options);

  EXPECT_EQ(feed.parse_errors(), 1u);
  EXPECT_EQ(report.submitted, 2u);
  EXPECT_EQ(report.completed, 2u);
  // Job 0: [0, 10). Job 1: submits at 5, 2 free nodes, starts at once.
  EXPECT_EQ(report.virtual_makespan, 25);
}

TEST(Serve, IdleLiveFeedSleepsInsteadOfSpinning) {
  // An open pipe with nothing buffered: next_submit() is kTimeInfinity and
  // the local event horizon is too. The replay gate must not fire on
  // inf <= inf — the loop has to fall through to the idle sleep (and in
  // paced mode must never map kTimeInfinity onto the wall clock).
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  serve::FdLineFeed feed(fds[0], /*tail=*/false, /*close_fd=*/true);

  util::ManualClock clock;
  int rounds = 0;
  const int wfd = fds[1];
  ServeOptions options;
  options.machine.nodes = 4;
  options.spec = fcfs_with(core::DispatchKind::kEasy);
  options.speed = 1.0;  // paced — the pre-fix UB path
  options.clock = &clock;
  options.poll_signal = [&rounds, wfd]() {
    if (++rounds == 5) {
      const std::string script = "1 5 5\nend\n";
      EXPECT_EQ(write(wfd, script.data(), script.size()),
                static_cast<ssize_t>(script.size()));
      close(wfd);
    }
    return 0;
  };
  const ServeReport report = serve::serve(feed, options);

  EXPECT_EQ(report.submitted, 1u);
  EXPECT_EQ(report.completed, 1u);
  // The live job was stamped at virtual 0 and ran 5 s; the idle rounds
  // before it arrived slept poll_granularity each on the fake clock, so
  // wall time advanced past the 5 s due point instead of spinning at 0.
  EXPECT_GE(report.wall_seconds, 5.0);
  EXPECT_LT(report.wall_seconds, 6.0);
}

TEST(Serve, FdLineFeedDeliversFinalLineWithoutNewline) {
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  const std::string script = "@0 1 5 5\n@3 2 7 7";  // last line unterminated
  ASSERT_EQ(write(fds[1], script.data(), script.size()),
            static_cast<ssize_t>(script.size()));
  close(fds[1]);

  serve::FdLineFeed feed(fds[0], /*tail=*/false, /*close_fd=*/true);
  std::vector<SubmitRecord> out;
  while (feed.poll(kTimeInfinity, out)) {
  }
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[1].submit, 3);
  EXPECT_EQ(out[1].nodes, 2);
  EXPECT_EQ(feed.parse_errors(), 0u);
}

TEST(Serve, FdLineFeedEndsOnHardReadError) {
  // A dead descriptor: read() fails with EBADF, not EAGAIN. Even a tail
  // feed must end rather than report "more data coming" forever.
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  close(fds[0]);
  close(fds[1]);
  serve::FdLineFeed feed(fds[0], /*tail=*/true, /*close_fd=*/false);
  std::vector<SubmitRecord> out;
  EXPECT_FALSE(feed.poll(kTimeInfinity, out));
  EXPECT_TRUE(out.empty());
}

TEST(Serve, TcpFeedServesALocalhostClient) {
  serve::TcpFeed feed(0);  // ephemeral port
  ASSERT_GT(feed.port(), 0);

  const int client = socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(client, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(feed.port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(connect(client, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string script = "@0 1 5 5\n@2 2 4 4\nend\n";
  ASSERT_EQ(write(client, script.data(), script.size()),
            static_cast<ssize_t>(script.size()));
  close(client);

  ServeOptions options;
  options.machine.nodes = 4;
  options.spec = fcfs_with(core::DispatchKind::kEasy);
  const ServeReport report = serve::serve(feed, options);

  EXPECT_EQ(report.submitted, 2u);
  EXPECT_EQ(report.completed, 2u);
  EXPECT_EQ(feed.parse_errors(), 0u);
}

TEST(Serve, TcpFeedFlushesClientFinalLineOnClose) {
  serve::TcpFeed feed(0);
  ASSERT_GT(feed.port(), 0);

  const int client = socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(client, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(feed.port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(connect(client, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  // The sentinel lacks its newline; the hangup itself must terminate it,
  // or the daemon would wait on an already-closed client forever.
  const std::string script = "@0 1 2 2\nend";
  ASSERT_EQ(write(client, script.data(), script.size()),
            static_cast<ssize_t>(script.size()));
  close(client);

  ServeOptions options;
  options.machine.nodes = 4;
  options.spec = fcfs_with(core::DispatchKind::kEasy);
  const ServeReport report = serve::serve(feed, options);

  EXPECT_EQ(report.submitted, 1u);
  EXPECT_EQ(report.completed, 1u);
  EXPECT_EQ(feed.parse_errors(), 0u);
}

// ----------------------------------------------------------------- loadgen

std::vector<SubmitRecord> drain_source(serve::OpenLoopSource& source) {
  std::vector<SubmitRecord> all;
  while (source.poll(kTimeInfinity, all)) {
  }
  return all;
}

TEST(Serve, LoadgenIsDeterministicInSeed) {
  serve::OpenLoopConfig config;
  config.rate = 1.0;
  config.job_count = 50;
  config.seed = 123;
  serve::OpenLoopSource a(config);
  serve::OpenLoopSource b(config);
  const auto ra = drain_source(a);
  const auto rb = drain_source(b);

  ASSERT_EQ(ra.size(), 50u);
  ASSERT_EQ(rb.size(), 50u);
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].submit, rb[i].submit);
    EXPECT_EQ(ra[i].nodes, rb[i].nodes);
    EXPECT_EQ(ra[i].runtime, rb[i].runtime);
    EXPECT_EQ(ra[i].estimate, rb[i].estimate);
    EXPECT_EQ(ra[i].user, rb[i].user);
  }
  // Submits are non-decreasing and shapes respect the config bounds.
  for (std::size_t i = 0; i < ra.size(); ++i) {
    if (i > 0) {
      EXPECT_GE(ra[i].submit, ra[i - 1].submit);
    }
    EXPECT_GE(ra[i].nodes, 1);
    EXPECT_LE(ra[i].nodes, config.nodes_max);
    EXPECT_GE(ra[i].runtime, 1);
    EXPECT_GE(ra[i].estimate, ra[i].runtime);
  }
}

TEST(Serve, LoadgenDifferentSeedsDiffer) {
  serve::OpenLoopConfig config;
  config.rate = 1.0;
  config.job_count = 50;
  config.seed = 1;
  serve::OpenLoopSource a(config);
  config.seed = 2;
  serve::OpenLoopSource b(config);
  const auto ra = drain_source(a);
  const auto rb = drain_source(b);
  bool any_diff = false;
  for (std::size_t i = 0; i < std::min(ra.size(), rb.size()); ++i) {
    if (ra[i].submit != rb[i].submit || ra[i].runtime != rb[i].runtime) {
      any_diff = true;
      break;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(Serve, LoadgenCronTemplatesFireOnSchedule) {
  serve::OpenLoopConfig config;
  config.rate = 0.0;  // crons only
  config.horizon = 50;
  serve::CronTemplate cron;
  cron.period = 10;
  cron.offset = 5;
  cron.nodes = 3;
  cron.runtime = 7;
  cron.estimate = 8;
  cron.user = 99;
  config.crons.push_back(cron);
  serve::OpenLoopSource source(config);
  const auto records = drain_source(source);

  ASSERT_EQ(records.size(), 5u);  // 5, 15, 25, 35, 45
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].submit, static_cast<Time>(5 + 10 * i));
    EXPECT_EQ(records[i].nodes, 3);
    EXPECT_EQ(records[i].runtime, 7);
    EXPECT_EQ(records[i].estimate, 8);
    EXPECT_EQ(records[i].user, 99);
  }
}

TEST(Serve, LoadgenValidatesItsConfig) {
  serve::OpenLoopConfig config;
  config.rate = 1.0;  // no horizon, no job_count: unbounded stream
  EXPECT_THROW(serve::OpenLoopSource source(config), std::invalid_argument);

  config.rate = 0.0;  // nothing configured at all
  EXPECT_THROW(serve::OpenLoopSource source(config), std::invalid_argument);

  config.rate = -1.0;
  config.job_count = 10;
  EXPECT_THROW(serve::OpenLoopSource source(config), std::invalid_argument);
}

TEST(Serve, DaemonServesLoadgenEndToEnd) {
  serve::OpenLoopConfig config;
  config.rate = 0.5;
  config.job_count = 200;
  config.seed = 11;
  config.nodes_max = 16;
  serve::OpenLoopSource source(config);

  ServeOptions options;
  options.machine.nodes = 64;
  options.spec = fcfs_with(core::DispatchKind::kEasy);
  const ServeReport report = serve::serve(source, options);

  EXPECT_EQ(report.submitted, 200u);
  EXPECT_EQ(report.completed, 200u);
  ASSERT_TRUE(report.has_metrics);
  EXPECT_GT(report.metrics.utilization, 0.0);
}

// ------------------------------------------------------------------ report

TEST(Serve, SummaryJsonCarriesTheKeyFields) {
  ScriptFeed feed(burst(4));
  ServeOptions options;
  options.machine.nodes = 16;
  options.spec = fcfs_with(core::DispatchKind::kEasy);
  const ServeReport report = serve::serve(feed, options);

  serve::ServeRunMeta meta;
  meta.label = "test-run";
  meta.source = "script:burst";
  const std::string json = serve::serve_run_json(meta, report, 0);
  EXPECT_NE(json.find("\"label\": \"test-run\""), std::string::npos);
  EXPECT_NE(json.find("\"submitted\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"completed\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"decision_latency_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"schedule_fnv\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  // Fault-free, journal-free runs carry no resilience/recovery sections —
  // the JSON stays byte-compatible with pre-robustness consumers.
  EXPECT_EQ(json.find("\"resilience\""), std::string::npos);
  EXPECT_EQ(json.find("\"recovery\""), std::string::npos);
}

// ------------------------------------------------------------------ faults

TEST(Serve, FaultyServeIsBitIdenticalToFaultySimulator) {
  // The ISSUE acceptance check: serving a trace through a TraceInjector
  // must reproduce sim::simulate_stream's faulty schedule bit for bit,
  // with consistent kill/requeue counters.
  const workload::Workload& w = replay_workload();
  fault::TraceInjector injector(
      {{20'000, -64}, {100'000, +64}, {250'000, -128}, {400'000, +128}}, 256);
  fault::FaultOptions faults;
  faults.trace = &injector.trace();

  const sim::Machine machine{256};
  auto scheduler = core::make_scheduler(fcfs_with(core::DispatchKind::kEasy));
  workload::WorkloadSource offline_source(w);
  metrics::StreamingAggregator aggregator(machine.nodes);
  sim::StreamOptions stream_options;
  stream_options.faults = faults;
  sim::simulate_stream(machine, *scheduler, offline_source, aggregator,
                       stream_options);
  const metrics::StreamedMetrics offline = aggregator.finish();

  workload::WorkloadSource source(w);
  serve::JobSourceFeed feed(source);
  ServeOptions options;
  options.machine.nodes = 256;
  options.spec = fcfs_with(core::DispatchKind::kEasy);
  options.speed = 0;
  options.faults = faults;
  const ServeReport served = serve::serve(feed, options);

  EXPECT_EQ(served.schedule_fnv, offline.schedule_fnv);
  EXPECT_EQ(served.metrics.art, offline.art);  // bit-identical
  EXPECT_EQ(served.killed, offline.resilience.kills);
  EXPECT_EQ(served.requeued, served.killed);
  EXPECT_GT(served.killed, 0u);
  EXPECT_EQ(served.capacity_events, injector.trace().events.size());
  EXPECT_EQ(served.min_capacity, 128);
  EXPECT_EQ(served.wasted_node_seconds, offline.resilience.wasted_node_seconds);
  EXPECT_EQ(served.availability, offline.resilience.availability);
}

TEST(Serve, FaultTraceMustMatchTheMachine) {
  fault::TraceInjector injector({{10, -1}, {20, +1}}, 8);
  ScriptFeed feed(burst(2));
  ServeOptions options;
  options.machine.nodes = 16;  // trace built for 8
  options.spec = fcfs_with(core::DispatchKind::kEasy);
  options.faults.trace = &injector.trace();
  EXPECT_THROW(serve::serve(feed, options), std::invalid_argument);
}

TEST(Serve, BacklogBoundDegradesWithLostCapacity) {
  // 8 nodes, half of them failed from t=1: the max_backlog guard must
  // tighten proportionally (8 -> 4) instead of queueing against a machine
  // that no longer exists. A late burst then sheds where the fault-free
  // run admits.
  std::vector<SubmitRecord> records;
  for (int i = 0; i < 12; ++i) {
    SubmitRecord r;
    r.submit = 10;
    r.nodes = 1;
    r.runtime = 1000;
    r.estimate = 1000;
    records.push_back(r);
  }
  const auto run = [&](const fault::FaultOptions& faults) {
    ScriptFeed feed(records);
    ServeOptions options;
    options.machine.nodes = 8;
    options.spec = fcfs_with(core::DispatchKind::kEasy);
    options.max_backlog = 8;
    options.faults = faults;
    return serve::serve(feed, options);
  };
  const ServeReport intact = run({});
  EXPECT_EQ(intact.shed_backlog, 4u);  // 12 offered, bound 8

  fault::TraceInjector injector({{1, -4}, {100'000, +4}}, 8);
  fault::FaultOptions faults;
  faults.trace = &injector.trace();
  const ServeReport degraded = run(faults);
  EXPECT_EQ(degraded.shed_backlog, 8u);  // bound scaled to 4 survivors
  EXPECT_EQ(degraded.min_capacity, 4);
  EXPECT_LT(degraded.availability, 1.0);
}

// --------------------------------------------------------- feed resilience

int connect_to(std::uint16_t port) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  return fd;
}

TEST(Serve, TcpFeedSurvivesFdExhaustion) {
  // Regression: an EMFILE from accept() used to silently stop the accept
  // loop for good. Lower the fd ceiling to exactly what is in use, let a
  // client knock, and the feed must count a transient error, keep the
  // listener alive, and accept the client once the ceiling lifts.
  serve::TcpFeed feed(0);
  ASSERT_GT(feed.port(), 0);
  const int client = connect_to(feed.port());  // queued in the backlog

  rlimit orig{};
  ASSERT_EQ(getrlimit(RLIMIT_NOFILE, &orig), 0);
  rlimit tight = orig;
  tight.rlim_cur = 0;  // accept() of the queued client now hits EMFILE
  ASSERT_EQ(setrlimit(RLIMIT_NOFILE, &tight), 0);

  std::vector<SubmitRecord> out;
  EXPECT_TRUE(feed.poll(kTimeInfinity, out));
  EXPECT_GT(feed.transient_accept_errors(), 0u);
  EXPECT_TRUE(out.empty());

  ASSERT_EQ(setrlimit(RLIMIT_NOFILE, &orig), 0);
  const std::string script = "@0 1 5 5\nend\n";
  ASSERT_EQ(write(client, script.data(), script.size()),
            static_cast<ssize_t>(script.size()));
  // The feed armed a 10ms backoff when accept failed; after it expires the
  // next polls must accept and read the waiting client.
  bool open = true;
  for (int i = 0; i < 100 && out.empty() && open; ++i) {
    usleep(5'000);
    open = feed.poll(kTimeInfinity, out);
  }
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].nodes, 1);
  close(client);
}

TEST(Serve, FormatSubmitLineIsParseInverse) {
  SubmitRecord timed;
  timed.submit = 120;
  timed.nodes = 8;
  timed.runtime = 3600;
  timed.estimate = 7200;
  timed.user = 42;
  EXPECT_EQ(serve::format_submit_line(timed), "@120 8 3600 7200 42");
  SubmitRecord parsed;
  ASSERT_EQ(serve::parse_submit_line(serve::format_submit_line(timed), parsed),
            ParseResult::kRecord);
  EXPECT_EQ(parsed.submit, timed.submit);
  EXPECT_EQ(parsed.user, timed.user);

  SubmitRecord live;
  live.submit = -1;
  live.nodes = 2;
  live.runtime = 60;
  live.estimate = 90;
  EXPECT_EQ(serve::format_submit_line(live), "2 60 90 0");
  ASSERT_EQ(serve::parse_submit_line(serve::format_submit_line(live), parsed),
            ParseResult::kRecord);
  EXPECT_EQ(parsed.submit, -1);
}

TEST(Serve, SubmitClientGivesUpAfterItsRetryBudget) {
  // Nothing listens on this freshly bound-then-closed port; a client with
  // a 2-connect budget must fail fast instead of retrying forever.
  std::uint16_t dead_port = 0;
  {
    serve::TcpFeed probe(0);
    dead_port = probe.port();
  }
  serve::TcpSubmitClient client(dead_port, /*max_attempts=*/2);
  SubmitRecord r;
  r.submit = 0;
  EXPECT_FALSE(client.send(r));
  EXPECT_EQ(client.reconnects(), 0u);
}

TEST(Serve, SubmitClientReconnectsAcrossAListenerRestart) {
  auto feed = std::make_unique<serve::TcpFeed>(0);
  const std::uint16_t port = feed->port();
  serve::TcpSubmitClient client(port);

  SubmitRecord r;
  r.submit = 0;
  r.nodes = 1;
  r.runtime = 5;
  r.estimate = 5;
  ASSERT_TRUE(client.send(r));
  std::vector<SubmitRecord> out;
  ASSERT_TRUE(feed->poll(kTimeInfinity, out));
  ASSERT_EQ(out.size(), 1u);

  // Restart the listener on the same port: the daemon died and came back.
  feed.reset();
  serve::TcpFeed reborn(port);
  // The client's old connection is dead; sends hit the RST within a few
  // tries, reconnect, and land on the reborn listener.
  out.clear();
  for (int i = 0; i < 50 && out.empty(); ++i) {
    r.submit = i + 1;
    ASSERT_TRUE(client.send(r));
    usleep(2'000);
    reborn.poll(kTimeInfinity, out);
  }
  ASSERT_FALSE(out.empty());
  EXPECT_GE(client.reconnects(), 1u);
}

}  // namespace
}  // namespace jsched
