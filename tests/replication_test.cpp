#include "eval/replication.h"

#include <gtest/gtest.h>

#include "test_support.h"
#include "workload/ctc_model.h"
#include "workload/transforms.h"

namespace jsched::eval {
namespace {

workload::Workload small_ctc(std::uint64_t seed) {
  workload::CtcModelParams p;
  p.job_count = 500;
  return workload::trim_to_machine(workload::generate_ctc(p, seed), 256);
}

sim::Machine m256() {
  sim::Machine m;
  m.nodes = 256;
  return m;
}

TEST(Replication, AggregatesAcrossSeeds) {
  const std::uint64_t seeds[] = {1, 2, 3};
  ExperimentOptions opt;
  opt.measure_cpu = false;
  const auto r = run_replicated(m256(), core::AlgorithmSpec{}, small_ctc,
                                seeds, opt);
  EXPECT_EQ(r.art.count(), 3u);
  EXPECT_GT(r.art.mean(), 0.0);
  EXPECT_GT(r.art.stddev(), 0.0);  // independent seeds really differ
  EXPECT_EQ(r.scheduler_name, "FCFS");
  EXPECT_GE(r.art_cv(), 0.0);
}

TEST(Replication, RejectsEmptySeedList) {
  ExperimentOptions opt;
  opt.measure_cpu = false;
  EXPECT_THROW(run_replicated(m256(), core::AlgorithmSpec{}, small_ctc,
                              std::span<const std::uint64_t>{}, opt),
               std::invalid_argument);
}

TEST(Replication, EasyRobustlyBeatsPlainFcfs) {
  // The paper's headline finding should survive replication: FCFS+EASY
  // beats plain FCFS across seeds by far more than the noise.
  const std::uint64_t seeds[] = {11, 22, 33};
  ExperimentOptions opt;
  opt.measure_cpu = false;
  core::AlgorithmSpec easy;
  easy.dispatch = core::DispatchKind::kEasy;
  const auto re = run_replicated(m256(), easy, small_ctc, seeds, opt);
  const auto rf = run_replicated(m256(), core::AlgorithmSpec{}, small_ctc,
                                 seeds, opt);
  EXPECT_TRUE(robustly_better_art(re, rf));
  EXPECT_FALSE(robustly_better_art(rf, re));
}

TEST(Replication, ParallelReplicationMatchesSerial) {
  const std::uint64_t seeds[] = {1, 2, 3, 4};
  ExperimentOptions serial;
  serial.measure_cpu = false;
  ExperimentOptions parallel = serial;
  parallel.threads = 4;
  const auto rs = run_replicated(m256(), core::AlgorithmSpec{}, small_ctc,
                                 seeds, serial);
  const auto rp = run_replicated(m256(), core::AlgorithmSpec{}, small_ctc,
                                 seeds, parallel);
  EXPECT_EQ(rp.scheduler_name, rs.scheduler_name);
  EXPECT_EQ(rp.art.count(), rs.art.count());
  // Aggregation happens in seed order on both paths, so the streaming
  // moments are bit-for-bit identical, not merely close.
  EXPECT_EQ(rp.art.mean(), rs.art.mean());
  EXPECT_EQ(rp.art.sample_variance(), rs.art.sample_variance());
  EXPECT_EQ(rp.awrt.mean(), rs.awrt.mean());
  EXPECT_EQ(rp.utilization.mean(), rs.utilization.mean());
}

TEST(Replication, ThrowsOnInconsistentWorkloadSizes) {
  // A generator whose job count swings with the seed (here 80 vs 120,
  // 50% apart — far beyond trim_to_machine jitter) is buggy: the
  // replicates would not be draws from one model.
  auto broken = [](std::uint64_t seed) {
    workload::CtcModelParams p;
    p.job_count = seed % 2 == 0 ? 80 : 120;
    return workload::generate_ctc(p, seed);
  };
  const std::uint64_t seeds[] = {2, 3};
  ExperimentOptions opt;
  opt.measure_cpu = false;
  EXPECT_THROW(
      run_replicated(m256(), core::AlgorithmSpec{}, broken, seeds, opt),
      std::runtime_error);
}

TEST(Replication, PopulationStddevWouldOverclaimSignificance) {
  // Regression for the n vs n-1 standard-error bug: with two replicates
  // per side, a = {10, 12} and b = {12.5, 14.5}, the pooled POPULATION
  // standard error is 1.0, so "mean_a + 2*SE < mean_b" (13 < 13.5) would
  // wrongly report significance. The unbiased sample standard error is
  // 1.0 per side, pooled sqrt(2) => 11 + 2*sqrt(2) = 13.83 > 13.5: with
  // two noisy replicates this gap is NOT robust.
  ReplicatedResult a, b;
  a.art.add(10.0);
  a.art.add(12.0);
  b.art.add(12.5);
  b.art.add(14.5);
  EXPECT_FALSE(robustly_better_art(a, b));
  EXPECT_FALSE(robustly_better_art(b, a));

  // A genuinely separated pair is still detected.
  ReplicatedResult c;
  c.art.add(30.0);
  c.art.add(32.0);
  EXPECT_TRUE(robustly_better_art(a, c));
}

TEST(Replication, RobustnessNeedsTwoReplicates) {
  const std::uint64_t one[] = {5};
  ExperimentOptions opt;
  opt.measure_cpu = false;
  const auto r = run_replicated(m256(), core::AlgorithmSpec{}, small_ctc,
                                one, opt);
  EXPECT_THROW(robustly_better_art(r, r), std::invalid_argument);
}

}  // namespace
}  // namespace jsched::eval
