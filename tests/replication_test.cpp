#include "eval/replication.h"

#include <gtest/gtest.h>

#include "test_support.h"
#include "workload/ctc_model.h"
#include "workload/transforms.h"

namespace jsched::eval {
namespace {

workload::Workload small_ctc(std::uint64_t seed) {
  workload::CtcModelParams p;
  p.job_count = 500;
  return workload::trim_to_machine(workload::generate_ctc(p, seed), 256);
}

sim::Machine m256() {
  sim::Machine m;
  m.nodes = 256;
  return m;
}

TEST(Replication, AggregatesAcrossSeeds) {
  const std::uint64_t seeds[] = {1, 2, 3};
  ExperimentOptions opt;
  opt.measure_cpu = false;
  const auto r = run_replicated(m256(), core::AlgorithmSpec{}, small_ctc,
                                seeds, opt);
  EXPECT_EQ(r.art.count(), 3u);
  EXPECT_GT(r.art.mean(), 0.0);
  EXPECT_GT(r.art.stddev(), 0.0);  // independent seeds really differ
  EXPECT_EQ(r.scheduler_name, "FCFS");
  EXPECT_GE(r.art_cv(), 0.0);
}

TEST(Replication, RejectsEmptySeedList) {
  ExperimentOptions opt;
  opt.measure_cpu = false;
  EXPECT_THROW(run_replicated(m256(), core::AlgorithmSpec{}, small_ctc,
                              std::span<const std::uint64_t>{}, opt),
               std::invalid_argument);
}

TEST(Replication, EasyRobustlyBeatsPlainFcfs) {
  // The paper's headline finding should survive replication: FCFS+EASY
  // beats plain FCFS across seeds by far more than the noise.
  const std::uint64_t seeds[] = {11, 22, 33};
  ExperimentOptions opt;
  opt.measure_cpu = false;
  core::AlgorithmSpec easy;
  easy.dispatch = core::DispatchKind::kEasy;
  const auto re = run_replicated(m256(), easy, small_ctc, seeds, opt);
  const auto rf = run_replicated(m256(), core::AlgorithmSpec{}, small_ctc,
                                 seeds, opt);
  EXPECT_TRUE(robustly_better_art(re, rf));
  EXPECT_FALSE(robustly_better_art(rf, re));
}

TEST(Replication, RobustnessNeedsTwoReplicates) {
  const std::uint64_t one[] = {5};
  ExperimentOptions opt;
  opt.measure_cpu = false;
  const auto r = run_replicated(m256(), core::AlgorithmSpec{}, small_ctc,
                                one, opt);
  EXPECT_THROW(robustly_better_art(r, r), std::invalid_argument);
}

}  // namespace
}  // namespace jsched::eval
