#include "sim/schedule.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "test_support.h"

namespace jsched::sim {
namespace {

using test::make_job;

Machine machine(int nodes) {
  Machine m;
  m.nodes = nodes;
  return m;
}

TEST(Schedule, RecordsRoundTrip) {
  Schedule s(machine(8), 2, "X");
  s.record_start(0, 5, 10, 4);
  s.record_end(0, 30, false);
  EXPECT_EQ(s[0].wait(), 5);
  EXPECT_EQ(s[0].response(), 25);
  EXPECT_EQ(s.scheduler_name(), "X");
}

TEST(Schedule, MakespanIsLastCompletion) {
  Schedule s(machine(8), 2, "X");
  s.record_start(0, 0, 0, 1);
  s.record_end(0, 100, false);
  s.record_start(1, 0, 50, 1);
  s.record_end(1, 80, false);
  EXPECT_EQ(s.makespan(), 100);
}

class ValidateTest : public ::testing::Test {
 protected:
  workload::Workload w_ = test::make_workload({
      make_job(0, 4, 20, 30),   // job 0
      make_job(5, 6, 10, 10),   // job 1
  });
  Schedule s_{machine(8), 2, "X"};
};

TEST_F(ValidateTest, AcceptsValidSchedule) {
  s_.record_start(0, 0, 0, 4);
  s_.record_end(0, 20, false);
  s_.record_start(1, 5, 20, 6);
  s_.record_end(1, 30, false);
  EXPECT_NO_THROW(validate_schedule(s_, w_));
}

TEST_F(ValidateTest, AcceptsBackToBackAtFullCapacity) {
  // Job 1 starts exactly when job 0's nodes free up: 4+6 > 8 would overlap,
  // but end-at-t release before start-at-t acquire makes this valid.
  s_.record_start(0, 0, 0, 4);
  s_.record_end(0, 20, false);
  s_.record_start(1, 5, 20, 6);
  s_.record_end(1, 30, false);
  EXPECT_NO_THROW(validate_schedule(s_, w_));
}

TEST_F(ValidateTest, RejectsCapacityViolation) {
  s_.record_start(0, 0, 0, 4);
  s_.record_end(0, 20, false);
  s_.record_start(1, 5, 10, 6);  // overlaps job 0: 10 > 8 nodes
  s_.record_end(1, 20, false);
  EXPECT_THROW(validate_schedule(s_, w_), std::logic_error);
}

TEST_F(ValidateTest, RejectsStartBeforeSubmit) {
  s_.record_start(0, 0, 0, 4);
  s_.record_end(0, 20, false);
  s_.record_start(1, 5, 2, 6);
  s_.record_end(1, 12, false);
  EXPECT_THROW(validate_schedule(s_, w_), std::logic_error);
}

TEST_F(ValidateTest, RejectsWrongRuntime) {
  s_.record_start(0, 0, 0, 4);
  s_.record_end(0, 25, false);  // ran 25, runtime is 20 (no time sharing)
  s_.record_start(1, 5, 25, 6);
  s_.record_end(1, 35, false);
  EXPECT_THROW(validate_schedule(s_, w_), std::logic_error);
}

TEST_F(ValidateTest, RejectsUnfinishedJob) {
  s_.record_start(0, 0, 0, 4);
  s_.record_end(0, 20, false);
  s_.record_start(1, 5, 20, 6);  // never ended
  EXPECT_THROW(validate_schedule(s_, w_), std::logic_error);
}

TEST_F(ValidateTest, RejectsNodeMismatch) {
  s_.record_start(0, 0, 0, 5);  // job 0 asked for 4
  s_.record_end(0, 20, false);
  s_.record_start(1, 5, 20, 6);
  s_.record_end(1, 30, false);
  EXPECT_THROW(validate_schedule(s_, w_), std::logic_error);
}

TEST_F(ValidateTest, RejectsJobCountMismatch) {
  Schedule s(machine(8), 1, "X");
  EXPECT_THROW(validate_schedule(s, w_), std::logic_error);
}

TEST(ValidateCancellation, AcceptsCancellationAtTheLimit) {
  // Runtime 80 exceeds the 50 s estimate: Rule 2 cancels at start+50.
  const workload::Workload w =
      test::make_workload({make_job(0, 2, 80, 50)});
  Schedule s(machine(8), 1, "X");
  s.record_start(0, 0, 0, 2);
  s.record_end(0, 50, true);
  EXPECT_NO_THROW(validate_schedule(s, w));
}

TEST(ValidateCancellation, RejectsCancellationElsewhere) {
  const workload::Workload w =
      test::make_workload({make_job(0, 2, 80, 50)});
  Schedule s(machine(8), 1, "X");
  s.record_start(0, 0, 0, 2);
  s.record_end(0, 40, true);  // cancelled before the limit
  EXPECT_THROW(validate_schedule(s, w), std::logic_error);
}

TEST(ValidateCancellation, RejectsCancellingAFittingJob) {
  const workload::Workload w =
      test::make_workload({make_job(0, 2, 30, 50)});
  Schedule s(machine(8), 1, "X");
  s.record_start(0, 0, 0, 2);
  s.record_end(0, 50, true);  // claims cancellation though 30 <= 50
  EXPECT_THROW(validate_schedule(s, w), std::logic_error);
}

}  // namespace
}  // namespace jsched::sim
