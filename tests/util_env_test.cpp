#include "util/env.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>

namespace jsched::util {
namespace {

class EnvTest : public ::testing::Test {
 protected:
  void SetEnv(const char* name, const char* value) {
    ::setenv(name, value, 1);
    names_.push_back(name);
  }
  void TearDown() override {
    for (const auto& n : names_) ::unsetenv(n.c_str());
  }
  std::vector<std::string> names_;
};

TEST_F(EnvTest, StringUnsetIsNullopt) {
  ::unsetenv("JSCHED_TEST_UNSET");
  EXPECT_FALSE(env_string("JSCHED_TEST_UNSET").has_value());
}

TEST_F(EnvTest, StringSet) {
  SetEnv("JSCHED_TEST_STR", "hello");
  EXPECT_EQ(env_string("JSCHED_TEST_STR").value(), "hello");
}

TEST_F(EnvTest, IntFallback) {
  ::unsetenv("JSCHED_TEST_INT");
  EXPECT_EQ(env_int("JSCHED_TEST_INT", 42), 42);
}

TEST_F(EnvTest, IntParses) {
  SetEnv("JSCHED_TEST_INT", "-17");
  EXPECT_EQ(env_int("JSCHED_TEST_INT", 0), -17);
}

TEST_F(EnvTest, IntRejectsGarbage) {
  SetEnv("JSCHED_TEST_INT", "12abc");
  EXPECT_THROW(env_int("JSCHED_TEST_INT", 0), std::invalid_argument);
}

TEST_F(EnvTest, DoubleParses) {
  SetEnv("JSCHED_TEST_DBL", "2.5");
  EXPECT_DOUBLE_EQ(env_double("JSCHED_TEST_DBL", 0.0), 2.5);
}

TEST_F(EnvTest, DoubleRejectsGarbage) {
  SetEnv("JSCHED_TEST_DBL", "x");
  EXPECT_THROW(env_double("JSCHED_TEST_DBL", 0.0), std::invalid_argument);
}

TEST_F(EnvTest, BoolVariants) {
  SetEnv("JSCHED_TEST_BOOL", "TRUE");
  EXPECT_TRUE(env_bool("JSCHED_TEST_BOOL", false));
  SetEnv("JSCHED_TEST_BOOL", "off");
  EXPECT_FALSE(env_bool("JSCHED_TEST_BOOL", true));
  SetEnv("JSCHED_TEST_BOOL", "1");
  EXPECT_TRUE(env_bool("JSCHED_TEST_BOOL", false));
}

TEST_F(EnvTest, BoolRejectsGarbage) {
  SetEnv("JSCHED_TEST_BOOL", "maybe");
  EXPECT_THROW(env_bool("JSCHED_TEST_BOOL", false), std::invalid_argument);
}

TEST_F(EnvTest, BoolFallback) {
  ::unsetenv("JSCHED_TEST_BOOL");
  EXPECT_TRUE(env_bool("JSCHED_TEST_BOOL", true));
}

}  // namespace
}  // namespace jsched::util
