#include "policy/user_limit.h"

#include <gtest/gtest.h>

#include "core/factory.h"
#include "sim/simulator.h"
#include "test_support.h"

namespace jsched::policy {
namespace {

using test::make_job;

sim::Schedule run_limited(const workload::Workload& w, int limit,
                          int nodes = 16) {
  sim::Machine m;
  m.nodes = nodes;
  UserLimitScheduler sched(core::make_scheduler(core::AlgorithmSpec{}), limit);
  return sim::simulate(m, sched, w);
}

workload::Workload user_burst() {
  // One user submits four 1-node jobs at once; plenty of free nodes.
  std::vector<Job> jobs;
  for (int i = 0; i < 4; ++i) {
    Job j = make_job(0, 1, 100);
    j.user = 7;
    jobs.push_back(j);
  }
  return test::make_workload(std::move(jobs));
}

TEST(UserLimit, CapsConcurrentJobsPerUser) {
  const auto s = run_limited(user_burst(), 2);
  // Jobs 0,1 run immediately; 2,3 only after a completion each.
  EXPECT_EQ(s[0].start, 0);
  EXPECT_EQ(s[1].start, 0);
  EXPECT_EQ(s[2].start, 100);
  EXPECT_EQ(s[3].start, 100);
}

TEST(UserLimit, LimitOneSerializes) {
  const auto s = run_limited(user_burst(), 1);
  for (JobId i = 0; i < 4; ++i) {
    EXPECT_EQ(s[i].start, static_cast<Time>(100 * i));
  }
}

TEST(UserLimit, DifferentUsersUnaffected) {
  std::vector<Job> jobs;
  for (int u = 0; u < 4; ++u) {
    Job j = make_job(0, 1, 100);
    j.user = u;
    jobs.push_back(j);
  }
  const auto s = run_limited(test::make_workload(std::move(jobs)), 1);
  for (JobId i = 0; i < 4; ++i) EXPECT_EQ(s[i].start, 0);
}

TEST(UserLimit, HeldJobsAdmittedInSubmissionOrder) {
  std::vector<Job> jobs;
  for (int i = 0; i < 3; ++i) {
    Job j = make_job(i, 1, 50);
    j.user = 1;
    jobs.push_back(j);
  }
  const auto s = run_limited(test::make_workload(std::move(jobs)), 1);
  EXPECT_LT(s[0].start, s[1].start);
  EXPECT_LT(s[1].start, s[2].start);
}

TEST(UserLimit, WrapsAnyScheduler) {
  core::AlgorithmSpec spec;
  spec.dispatch = core::DispatchKind::kEasy;
  sim::Machine m;
  m.nodes = 16;
  UserLimitScheduler sched(core::make_scheduler(spec), 2);
  const auto s = sim::simulate(m, sched, test::small_mixed_workload());
  EXPECT_EQ(s.size(), test::small_mixed_workload().size());
  EXPECT_NE(sched.name().find("EASY"), std::string::npos);
  EXPECT_NE(sched.name().find("limit2"), std::string::npos);
}

TEST(UserLimit, QueueLengthIncludesHeldJobs) {
  sim::Machine m;
  m.nodes = 16;
  UserLimitScheduler sched(core::make_scheduler(core::AlgorithmSpec{}), 1);
  sched.reset(m);
  Job a = make_job(0, 1, 100);
  a.id = 0;
  a.user = 3;
  Job b = make_job(0, 1, 100);
  b.id = 1;
  b.user = 3;
  sched.on_submit(a, 0);
  sched.on_submit(b, 0);
  EXPECT_EQ(sched.held_count(), 1u);
  EXPECT_EQ(sched.queue_length(), 2u);
}

TEST(UserLimit, RejectsBadConstruction) {
  EXPECT_THROW(UserLimitScheduler(nullptr, 2), std::invalid_argument);
  EXPECT_THROW(
      UserLimitScheduler(core::make_scheduler(core::AlgorithmSpec{}), 0),
      std::invalid_argument);
}

}  // namespace
}  // namespace jsched::policy
