#include "metrics/pareto.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace jsched::metrics {
namespace {

CriteriaPoint pt(std::string label, std::vector<double> costs) {
  return {std::move(label), std::move(costs)};
}

TEST(Dominates, StrictAndWeak) {
  EXPECT_TRUE(dominates(pt("a", {1, 2}), pt("b", {2, 2})));
  EXPECT_TRUE(dominates(pt("a", {1, 1}), pt("b", {2, 2})));
  EXPECT_FALSE(dominates(pt("a", {1, 2}), pt("b", {1, 2})));  // equal
  EXPECT_FALSE(dominates(pt("a", {1, 3}), pt("b", {2, 2})));  // trade-off
  EXPECT_FALSE(dominates(pt("a", {2, 2}), pt("b", {1, 2})));
}

TEST(Dominates, MismatchedDimensionsThrow) {
  EXPECT_THROW(dominates(pt("a", {1}), pt("b", {1, 2})), std::invalid_argument);
}

TEST(ParetoFront, KeepsTradeOffCurve) {
  const std::vector<CriteriaPoint> points = {
      pt("a", {1, 10}),  // optimal on x
      pt("b", {5, 5}),   // intermediate
      pt("c", {10, 1}),  // optimal on y
      pt("d", {6, 6}),   // dominated by b
      pt("e", {1, 10}),  // duplicate of a (kept: equals don't dominate)
  };
  const auto front = pareto_front(points);
  EXPECT_EQ(front, (std::vector<std::size_t>{0, 1, 2, 4}));
}

TEST(ParetoFront, SinglePoint) {
  EXPECT_EQ(pareto_front({pt("a", {3, 3})}), std::vector<std::size_t>{0});
}

TEST(ParetoFront, EmptyInput) {
  EXPECT_TRUE(pareto_front({}).empty());
}

TEST(ParetoFront, TotallyOrderedChainKeepsBest) {
  const std::vector<CriteriaPoint> points = {
      pt("w", {3, 3}), pt("x", {2, 2}), pt("y", {1, 1}),
  };
  EXPECT_EQ(pareto_front(points), std::vector<std::size_t>{2});
}

TEST(Scalarize, LinearCombination) {
  EXPECT_DOUBLE_EQ(scalarize(pt("a", {2, 3}), {10, 1}), 23.0);
  EXPECT_THROW(scalarize(pt("a", {2}), {1, 2}), std::invalid_argument);
}

TEST(OrderViolations, CountsUnsatisfiedPreferences) {
  // Two criteria: response time of priority jobs, availability loss.
  const std::vector<CriteriaPoint> points = {
      pt("s0", {300, 0.5}),
      pt("s1", {600, 0.0}),
      pt("s2", {100, 1.0}),
  };
  // The owner prefers s0 over s1 and s0 over s2 (Fig. 1's elicited order).
  const std::vector<std::pair<std::size_t, std::size_t>> prefs = {{0, 1},
                                                                  {0, 2}};
  // Pure response-time objective violates s0 < s2.
  EXPECT_EQ(order_violations(points, prefs, {1.0, 0.0}), 1u);
  // A mixed objective generates the order.
  EXPECT_EQ(order_violations(points, prefs, {1.0, 500.0}), 0u);
}

TEST(OrderViolations, OutOfRangePreferenceThrows) {
  const std::vector<CriteriaPoint> points = {pt("a", {1})};
  EXPECT_THROW(order_violations(points, {{0, 5}}, {1.0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace jsched::metrics
