#include "core/psrs.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "test_support.h"

namespace jsched::core {
namespace {

using test::make_job;

JobStore store_with(std::vector<Job> jobs) {
  JobStore s;
  JobId id = 0;
  for (Job j : jobs) {
    j.id = id++;
    s.put(j);
  }
  return s;
}

std::vector<JobId> ids(std::size_t n) {
  std::vector<JobId> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<JobId>(i);
  return v;
}

TEST(PsrsPreemptive, SmithOrderUnweightedPrefersSmallArea) {
  // Unit weights: ratio = 1 / (nodes x time); the smallest area leads.
  JobStore store = store_with({
      make_job(0, 4, 0, 100),  // area 400
      make_job(0, 1, 0, 10),   // area 10  -> first
      make_job(0, 2, 0, 50),   // area 100
  });
  const auto res = psrs_preemptive_schedule(ids(3), store, 16, PsrsParams{});
  ASSERT_EQ(res.smith_order.size(), 3u);
  EXPECT_EQ(res.smith_order[0], 1u);
  EXPECT_EQ(res.smith_order[1], 2u);
  EXPECT_EQ(res.smith_order[2], 0u);
}

TEST(PsrsPreemptive, AreaWeightsDegenerateToSubmissionOrder) {
  // weight = area makes every modified Smith ratio 1 — visible in the
  // paper's Table 3 where weighted PSRS+EASY equals FCFS+EASY exactly.
  JobStore store = store_with({
      make_job(0, 4, 0, 100),
      make_job(0, 1, 0, 10),
      make_job(0, 2, 0, 50),
  });
  PsrsParams p;
  p.weight = WeightKind::kEstimatedArea;
  const auto res = psrs_preemptive_schedule(ids(3), store, 16, p);
  EXPECT_EQ(res.smith_order[0], 0u);
  EXPECT_EQ(res.smith_order[1], 1u);
  EXPECT_EQ(res.smith_order[2], 2u);
}

TEST(PsrsPreemptive, SmallJobsRunConcurrently) {
  JobStore store = store_with({
      make_job(0, 4, 0, 100),
      make_job(0, 4, 0, 100),
  });
  const auto res = psrs_preemptive_schedule(ids(2), store, 16, PsrsParams{});
  EXPECT_EQ(res.completion[0], 100);
  EXPECT_EQ(res.completion[1], 100);
  EXPECT_EQ(res.preemptions, 0u);
}

TEST(PsrsPreemptive, WideJobPreemptsAfterItsDelay) {
  // Small job (8 nodes, 1000 s) runs; wide job (12 > 16/2 nodes, 100 s)
  // waits delay_factor x 100 = 100 s, then preempts, runs [100, 200); the
  // small job resumes and finishes at 1100.
  JobStore store = store_with({
      make_job(0, 8, 0, 1000),   // area 8000 (smith-second), small
      make_job(0, 12, 0, 100),   // area 1200 -> smith-first, but wide
  });
  const auto res = psrs_preemptive_schedule(ids(2), store, 16, PsrsParams{});
  ASSERT_EQ(res.smith_order[0], 1u);
  EXPECT_TRUE(res.wide[0]);
  EXPECT_FALSE(res.wide[1]);
  EXPECT_EQ(res.preemptions, 1u);
  EXPECT_EQ(res.completion[0], 200);   // wide: starts at 100 after waiting
  EXPECT_EQ(res.completion[1], 1100);  // small: 1000 of work + 100 pause
}

TEST(PsrsPreemptive, DelayFactorScalesWideWait) {
  JobStore store = store_with({
      make_job(0, 8, 0, 1000),
      make_job(0, 12, 0, 100),
  });
  PsrsParams p;
  p.wide_delay_factor = 3.0;
  const auto res = psrs_preemptive_schedule(ids(2), store, 16, p);
  EXPECT_EQ(res.completion[0], 400);  // waits 300, runs 100
}

TEST(PsrsPreemptive, ZeroDelayRunsWideImmediately) {
  JobStore store = store_with({
      make_job(0, 8, 0, 1000),
      make_job(0, 12, 0, 100),
  });
  PsrsParams p;
  p.wide_delay_factor = 0.0;
  const auto res = psrs_preemptive_schedule(ids(2), store, 16, p);
  EXPECT_EQ(res.completion[0], 100);
  EXPECT_EQ(res.completion[1], 1100);
}

TEST(PsrsPreemptive, ExactlyHalfMachineIsNotWide) {
  JobStore store = store_with({make_job(0, 8, 0, 100)});
  const auto res = psrs_preemptive_schedule(ids(1), store, 16, PsrsParams{});
  EXPECT_FALSE(res.wide[0]);
}

TEST(PsrsPreemptive, MultipleWideJobsRunInSmithOrder) {
  JobStore store = store_with({
      make_job(0, 12, 0, 100),  // wide, area 1200
      make_job(0, 12, 0, 50),   // wide, area 600 -> smith-first
  });
  const auto res = psrs_preemptive_schedule(ids(2), store, 16, PsrsParams{});
  ASSERT_EQ(res.smith_order[0], 1u);
  // Job 1 waits 50, runs [50,100); job 0 then waits (trigger 100), runs
  // [100, 200).
  EXPECT_EQ(res.completion[0], 100);
  EXPECT_EQ(res.completion[1], 200);
}

TEST(PsrsPreemptive, RejectsInvalidParams) {
  JobStore store = store_with({make_job(0, 1, 0, 10)});
  PsrsParams p;
  p.wide_delay_factor = -1.0;
  EXPECT_THROW(psrs_preemptive_schedule(ids(1), store, 16, p),
               std::invalid_argument);
  EXPECT_THROW(psrs_preemptive_schedule(ids(1), store, 0, PsrsParams{}),
               std::invalid_argument);
}

TEST(PsrsPlan, PermutationOfInput) {
  JobStore store = store_with({
      make_job(0, 1, 0, 10), make_job(0, 12, 0, 100), make_job(0, 8, 0, 3),
      make_job(0, 2, 0, 50), make_job(0, 16, 0, 1000), make_job(0, 3, 0, 7),
  });
  auto order = psrs_plan(ids(6), store, 16, PsrsParams{});
  std::sort(order.begin(), order.end());
  EXPECT_EQ(order, ids(6));
}

TEST(PsrsPlan, EmptyInput) {
  JobStore store;
  EXPECT_TRUE(psrs_plan({}, store, 16, PsrsParams{}).empty());
}

TEST(PsrsPlan, AlternatesSmallAndWideBins) {
  // Small job completing early (bin S0) must precede the wide job (bin
  // W-something), and a small job completing very late lands behind it.
  JobStore store = store_with({
      make_job(0, 1, 0, 1),      // small, completes ~1 -> S0
      make_job(0, 12, 0, 4),     // wide
      make_job(0, 1, 0, 4000),   // small, completes late -> deep S bin
  });
  const auto order = psrs_plan(ids(3), store, 16, PsrsParams{});
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 0u);  // S0 first (sequence starts small)
  // Wide job comes before the slow small job (its completion bin is far
  // earlier).
  const auto pos = [&](JobId id) {
    return std::find(order.begin(), order.end(), id) - order.begin();
  };
  EXPECT_LT(pos(1), pos(2));
}

TEST(PsrsPlan, CompletionBinsDominateSmithOrder) {
  JobStore store = store_with({
      make_job(0, 2, 0, 100),  // area 200
      make_job(0, 1, 0, 130),  // area 130 -> better ratio
  });
  const auto order = psrs_plan(ids(2), store, 16, PsrsParams{});
  // Both run concurrently from 0: completions 100 and 130 land in
  // geometric bins ]64,128] and ]128,256] (offset 1, factor 2), so the
  // earlier-completing job leads even though its Smith ratio is worse.
  EXPECT_EQ(order[0], 0u);
  EXPECT_EQ(order[1], 1u);
}

TEST(PsrsOrderOnline, ProducesValidSchedules) {
  AlgorithmSpec spec;
  spec.order = OrderKind::kPsrs;
  const auto s = test::run(spec, test::small_mixed_workload(), 16);
  EXPECT_GT(s.makespan(), 0);
}

TEST(PsrsOrderOnline, WeightedPsrsEasyMatchesFcfsEasyOnUniformJobs) {
  // The paper's Table 3 signature: with area weights all Smith ratios are
  // 1, so PSRS degenerates toward FCFS (their weighted PSRS+EASY and
  // FCFS+EASY agree to three digits). With uniform small jobs the bin
  // conversion preserves submission order and the match is exact.
  AlgorithmSpec psrs;
  psrs.order = OrderKind::kPsrs;
  psrs.dispatch = DispatchKind::kEasy;
  psrs.weight = WeightKind::kEstimatedArea;
  AlgorithmSpec fcfs;
  fcfs.dispatch = DispatchKind::kEasy;
  fcfs.weight = WeightKind::kEstimatedArea;

  std::vector<Job> jobs;
  for (int i = 0; i < 20; ++i) {
    // Identical requests (4 nodes, est 100) with varying actual runtimes.
    jobs.push_back(make_job(i * 7, 4, 20 + (i * 13) % 80, 100));
  }
  const auto w = test::make_workload(std::move(jobs));
  const auto sp = test::run(psrs, w, 16);
  const auto sf = test::run(fcfs, w, 16);
  for (JobId i = 0; i < w.size(); ++i) {
    EXPECT_EQ(sp[i].start, sf[i].start) << "job " << i;
  }
}

}  // namespace
}  // namespace jsched::core
