#include "workload/workload.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "test_support.h"
#include "workload/transforms.h"

namespace jsched::workload {
namespace {

using test::make_job;

TEST(Workload, FinalizeSortsAndShiftsOrigin) {
  Workload w;
  w.add(make_job(100, 1, 10));
  w.add(make_job(50, 2, 20));
  w.add(make_job(75, 3, 30));
  w.finalize();
  ASSERT_EQ(w.size(), 3u);
  EXPECT_EQ(w[0].submit, 0);
  EXPECT_EQ(w[0].nodes, 2);
  EXPECT_EQ(w[1].submit, 25);
  EXPECT_EQ(w[2].submit, 50);
  for (JobId i = 0; i < w.size(); ++i) EXPECT_EQ(w[i].id, i);
}

TEST(Workload, FinalizeIsStableForTies) {
  Workload w;
  Job a = make_job(10, 1, 1);
  a.user = 1;
  Job b = make_job(10, 1, 1);
  b.user = 2;
  w.add(a);
  w.add(b);
  w.finalize();
  EXPECT_EQ(w[0].user, 1);
  EXPECT_EQ(w[1].user, 2);
}

TEST(Workload, ValidateRejectsZeroNodes) {
  Workload w;
  w.add(make_job(0, 0, 10));
  EXPECT_THROW(w.finalize(), std::invalid_argument);
}

TEST(Workload, ValidateRejectsZeroRuntime) {
  Workload w;
  w.add(make_job(0, 1, 0));
  EXPECT_THROW(w.finalize(), std::invalid_argument);
}

TEST(Workload, AllowsRuntimeAboveEstimate) {
  // Rule 2: such a job is admitted and cancelled at its limit by the
  // simulator, so the container must accept it.
  Workload w;
  w.add(make_job(0, 1, 100, 50));
  EXPECT_NO_THROW(w.finalize());
}

TEST(Workload, MaxNodesAndSpan) {
  const Workload w = test::make_workload(
      {make_job(0, 4, 10), make_job(500, 7, 10), make_job(200, 2, 10)});
  EXPECT_EQ(w.max_nodes(), 7);
  EXPECT_EQ(w.span(), 500);
}

TEST(Workload, TotalArea) {
  const Workload w =
      test::make_workload({make_job(0, 4, 10), make_job(0, 2, 100)});
  EXPECT_DOUBLE_EQ(w.total_area(), 4 * 10 + 2 * 100);
}

TEST(Workload, EmptyWorkloadProperties) {
  Workload w;
  EXPECT_TRUE(w.empty());
  EXPECT_EQ(w.max_nodes(), 0);
  EXPECT_EQ(w.span(), 0);
  EXPECT_EQ(w.total_area(), 0.0);
}

TEST(JobModel, AreaUsesActualRuntime) {
  const Job j = make_job(0, 8, 100, 400);
  EXPECT_DOUBLE_EQ(j.area(), 800.0);
  EXPECT_DOUBLE_EQ(j.estimated_area(), 3200.0);
}

TEST(Summarize, BasicStatistics) {
  const Workload w = test::make_workload(
      {make_job(0, 2, 10, 20), make_job(100, 4, 30, 30), make_job(300, 6, 50, 100)});
  const WorkloadSummary s = summarize(w);
  EXPECT_EQ(s.job_count, 3u);
  EXPECT_EQ(s.span, 300);
  EXPECT_DOUBLE_EQ(s.interarrival.mean(), 150.0);
  EXPECT_DOUBLE_EQ(s.nodes.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.runtime.mean(), 30.0);
  EXPECT_DOUBLE_EQ(s.total_area, 2 * 10 + 4 * 30 + 6 * 50);
}

TEST(Summarize, OfferedLoad) {
  // 2 nodes x 100 s of work arriving over 100 s on a 2-node machine: load 1.
  const Workload w =
      test::make_workload({make_job(0, 2, 50), make_job(100, 2, 50)});
  const WorkloadSummary s = summarize(w);
  EXPECT_DOUBLE_EQ(s.offered_load(2), 1.0);
  EXPECT_DOUBLE_EQ(s.offered_load(4), 0.5);
}

TEST(Summarize, DescribeMentionsKeyFields) {
  const Workload w =
      test::make_workload({make_job(0, 2, 50), make_job(100, 2, 50)});
  const std::string d = describe(summarize(w));
  EXPECT_NE(d.find("jobs"), std::string::npos);
  EXPECT_NE(d.find("span"), std::string::npos);
  EXPECT_NE(d.find("total area"), std::string::npos);
}

TEST(Transforms, TrimToMachineDropsWideJobs) {
  const Workload w = test::make_workload(
      {make_job(0, 300, 10), make_job(10, 256, 10), make_job(20, 1, 10)});
  std::size_t dropped = 0;
  const Workload trimmed = trim_to_machine(w, 256, &dropped);
  EXPECT_EQ(dropped, 1u);
  ASSERT_EQ(trimmed.size(), 2u);
  EXPECT_EQ(trimmed.max_nodes(), 256);
  // Ids are re-densified.
  EXPECT_EQ(trimmed[0].id, 0u);
  EXPECT_EQ(trimmed[1].id, 1u);
}

TEST(Transforms, TrimRejectsBadMachine) {
  const Workload w = test::make_workload({make_job(0, 1, 10)});
  EXPECT_THROW(trim_to_machine(w, 0), std::invalid_argument);
}

TEST(Transforms, WithExactEstimates) {
  const Workload w = test::make_workload({make_job(0, 2, 10, 500)});
  const Workload exact = with_exact_estimates(w);
  EXPECT_EQ(exact[0].estimate, 10);
  EXPECT_EQ(exact[0].runtime, 10);
}

TEST(Transforms, TakePrefix) {
  const Workload w = test::make_workload(
      {make_job(0, 1, 10), make_job(10, 1, 10), make_job(20, 1, 10)});
  const Workload p = take_prefix(w, 2);
  EXPECT_EQ(p.size(), 2u);
  const Workload all = take_prefix(w, 99);
  EXPECT_EQ(all.size(), 3u);
}

TEST(Transforms, ScaleEstimates) {
  const Workload w = test::make_workload({make_job(0, 2, 10, 20)});
  const Workload scaled = scale_estimates(w, 3.0);
  EXPECT_EQ(scaled[0].estimate, 60);
  EXPECT_THROW(scale_estimates(w, 0.5), std::invalid_argument);
}

}  // namespace
}  // namespace jsched::workload
