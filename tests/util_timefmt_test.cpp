#include "util/timefmt.h"

#include <gtest/gtest.h>

namespace jsched::util {
namespace {

TEST(FormatDuration, SubDay) {
  EXPECT_EQ(format_duration(0), "00:00:00");
  EXPECT_EQ(format_duration(61), "00:01:01");
  EXPECT_EQ(format_duration(3 * kHour + 14 * kMinute + 7), "03:14:07");
}

TEST(FormatDuration, WithDays) {
  EXPECT_EQ(format_duration(2 * kDay + 3 * kHour), "2d 03:00:00");
}

TEST(FormatDuration, Negative) {
  EXPECT_EQ(format_duration(-61), "-00:01:01");
}

TEST(FormatTime, UnixEpoch) {
  EXPECT_EQ(format_time(0, 0), "1970-01-01 00:00:00");
}

TEST(FormatTime, KnownTimestamp) {
  // 1996-07-01 00:00:00 UTC = 836179200 (start of the CTC trace window).
  EXPECT_EQ(format_time(0, 836179200), "1996-07-01 00:00:00");
  EXPECT_EQ(format_time(90061, 836179200), "1996-07-02 01:01:01");
}

TEST(FormatTime, LeapDay) {
  // 1996-02-29 00:00:00 UTC = 825552000.
  EXPECT_EQ(format_time(0, 825552000), "1996-02-29 00:00:00");
}

}  // namespace
}  // namespace jsched::util
