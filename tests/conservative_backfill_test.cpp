#include "core/conservative_backfill.h"

#include <gtest/gtest.h>

#include "core/factory.h"
#include "core/list_scheduler.h"
#include "sim/simulator.h"
#include "test_support.h"

namespace jsched::core {
namespace {

using test::make_job;

AlgorithmSpec cons(bool full_compression = false) {
  AlgorithmSpec s;
  s.dispatch = DispatchKind::kConservative;
  s.conservative.full_compression = full_compression;
  return s;
}

TEST(ConservativeBackfill, BackfillsWithoutDelayingAnyReservation) {
  const auto w = test::make_workload({
      make_job(0, 6, 100, 100),  // 0
      make_job(1, 4, 50, 50),    // 1: reserved at 100
      make_job(2, 2, 10, 10),    // 2: fits the hole, ends before 100
  });
  const auto s = test::run(cons(), w, 8);
  EXPECT_EQ(s[2].start, 2);
  EXPECT_EQ(s[1].start, 100);
}

TEST(ConservativeBackfill, ProtectsAllQueuedJobsNotJustHead) {
  // The defining difference to EASY (§5.2): only the head is protected by
  // EASY, every queued job by conservative. Job 3 fits the 2 idle nodes;
  // EASY lets it run on "extra" nodes (delaying job 2, which is not the
  // head), conservative refuses because job 2 holds a reservation at 100.
  const auto w = test::make_workload({
      make_job(0, 6, 100, 100),  // 0: leaves 2 idle until 100
      make_job(1, 4, 100, 100),  // 1: head, reserved at 100
      make_job(2, 4, 100, 100),  // 2: also reserved at 100 (4+4 = 8)
      make_job(3, 2, 250, 250),  // 3: long narrow backfill candidate
  });
  const auto easy_spec = [] {
    AlgorithmSpec s;
    s.dispatch = DispatchKind::kEasy;
    return s;
  }();
  const auto se = test::run(easy_spec, w, 8);
  const auto sc = test::run(cons(), w, 8);

  // EASY: job 3 backfills at t=3 (head's extra nodes cover it), so job 2
  // cannot start before job 1 completes at 200.
  EXPECT_EQ(se[3].start, 3);
  EXPECT_EQ(se[1].start, 100);   // head guarantee holds
  EXPECT_EQ(se[2].start, 200);   // non-head job delayed

  // Conservative: job 3 must wait behind both reservations.
  EXPECT_EQ(sc[1].start, 100);
  EXPECT_EQ(sc[2].start, 100);   // reservation honored exactly
  EXPECT_EQ(sc[3].start, 200);
}

TEST(ConservativeBackfill, ReservationsQueryable) {
  ConservativeParams params;
  auto dispatch = std::make_unique<ConservativeBackfillDispatch>(params);
  auto* d = dispatch.get();
  ListScheduler sched(std::make_unique<FcfsOrder>(), std::move(dispatch));

  sim::Machine m;
  m.nodes = 8;
  sched.reset(m);

  Job a = make_job(0, 8, 100, 100);
  a.id = 0;
  Job b = make_job(0, 4, 50, 50);
  b.id = 1;
  sched.on_submit(a, 0);
  sched.on_submit(b, 0);
  // Job 0 reserved now, job 1 after it.
  EXPECT_EQ(d->reservation_of(0), 0);
  EXPECT_EQ(d->reservation_of(1), 100);
  EXPECT_EQ(d->reserved_count(), 2u);

  std::vector<JobId> starts;
  sched.select_starts(0, 8, starts);
  ASSERT_EQ(starts.size(), 1u);
  EXPECT_EQ(starts[0], 0u);
  EXPECT_EQ(d->reserved_count(), 1u);
}

TEST(ConservativeBackfill, EarlyCompletionWakesReservation) {
  // Job 0 is estimated to run 1000 s but ends at 100. Job 1's reservation
  // (at 1000) is pulled in at the completion event.
  const auto w = test::make_workload({
      make_job(0, 8, 100, 1000),
      make_job(1, 8, 10, 10),
  });
  const auto s = test::run(cons(), w, 8);
  EXPECT_EQ(s[1].start, 100);
}

TEST(ConservativeBackfill, WakeupFiresReservationWithoutAnyEvent) {
  // With compression disabled, a reservation computed from an estimate
  // sits at t=100 while the blocking job actually ends at t=40. No arrival
  // or completion event exists at t=100 — only the scheduler's next_wakeup
  // can start job 1 there. (With the default prefix replan job 1 would
  // start at 40; this test pins the wakeup machinery itself.)
  AlgorithmSpec spec = cons();
  spec.conservative.replan_prefix = 0;
  const auto w = test::make_workload({
      make_job(0, 8, 40, 100),   // ends early at 40
      make_job(1, 8, 10, 10),    // reserved at 100
  });
  const auto s = test::run(spec, w, 8);
  EXPECT_EQ(s[1].start, 100);
}

TEST(ConservativeBackfill, PrefixReplanPullsJobsIn) {
  // Same workload with the default prefix replan: job 1 starts at the
  // early completion instead of its estimate-based reservation.
  const auto w = test::make_workload({
      make_job(0, 8, 40, 100),
      make_job(1, 8, 10, 10),
  });
  const auto s = test::run(cons(), w, 8);
  EXPECT_EQ(s[1].start, 40);
}

TEST(ConservativeBackfill, ReplanUsesHoleFromEarlyCompletion) {
  //   job0: 8 nodes, est 100, actual 20  -> hole from 20
  //   job1: 8 nodes est 100 reserved at 100 -> replanned to 20
  //   job2: 8 nodes est 100 reserved at 200 -> replanned when job1 ends
  const auto w = test::make_workload({
      make_job(0, 8, 20, 100),
      make_job(1, 8, 100, 100),
      make_job(2, 8, 100, 100),
  });
  const auto s = test::run(cons(), w, 8);
  EXPECT_EQ(s[1].start, 20);   // replanned into the hole at the event
  EXPECT_EQ(s[2].start, 120);  // replanned at job 1's completion event
}

TEST(ConservativeBackfill, CompressionMovesReservationsEarlier) {
  // Without any replanning job 1 waits for its estimate-based reservation
  // at 100; prefix replan and full compression both move it to 20 after
  // job 0's early completion.
  const auto w = test::make_workload({
      make_job(0, 8, 20, 100),
      make_job(1, 8, 100, 100),
  });
  AlgorithmSpec frozen = cons(false);
  frozen.conservative.replan_prefix = 0;
  AlgorithmSpec prefix = cons(false);
  AlgorithmSpec full = cons(true);

  EXPECT_EQ(test::run(frozen, w, 8)[1].start, 100);
  EXPECT_EQ(test::run(prefix, w, 8)[1].start, 20);
  EXPECT_EQ(test::run(full, w, 8)[1].start, 20);
}

TEST(ConservativeBackfill, PrefixReplanOnlyTouchesTheFront) {
  // replan_prefix = 1: job 1 is replanned into the hole, job 2's stale
  // reservation at 200 stays until job 1's completion refreshes it.
  AlgorithmSpec spec = cons();
  spec.conservative.replan_prefix = 1;
  const auto w = test::make_workload({
      make_job(0, 8, 20, 100),
      make_job(1, 8, 100, 100),
      make_job(2, 8, 100, 100),
  });
  const auto s = test::run(spec, w, 8);
  EXPECT_EQ(s[1].start, 20);
  EXPECT_EQ(s[2].start, 120);  // refreshed when job 1 completes at 120
}

TEST(ConservativeBackfill, DepthLimitKeepsDeepQueueCorrect) {
  // With reservation_depth 2 and four queued full-machine jobs, jobs
  // beyond the depth are dormant but must still run in order.
  AlgorithmSpec spec = cons();
  spec.conservative.reservation_depth = 2;
  const auto w = test::make_workload({
      make_job(0, 8, 10, 10),
      make_job(0, 8, 10, 10),
      make_job(0, 8, 10, 10),
      make_job(0, 8, 10, 10),
      make_job(0, 8, 10, 10),
  });
  const auto s = test::run(spec, w, 8);
  for (JobId i = 0; i < w.size(); ++i) {
    EXPECT_EQ(s[i].start, static_cast<Time>(10 * i));
  }
}

TEST(ConservativeBackfill, EquivalentToListWhenNoBlocking) {
  const auto w = test::make_workload({
      make_job(0, 2, 50),
      make_job(10, 2, 50),
      make_job(20, 2, 50),
  });
  const auto list = test::run(AlgorithmSpec{}, w, 8);
  const auto bf = test::run(cons(), w, 8);
  for (JobId i = 0; i < w.size(); ++i) EXPECT_EQ(list[i].start, bf[i].start);
}

TEST(ConservativeBackfill, RejectsBadParams) {
  ConservativeParams p;
  p.reservation_depth = 0;
  EXPECT_THROW(ConservativeBackfillDispatch{p}, std::invalid_argument);
}

TEST(ConservativeBackfill, HandlesMixedWorkloadValidly) {
  // End-to-end validity is asserted inside test::run (validate = true).
  const auto s = test::run(cons(), test::small_mixed_workload(), 16);
  SUCCEED();
}

}  // namespace
}  // namespace jsched::core
