// Cooperative cancellation: CancelToken semantics, simulator abort at
// event-loop boundaries, and the eval harness's deadline -> kTimeout
// mapping (serial and threaded).
#include "sim/cancel.h"

#include <gtest/gtest.h>

#include <chrono>

#include "core/factory.h"
#include "eval/experiment.h"
#include "sim/simulator.h"
#include "test_support.h"

namespace jsched {
namespace {

TEST(Cancel, FreshTokenPasses) {
  sim::CancelToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_FALSE(token.expired());
  EXPECT_NO_THROW(token.check());
}

TEST(Cancel, CancelledTokenThrowsWithReason) {
  sim::CancelToken token;
  token.cancel();
  EXPECT_TRUE(token.cancelled());
  try {
    token.check();
    FAIL() << "expected CancelledError";
  } catch (const sim::CancelledError& e) {
    EXPECT_EQ(e.reason(), sim::CancelledError::Reason::kCancelled);
  }
}

TEST(Cancel, PastDeadlineThrowsWithDeadlineReason) {
  sim::CancelToken token;
  token.set_deadline(sim::CancelToken::Clock::now() -
                     std::chrono::milliseconds(1));
  EXPECT_TRUE(token.expired());
  try {
    token.check();
    FAIL() << "expected CancelledError";
  } catch (const sim::CancelledError& e) {
    EXPECT_EQ(e.reason(), sim::CancelledError::Reason::kDeadline);
  }
}

TEST(Cancel, ExplicitCancelWinsTieOverDeadline) {
  sim::CancelToken token;
  token.set_deadline(sim::CancelToken::Clock::now() -
                     std::chrono::milliseconds(1));
  token.cancel();
  try {
    token.check();
    FAIL() << "expected CancelledError";
  } catch (const sim::CancelledError& e) {
    EXPECT_EQ(e.reason(), sim::CancelledError::Reason::kCancelled);
  }
}

TEST(Cancel, ChildObservesParentCancellation) {
  sim::CancelToken parent;
  sim::CancelToken child(&parent);
  EXPECT_FALSE(child.cancelled());
  parent.cancel();
  EXPECT_TRUE(child.cancelled());
  // The reverse does not hold: a child's own cancel leaves the parent
  // (and thus sibling runs) untouched.
  sim::CancelToken other(&parent);
  EXPECT_TRUE(other.cancelled());
}

TEST(Cancel, SimulatorAbortsOnPreCancelledToken) {
  const workload::Workload w = test::small_mixed_workload();
  sim::Machine m;
  m.nodes = 16;
  auto scheduler = core::make_scheduler(core::AlgorithmSpec{});
  sim::CancelToken token;
  token.cancel();
  sim::SimOptions opt;
  opt.cancel = &token;
  EXPECT_THROW(sim::simulate(m, *scheduler, w, opt), sim::CancelledError);
}

TEST(Cancel, SimulatorRunsNormallyWithLiveToken) {
  // A token that never fires must not change the schedule at all.
  const workload::Workload w = test::small_mixed_workload();
  sim::Machine m;
  m.nodes = 16;
  const core::AlgorithmSpec spec;
  auto plain_scheduler = core::make_scheduler(spec);
  const sim::Schedule plain = sim::simulate(m, *plain_scheduler, w);

  sim::CancelToken token;
  sim::SimOptions opt;
  opt.cancel = &token;
  auto scheduler = core::make_scheduler(spec);
  const sim::Schedule with_token = sim::simulate(m, *scheduler, w, opt);
  EXPECT_EQ(sim::schedule_fingerprint(plain),
            sim::schedule_fingerprint(with_token));
}

TEST(Cancel, ExpiredRunClassifiesAsTimeout) {
  // An already-expired deadline aborts the run at its first event-loop
  // iteration; under isolate the harness files it as kTimeout.
  const workload::Workload w = test::small_mixed_workload();
  sim::Machine m;
  m.nodes = 16;
  eval::ExperimentOptions opt;
  opt.measure_cpu = false;
  opt.error_policy = eval::ErrorPolicy::kIsolate;
  opt.run_deadline = std::chrono::milliseconds(-1);
  // A negative budget is "already expired" — deterministic without a sleep.
  const eval::RunOutcome out =
      eval::run_one_outcome(m, core::AlgorithmSpec{}, w, opt);
  ASSERT_FALSE(out.ok);
  EXPECT_EQ(out.error.kind, eval::RunErrorKind::kTimeout);
  EXPECT_EQ(out.attempts, 1u);
}

TEST(Cancel, DeadlineUnderFailFastThrowsCancelledError) {
  const workload::Workload w = test::small_mixed_workload();
  sim::Machine m;
  m.nodes = 16;
  eval::ExperimentOptions opt;
  opt.measure_cpu = false;
  opt.run_deadline = std::chrono::milliseconds(-1);
  EXPECT_THROW(eval::run_one(m, core::AlgorithmSpec{}, w, opt),
               sim::CancelledError);
}

TEST(Cancel, SweepTokenCancelsWholeGridUnderIsolate) {
  const workload::Workload w = test::small_mixed_workload();
  sim::Machine m;
  m.nodes = 16;
  sim::CancelToken sweep_token;
  sweep_token.cancel();
  eval::ExperimentOptions opt;
  opt.measure_cpu = false;
  opt.error_policy = eval::ErrorPolicy::kIsolate;
  opt.cancel = &sweep_token;
  const eval::GridResult grid =
      eval::run_grid_outcomes(m, core::WeightKind::kUnit, w, opt);
  EXPECT_EQ(grid.failed(), grid.cells.size());
  for (const auto& c : grid.cells) {
    EXPECT_EQ(c.error.kind, eval::RunErrorKind::kCancelled);
  }
}

TEST(Cancel, ThreadedGridWithDeadlinesDrainsCleanly) {
  // Every cell times out on a worker pool: all threads must join (the
  // TSan job runs this test) and every cell must report kTimeout.
  const workload::Workload w = test::small_mixed_workload();
  sim::Machine m;
  m.nodes = 16;
  eval::ExperimentOptions opt;
  opt.measure_cpu = false;
  opt.error_policy = eval::ErrorPolicy::kIsolate;
  opt.run_deadline = std::chrono::milliseconds(-1);
  opt.threads = 4;
  const eval::GridResult grid =
      eval::run_grid_outcomes(m, core::WeightKind::kUnit, w, opt);
  EXPECT_EQ(grid.failed(), grid.cells.size());
  for (const auto& c : grid.cells) {
    EXPECT_EQ(c.error.kind, eval::RunErrorKind::kTimeout);
  }
}

TEST(Cancel, ManualClockDeadlineExpiresExactlyOnAdvance) {
  // The deadline is armed and checked against the injected clock, so the
  // test controls expiry to the nanosecond instead of sleeping.
  util::ManualClock clock;
  sim::CancelToken token;
  token.set_clock(&clock);
  token.set_deadline_after(std::chrono::seconds(5));
  EXPECT_FALSE(token.expired());
  clock.advance(std::chrono::seconds(5) - std::chrono::nanoseconds(1));
  EXPECT_FALSE(token.expired());
  clock.advance(std::chrono::nanoseconds(1));
  EXPECT_TRUE(token.expired());
  try {
    token.check();
    FAIL() << "expected CancelledError";
  } catch (const sim::CancelledError& e) {
    EXPECT_EQ(e.reason(), sim::CancelledError::Reason::kDeadline);
  }
}

TEST(Cancel, ManualClockMakesTightDeadlineDeterministic) {
  // A 1ms budget against the real clock is a coin flip on a loaded CI
  // machine; against a manual clock that never advances it can never fire,
  // however slow the run — the timing-flake fix the clock adoption buys.
  const workload::Workload w = test::small_mixed_workload();
  sim::Machine m;
  m.nodes = 16;
  util::ManualClock clock;
  eval::ExperimentOptions opt;
  opt.measure_cpu = false;
  opt.error_policy = eval::ErrorPolicy::kIsolate;
  opt.run_deadline = std::chrono::milliseconds(1);
  opt.clock = &clock;
  const eval::RunOutcome out =
      eval::run_one_outcome(m, core::AlgorithmSpec{}, w, opt);
  ASSERT_TRUE(out.ok);

  // And the mirror image: a frozen clock past its deadline always fires.
  util::ManualClock expired_clock;
  eval::ExperimentOptions late = opt;
  late.clock = &expired_clock;
  late.run_deadline = std::chrono::milliseconds(-1);
  const eval::RunOutcome timed_out =
      eval::run_one_outcome(m, core::AlgorithmSpec{}, w, late);
  ASSERT_FALSE(timed_out.ok);
  EXPECT_EQ(timed_out.error.kind, eval::RunErrorKind::kTimeout);
}

TEST(Cancel, GenerousDeadlineLeavesResultsBitIdentical) {
  // The deadline machinery active but not firing must not perturb the
  // schedule (inactive-options bit-identity guarantee).
  const workload::Workload w = test::small_mixed_workload();
  sim::Machine m;
  m.nodes = 16;
  eval::ExperimentOptions plain;
  plain.measure_cpu = false;
  const auto reference = eval::run_grid(m, core::WeightKind::kUnit, w, plain);

  eval::ExperimentOptions opt = plain;
  opt.run_deadline = std::chrono::hours(1);
  const auto guarded = eval::run_grid(m, core::WeightKind::kUnit, w, opt);
  ASSERT_EQ(guarded.size(), reference.size());
  for (std::size_t i = 0; i < guarded.size(); ++i) {
    EXPECT_EQ(guarded[i].schedule_fnv, reference[i].schedule_fnv);
  }
}

}  // namespace
}  // namespace jsched
