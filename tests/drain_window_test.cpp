#include "core/drain_window.h"

#include <gtest/gtest.h>

#include "core/easy_backfill.h"
#include "core/list_scheduler.h"
#include "metrics/objectives.h"
#include "sim/simulator.h"
#include "test_support.h"

namespace jsched::core {
namespace {

using test::make_job;

// A one-hour drain window at 10:00 every weekday (Example 4).
PhaseWindow course() { return PhaseWindow{10 * kHour, 11 * kHour, true}; }

std::unique_ptr<sim::Scheduler> drained_fcfs() {
  return std::make_unique<ListScheduler>(
      std::make_unique<FcfsOrder>(),
      std::make_unique<DrainWindowDispatch>(
          std::make_unique<HeadOnlyDispatch>(), course()));
}

TEST(DrainWindow, RejectsNullInner) {
  EXPECT_THROW(DrainWindowDispatch(nullptr, course()), std::invalid_argument);
}

TEST(DrainWindow, NameDecorated) {
  DrainWindowDispatch d(std::make_unique<EasyBackfillDispatch>(), course());
  EXPECT_EQ(d.name(), "EASY+DRAIN");
}

TEST(DrainWindow, JobCrossingTheWindowIsHeldBack) {
  // Submitted 9:30 with a 1 h estimate: would run into the 10:00 window,
  // so it starts at 11:00 instead. The anchor keeps the clock.
  const auto w = test::make_workload({
      make_job(0, 1, 1, 1),
      make_job(9 * kHour + 1800, 4, 3600, 3600),
  });
  auto s = drained_fcfs();
  sim::Machine m;
  m.nodes = 8;
  const auto schedule = sim::simulate(m, *s, w);
  EXPECT_EQ(schedule[1].start, 11 * kHour);
}

TEST(DrainWindow, JobFinishingBeforeTheWindowRuns) {
  const auto w = test::make_workload({
      make_job(0, 1, 1, 1),
      make_job(9 * kHour, 4, 1800, 3000),  // 9:00 + 50 min < 10:00
  });
  auto s = drained_fcfs();
  sim::Machine m;
  m.nodes = 8;
  const auto schedule = sim::simulate(m, *s, w);
  EXPECT_EQ(schedule[1].start, 9 * kHour);
}

TEST(DrainWindow, NothingStartsInsideTheWindow) {
  const auto w = test::make_workload({
      make_job(0, 1, 1, 1),
      make_job(10 * kHour + 600, 2, 60, 60),  // submitted mid-window
  });
  auto s = drained_fcfs();
  sim::Machine m;
  m.nodes = 8;
  const auto schedule = sim::simulate(m, *s, w);
  EXPECT_EQ(schedule[1].start, 11 * kHour);
}

TEST(DrainWindow, WeekendIsUnaffected) {
  // Saturday (day 5) 9:30 submission with the same 1 h estimate runs
  // immediately: the course only claims weekdays.
  const auto w = test::make_workload({
      make_job(0, 1, 1, 1),
      make_job(5 * kDay + 9 * kHour + 1800, 4, 3600, 3600),
  });
  auto s = drained_fcfs();
  sim::Machine m;
  m.nodes = 8;
  const auto schedule = sim::simulate(m, *s, w);
  EXPECT_EQ(schedule[1].start, 5 * kDay + 9 * kHour + 1800);
}

TEST(DrainWindow, BadEstimatesStillViolateTheWindow) {
  // Example 4's point: the veto works on estimates. A job claiming 30
  // minutes but running 2 hours is admitted at 9:30 and tramples the
  // course window; the availability metric exposes the violation.
  const auto w = test::make_workload({
      make_job(0, 1, 1, 1),
      make_job(9 * kHour + 1800, 8, 2 * kHour, 1800),  // lies about runtime
  });
  auto s = drained_fcfs();
  sim::Machine m;
  m.nodes = 8;
  const auto schedule = sim::simulate(m, *s, w);
  EXPECT_EQ(schedule[1].start, 9 * kHour + 1800);
  // Cancelled at its 30-minute limit (Rule 2) — the machine survives, but
  // had the limit been honored less strictly the window would be occupied.
  EXPECT_TRUE(schedule[1].cancelled);

  // With a *correct but long* estimate and Rule-2 cancellation disabled by
  // matching runtime, the window is honored instead:
  const auto honest = test::make_workload({
      make_job(0, 1, 1, 1),
      make_job(9 * kHour + 1800, 8, 2 * kHour, 2 * kHour),
  });
  const auto s2 = [&] {
    auto sched = drained_fcfs();
    return sim::simulate(m, *sched, honest);
  }();
  EXPECT_EQ(s2[1].start, 11 * kHour);
  const double idle = metrics::idle_node_seconds(s2, 10 * kHour, 11 * kHour);
  EXPECT_DOUBLE_EQ(idle, 8.0 * 3600.0);  // course got the whole machine
}

TEST(DrainWindow, VetoCounterCounts) {
  const auto w = test::make_workload({
      make_job(0, 1, 1, 1),
      make_job(9 * kHour + 1800, 4, 3600, 3600),
  });
  auto inner = std::make_unique<HeadOnlyDispatch>();
  auto drain = std::make_unique<DrainWindowDispatch>(std::move(inner), course());
  auto* drain_ptr = drain.get();
  ListScheduler sched(std::make_unique<FcfsOrder>(), std::move(drain));
  sim::Machine m;
  m.nodes = 8;
  sim::simulate(m, sched, w);
  EXPECT_GE(drain_ptr->vetoed(), 1u);
}

TEST(DrainWindow, WorksUnderEasyBackfilling) {
  // EASY + drain on a mixed stream around the window.
  std::vector<Job> jobs;
  jobs.push_back(make_job(0, 1, 1, 1));
  for (int i = 0; i < 20; ++i) {
    jobs.push_back(make_job(9 * kHour + i * 120, 1 + (i % 6),
                            900 + (i * 71) % 1800, 3600));
  }
  const auto w = test::make_workload(std::move(jobs));
  ListScheduler sched(std::make_unique<FcfsOrder>(),
                      std::make_unique<DrainWindowDispatch>(
                          std::make_unique<EasyBackfillDispatch>(), course()));
  sim::Machine m;
  m.nodes = 8;
  const auto schedule = sim::simulate(m, sched, w);
  // No job may *start* inside the window.
  for (JobId i = 0; i < w.size(); ++i) {
    const Time sod = schedule[i].start % kDay;
    EXPECT_FALSE(sod >= 10 * kHour && sod < 11 * kHour) << "job " << i;
  }
}

}  // namespace
}  // namespace jsched::core
