// Streamed-equals-batch: every JobSource must emit, one job at a time,
// exactly the stream its batch counterpart materializes — same ids, same
// fields, same workload fingerprint. This is the contract that lets the
// bounded-memory simulation claim bit-identity with the batch pipeline.
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "test_support.h"
#include "workload/ctc_model.h"
#include "workload/job_source.h"
#include "workload/random_model.h"
#include "workload/stats_model.h"
#include "workload/swf.h"

namespace jsched {
namespace {

void expect_same_stream(workload::JobSource& source,
                        const workload::Workload& batch) {
  workload::FingerprintAccumulator fnv;
  Job j;
  std::size_t n = 0;
  while (source.next(j)) {
    ASSERT_LT(n, batch.size());
    const Job& b = batch[n];
    EXPECT_EQ(j.id, b.id) << "job " << n;
    EXPECT_EQ(j.submit, b.submit) << "job " << n;
    EXPECT_EQ(j.nodes, b.nodes) << "job " << n;
    EXPECT_EQ(j.runtime, b.runtime) << "job " << n;
    EXPECT_EQ(j.estimate, b.estimate) << "job " << n;
    EXPECT_EQ(j.user, b.user) << "job " << n;
    EXPECT_EQ(j.priority_class, b.priority_class) << "job " << n;
    EXPECT_EQ(j.status, b.status) << "job " << n;
    fnv.add(j);
    ++n;
  }
  EXPECT_EQ(n, batch.size());
  EXPECT_EQ(fnv.value(), workload::fingerprint(batch));
}

TEST(JobSourceTest, CtcStreamEqualsBatch) {
  for (const std::uint64_t seed : {1ull, 42ull, 1999ull}) {
    workload::CtcModelParams params;
    params.job_count = 500;
    const workload::Workload batch = workload::generate_ctc(params, seed);
    workload::CtcJobSource source(params, seed);
    EXPECT_EQ(source.size_hint(), params.job_count);
    expect_same_stream(source, batch);
  }
}

TEST(JobSourceTest, RandomStreamEqualsBatch) {
  for (const std::uint64_t seed : {7ull, 1999ull}) {
    workload::RandomModelParams params;
    params.job_count = 400;
    const workload::Workload batch = workload::generate_random(params, seed);
    workload::RandomJobSource source(params, seed);
    expect_same_stream(source, batch);
  }
}

TEST(JobSourceTest, StatsStreamEqualsBatch) {
  workload::CtcModelParams params;
  params.job_count = 300;
  const workload::Workload trace = workload::generate_ctc(params, 11);
  const workload::WorkloadStatistics stats =
      workload::WorkloadStatistics::extract(trace);
  for (const std::uint64_t seed : {3ull, 1999ull}) {
    const workload::Workload batch = stats.sample(250, seed);
    workload::StatsJobSource source(stats, 250, seed);
    expect_same_stream(source, batch);
  }
}

TEST(JobSourceTest, WorkloadSourceRoundTrips) {
  workload::CtcModelParams params;
  params.job_count = 120;
  const workload::Workload w = workload::generate_ctc(params, 5);
  workload::WorkloadSource source(w);
  expect_same_stream(source, w);
}

TEST(JobSourceTest, MaterializeEqualsBatchGenerator) {
  workload::CtcModelParams params;
  params.job_count = 200;
  workload::CtcJobSource source(params, 77);
  const workload::Workload streamed = workload::materialize(source);
  const workload::Workload batch = workload::generate_ctc(params, 77);
  EXPECT_EQ(workload::fingerprint(streamed), workload::fingerprint(batch));
  EXPECT_EQ(streamed.name(), batch.name());
}

TEST(JobSourceTest, StampShiftsOriginAndAssignsDenseIds) {
  // A raw generator whose first submit is far from zero must stream
  // origin-shifted, exactly like Workload::finalize.
  workload::RandomModelParams params;
  params.job_count = 50;
  workload::RandomJobSource source(params, 123);
  Job j;
  ASSERT_TRUE(source.next(j));
  EXPECT_EQ(j.id, 0u);
  EXPECT_EQ(j.submit, 0);
  Time prev = 0;
  JobId expected = 1;
  while (source.next(j)) {
    EXPECT_EQ(j.id, expected++);
    EXPECT_GE(j.submit, prev);
    prev = j.submit;
  }
  EXPECT_EQ(expected, params.job_count);
}

class SwfSourceTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "/job_source_test.swf";
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(SwfSourceTest, StreamEqualsBatchReader) {
  workload::CtcModelParams params;
  params.job_count = 150;
  const workload::Workload w = workload::generate_ctc(params, 9);
  workload::write_swf_file(path_, w);

  const workload::Workload batch = workload::read_swf_file(path_);
  workload::SwfReadStats stats;
  workload::SwfJobSource source(path_, {}, &stats);
  Job j;
  std::size_t n = 0;
  workload::FingerprintAccumulator fnv;
  while (source.next(j)) {
    fnv.add(j);
    ++n;
  }
  EXPECT_EQ(n, batch.size());
  EXPECT_EQ(stats.accepted, batch.size());
  EXPECT_EQ(fnv.value(), workload::fingerprint(batch));
}

TEST_F(SwfSourceTest, UnsortedTraceThrows) {
  {
    std::ofstream out(path_);
    out << "1 100 -1 50 50 -1 -1 4 60 -1 1 7 -1 -1 -1 -1 -1 -1\n";
    out << "2 40 -1 50 50 -1 -1 4 60 -1 1 7 -1 -1 -1 -1 -1 -1\n";
  }
  workload::SwfJobSource source(path_);
  Job j;
  ASSERT_TRUE(source.next(j));
  EXPECT_THROW(source.next(j), std::runtime_error);
}

TEST_F(SwfSourceTest, MissingFileThrows) {
  EXPECT_THROW(workload::SwfJobSource("/nonexistent/path.swf"),
               std::runtime_error);
}

}  // namespace
}  // namespace jsched
