// Cross-module integration: full simulations on generated workloads with
// schedule validation, reproducing the paper's qualitative findings at
// reduced scale.
#include <gtest/gtest.h>

#include <sstream>

#include "eval/experiment.h"
#include "eval/reporting.h"
#include "metrics/objectives.h"
#include "test_support.h"
#include "workload/ctc_model.h"
#include "workload/swf.h"
#include "workload/random_model.h"
#include "workload/stats_model.h"
#include "workload/transforms.h"

namespace jsched {
namespace {

const workload::Workload& small_ctc() {
  static const workload::Workload w = [] {
    workload::CtcModelParams p;
    p.job_count = 4000;
    return workload::trim_to_machine(workload::generate_ctc(p, 2026), 256);
  }();
  return w;
}

sim::Machine institution_b() {
  sim::Machine m;
  m.nodes = 256;
  return m;
}

TEST(Integration, AllPaperConfigurationsProduceValidSchedules) {
  // validate=true inside run_one throws on any invalid schedule.
  eval::ExperimentOptions opt;
  opt.measure_cpu = false;
  const auto results =
      eval::run_grid(institution_b(), core::WeightKind::kUnit, small_ctc(), opt);
  EXPECT_EQ(results.size(), 13u);
  for (const auto& r : results) {
    EXPECT_GT(r.art, 0.0) << r.scheduler_name;
    EXPECT_GT(r.utilization, 0.0) << r.scheduler_name;
    EXPECT_LE(r.utilization, 1.0) << r.scheduler_name;
  }
}

TEST(Integration, BackfillingBeatsPlainFcfsOnCtcLikeLoad) {
  // The paper's headline: "All algorithms are clearly better than FCFS".
  eval::ExperimentOptions opt;
  opt.measure_cpu = false;
  core::AlgorithmSpec fcfs;
  core::AlgorithmSpec easy;
  easy.dispatch = core::DispatchKind::kEasy;
  core::AlgorithmSpec cons;
  cons.dispatch = core::DispatchKind::kConservative;

  const auto rf = eval::run_one(institution_b(), fcfs, small_ctc(), opt);
  const auto re = eval::run_one(institution_b(), easy, small_ctc(), opt);
  const auto rc = eval::run_one(institution_b(), cons, small_ctc(), opt);
  EXPECT_LT(re.art, rf.art);
  EXPECT_LT(rc.art, rf.art);
}

TEST(Integration, GareyGrahamStrongInWeightedCase) {
  // Weighted CTC: "The classical list scheduling algorithm clearly
  // outperforms all other algorithms" — at minimum it must beat plain
  // FCFS and the plain SMART/PSRS list variants.
  eval::ExperimentOptions opt;
  opt.measure_cpu = false;
  const auto results = eval::run_grid(
      institution_b(), core::WeightKind::kEstimatedArea, small_ctc(), opt);
  const auto& gg = eval::find(results, core::OrderKind::kFcfs,
                              core::DispatchKind::kFirstFit);
  const auto& fcfs = eval::find(results, core::OrderKind::kFcfs,
                                core::DispatchKind::kList);
  const auto& psrs = eval::find(results, core::OrderKind::kPsrs,
                                core::DispatchKind::kList);
  EXPECT_LT(gg.awrt, fcfs.awrt);
  EXPECT_LT(gg.awrt, psrs.awrt);
}

TEST(Integration, ExactEstimatesHelpUnweightedSmartAndPsrs) {
  // Table 6: with exact runtimes PSRS/SMART improve substantially.
  eval::ExperimentOptions opt;
  opt.measure_cpu = false;
  const auto exact = workload::with_exact_estimates(small_ctc());

  core::AlgorithmSpec psrs_easy;
  psrs_easy.order = core::OrderKind::kPsrs;
  psrs_easy.dispatch = core::DispatchKind::kEasy;

  const auto noisy = eval::run_one(institution_b(), psrs_easy, small_ctc(), opt);
  const auto clean = eval::run_one(institution_b(), psrs_easy, exact, opt);
  EXPECT_LT(clean.art, noisy.art * 1.05);  // never clearly worse
}

TEST(Integration, ProbabilisticWorkloadSupportsSameRanking) {
  // §7: "The artificial workload based on probability distributions
  // basically supports the results derived with the CTC workload."
  eval::ExperimentOptions opt;
  opt.measure_cpu = false;
  const auto prob =
      workload::generate_probabilistic(small_ctc(), 4000, 77);

  core::AlgorithmSpec fcfs;
  core::AlgorithmSpec easy;
  easy.dispatch = core::DispatchKind::kEasy;
  const auto rf = eval::run_one(institution_b(), fcfs, prob, opt);
  const auto re = eval::run_one(institution_b(), easy, prob, opt);
  EXPECT_LT(re.art, rf.art);
}

TEST(Integration, RandomizedWorkloadRunsAllConfigurations) {
  workload::RandomModelParams p;
  p.job_count = 800;
  const auto w = workload::generate_random(p, 5);
  eval::ExperimentOptions opt;
  opt.measure_cpu = false;
  for (const auto& spec : core::paper_grid(core::WeightKind::kUnit)) {
    SCOPED_TRACE(spec.display_name());
    const auto r = eval::run_one(institution_b(), spec, w, opt);
    EXPECT_EQ(r.jobs, w.size());
  }
}

TEST(Integration, ReportingTablesRender) {
  eval::ExperimentOptions opt;
  opt.measure_cpu = true;
  const auto w = workload::take_prefix(small_ctc(), 800);
  const auto results =
      eval::run_grid(institution_b(), core::WeightKind::kUnit, w, opt);
  const auto table = eval::response_time_table(
      results, &eval::RunResult::art, "Table 3 (test)");
  const std::string ascii = table.to_ascii();
  EXPECT_NE(ascii.find("FCFS"), std::string::npos);
  EXPECT_NE(ascii.find("Garey&Graham"), std::string::npos);
  EXPECT_NE(ascii.find("EASY"), std::string::npos);

  const auto cpu = eval::cpu_time_table(results, "Table 7 (test)");
  EXPECT_NE(cpu.to_ascii().find("PSRS"), std::string::npos);

  const std::string csv = eval::figure_csv(results, &eval::RunResult::art);
  EXPECT_NE(csv.find("SMART-FFIA"), std::string::npos);
}

TEST(Integration, ReferenceEntryHasZeroPct) {
  eval::ExperimentOptions opt;
  opt.measure_cpu = false;
  const auto w = workload::take_prefix(small_ctc(), 500);
  const auto results =
      eval::run_grid(institution_b(), core::WeightKind::kUnit, w, opt);
  const auto table =
      eval::response_time_table(results, &eval::RunResult::art, "t");
  // FCFS row's EASY column is the reference -> "0%".
  EXPECT_NE(table.to_ascii().find("0%"), std::string::npos);
}

TEST(Integration, SwfRoundTripThroughSimulation) {
  // Workload -> SWF -> Workload -> simulate: identical metrics.
  const auto w = workload::take_prefix(small_ctc(), 500);
  std::stringstream buf;
  workload::write_swf(buf, w);
  const auto reread = workload::read_swf(buf, "rt");

  core::AlgorithmSpec easy;
  easy.dispatch = core::DispatchKind::kEasy;
  eval::ExperimentOptions opt;
  opt.measure_cpu = false;
  const auto r1 = eval::run_one(institution_b(), easy, w, opt);
  const auto r2 = eval::run_one(institution_b(), easy, reread, opt);
  EXPECT_DOUBLE_EQ(r1.art, r2.art);
  EXPECT_DOUBLE_EQ(r1.awrt, r2.awrt);
}

}  // namespace
}  // namespace jsched
