// ServeRecovery: crash-safe serving through the admission journal.
//
// The contract under test is bit-identity across death: a daemon killed at
// an arbitrary point mid-stream and restarted against its journal must end
// with exactly the report an uninterrupted run produces — fingerprint,
// decision count, latency-histogram totals, shed/late counters, all of it.
// Most tests crash deterministically in-process (an abort via poll_signal
// after N polls, which leaves the journal exactly as a kill would); the
// wall-clock smoke test dies for real, SIGKILL'd by the chaos knob in a
// re-exec'd child, and the parent restarts over the survivor journal.
#include "serve/journal.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/factory.h"
#include "fault/fault.h"
#include "metrics/streaming.h"
#include "serve/daemon.h"
#include "serve/feed.h"
#include "sim/streaming.h"
#include "util/clock.h"
#include "util/journal.h"
#include "util/rng.h"
#include "util/subprocess.h"
#include "workload/ctc_model.h"
#include "workload/job_source.h"
#include "workload/transforms.h"

namespace jsched {
namespace {

using serve::AdmissionJournal;
using serve::DropKind;
using serve::ServeOptions;
using serve::ServeReport;
using serve::SubmitRecord;

class TempJournal {
 public:
  explicit TempJournal(const std::string& stem)
      : path_(std::string(::testing::TempDir()) + stem + "-" +
              std::to_string(counter_++) + ".journal") {
    std::remove(path_.c_str());
  }
  ~TempJournal() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  static int counter_;
  std::string path_;
};

int TempJournal::counter_ = 0;

// ------------------------------------------------- AdmissionJournal unit

SubmitRecord rec(Time submit, int nodes, Duration runtime) {
  SubmitRecord r;
  r.submit = submit;
  r.nodes = nodes;
  r.runtime = runtime;
  r.estimate = runtime;
  r.user = 7;
  return r;
}

TEST(AdmissionJournal, RoundTripsAdmissionsDropsAndDecisions) {
  TempJournal f("adm-roundtrip");
  {
    AdmissionJournal j(f.path());
    EXPECT_FALSE(j.has_history());
    j.begin_run();
    j.record_admit(rec(10, 2, 100), /*late=*/false, /*delayed=*/false);
    j.record_admit(rec(20, 4, 200), /*late=*/true, /*delayed=*/true);
    j.record_drop(DropKind::kInvalid);
    j.record_drop(DropKind::kShedBacklog);
    EXPECT_FALSE(j.record_start(0, 0, 10));
    EXPECT_FALSE(j.record_done(0, 0, 110));
    EXPECT_FALSE(j.record_start(1, 0, 110));
    EXPECT_EQ(j.appends(), 8u);
  }
  AdmissionJournal j(f.path());
  EXPECT_TRUE(j.has_history());
  EXPECT_EQ(j.runs(), 1u);
  ASSERT_EQ(j.admitted().size(), 2u);
  EXPECT_EQ(j.admitted()[0].record.submit, 10);
  EXPECT_EQ(j.admitted()[0].record.user, 7);
  EXPECT_FALSE(j.admitted()[0].late);
  EXPECT_TRUE(j.admitted()[1].late);
  EXPECT_TRUE(j.admitted()[1].delayed);
  EXPECT_EQ(j.consumed_feed_records(), 4u);  // 2 admits + 2 drops
  EXPECT_EQ(j.completed_at_open(), 1u);
  EXPECT_EQ(j.dropped_invalid(), 1u);
  EXPECT_EQ(j.dropped_shed_backlog(), 1u);
  EXPECT_EQ(j.dropped_shed_capacity(), 0u);
  EXPECT_EQ(j.late_at_open(), 1u);
  EXPECT_EQ(j.delayed_at_open(), 1u);
  EXPECT_EQ(j.last_event_time(), 110);
  EXPECT_EQ(j.appends(), 0u);  // loaded history is not "appended by us"
}

TEST(AdmissionJournal, SuppressesReplayedDecisionsByEpoch) {
  TempJournal f("adm-dedup");
  {
    AdmissionJournal j(f.path());
    j.begin_run();
    j.record_admit(rec(0, 1, 50), false, false);
    j.record_start(0, 0, 0);
    j.record_start(0, 1, 80);  // second attempt after a kill: distinct
  }
  AdmissionJournal j(f.path());
  // Identical re-derived decisions are suppressed, not re-appended.
  EXPECT_TRUE(j.record_start(0, 0, 0));
  EXPECT_TRUE(j.record_start(0, 1, 80));
  EXPECT_EQ(j.appends(), 0u);
  // A fresh epoch is a fresh record.
  EXPECT_FALSE(j.record_start(0, 2, 120));
  EXPECT_EQ(j.appends(), 1u);
  // The same (job, epoch) at a different time is a forked history.
  EXPECT_THROW(j.record_start(0, 0, 5), serve::JournalReplayError);
  // Decisions about jobs never admitted are structurally impossible.
  EXPECT_THROW(j.record_start(9, 0, 5), serve::JournalReplayError);
}

TEST(AdmissionJournal, DetectsCorruptRecords) {
  TempJournal f("adm-corrupt");
  {
    AdmissionJournal j(f.path());
    j.begin_run();
    j.record_admit(rec(10, 2, 100), false, false);
  }
  // Flip one digit inside the admit payload; the checksum must catch it.
  std::vector<std::string> lines = util::AppendLog::read_lines(f.path());
  ASSERT_EQ(lines.size(), 2u);
  const std::size_t pos = lines[1].rfind("10 2 100");
  ASSERT_NE(pos, std::string::npos);
  lines[1][pos] = '9';
  std::remove(f.path().c_str());
  {
    std::ofstream out(f.path());
    for (const std::string& l : lines) out << l << "\n";
  }
  EXPECT_THROW(AdmissionJournal j(f.path()), util::CorruptRecordError);
}

TEST(AdmissionJournal, TornTailIsDroppedNotFatal) {
  TempJournal f("adm-torn");
  {
    AdmissionJournal j(f.path());
    j.begin_run();
    j.record_admit(rec(10, 2, 100), false, false);
  }
  {
    std::ofstream out(f.path(), std::ios::app);
    out << "s1 deadbeefdeadbeef admit 20 1";  // killed mid-append
  }
  AdmissionJournal j(f.path());
  EXPECT_EQ(j.admitted().size(), 1u);
}

// ------------------------------------------------- crash/restart identity

/// The recovery workload: small enough to restart dozens of times per
/// test, busy enough that any replay divergence moves the fingerprint.
const workload::Workload& recovery_workload() {
  static const workload::Workload w = [] {
    workload::CtcModelParams params;
    params.job_count = 400;
    return workload::trim_to_machine(workload::generate_ctc(params, 20260808),
                                     64);
  }();
  return w;
}

ServeOptions recovery_options(AdmissionJournal* journal) {
  ServeOptions options;
  options.machine.nodes = 64;
  options.spec = core::parse_spec("FCFS+EASY");
  options.speed = 0;
  options.journal = journal;
  options.feed_restarts_from_start = true;  // a trace replay re-delivers
  return options;
}

ServeReport run_once(ServeOptions options) {
  workload::WorkloadSource source(recovery_workload());
  serve::JobSourceFeed feed(source);
  return serve::serve(feed, options);
}

/// Serve with an abort request after `polls` signal polls — the in-process
/// stand-in for a kill: serve() returns immediately, no drain, and only
/// the journal knows how far the run got.
ServeReport run_aborted(AdmissionJournal* journal, int polls,
                        const fault::FaultOptions& faults = {}) {
  ServeOptions options = recovery_options(journal);
  options.faults = faults;
  int calls = 0;
  options.poll_signal = [&calls, polls]() mutable {
    return ++calls > polls ? 2 : 0;
  };
  return run_once(options);
}

void expect_reports_identical(const ServeReport& a, const ServeReport& b) {
  EXPECT_EQ(a.schedule_fnv, b.schedule_fnv);
  EXPECT_EQ(a.submitted, b.submitted);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.decisions, b.decisions);
  EXPECT_EQ(a.decision_latency_ns.count(), b.decision_latency_ns.count());
  EXPECT_EQ(a.shed_capacity, b.shed_capacity);
  EXPECT_EQ(a.shed_backlog, b.shed_backlog);
  EXPECT_EQ(a.rejected_invalid, b.rejected_invalid);
  EXPECT_EQ(a.late_arrivals, b.late_arrivals);
  EXPECT_EQ(a.virtual_makespan, b.virtual_makespan);
  ASSERT_EQ(a.has_metrics, b.has_metrics);
  if (a.has_metrics) {
    EXPECT_EQ(a.metrics.art, b.metrics.art);  // bit-identical
    EXPECT_EQ(a.metrics.utilization, b.metrics.utilization);
  }
}

TEST(ServeRecovery, JournalingOffAndOnProduceTheSameSchedule) {
  const ServeReport plain = run_once(recovery_options(nullptr));
  TempJournal f("journal-overhead");
  AdmissionJournal journal(f.path());
  const ServeReport journaled = run_once(recovery_options(&journal));
  expect_reports_identical(plain, journaled);
  EXPECT_FALSE(journaled.recovered);
  // run header + one admit + one start + one done per job.
  EXPECT_EQ(journaled.journal_appends, 1 + 3 * plain.submitted);
}

TEST(ServeRecovery, RestartAtRandomizedKillPointsIsBitIdentical) {
  const ServeReport reference = run_once(recovery_options(nullptr));

  // A fixed spread of early/mid/late kills plus seed-derived ones: the
  // replay protocol must not care where the run died.
  std::vector<int> kill_points = {1, 3, 25, 200};
  util::Rng rng(0xC0FFEEu);
  for (int i = 0; i < 3; ++i) {
    kill_points.push_back(
        1 + static_cast<int>(rng.next_u64() % (2 * reference.decisions)));
  }
  for (const int polls : kill_points) {
    SCOPED_TRACE("killed after " + std::to_string(polls) + " polls");
    TempJournal f("kill-point");
    {
      AdmissionJournal journal(f.path());
      // A kill point past the end of the run simply completes — the
      // journal then holds a full history and the restart is pure replay.
      (void)run_aborted(&journal, polls);
    }
    AdmissionJournal journal(f.path());
    const std::size_t journaled_at_open = journal.admitted().size();
    const ServeReport resumed = run_once(recovery_options(&journal));
    EXPECT_TRUE(resumed.recovered);
    expect_reports_identical(reference, resumed);
    EXPECT_EQ(resumed.recovered_jobs, journaled_at_open);
  }
}

TEST(ServeRecovery, RestartsComposeAcrossRepeatedCrashes) {
  const ServeReport reference = run_once(recovery_options(nullptr));
  TempJournal f("double-kill");
  {
    AdmissionJournal journal(f.path());
    (void)run_aborted(&journal, 10);
  }
  {
    // The second run recovers the first and dies again, later.
    AdmissionJournal journal(f.path());
    const ServeReport dead = run_aborted(&journal, 60);
    EXPECT_TRUE(dead.recovered);
  }
  AdmissionJournal journal(f.path());
  EXPECT_EQ(journal.runs(), 2u);
  const ServeReport resumed = run_once(recovery_options(&journal));
  EXPECT_TRUE(resumed.recovered);
  expect_reports_identical(reference, resumed);
}

TEST(ServeRecovery, FaultyRunRecoversWithRequeuesIntact) {
  // Kill-restart under fault injection: the journal's (job, epoch) keying
  // must keep a requeued job's second start distinct from its first.
  fault::TraceInjector injector(
      {{5'000, -32}, {40'000, +32}, {80'000, -16}, {120'000, +16}}, 64);
  fault::FaultOptions faults;
  faults.trace = &injector.trace();

  ServeOptions plain = recovery_options(nullptr);
  plain.faults = faults;
  const ServeReport reference = run_once(plain);
  EXPECT_GT(reference.killed, 0u);
  EXPECT_EQ(reference.killed, reference.requeued);

  TempJournal f("faulty-kill");
  {
    AdmissionJournal journal(f.path());
    (void)run_aborted(&journal, 40, faults);
  }
  AdmissionJournal journal(f.path());
  ServeOptions resumed_options = recovery_options(&journal);
  resumed_options.faults = faults;
  const ServeReport resumed = run_once(resumed_options);
  expect_reports_identical(reference, resumed);
  EXPECT_EQ(resumed.killed, reference.killed);
  EXPECT_EQ(resumed.requeued, reference.requeued);
  EXPECT_EQ(resumed.min_capacity, reference.min_capacity);
}

TEST(ServeRecovery, PacedRecoveryUnderManualClockIsDeterministic) {
  // The paced path resumes its virtual clock at the last journaled instant
  // instead of re-pacing the past; under ManualClock the whole exercise is
  // instantaneous and exactly reproducible.
  const auto paced_run = [](AdmissionJournal* journal,
                            int abort_after) -> ServeReport {
    util::ManualClock clock;
    ServeOptions options = recovery_options(journal);
    options.speed = 1e9;  // paced, but every sleep jumps virtual time
    options.clock = &clock;
    if (abort_after > 0) {
      options.poll_signal = [calls = 0, polls = abort_after]() mutable {
        return ++calls > polls ? 2 : 0;
      };
    }
    return run_once(options);
  };
  const ServeReport reference = paced_run(nullptr, 0);
  TempJournal f("paced-kill");
  {
    AdmissionJournal journal(f.path());
    (void)paced_run(&journal, 30);
  }
  AdmissionJournal journal(f.path());
  const ServeReport resumed = paced_run(&journal, 0);
  EXPECT_TRUE(resumed.recovered);
  EXPECT_EQ(resumed.schedule_fnv, reference.schedule_fnv);
  EXPECT_EQ(resumed.completed, reference.completed);
  EXPECT_EQ(resumed.decisions, reference.decisions);
}

TEST(ServeRecovery, ChaosKnobRequiresAJournal) {
  ServeOptions options = recovery_options(nullptr);
  options.chaos_kill_after_appends = 5;
  workload::WorkloadSource source(recovery_workload());
  serve::JobSourceFeed feed(source);
  EXPECT_THROW(serve::serve(feed, options), std::invalid_argument);
}

// --------------------------------------------- wall-clock SIGKILL smoke

/// Child half of the smoke test: re-exec'd by the parent with the journal
/// path and chaos budget in the environment, runs the recovery workload
/// and is SIGKILL'd mid-stream by the chaos knob. Skipped (not run) in a
/// normal test invocation.
TEST(ServeRecovery, ChildCrashRun) {
  const char* path = std::getenv("JSCHED_RECOVERY_JOURNAL");
  const char* chaos = std::getenv("JSCHED_RECOVERY_CHAOS");
  if (path == nullptr || chaos == nullptr) {
    GTEST_SKIP() << "parent-driven child test";
  }
  AdmissionJournal journal(path);
  ServeOptions options = recovery_options(&journal);
  options.chaos_kill_after_appends =
      std::strtoull(chaos, nullptr, 10);
  (void)run_once(options);
  std::fprintf(stderr, "child survived its chaos budget\n");
  std::abort();  // must be unreachable: the chaos knob kills first
}

TEST(ServeRecovery, SigkilledProcessRecoversBitIdentical) {
  const ServeReport reference = run_once(recovery_options(nullptr));
  TempJournal f("sigkill-smoke");
  // Two real SIGKILLs at different depths, then an in-process restart.
  for (const char* budget : {"120", "700"}) {
    auto child = util::Subprocess::spawn(
        {util::self_exe_path(),
         "--gtest_filter=ServeRecovery.ChildCrashRun", "--gtest_brief=1"},
        {{"JSCHED_RECOVERY_JOURNAL", f.path()},
         {"JSCHED_RECOVERY_CHAOS", budget}});
    const util::ExitStatus status = child.wait();
    EXPECT_TRUE(status.signaled) << status.describe();
    EXPECT_EQ(status.code, SIGKILL) << status.describe();
  }
  AdmissionJournal journal(f.path());
  EXPECT_TRUE(journal.has_history());
  EXPECT_EQ(journal.runs(), 2u);
  const ServeReport resumed = run_once(recovery_options(&journal));
  EXPECT_TRUE(resumed.recovered);
  expect_reports_identical(reference, resumed);
}

}  // namespace
}  // namespace jsched
