#include "metrics/bounds.h"

#include <gtest/gtest.h>

#include "core/factory.h"
#include "metrics/objectives.h"
#include "test_support.h"
#include "workload/ctc_model.h"
#include "workload/random_model.h"
#include "workload/transforms.h"

namespace jsched::metrics {
namespace {

using test::make_job;

sim::Machine machine(int nodes = 8) {
  sim::Machine m;
  m.nodes = nodes;
  return m;
}

TEST(MakespanBound, SingleJob) {
  const auto w = test::make_workload({make_job(0, 4, 100)});
  EXPECT_EQ(makespan_lower_bound(w, machine()), 100);
}

TEST(MakespanBound, AreaDominates) {
  // 4 jobs x 8 nodes x 100 s on an 8-node machine: 400 s of pure work.
  const auto w = test::make_workload({
      make_job(0, 8, 100), make_job(0, 8, 100),
      make_job(0, 8, 100), make_job(0, 8, 100),
  });
  EXPECT_EQ(makespan_lower_bound(w, machine()), 400);
}

TEST(MakespanBound, LateArrivalDominates) {
  const auto w = test::make_workload({
      make_job(0, 1, 10),
      make_job(1000, 1, 50),
  });
  EXPECT_EQ(makespan_lower_bound(w, machine()), 1050);
}

TEST(ArtBound, SingleJobIsTight) {
  const auto w = test::make_workload({make_job(0, 4, 100)});
  EXPECT_DOUBLE_EQ(art_lower_bound(w, machine()), 100.0);
}

TEST(ArtBound, SerializedFullMachineJobs) {
  // Two full-machine 100 s jobs at t=0: any schedule serializes them, so
  // responses are >= 100 and >= 200 -> ART >= 150.
  const auto w = test::make_workload({
      make_job(0, 8, 100),
      make_job(0, 8, 100),
  });
  EXPECT_GE(art_lower_bound(w, machine()), 150.0);
}

TEST(AwrtBound, WeightTimesRuntime) {
  // weight = 4*100 = 400; response >= 100 -> bound = 400*100 / 1.
  const auto w = test::make_workload({make_job(0, 4, 100)});
  EXPECT_DOUBLE_EQ(awrt_lower_bound(w), 40000.0);
}

TEST(Bounds, CancelledJobsUseTheirLimit) {
  // runtime 100 > estimate 60: the job occupies 60 s, so bounds use 60.
  const auto w = test::make_workload({make_job(0, 8, 100, 60)});
  EXPECT_EQ(makespan_lower_bound(w, machine()), 60);
  EXPECT_DOUBLE_EQ(art_lower_bound(w, machine()), 60.0);
}

TEST(PotentialImprovement, Basics) {
  EXPECT_DOUBLE_EQ(potential_improvement(200.0, 100.0), 0.5);
  EXPECT_DOUBLE_EQ(potential_improvement(100.0, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(potential_improvement(100.0, 150.0), 0.0);  // clamped
  EXPECT_THROW(potential_improvement(0.0, 1.0), std::invalid_argument);
}

// The bounds must hold for every algorithm on every workload — the whole
// point of §2.3's "potential improvement" estimate.
class BoundsHold : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BoundsHold, EverySimulatedScheduleRespectsTheBounds) {
  workload::CtcModelParams p;
  p.job_count = 600;
  const auto w =
      workload::trim_to_machine(workload::generate_ctc(p, 99), 256);
  const auto m = machine(256);
  const double art_lb = art_lower_bound(w, m);
  const double awrt_lb = awrt_lower_bound(w);
  const Time ms_lb = makespan_lower_bound(w, m);

  const auto spec = core::paper_grid(core::WeightKind::kUnit)[GetParam()];
  SCOPED_TRACE(spec.display_name());
  const auto s = test::run(spec, w, 256);
  EXPECT_GE(average_response_time(s) * (1 + 1e-9), art_lb);
  EXPECT_GE(average_weighted_response_time(s) * (1 + 1e-9), awrt_lb);
  EXPECT_GE(s.makespan(), ms_lb);
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, BoundsHold,
                         ::testing::Range<std::size_t>(0, 13));

}  // namespace
}  // namespace jsched::metrics
