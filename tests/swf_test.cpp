#include "workload/swf.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/factory.h"
#include "fault/fault.h"
#include "sim/machine.h"
#include "sim/schedule.h"
#include "sim/simulator.h"
#include "test_support.h"

namespace jsched::workload {
namespace {

// One valid SWF record: job 1, submit 100, wait 5, run 600, alloc 4, ...
// req_procs 4, req_time 1200, user 12.
constexpr const char* kRecord =
    "1 100 5 600 4 -1 -1 4 1200 -1 1 12 -1 -1 -1 -1 -1 -1\n";

TEST(SwfReader, ParsesBasicRecord) {
  std::istringstream in(std::string("; header comment\n") + kRecord);
  SwfReadStats stats;
  const Workload w = read_swf(in, "t", &stats);
  ASSERT_EQ(w.size(), 1u);
  EXPECT_EQ(stats.comments, 1u);
  EXPECT_EQ(stats.accepted, 1u);
  EXPECT_EQ(w[0].submit, 0);  // origin-shifted
  EXPECT_EQ(w[0].nodes, 4);
  EXPECT_EQ(w[0].runtime, 600);
  EXPECT_EQ(w[0].estimate, 1200);
  EXPECT_EQ(w[0].user, 12);
}

TEST(SwfReader, SkipsUnusableRecords) {
  std::istringstream in(
      "1 100 5 -1 4 -1 -1 4 1200 -1 1 12 -1 -1 -1 -1 -1 -1\n"  // no runtime
      "2 100 5 600 -1 -1 -1 -1 1200 -1 1 12 -1 -1 -1 -1 -1 -1\n"  // no procs
      + std::string(kRecord));
  SwfReadStats stats;
  const Workload w = read_swf(in, "t", &stats);
  EXPECT_EQ(stats.skipped_invalid, 2u);
  EXPECT_EQ(w.size(), 1u);
}

TEST(SwfReader, ClampsOverrunEstimates) {
  // Runtime 600 but requested time only 300: job overran and should be
  // modelled as running to (a raised) limit.
  std::istringstream in("1 0 0 600 2 -1 -1 2 300 -1 1 1 -1 -1 -1 -1 -1 -1\n");
  SwfReadStats stats;
  const Workload w = read_swf(in, "t", &stats);
  EXPECT_EQ(stats.clamped_estimate, 1u);
  EXPECT_EQ(w[0].estimate, 600);
}

TEST(SwfReader, FallsBackToAllocatedProcs) {
  std::istringstream in("1 0 0 600 8 -1 -1 -1 900 -1 1 1 -1 -1 -1 -1 -1 -1\n");
  const Workload w = read_swf(in);
  ASSERT_EQ(w.size(), 1u);
  EXPECT_EQ(w[0].nodes, 8);
}

TEST(SwfReader, MissingRequestedTimeUsesRuntime) {
  std::istringstream in("1 0 0 600 2 -1 -1 2 -1 -1 1 1 -1 -1 -1 -1 -1 -1\n");
  const Workload w = read_swf(in);
  EXPECT_EQ(w[0].estimate, 600);
}

TEST(SwfReader, ThrowsOnMalformedLine) {
  std::istringstream in("garbage line\n");
  EXPECT_THROW(read_swf(in), std::runtime_error);
}

TEST(SwfReader, ShortRecordThrows) {
  std::istringstream in("1 2 3\n");
  EXPECT_THROW(read_swf(in), std::runtime_error);
}

TEST(SwfReader, StrictThrowsOnNonFiniteField) {
  // Whether the library's num_get rejects "nan" outright (libstdc++) or
  // parses it into a non-finite double, strict mode must throw before any
  // integer cast sees the value.
  std::istringstream in(
      "1 nan 5 600 4 -1 -1 4 1200 -1 1 12 -1 -1 -1 -1 -1 -1\n");
  EXPECT_THROW(read_swf(in), std::runtime_error);
}

TEST(SwfReader, StrictThrowsOnOutOfRangeField) {
  std::istringstream in(
      "1 1e20 5 600 4 -1 -1 4 1200 -1 1 12 -1 -1 -1 -1 -1 -1\n");
  EXPECT_THROW(read_swf(in), std::runtime_error);
}

TEST(SwfLenient, SkipsMalformedLinesAndCollectsReport) {
  // "nan" fails numeric extraction (libstdc++'s num_get accepts no nan/inf
  // spellings), so it lands under non-numeric-field; "1e20" parses fine
  // and is caught by the range guard instead.
  std::istringstream in(
      std::string("garbage line\n") + "1 2 3\n" +
      "2 nan 5 600 4 -1 -1 4 1200 -1 1 12 -1 -1 -1 -1 -1 -1\n" +
      "3 1e20 5 600 4 -1 -1 4 1200 -1 1 12 -1 -1 -1 -1 -1 -1\n" + kRecord);
  SwfReadStats stats;
  SwfParseReport report;
  report.malformed = 99;  // stale content: read_swf must reset the report
  SwfOptions options;
  options.lenient = true;
  options.report = &report;
  const Workload w = read_swf(in, "dirty", &stats, options);
  ASSERT_EQ(w.size(), 1u);
  EXPECT_EQ(stats.accepted, 1u);
  EXPECT_EQ(stats.skipped_malformed, 4u);
  EXPECT_EQ(report.total(), 4u);
  EXPECT_EQ(report.malformed, 3u);
  EXPECT_EQ(report.out_of_range, 1u);
  EXPECT_EQ(report.reason_counts.at("non-numeric-field"), 2u);
  EXPECT_EQ(report.reason_counts.at("short-record"), 1u);
  EXPECT_EQ(report.reason_counts.at("out-of-range-field"), 1u);
  ASSERT_EQ(report.samples.size(), 4u);
  EXPECT_EQ(report.samples[0].line, 1u);
  EXPECT_EQ(report.samples[0].reason, "non-numeric-field");
  EXPECT_EQ(report.samples[1].line, 2u);
  EXPECT_EQ(report.samples[1].reason, "short-record");
  EXPECT_EQ(report.samples[2].reason, "non-numeric-field");
  EXPECT_EQ(report.samples[3].reason, "out-of-range-field");
}

TEST(SwfLenient, SummaryNamesEveryReason) {
  std::istringstream in("1 2 3\n4 5\ngarbage\n");
  SwfParseReport report;
  SwfOptions options;
  options.lenient = true;
  options.report = &report;
  const Workload w = read_swf(in, "t", nullptr, options);
  EXPECT_TRUE(w.empty());
  EXPECT_EQ(report.summary(),
            "3 records skipped (non-numeric-field=1, short-record=2)");
}

TEST(SwfLenient, WorksWithoutReport) {
  std::istringstream in(std::string("junk\n") + kRecord);
  SwfReadStats stats;
  SwfOptions options;
  options.lenient = true;
  const Workload w = read_swf(in, "t", &stats, options);
  EXPECT_EQ(w.size(), 1u);
  EXPECT_EQ(stats.skipped_malformed, 1u);
}

TEST(SwfLenient, SampleListIsCapped) {
  std::string text;
  for (int i = 0; i < 12; ++i) text += "1 2 3\n";
  std::istringstream in(text);
  SwfParseReport report;
  SwfOptions options;
  options.lenient = true;
  options.report = &report;
  const Workload w = read_swf(in, "t", nullptr, options);
  EXPECT_TRUE(w.empty());
  EXPECT_EQ(report.reason_counts.at("short-record"), 12u);
  EXPECT_EQ(report.samples.size(), SwfParseReport::kMaxSamples);
}

TEST(SwfReader, EmptyStreamYieldsEmptyWorkload) {
  std::istringstream in("; only comments\n\n");
  const Workload w = read_swf(in);
  EXPECT_TRUE(w.empty());
}

TEST(SwfRoundTrip, WriteThenReadPreservesJobs) {
  const Workload original = test::make_workload({
      test::make_job(0, 4, 100, 200),
      test::make_job(50, 16, 3600, 7200),
      test::make_job(700, 1, 1, 1),
  });
  std::stringstream buf;
  write_swf(buf, original);
  const Workload reread = read_swf(buf, "roundtrip");
  ASSERT_EQ(reread.size(), original.size());
  for (JobId i = 0; i < original.size(); ++i) {
    EXPECT_EQ(reread[i].submit, original[i].submit);
    EXPECT_EQ(reread[i].nodes, original[i].nodes);
    EXPECT_EQ(reread[i].runtime, original[i].runtime);
    EXPECT_EQ(reread[i].estimate, original[i].estimate);
  }
}

// One record per archive status code; only the status field (11th token)
// varies.
std::string record_with_status(int job, const char* status) {
  return std::to_string(job) + " 0 0 600 4 -1 -1 4 1200 -1 " + status +
         " 12 -1 -1 -1 -1 -1 -1\n";
}

TEST(SwfStatus, SurfacesEveryStatusCode) {
  std::istringstream in(record_with_status(1, "1") +   // completed
                        record_with_status(2, "0") +   // failed
                        record_with_status(3, "5") +   // cancelled
                        record_with_status(4, "3") +   // partial -> unknown
                        record_with_status(5, "-1"));  // missing -> unknown
  const Workload w = read_swf(in);
  ASSERT_EQ(w.size(), 5u);
  EXPECT_EQ(w[0].status, JobStatus::kCompleted);
  EXPECT_EQ(w[1].status, JobStatus::kFailed);
  EXPECT_EQ(w[2].status, JobStatus::kCancelled);
  EXPECT_EQ(w[3].status, JobStatus::kUnknown);
  EXPECT_EQ(w[4].status, JobStatus::kUnknown);
}

TEST(SwfStatus, DropUnsuccessfulKeepsOnlyCompleted) {
  std::istringstream in(record_with_status(1, "1") + record_with_status(2, "0") +
                        record_with_status(3, "5") + record_with_status(4, "2"));
  SwfReadStats stats;
  SwfOptions options;
  options.drop_unsuccessful = true;
  const Workload w = read_swf(in, "t", &stats, options);
  ASSERT_EQ(w.size(), 1u);
  EXPECT_EQ(w[0].status, JobStatus::kCompleted);
  EXPECT_EQ(stats.accepted, 1u);
  EXPECT_EQ(stats.skipped_unsuccessful, 3u);
  EXPECT_EQ(stats.skipped_invalid, 0u);
}

TEST(SwfStatus, DropUnsuccessfulCountsInvalidSeparately) {
  // An unusable record (no runtime) is skipped_invalid even when its status
  // would also have been dropped: the invalid-fields check runs first.
  std::istringstream in("1 0 0 -1 4 -1 -1 4 1200 -1 0 12 -1 -1 -1 -1 -1 -1\n" +
                        record_with_status(2, "1"));
  SwfReadStats stats;
  SwfOptions options;
  options.drop_unsuccessful = true;
  const Workload w = read_swf(in, "t", &stats, options);
  EXPECT_EQ(w.size(), 1u);
  EXPECT_EQ(stats.skipped_invalid, 1u);
  EXPECT_EQ(stats.skipped_unsuccessful, 0u);
}

TEST(SwfStatus, RoundTripsThroughWrite) {
  std::istringstream in(record_with_status(1, "1") + record_with_status(2, "0") +
                        record_with_status(3, "5") + record_with_status(4, "4"));
  const Workload original = read_swf(in);
  std::stringstream buf;
  write_swf(buf, original);
  const Workload reread = read_swf(buf, "roundtrip");
  ASSERT_EQ(reread.size(), original.size());
  for (JobId i = 0; i < original.size(); ++i) {
    EXPECT_EQ(reread[i].status, original[i].status) << "job " << i;
  }
  // kUnknown serializes as -1, the archive's "not recorded".
  EXPECT_EQ(reread[3].status, JobStatus::kUnknown);
}

TEST(SwfFaultRoundTrip, KilledAttemptsSurviveWriteAndRead) {
  // One 4-node job alone on a 4-node machine; a full outage at t=100 kills
  // its first attempt, capacity returns at t=200 and the job reruns to
  // completion. The executed workload carries the kill as a status-0
  // ("failed") record — exactly what a real archive trace would show — and
  // that status must survive an SWF write/read round trip.
  const Workload w = test::make_workload({test::make_job(0, 4, 600, 1200)});
  sim::Machine m;
  m.nodes = 4;
  const fault::TraceInjector inj({{100, -4}, {200, 4}}, m.nodes);
  sim::SimOptions opt;
  opt.faults.trace = &inj.trace();
  auto scheduler = core::make_scheduler(core::AlgorithmSpec{});
  const sim::Schedule s = sim::simulate(m, *scheduler, w, opt);
  ASSERT_EQ(s.attempts.size(), 1u);

  const Workload executed = sim::as_executed_workload(s, w);
  const auto count_status = [](const Workload& wl, JobStatus st) {
    std::size_t n = 0;
    for (JobId i = 0; i < wl.size(); ++i) {
      if (wl[i].status == st) ++n;
    }
    return n;
  };
  ASSERT_EQ(executed.size(), 2u);
  EXPECT_EQ(count_status(executed, JobStatus::kCompleted), 1u);
  EXPECT_EQ(count_status(executed, JobStatus::kFailed), 1u);

  std::stringstream buf;
  write_swf(buf, executed);
  const Workload reread = read_swf(buf, "executed");
  ASSERT_EQ(reread.size(), executed.size());
  for (JobId i = 0; i < executed.size(); ++i) {
    EXPECT_EQ(reread[i].status, executed[i].status) << "job " << i;
    EXPECT_EQ(reread[i].runtime, executed[i].runtime) << "job " << i;
  }
  EXPECT_EQ(count_status(reread, JobStatus::kFailed), 1u);
}

TEST(SwfFile, MissingFileThrows) {
  EXPECT_THROW(read_swf_file("/nonexistent/path.swf"), std::runtime_error);
}

}  // namespace
}  // namespace jsched::workload
