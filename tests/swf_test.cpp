#include "workload/swf.h"

#include <gtest/gtest.h>

#include <sstream>

#include "test_support.h"

namespace jsched::workload {
namespace {

// One valid SWF record: job 1, submit 100, wait 5, run 600, alloc 4, ...
// req_procs 4, req_time 1200, user 12.
constexpr const char* kRecord =
    "1 100 5 600 4 -1 -1 4 1200 -1 1 12 -1 -1 -1 -1 -1 -1\n";

TEST(SwfReader, ParsesBasicRecord) {
  std::istringstream in(std::string("; header comment\n") + kRecord);
  SwfReadStats stats;
  const Workload w = read_swf(in, "t", &stats);
  ASSERT_EQ(w.size(), 1u);
  EXPECT_EQ(stats.comments, 1u);
  EXPECT_EQ(stats.accepted, 1u);
  EXPECT_EQ(w[0].submit, 0);  // origin-shifted
  EXPECT_EQ(w[0].nodes, 4);
  EXPECT_EQ(w[0].runtime, 600);
  EXPECT_EQ(w[0].estimate, 1200);
  EXPECT_EQ(w[0].user, 12);
}

TEST(SwfReader, SkipsUnusableRecords) {
  std::istringstream in(
      "1 100 5 -1 4 -1 -1 4 1200 -1 1 12 -1 -1 -1 -1 -1 -1\n"  // no runtime
      "2 100 5 600 -1 -1 -1 -1 1200 -1 1 12 -1 -1 -1 -1 -1 -1\n"  // no procs
      + std::string(kRecord));
  SwfReadStats stats;
  const Workload w = read_swf(in, "t", &stats);
  EXPECT_EQ(stats.skipped_invalid, 2u);
  EXPECT_EQ(w.size(), 1u);
}

TEST(SwfReader, ClampsOverrunEstimates) {
  // Runtime 600 but requested time only 300: job overran and should be
  // modelled as running to (a raised) limit.
  std::istringstream in("1 0 0 600 2 -1 -1 2 300 -1 1 1 -1 -1 -1 -1 -1 -1\n");
  SwfReadStats stats;
  const Workload w = read_swf(in, "t", &stats);
  EXPECT_EQ(stats.clamped_estimate, 1u);
  EXPECT_EQ(w[0].estimate, 600);
}

TEST(SwfReader, FallsBackToAllocatedProcs) {
  std::istringstream in("1 0 0 600 8 -1 -1 -1 900 -1 1 1 -1 -1 -1 -1 -1 -1\n");
  const Workload w = read_swf(in);
  ASSERT_EQ(w.size(), 1u);
  EXPECT_EQ(w[0].nodes, 8);
}

TEST(SwfReader, MissingRequestedTimeUsesRuntime) {
  std::istringstream in("1 0 0 600 2 -1 -1 2 -1 -1 1 1 -1 -1 -1 -1 -1 -1\n");
  const Workload w = read_swf(in);
  EXPECT_EQ(w[0].estimate, 600);
}

TEST(SwfReader, ThrowsOnMalformedLine) {
  std::istringstream in("garbage line\n");
  EXPECT_THROW(read_swf(in), std::runtime_error);
}

TEST(SwfReader, ShortRecordThrows) {
  std::istringstream in("1 2 3\n");
  EXPECT_THROW(read_swf(in), std::runtime_error);
}

TEST(SwfReader, EmptyStreamYieldsEmptyWorkload) {
  std::istringstream in("; only comments\n\n");
  const Workload w = read_swf(in);
  EXPECT_TRUE(w.empty());
}

TEST(SwfRoundTrip, WriteThenReadPreservesJobs) {
  const Workload original = test::make_workload({
      test::make_job(0, 4, 100, 200),
      test::make_job(50, 16, 3600, 7200),
      test::make_job(700, 1, 1, 1),
  });
  std::stringstream buf;
  write_swf(buf, original);
  const Workload reread = read_swf(buf, "roundtrip");
  ASSERT_EQ(reread.size(), original.size());
  for (JobId i = 0; i < original.size(); ++i) {
    EXPECT_EQ(reread[i].submit, original[i].submit);
    EXPECT_EQ(reread[i].nodes, original[i].nodes);
    EXPECT_EQ(reread[i].runtime, original[i].runtime);
    EXPECT_EQ(reread[i].estimate, original[i].estimate);
  }
}

// One record per archive status code; only the status field (11th token)
// varies.
std::string record_with_status(int job, const char* status) {
  return std::to_string(job) + " 0 0 600 4 -1 -1 4 1200 -1 " + status +
         " 12 -1 -1 -1 -1 -1 -1\n";
}

TEST(SwfStatus, SurfacesEveryStatusCode) {
  std::istringstream in(record_with_status(1, "1") +   // completed
                        record_with_status(2, "0") +   // failed
                        record_with_status(3, "5") +   // cancelled
                        record_with_status(4, "3") +   // partial -> unknown
                        record_with_status(5, "-1"));  // missing -> unknown
  const Workload w = read_swf(in);
  ASSERT_EQ(w.size(), 5u);
  EXPECT_EQ(w[0].status, JobStatus::kCompleted);
  EXPECT_EQ(w[1].status, JobStatus::kFailed);
  EXPECT_EQ(w[2].status, JobStatus::kCancelled);
  EXPECT_EQ(w[3].status, JobStatus::kUnknown);
  EXPECT_EQ(w[4].status, JobStatus::kUnknown);
}

TEST(SwfStatus, DropUnsuccessfulKeepsOnlyCompleted) {
  std::istringstream in(record_with_status(1, "1") + record_with_status(2, "0") +
                        record_with_status(3, "5") + record_with_status(4, "2"));
  SwfReadStats stats;
  SwfOptions options;
  options.drop_unsuccessful = true;
  const Workload w = read_swf(in, "t", &stats, options);
  ASSERT_EQ(w.size(), 1u);
  EXPECT_EQ(w[0].status, JobStatus::kCompleted);
  EXPECT_EQ(stats.accepted, 1u);
  EXPECT_EQ(stats.skipped_unsuccessful, 3u);
  EXPECT_EQ(stats.skipped_invalid, 0u);
}

TEST(SwfStatus, DropUnsuccessfulCountsInvalidSeparately) {
  // An unusable record (no runtime) is skipped_invalid even when its status
  // would also have been dropped: the invalid-fields check runs first.
  std::istringstream in("1 0 0 -1 4 -1 -1 4 1200 -1 0 12 -1 -1 -1 -1 -1 -1\n" +
                        record_with_status(2, "1"));
  SwfReadStats stats;
  SwfOptions options;
  options.drop_unsuccessful = true;
  const Workload w = read_swf(in, "t", &stats, options);
  EXPECT_EQ(w.size(), 1u);
  EXPECT_EQ(stats.skipped_invalid, 1u);
  EXPECT_EQ(stats.skipped_unsuccessful, 0u);
}

TEST(SwfStatus, RoundTripsThroughWrite) {
  std::istringstream in(record_with_status(1, "1") + record_with_status(2, "0") +
                        record_with_status(3, "5") + record_with_status(4, "4"));
  const Workload original = read_swf(in);
  std::stringstream buf;
  write_swf(buf, original);
  const Workload reread = read_swf(buf, "roundtrip");
  ASSERT_EQ(reread.size(), original.size());
  for (JobId i = 0; i < original.size(); ++i) {
    EXPECT_EQ(reread[i].status, original[i].status) << "job " << i;
  }
  // kUnknown serializes as -1, the archive's "not recorded".
  EXPECT_EQ(reread[3].status, JobStatus::kUnknown);
}

TEST(SwfFile, MissingFileThrows) {
  EXPECT_THROW(read_swf_file("/nonexistent/path.swf"), std::runtime_error);
}

}  // namespace
}  // namespace jsched::workload
