#include "eval/experiment.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "eval/reporting.h"
#include "test_support.h"

namespace jsched::eval {
namespace {

sim::Machine machine16() {
  sim::Machine m;
  m.nodes = 16;
  return m;
}

TEST(Experiment, RunOneFillsAllFields) {
  const auto w = test::small_mixed_workload();
  ExperimentOptions opt;
  opt.measure_cpu = true;
  core::AlgorithmSpec spec;
  spec.dispatch = core::DispatchKind::kEasy;
  const RunResult r = run_one(machine16(), spec, w, opt);
  EXPECT_EQ(r.jobs, w.size());
  EXPECT_EQ(r.scheduler_name, "FCFS+EASY");
  EXPECT_GT(r.art, 0.0);
  EXPECT_GT(r.awrt, 0.0);
  EXPECT_GE(r.wait, 0.0);
  EXPECT_GT(r.makespan, 0.0);
  EXPECT_GT(r.utilization, 0.0);
  EXPECT_GE(r.scheduler_cpu_seconds, 0.0);
  EXPECT_GT(r.max_queue_length, 0u);
}

TEST(Experiment, ObjectiveCostFollowsWeightKind) {
  const auto w = test::small_mixed_workload();
  ExperimentOptions opt;
  opt.measure_cpu = false;
  core::AlgorithmSpec unit;
  const auto ru = run_one(machine16(), unit, w, opt);
  EXPECT_DOUBLE_EQ(ru.objective_cost(), ru.art);

  core::AlgorithmSpec area;
  area.weight = core::WeightKind::kEstimatedArea;
  const auto ra = run_one(machine16(), area, w, opt);
  EXPECT_DOUBLE_EQ(ra.objective_cost(), ra.awrt);
}

TEST(Experiment, ProgressCallbackFires) {
  const auto w = workload::Workload(
      {test::make_job(0, 1, 10)}, "tiny");
  ExperimentOptions opt;
  opt.measure_cpu = false;
  std::vector<std::string> seen;
  opt.on_run = [&](const std::string& name) { seen.push_back(name); };
  run_grid(machine16(), core::WeightKind::kUnit, w, opt);
  EXPECT_EQ(seen.size(), 13u);
  EXPECT_EQ(seen.front(), "FCFS");
  EXPECT_EQ(seen.back(), "Garey&Graham");
}

TEST(Experiment, FindLocatesConfigurations) {
  const auto w = test::small_mixed_workload();
  ExperimentOptions opt;
  opt.measure_cpu = false;
  const auto results = run_grid(machine16(), core::WeightKind::kUnit, w, opt);
  const auto& gg =
      find(results, core::OrderKind::kFcfs, core::DispatchKind::kFirstFit);
  EXPECT_EQ(gg.scheduler_name, "FCFS+FF");
  // The error names the missing pair: "which configuration?" should not
  // require a debugger.
  try {
    find(std::vector<RunResult>{}, core::OrderKind::kSmartNfiw,
         core::DispatchKind::kEasy);
    FAIL() << "expected out_of_range";
  } catch (const std::out_of_range& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(core::to_string(core::OrderKind::kSmartNfiw)),
              std::string::npos)
        << what;
    EXPECT_NE(what.find(core::to_string(core::DispatchKind::kEasy)),
              std::string::npos)
        << what;
  }
}

TEST(Reporting, TableTitleIncludesObjective) {
  EXPECT_NE(experiment_title("ctc", 100, core::WeightKind::kUnit)
                .find("unweighted"),
            std::string::npos);
  EXPECT_NE(experiment_title("ctc", 100, core::WeightKind::kEstimatedArea)
                .find("weighted"),
            std::string::npos);
}

TEST(Reporting, FigureCsvHasOneRowPerResult) {
  const auto w = test::small_mixed_workload();
  ExperimentOptions opt;
  opt.measure_cpu = false;
  const auto results = run_grid(machine16(), core::WeightKind::kUnit, w, opt);
  const std::string csv = figure_csv(results, &RunResult::art);
  // Header + 13 rows = 14 newline-terminated lines.
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(csv.begin(), csv.end(), '\n')),
            14u);
}

}  // namespace
}  // namespace jsched::eval
