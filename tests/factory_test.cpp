#include "core/factory.h"

#include <gtest/gtest.h>

#include <set>

#include "test_support.h"

namespace jsched::core {
namespace {

TEST(Factory, PaperGridHas13Configurations) {
  const auto grid = paper_grid(WeightKind::kUnit);
  EXPECT_EQ(grid.size(), 13u);
  // 4 orderings x 3 dispatches + Garey&Graham.
  std::size_t gg = 0;
  for (const auto& s : grid) gg += s.dispatch == DispatchKind::kFirstFit;
  EXPECT_EQ(gg, 1u);
}

TEST(Factory, GridCarriesRequestedWeight) {
  for (const auto& s : paper_grid(WeightKind::kEstimatedArea)) {
    EXPECT_EQ(s.weight, WeightKind::kEstimatedArea);
  }
}

TEST(Factory, DisplayNames) {
  AlgorithmSpec s;
  EXPECT_EQ(s.display_name(), "FCFS");
  s.dispatch = DispatchKind::kEasy;
  EXPECT_EQ(s.display_name(), "FCFS+EASY");
  s.dispatch = DispatchKind::kConservative;
  s.order = OrderKind::kSmartNfiw;
  EXPECT_EQ(s.display_name(), "SMART-NFIW+CONS");
  s.order = OrderKind::kFcfs;
  s.dispatch = DispatchKind::kFirstFit;
  EXPECT_EQ(s.display_name(), "Garey&Graham");
}

TEST(Factory, EveryGridEntryBuildsAndRuns) {
  const auto w = test::small_mixed_workload();
  for (const auto& spec : paper_grid(WeightKind::kUnit)) {
    SCOPED_TRACE(spec.display_name());
    auto scheduler = make_scheduler(spec);
    ASSERT_NE(scheduler, nullptr);
    EXPECT_FALSE(scheduler->name().empty());
    const auto s = test::run(spec, w, 16);
    EXPECT_EQ(s.size(), w.size());
  }
}

TEST(Factory, SchedulerNamesDistinguishConfigurations) {
  std::set<std::string> names;
  for (const auto& spec : paper_grid(WeightKind::kUnit)) {
    names.insert(make_scheduler(spec)->name());
  }
  EXPECT_EQ(names.size(), 13u);
}

TEST(Factory, SchedulerIsReusableAcrossRuns) {
  AlgorithmSpec spec;
  spec.dispatch = DispatchKind::kEasy;
  auto scheduler = make_scheduler(spec);
  sim::Machine m;
  m.nodes = 16;
  const auto w = test::small_mixed_workload();
  const auto s1 = sim::simulate(m, *scheduler, w);
  const auto s2 = sim::simulate(m, *scheduler, w);
  for (JobId i = 0; i < w.size(); ++i) {
    EXPECT_EQ(s1[i].start, s2[i].start);
  }
}

TEST(Factory, ParseSpecRoundTripsTheGrid) {
  // parse_spec(display_name) must reproduce every grid member.
  for (const WeightKind weight :
       {WeightKind::kUnit, WeightKind::kEstimatedArea}) {
    for (const AlgorithmSpec& s : paper_grid(weight)) {
      const AlgorithmSpec parsed = parse_spec(s.display_name(), weight);
      EXPECT_EQ(parsed.order, s.order) << s.display_name();
      EXPECT_EQ(parsed.dispatch, s.dispatch) << s.display_name();
      EXPECT_EQ(parsed.weight, s.weight) << s.display_name();
    }
  }
}

TEST(Factory, ParseSpecIsCaseInsensitiveAndValidates) {
  const AlgorithmSpec easy = parse_spec("fcfs+easy");
  EXPECT_EQ(easy.order, OrderKind::kFcfs);
  EXPECT_EQ(easy.dispatch, DispatchKind::kEasy);

  const AlgorithmSpec cons_c = parse_spec("FCFS+cons-c");
  EXPECT_EQ(cons_c.dispatch, DispatchKind::kConservative);
  EXPECT_TRUE(cons_c.conservative.full_compression);

  const AlgorithmSpec gg = parse_spec("gg");
  EXPECT_EQ(gg.dispatch, DispatchKind::kFirstFit);

  EXPECT_THROW(parse_spec("LIFO"), std::invalid_argument);
  EXPECT_THROW(parse_spec("FCFS+MAGIC"), std::invalid_argument);
  EXPECT_THROW(parse_spec("GG+EASY"), std::invalid_argument);
}

TEST(Factory, ToStringCoversAllKinds) {
  EXPECT_STREQ(to_string(OrderKind::kFcfs), "FCFS");
  EXPECT_STREQ(to_string(OrderKind::kPsrs), "PSRS");
  EXPECT_STREQ(to_string(OrderKind::kSmartFfia), "SMART-FFIA");
  EXPECT_STREQ(to_string(OrderKind::kSmartNfiw), "SMART-NFIW");
  EXPECT_STREQ(to_string(DispatchKind::kList), "List");
  EXPECT_STREQ(to_string(DispatchKind::kEasy), "EASY-Backfilling");
}

}  // namespace
}  // namespace jsched::core
