#include "core/ordering.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "test_support.h"
#include "util/rng.h"

namespace jsched::core {
namespace {

using test::make_job;

sim::Machine machine(int nodes = 16) {
  sim::Machine m;
  m.nodes = nodes;
  return m;
}

JobStore store_with(std::initializer_list<Job> jobs) {
  JobStore s;
  JobId id = 0;
  for (Job j : jobs) {
    j.id = id++;
    s.put(j);
  }
  return s;
}

TEST(FcfsOrder, AppendsInSubmissionOrder) {
  JobStore store = store_with({make_job(0, 1, 10), make_job(5, 1, 10)});
  FcfsOrder order;
  order.reset(machine(), store);
  order.on_submit(0, 0);
  order.on_submit(1, 5);
  ASSERT_EQ(order.order().size(), 2u);
  EXPECT_EQ(order.order()[0], 0u);
  EXPECT_EQ(order.order()[1], 1u);
  EXPECT_EQ(order.version(), 0u);  // never reorders
}

TEST(FcfsOrder, RemoveFromMiddle) {
  JobStore store =
      store_with({make_job(0, 1, 10), make_job(1, 1, 10), make_job(2, 1, 10)});
  FcfsOrder order;
  order.reset(machine(), store);
  for (JobId i = 0; i < 3; ++i) order.on_submit(i, i);
  order.on_remove(1, 3);
  ASSERT_EQ(order.order().size(), 2u);
  EXPECT_EQ(order.order()[0], 0u);
  EXPECT_EQ(order.order()[1], 2u);
}

TEST(FcfsOrder, RemoveUnknownThrows) {
  JobStore store = store_with({make_job(0, 1, 10)});
  FcfsOrder order;
  order.reset(machine(), store);
  EXPECT_THROW(order.on_remove(0, 0), std::logic_error);
}

TEST(FcfsOrder, ResetClears) {
  JobStore store = store_with({make_job(0, 1, 10)});
  FcfsOrder order;
  order.reset(machine(), store);
  order.on_submit(0, 0);
  order.reset(machine(), store);
  EXPECT_TRUE(order.order().empty());
}

// A minimal ReplanningOrder that reverses the queue, to test the replan
// trigger machinery in isolation from SMART/PSRS logic.
class ReversingOrder final : public ReplanningOrder {
 public:
  using ReplanningOrder::ReplanningOrder;
  std::string name() const override { return "REV"; }

 protected:
  std::vector<JobId> plan(const std::vector<JobId>& jobs) const override {
    return {jobs.rbegin(), jobs.rend()};
  }
};

TEST(ReplanningOrder, FirstSubmitTriggersPlan) {
  JobStore store = store_with({make_job(0, 1, 10)});
  ReversingOrder order;
  order.reset(machine(), store);
  order.on_submit(0, 0);
  EXPECT_EQ(order.replans(), 1u);
}

TEST(ReplanningOrder, ReplansWhenPlannedRatioDropsBelowThreshold) {
  JobStore store = store_with({
      make_job(0, 1, 10), make_job(1, 1, 10), make_job(2, 1, 10),
      make_job(3, 1, 10), make_job(4, 1, 10), make_job(5, 1, 10),
  });
  ReversingOrder order(2.0 / 3.0);
  order.reset(machine(), store);
  order.on_submit(0, 0);  // 0/1 < 2/3 -> replan (planned: 1)
  EXPECT_EQ(order.replans(), 1u);
  order.on_submit(1, 1);  // 1/2 < 2/3 -> replan (planned: 2)
  EXPECT_EQ(order.replans(), 2u);
  order.on_submit(2, 2);  // 2/3 = 2/3 -> no replan
  EXPECT_EQ(order.replans(), 2u);
  order.on_submit(3, 3);  // 2/4 < 2/3 -> replan (planned: 4)
  EXPECT_EQ(order.replans(), 3u);
  order.on_submit(4, 4);  // 4/5 >= 2/3 -> no replan
  order.on_submit(5, 5);  // 4/6 = 2/3 -> no replan
  EXPECT_EQ(order.replans(), 3u);
}

TEST(ReplanningOrder, UnplannedJobsQueueFcfsBehindPlan) {
  JobStore store = store_with({
      make_job(0, 1, 10), make_job(1, 1, 10), make_job(2, 1, 10),
  });
  ReversingOrder order(2.0 / 3.0);
  order.reset(machine(), store);
  order.on_submit(0, 0);
  order.on_submit(1, 1);  // replan: plan([0,1]) = [1,0]
  order.on_submit(2, 2);  // 2/3 ratio -> appended unplanned
  ASSERT_EQ(order.order().size(), 3u);
  EXPECT_EQ(order.order()[0], 1u);
  EXPECT_EQ(order.order()[1], 0u);
  EXPECT_EQ(order.order()[2], 2u);
}

TEST(ReplanningOrder, VersionBumpsOnReplanOnly) {
  JobStore store = store_with({
      make_job(0, 1, 10), make_job(1, 1, 10), make_job(2, 1, 10),
  });
  ReversingOrder order(2.0 / 3.0);
  order.reset(machine(), store);
  const auto v0 = order.version();
  order.on_submit(0, 0);
  const auto v1 = order.version();
  EXPECT_NE(v0, v1);  // replan happened
  order.on_submit(1, 1);
  const auto v2 = order.version();
  EXPECT_NE(v1, v2);
  order.on_submit(2, 2);  // no replan
  EXPECT_EQ(order.version(), v2);
  order.on_remove(1, 3);  // removals never bump
  EXPECT_EQ(order.version(), v2);
}

TEST(ReplanningOrder, RemoveMaintainsPlannedPrefixCount) {
  JobStore store = store_with({
      make_job(0, 1, 10), make_job(1, 1, 10), make_job(2, 1, 10),
      make_job(3, 1, 10),
  });
  ReversingOrder order(2.0 / 3.0);
  order.reset(machine(), store);
  order.on_submit(0, 0);
  order.on_submit(1, 1);  // plan = [1,0], planned = 2
  order.on_submit(2, 2);  // order = [1,0,2], planned 2 of 3
  order.on_remove(1, 3);  // planned job removed -> planned 1 of 2
  order.on_submit(3, 4);  // 1/3 < 2/3 -> replan over [0,2,3]
  EXPECT_EQ(order.replans(), 3u);
  ASSERT_EQ(order.order().size(), 3u);
  EXPECT_EQ(order.order()[0], 3u);  // reversed
}

TEST(ReplanningOrder, ThresholdValidation) {
  EXPECT_THROW(ReversingOrder(-0.1), std::invalid_argument);
  EXPECT_THROW(ReversingOrder(0.0), std::invalid_argument);
  EXPECT_THROW(ReversingOrder(1.5), std::invalid_argument);
  EXPECT_NO_THROW(ReversingOrder(1.0));
}

TEST(ReplanningOrder, ThresholdOneReplansEveryArrival) {
  JobStore store = store_with({
      make_job(0, 1, 10), make_job(1, 1, 10), make_job(2, 1, 10),
  });
  ReversingOrder order(1.0);
  order.reset(machine(), store);
  for (JobId i = 0; i < 3; ++i) order.on_submit(i, i);
  EXPECT_EQ(order.replans(), 3u);
}

TEST(PriorityFcfsOrder, HigherClassJumpsAhead) {
  JobStore store;
  Job a = make_job(0, 1, 10);
  a.id = 0;
  a.priority_class = 0;
  Job b = make_job(1, 1, 10);
  b.id = 1;
  b.priority_class = 2;
  Job c = make_job(2, 1, 10);
  c.id = 2;
  c.priority_class = 1;
  store.put(a);
  store.put(b);
  store.put(c);

  PriorityFcfsOrder order;
  order.reset(machine(), store);
  order.on_submit(0, 0);
  order.on_submit(1, 1);
  order.on_submit(2, 2);
  ASSERT_EQ(order.order().size(), 3u);
  EXPECT_EQ(order.order()[0], 1u);  // class 2 first
  EXPECT_EQ(order.order()[1], 2u);  // class 1
  EXPECT_EQ(order.order()[2], 0u);  // class 0
}

TEST(PriorityFcfsOrder, FcfsWithinClass) {
  JobStore store;
  for (JobId i = 0; i < 3; ++i) {
    Job j = make_job(i, 1, 10);
    j.id = i;
    j.priority_class = 1;
    store.put(j);
  }
  PriorityFcfsOrder order;
  order.reset(machine(), store);
  for (JobId i = 0; i < 3; ++i) order.on_submit(i, i);
  EXPECT_EQ(order.order()[0], 0u);
  EXPECT_EQ(order.order()[1], 1u);
  EXPECT_EQ(order.order()[2], 2u);
}

TEST(PriorityFcfsOrder, VersionBumpsOnMidQueueInsertOnly) {
  JobStore store;
  Job a = make_job(0, 1, 10);
  a.id = 0;
  a.priority_class = 1;
  Job b = make_job(1, 1, 10);
  b.id = 1;
  b.priority_class = 1;
  Job c = make_job(2, 1, 10);
  c.id = 2;
  c.priority_class = 9;
  store.put(a);
  store.put(b);
  store.put(c);

  PriorityFcfsOrder order;
  order.reset(machine(), store);
  const auto v0 = order.version();
  order.on_submit(0, 0);  // append
  order.on_submit(1, 1);  // append (same class)
  EXPECT_EQ(order.version(), v0);
  order.on_submit(2, 2);  // jumps to the front
  EXPECT_NE(order.version(), v0);
}

TEST(PriorityFcfsOrder, RemoveUnknownThrows) {
  JobStore store;
  PriorityFcfsOrder order;
  order.reset(machine(), store);
  EXPECT_THROW(order.on_remove(5, 0), std::logic_error);
}

TEST(JobStoreTest, PutAndGet) {
  JobStore s;
  Job j = make_job(5, 3, 10);
  j.id = 7;
  s.put(j);
  EXPECT_EQ(s.get(7).nodes, 3);
  EXPECT_GE(s.capacity(), 8u);
}

TEST(WeightKindTest, SchedulingWeights) {
  Job j = make_job(0, 4, 0, 100);
  j.runtime = 1;  // scrubbed/absent; estimated_area uses the estimate
  EXPECT_DOUBLE_EQ(scheduling_weight(j, WeightKind::kUnit), 1.0);
  EXPECT_DOUBLE_EQ(scheduling_weight(j, WeightKind::kEstimatedArea), 400.0);
}

TEST(IndexedRemoval, MatchesLinearScanReference) {
  // The id->position index replaced std::find-based removals; drive
  // FcfsOrder with a random submit/remove mix (removals from head, middle
  // and tail alike) against a plain vector doing the scan-and-erase the
  // old code did. Orders must agree after every operation.
  JobStore store;
  FcfsOrder order;
  order.reset(machine(), store);
  std::vector<JobId> reference;
  util::Rng rng(123);
  JobId next = 0;
  for (int op = 0; op < 4000; ++op) {
    if (reference.empty() || rng.bernoulli(0.55)) {
      Job j = make_job(op, 1, 10);
      j.id = next++;
      store.put(j);
      order.on_submit(j.id, op);
      reference.push_back(j.id);
    } else {
      const std::size_t pick = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(reference.size()) - 1));
      const JobId victim = reference[pick];
      reference.erase(reference.begin() + static_cast<std::ptrdiff_t>(pick));
      order.on_remove(victim, op);
      // Removing again must throw: the index forgot the job.
      if (op % 97 == 0) {
        EXPECT_THROW(order.on_remove(victim, op), std::logic_error);
      }
    }
    ASSERT_EQ(order.order(), reference) << "op " << op;
  }
}

TEST(IndexedRemoval, PriorityInsertKeepsIndexConsistent) {
  // Mid-queue priority insertions shift the suffix; subsequent removals
  // must still hit the right positions.
  JobStore store;
  PriorityFcfsOrder order;
  order.reset(machine(), store);
  const auto submit = [&](JobId id, std::int32_t cls) {
    Job j = make_job(0, 1, 10);
    j.id = id;
    j.priority_class = cls;
    store.put(j);
    order.on_submit(id, 0);
  };
  submit(0, 0);
  submit(1, 0);
  submit(2, 5);  // jumps the queue
  submit(3, 2);  // lands between 2 and 0
  ASSERT_EQ(order.order(), (std::vector<JobId>{2, 3, 0, 1}));
  order.on_remove(3, 1);  // mid-queue removal after mid-queue insert
  order.on_remove(1, 1);  // tail
  ASSERT_EQ(order.order(), (std::vector<JobId>{2, 0}));
  order.on_remove(2, 1);  // head
  order.on_remove(0, 1);
  EXPECT_TRUE(order.order().empty());
  EXPECT_THROW(order.on_remove(0, 1), std::logic_error);
}

}  // namespace
}  // namespace jsched::core
