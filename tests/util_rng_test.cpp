#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <vector>

namespace jsched::util {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-5.0, 3.0);
    EXPECT_GE(u, -5.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(3);
  std::array<int, 5> seen{};
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_int(10, 14);
    ASSERT_GE(v, 10);
    ASSERT_LE(v, 14);
    ++seen[static_cast<std::size_t>(v - 10)];
  }
  for (int c : seen) EXPECT_GT(c, 800);  // roughly uniform
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, UniformIntNegativeRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-7, -3);
    EXPECT_GE(v, -7);
    EXPECT_LE(v, -3);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(13);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(0.25);
  EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(Rng, WeibullShapeOneIsExponential) {
  // Weibull(k=1, lambda) == Exponential(rate 1/lambda): compare means.
  Rng rng(17);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.weibull(1.0, 3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(Rng, WeibullMeanMatchesGammaFormula) {
  Rng rng(19);
  const double shape = 0.65, scale = 263.0;
  double sum = 0;
  const int n = 300000;
  for (int i = 0; i < n; ++i) sum += rng.weibull(shape, scale);
  const double expected = scale * std::tgamma(1.0 + 1.0 / shape);
  EXPECT_NEAR(sum / n / expected, 1.0, 0.03);
}

TEST(Rng, LogUniformWithinBounds) {
  Rng rng(23);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.log_uniform(2.0, 2000.0);
    EXPECT_GE(v, 2.0 * (1 - 1e-12));
    EXPECT_LE(v, 2000.0 * (1 + 1e-12));
  }
}

TEST(Rng, LogUniformMedianIsGeometricMean) {
  Rng rng(29);
  std::vector<double> v;
  for (int i = 0; i < 50001; ++i) v.push_back(rng.log_uniform(1.0, 10000.0));
  std::nth_element(v.begin(), v.begin() + 25000, v.end());
  EXPECT_NEAR(v[25000], 100.0, 8.0);  // sqrt(1 * 10000)
}

TEST(Rng, NormalMoments) {
  Rng rng(31);
  double sum = 0, sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(sq / n - mean * mean), 2.0, 0.05);
}

TEST(Rng, DiscretePicksOnlyPositiveWeights) {
  Rng rng(37);
  const std::vector<double> w = {0.0, 3.0, 0.0, 1.0};
  for (int i = 0; i < 5000; ++i) {
    const auto idx = rng.discrete(w);
    EXPECT_TRUE(idx == 1 || idx == 3);
  }
}

TEST(Rng, DiscreteProportions) {
  Rng rng(41);
  const std::vector<double> w = {1.0, 3.0};
  int ones = 0;
  const int n = 40000;
  for (int i = 0; i < n; ++i) ones += rng.discrete(w) == 1;
  EXPECT_NEAR(static_cast<double>(ones) / n, 0.75, 0.02);
}

TEST(Rng, SplitStreamsAreIndependentlySeeded) {
  Rng parent(99);
  Rng a = parent.split();
  Rng b = parent.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(Rng, SplitIsDeterministic) {
  Rng p1(123), p2(123);
  Rng c1 = p1.split();
  Rng c2 = p2.split();
  for (int i = 0; i < 32; ++i) EXPECT_EQ(c1.next_u64(), c2.next_u64());
}

TEST(DiscreteCdf, ProbabilitiesNormalize) {
  const std::vector<double> w = {2.0, 6.0, 2.0};
  DiscreteCdf cdf(w);
  EXPECT_EQ(cdf.size(), 3u);
  EXPECT_NEAR(cdf.probability(0), 0.2, 1e-12);
  EXPECT_NEAR(cdf.probability(1), 0.6, 1e-12);
  EXPECT_NEAR(cdf.probability(2), 0.2, 1e-12);
}

TEST(DiscreteCdf, SamplingMatchesWeights) {
  const std::vector<double> w = {1.0, 0.0, 9.0};
  DiscreteCdf cdf(w);
  Rng rng(43);
  std::array<int, 3> count{};
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++count[cdf.sample(rng)];
  EXPECT_EQ(count[1], 0);
  EXPECT_NEAR(static_cast<double>(count[2]) / n, 0.9, 0.01);
}

TEST(DiscreteCdf, SingleCategory) {
  DiscreteCdf cdf(std::vector<double>{5.0});
  Rng rng(47);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(cdf.sample(rng), 0u);
}

}  // namespace
}  // namespace jsched::util
