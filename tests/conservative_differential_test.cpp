// Differential witness for conservative-backfill incremental compression:
// the screened/certified replan path must produce schedules bit-identical
// to the scratch lift-everything reference (scratch_replan = true, the
// executable specification) on randomized scheduler-shaped event
// sequences, across the parameter boundaries that select between partial,
// full and elided compression.
#include "core/conservative_backfill.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "core/factory.h"
#include "core/list_scheduler.h"
#include "core/ordering.h"
#include "sim/simulator.h"
#include "test_support.h"

namespace jsched::core {
namespace {

using test::make_job;

AlgorithmSpec cons_spec(const ConservativeParams& p,
                        OrderKind order = OrderKind::kFcfs) {
  AlgorithmSpec s;
  s.order = order;
  s.dispatch = DispatchKind::kConservative;
  s.conservative = p;
  return s;
}

/// Random workload shaped like real scheduler input: bursty arrivals,
/// width skewed narrow with occasional near-machine jobs, runtimes over
/// three orders of magnitude, and a mix of exact estimates (on-time
/// completions exercise replan elision) and over-estimates (early
/// completions exercise compression).
workload::Workload random_workload(std::uint64_t seed, std::size_t jobs,
                                   int machine_nodes) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  std::vector<Job> js;
  js.reserve(jobs);
  Time t = 0;
  for (std::size_t i = 0; i < jobs; ++i) {
    // Bursts: 1/4 of jobs arrive with zero gap.
    if (uni(rng) > 0.25) t += static_cast<Time>(uni(rng) * 90.0);
    const int nodes =
        1 + static_cast<int>((machine_nodes - 1) * std::pow(uni(rng), 3.0));
    const auto runtime = static_cast<Duration>(1.0 + uni(rng) * uni(rng) * 2400.0);
    const Duration estimate =
        uni(rng) < 0.3 ? runtime
                       : static_cast<Duration>(
                             static_cast<double>(runtime) * (1.0 + 3.0 * uni(rng)));
    js.push_back(make_job(t, nodes, runtime, estimate));
  }
  return test::make_workload(std::move(js));
}

/// Run the workload twice — incremental screening vs the scratch
/// reference — and require bit-identical schedules (fingerprint witness).
void expect_matches_scratch(const workload::Workload& w, int nodes,
                            ConservativeParams p, const std::string& label,
                            OrderKind order = OrderKind::kFcfs) {
  p.scratch_replan = false;
  const std::uint64_t incremental = test::run_fingerprint(cons_spec(p, order), w, nodes);
  p.scratch_replan = true;
  const std::uint64_t scratch = test::run_fingerprint(cons_spec(p, order), w, nodes);
  EXPECT_EQ(incremental, scratch) << label;
}

TEST(ConservativeDifferential, RandomizedSequencesMatchScratch) {
  // Every config sees > 10k scheduler events: 4 seeds x 1500 jobs, each
  // job contributing a submit + completion (plus starts and reservation
  // wakeups). The 32-node machine keeps a deep backlog, so compression
  // runs constantly — each sequence drives thousands of replans through
  // the screen/certificate/fallback paths.
  struct Config {
    const char* name;
    ConservativeParams p;
  };
  std::vector<Config> configs;
  configs.push_back({"default", {}});
  {
    ConservativeParams p;
    p.full_compression = true;
    configs.push_back({"full-compression", p});
  }
  {
    ConservativeParams p;
    p.replan_prefix = 1;
    configs.push_back({"prefix-1", p});
  }
  {
    ConservativeParams p;
    p.replan_prefix = 3;
    p.reservation_depth = 16;  // deep queue beyond the reserved set
    configs.push_back({"prefix-3-depth-16", p});
  }
  {
    ConservativeParams p;
    p.full_compression = true;
    p.compression_queue_limit = 4;  // gate flips mid-run as the queue breathes
    configs.push_back({"full-gated-4", p});
  }

  for (const Config& c : configs) {
    for (std::uint64_t seed : {11u, 23u, 37u, 59u}) {
      const workload::Workload w = random_workload(seed, 1500, 32);
      expect_matches_scratch(
          w, 32, c.p, std::string(c.name) + " seed " + std::to_string(seed));
    }
  }
}

TEST(ConservativeDifferential, ReorderingOrdersMatchScratch) {
  // SMART/PSRS orders deliver on_reorder (wholesale re-plans that
  // invalidate screening certificates) interleaved with compression; the
  // incremental path must survive the certificate resets exactly.
  const workload::Workload w = random_workload(101, 1200, 32);
  for (OrderKind order : {OrderKind::kSmartFfia, OrderKind::kPsrs}) {
    ConservativeParams p;
    expect_matches_scratch(w, 32, p, "reordering", order);
    p.full_compression = true;
    expect_matches_scratch(w, 32, p, "reordering full", order);
  }
}

TEST(ConservativeDifferential, CertificatesActuallyEngage) {
  // The fast path must not silently fall back to walking everything: on a
  // deep-backlog run most reuses should be certificate hits and a healthy
  // share of replans should elide or keep the whole window.
  const workload::Workload w = random_workload(7, 2500, 16);
  sim::Machine m;
  m.nodes = 16;
  auto dp = std::make_unique<ConservativeBackfillDispatch>(ConservativeParams{});
  auto* d = dp.get();
  ListScheduler sched(std::make_unique<FcfsOrder>(), std::move(dp));
  (void)sim::simulate(m, sched, w);
  const auto& st = d->replan_stats();
  EXPECT_GT(st.replans, 100u);
  EXPECT_GT(st.reused, st.replaced);
  EXPECT_GT(st.certified, 0u);
  EXPECT_LE(st.certified, st.reused);  // certified is a subset of reused
}

// --- replan_prefix boundary semantics ---------------------------------------

/// Deep-queue workload whose reserved set stays around `depth` jobs.
workload::Workload boundary_workload() { return random_workload(4242, 800, 8); }

TEST(ConservativeDifferential, PrefixShorterThanQueueMatchesScratch) {
  ConservativeParams p;
  p.replan_prefix = 2;  // far below the backlog depth
  expect_matches_scratch(boundary_workload(), 8, p, "prefix shorter");
}

TEST(ConservativeDifferential, PrefixEqualToQueueMatchesScratch) {
  ConservativeParams p;
  p.reservation_depth = 6;
  p.replan_prefix = 6;  // window == reserved set exactly
  expect_matches_scratch(boundary_workload(), 8, p, "prefix equal");
}

TEST(ConservativeDifferential, PrefixLongerThanQueueEqualsFullCompression) {
  // A prefix that always covers the whole reserved set is full compression
  // by definition — same schedule, bit for bit. (The paper's exact
  // conservative compression, reached through the prefix path.)
  const workload::Workload w = boundary_workload();
  ConservativeParams prefix;
  prefix.reservation_depth = 12;
  prefix.replan_prefix = 4096;  // limit >= reserved set on every replan
  ConservativeParams full;
  full.reservation_depth = 12;
  full.full_compression = true;
  full.compression_queue_limit = 4096;  // never gated
  EXPECT_EQ(test::run_fingerprint(cons_spec(prefix), w, 8),
            test::run_fingerprint(cons_spec(full), w, 8));
  // And both match their own scratch reference.
  expect_matches_scratch(w, 8, prefix, "prefix longer");
  expect_matches_scratch(w, 8, full, "full ungated");
}

// --- constructor validation (parameter audit) -------------------------------

TEST(ConservativeDifferential, ConstructionRejectsZeroCompressionQueueLimit) {
  ConservativeParams p;
  p.full_compression = true;
  p.compression_queue_limit = 0;  // would gate full compression to never run
  EXPECT_THROW(ConservativeBackfillDispatch{p}, std::invalid_argument);
}

TEST(ConservativeDifferential, ConstructionRejectsNegativeReplanPrefix) {
  ConservativeParams p;
  // A caller passing -1 through the unsigned field wraps to the top of
  // the size_t range; the constructor must refuse the wrapped half.
  p.replan_prefix = static_cast<std::size_t>(-1);
  EXPECT_THROW(ConservativeBackfillDispatch{p}, std::invalid_argument);
}

TEST(ConservativeDifferential, ConstructionAcceptsWorkingBoundaries) {
  ConservativeParams p;
  p.replan_prefix = 0;  // compression disabled — valid (wakeup-path tests)
  p.compression_queue_limit = 1;
  EXPECT_NO_THROW(ConservativeBackfillDispatch{p});
}

// --- partial-compression debt (satellite audit) -----------------------------

TEST(ConservativeDifferential, PartialReplanKeepsDebt) {
  // A prefix replan deliberately leaves reservations beyond the window
  // planned against the pre-completion profile, so the debt flag must
  // survive it: every later completion — even an on-time one — has to
  // re-screen the window until a replan covers the whole reserved set.
  // Full-machine jobs serialize the schedule, making the accounting exact:
  //   j0 finishes 50s early; j1..j5 run exactly to their estimates.
  const workload::Workload w = test::make_workload({
      make_job(0, 4, 50, 100),  // early completion -> compression debt
      make_job(0, 4, 100, 100), make_job(0, 4, 100, 100),
      make_job(0, 4, 100, 100), make_job(0, 4, 100, 100),
      make_job(0, 4, 100, 100),
  });
  sim::Machine m;
  m.nodes = 4;

  const auto run_stats = [&](const ConservativeParams& p) {
    auto dp = std::make_unique<ConservativeBackfillDispatch>(p);
    auto* d = dp.get();
    ListScheduler sched(std::make_unique<FcfsOrder>(), std::move(dp));
    (void)sim::simulate(m, sched, w);
    return d->replan_stats();
  };

  // Partial coverage (prefix 2 < 5 reserved): the debt persists through
  // the on-time completions at t=150 and t=250; it clears only at t=350
  // when the shrunken queue (2 jobs) fits the prefix. Replans at
  // t=50,150,250,350; debt-free arrivals (elisions) at t=50 (before the
  // release), t=450 and t=550.
  ConservativeParams partial;
  partial.replan_prefix = 2;
  const auto ps = run_stats(partial);
  EXPECT_EQ(ps.completions, 6u);
  EXPECT_EQ(ps.replans, 4u);
  EXPECT_EQ(ps.replans_elided, 3u);

  // Full coverage clears the debt at t=50; every on-time completion after
  // that is elided. The contrast pins that the partial path's extra
  // replans come from the preserved debt, not from extra capacity.
  ConservativeParams full;
  full.full_compression = true;
  const auto fs = run_stats(full);
  EXPECT_EQ(fs.completions, 6u);
  EXPECT_EQ(fs.replans, 1u);
  EXPECT_EQ(fs.replans_elided, 6u);
}

}  // namespace
}  // namespace jsched::core
