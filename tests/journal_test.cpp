// Checkpoint/resume: util::AppendLog crash tolerance and the
// eval::SweepJournal resume semantics (bit-identical results, fingerprint
// verification, partial-resume cell accounting).
#include "eval/journal.h"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "eval/experiment.h"
#include "eval/reporting.h"
#include "test_support.h"
#include "util/journal.h"

namespace jsched {
namespace {

/// Unique temp path per test; removed on destruction.
class TempFile {
 public:
  explicit TempFile(const std::string& stem)
      : path_(std::string(::testing::TempDir()) + stem + "-" +
              std::to_string(counter_++) + ".journal") {
    std::remove(path_.c_str());
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  static int counter_;
  std::string path_;
};

int TempFile::counter_ = 0;

TEST(Journal, AppendLogRoundTripsLines) {
  TempFile f("appendlog");
  {
    util::AppendLog log(f.path());
    log.append("first");
    log.append("second record with spaces");
  }
  const auto lines = util::AppendLog::read_lines(f.path());
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "first");
  EXPECT_EQ(lines[1], "second record with spaces");
}

TEST(Journal, AppendLogMissingFileReadsEmpty) {
  EXPECT_TRUE(util::AppendLog::read_lines("/nonexistent/nope.journal").empty());
}

TEST(Journal, AppendLogRejectsEmbeddedNewline) {
  TempFile f("appendlog-nl");
  util::AppendLog log(f.path());
  EXPECT_THROW(log.append("two\nlines"), std::invalid_argument);
}

TEST(Journal, FsyncDurabilityRoundTrips) {
  // kFsync pushes every record through fsync(2); the observable contract —
  // one durable line per append — is unchanged.
  TempFile f("appendlog-fsync");
  {
    util::AppendLog log(f.path(), util::AppendLog::Durability::kFsync);
    log.append("synced-1");
    log.append("synced-2");
  }
  const auto lines = util::AppendLog::read_lines(f.path());
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "synced-1");
  EXPECT_EQ(lines[1], "synced-2");
}

TEST(Journal, FsyncDurabilityComesFromEnv) {
  ASSERT_EQ(::unsetenv("JSCHED_JOURNAL_FSYNC"), 0);
  EXPECT_EQ(util::AppendLog::durability_from_env(),
            util::AppendLog::Durability::kFlush);
  ASSERT_EQ(::setenv("JSCHED_JOURNAL_FSYNC", "1", 1), 0);
  EXPECT_EQ(util::AppendLog::durability_from_env(),
            util::AppendLog::Durability::kFsync);
  ASSERT_EQ(::setenv("JSCHED_JOURNAL_FSYNC", "0", 1), 0);
  EXPECT_EQ(util::AppendLog::durability_from_env(),
            util::AppendLog::Durability::kFlush);
  ASSERT_EQ(::unsetenv("JSCHED_JOURNAL_FSYNC"), 0);
}

TEST(Journal, TornTailStillDropsWithFsyncOff) {
  // The crash-tolerance story does not depend on fsync: in the default
  // flush-only mode a torn in-flight record is still detected and dropped
  // on read (fsync narrows the loss window, it does not define it).
  TempFile f("appendlog-flush-torn");
  {
    util::AppendLog log(f.path(), util::AppendLog::Durability::kFlush);
    log.append("durable-enough");
  }
  {
    std::ofstream out(f.path(), std::ios::app);
    out << "v1 half-written-cel";
  }
  const auto lines = util::AppendLog::read_lines(f.path());
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "durable-enough");
}

TEST(Journal, AppendLogDropsTornTrailingLine) {
  // A process killed mid-append leaves a fragment without a newline; the
  // reader must drop exactly that fragment and keep every complete record.
  TempFile f("appendlog-torn");
  {
    util::AppendLog log(f.path());
    log.append("complete-1");
    log.append("complete-2");
  }
  {
    std::ofstream out(f.path(), std::ios::app);
    out << "torn-fragment-without-newline";
  }
  const auto lines = util::AppendLog::read_lines(f.path());
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[1], "complete-2");
}

TEST(Journal, ChecksummedRecordsRoundTrip) {
  TempFile f("appendlog-checked");
  {
    util::AppendLog log(f.path());
    log.append_checked("v2", "some payload with spaces");
    log.append_checked("v2", "");  // empty payloads are legal
  }
  const auto lines = util::AppendLog::read_lines(f.path());
  ASSERT_EQ(lines.size(), 2u);
  std::string payload;
  ASSERT_TRUE(util::AppendLog::check_record(lines[0], "v2", &payload));
  EXPECT_EQ(payload, "some payload with spaces");
  ASSERT_TRUE(util::AppendLog::check_record(lines[1], "v2", &payload));
  EXPECT_EQ(payload, "");
  // A different tag is "not this record kind", never an error.
  EXPECT_FALSE(util::AppendLog::check_record(lines[0], "s1", &payload));
  EXPECT_FALSE(util::AppendLog::check_record("v1 legacy line", "v2",
                                             &payload));
}

TEST(Journal, CheckRecordThrowsOnTamperedPayload) {
  TempFile f("appendlog-tamper");
  {
    util::AppendLog log(f.path());
    log.append_checked("v2", "pristine payload");
  }
  std::string line = util::AppendLog::read_lines(f.path())[0];
  std::string payload;
  line[line.size() - 1] ^= 1;  // flip one payload bit
  EXPECT_THROW(util::AppendLog::check_record(line, "v2", &payload),
               util::CorruptRecordError);
  // A mangled checksum field is corruption too, not a skip.
  EXPECT_THROW(
      util::AppendLog::check_record("v2 nothexnothexnot payload", "v2",
                                    &payload),
      util::CorruptRecordError);
}

TEST(Journal, Fnv1aMatchesKnownVector) {
  // The empty string hashes to the FNV offset basis; "a" to the canonical
  // FNV-1a test vector. Guards the constants against silent drift, since
  // every journal checksum depends on them.
  EXPECT_EQ(util::fnv1a(""), 14695981039346656037ull);
  EXPECT_EQ(util::fnv1a("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(util::hex64(0xaf63dc4c8601ec8cull), "af63dc4c8601ec8c");
  std::uint64_t v = 0;
  ASSERT_TRUE(util::parse_hex64("af63dc4c8601ec8c", &v));
  EXPECT_EQ(v, 0xaf63dc4c8601ec8cull);
  EXPECT_FALSE(util::parse_hex64("af63", &v));          // short
  EXPECT_FALSE(util::parse_hex64("zf63dc4c8601ec8c", &v));  // non-hex
}

TEST(Journal, AppendLogResumesAfterReopen) {
  TempFile f("appendlog-reopen");
  {
    util::AppendLog log(f.path());
    log.append("before");
  }
  {
    util::AppendLog log(f.path());
    log.append("after");
  }
  const auto lines = util::AppendLog::read_lines(f.path());
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "before");
  EXPECT_EQ(lines[1], "after");
}

eval::RunResult sample_result() {
  eval::RunResult r;
  r.spec.order = core::OrderKind::kSmartFfia;
  r.spec.dispatch = core::DispatchKind::kEasy;
  r.spec.weight = core::WeightKind::kEstimatedArea;
  r.scheduler_name = "SMART-FFIA+EASY";
  r.jobs = 1234;
  r.art = 1234.5678901234567;       // exercises full double precision
  r.awrt = 9.87e12;
  r.wait = 0.1 + 0.2;               // the classic non-representable sum
  r.makespan = 86'400.0;
  r.utilization = 0.87654321;
  r.scheduler_cpu_seconds = 0.001234;
  r.max_queue_length = 77;
  r.schedule_fnv = 0xdeadbeefcafef00dull;
  r.goodput_node_seconds = 1e9;
  r.wasted_node_seconds = 12345.0;
  r.goodput_fraction = 0.999999999;
  r.availability = 0.98;
  r.availability_weighted_utilization = 0.86;
  r.kills = 3;
  r.jobs_hit = 2;
  return r;
}

void expect_bit_identical(const eval::RunResult& a, const eval::RunResult& b) {
  EXPECT_EQ(a.spec.order, b.spec.order);
  EXPECT_EQ(a.spec.dispatch, b.spec.dispatch);
  EXPECT_EQ(a.spec.weight, b.spec.weight);
  EXPECT_EQ(a.scheduler_name, b.scheduler_name);
  EXPECT_EQ(a.jobs, b.jobs);
  // Bit-level comparisons: a journal resume must be indistinguishable from
  // an uninterrupted run, so decimal round-tripping is not good enough.
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.art), std::bit_cast<std::uint64_t>(b.art));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.awrt), std::bit_cast<std::uint64_t>(b.awrt));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.wait), std::bit_cast<std::uint64_t>(b.wait));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.makespan),
            std::bit_cast<std::uint64_t>(b.makespan));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.utilization),
            std::bit_cast<std::uint64_t>(b.utilization));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.scheduler_cpu_seconds),
            std::bit_cast<std::uint64_t>(b.scheduler_cpu_seconds));
  EXPECT_EQ(a.max_queue_length, b.max_queue_length);
  EXPECT_EQ(a.schedule_fnv, b.schedule_fnv);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.goodput_fraction),
            std::bit_cast<std::uint64_t>(b.goodput_fraction));
  EXPECT_EQ(a.kills, b.kills);
  EXPECT_EQ(a.jobs_hit, b.jobs_hit);
}

TEST(Journal, SweepJournalRoundTripsRunResultBitwise) {
  TempFile f("sweep-roundtrip");
  const eval::RunResult r = sample_result();
  const std::uint64_t key = eval::cell_key(42, 256, r.spec, 7);
  {
    eval::SweepJournal journal(f.path());
    journal.record(key, r);
  }
  eval::SweepJournal resumed(f.path());
  EXPECT_EQ(resumed.loaded(), 1u);
  eval::RunResult out;
  ASSERT_TRUE(resumed.lookup(key, r.spec, &out));
  EXPECT_EQ(resumed.hits(), 1u);
  expect_bit_identical(r, out);
}

TEST(Journal, SweepJournalMissDoesNotTouchOutput) {
  TempFile f("sweep-miss");
  eval::SweepJournal journal(f.path());
  eval::RunResult out;
  EXPECT_FALSE(journal.lookup(1, core::AlgorithmSpec{}, &out));
  EXPECT_EQ(journal.hits(), 0u);
}

TEST(Journal, SweepJournalDetectsSpecMismatch) {
  // The same key asking for a different configuration is a collision or a
  // corrupt journal — resuming the wrong work must be impossible.
  TempFile f("sweep-mismatch");
  const eval::RunResult r = sample_result();
  const std::uint64_t key = 99;
  eval::SweepJournal journal(f.path());
  journal.record(key, r);
  core::AlgorithmSpec other = r.spec;
  other.dispatch = core::DispatchKind::kList;
  eval::RunResult out;
  EXPECT_THROW(journal.lookup(key, other, &out), std::runtime_error);
}

TEST(Journal, CellKeySeparatesAxes) {
  core::AlgorithmSpec spec;
  const std::uint64_t base = eval::cell_key(1, 256, spec, 0);
  EXPECT_NE(base, eval::cell_key(2, 256, spec, 0));  // workload
  EXPECT_NE(base, eval::cell_key(1, 257, spec, 0));  // machine
  EXPECT_NE(base, eval::cell_key(1, 256, spec, 1));  // salt
  core::AlgorithmSpec other = spec;
  other.dispatch = core::DispatchKind::kEasy;
  EXPECT_NE(base, eval::cell_key(1, 256, other, 0));  // config
  EXPECT_EQ(base, eval::cell_key(1, 256, spec, 0));   // deterministic
}

/// Grid fingerprints with no journal (the uninterrupted reference).
std::vector<std::uint64_t> grid_fingerprints(const eval::GridResult& grid) {
  std::vector<std::uint64_t> out;
  for (const auto& c : grid.cells) out.push_back(c.result.schedule_fnv);
  return out;
}

TEST(Journal, ResumedGridIsBitIdenticalSerial) {
  const workload::Workload w = test::small_mixed_workload();
  sim::Machine m;
  m.nodes = 16;

  eval::ExperimentOptions plain;
  plain.measure_cpu = false;
  const eval::GridResult reference =
      eval::run_grid_outcomes(m, core::WeightKind::kUnit, w, plain);

  // First pass journals every cell; second pass must resume all of them
  // (attempts == 0) and reproduce every fingerprint bit-for-bit.
  TempFile f("resume-serial");
  {
    eval::SweepJournal journal(f.path());
    eval::ExperimentOptions opt = plain;
    opt.journal = &journal;
    const auto first = eval::run_grid_outcomes(m, core::WeightKind::kUnit, w, opt);
    EXPECT_EQ(journal.hits(), 0u);
    EXPECT_EQ(grid_fingerprints(first), grid_fingerprints(reference));
  }
  eval::SweepJournal journal(f.path());
  EXPECT_EQ(journal.loaded(), reference.cells.size());
  eval::ExperimentOptions opt = plain;
  opt.journal = &journal;
  const auto resumed = eval::run_grid_outcomes(m, core::WeightKind::kUnit, w, opt);
  EXPECT_EQ(journal.hits(), reference.cells.size());
  EXPECT_EQ(resumed.resumed(), reference.cells.size());
  ASSERT_EQ(resumed.cells.size(), reference.cells.size());
  for (std::size_t i = 0; i < resumed.cells.size(); ++i) {
    EXPECT_EQ(resumed.cells[i].attempts, 0u) << "cell " << i;
    expect_bit_identical(resumed.cells[i].result, reference.cells[i].result);
  }
}

TEST(Journal, ResumedGridIsBitIdenticalThreaded) {
  // Same resume guarantee with a worker pool: journal appends are
  // interleaved across threads, results must still match the serial run.
  const workload::Workload w = test::small_mixed_workload();
  sim::Machine m;
  m.nodes = 16;

  eval::ExperimentOptions plain;
  plain.measure_cpu = false;
  const eval::GridResult reference =
      eval::run_grid_outcomes(m, core::WeightKind::kUnit, w, plain);

  TempFile f("resume-threaded");
  {
    eval::SweepJournal journal(f.path());
    eval::ExperimentOptions opt = plain;
    opt.journal = &journal;
    opt.threads = 4;
    (void)eval::run_grid_outcomes(m, core::WeightKind::kUnit, w, opt);
  }
  eval::SweepJournal journal(f.path());
  eval::ExperimentOptions opt = plain;
  opt.journal = &journal;
  opt.threads = 4;
  const auto resumed = eval::run_grid_outcomes(m, core::WeightKind::kUnit, w, opt);
  EXPECT_EQ(resumed.resumed(), reference.cells.size());
  ASSERT_EQ(resumed.cells.size(), reference.cells.size());
  for (std::size_t i = 0; i < resumed.cells.size(); ++i) {
    expect_bit_identical(resumed.cells[i].result, reference.cells[i].result);
  }
}

TEST(Journal, PartialJournalRerunsOnlyIncompleteCells) {
  // Simulate a killed sweep: journal only the first 5 cells, then resume.
  // The resumed sweep must re-run exactly the other cells and the final
  // fingerprints must match the uninterrupted run.
  const workload::Workload w = test::small_mixed_workload();
  sim::Machine m;
  m.nodes = 16;

  eval::ExperimentOptions plain;
  plain.measure_cpu = false;
  const eval::GridResult reference =
      eval::run_grid_outcomes(m, core::WeightKind::kUnit, w, plain);
  const std::uint64_t wfp = workload::fingerprint(w);

  TempFile f("resume-partial");
  constexpr std::size_t kCompleted = 5;
  {
    eval::SweepJournal journal(f.path());
    for (std::size_t i = 0; i < kCompleted; ++i) {
      const auto& r = reference.cells[i].result;
      journal.record(eval::cell_key(wfp, m.nodes, r.spec, 0), r);
    }
  }
  eval::SweepJournal journal(f.path());
  eval::ExperimentOptions opt = plain;
  opt.journal = &journal;
  const auto resumed = eval::run_grid_outcomes(m, core::WeightKind::kUnit, w, opt);
  EXPECT_EQ(resumed.resumed(), kCompleted);
  ASSERT_EQ(resumed.cells.size(), reference.cells.size());
  for (std::size_t i = 0; i < resumed.cells.size(); ++i) {
    EXPECT_EQ(resumed.cells[i].attempts, i < kCompleted ? 0u : 1u)
        << "cell " << i;
    expect_bit_identical(resumed.cells[i].result, reference.cells[i].result);
  }
  // The re-run cells were appended: a third pass resumes everything.
  eval::SweepJournal full(f.path());
  EXPECT_EQ(full.loaded(), reference.cells.size());
}

TEST(Journal, FaultSweepPointsDoNotCollide) {
  // Two sweep points over the same workload and grid must journal into
  // disjoint keys (label-salted); resuming the sweep resumes both points.
  const workload::Workload w = test::small_mixed_workload();
  sim::Machine m;
  m.nodes = 16;
  std::vector<eval::FaultSweepPoint> points(2);
  points[0].label = "point-a";
  points[1].label = "point-b";

  TempFile f("fault-sweep");
  eval::ExperimentOptions opt;
  opt.measure_cpu = false;
  {
    eval::SweepJournal journal(f.path());
    opt.journal = &journal;
    const auto sweep = eval::run_fault_sweep_outcomes(
        m, core::WeightKind::kUnit, w, points, opt);
    ASSERT_EQ(sweep.size(), 2u);
    EXPECT_EQ(sweep[0].resumed(), 0u);
    EXPECT_EQ(sweep[1].resumed(), 0u);
  }
  eval::SweepJournal journal(f.path());
  EXPECT_EQ(journal.loaded(), 26u);  // 13 cells per point, no collisions
  opt.journal = &journal;
  const auto resumed = eval::run_fault_sweep_outcomes(
      m, core::WeightKind::kUnit, w, points, opt);
  EXPECT_EQ(resumed[0].resumed(), 13u);
  EXPECT_EQ(resumed[1].resumed(), 13u);
}

TEST(Journal, StaleJournalIsDetectedAndSegmented) {
  // A journal written for one workload must not pose as a resume source
  // when the workload changes under the same path: the next sweep drops
  // the stale segment's cells, reports them, and opens a fresh segment.
  const workload::Workload w = test::small_mixed_workload();
  std::vector<Job> jobs(w.jobs().begin(), w.jobs().end());
  jobs[0].estimate += 1;  // field-level fingerprint changes
  const workload::Workload mutated = test::make_workload(std::move(jobs));
  sim::Machine m;
  m.nodes = 16;
  eval::ExperimentOptions plain;
  plain.measure_cpu = false;

  TempFile f("stale-segment");
  std::size_t grid_cells = 0;
  {
    eval::SweepJournal journal(f.path());
    eval::ExperimentOptions opt = plain;
    opt.journal = &journal;
    const auto first =
        eval::run_grid_outcomes(m, core::WeightKind::kUnit, w, opt);
    grid_cells = first.cells.size();
    // Opening a segment in an empty journal is a silent upgrade.
    EXPECT_TRUE(first.journal_note.empty()) << first.journal_note;
    EXPECT_EQ(journal.stale_dropped(), 0u);
  }
  {
    // Same journal path, different workload: every journaled cell is
    // stale. None may resume, and the report must say so.
    eval::SweepJournal journal(f.path());
    EXPECT_EQ(journal.loaded(), grid_cells);
    eval::ExperimentOptions opt = plain;
    opt.journal = &journal;
    const auto second =
        eval::run_grid_outcomes(m, core::WeightKind::kUnit, mutated, opt);
    EXPECT_EQ(journal.stale_dropped(), grid_cells);
    EXPECT_EQ(second.resumed(), 0u);
    EXPECT_NE(second.journal_note.find("stale"), std::string::npos)
        << second.journal_note;
    EXPECT_NE(eval::failure_summary(second).find("stale"), std::string::npos);
  }
  // The fresh segment is a normal resume source for the mutated workload.
  eval::SweepJournal journal(f.path());
  eval::ExperimentOptions opt = plain;
  opt.journal = &journal;
  const auto third =
      eval::run_grid_outcomes(m, core::WeightKind::kUnit, mutated, opt);
  EXPECT_TRUE(third.journal_note.empty()) << third.journal_note;
  EXPECT_EQ(third.resumed(), grid_cells);
  EXPECT_EQ(journal.stale_dropped(), 0u);
}

TEST(Journal, SweepJournalDetectsMidFileCorruption) {
  // A complete record whose bits were flipped must fail loudly on open —
  // resuming from garbage would silently poison a sweep.
  TempFile f("sweep-corrupt");
  {
    eval::SweepJournal journal(f.path());
    journal.record(7, sample_result());
  }
  std::vector<std::string> lines = util::AppendLog::read_lines(f.path());
  std::size_t victim = lines.size();
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (lines[i].rfind("v2 ", 0) == 0) victim = i;
  }
  ASSERT_LT(victim, lines.size());
  lines[victim].back() ^= 1;
  std::remove(f.path().c_str());
  {
    std::ofstream out(f.path());
    for (const std::string& l : lines) out << l << "\n";
  }
  EXPECT_THROW(eval::SweepJournal journal(f.path()),
               util::CorruptRecordError);
}

TEST(Journal, SweepJournalLoadsUncheckedV1Records) {
  // Journals written before per-record checksums (v1 records) must keep
  // resuming bit-identically. Synthesize one by stripping the "v2 <crc>"
  // framing from a fresh journal — the v1 body format is unchanged.
  TempFile f("sweep-v1-compat");
  const eval::RunResult r = sample_result();
  const std::uint64_t key = eval::cell_key(3, 128, r.spec, 0);
  {
    eval::SweepJournal journal(f.path());
    journal.record(key, r);
  }
  std::vector<std::string> rewritten;
  for (const std::string& line : util::AppendLog::read_lines(f.path())) {
    std::string payload;
    if (util::AppendLog::check_record(line, "v2", &payload)) {
      rewritten.push_back("v1 " + payload);
    } else {
      rewritten.push_back(line);  // segment headers are version-agnostic
    }
  }
  std::remove(f.path().c_str());
  {
    util::AppendLog log(f.path());
    for (const std::string& line : rewritten) log.append(line);
  }
  eval::SweepJournal resumed(f.path());
  EXPECT_EQ(resumed.loaded(), 1u);
  eval::RunResult out;
  ASSERT_TRUE(resumed.lookup(key, r.spec, &out));
  expect_bit_identical(r, out);
}

TEST(Journal, LegacyJournalWithoutSegmentsIsAdopted) {
  // Journals written before segment headers existed must keep resuming:
  // their records are adopted into the first opened segment instead of
  // being treated as stale.
  const workload::Workload w = test::small_mixed_workload();
  sim::Machine m;
  m.nodes = 16;
  eval::ExperimentOptions plain;
  plain.measure_cpu = false;

  TempFile f("legacy-adopt");
  std::size_t grid_cells = 0;
  {
    // Journal the grid, then strip the v1seg header line — leaving
    // exactly what a pre-segment writer would have produced.
    eval::SweepJournal journal(f.path());
    eval::ExperimentOptions opt = plain;
    opt.journal = &journal;
    grid_cells =
        eval::run_grid_outcomes(m, core::WeightKind::kUnit, w, opt).cells.size();
  }
  std::vector<std::string> kept;
  for (const std::string& line : util::AppendLog::read_lines(f.path())) {
    if (line.rfind("v1seg", 0) != 0) kept.push_back(line);
  }
  std::remove(f.path().c_str());
  {
    util::AppendLog log(f.path());
    for (const std::string& line : kept) log.append(line);
  }

  eval::SweepJournal journal(f.path());
  EXPECT_EQ(journal.loaded(), grid_cells);
  eval::ExperimentOptions opt = plain;
  opt.journal = &journal;
  const auto resumed =
      eval::run_grid_outcomes(m, core::WeightKind::kUnit, w, opt);
  EXPECT_TRUE(resumed.journal_note.empty()) << resumed.journal_note;
  EXPECT_EQ(resumed.resumed(), grid_cells);
  EXPECT_EQ(journal.stale_dropped(), 0u);
}

}  // namespace
}  // namespace jsched
