// util::Subprocess — the child-process layer under the sharded sweep
// coordinator — and count_complete_lines, its journal-tail progress
// protocol.
#include "util/subprocess.h"

#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <fstream>
#include <string>

namespace jsched::util {
namespace {

TEST(Subprocess, ReportsExitCode) {
  auto ok = Subprocess::spawn({"sh", "-c", "exit 0"});
  const ExitStatus s0 = ok.wait();
  EXPECT_TRUE(s0.success());
  EXPECT_FALSE(s0.signaled);
  EXPECT_EQ(s0.code, 0);

  auto bad = Subprocess::spawn({"sh", "-c", "exit 3"});
  const ExitStatus s3 = bad.wait();
  EXPECT_FALSE(s3.success());
  EXPECT_EQ(s3.code, 3);
  EXPECT_NE(s3.describe().find("3"), std::string::npos);
}

TEST(Subprocess, ReportsFatalSignal) {
  auto p = Subprocess::spawn({"sh", "-c", "kill -KILL $$"});
  const ExitStatus s = p.wait();
  EXPECT_FALSE(s.success());
  EXPECT_TRUE(s.signaled);
  EXPECT_EQ(s.code, SIGKILL);
}

TEST(Subprocess, ExecFailureSurfacesAs127) {
  auto p = Subprocess::spawn({"jsched-no-such-binary-for-testing"});
  const ExitStatus s = p.wait();
  EXPECT_FALSE(s.success());
  EXPECT_EQ(s.code, 127);
}

TEST(Subprocess, PollIsNonBlockingAndKillWorks) {
  auto p = Subprocess::spawn({"sleep", "30"});
  EXPECT_FALSE(p.poll().has_value());  // still running
  p.kill();
  const ExitStatus s = p.wait();
  EXPECT_TRUE(s.signaled);
  EXPECT_EQ(s.code, SIGKILL);
  // Idempotent after reaping.
  ASSERT_TRUE(p.poll().has_value());
  EXPECT_EQ(p.poll()->code, SIGKILL);
}

TEST(Subprocess, ExtraEnvReachesChild) {
  auto p = Subprocess::spawn({"sh", "-c", "test \"$JSCHED_TEST_VAR\" = hello"},
                             {{"JSCHED_TEST_VAR", "hello"}});
  EXPECT_TRUE(p.wait().success());
}

TEST(Subprocess, EmptyArgvThrows) {
  EXPECT_THROW(Subprocess::spawn({}), std::invalid_argument);
}

TEST(Subprocess, SelfExePathIsAbsolute) {
  const std::string self = self_exe_path();
  ASSERT_FALSE(self.empty());
  EXPECT_EQ(self.front(), '/');
  EXPECT_NE(self.find("jsched_tests"), std::string::npos);
}

TEST(Subprocess, CountCompleteLinesDropsTornTail) {
  const std::string path =
      std::string(::testing::TempDir()) + "count-lines.journal";
  std::remove(path.c_str());
  EXPECT_EQ(count_complete_lines(path, "v1 "), 0u);  // missing file
  {
    std::ofstream out(path, std::ios::binary);
    out << "v1seg deadbeef\n"
        << "v1 first\n"
        << "v1 second\n"
        << "other line\n"
        << "v1 torn-no-newline";  // in-flight append: not yet a record
  }
  EXPECT_EQ(count_complete_lines(path, "v1 "), 2u);
  EXPECT_EQ(count_complete_lines(path, ""), 4u);  // every complete line
  std::remove(path.c_str());
}

}  // namespace
}  // namespace jsched::util
