// Failure isolation in the evaluation harness: error policies, the
// RunError taxonomy, retry accounting, fault-sweep isolation and the
// replication layer's workload-phase classification.
#include <gtest/gtest.h>

#include <atomic>
#include <exception>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

#include "core/factory.h"
#include "eval/experiment.h"
#include "eval/internal.h"
#include "eval/replication.h"
#include "eval/reporting.h"
#include "sim/cancel.h"
#include "sim/schedule.h"
#include "sim/scheduler.h"
#include "test_support.h"

namespace jsched {
namespace {

/// Throws `error` on the first submission of every simulation.
class ThrowingScheduler : public sim::Scheduler {
 public:
  explicit ThrowingScheduler(std::string what) : what_(std::move(what)) {}
  std::string name() const override { return "throwing"; }
  void reset(const sim::Machine&) override {}
  void on_submit(const Submission&, Time) override {
    throw std::logic_error(what_);
  }
  void on_complete(JobId, Time) override {}
  void select_starts(Time, int, std::vector<JobId>&) override {}
  std::size_t queue_length() const override { return 0; }

 private:
  std::string what_;
};

/// Factory injecting a ThrowingScheduler for exactly one configuration.
eval::ExperimentOptions throwing_options(core::OrderKind order,
                                         core::DispatchKind dispatch) {
  eval::ExperimentOptions opt;
  opt.measure_cpu = false;
  opt.scheduler_factory = [order, dispatch](const core::AlgorithmSpec& spec)
      -> std::unique_ptr<sim::Scheduler> {
    if (spec.order == order && spec.dispatch == dispatch) {
      return std::make_unique<ThrowingScheduler>("injected scheduler bug");
    }
    return core::make_scheduler(spec);
  };
  return opt;
}

TEST(Resilience, FailFastPreservesOriginalExceptionType) {
  const workload::Workload w = test::small_mixed_workload();
  sim::Machine m;
  m.nodes = 16;
  auto opt = throwing_options(core::OrderKind::kSmartNfiw,
                              core::DispatchKind::kEasy);
  // Default policy: the injected std::logic_error must escape untouched —
  // no wrapping, no classification.
  EXPECT_THROW(eval::run_grid(m, core::WeightKind::kUnit, w, opt),
               std::logic_error);
}

TEST(Resilience, IsolateCompletesHealthyCells) {
  const workload::Workload w = test::small_mixed_workload();
  sim::Machine m;
  m.nodes = 16;
  auto opt = throwing_options(core::OrderKind::kSmartNfiw,
                              core::DispatchKind::kEasy);
  opt.error_policy = eval::ErrorPolicy::kIsolate;
  const eval::GridResult grid =
      eval::run_grid_outcomes(m, core::WeightKind::kUnit, w, opt);
  ASSERT_EQ(grid.cells.size(), 13u);
  EXPECT_EQ(grid.failed(), 1u);
  const auto failures = grid.failures();
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_EQ(failures[0].kind, eval::RunErrorKind::kScheduler);
  EXPECT_EQ(failures[0].scheduler, "SMART-NFIW+EASY");
  EXPECT_NE(failures[0].message.find("injected scheduler bug"),
            std::string::npos);
  EXPECT_EQ(failures[0].attempts, 1u);
  // Every other cell carries a real result.
  for (const auto& c : grid.cells) {
    if (c.ok) {
      EXPECT_GT(c.result.jobs, 0u);
      EXPECT_NE(c.result.schedule_fnv, 0u);
    }
  }
  // The legacy vector API throws a summary naming the failed cell.
  try {
    eval::run_grid(m, core::WeightKind::kUnit, w, opt);
    FAIL() << "expected summary exception";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("SMART-NFIW+EASY"),
              std::string::npos);
  }
}

TEST(Resilience, IsolateMatchesSerialResultsThreaded) {
  // Isolation must not perturb the healthy cells: threaded isolate run ==
  // serial fail-free run, cell for cell.
  const workload::Workload w = test::small_mixed_workload();
  sim::Machine m;
  m.nodes = 16;
  eval::ExperimentOptions plain;
  plain.measure_cpu = false;
  const auto reference = eval::run_grid(m, core::WeightKind::kUnit, w, plain);

  auto opt = throwing_options(core::OrderKind::kSmartNfiw,
                              core::DispatchKind::kEasy);
  opt.error_policy = eval::ErrorPolicy::kIsolate;
  opt.threads = 4;
  const eval::GridResult grid =
      eval::run_grid_outcomes(m, core::WeightKind::kUnit, w, opt);
  ASSERT_EQ(grid.cells.size(), reference.size());
  for (std::size_t i = 0; i < grid.cells.size(); ++i) {
    if (!grid.cells[i].ok) continue;
    EXPECT_EQ(grid.cells[i].result.schedule_fnv, reference[i].schedule_fnv)
        << "cell " << i;
  }
}

TEST(Resilience, RetryConsumesAllAttemptsOnDeterministicFailure) {
  const workload::Workload w = test::small_mixed_workload();
  sim::Machine m;
  m.nodes = 16;
  auto opt = throwing_options(core::OrderKind::kFcfs,
                              core::DispatchKind::kList);
  opt.error_policy = eval::ErrorPolicy::kRetryN;
  opt.max_retries = 2;
  const eval::RunOutcome out = eval::run_one_outcome(
      m, core::AlgorithmSpec{}, w, opt);  // FCFS+kList is the throwing cell
  ASSERT_FALSE(out.ok);
  EXPECT_EQ(out.attempts, 3u);  // 1 + max_retries
  EXPECT_EQ(out.error.attempts, 3u);
  EXPECT_NE(out.error.describe().find("after 3 attempts"), std::string::npos);
}

TEST(Resilience, RetrySucceedsAfterTransientFailures) {
  // A scheduler factory that fails twice then behaves: retry must succeed
  // on the third attempt and record the count.
  const workload::Workload w = test::small_mixed_workload();
  sim::Machine m;
  m.nodes = 16;
  auto failures_left = std::make_shared<std::atomic<int>>(2);
  eval::ExperimentOptions opt;
  opt.measure_cpu = false;
  opt.error_policy = eval::ErrorPolicy::kRetryN;
  opt.max_retries = 2;
  opt.scheduler_factory = [failures_left](const core::AlgorithmSpec& spec)
      -> std::unique_ptr<sim::Scheduler> {
    if (failures_left->fetch_sub(1) > 0) {
      return std::make_unique<ThrowingScheduler>("transient");
    }
    return core::make_scheduler(spec);
  };
  const eval::RunOutcome out =
      eval::run_one_outcome(m, core::AlgorithmSpec{}, w, opt);
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(out.attempts, 3u);
  // The successful attempt produced a real schedule, identical to an
  // unfaulted run.
  eval::ExperimentOptions plain;
  plain.measure_cpu = false;
  const eval::RunResult reference =
      eval::run_one(m, core::AlgorithmSpec{}, w, plain);
  EXPECT_EQ(out.result.schedule_fnv, reference.schedule_fnv);
}

TEST(Resilience, ExceptionTaxonomyClassification) {
  // The full exception-type -> RunErrorKind map of outcome.h, exercised
  // directly against the classifier.
  const auto classify = [](std::exception_ptr e) {
    try {
      std::rethrow_exception(std::move(e));
    } catch (...) {
      return eval::detail::classify_current_exception("CONFIG");
    }
  };
  using Kind = eval::RunErrorKind;
  EXPECT_EQ(classify(std::make_exception_ptr(
                         sim::ValidationError("schedule: overlap")))
                .kind,
            Kind::kValidation);
  EXPECT_EQ(classify(std::make_exception_ptr(std::logic_error("contract")))
                .kind,
            Kind::kScheduler);
  EXPECT_EQ(classify(std::make_exception_ptr(std::runtime_error("io"))).kind,
            Kind::kSimulation);
  EXPECT_EQ(classify(std::make_exception_ptr(sim::CancelledError(
                         sim::CancelledError::Reason::kDeadline, "late")))
                .kind,
            Kind::kTimeout);
  EXPECT_EQ(classify(std::make_exception_ptr(sim::CancelledError(
                         sim::CancelledError::Reason::kCancelled, "stop")))
                .kind,
            Kind::kCancelled);
  EXPECT_EQ(classify(std::make_exception_ptr(eval::detail::PhaseError(
                         Kind::kWorkload, "generator died")))
                .kind,
            Kind::kWorkload);
  const eval::RunError err =
      classify(std::make_exception_ptr(std::logic_error("contract")));
  EXPECT_EQ(err.scheduler, "CONFIG");
  EXPECT_EQ(err.message, "contract");
}

TEST(Resilience, StarvedJobsClassifyAsSchedulerBug) {
  // A scheduler that silently drops every job starves the event loop; the
  // simulator's no-progress guard throws logic_error, which the taxonomy
  // files under kScheduler.
  class DroppingScheduler : public sim::Scheduler {
   public:
    std::string name() const override { return "dropping"; }
    void reset(const sim::Machine&) override {}
    void on_submit(const Submission&, Time) override {}
    void on_complete(JobId, Time) override {}
    void select_starts(Time, int, std::vector<JobId>&) override {}
    std::size_t queue_length() const override { return 0; }
  };
  const workload::Workload w = test::small_mixed_workload();
  sim::Machine m;
  m.nodes = 16;
  eval::ExperimentOptions opt;
  opt.measure_cpu = false;
  opt.error_policy = eval::ErrorPolicy::kIsolate;
  opt.scheduler_factory = [](const core::AlgorithmSpec&)
      -> std::unique_ptr<sim::Scheduler> {
    return std::make_unique<DroppingScheduler>();
  };
  const eval::RunOutcome out =
      eval::run_one_outcome(m, core::AlgorithmSpec{}, w, opt);
  ASSERT_FALSE(out.ok);
  EXPECT_EQ(out.error.kind, eval::RunErrorKind::kScheduler);
  EXPECT_NE(out.error.message.find("starved"), std::string::npos);
}

TEST(Resilience, FaultSweepIsolatesMidSweepFailure) {
  // A scheduler throwing in every point of a fault sweep: each point's
  // grid completes its other 12 cells and reports the failure; the legacy
  // API throws naming the point.
  const workload::Workload w = test::small_mixed_workload();
  sim::Machine m;
  m.nodes = 16;
  std::vector<eval::FaultSweepPoint> points(2);
  points[0].label = "p0";
  points[1].label = "p1";

  auto opt = throwing_options(core::OrderKind::kPsrs,
                              core::DispatchKind::kConservative);
  opt.error_policy = eval::ErrorPolicy::kIsolate;
  const auto sweep =
      eval::run_fault_sweep_outcomes(m, core::WeightKind::kUnit, w, points, opt);
  ASSERT_EQ(sweep.size(), 2u);
  for (const auto& grid : sweep) {
    EXPECT_EQ(grid.failed(), 1u);
    EXPECT_EQ(grid.failures()[0].kind, eval::RunErrorKind::kScheduler);
    EXPECT_EQ(grid.cells.size() - grid.failed(), 12u);
  }
  try {
    eval::run_fault_sweep(m, core::WeightKind::kUnit, w, points, opt);
    FAIL() << "expected summary exception";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("p0"), std::string::npos);
  }
}

TEST(Resilience, ReplicationClassifiesWorkloadFailures) {
  // Seed 2's workload generator explodes: under isolate the replicate is
  // filed as kWorkload and the statistics aggregate the other seeds.
  sim::Machine m;
  m.nodes = 16;
  const auto make = [](std::uint64_t seed) {
    if (seed == 2) throw std::runtime_error("generator exploded");
    return test::small_mixed_workload();
  };
  const std::uint64_t seeds[] = {1, 2, 3};
  eval::ExperimentOptions opt;
  opt.measure_cpu = false;
  opt.error_policy = eval::ErrorPolicy::kIsolate;
  const eval::ReplicatedResult rep =
      eval::run_replicated(m, core::AlgorithmSpec{}, make, seeds, opt);
  EXPECT_EQ(rep.failed_replicates, 1u);
  EXPECT_EQ(rep.art.count(), 2u);
  ASSERT_EQ(rep.outcomes.size(), 3u);
  EXPECT_TRUE(rep.outcomes[0].ok);
  ASSERT_FALSE(rep.outcomes[1].ok);
  EXPECT_EQ(rep.outcomes[1].error.kind, eval::RunErrorKind::kWorkload);
  EXPECT_NE(rep.outcomes[1].error.message.find("seed=2"), std::string::npos);
  EXPECT_TRUE(rep.outcomes[2].ok);
}

TEST(Resilience, ReplicationFailFastPreservesGeneratorException) {
  sim::Machine m;
  m.nodes = 16;
  const auto make = [](std::uint64_t seed) -> workload::Workload {
    if (seed == 2) throw std::invalid_argument("bad seed");
    return test::small_mixed_workload();
  };
  const std::uint64_t seeds[] = {1, 2, 3};
  eval::ExperimentOptions opt;
  opt.measure_cpu = false;
  EXPECT_THROW(eval::run_replicated(m, core::AlgorithmSpec{}, make, seeds, opt),
               std::invalid_argument);
}

TEST(Resilience, FailureTableAndSummaryRender) {
  const workload::Workload w = test::small_mixed_workload();
  sim::Machine m;
  m.nodes = 16;
  auto opt = throwing_options(core::OrderKind::kSmartNfiw,
                              core::DispatchKind::kEasy);
  opt.error_policy = eval::ErrorPolicy::kIsolate;
  const eval::GridResult grid =
      eval::run_grid_outcomes(m, core::WeightKind::kUnit, w, opt);
  const std::string table =
      eval::failure_table(grid, "failures").to_ascii();
  EXPECT_NE(table.find("SMART-NFIW+EASY"), std::string::npos);
  EXPECT_NE(table.find("scheduler"), std::string::npos);
  const std::string summary = eval::failure_summary(grid);
  EXPECT_EQ(summary, "12/13 cells ok, 1 failed (scheduler=1)");
}

TEST(Resilience, ErrorPolicyStringsRoundTrip) {
  EXPECT_EQ(eval::error_policy_from_string("fail_fast"),
            eval::ErrorPolicy::kFailFast);
  EXPECT_EQ(eval::error_policy_from_string("isolate"),
            eval::ErrorPolicy::kIsolate);
  EXPECT_EQ(eval::error_policy_from_string("retry"),
            eval::ErrorPolicy::kRetryN);
  EXPECT_THROW(eval::error_policy_from_string("whatever"),
               std::invalid_argument);
  EXPECT_EQ(eval::to_string(eval::RunErrorKind::kTimeout), "timeout");
  EXPECT_EQ(eval::to_string(eval::ErrorPolicy::kIsolate), "isolate");
}

}  // namespace
}  // namespace jsched
