// Fault-injection subsystem: trace construction, the stochastic failure
// model, simulator kill/recovery semantics (hand-computed scenarios for
// both recovery policies), resilience accounting, and determinism of
// fault-injected evaluation across thread counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "core/factory.h"
#include "core/phased_scheduler.h"
#include "eval/experiment.h"
#include "fault/failure_model.h"
#include "fault/fault.h"
#include "metrics/resilience.h"
#include "sim/simulator.h"
#include "test_support.h"

namespace jsched {
namespace {

using fault::FailureEvent;
using fault::FailureTrace;
using fault::FaultOptions;
using fault::RecoveryOptions;
using fault::RecoveryPolicy;

sim::Schedule run_with_faults(const core::AlgorithmSpec& spec,
                              const workload::Workload& w, int nodes,
                              const FailureTrace& trace,
                              const RecoveryOptions& recovery = {}) {
  sim::Machine m;
  m.nodes = nodes;
  auto scheduler = core::make_scheduler(spec);
  sim::SimOptions options;
  options.faults.trace = &trace;
  options.faults.recovery = recovery;
  return sim::simulate(m, *scheduler, w, options);
}

// --- trace construction -----------------------------------------------------

TEST(FaultTrace, SortsCoalescesAndValidates) {
  const FailureTrace t = fault::make_failure_trace(
      {{50, +1}, {10, -1}, {10, -1}, {50, +1}, {30, +2}, {30, -2}}, 4);
  // The zero-sum instant at 30 vanishes; the two instants coalesce.
  ASSERT_EQ(t.events.size(), 2u);
  EXPECT_EQ(t.events[0], (FailureEvent{10, -2}));
  EXPECT_EQ(t.events[1], (FailureEvent{50, +2}));
  EXPECT_EQ(t.max_down, 2);
  EXPECT_EQ(t.machine_nodes, 4);
}

TEST(FaultTrace, RejectsInvalidInput) {
  EXPECT_THROW(fault::make_failure_trace({{0, -1}}, 0), std::invalid_argument);
  EXPECT_THROW(fault::make_failure_trace({{-1, -1}}, 4), std::invalid_argument);
  EXPECT_THROW(fault::make_failure_trace({{5, 0}}, 4), std::invalid_argument);
  // More nodes down than the machine has.
  EXPECT_THROW(fault::make_failure_trace({{5, -5}}, 4), std::invalid_argument);
  // Repair without a preceding failure.
  EXPECT_THROW(fault::make_failure_trace({{5, +1}}, 4), std::invalid_argument);
}

TEST(FaultTrace, InjectorKeepsTraceAlive) {
  fault::TraceInjector injector({{10, -1}, {20, +1}}, 8);
  EXPECT_EQ(injector.trace().events.size(), 2u);
  FaultOptions options;
  options.trace = &injector.trace();
  EXPECT_TRUE(options.active());
  EXPECT_FALSE(FaultOptions{}.active());
}

// --- stochastic failure model -----------------------------------------------

TEST(FaultModel, DeterministicInSeed) {
  fault::FailureModelParams params;
  params.nodes = 8;
  params.horizon = 30 * kDay;
  params.mtbf = 5.0 * static_cast<double>(kDay);
  params.mttr = 4.0 * static_cast<double>(kHour);
  const FailureTrace a = fault::generate_failures(params, 42);
  const FailureTrace b = fault::generate_failures(params, 42);
  const FailureTrace c = fault::generate_failures(params, 43);
  EXPECT_EQ(a.events, b.events);
  EXPECT_NE(a.events, c.events);
  EXPECT_FALSE(a.empty());
}

TEST(FaultModel, TraceShapeIsSane) {
  fault::FailureModelParams params;
  params.nodes = 8;
  params.horizon = 60 * kDay;
  params.mtbf = 3.0 * static_cast<double>(kDay);
  params.mttr = 6.0 * static_cast<double>(kHour);
  params.uptime_dist = fault::FailureDistribution::kWeibull;
  params.uptime_shape = 0.7;
  params.repair_dist = fault::FailureDistribution::kWeibull;
  params.repair_shape = 2.0;
  const FailureTrace t = fault::generate_failures(params, 7);
  ASSERT_FALSE(t.empty());
  EXPECT_LE(t.max_down, params.nodes);
  int down = 0;
  Time prev = -1;
  int failures = 0;
  for (const FailureEvent& e : t.events) {
    EXPECT_GT(e.t, prev);  // strictly increasing after coalescing
    prev = e.t;
    down -= e.delta;
    if (e.delta < 0) failures -= e.delta;
    EXPECT_GE(down, 0);
    EXPECT_LE(down, params.nodes);
  }
  EXPECT_EQ(down, 0) << "every failure must eventually be repaired";
  // ~8 nodes * 60d / 3d MTBF = ~160 expected failures; allow a wide band.
  EXPECT_GT(failures, 40);
  EXPECT_LT(failures, 640);
}

TEST(FaultModel, RejectsBadParams) {
  fault::FailureModelParams params;
  params.nodes = 0;
  EXPECT_THROW(fault::generate_failures(params, 1), std::invalid_argument);
  params.nodes = 4;
  params.mtbf = 0.0;
  EXPECT_THROW(fault::generate_failures(params, 1), std::invalid_argument);
}

// --- hand-computed recovery scenarios ---------------------------------------

// 3-node machine, FCFS. A(2x100) and B(1x200) start at 0; at t=40 two
// nodes fail, killing first B (tie on start time, larger id) then A; both
// requeue from scratch. B restarts alone at 40 on the surviving node; the
// failed nodes return at 140 and A restarts. B ends 40+200=240, A ends
// 140+100=240.
TEST(FaultSim, HandComputedRequeueScenario) {
  const workload::Workload w = test::make_workload({
      test::make_job(0, 2, 100),  // id 0 = A
      test::make_job(0, 1, 200),  // id 1 = B
  });
  const FailureTrace trace =
      fault::make_failure_trace({{40, -2}, {140, +2}}, 3);
  const sim::Schedule s =
      run_with_faults(core::AlgorithmSpec{}, w, 3, trace,
                      {RecoveryPolicy::kRequeueFromScratch, kHour, 0});

  EXPECT_EQ(s[0].start, 140);
  EXPECT_EQ(s[0].end, 240);
  EXPECT_EQ(s[0].submit, 0) << "response time keeps the original submit";
  EXPECT_EQ(s[1].start, 40);
  EXPECT_EQ(s[1].end, 240);

  ASSERT_EQ(s.attempts.size(), 2u);
  // Kill order: B first (equal start, larger id loses), then A.
  EXPECT_EQ(s.attempts[0].id, 1u);
  EXPECT_EQ(s.attempts[0].start, 0);
  EXPECT_EQ(s.attempts[0].end, 40);
  EXPECT_EQ(s.attempts[0].saved, 0);
  EXPECT_EQ(s.attempts[1].id, 0u);
  EXPECT_EQ(s.attempts[1].lost(), 40);

  ASSERT_EQ(s.capacity_events.size(), 2u);
  EXPECT_EQ(s.capacity_events[0], (std::pair<Time, int>{40, 1}));
  EXPECT_EQ(s.capacity_events[1], (std::pair<Time, int>{140, 3}));

  const metrics::ResilienceReport r = metrics::resilience(s, w);
  EXPECT_DOUBLE_EQ(r.executed_node_seconds, 520.0);  // 280 (A) + 240 (B)
  EXPECT_DOUBLE_EQ(r.useful_node_seconds, 400.0);    // 200 + 200
  EXPECT_DOUBLE_EQ(r.wasted_node_seconds, 120.0);    // 2*40 + 1*40
  EXPECT_DOUBLE_EQ(r.goodput_fraction, 400.0 / 520.0);
  EXPECT_EQ(r.kills, 2u);
  EXPECT_EQ(r.jobs_hit, 2u);
  EXPECT_EQ(r.max_resubmissions, 1u);
  // Capacity 3 over [0,40), 1 over [40,140), 3 over [140,240):
  // 120+100+300 = 520 available node-seconds of 720 total.
  EXPECT_DOUBLE_EQ(r.availability, 520.0 / 720.0);
  // Every available node-second was used: perfectly packed recovery.
  EXPECT_DOUBLE_EQ(r.availability_weighted_utilization, 1.0);

  const std::vector<std::size_t> counts = metrics::resubmission_counts(s);
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 1u);
}

// Same machine, checkpointing every 30s of progress with 10s restart
// overhead. A(3x100) starts at 0; a node fails at 70 (progress 70 ->
// checkpoint at 60, 10s lost); the node returns at 80 and A resumes with
// 10s overhead + 40s remaining work.
TEST(FaultSim, HandComputedCheckpointScenario) {
  const workload::Workload w = test::make_workload({
      test::make_job(0, 3, 100),
  });
  const FailureTrace trace = fault::make_failure_trace({{70, -1}, {80, +1}}, 3);
  const sim::Schedule s =
      run_with_faults(core::AlgorithmSpec{}, w, 3, trace,
                      {RecoveryPolicy::kCheckpointRestart, 30, 10});

  EXPECT_EQ(s[0].start, 80);
  EXPECT_EQ(s[0].end, 130);  // 10 overhead + 40 remaining
  ASSERT_EQ(s.attempts.size(), 1u);
  EXPECT_EQ(s.attempts[0].saved, 60);
  EXPECT_EQ(s.attempts[0].lost(), 10);

  const metrics::ResilienceReport r = metrics::resilience(s, w);
  EXPECT_DOUBLE_EQ(r.executed_node_seconds, 360.0);  // 3 * (70 + 50)
  EXPECT_DOUBLE_EQ(r.useful_node_seconds, 300.0);
  // 10s of lost progress + 10s restart overhead, on 3 nodes.
  EXPECT_DOUBLE_EQ(r.wasted_node_seconds, 60.0);
}

// A second failure during the restart overhead: nothing new is
// checkpointed (overhead is not progress), the job keeps its remaining
// work and pays the overhead again.
TEST(FaultSim, KillDuringRestartOverheadSavesNothing) {
  const workload::Workload w = test::make_workload({
      test::make_job(0, 3, 100),
  });
  const FailureTrace trace = fault::make_failure_trace(
      {{40, -1}, {45, +1}, {50, -1}, {60, +1}}, 3);
  const sim::Schedule s =
      run_with_faults(core::AlgorithmSpec{}, w, 3, trace,
                      {RecoveryPolicy::kCheckpointRestart, 30, 10});

  ASSERT_EQ(s.attempts.size(), 2u);
  EXPECT_EQ(s.attempts[0].saved, 30);  // progress 40 -> one checkpoint
  EXPECT_EQ(s.attempts[1].start, 45);
  EXPECT_EQ(s.attempts[1].end, 50);
  EXPECT_EQ(s.attempts[1].saved, 0);  // killed 5s into the 10s overhead
  EXPECT_EQ(s[0].start, 60);
  EXPECT_EQ(s[0].end, 140);  // 10 overhead + 70 remaining

  const metrics::ResilienceReport r = metrics::resilience(s, w);
  EXPECT_DOUBLE_EQ(r.executed_node_seconds, 375.0);  // 3 * (40 + 5 + 80)
  EXPECT_DOUBLE_EQ(r.wasted_node_seconds, 75.0);
}

// A kill before the first checkpoint interval completes behaves exactly
// like requeue-from-scratch plus the restart overhead.
TEST(FaultSim, KillBeforeFirstCheckpointSavesNothing) {
  const workload::Workload w = test::make_workload({
      test::make_job(0, 3, 100),
  });
  const FailureTrace trace = fault::make_failure_trace({{20, -1}, {25, +1}}, 3);
  const sim::Schedule s =
      run_with_faults(core::AlgorithmSpec{}, w, 3, trace,
                      {RecoveryPolicy::kCheckpointRestart, 30, 10});
  ASSERT_EQ(s.attempts.size(), 1u);
  EXPECT_EQ(s.attempts[0].saved, 0);
  EXPECT_EQ(s[0].end, 25 + 10 + 100);
}

// A job completing at the exact instant of a failure has completed — the
// completion batch runs before the fault batch.
TEST(FaultSim, CompletionAtFailureInstantWins) {
  const workload::Workload w = test::make_workload({
      test::make_job(0, 3, 50),
  });
  const FailureTrace trace = fault::make_failure_trace({{50, -3}, {60, +3}}, 3);
  const sim::Schedule s = run_with_faults(core::AlgorithmSpec{}, w, 3, trace);
  EXPECT_TRUE(s.attempts.empty());
  EXPECT_EQ(s[0].end, 50);
  // The same-instant fault batch still runs (capacity drops to 0 at 50),
  // but the simulation ends with the last completion, so the repair at 60
  // is never replayed.
  ASSERT_EQ(s.capacity_events.size(), 1u);
  EXPECT_EQ(s.capacity_events[0], (std::pair<Time, int>{50, 0}));
}

TEST(FaultSim, MismatchedTraceThrows) {
  const workload::Workload w = test::make_workload({test::make_job(0, 1, 10)});
  const FailureTrace trace = fault::make_failure_trace({{5, -1}, {6, +1}}, 8);
  EXPECT_THROW(run_with_faults(core::AlgorithmSpec{}, w, 4, trace),
               std::logic_error);
}

TEST(FaultSim, BadRecoveryOptionsThrow) {
  RecoveryOptions r;
  r.policy = RecoveryPolicy::kCheckpointRestart;
  r.checkpoint_interval = 0;
  EXPECT_THROW(r.validate(), std::invalid_argument);
  r.checkpoint_interval = 10;
  r.restart_overhead = -1;
  EXPECT_THROW(r.validate(), std::invalid_argument);
}

// --- every scheduler of the paper grid under failures -----------------------

TEST(FaultSim, AllGridSchedulersSurviveFailures) {
  const workload::Workload w = test::small_mixed_workload();
  fault::FailureModelParams params;
  params.nodes = 16;
  params.horizon = 600;
  params.mtbf = 300.0;
  params.mttr = 60.0;
  const FailureTrace trace = fault::generate_failures(params, 11);
  ASSERT_FALSE(trace.empty());
  for (core::WeightKind weight :
       {core::WeightKind::kUnit, core::WeightKind::kEstimatedArea}) {
    for (const core::AlgorithmSpec& spec : core::paper_grid(weight)) {
      for (RecoveryPolicy policy : {RecoveryPolicy::kRequeueFromScratch,
                                    RecoveryPolicy::kCheckpointRestart}) {
        // validate=true (run_with_faults default SimOptions) checks the
        // capacity sweep and conservation for every produced schedule.
        const sim::Schedule s = run_with_faults(
            spec, w, 16, trace, {policy, 20, 5});
        for (JobId id = 0; id < s.size(); ++id) {
          EXPECT_NE(s[id].end, kTimeInfinity)
              << spec.display_name() << " lost job " << id;
        }
      }
    }
  }
}

TEST(FaultSim, PhasedSchedulerSurvivesFailuresAcrossFlips) {
  // Spread submissions across a day/night boundary (7h) so phase flips
  // happen while nodes are down; the flip re-delivers the outage to the
  // incoming dispatcher.
  std::vector<Job> jobs;
  for (int i = 0; i < 40; ++i) {
    jobs.push_back(test::make_job(i * 20 * kMinute, 1 + (i * 7) % 256,
                                  30 * kMinute, kHour));
  }
  const workload::Workload w = test::make_workload(std::move(jobs));
  fault::FailureModelParams params;
  params.nodes = 256;
  params.horizon = 2 * kDay;
  params.mtbf = 12.0 * static_cast<double>(kHour);
  params.mttr = 1.0 * static_cast<double>(kHour);
  const FailureTrace trace = fault::generate_failures(params, 3);
  ASSERT_FALSE(trace.empty());

  sim::Machine m;
  m.nodes = 256;
  auto scheduler = core::make_institution_b_combined();
  sim::SimOptions options;
  options.faults.trace = &trace;
  options.faults.recovery = {RecoveryPolicy::kCheckpointRestart, 10 * kMinute,
                             kMinute};
  const sim::Schedule s = sim::simulate(m, *scheduler, w, options);
  for (JobId id = 0; id < s.size(); ++id) {
    EXPECT_NE(s[id].end, kTimeInfinity);
  }
}

// --- opt-in bit-identity ----------------------------------------------------

TEST(FaultSim, InactiveFaultOptionsMatchFaultFreeFingerprint) {
  const workload::Workload w = test::small_mixed_workload();
  for (const core::AlgorithmSpec& spec :
       core::paper_grid(core::WeightKind::kUnit)) {
    const std::uint64_t baseline = test::run_fingerprint(spec, w);
    // Null trace and empty trace both take the fault-free event loop.
    sim::Machine m;
    m.nodes = 16;
    auto scheduler = core::make_scheduler(spec);
    sim::SimOptions options;
    const FailureTrace empty = fault::make_failure_trace({}, 16);
    options.faults.trace = &empty;
    const sim::Schedule s = sim::simulate(m, *scheduler, w, options);
    EXPECT_EQ(sim::schedule_fingerprint(s), baseline) << spec.display_name();
  }
}

TEST(FaultSim, TraceBeyondMakespanLeavesScheduleIdentical) {
  // Fault events after the last completion are never reached: the
  // schedule carries no capacity events and fingerprints identically.
  const workload::Workload w = test::small_mixed_workload();
  const core::AlgorithmSpec spec{};
  const std::uint64_t baseline = test::run_fingerprint(spec, w);
  const FailureTrace trace =
      fault::make_failure_trace({{1000000, -4}, {1000100, +4}}, 16);
  const sim::Schedule s = run_with_faults(spec, w, 16, trace);
  EXPECT_TRUE(s.capacity_events.empty());
  EXPECT_EQ(sim::schedule_fingerprint(s), baseline);
}

// --- eval integration: determinism across thread counts ---------------------

TEST(FaultParallelEval, GridIdenticalAcrossThreadCounts) {
  const workload::Workload w = test::small_mixed_workload();
  fault::FailureModelParams params;
  params.nodes = 16;
  params.horizon = 600;
  params.mtbf = 200.0;
  params.mttr = 50.0;
  const FailureTrace trace = fault::generate_failures(params, 5);
  sim::Machine m;
  m.nodes = 16;

  eval::ExperimentOptions serial;
  serial.measure_cpu = false;
  serial.threads = 1;
  serial.faults.trace = &trace;
  serial.faults.recovery = {RecoveryPolicy::kCheckpointRestart, 20, 5};
  eval::ExperimentOptions parallel = serial;
  parallel.threads = 4;

  const auto a = eval::run_grid(m, core::WeightKind::kUnit, w, serial);
  const auto b = eval::run_grid(m, core::WeightKind::kUnit, w, parallel);
  ASSERT_EQ(a.size(), b.size());
  bool any_faulted = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].schedule_fnv, b[i].schedule_fnv) << a[i].scheduler_name;
    EXPECT_DOUBLE_EQ(a[i].goodput_fraction, b[i].goodput_fraction);
    EXPECT_DOUBLE_EQ(a[i].availability, b[i].availability);
    any_faulted = any_faulted || a[i].kills > 0;
    EXPECT_LE(a[i].goodput_fraction, 1.0);
    EXPECT_GT(a[i].goodput_fraction, 0.0);
    EXPECT_LT(a[i].availability, 1.0);
  }
  EXPECT_TRUE(any_faulted) << "trace too mild to exercise recovery";
}

TEST(FaultParallelEval, FaultSweepProducesDegradationCurve) {
  const workload::Workload w = test::small_mixed_workload();
  sim::Machine m;
  m.nodes = 16;
  fault::FailureModelParams params;
  params.nodes = 16;
  params.horizon = 600;
  params.mtbf = 250.0;
  params.mttr = 40.0;
  const FailureTrace faulty = fault::generate_failures(params, 9);

  std::vector<eval::FaultSweepPoint> points(2);
  points[0].label = "no-faults";
  points[1].label = "faulty";
  points[1].faults.trace = &faulty;
  points[1].faults.recovery = {RecoveryPolicy::kRequeueFromScratch, kHour, 0};

  eval::ExperimentOptions options;
  options.measure_cpu = false;
  const auto curve = eval::run_fault_sweep(m, core::WeightKind::kUnit, w,
                                           points, options);
  ASSERT_EQ(curve.size(), 2u);
  // Point 0 is fault-free: identical to a plain grid run.
  const auto plain = eval::run_grid(m, core::WeightKind::kUnit, w, options);
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(curve[0][i].schedule_fnv, plain[i].schedule_fnv);
    EXPECT_DOUBLE_EQ(curve[0][i].goodput_fraction, 1.0);
    EXPECT_DOUBLE_EQ(curve[0][i].availability, 1.0);
  }
  // Failures can only add work: goodput fraction degrades (or stays 1 if
  // the trace happened to miss every running job).
  for (const eval::RunResult& r : curve[1]) {
    EXPECT_LE(r.goodput_fraction, 1.0);
  }
}

}  // namespace
}  // namespace jsched
