// Bounded-memory simulation parity: simulate_stream + StreamingAggregator
// must reproduce the batch pipeline bit-for-bit — every schedule
// fingerprint of the golden grid, every metric run_one reports, with and
// without fault injection — while touching only a bounded live window.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/factory.h"
#include "eval/experiment.h"
#include "fault/fault.h"
#include "metrics/objectives.h"
#include "metrics/resilience.h"
#include "metrics/streaming.h"
#include "sim/simulator.h"
#include "sim/streaming.h"
#include "test_support.h"
#include "workload/ctc_model.h"
#include "workload/job_source.h"
#include "workload/transforms.h"

namespace jsched {
namespace {

constexpr int kMachineNodes = 256;
constexpr std::size_t kJobs = 700;
constexpr std::uint64_t kSeed = 1999;

struct StreamRun {
  sim::StreamStats stats;
  metrics::StreamedMetrics m;
};

StreamRun run_streaming(const core::AlgorithmSpec& spec,
                        const workload::Workload& w, int nodes,
                        const fault::FaultOptions& faults = {}) {
  const sim::Machine machine{nodes};
  auto scheduler = core::make_scheduler(spec);
  workload::WorkloadSource source(w);
  metrics::StreamingAggregator aggregator(machine.nodes);
  sim::StreamOptions options;
  options.faults = faults;
  StreamRun r;
  r.stats =
      sim::simulate_stream(machine, *scheduler, source, aggregator, options);
  r.m = aggregator.finish();
  return r;
}

/// The workload every golden fingerprint is pinned on.
const workload::Workload& golden_workload() {
  static const workload::Workload w = [] {
    workload::CtcModelParams params;
    params.job_count = kJobs;
    return workload::trim_to_machine(workload::generate_ctc(params, kSeed),
                                     kMachineNodes);
  }();
  return w;
}

std::vector<core::AlgorithmSpec> golden_grid() {
  std::vector<core::AlgorithmSpec> specs;
  for (const core::WeightKind weight :
       {core::WeightKind::kUnit, core::WeightKind::kEstimatedArea}) {
    for (const core::AlgorithmSpec& s : core::paper_grid(weight)) {
      specs.push_back(s);
    }
  }
  for (const core::OrderKind order :
       {core::OrderKind::kFcfs, core::OrderKind::kSmartFfia}) {
    core::AlgorithmSpec spec;
    spec.order = order;
    spec.dispatch = core::DispatchKind::kConservative;
    spec.conservative.full_compression = true;
    specs.push_back(spec);
  }
  return specs;
}

TEST(StreamingSimTest, GoldenGridBitIdenticalToBatch) {
  const workload::Workload& w = golden_workload();
  for (const core::AlgorithmSpec& spec : golden_grid()) {
    SCOPED_TRACE(spec.display_name());
    const sim::Schedule batch = test::run(spec, w, kMachineNodes);
    const StreamRun streamed = run_streaming(spec, w, kMachineNodes);

    // The bit-identity witness: same fingerprint = same schedule.
    EXPECT_EQ(streamed.m.schedule_fnv, sim::schedule_fingerprint(batch));

    // Every metric run_one reports, compared exactly (not approximately):
    // the streaming aggregator performs the identical float additions in
    // the identical order.
    EXPECT_EQ(streamed.m.jobs, batch.size());
    EXPECT_EQ(streamed.m.art, metrics::average_response_time(batch));
    EXPECT_EQ(streamed.m.awrt, metrics::average_weighted_response_time(batch));
    EXPECT_EQ(streamed.m.wait, metrics::average_wait_time(batch));
    EXPECT_EQ(streamed.m.makespan, batch.makespan());
    EXPECT_EQ(streamed.m.utilization, metrics::utilization(batch));
    EXPECT_EQ(streamed.stats.max_queue_length, batch.max_queue_length);

    const metrics::ResilienceReport res = metrics::resilience(batch, w);
    EXPECT_EQ(streamed.m.resilience.executed_node_seconds,
              res.executed_node_seconds);
    EXPECT_EQ(streamed.m.resilience.useful_node_seconds,
              res.useful_node_seconds);
    EXPECT_EQ(streamed.m.resilience.goodput_fraction, res.goodput_fraction);
    EXPECT_EQ(streamed.m.resilience.availability, res.availability);

    // The memory claim: the live window stayed far below the workload.
    EXPECT_GT(streamed.stats.peak_live_jobs, 0u);
    EXPECT_LT(streamed.stats.peak_live_jobs, w.size());
  }
}

TEST(StreamingSimTest, FaultInjectionParity) {
  const workload::Workload& w = golden_workload();
  // A trace with two outages deep enough to kill running jobs.
  const fault::TraceInjector injector(
      {{50'000, -200}, {120'000, +200}, {400'000, -128}, {500'000, +128}},
      kMachineNodes);
  for (const fault::RecoveryPolicy policy :
       {fault::RecoveryPolicy::kRequeueFromScratch,
        fault::RecoveryPolicy::kCheckpointRestart}) {
    fault::FaultOptions faults;
    faults.trace = &injector.trace();
    faults.recovery.policy = policy;
    faults.recovery.checkpoint_interval = 1800;
    faults.recovery.restart_overhead = 60;

    for (const char* name : {"FCFS+EASY", "FCFS+CONS"}) {
      SCOPED_TRACE(name);
      core::AlgorithmSpec spec;
      spec.dispatch = std::string(name) == "FCFS+EASY"
                          ? core::DispatchKind::kEasy
                          : core::DispatchKind::kConservative;

      const sim::Machine machine{kMachineNodes};
      auto scheduler = core::make_scheduler(spec);
      sim::SimOptions sim_options;
      sim_options.faults = faults;
      const sim::Schedule batch =
          sim::simulate(machine, *scheduler, w, sim_options);
      ASSERT_FALSE(batch.attempts.empty());  // the trace actually killed

      const StreamRun streamed =
          run_streaming(spec, w, kMachineNodes, faults);
      EXPECT_EQ(streamed.m.schedule_fnv, sim::schedule_fingerprint(batch));
      EXPECT_EQ(streamed.m.resilience.kills, batch.attempts.size());

      const metrics::ResilienceReport res = metrics::resilience(batch, w);
      EXPECT_EQ(streamed.m.resilience.executed_node_seconds,
                res.executed_node_seconds);
      EXPECT_EQ(streamed.m.resilience.wasted_node_seconds,
                res.wasted_node_seconds);
      EXPECT_EQ(streamed.m.resilience.jobs_hit, res.jobs_hit);
      EXPECT_EQ(streamed.m.resilience.max_resubmissions,
                res.max_resubmissions);
      EXPECT_EQ(streamed.m.resilience.availability, res.availability);
      EXPECT_EQ(streamed.m.resilience.availability_weighted_utilization,
                res.availability_weighted_utilization);
    }
  }
}

TEST(StreamingSimTest, EvalStreamingKnobMatchesBatchRunOne) {
  const workload::Workload& w = golden_workload();
  const sim::Machine machine{kMachineNodes};
  for (const core::DispatchKind dispatch :
       {core::DispatchKind::kEasy, core::DispatchKind::kConservative}) {
    core::AlgorithmSpec spec;
    spec.dispatch = dispatch;
    eval::ExperimentOptions batch_options;
    const eval::RunResult batch = eval::run_one(machine, spec, w, batch_options);
    eval::ExperimentOptions stream_options;
    stream_options.streaming = true;
    const eval::RunResult streamed =
        eval::run_one(machine, spec, w, stream_options);

    EXPECT_EQ(streamed.jobs, batch.jobs);
    EXPECT_EQ(streamed.schedule_fnv, batch.schedule_fnv);
    EXPECT_EQ(streamed.art, batch.art);
    EXPECT_EQ(streamed.awrt, batch.awrt);
    EXPECT_EQ(streamed.wait, batch.wait);
    EXPECT_EQ(streamed.makespan, batch.makespan);
    EXPECT_EQ(streamed.utilization, batch.utilization);
    EXPECT_EQ(streamed.max_queue_length, batch.max_queue_length);
    EXPECT_EQ(streamed.goodput_node_seconds, batch.goodput_node_seconds);
    EXPECT_EQ(streamed.wasted_node_seconds, batch.wasted_node_seconds);
    EXPECT_EQ(streamed.goodput_fraction, batch.goodput_fraction);
    EXPECT_EQ(streamed.availability, batch.availability);
    EXPECT_EQ(streamed.availability_weighted_utilization,
              batch.availability_weighted_utilization);
    EXPECT_EQ(streamed.kills, batch.kills);
    EXPECT_EQ(streamed.jobs_hit, batch.jobs_hit);
    EXPECT_EQ(streamed.scheduler_name, batch.scheduler_name);
  }
}

TEST(StreamingSimTest, RunStreamedConsumesARawSource) {
  // The O(1)-RSS entry point: generator straight into the simulator, no
  // Workload anywhere. Must equal the batch result over the materialized
  // stream.
  workload::CtcModelParams params;
  params.job_count = 400;
  params.machine_nodes = kMachineNodes;
  const sim::Machine machine{kMachineNodes};
  core::AlgorithmSpec spec;
  spec.dispatch = core::DispatchKind::kEasy;

  workload::CtcJobSource source(params, 7);
  const eval::RunResult streamed =
      eval::run_streamed(machine, spec, source, {});

  const workload::Workload w = workload::generate_ctc(params, 7);
  const eval::RunResult batch = eval::run_one(machine, spec, w, {});
  EXPECT_EQ(streamed.schedule_fnv, batch.schedule_fnv);
  EXPECT_EQ(streamed.art, batch.art);
  EXPECT_EQ(streamed.jobs, batch.jobs);
}

/// A source violating the stream contract on purpose.
class BrokenSource final : public workload::JobSource {
 public:
  explicit BrokenSource(std::vector<Job> jobs) : jobs_(std::move(jobs)) {}
  bool next(Job& out) override {
    if (pos_ == jobs_.size()) return false;
    out = jobs_[pos_++];
    return true;
  }
  const std::string& name() const noexcept override { return name_; }

 private:
  std::vector<Job> jobs_;
  std::size_t pos_ = 0;
  std::string name_ = "broken";
};

Job raw_job(JobId id, Time submit, int nodes, Duration runtime) {
  Job j;
  j.id = id;
  j.submit = submit;
  j.nodes = nodes;
  j.runtime = runtime;
  j.estimate = runtime;
  return j;
}

TEST(StreamingSimTest, RejectsContractViolatingSources) {
  const sim::Machine machine{16};
  core::AlgorithmSpec spec;
  const auto expect_rejected = [&](std::vector<Job> jobs) {
    BrokenSource source(std::move(jobs));
    auto scheduler = core::make_scheduler(spec);
    metrics::StreamingAggregator aggregator(machine.nodes);
    EXPECT_THROW(
        sim::simulate_stream(machine, *scheduler, source, aggregator, {}),
        std::invalid_argument);
  };
  // Non-dense ids.
  expect_rejected({raw_job(0, 0, 1, 10), raw_job(2, 5, 1, 10)});
  // Decreasing submits.
  expect_rejected({raw_job(0, 10, 1, 10), raw_job(1, 5, 1, 10)});
  // Invalid fields.
  expect_rejected({raw_job(0, 0, 0, 10)});
  // Wider than the machine (the batch path's trim_to_machine error).
  expect_rejected({raw_job(0, 0, 17, 10)});
}

TEST(StreamingSimTest, EmptyStreamYieldsZeroStatsAndFinishThrows) {
  const sim::Machine machine{16};
  core::AlgorithmSpec spec;
  auto scheduler = core::make_scheduler(spec);
  BrokenSource source({});
  metrics::StreamingAggregator aggregator(machine.nodes);
  const sim::StreamStats stats =
      sim::simulate_stream(machine, *scheduler, source, aggregator, {});
  EXPECT_EQ(stats.jobs, 0u);
  EXPECT_EQ(stats.makespan, 0);
  EXPECT_THROW(aggregator.finish(), std::invalid_argument);
}

TEST(StreamingSimTest, SmallMixedWorkloadAllSchedulers) {
  // Cheap cross-check on a second workload shape for every grid spec.
  const workload::Workload w = test::small_mixed_workload();
  for (const core::AlgorithmSpec& spec : core::paper_grid(core::WeightKind::kUnit)) {
    SCOPED_TRACE(spec.display_name());
    const sim::Schedule batch = test::run(spec, w, 16);
    const StreamRun streamed = run_streaming(spec, w, 16);
    EXPECT_EQ(streamed.m.schedule_fnv, sim::schedule_fingerprint(batch));
  }
}

}  // namespace
}  // namespace jsched
