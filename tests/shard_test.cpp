// Sharded sweeps: the deterministic cell partition (eval::ShardPlan),
// shard-aware grid execution, journal merging with its partition
// invariants, the workload materialization cache, and the in-process
// worker loop. The load-bearing property throughout: how a sweep is
// partitioned must be unobservable in its results — every RunResult,
// fingerprint included, bit-identical to the serial single-process run.
#include "eval/shard.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "eval/experiment.h"
#include "eval/journal.h"
#include "eval/replication.h"
#include "eval/shard_driver.h"
#include "test_support.h"
#include "workload/workload.h"

namespace jsched {
namespace {

class TempFile {
 public:
  explicit TempFile(const std::string& stem)
      : path_(std::string(::testing::TempDir()) + stem + "-" +
              std::to_string(counter_++) + ".journal") {
    std::remove(path_.c_str());
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  static int counter_;
  std::string path_;
};

int TempFile::counter_ = 0;

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

TEST(Shard, SpecValidates) {
  EXPECT_NO_THROW((eval::ShardSpec{0, 1}).validate());
  EXPECT_NO_THROW((eval::ShardSpec{3, 4}).validate());
  EXPECT_THROW((eval::ShardSpec{0, 0}).validate(), std::invalid_argument);
  EXPECT_THROW((eval::ShardSpec{2, 2}).validate(), std::invalid_argument);
  EXPECT_FALSE((eval::ShardSpec{0, 1}).active());
  EXPECT_TRUE((eval::ShardSpec{0, 2}).active());
}

TEST(Shard, PlanDealsRoundRobinByKeyRank) {
  // Sorted rank r -> shard r % count, independent of input order.
  const eval::ShardPlan plan({50, 10, 40, 20, 30}, 2);
  EXPECT_EQ(plan.shard_of(10), 0u);
  EXPECT_EQ(plan.shard_of(20), 1u);
  EXPECT_EQ(plan.shard_of(30), 0u);
  EXPECT_EQ(plan.shard_of(40), 1u);
  EXPECT_EQ(plan.shard_of(50), 0u);
  EXPECT_EQ(plan.keys_of(0), (std::vector<std::uint64_t>{10, 30, 50}));
  EXPECT_EQ(plan.keys_of(1), (std::vector<std::uint64_t>{20, 40}));
}

TEST(Shard, PlanIsDeterministicAcrossInputOrders) {
  std::vector<std::uint64_t> keys;
  for (std::uint64_t k = 1; k <= 64; ++k) keys.push_back(k * 0x9e3779b9ull);
  const eval::ShardPlan reference(keys, 5);
  std::mt19937_64 rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    std::shuffle(keys.begin(), keys.end(), rng);
    const eval::ShardPlan shuffled(keys, 5);
    for (std::uint64_t k : keys) {
      EXPECT_EQ(shuffled.shard_of(k), reference.shard_of(k));
    }
  }
}

TEST(Shard, PlanBalancesCellCounts) {
  std::vector<std::uint64_t> keys;
  for (std::uint64_t k = 0; k < 26; ++k) keys.push_back(k ^ 0xabcdef12345ull);
  const eval::ShardPlan plan(keys, 4);
  // 26 cells over 4 shards: two shards of 7, two of 6 — never worse.
  for (std::size_t s = 0; s < 4; ++s) {
    const std::size_t n = plan.keys_of(s).size();
    EXPECT_GE(n, 6u);
    EXPECT_LE(n, 7u);
  }
}

TEST(Shard, PlanRejectsBadInputs) {
  EXPECT_THROW(eval::ShardPlan({1, 2, 2}, 2), std::invalid_argument);
  EXPECT_THROW(eval::ShardPlan({1, 2, 3}, 0), std::invalid_argument);
  const eval::ShardPlan plan({1, 2, 3}, 2);
  EXPECT_THROW(plan.shard_of(99), std::out_of_range);
}

TEST(Shard, GridCellKeysMatchWhatSweepsJournal) {
  // grid_cell_keys must predict the exact keys run_grid_outcomes writes,
  // or a driver's expected set (and the merge) would drift from reality.
  const auto w = test::small_mixed_workload();
  sim::Machine m;
  m.nodes = 16;
  TempFile f("gridkeys");
  eval::SweepJournal journal(f.path());
  eval::ExperimentOptions opt;
  opt.journal = &journal;
  const auto grid =
      eval::run_grid_outcomes(m, core::WeightKind::kUnit, w, opt);
  ASSERT_TRUE(grid.all_ok());

  const auto expected = eval::grid_cell_keys(workload::fingerprint(w), m.nodes,
                                             core::WeightKind::kUnit);
  ASSERT_EQ(expected.size(), grid.cells.size());
  const auto cells = journal.snapshot();
  ASSERT_EQ(cells.size(), expected.size());
  auto sorted = expected;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells[i].first, sorted[i]);
  }
}

TEST(Shard, ShardedGridIsDisjointUnionOfSerialGrid) {
  const auto w = test::small_mixed_workload();
  sim::Machine m;
  m.nodes = 16;
  const auto serial = eval::run_grid(m, core::WeightKind::kUnit, w);

  constexpr std::size_t kShards = 3;
  std::vector<int> owners(serial.size(), 0);
  for (std::size_t s = 0; s < kShards; ++s) {
    eval::ExperimentOptions opt;
    opt.shard = {s, kShards};
    const auto grid = eval::run_grid_outcomes(m, core::WeightKind::kUnit, w, opt);
    ASSERT_EQ(grid.cells.size(), serial.size());
    EXPECT_EQ(grid.failed(), 0u);
    EXPECT_GT(grid.skipped(), 0u);
    for (std::size_t i = 0; i < grid.cells.size(); ++i) {
      if (grid.cells[i].skipped) continue;
      ++owners[i];
      ASSERT_TRUE(grid.cells[i].ok);
      // Bit-identical to the serial cell, fingerprint and metrics alike.
      EXPECT_EQ(grid.cells[i].result.schedule_fnv, serial[i].schedule_fnv);
      EXPECT_EQ(grid.cells[i].result.art, serial[i].art);
      EXPECT_EQ(grid.cells[i].result.awrt, serial[i].awrt);
    }
  }
  // Disjoint cover: every cell ran on exactly one shard.
  for (int count : owners) EXPECT_EQ(count, 1);
}

TEST(Shard, RunGridRejectsActiveShard) {
  const auto w = test::small_mixed_workload();
  sim::Machine m;
  m.nodes = 16;
  eval::ExperimentOptions opt;
  opt.shard = {1, 2};
  EXPECT_THROW(eval::run_grid(m, core::WeightKind::kUnit, w, opt),
               std::invalid_argument);
}

/// Run one shard of the unit-weight grid into its own journal; returns the
/// journal path contents by reference through `journal_path`.
void run_shard_into(const workload::Workload& w, const sim::Machine& m,
                    std::size_t index, std::size_t count,
                    const std::string& journal_path) {
  eval::SweepJournal journal(journal_path);
  eval::ExperimentOptions opt;
  opt.journal = &journal;
  opt.shard = {index, count};
  const auto grid = eval::run_grid_outcomes(m, core::WeightKind::kUnit, w, opt);
  ASSERT_EQ(grid.failed(), 0u);
}

eval::MergeOptions merge_options_for(const workload::Workload& w,
                                     const sim::Machine& m,
                                     std::vector<std::string> shard_paths,
                                     const std::string& out_path) {
  eval::MergeOptions merge;
  merge.shard_paths = std::move(shard_paths);
  merge.expected_keys = eval::grid_cell_keys(workload::fingerprint(w), m.nodes,
                                             core::WeightKind::kUnit);
  merge.sweep_fingerprint =
      eval::sweep_fingerprint(workload::fingerprint(w), m.nodes);
  merge.out_path = out_path;
  return merge;
}

TEST(ShardMerge, SingleShardMergeIsByteIdenticalToSerialJournal) {
  const auto w = test::small_mixed_workload();
  sim::Machine m;
  m.nodes = 16;
  TempFile serial("merge-serial");
  run_shard_into(w, m, 0, 1, serial.path());

  TempFile merged("merge-out");
  const auto report = eval::merge_shard_journals(
      merge_options_for(w, m, {serial.path()}, merged.path()));
  EXPECT_TRUE(report.ok()) << report.describe();
  EXPECT_EQ(report.merged, 13u);
  // The strongest form of "merge changes nothing": the merged file's bytes
  // equal the journal an uninterrupted serial sweep wrote.
  EXPECT_EQ(slurp(merged.path()), slurp(serial.path()));
}

TEST(ShardMerge, TwoShardsMergeAndResumeBitIdentically) {
  const auto w = test::small_mixed_workload();
  sim::Machine m;
  m.nodes = 16;
  TempFile shard0("merge-s0");
  TempFile shard1("merge-s1");
  run_shard_into(w, m, 0, 2, shard0.path());
  run_shard_into(w, m, 1, 2, shard1.path());

  TempFile merged("merge-2out");
  const auto report = eval::merge_shard_journals(
      merge_options_for(w, m, {shard0.path(), shard1.path()}, merged.path()));
  ASSERT_TRUE(report.ok()) << report.describe();
  EXPECT_EQ(report.merged, 13u);

  // Resume the full grid from the merged journal: no cell re-simulates,
  // and the results match a fresh serial run bit for bit.
  eval::SweepJournal journal(merged.path());
  eval::ExperimentOptions opt;
  opt.journal = &journal;
  const auto grid = eval::run_grid_outcomes(m, core::WeightKind::kUnit, w, opt);
  ASSERT_TRUE(grid.all_ok());
  EXPECT_EQ(grid.resumed(), grid.cells.size());
  const auto serial = eval::run_grid(m, core::WeightKind::kUnit, w);
  const auto resumed = grid.results();
  ASSERT_EQ(resumed.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(resumed[i].schedule_fnv, serial[i].schedule_fnv);
    EXPECT_EQ(resumed[i].art, serial[i].art);
  }
}

TEST(ShardMerge, RejectsCellsDuplicatedAcrossShards) {
  const auto w = test::small_mixed_workload();
  sim::Machine m;
  m.nodes = 16;
  // Two "shards" that each ran the whole grid: every cell is duplicated.
  TempFile a("merge-dup-a");
  TempFile b("merge-dup-b");
  run_shard_into(w, m, 0, 1, a.path());
  run_shard_into(w, m, 0, 1, b.path());

  TempFile merged("merge-dup-out");
  const auto report = eval::merge_shard_journals(
      merge_options_for(w, m, {a.path(), b.path()}, merged.path()));
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.duplicates, 13u);
  EXPECT_EQ(report.merged, 13u);  // first copy of each still merges
}

TEST(ShardMerge, ReportsMissingCellsPerShard) {
  const auto w = test::small_mixed_workload();
  sim::Machine m;
  m.nodes = 16;
  TempFile shard0("merge-miss-s0");
  run_shard_into(w, m, 0, 2, shard0.path());
  // Shard 1 never ran; its journal does not exist.
  const std::string absent =
      std::string(::testing::TempDir()) + "merge-miss-absent.journal";
  std::remove(absent.c_str());

  auto options = merge_options_for(w, m, {shard0.path(), absent}, "");
  TempFile merged("merge-miss-out");
  options.out_path = merged.path();
  const eval::ShardPlan plan(options.expected_keys, 2);
  options.plan = &plan;
  const auto report = eval::merge_shard_journals(options);
  std::remove(absent.c_str());
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.missing.size(), plan.keys_of(1).size());
  ASSERT_EQ(report.missing_by_shard.size(), 2u);
  EXPECT_EQ(report.missing_by_shard[0], 0u);
  EXPECT_EQ(report.missing_by_shard[1], report.missing.size());
  EXPECT_NE(report.describe().find("missing"), std::string::npos);
}

TEST(ShardMerge, FlagsUnexpectedForeignCells) {
  const auto w = test::small_mixed_workload();
  sim::Machine m;
  m.nodes = 16;
  // The journal holds unit-weight cells, but the expected set asks for the
  // weighted grid: everything found is foreign, everything wanted missing.
  TempFile shard0("merge-foreign");
  run_shard_into(w, m, 0, 1, shard0.path());

  eval::MergeOptions options;
  options.shard_paths = {shard0.path()};
  options.expected_keys = eval::grid_cell_keys(
      workload::fingerprint(w), m.nodes, core::WeightKind::kEstimatedArea);
  options.sweep_fingerprint =
      eval::sweep_fingerprint(workload::fingerprint(w), m.nodes);
  TempFile merged("merge-foreign-out");
  options.out_path = merged.path();
  const auto report = eval::merge_shard_journals(options);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.unexpected, 13u);
  EXPECT_EQ(report.merged, 0u);
  EXPECT_EQ(report.missing.size(), 13u);
}

TEST(ShardWorkloadCache, MemoizesByKey) {
  eval::WorkloadCache cache;
  int calls = 0;
  const auto make = [&calls] {
    ++calls;
    return test::small_mixed_workload();
  };
  const auto a = cache.get(1, make);
  const auto b = cache.get(1, make);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(a.get(), b.get());  // same materialization, not a copy
  (void)cache.get(2, make);
  EXPECT_EQ(calls, 2);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_GE(stats.saved_seconds, 0.0);
}

TEST(ShardWorkloadCache, ReplicationGeneratesEachSeedOnce) {
  sim::Machine m;
  m.nodes = 16;
  eval::WorkloadCache cache;
  int generations = 0;
  const auto make = [&generations](std::uint64_t) {
    ++generations;
    return test::small_mixed_workload();
  };
  const std::vector<std::uint64_t> seeds = {11, 22, 33};
  eval::ExperimentOptions opt;
  opt.workload_cache = &cache;
  const core::AlgorithmSpec fcfs{};  // defaults: FCFS list scheduling
  const auto first = eval::run_replicated(m, fcfs, make, seeds, opt);
  EXPECT_EQ(generations, 3);
  // A second spec over the same seeds rides the cache entirely.
  core::AlgorithmSpec easy;
  easy.dispatch = core::DispatchKind::kEasy;
  const auto second = eval::run_replicated(m, easy, make, seeds, opt);
  EXPECT_EQ(generations, 3);
  EXPECT_EQ(cache.stats().misses, 3u);
  EXPECT_EQ(cache.stats().hits, 3u);
  // And the cached workloads produce the same statistics a cacheless run
  // would (the cache returns the identical objects).
  const auto uncached = eval::run_replicated(m, easy, make, seeds, {});
  EXPECT_EQ(second.art.mean(), uncached.art.mean());
}

TEST(ShardWorker, RunsOwnedCellsThenResumes) {
  sim::Machine m;
  m.nodes = 16;
  TempFile journal("worker");
  eval::ShardWorkerConfig config;
  config.machine = m;
  config.weights = {core::WeightKind::kUnit, core::WeightKind::kEstimatedArea};
  config.journal_path = journal.path();
  config.shard = {0, 2};
  config.workload_key = 42;
  const auto make = [] { return test::small_mixed_workload(); };

  // Each 13-cell grid is partitioned independently, and shard 0 of 2 takes
  // the 7 even key ranks: 7 unit + 7 weighted cells, 6 + 6 skipped.
  const auto first = eval::run_shard_worker(make, config);
  EXPECT_TRUE(first.ok());
  EXPECT_EQ(first.cells, 14u);
  EXPECT_EQ(first.ran, 14u);
  EXPECT_EQ(first.resumed, 0u);
  EXPECT_EQ(first.skipped, 12u);
  // One materialization serves both objectives.
  EXPECT_EQ(first.cache.misses, 1u);
  EXPECT_EQ(first.cache.hits, 1u);

  // A relaunched worker (same journal) resumes everything, runs nothing.
  const auto second = eval::run_shard_worker(make, config);
  EXPECT_TRUE(second.ok());
  EXPECT_EQ(second.ran, 0u);
  EXPECT_EQ(second.resumed, 14u);
}

TEST(ShardCoordinator, PollStopDrainsWorkersGracefully) {
  // Two long-running "workers" (sleep 30): poll_stop fires on the first
  // loop iteration, the coordinator SIGTERMs both, and they exit within
  // the grace window — no restarts burned, report flagged as stopped.
  TempFile j0("drain0"), j1("drain1");
  eval::CoordinatorConfig coord;
  coord.shards.push_back({{"sleep", "30"}, {}, j0.path()});
  coord.shards.push_back({{"sleep", "30"}, {}, j1.path()});
  coord.restart_budget = 1;
  coord.poll_interval = std::chrono::milliseconds(10);
  coord.progress_interval = std::chrono::milliseconds(0);
  coord.drain_grace = std::chrono::milliseconds(5000);
  coord.poll_stop = [] { return true; };

  const auto t0 = std::chrono::steady_clock::now();
  const eval::CoordinatorReport report = eval::run_shard_coordinator(coord);
  const auto elapsed = std::chrono::steady_clock::now() - t0;

  EXPECT_TRUE(report.stopped_by_request);
  EXPECT_FALSE(report.all_ok());
  EXPECT_EQ(report.total_restarts(), 0u);
  ASSERT_EQ(report.shards.size(), 2u);
  for (const eval::ShardStatus& s : report.shards) {
    EXPECT_TRUE(s.last_exit.signaled);
    EXPECT_EQ(s.last_exit.code, SIGTERM);
  }
  // Far below the 30s the workers would otherwise run.
  EXPECT_LT(elapsed, std::chrono::seconds(10));
}

TEST(ShardCoordinator, StopAfterCompletionIsNotADrain) {
  // Workers that finish before poll_stop ever fires: a normal, ok report.
  TempFile j0("fast0");
  eval::CoordinatorConfig coord;
  coord.shards.push_back({{"true"}, {}, j0.path()});
  coord.poll_interval = std::chrono::milliseconds(5);
  coord.progress_interval = std::chrono::milliseconds(0);
  const eval::CoordinatorReport report = eval::run_shard_coordinator(coord);
  EXPECT_FALSE(report.stopped_by_request);
  EXPECT_TRUE(report.all_ok());
}

}  // namespace
}  // namespace jsched
