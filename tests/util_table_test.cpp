#include "util/table.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace jsched::util {
namespace {

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, RejectsRowWidthMismatch) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), std::invalid_argument);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), std::invalid_argument);
}

TEST(Table, AsciiContainsAllCells) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1.5"});
  t.add_row({"beta", "-2%"});
  const std::string out = t.to_ascii();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("-2%"), std::string::npos);
}

TEST(Table, TitleRendered) {
  Table t({"x"});
  t.set_title("Table 3");
  EXPECT_EQ(t.to_ascii().rfind("Table 3", 0), 0u);
}

TEST(Table, CsvEscaping) {
  Table t({"a", "b"});
  t.add_row({"has,comma", "has\"quote"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
}

TEST(Table, CsvRowsAndHeader) {
  Table t({"h1", "h2"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "h1,h2\n1,2\n");
}

TEST(Sci, PaperStyle) {
  EXPECT_EQ(sci(4.91e6), "4.91E+06");
  EXPECT_EQ(sci(1.43e11), "1.43E+11");
  EXPECT_EQ(sci(0.0), "0.00E+00");
}

TEST(Pct, MatchesPaperFormatting) {
  EXPECT_EQ(pct(3.95e5, 3.95e5), "0%");
  EXPECT_EQ(pct(6.70e5, 3.95e5), "+69.6%");
  EXPECT_EQ(pct(1.02e5, 3.95e5), "-74.2%");
}

TEST(Pct, ZeroReference) { EXPECT_EQ(pct(1.0, 0.0), "n/a"); }

TEST(Pct, TinyDifferenceIsZero) { EXPECT_EQ(pct(100.0001, 100.0), "0%"); }

TEST(Fixed, Decimals) {
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fixed(2.0, 0), "2");
}

}  // namespace
}  // namespace jsched::util
