#include "core/smart.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "test_support.h"

namespace jsched::core {
namespace {

using test::make_job;

JobStore store_with(std::vector<Job> jobs) {
  JobStore s;
  JobId id = 0;
  for (Job j : jobs) {
    j.id = id++;
    s.put(j);
  }
  return s;
}

std::vector<JobId> ids(std::size_t n) {
  std::vector<JobId> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<JobId>(i);
  return v;
}

SmartParams ffia() { return {}; }
SmartParams nfiw() {
  SmartParams p;
  p.variant = SmartVariant::kNfiw;
  return p;
}

TEST(SmartPlan, PermutationOfInput) {
  JobStore store = store_with({
      make_job(0, 1, 0, 10), make_job(0, 4, 0, 100), make_job(0, 8, 0, 3),
      make_job(0, 2, 0, 50), make_job(0, 16, 0, 1000),
  });
  for (const auto& params : {ffia(), nfiw()}) {
    auto order = smart_plan(ids(5), store, 16, params);
    std::sort(order.begin(), order.end());
    EXPECT_EQ(order, ids(5));
  }
}

TEST(SmartPlan, EmptyInput) {
  JobStore store;
  EXPECT_TRUE(smart_plan({}, store, 16, ffia()).empty());
}

TEST(SmartPlan, ShortJobsScheduledBeforeLongOnes) {
  // Equal widths and unit weights: shelf Smith ratio = count / max_time,
  // so the bin of short jobs wins. Job 0 is 8x longer than job 1.
  JobStore store = store_with({
      make_job(0, 4, 0, 800),
      make_job(0, 4, 0, 100),
  });
  const auto order = smart_plan(ids(2), store, 16, ffia());
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1u);
  EXPECT_EQ(order[1], 0u);
}

TEST(SmartPlan, JobsInSameBinShareShelfUpToCapacity) {
  // Three 8-node jobs with near-equal times on a 16-node machine: two fit
  // one shelf, the third opens a new shelf. The two-job shelf has the
  // larger weight sum (unit weights) and goes first.
  JobStore store = store_with({
      make_job(0, 8, 0, 60),
      make_job(0, 8, 0, 61),
      make_job(0, 8, 0, 62),
  });
  const auto order = smart_plan(ids(3), store, 16, ffia());
  ASSERT_EQ(order.size(), 3u);
  // FFIA sorts by area ascending: 60, 61 fill shelf 1; 62 overflows.
  EXPECT_EQ(order[2], 2u);
}

TEST(SmartPlan, FfiaConsidersAllShelvesOfBin) {
  // Shelf 1: jobs of width 10+4 = 14/16; a later width-2 job still fits
  // shelf 1 under FFIA (first fit over all shelves) even though shelf 2
  // exists by then.
  JobStore store = store_with({
      make_job(0, 10, 0, 100),  // area 1000
      make_job(0, 12, 0, 100),  // area 1200 -> opens shelf 2
      make_job(0, 4, 0, 101),   // area 404
      make_job(0, 2, 0, 127),   // area 254
  });
  // FFIA order by area: 3 (254), 2 (404), 0 (1000), 1 (1200).
  // shelf1: 3 (2), 2 (+4 = 6), 0 (+10 = 16 full); shelf2: 1.
  const auto order = smart_plan(ids(4), store, 16, ffia());
  ASSERT_EQ(order.size(), 4u);
  // Shelf 1 has weight 3 / max_time 127; shelf 2 weight 1 / 100.
  EXPECT_EQ(order[3], 1u);
  // Shelf 1 members keep insertion (area) order.
  EXPECT_EQ(order[0], 3u);
  EXPECT_EQ(order[1], 2u);
  EXPECT_EQ(order[2], 0u);
}

TEST(SmartPlan, NfiwOnlyConsidersCurrentShelf) {
  // NFIW (unit weights) sorts by nodes ascending: 2, 4, 10, 12.
  // shelf1: 2+4+10 = 16 full; 12 opens shelf2 and becomes current; nothing
  // returns to shelf1.
  JobStore store = store_with({
      make_job(0, 10, 0, 100),
      make_job(0, 12, 0, 100),
      make_job(0, 4, 0, 101),
      make_job(0, 2, 0, 127),
  });
  const auto order = smart_plan(ids(4), store, 16, nfiw());
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], 3u);
  EXPECT_EQ(order[1], 2u);
  EXPECT_EQ(order[2], 0u);
  EXPECT_EQ(order[3], 1u);
}

TEST(SmartPlan, BinsSeparateByGeometricExecutionTime) {
  // gamma = 2: times 1, 2, 4 land in bins 0, 1, 2 (]0,1], ]1,2], ]2,4]).
  JobStore store = store_with({
      make_job(0, 1, 0, 1),
      make_job(0, 1, 0, 2),
      make_job(0, 1, 0, 4),
      make_job(0, 1, 0, 3),  // also bin 2 (]2,4])
  });
  const auto order = smart_plan(ids(4), store, 16, ffia());
  // Shelf ratios: bin0 1/1=1, bin1 1/2, bin2 2/4 — bin0 first, then the
  // two-job bin-2 shelf ties bin1 at 0.5; stable tie-break by bin index.
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], 0u);
  EXPECT_EQ(order[1], 1u);
}

TEST(SmartPlan, WeightedVariantPrefersHeavyShelves) {
  // Two jobs, same execution time (same bin), too wide to share a shelf.
  // Unit weights: tie broken by creation order (area ascending -> the
  // narrow job's shelf first). Area weights: the wide job's shelf has
  // weight 12*100 vs 4*100 and must come first.
  JobStore store = store_with({
      make_job(0, 4, 0, 100),
      make_job(0, 12, 0, 100),
  });
  SmartParams unit = ffia();
  const auto u = smart_plan(ids(2), store, 15, unit);
  EXPECT_EQ(u[0], 0u);

  SmartParams area = ffia();
  area.weight = WeightKind::kEstimatedArea;
  const auto a = smart_plan(ids(2), store, 15, area);
  EXPECT_EQ(a[0], 1u);
}

TEST(SmartPlan, GammaValidation) {
  JobStore store = store_with({make_job(0, 1, 0, 10)});
  SmartParams p = ffia();
  p.gamma = 1.0;
  EXPECT_THROW(smart_plan(ids(1), store, 16, p), std::invalid_argument);
  EXPECT_THROW(smart_plan(ids(1), store, 0, ffia()), std::invalid_argument);
}

TEST(SmartPlan, GammaControlsBinning) {
  // With a huge gamma all jobs share one bin; NFIW then packs by width
  // regardless of execution time.
  JobStore store = store_with({
      make_job(0, 8, 0, 10),
      make_job(0, 8, 0, 10000),
  });
  SmartParams p = nfiw();
  p.gamma = 1e9;
  const auto order = smart_plan(ids(2), store, 16, p);
  // Single shelf: both jobs start concurrently, so one shelf holds both.
  ASSERT_EQ(order.size(), 2u);
}

TEST(SmartOrder, OnlineAdaptationProducesValidSchedules) {
  AlgorithmSpec spec;
  spec.order = OrderKind::kSmartFfia;
  const auto s = test::run(spec, test::small_mixed_workload(), 16);
  EXPECT_GT(s.makespan(), 0);
}

TEST(SmartOrder, NameReflectsVariant) {
  SmartOrder f{ffia()};
  SmartOrder n{nfiw()};
  EXPECT_EQ(f.name(), "SMART-FFIA");
  EXPECT_EQ(n.name(), "SMART-NFIW");
}

}  // namespace
}  // namespace jsched::core
