#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/factory.h"
#include "test_support.h"

namespace jsched::sim {
namespace {

using test::make_job;

core::AlgorithmSpec fcfs() { return {}; }  // default spec is FCFS list

TEST(Simulator, SingleJobRunsImmediately) {
  // finalize() shifts the origin so the first submission lands at 0; the
  // second job's relative offset is preserved and it also starts on
  // arrival (the machine has room).
  const auto w = test::make_workload({make_job(10, 4, 100),
                                      make_job(20, 2, 30)});
  const Schedule s = test::run(fcfs(), w, 8);
  EXPECT_EQ(s[0].submit, 0);
  EXPECT_EQ(s[0].start, 0);
  EXPECT_EQ(s[0].end, 100);
  EXPECT_EQ(s[1].start, 10);
  EXPECT_EQ(s[1].end, 40);
  EXPECT_FALSE(s[0].cancelled);
}

TEST(Simulator, RejectsJobWiderThanMachine) {
  const auto w = test::make_workload({make_job(0, 9, 10)});
  EXPECT_THROW(test::run(fcfs(), w, 8), std::invalid_argument);
}

TEST(Simulator, RejectsInvalidMachine) {
  // simulate() calls Machine::validate() before touching the scheduler.
  const auto w = test::make_workload({make_job(0, 1, 10)});
  EXPECT_THROW(test::run(fcfs(), w, 0), std::invalid_argument);
  EXPECT_THROW(test::run(fcfs(), w, -4), std::invalid_argument);
}

TEST(Simulator, QueuesWhenMachineBusy) {
  const auto w = test::make_workload({
      make_job(0, 8, 100),
      make_job(1, 8, 50),
  });
  const Schedule s = test::run(fcfs(), w, 8);
  EXPECT_EQ(s[0].start, 0);
  EXPECT_EQ(s[1].start, 100);
  EXPECT_EQ(s[1].end, 150);
}

TEST(Simulator, ParallelJobsShareMachine) {
  const auto w = test::make_workload({
      make_job(0, 3, 100),
      make_job(0, 5, 100),
  });
  const Schedule s = test::run(fcfs(), w, 8);
  EXPECT_EQ(s[0].start, 0);
  EXPECT_EQ(s[1].start, 0);
}

TEST(Simulator, CancelsJobAtItsLimit) {
  const auto w = test::make_workload({make_job(0, 1, 100, 60)});
  const Schedule s = test::run(fcfs(), w, 8);
  EXPECT_TRUE(s[0].cancelled);
  EXPECT_EQ(s[0].end, 60);
}

TEST(Simulator, SchedulerSeesScrubbedRuntime) {
  // Submission has no runtime member at all — the on-line boundary is
  // enforced by the type. A scheduler materializing a Job from it gets
  // runtime scrubbed to 0, and the visible fields are intact.
  class Probe final : public Scheduler {
   public:
    std::string name() const override { return "probe"; }
    void reset(const Machine&) override {}
    void on_submit(const Submission& job, Time) override {
      saw_runtime = job.to_job().runtime;
      saw_estimate = job.estimate;
      pending.push_back(job.id);
    }
    void on_complete(JobId, Time) override {}
    void select_starts(Time, int, std::vector<JobId>& starts) override {
      starts = pending;
      pending.clear();
    }
    std::size_t queue_length() const override { return pending.size(); }
    Duration saw_runtime = -1;
    Duration saw_estimate = -1;
    std::vector<JobId> pending;
  };

  const auto w = test::make_workload({make_job(0, 1, 77, 100)});
  Machine m;
  m.nodes = 4;
  Probe probe;
  const Schedule s = simulate(m, probe, w);
  EXPECT_EQ(probe.saw_runtime, 0);
  EXPECT_EQ(probe.saw_estimate, 100);
  EXPECT_EQ(s[0].end - s[0].start, 77);  // ground truth still applies
}

TEST(Simulator, ThrowsWhenSchedulerOversubscribes) {
  class Bad final : public Scheduler {
   public:
    std::string name() const override { return "bad"; }
    void reset(const Machine&) override {}
    void on_submit(const Submission& job, Time) override {
      pending.push_back(job.id);
    }
    void on_complete(JobId, Time) override {}
    void select_starts(Time, int, std::vector<JobId>& starts) override {
      starts = pending;  // starts everything regardless of capacity
      pending.clear();
    }
    std::size_t queue_length() const override { return pending.size(); }
    std::vector<JobId> pending;
  };

  const auto w = test::make_workload({make_job(0, 5, 10), make_job(0, 5, 10)});
  Machine m;
  m.nodes = 8;
  Bad bad;
  EXPECT_THROW(simulate(m, bad, w), std::logic_error);
}

TEST(Simulator, ThrowsWhenSchedulerStarvesJobs) {
  class Lazy final : public Scheduler {
   public:
    std::string name() const override { return "lazy"; }
    void reset(const Machine&) override {}
    void on_submit(const Submission&, Time) override { ++queued; }
    void on_complete(JobId, Time) override {}
    void select_starts(Time, int, std::vector<JobId>& starts) override {
      starts.clear();
    }
    std::size_t queue_length() const override { return queued; }
    std::size_t queued = 0;
  };

  const auto w = test::make_workload({make_job(0, 1, 10)});
  Machine m;
  m.nodes = 8;
  Lazy lazy;
  EXPECT_THROW(simulate(m, lazy, w), std::logic_error);
}

TEST(Simulator, ThrowsWhenSchedulerStartsTwice) {
  class Doubler final : public Scheduler {
   public:
    std::string name() const override { return "doubler"; }
    void reset(const Machine&) override {}
    void on_submit(const Submission& job, Time) override { id = job.id; }
    void on_complete(JobId, Time) override {}
    void select_starts(Time, int, std::vector<JobId>& starts) override {
      starts.clear();
      if (fired > 1) return;
      ++fired;
      starts.push_back(id);
    }
    std::size_t queue_length() const override { return 0; }
    JobId id = 0;
    int fired = 0;
  };

  const auto w = test::make_workload({make_job(0, 1, 10)});
  Machine m;
  m.nodes = 8;
  Doubler d;
  EXPECT_THROW(simulate(m, d, w), std::logic_error);
}

TEST(Simulator, MeasuresSchedulerCpuWhenAsked) {
  const auto w = test::small_mixed_workload();
  Machine m;
  m.nodes = 16;
  auto sched = core::make_scheduler(fcfs());
  SimOptions opt;
  opt.measure_scheduler_cpu = true;
  const Schedule s = simulate(m, *sched, w, opt);
  EXPECT_GE(s.scheduler_cpu_seconds, 0.0);
  EXPECT_LT(s.scheduler_cpu_seconds, 5.0);
}

TEST(Simulator, TracksMaxQueueLength) {
  const auto w = test::make_workload({
      make_job(0, 8, 1000),
      make_job(1, 8, 10),
      make_job(2, 8, 10),
      make_job(3, 8, 10),
  });
  const Schedule s = test::run(fcfs(), w, 8);
  EXPECT_EQ(s.max_queue_length, 3u);
}

TEST(Simulator, SimultaneousArrivalsKeepSubmissionOrder) {
  const auto w = test::make_workload({
      make_job(0, 8, 100),  // id 0
      make_job(0, 8, 100),  // id 1
  });
  const Schedule s = test::run(fcfs(), w, 8);
  EXPECT_LT(s[0].start, s[1].start);
}

TEST(Simulator, EmptyWorkloadYieldsEmptySchedule) {
  workload::Workload w;
  w.finalize();
  Machine m;
  m.nodes = 8;
  auto sched = core::make_scheduler(fcfs());
  const Schedule s = simulate(m, *sched, w);
  EXPECT_EQ(s.size(), 0u);
  EXPECT_EQ(s.makespan(), 0);
}

}  // namespace
}  // namespace jsched::sim
