#include "policy/policy.h"

#include <gtest/gtest.h>

namespace jsched::policy {
namespace {

TEST(Policy, InstitutionBPolicyIsConflictFree) {
  const Policy p = institution_b_policy();
  EXPECT_TRUE(p.conflicts().empty());
  EXPECT_EQ(p.user_job_limit(), std::optional<int>(2));
}

TEST(Policy, InstitutionBObjectiveSchedule) {
  const Policy p = institution_b_policy();
  // Day 0 is a Monday. 9am Monday -> unweighted (Rule 5).
  auto day = p.objective_at(9 * kHour);
  ASSERT_TRUE(day.has_value());
  EXPECT_EQ(day->name, "average response time");
  // 11pm Monday -> weighted (Rule 6).
  auto night = p.objective_at(23 * kHour);
  ASSERT_TRUE(night.has_value());
  EXPECT_EQ(night->name, "average weighted response time");
  // 3am Tuesday (wrapping window) -> weighted.
  auto early = p.objective_at(kDay + 3 * kHour);
  ASSERT_TRUE(early.has_value());
  EXPECT_EQ(early->name, "average weighted response time");
  // Saturday noon (day 5): Rule 6b (weekends, full day) -> weighted.
  auto sat = p.objective_at(5 * kDay + 12 * kHour);
  ASSERT_TRUE(sat.has_value());
  EXPECT_EQ(sat->name, "average weighted response time");
  // Saturday 9am must NOT fall under the weekday response-time rule.
  auto sat_morning = p.objective_at(5 * kDay + 9 * kHour);
  ASSERT_TRUE(sat_morning.has_value());
  EXPECT_EQ(sat_morning->name, "average weighted response time");
}

TEST(Policy, ConflictingGoalWindowsDetected) {
  Policy p("bad");
  p.add(TimeWindowGoalRule{8 * kHour, 18 * kHour, false, false,
                           metrics::unweighted_objective(), "day"});
  p.add(TimeWindowGoalRule{16 * kHour, 22 * kHour, false, false,
                           metrics::weighted_objective(), "evening"});
  const auto c = p.conflicts();
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c[0].rule_a, 0u);
  EXPECT_EQ(c[0].rule_b, 1u);
}

TEST(Policy, NonOverlappingWindowsNoConflict) {
  Policy p("ok");
  p.add(TimeWindowGoalRule{8 * kHour, 18 * kHour, false, false,
                           metrics::unweighted_objective(), "day"});
  p.add(TimeWindowGoalRule{18 * kHour, 8 * kHour, false, false,
                           metrics::weighted_objective(), "night"});
  EXPECT_TRUE(p.conflicts().empty());
}

TEST(Policy, DuplicatePriorityRankConflict) {
  Policy p("dup");
  p.add(PriorityRule{1, 5, "lab A"});
  p.add(PriorityRule{2, 5, "lab B"});
  ASSERT_EQ(p.conflicts().size(), 1u);
}

TEST(Policy, ContradictoryRanksForOneClassConflict) {
  Policy p("contra");
  p.add(PriorityRule{1, 5, "first"});
  p.add(PriorityRule{1, 7, "second"});
  ASSERT_EQ(p.conflicts().size(), 1u);
}

TEST(Policy, QuotaShareValidation) {
  Policy p("quota");
  p.add(QuotaRule{1, 1.5, "too much"});
  EXPECT_FALSE(p.conflicts().empty());

  Policy p2("quota2");
  p2.add(QuotaRule{1, 0.6, "a"});
  p2.add(QuotaRule{2, 0.6, "b"});
  EXPECT_FALSE(p2.conflicts().empty());  // shares sum above 1
}

TEST(Policy, UserLimitValidation) {
  Policy p("limit");
  p.add(UserJobLimitRule{0, "blocks everyone"});
  EXPECT_FALSE(p.conflicts().empty());
}

TEST(Policy, StrictestUserLimitWins) {
  Policy p("limits");
  p.add(UserJobLimitRule{4, "general"});
  p.add(UserJobLimitRule{2, "stricter"});
  EXPECT_EQ(p.user_job_limit(), std::optional<int>(2));
}

TEST(Policy, RankOfClass) {
  const Policy p = example1_policy();
  EXPECT_EQ(p.rank_of(2), 2);  // drug design lab
  EXPECT_EQ(p.rank_of(1), 1);
  EXPECT_EQ(p.rank_of(0), 0);
  EXPECT_EQ(p.rank_of(99), 0);  // unmentioned class
}

TEST(Policy, Example1ContainsExpectedConflict) {
  // Rules 1 and 5 of Example 1 can conflict (drug-design jobs vs the lab
  // course); in our encoding there is no overlapping-objective window, so
  // the conflict the paper discusses manifests as a priority-vs-window
  // tension that the Pareto analysis resolves (see fig1 bench). Here we
  // simply check that the policy is structurally valid.
  EXPECT_TRUE(example1_policy().conflicts().empty());
}

TEST(Policy, NoWindowMeansNoObjective) {
  Policy p("empty");
  EXPECT_FALSE(p.objective_at(0).has_value());
}

}  // namespace
}  // namespace jsched::policy
