#include "test_support.h"

namespace jsched::test {

Job make_job(Time submit, int nodes, Duration runtime, Duration estimate) {
  Job j;
  j.submit = submit;
  j.nodes = nodes;
  j.runtime = runtime;
  j.estimate = estimate == 0 ? runtime : estimate;
  return j;
}

workload::Workload make_workload(std::vector<Job> jobs) {
  return workload::Workload(std::move(jobs), "test");
}

sim::Schedule run(const core::AlgorithmSpec& spec, const workload::Workload& w,
                  int nodes) {
  sim::Machine m;
  m.nodes = nodes;
  auto scheduler = core::make_scheduler(spec);
  return sim::simulate(m, *scheduler, w);
}

std::uint64_t run_fingerprint(const core::AlgorithmSpec& spec,
                              const workload::Workload& w, int nodes) {
  return sim::schedule_fingerprint(run(spec, w, nodes));
}

workload::Workload small_mixed_workload() {
  // Designed around a 16-node machine: a wide job blocks the queue while
  // narrow jobs could backfill; estimates over-state runtimes to exercise
  // early completions.
  return make_workload({
      make_job(0, 8, 100, 120),     // 0: starts immediately
      make_job(0, 8, 50, 200),      // 1: starts immediately
      make_job(10, 16, 80, 100),    // 2: full-machine job, must wait
      make_job(20, 2, 30, 40),      // 3: backfill candidate
      make_job(25, 2, 500, 600),    // 4: long narrow job
      make_job(30, 12, 60, 90),     // 5
      make_job(40, 1, 10, 3600),    // 6: tiny job, wild over-estimate
      make_job(200, 4, 100, 150),   // 7
      make_job(210, 16, 40, 50),    // 8: another full-machine job
      make_job(220, 1, 20, 30),     // 9
  });
}

}  // namespace jsched::test
