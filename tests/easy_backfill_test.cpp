#include "core/easy_backfill.h"

#include <gtest/gtest.h>

#include "core/factory.h"
#include "test_support.h"

namespace jsched::core {
namespace {

using test::make_job;

AlgorithmSpec easy() {
  AlgorithmSpec s;
  s.dispatch = DispatchKind::kEasy;
  return s;
}

TEST(EasyBackfill, BackfillsShortJobBehindBlockedHead) {
  const auto w = test::make_workload({
      make_job(0, 6, 100, 100),  // 0: runs, 2 nodes free
      make_job(1, 4, 50, 50),    // 1: head, blocked until t=100
      make_job(2, 2, 10, 10),    // 2: fits now and ends before the shadow
  });
  const auto s = test::run(easy(), w, 8);
  EXPECT_EQ(s[2].start, 2);     // backfilled on arrival
  EXPECT_EQ(s[1].start, 100);   // head start unharmed
}

TEST(EasyBackfill, RefusesBackfillThatWouldDelayHead) {
  const auto w = test::make_workload({
      make_job(0, 6, 100, 100),  // 0: 2 nodes free until t=100
      make_job(1, 4, 50, 50),    // 1: head, shadow = 100, extra = 8-...
      make_job(2, 2, 200, 200),  // 2: fits now but would run past shadow
  });
  // At shadow t=100 all 8 nodes are free; head needs 4, extra = 4... but
  // job 2 only needs 2 <= extra, so it MAY backfill under EASY. Construct
  // a tighter variant where extra is exhausted:
  const auto w2 = test::make_workload({
      make_job(0, 6, 100, 100),   // 0
      make_job(1, 7, 50, 50),     // 1: head needs 7 at t=100, extra = 1
      make_job(2, 2, 200, 200),   // 2: 2 > extra and runs past shadow -> no
  });
  const auto s1 = test::run(easy(), w, 8);
  EXPECT_EQ(s1[2].start, 2);      // allowed via extra nodes
  EXPECT_EQ(s1[1].start, 100);

  const auto s2 = test::run(easy(), w2, 8);
  EXPECT_EQ(s2[1].start, 100);    // head unharmed
  EXPECT_GE(s2[2].start, 100);    // backfill rejected
}

TEST(EasyBackfill, BackfillOnExtraNodesMayRunPastShadow) {
  const auto w = test::make_workload({
      make_job(0, 4, 100, 100),  // 0: 4 free
      make_job(10, 8, 50, 50),   // 1: head needs the whole machine at 100
      make_job(20, 2, 500, 500), // 2: would hold 2 nodes past the shadow
  });
  // extra = avail(8) - head(8) = 0, so job 2 must not backfill.
  const auto s = test::run(easy(), w, 8);
  EXPECT_EQ(s[1].start, 100);
  EXPECT_EQ(s[2].start, 150);  // after the head completes
}

TEST(EasyBackfill, HeadMayBeDelayedByEarlyCompletions) {
  // The §5.2 caveat: projections use estimates. Job 0 finishes far before
  // its estimate; a backfill decision made beforehand now delays the head
  // relative to a clairvoyant schedule — EASY permits this.
  const auto w = test::make_workload({
      make_job(0, 6, 10, 7200),   // 0: estimate 2h, actually 10 s
      make_job(1, 4, 50, 50),     // 1: head; shadow computed at ~7200
      make_job(2, 2, 3600, 3600), // 2: backfills against the 2h shadow
  });
  const auto s = test::run(easy(), w, 8);
  EXPECT_EQ(s[2].start, 2);
  // Job 0 ends at 10; head needs 4 nodes but job 2 holds 2 of 8 until
  // 3602, leaving 6 — enough. Head starts at 10.
  EXPECT_EQ(s[1].start, 10);

  // Tighter: make the backfilled job hold nodes the head needs.
  const auto w2 = test::make_workload({
      make_job(0, 6, 10, 7200),
      make_job(1, 7, 50, 50),
      make_job(2, 2, 3600, 3600),
  });
  const auto s2 = test::run(easy(), w2, 8);
  EXPECT_EQ(s2[2].start, 2);
  EXPECT_EQ(s2[1].start, 3602);  // delayed by the backfill — the known
                                 // EASY anomaly under bad estimates
}

TEST(EasyBackfill, MultipleBackfillsRespectRemainingFreeNodes) {
  const auto w = test::make_workload({
      make_job(0, 5, 100, 100),  // 3 free
      make_job(1, 6, 50, 50),    // head blocked (needs 6)
      make_job(2, 2, 10, 10),    // backfill
      make_job(3, 2, 10, 10),    // must wait: only 1 node left
      make_job(4, 1, 10, 10),    // backfill into the last node
  });
  const auto s = test::run(easy(), w, 8);
  EXPECT_EQ(s[2].start, 2);
  EXPECT_EQ(s[4].start, 4);
  EXPECT_GT(s[3].start, 4);
}

TEST(EasyBackfill, EquivalentToListWhenNoBlocking) {
  const auto w = test::make_workload({
      make_job(0, 2, 50),
      make_job(10, 2, 50),
      make_job(20, 2, 50),
  });
  const auto list = test::run(AlgorithmSpec{}, w, 8);
  const auto bf = test::run(easy(), w, 8);
  for (JobId i = 0; i < w.size(); ++i) EXPECT_EQ(list[i].start, bf[i].start);
}

TEST(EasyBackfill, ImprovesArtOnMixedWorkload) {
  const auto w = test::small_mixed_workload();
  const auto list = test::run(AlgorithmSpec{}, w, 16);
  const auto bf = test::run(easy(), w, 16);
  double art_list = 0, art_bf = 0;
  for (JobId i = 0; i < w.size(); ++i) {
    art_list += static_cast<double>(list[i].response());
    art_bf += static_cast<double>(bf[i].response());
  }
  EXPECT_LE(art_bf, art_list);
}

}  // namespace
}  // namespace jsched::core
