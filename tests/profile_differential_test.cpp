// Differential fuzzing of sim::Profile (flat timeline + segment tree)
// against sim::ReferenceProfile (the seed std::map implementation).
//
// Both structures are driven with identical operation sequences shaped
// like real scheduler traffic — earliest_fit+allocate reservations, early
// completions returning capacity tails, periodic compaction as simulated
// time advances — and must stay byte-identical after every mutation: same
// breakpoints (dump()), same breakpoint count, same answers to every
// query. Any divergence prints the op index and both renderings.
#include "sim/profile.h"
#include "sim/reference_profile.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/rng.h"

namespace jsched::sim {
namespace {

struct ActiveAllocation {
  Time start;
  Duration duration;  // kTimeInfinity marks an open-ended allocation
  int nodes;

  Time end() const {
    return start > kTimeInfinity - duration ? kTimeInfinity
                                            : start + duration;
  }
};

class Differ {
 public:
  explicit Differ(int total) : fast_(total), ref_(total) {}

  Profile& fast() { return fast_; }
  ReferenceProfile& ref() { return ref_; }

  void expect_identical(std::size_t op) const {
    ASSERT_EQ(fast_.breakpoints(), ref_.breakpoints()) << "op " << op;
    ASSERT_EQ(fast_.dump(), ref_.dump()) << "op " << op;
  }

  void expect_queries_agree(std::size_t op, Time from, Duration dur,
                            int nodes) const {
    ASSERT_EQ(fast_.capacity_at(from), ref_.capacity_at(from)) << "op " << op;
    ASSERT_EQ(fast_.fits(from, dur, nodes), ref_.fits(from, dur, nodes))
        << "op " << op;
    ASSERT_EQ(fast_.earliest_fit(from, dur, nodes),
              ref_.earliest_fit(from, dur, nodes))
        << "op " << op << " from=" << from << " dur=" << dur
        << " nodes=" << nodes;
  }

 private:
  Profile fast_;
  ReferenceProfile ref_;
};

void run_fuzz(std::uint64_t seed, std::size_t ops) {
  constexpr int kTotal = 64;
  Differ d(kTotal);
  util::Rng rng(seed);
  std::vector<ActiveAllocation> active;
  Time now = 0;
  // Nodes held by open-ended (infinite-duration) allocations. earliest_fit
  // only terminates for jobs narrower than the eventually-free capacity,
  // so the fuzzer keeps its requests within kTotal - open_nodes (the
  // explicit saturation/throw cases live in profile_test.cpp).
  int open_nodes = 0;

  for (std::size_t op = 0; op < ops; ++op) {
    const std::int64_t dice = rng.uniform_int(0, 99);
    if (dice < 45) {
      // Reserve like a backfilling scheduler: earliest fit, then allocate.
      const int nodes =
          static_cast<int>(rng.uniform_int(0, kTotal - open_nodes));
      const bool open_ended = rng.bernoulli(0.02) && nodes <= kTotal / 4;
      const Duration dur =
          open_ended ? kTimeInfinity : rng.uniform_int(1, 4000);
      const Time from = now + rng.uniform_int(0, 2000);
      const Time start = d.fast().earliest_fit(from, dur, nodes);
      ASSERT_EQ(start, d.ref().earliest_fit(from, dur, nodes)) << "op " << op;
      d.fast().allocate(start, dur, nodes);
      d.ref().allocate(start, dur, nodes);
      if (nodes > 0) {
        active.push_back({start, dur, nodes});
        if (open_ended) open_nodes += nodes;
      }
    } else if (dice < 70 && !active.empty()) {
      // Complete an allocation early: return the tail [t, end) to the
      // profile, exactly as a job beating its estimate would.
      const std::size_t pick = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(active.size()) - 1));
      const ActiveAllocation a = active[pick];
      active.erase(active.begin() + static_cast<std::ptrdiff_t>(pick));
      const Time release_from = std::max(a.start, now);
      if (a.end() > release_from) {
        const Duration tail = a.end() == kTimeInfinity
                                  ? kTimeInfinity
                                  : a.end() - release_from;
        d.fast().release(release_from, tail, a.nodes);
        d.ref().release(release_from, tail, a.nodes);
        if (a.end() == kTimeInfinity) open_nodes -= a.nodes;
      }
    } else if (dice < 80) {
      // Advance simulated time and drop history. Allocations wholly in
      // the past are retired from the bookkeeping (their capacity is
      // inside the compacted region for both structures alike).
      now += rng.uniform_int(0, 1500);
      d.fast().compact(now);
      d.ref().compact(now);
      std::erase_if(active, [&](const ActiveAllocation& a) {
        return a.end() <= now;
      });
    } else {
      // Pure queries.
      const Time from = now + rng.uniform_int(0, 8000);
      const Duration dur = rng.uniform_int(1, 5000);
      const int nodes =
          static_cast<int>(rng.uniform_int(0, kTotal - open_nodes));
      d.expect_queries_agree(op, from, dur, nodes);
    }
    d.expect_identical(op);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// Grid-aligned windows: after warm-up most range edges already exist as
// breakpoints, so allocate/release mostly hit the in-place segment-tree
// repair path, with merges (structural) whenever a value meets its
// neighbour — the steady-state mix a replanning scheduler produces. A
// slice of unaligned ops keeps the insert path in the mix, and periodic
// compaction exercises the dead-prefix offset against both repair paths.
void run_in_place_fuzz(std::uint64_t seed, std::size_t ops) {
  constexpr int kTotal = 64;
  constexpr Time kStep = 100;
  Differ d(kTotal);
  util::Rng rng(seed);
  std::vector<ActiveAllocation> active;
  Time now = 0;

  for (std::size_t op = 0; op < ops; ++op) {
    const std::int64_t dice = rng.uniform_int(0, 99);
    if (dice < 50) {
      const bool aligned = dice >= 5;  // 10% unaligned: structural inserts
      const Time start =
          now + (aligned ? rng.uniform_int(0, 40) * kStep
                         : rng.uniform_int(0, 40 * kStep));
      const Duration dur = aligned ? rng.uniform_int(1, 10) * kStep
                                   : rng.uniform_int(1, 10 * kStep);
      const int nodes = static_cast<int>(rng.uniform_int(1, 8));
      const bool fits = d.fast().fits(start, dur, nodes);
      ASSERT_EQ(fits, d.ref().fits(start, dur, nodes)) << "op " << op;
      if (fits) {
        d.fast().allocate(start, dur, nodes);
        d.ref().allocate(start, dur, nodes);
        active.push_back({start, dur, nodes});
      }
    } else if (dice < 85 && !active.empty()) {
      // Release a whole window (value-only update when its edges survive
      // in neighbouring allocations).
      const std::size_t pick = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(active.size()) - 1));
      const ActiveAllocation a = active[pick];
      active.erase(active.begin() + static_cast<std::ptrdiff_t>(pick));
      const Time release_from = std::max(a.start, now);
      if (a.end() > release_from) {
        d.fast().release(release_from, a.end() - release_from, a.nodes);
        d.ref().release(release_from, a.end() - release_from, a.nodes);
      }
    } else if (dice < 90) {
      // Advance time by whole steps so the grid alignment survives
      // compaction.
      now += rng.uniform_int(0, 5) * kStep;
      d.fast().compact(now);
      d.ref().compact(now);
      std::erase_if(active,
                    [&](const ActiveAllocation& a) { return a.end() <= now; });
    } else {
      const Time from = now + rng.uniform_int(0, 50 * kStep);
      const Duration dur = rng.uniform_int(1, 12 * kStep);
      const int nodes = static_cast<int>(rng.uniform_int(0, kTotal));
      d.expect_queries_agree(op, from, dur, nodes);
    }
    d.expect_identical(op);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// Batch-mutation mode: lift a burst of allocations inside a
// Profile::BulkUpdate scope (only the fast profile has one — the
// reference sees plain calls), then re-place them through earliest_fit,
// mirroring ConservativeBackfillDispatch::replan. Queries fired inside
// and right after the scope must see exactly the reference's answers.
void run_bulk_fuzz(std::uint64_t seed, std::size_t ops) {
  constexpr int kTotal = 64;
  Differ d(kTotal);
  util::Rng rng(seed);
  std::vector<ActiveAllocation> active;
  Time now = 0;

  for (std::size_t op = 0; op < ops;) {
    // Seed fresh reservations so there is something to lift.
    const std::size_t arrivals = static_cast<std::size_t>(
        rng.uniform_int(1, 4));
    for (std::size_t k = 0; k < arrivals && op < ops; ++k, ++op) {
      const int nodes = static_cast<int>(rng.uniform_int(1, kTotal / 2));
      const Duration dur = rng.uniform_int(1, 4000);
      const Time from = now + rng.uniform_int(0, 2000);
      const Time start = d.fast().earliest_fit(from, dur, nodes);
      ASSERT_EQ(start, d.ref().earliest_fit(from, dur, nodes)) << "op " << op;
      d.fast().allocate(start, dur, nodes);
      d.ref().allocate(start, dur, nodes);
      active.push_back({start, dur, nodes});
      d.expect_identical(op);
    }

    // Replan-shaped burst: release several windows under one BulkUpdate.
    const std::size_t burst = std::min<std::size_t>(
        active.size(), static_cast<std::size_t>(rng.uniform_int(0, 6)));
    std::vector<ActiveAllocation> lifted;
    {
      Profile::BulkUpdate bulk(d.fast());
      for (std::size_t k = 0; k < burst && op < ops; ++k, ++op) {
        const std::size_t pick = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(active.size()) - 1));
        const ActiveAllocation a = active[pick];
        active.erase(active.begin() + static_cast<std::ptrdiff_t>(pick));
        const Time release_from = std::max(a.start, now);
        if (a.end() <= release_from) continue;
        const Duration tail = a.end() - release_from;
        d.fast().release(release_from, tail, a.nodes);
        d.ref().release(release_from, tail, a.nodes);
        lifted.push_back({release_from, tail, a.nodes});
        if (rng.bernoulli(0.25)) {
          // Queries are legal inside the scope and repair on demand.
          d.expect_queries_agree(op, now + rng.uniform_int(0, 4000),
                                 rng.uniform_int(1, 3000),
                                 static_cast<int>(rng.uniform_int(0, kTotal)));
        }
      }
      d.expect_identical(op);
      if (::testing::Test::HasFatalFailure()) return;
    }

    // Re-place the lifted windows from `now` (phase 2: queries after the
    // scope closed).
    for (const ActiveAllocation& a : lifted) {
      if (op >= ops) break;
      const Time start = d.fast().earliest_fit(now, a.duration, a.nodes);
      ASSERT_EQ(start, d.ref().earliest_fit(now, a.duration, a.nodes))
          << "op " << op;
      d.fast().allocate(start, a.duration, a.nodes);
      d.ref().allocate(start, a.duration, a.nodes);
      active.push_back({start, a.duration, a.nodes});
      d.expect_identical(op);
      ++op;
    }
    if (::testing::Test::HasFatalFailure()) return;

    if (rng.bernoulli(0.2)) {
      now += rng.uniform_int(0, 1500);
      d.fast().compact(now);
      d.ref().compact(now);
      std::erase_if(active,
                    [&](const ActiveAllocation& a) { return a.end() <= now; });
      d.expect_identical(op);
    }
  }
}

// Capacity shrink/grow mode: machine capacity changes mid-run, modelled
// exactly the way ConservativeBackfillDispatch::on_capacity_change does —
// an outage is one open-ended allocation placed at `now` when nodes go
// down and released (from `now`, past prefix kept as history) when they
// come back, with every live reservation lifted under a BulkUpdate and
// re-placed through earliest_fit at the new capacity. The reference
// profile sees the same plain calls and must agree after every step.
void run_capacity_fuzz(std::uint64_t seed, std::size_t ops) {
  constexpr int kTotal = 64;
  Differ d(kTotal);
  util::Rng rng(seed);
  std::vector<ActiveAllocation> active;
  Time now = 0;
  int down = 0;  // nodes currently out, held by the open-ended allocation

  for (std::size_t op = 0; op < ops; ++op) {
    const std::int64_t dice = rng.uniform_int(0, 99);
    if (dice < 40) {
      // Reserve within the surviving capacity (wider jobs would make
      // earliest_fit spin forever against the open-ended outage).
      const int nodes = static_cast<int>(rng.uniform_int(0, kTotal - down));
      const Duration dur = rng.uniform_int(1, 4000);
      const Time from = now + rng.uniform_int(0, 2000);
      const Time start = d.fast().earliest_fit(from, dur, nodes);
      ASSERT_EQ(start, d.ref().earliest_fit(from, dur, nodes)) << "op " << op;
      d.fast().allocate(start, dur, nodes);
      d.ref().allocate(start, dur, nodes);
      if (nodes > 0) active.push_back({start, dur, nodes});
    } else if (dice < 60 && !active.empty()) {
      // Early completion: return the tail.
      const std::size_t pick = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(active.size()) - 1));
      const ActiveAllocation a = active[pick];
      active.erase(active.begin() + static_cast<std::ptrdiff_t>(pick));
      const Time release_from = std::max(a.start, now);
      if (a.end() > release_from) {
        d.fast().release(release_from, a.end() - release_from, a.nodes);
        d.ref().release(release_from, a.end() - release_from, a.nodes);
      }
    } else if (dice < 80) {
      // Capacity step. Lift everything still live, adjust the outage
      // allocation, re-place what still fits (a window wider than the new
      // capacity is parked — dropped here; the scheduler keeps it queued).
      const int new_down = static_cast<int>(rng.uniform_int(0, kTotal / 2));
      if (new_down == down) continue;
      std::vector<ActiveAllocation> lifted;
      {
        Profile::BulkUpdate bulk(d.fast());
        for (const ActiveAllocation& a : active) {
          const Time release_from = std::max(a.start, now);
          if (a.end() <= release_from) continue;
          const Duration tail = a.end() - release_from;
          d.fast().release(release_from, tail, a.nodes);
          d.ref().release(release_from, tail, a.nodes);
          lifted.push_back({release_from, tail, a.nodes});
        }
        if (new_down > down) {
          d.fast().allocate(now, kTimeInfinity, new_down - down);
          d.ref().allocate(now, kTimeInfinity, new_down - down);
        } else {
          d.fast().release(now, kTimeInfinity, down - new_down);
          d.ref().release(now, kTimeInfinity, down - new_down);
        }
        down = new_down;
      }
      d.expect_identical(op);
      if (::testing::Test::HasFatalFailure()) return;
      active.clear();
      for (const ActiveAllocation& a : lifted) {
        if (a.nodes > kTotal - down) continue;  // parked at this capacity
        const Time start = d.fast().earliest_fit(now, a.duration, a.nodes);
        ASSERT_EQ(start, d.ref().earliest_fit(now, a.duration, a.nodes))
            << "op " << op;
        d.fast().allocate(start, a.duration, a.nodes);
        d.ref().allocate(start, a.duration, a.nodes);
        active.push_back({start, a.duration, a.nodes});
      }
    } else if (dice < 88) {
      now += rng.uniform_int(0, 1500);
      d.fast().compact(now);
      d.ref().compact(now);
      std::erase_if(active,
                    [&](const ActiveAllocation& a) { return a.end() <= now; });
    } else {
      const Time from = now + rng.uniform_int(0, 8000);
      const Duration dur = rng.uniform_int(1, 5000);
      const int nodes = static_cast<int>(rng.uniform_int(0, kTotal - down));
      d.expect_queries_agree(op, from, dur, nodes);
    }
    d.expect_identical(op);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(ProfileDifferential, SchedulerShapedOpsSeed1) { run_fuzz(1, 10'000); }
TEST(ProfileDifferential, SchedulerShapedOpsSeed2) { run_fuzz(2, 10'000); }
TEST(ProfileDifferential, SchedulerShapedOpsSeed3) { run_fuzz(3, 10'000); }
TEST(ProfileDifferential, SchedulerShapedOpsSeed1999) { run_fuzz(1999, 10'000); }

TEST(ProfileDifferential, InPlaceMutationMixSeed7) {
  run_in_place_fuzz(7, 10'000);
}
TEST(ProfileDifferential, InPlaceMutationMixSeed8) {
  run_in_place_fuzz(8, 10'000);
}

TEST(ProfileDifferential, BulkUpdateBatchModeSeed11) { run_bulk_fuzz(11, 10'000); }
TEST(ProfileDifferential, BulkUpdateBatchModeSeed12) { run_bulk_fuzz(12, 10'000); }

TEST(ProfileDifferential, CapacityShrinkGrowSeed21) {
  run_capacity_fuzz(21, 10'000);
}
TEST(ProfileDifferential, CapacityShrinkGrowSeed22) {
  run_capacity_fuzz(22, 10'000);
}

TEST(ProfileDifferential, DenseSmallMachineStressesMerging) {
  // A 3-node machine forces constant breakpoint merging/splitting at tiny
  // capacities, where off-by-one merge bugs would show first.
  Differ d(3);
  util::Rng rng(42);
  std::vector<ActiveAllocation> active;
  for (std::size_t op = 0; op < 10'000; ++op) {
    const int nodes = static_cast<int>(rng.uniform_int(0, 3));
    const Duration dur = rng.uniform_int(1, 30);
    const Time from = rng.uniform_int(0, 200);
    if (rng.bernoulli(0.5) || active.empty()) {
      const Time start = d.fast().earliest_fit(from, dur, nodes);
      ASSERT_EQ(start, d.ref().earliest_fit(from, dur, nodes)) << "op " << op;
      d.fast().allocate(start, dur, nodes);
      d.ref().allocate(start, dur, nodes);
      if (nodes > 0) active.push_back({start, dur, nodes});
    } else {
      const std::size_t pick = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(active.size()) - 1));
      const ActiveAllocation a = active[pick];
      active.erase(active.begin() + static_cast<std::ptrdiff_t>(pick));
      d.fast().release(a.start, a.duration, a.nodes);
      d.ref().release(a.start, a.duration, a.nodes);
    }
    d.expect_identical(op);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

}  // namespace
}  // namespace jsched::sim
