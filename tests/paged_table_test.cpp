// PagedTable: the page-reclaiming dense table behind JobStore — the
// structure that keeps scheduler-side memory O(live jobs) in streaming
// runs.
#include <gtest/gtest.h>

#include "core/job_store.h"
#include "util/paged_table.h"

namespace jsched {
namespace {

TEST(PagedTableTest, PutGetEraseRoundTrip) {
  util::PagedTable<int> t;
  t.put(0, 10);
  t.put(5000, 20);  // second page
  EXPECT_TRUE(t.contains(0));
  EXPECT_TRUE(t.contains(5000));
  EXPECT_FALSE(t.contains(1));
  EXPECT_EQ(t.get(0), 10);
  EXPECT_EQ(t.get(5000), 20);
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.high_water(), 5001u);

  t.erase(0);
  EXPECT_FALSE(t.contains(0));
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.high_water(), 5001u);  // monotone
  t.erase(0);                        // idempotent
  EXPECT_EQ(t.size(), 1u);
  t.erase(12345678);  // never stored: no-op, no allocation
  EXPECT_EQ(t.size(), 1u);
}

TEST(PagedTableTest, OverwriteDoesNotDoubleCount) {
  util::PagedTable<int> t;
  t.put(3, 1);
  t.put(3, 2);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.get(3), 2);
}

TEST(PagedTableTest, PagesAreFreedWhenDrained) {
  util::PagedTable<int> t;
  const std::size_t n = 3 * util::PagedTable<int>::kPageSize;
  for (std::size_t i = 0; i < n; ++i) t.put(i, static_cast<int>(i));
  EXPECT_EQ(t.pages_allocated(), 3u);
  // Erasure tracking insertion (the streaming access pattern): pages are
  // handed back as their last entry dies.
  for (std::size_t i = 0; i < util::PagedTable<int>::kPageSize; ++i) t.erase(i);
  EXPECT_EQ(t.pages_allocated(), 2u);
  for (std::size_t i = util::PagedTable<int>::kPageSize; i < n; ++i) t.erase(i);
  EXPECT_EQ(t.pages_allocated(), 0u);
  EXPECT_EQ(t.size(), 0u);

  // A freed page is re-allocated on demand (fault re-submission pattern).
  t.put(10, 7);
  EXPECT_EQ(t.pages_allocated(), 1u);
  EXPECT_EQ(t.get(10), 7);
}

TEST(PagedTableTest, ClearReleasesEverything) {
  util::PagedTable<int> t;
  for (std::size_t i = 0; i < 10000; i += 100) t.put(i, 1);
  t.clear();
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.high_water(), 0u);
  EXPECT_EQ(t.pages_allocated(), 0u);
}

TEST(JobStorePagingTest, EraseKeepsStoreBounded) {
  core::JobStore store;
  // Simulate a sliding window of live jobs: put id, erase id - window.
  constexpr std::size_t kWindow = 64;
  constexpr std::size_t kTotal = 5 * util::PagedTable<Job>::kPageSize;
  for (std::size_t i = 0; i < kTotal; ++i) {
    Job j;
    j.id = static_cast<JobId>(i);
    j.submit = static_cast<Time>(i);
    j.nodes = 1;
    j.runtime = 1;
    j.estimate = 1;
    store.put(j);
    if (i >= kWindow) store.erase(static_cast<JobId>(i - kWindow));
  }
  EXPECT_EQ(store.size(), kWindow);
  EXPECT_EQ(store.capacity(), kTotal);
  // A window of 64 spans at most 2 pages.
  EXPECT_LE(store.pages_allocated(), 2u);
  // The live window is still readable.
  EXPECT_EQ(store.get(static_cast<JobId>(kTotal - 1)).submit,
            static_cast<Time>(kTotal - 1));
}

}  // namespace
}  // namespace jsched
