#include "core/phased_scheduler.h"

#include <gtest/gtest.h>

#include "core/easy_backfill.h"
#include "core/smart.h"
#include "sim/simulator.h"
#include "test_support.h"
#include "workload/ctc_model.h"
#include "workload/transforms.h"

namespace jsched::core {
namespace {

using test::make_job;

PhaseWindow day_window() { return PhaseWindow{7 * kHour, 20 * kHour, true}; }

TEST(PhaseWindow, ContainsDaytimeWeekdays) {
  const PhaseWindow w = day_window();
  EXPECT_TRUE(w.contains(9 * kHour));                // Monday 9am
  EXPECT_FALSE(w.contains(6 * kHour));               // Monday 6am
  EXPECT_FALSE(w.contains(21 * kHour));              // Monday 9pm
  EXPECT_FALSE(w.contains(5 * kDay + 9 * kHour));    // Saturday 9am
  EXPECT_TRUE(w.contains(7 * kDay + 12 * kHour));    // next Monday noon
}

TEST(PhaseWindow, WrappingWindow) {
  const PhaseWindow w{20 * kHour, 7 * kHour, false};
  EXPECT_TRUE(w.contains(23 * kHour));
  EXPECT_TRUE(w.contains(kDay + 3 * kHour));
  EXPECT_FALSE(w.contains(12 * kHour));
}

TEST(PhaseWindow, NextBoundaryExact) {
  const PhaseWindow w = day_window();
  EXPECT_EQ(w.next_boundary(0), 7 * kHour);            // Monday 0:00 -> 7am
  EXPECT_EQ(w.next_boundary(9 * kHour), 20 * kHour);   // in window -> 8pm
  // Friday 8pm -> Monday 7am.
  EXPECT_EQ(w.next_boundary(4 * kDay + 20 * kHour), 7 * kDay + 7 * kHour);
}

TEST(PhaseWindow, DegenerateWindowHasNoBoundary) {
  const PhaseWindow all{0, kDay, false};
  EXPECT_EQ(all.next_boundary(123), kTimeInfinity);
}

std::unique_ptr<PhasedScheduler> make_phased() {
  SmartParams smart;
  return std::make_unique<PhasedScheduler>(
      day_window(), std::make_unique<SmartOrder>(smart),
      std::make_unique<EasyBackfillDispatch>(), std::make_unique<FcfsOrder>(),
      std::make_unique<FirstFitDispatch>());
}

TEST(PhasedScheduler, NameDescribesBothPhases) {
  const auto s = make_phased();
  EXPECT_EQ(s->name(), "day[SMART-FFIA+EASY]/night[FCFS+FF]");
}

TEST(PhasedScheduler, RejectsNullComponents) {
  EXPECT_THROW(PhasedScheduler(day_window(), nullptr,
                               std::make_unique<EasyBackfillDispatch>(),
                               std::make_unique<FcfsOrder>(),
                               std::make_unique<FirstFitDispatch>()),
               std::invalid_argument);
}

TEST(PhasedScheduler, ValidScheduleOnMixedWorkload) {
  auto s = make_phased();
  sim::Machine m;
  m.nodes = 16;
  const auto schedule = sim::simulate(m, *s, test::small_mixed_workload());
  EXPECT_EQ(schedule.size(), test::small_mixed_workload().size());
}

TEST(PhasedScheduler, FlipsAcrossTheWindowBoundary) {
  // Two long jobs spanning the 20:00 boundary plus arrivals on both sides.
  auto s = make_phased();
  sim::Machine m;
  m.nodes = 16;
  // Anchor at t=0 so finalize() keeps the intended clock (it shifts the
  // origin to the first submission).
  const auto w = test::make_workload({
      make_job(0, 1, 1, 1),                                  // anchor
      make_job(8 * kHour, 8, 10 * kHour, 10 * kHour),        // day phase
      make_job(8 * kHour + 60, 8, 14 * kHour, 14 * kHour),   // day phase
      make_job(21 * kHour, 8, 3600, 3600),                   // night arrival
      make_job(22 * kHour, 4, 3600, 3600),                   // night arrival
  });
  const auto schedule = sim::simulate(m, *s, w);
  EXPECT_GE(s->phase_flips(), 1u);
  EXPECT_EQ(schedule.size(), w.size());
}

TEST(PhasedScheduler, NightPhaseBehavesLikeGareyGraham) {
  // Everything happens Monday night (20:00+): the phased scheduler must
  // replicate pure G&G decisions.
  auto phased = make_phased();
  core::AlgorithmSpec gg;
  gg.dispatch = core::DispatchKind::kFirstFit;
  auto pure = make_scheduler(gg);

  const auto w = test::make_workload({
      make_job(0, 1, 1, 1),                      // anchor (night: Monday 0:00)
      make_job(100, 6, 1000, 1000),
      make_job(101, 4, 500, 500),                // blocked
      make_job(102, 2, 100, 100),                // G&G jumps it ahead
  });
  sim::Machine m;
  m.nodes = 8;
  const auto sp = sim::simulate(m, *phased, w);
  const auto sg = sim::simulate(m, *pure, w);
  for (JobId i = 0; i < w.size(); ++i) {
    EXPECT_EQ(sp[i].start, sg[i].start) << "job " << i;
  }
}

TEST(PhasedScheduler, DayPhaseBehavesLikeSmartEasy) {
  auto phased = make_phased();
  core::AlgorithmSpec se;
  se.order = core::OrderKind::kSmartFfia;
  se.dispatch = core::DispatchKind::kEasy;
  auto pure = make_scheduler(se);

  // Anchor at t=0 (Monday midnight); the real jobs all fall inside the
  // Monday 8:00-20:00 day window. The anchor itself is a trivial 1-second
  // job both schedulers start identically at the origin.
  std::vector<Job> jobs;
  jobs.push_back(make_job(0, 1, 1, 1));
  for (int i = 0; i < 30; ++i) {
    jobs.push_back(make_job(8 * kHour + i * 40, 1 + (i * 5) % 16,
                            300 + (i * 37) % 900, 1800));
  }
  const auto w = test::make_workload(std::move(jobs));
  sim::Machine m;
  m.nodes = 16;
  const auto sp = sim::simulate(m, *phased, w);
  const auto sg = sim::simulate(m, *pure, w);
  for (JobId i = 0; i < w.size(); ++i) {
    EXPECT_EQ(sp[i].start, sg[i].start) << "job " << i;
  }
}

TEST(PhasedScheduler, CombinedFactoryRunsPaperScaleWorkload) {
  auto s = make_institution_b_combined();
  workload::CtcModelParams p;
  p.job_count = 2000;
  const auto w = workload::trim_to_machine(workload::generate_ctc(p, 3), 256);
  sim::Machine m;
  m.nodes = 256;
  const auto schedule = sim::simulate(m, *s, w);
  EXPECT_EQ(schedule.size(), w.size());
}

TEST(PhasedScheduler, ConservativeDispatcherSurvivesAdoption) {
  // Day: FCFS+CONS; night: FCFS+FF. Jobs running across the boundary must
  // be accounted for when the conservative profile is rebuilt on the flip
  // back.
  auto phased = std::make_unique<PhasedScheduler>(
      day_window(), std::make_unique<FcfsOrder>(),
      std::make_unique<ConservativeBackfillDispatch>(),
      std::make_unique<FcfsOrder>(), std::make_unique<FirstFitDispatch>());
  sim::Machine m;
  m.nodes = 16;
  const auto w = test::make_workload({
      make_job(0, 1, 1, 1),                            // anchor (origin)
      make_job(19 * kHour, 12, 6 * kHour, 8 * kHour),  // spans 20:00
      make_job(19 * kHour + 60, 8, 3600, 7200),        // queued at flip
      make_job(21 * kHour, 8, 3600, 3600),
      make_job(kDay + 8 * kHour, 8, 3600, 3600),       // next morning (flip back)
      make_job(kDay + 8 * kHour + 10, 4, 600, 1200),
  });
  const auto schedule = sim::simulate(m, *phased, w);
  EXPECT_EQ(schedule.size(), w.size());
  EXPECT_GE(phased->phase_flips(), 2u);
}

}  // namespace
}  // namespace jsched::core
