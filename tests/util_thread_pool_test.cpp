#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

namespace jsched::util {
namespace {

TEST(ThreadPool, ClampsZeroThreadsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(ThreadPool, HardwareThreadsAtLeastOne) {
  EXPECT_GE(ThreadPool::hardware_threads(), 1u);
}

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForEachCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for_each(hits.size(), [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForEachWritesDisjointSlots) {
  // The eval harness's usage pattern: task i writes only out[i].
  ThreadPool pool(3);
  std::vector<std::size_t> out(257, 0);
  pool.parallel_for_each(out.size(), [&](std::size_t i) { out[i] = i * i; });
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPool, ParallelForEachHandlesZeroAndFewerTasksThanThreads) {
  ThreadPool pool(8);
  pool.parallel_for_each(0, [](std::size_t) { FAIL() << "no indices to run"; });
  std::atomic<int> counter{0};
  pool.parallel_for_each(3, [&](std::size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 3);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(2);
  std::atomic<long> sum{0};
  for (int round = 0; round < 5; ++round) {
    pool.parallel_for_each(100, [&](std::size_t i) {
      sum.fetch_add(static_cast<long>(i), std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(sum.load(), 5L * (99L * 100L / 2L));
}

TEST(ThreadPool, ParallelForEachRethrowsTaskException) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      pool.parallel_for_each(50,
                             [&](std::size_t i) {
                               if (i == 17) throw std::runtime_error("boom");
                               ++completed;
                             }),
      std::runtime_error);
  // Every non-throwing index still ran: one failure doesn't strand work.
  EXPECT_EQ(completed.load(), 49);
}

TEST(ThreadPool, ParallelForEachCountsSuppressedExceptions) {
  // Five tasks throw; one exception is rethrown and the other four must be
  // accounted for in its message, never silently dropped.
  ThreadPool pool(4);
  try {
    pool.parallel_for_each(50, [&](std::size_t i) {
      if (i % 10 == 0) throw std::runtime_error("task failed");
    });
    FAIL() << "expected the pool to rethrow";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("task failed"), std::string::npos) << what;
    EXPECT_NE(what.find("+4 further task failure"), std::string::npos) << what;
    EXPECT_NE(what.find("suppressed"), std::string::npos) << what;
  }
}

TEST(ThreadPool, SingleFailureKeepsOriginalMessageUnwrapped) {
  ThreadPool pool(4);
  try {
    pool.parallel_for_each(50, [&](std::size_t i) {
      if (i == 17) throw std::runtime_error("only failure");
    });
    FAIL() << "expected the pool to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "only failure");
  }
}

TEST(ThreadPool, StopOnErrorSkipsUnstartedTasks) {
  // With stop_on_error, indices not yet handed out after the failure are
  // skipped; in-flight tasks drain. With one worker the ordering is
  // deterministic: index 0 throws, 1..99 are never started.
  ThreadPool pool(1);
  std::atomic<int> started{0};
  ThreadPool::ParallelOptions options;
  options.stop_on_error = true;
  EXPECT_THROW(pool.parallel_for_each(
                   100,
                   [&](std::size_t i) {
                     started.fetch_add(1, std::memory_order_relaxed);
                     if (i == 0) throw std::runtime_error("stop now");
                   },
                   options),
               std::runtime_error);
  EXPECT_EQ(started.load(), 1);
}

TEST(ThreadPoolFreeFunction, SerialWhenThreadsIsOne) {
  // threads <= 1 must execute inline, in index order.
  std::vector<std::size_t> order;
  parallel_for_each(5, 1, [&](std::size_t i) { order.push_back(i); });
  const std::vector<std::size_t> expected = {0, 1, 2, 3, 4};
  EXPECT_EQ(order, expected);
}

TEST(ThreadPoolFreeFunction, ParallelMatchesSerialResult) {
  std::vector<double> serial(500), parallel(500);
  parallel_for_each(serial.size(), 1,
                    [&](std::size_t i) { serial[i] = 0.5 * static_cast<double>(i); });
  parallel_for_each(parallel.size(), 4,
                    [&](std::size_t i) { parallel[i] = 0.5 * static_cast<double>(i); });
  EXPECT_EQ(serial, parallel);
}

}  // namespace
}  // namespace jsched::util
