#include <gtest/gtest.h>

#include <stdexcept>

#include "workload/ctc_model.h"
#include "workload/random_model.h"
#include "workload/stats_model.h"
#include "workload/transforms.h"

namespace jsched::workload {
namespace {

CtcModelParams small_ctc() {
  CtcModelParams p;
  p.job_count = 5000;
  return p;
}

TEST(CtcModel, DeterministicInSeed) {
  const Workload a = generate_ctc(small_ctc(), 1);
  const Workload b = generate_ctc(small_ctc(), 1);
  ASSERT_EQ(a.size(), b.size());
  for (JobId i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(CtcModel, SeedChangesWorkload) {
  const Workload a = generate_ctc(small_ctc(), 1);
  const Workload b = generate_ctc(small_ctc(), 2);
  std::size_t same = 0;
  for (JobId i = 0; i < std::min(a.size(), b.size()); ++i) same += a[i] == b[i];
  EXPECT_LT(same, a.size() / 10);
}

TEST(CtcModel, JobsAreValidForTheModelMachine) {
  const CtcModelParams p = small_ctc();
  const Workload w = generate_ctc(p, 7);
  ASSERT_EQ(w.size(), p.job_count);
  for (const Job& j : w) {
    EXPECT_GE(j.nodes, 1);
    EXPECT_LE(j.nodes, p.machine_nodes);
    EXPECT_GE(j.runtime, p.min_runtime);
    EXPECT_LE(j.runtime, p.max_runtime);
    EXPECT_GE(j.estimate, j.runtime);
  }
}

TEST(CtcModel, MeanInterarrivalNearTarget) {
  CtcModelParams p = small_ctc();
  p.job_count = 20000;
  const Workload w = generate_ctc(p, 11);
  const WorkloadSummary s = summarize(w);
  EXPECT_NEAR(s.interarrival.mean() / p.mean_interarrival, 1.0, 0.15);
}

TEST(CtcModel, FewJobsExceed256Nodes) {
  CtcModelParams p = small_ctc();
  p.job_count = 20000;
  const Workload w = generate_ctc(p, 13);
  std::size_t wide = 0;
  for (const Job& j : w) wide += j.nodes > 256;
  // Paper: "less than 0.2% of all jobs require more than 256 nodes".
  EXPECT_LT(static_cast<double>(wide) / static_cast<double>(w.size()), 0.006);
  EXPECT_GT(wide, 0u);  // the tail exists
}

TEST(CtcModel, EstimatesRoundedToGranularity) {
  CtcModelParams p = small_ctc();
  const Workload w = generate_ctc(p, 17);
  std::size_t rounded = 0;
  for (const Job& j : w) rounded += j.estimate % p.estimate_granularity == 0;
  // Estimates are rounded unless the clamp to >= runtime interferes.
  EXPECT_GT(static_cast<double>(rounded) / static_cast<double>(w.size()), 0.95);
}

TEST(CtcModel, SerialJobsAreCommon) {
  const Workload w = generate_ctc(small_ctc(), 19);
  std::size_t serial = 0;
  for (const Job& j : w) serial += j.nodes == 1;
  const double frac = static_cast<double>(serial) / static_cast<double>(w.size());
  EXPECT_GT(frac, 0.15);
  EXPECT_LT(frac, 0.45);
}

TEST(CtcModel, OfferedLoadInBacklogRegime) {
  // The trimmed 256-node workload must be heavily loaded (the paper
  // observes a growing backlog) but not absurdly overloaded.
  CtcModelParams p;
  p.job_count = 30000;
  const Workload w = trim_to_machine(generate_ctc(p, 23), 256);
  const double load = summarize(w).offered_load(256);
  EXPECT_GT(load, 0.6);
  EXPECT_LT(load, 1.3);
}

TEST(CtcModel, RejectsInvalidParams) {
  CtcModelParams p;
  p.job_count = 0;
  EXPECT_THROW(generate_ctc(p, 1), std::invalid_argument);
  p = CtcModelParams{};
  p.machine_nodes = 0;
  EXPECT_THROW(generate_ctc(p, 1), std::invalid_argument);
  p = CtcModelParams{};
  p.mean_interarrival = -1;
  EXPECT_THROW(generate_ctc(p, 1), std::invalid_argument);
  p = CtcModelParams{};
  p.max_runtime = 0;
  EXPECT_THROW(generate_ctc(p, 1), std::invalid_argument);
}

TEST(RandomModel, RespectsTable2Parameters) {
  RandomModelParams p;
  p.job_count = 5000;
  const Workload w = generate_random(p, 3);
  ASSERT_EQ(w.size(), p.job_count);
  Time prev = 0;
  for (const Job& j : w) {
    EXPECT_LE(j.submit - prev, p.max_interarrival);
    prev = j.submit;
    EXPECT_GE(j.nodes, 1);
    EXPECT_LE(j.nodes, 256);
    EXPECT_GE(j.estimate, p.min_estimate);
    EXPECT_LE(j.estimate, p.max_estimate);
    EXPECT_GE(j.runtime, 1);
    EXPECT_LE(j.runtime, j.estimate);
  }
}

TEST(RandomModel, Deterministic) {
  RandomModelParams p;
  p.job_count = 500;
  const Workload a = generate_random(p, 5);
  const Workload b = generate_random(p, 5);
  for (JobId i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(RandomModel, NodesRoughlyUniform) {
  RandomModelParams p;
  p.job_count = 50000;
  const Workload w = generate_random(p, 7);
  const WorkloadSummary s = summarize(w);
  EXPECT_NEAR(s.nodes.mean(), 128.5, 3.0);
}

TEST(RandomModel, RejectsInvalidParams) {
  RandomModelParams p;
  p.job_count = 0;
  EXPECT_THROW(generate_random(p, 1), std::invalid_argument);
  p = RandomModelParams{};
  p.min_nodes = 0;
  EXPECT_THROW(generate_random(p, 1), std::invalid_argument);
  p = RandomModelParams{};
  p.max_estimate = p.min_estimate - 1;
  EXPECT_THROW(generate_random(p, 1), std::invalid_argument);
}

TEST(StatsModel, ExtractRejectsTinySource) {
  Workload w;
  EXPECT_THROW(WorkloadStatistics::extract(w), std::invalid_argument);
}

TEST(StatsModel, SampledJobsAreConsistent) {
  const Workload source = generate_ctc(small_ctc(), 31);
  const Workload sampled = generate_probabilistic(source, 3000, 99);
  ASSERT_EQ(sampled.size(), 3000u);
  for (const Job& j : sampled) {
    EXPECT_GE(j.nodes, 1);
    EXPECT_LE(j.nodes, source.max_nodes());
    EXPECT_GE(j.runtime, 1);
    EXPECT_LE(j.runtime, j.estimate);
  }
}

TEST(StatsModel, PreservesNodeDistributionShape) {
  CtcModelParams p = small_ctc();
  p.job_count = 20000;
  const Workload source = generate_ctc(p, 37);
  const WorkloadStatistics st = WorkloadStatistics::extract(source);
  const Workload sampled = st.sample(20000, 101);

  std::size_t src_serial = 0, dst_serial = 0;
  for (const Job& j : source) src_serial += j.nodes == 1;
  for (const Job& j : sampled) dst_serial += j.nodes == 1;
  const double src_frac =
      static_cast<double>(src_serial) / static_cast<double>(source.size());
  const double dst_frac =
      static_cast<double>(dst_serial) / static_cast<double>(sampled.size());
  EXPECT_NEAR(dst_frac, src_frac, 0.02);
}

TEST(StatsModel, PreservesArrivalRate) {
  CtcModelParams p = small_ctc();
  p.job_count = 20000;
  p.diurnal_cycle = false;  // pure Weibull source for a clean comparison
  const Workload source = generate_ctc(p, 41);
  const Workload sampled = generate_probabilistic(source, 20000, 103);
  const double src_mean = summarize(source).interarrival.mean();
  const double dst_mean = summarize(sampled).interarrival.mean();
  EXPECT_NEAR(dst_mean / src_mean, 1.0, 0.15);
}

TEST(StatsModel, NodeProbabilityIntrospection) {
  const Workload source = generate_ctc(small_ctc(), 43);
  const WorkloadStatistics st = WorkloadStatistics::extract(source);
  double total = 0.0;
  for (int n = 1; n <= st.max_nodes(); ++n) total += st.node_probability(n);
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_EQ(st.node_probability(0), 0.0);
  EXPECT_EQ(st.node_probability(st.max_nodes() + 1), 0.0);
}

TEST(StatsModel, SamplingDeterministic) {
  const Workload source = generate_ctc(small_ctc(), 47);
  const WorkloadStatistics st = WorkloadStatistics::extract(source);
  const Workload a = st.sample(1000, 7);
  const Workload b = st.sample(1000, 7);
  for (JobId i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

}  // namespace
}  // namespace jsched::workload
