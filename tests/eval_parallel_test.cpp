// The serial-equivalence guarantee of the parallel evaluation harness:
// run_grid with any thread count returns the same RunResult vector as the
// serial sweep, on a paper-shaped (500-job CTC-model) workload.
#include <gtest/gtest.h>

#include <mutex>
#include <string>
#include <vector>

#include "eval/experiment.h"
#include "workload/ctc_model.h"
#include "workload/transforms.h"

namespace jsched::eval {
namespace {

workload::Workload ctc500() {
  workload::CtcModelParams p;
  p.job_count = 500;
  return workload::trim_to_machine(workload::generate_ctc(p, 7), 256);
}

sim::Machine m256() {
  sim::Machine m;
  m.nodes = 256;
  return m;
}

void expect_identical(const std::vector<RunResult>& a,
                      const std::vector<RunResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("grid slot " + std::to_string(i));
    EXPECT_EQ(a[i].spec.order, b[i].spec.order);
    EXPECT_EQ(a[i].spec.dispatch, b[i].spec.dispatch);
    EXPECT_EQ(a[i].spec.weight, b[i].spec.weight);
    EXPECT_EQ(a[i].scheduler_name, b[i].scheduler_name);
    EXPECT_EQ(a[i].jobs, b[i].jobs);
    // Identical simulations => identical doubles, not merely close.
    EXPECT_EQ(a[i].art, b[i].art);
    EXPECT_EQ(a[i].awrt, b[i].awrt);
    EXPECT_EQ(a[i].wait, b[i].wait);
    EXPECT_EQ(a[i].makespan, b[i].makespan);
    EXPECT_EQ(a[i].utilization, b[i].utilization);
    EXPECT_EQ(a[i].max_queue_length, b[i].max_queue_length);
  }
}

TEST(ParallelEval, RunGridWithFourThreadsMatchesSerial) {
  const auto w = ctc500();
  ExperimentOptions serial;
  serial.measure_cpu = false;  // CPU seconds are timing noise, not results
  ExperimentOptions parallel = serial;
  parallel.threads = 4;
  const auto rs = run_grid(m256(), core::WeightKind::kUnit, w, serial);
  const auto rp = run_grid(m256(), core::WeightKind::kUnit, w, parallel);
  expect_identical(rs, rp);
}

TEST(ParallelEval, RunGridWeightedObjectiveAlsoMatches) {
  const auto w = ctc500();
  ExperimentOptions serial;
  serial.measure_cpu = false;
  ExperimentOptions parallel = serial;
  parallel.threads = 3;  // does not divide 13: uneven task distribution
  const auto rs = run_grid(m256(), core::WeightKind::kEstimatedArea, w, serial);
  const auto rp =
      run_grid(m256(), core::WeightKind::kEstimatedArea, w, parallel);
  expect_identical(rs, rp);
}

TEST(ParallelEval, ThreadsZeroMeansHardwareConcurrency) {
  const auto w = ctc500();
  ExperimentOptions serial;
  serial.measure_cpu = false;
  ExperimentOptions parallel = serial;
  parallel.threads = 0;
  const auto rs = run_grid(m256(), core::WeightKind::kUnit, w, serial);
  const auto rp = run_grid(m256(), core::WeightKind::kUnit, w, parallel);
  expect_identical(rs, rp);
}

TEST(ParallelEval, ProgressCallbackFiresOncePerConfiguration) {
  const auto w = ctc500();
  ExperimentOptions opt;
  opt.measure_cpu = false;
  opt.threads = 4;
  std::mutex mu;  // on_run is serialized by the harness, but count safely
  std::vector<std::string> seen;
  opt.on_run = [&](const std::string& name) {
    std::lock_guard<std::mutex> lock(mu);
    seen.push_back(name);
  };
  run_grid(m256(), core::WeightKind::kUnit, w, opt);
  EXPECT_EQ(seen.size(), 13u);
}

}  // namespace
}  // namespace jsched::eval
