#include <gtest/gtest.h>

#include "core/factory.h"
#include "sim/simulator.h"
#include "test_support.h"

namespace jsched::sim {
namespace {

using test::make_job;

TEST(Backlog, OffByDefault) {
  Machine m;
  m.nodes = 16;  // small_mixed_workload has 16-node jobs
  auto sched = core::make_scheduler(core::AlgorithmSpec{});
  const auto s = simulate(m, *sched, test::small_mixed_workload());
  EXPECT_TRUE(s.backlog.empty());
}

TEST(Backlog, RecordsQueueGrowthAndDrain) {
  // Four full-machine jobs at once: queue 3 after the burst, draining by
  // one at each completion.
  const auto w = test::make_workload({
      make_job(0, 8, 100),
      make_job(0, 8, 100),
      make_job(0, 8, 100),
      make_job(0, 8, 100),
  });
  Machine m;
  m.nodes = 8;
  auto sched = core::make_scheduler(core::AlgorithmSpec{});
  SimOptions opt;
  opt.record_backlog = true;
  const auto s = simulate(m, *sched, w, opt);

  ASSERT_FALSE(s.backlog.empty());
  // Samples are coalesced per instant and strictly increasing in time.
  for (std::size_t i = 1; i < s.backlog.size(); ++i) {
    EXPECT_LT(s.backlog[i - 1].first, s.backlog[i].first);
  }
  EXPECT_EQ(s.backlog.front().first, 0);
  EXPECT_EQ(s.backlog.front().second, 3u);  // one running, three waiting
  // Peak matches the max_queue_length counter.
  std::size_t peak = 0;
  for (const auto& [t, q] : s.backlog) peak = std::max(peak, q);
  EXPECT_EQ(peak, s.max_queue_length);
  // Fully drained at the last event.
  EXPECT_EQ(s.backlog.back().second, 0u);
}

}  // namespace
}  // namespace jsched::sim
