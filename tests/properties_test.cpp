// Property sweeps: every algorithm of the paper's grid, over several
// generated workloads, must uphold the model invariants. Schedule validity
// (capacity, exclusivity, runtimes, cancellation) is checked by
// validate_schedule inside every run; the assertions here cover metric
// identities, determinism and algorithm-specific guarantees.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <map>
#include <tuple>

#include "eval/experiment.h"
#include "metrics/objectives.h"
#include "test_support.h"
#include "workload/ctc_model.h"
#include "workload/random_model.h"
#include "workload/stats_model.h"
#include "workload/transforms.h"

namespace jsched {
namespace {

struct WorkloadCase {
  const char* name;
  workload::Workload (*build)(std::uint64_t seed);
  std::uint64_t seed;
};

workload::Workload build_ctc(std::uint64_t seed) {
  workload::CtcModelParams p;
  p.job_count = 900;
  return workload::trim_to_machine(workload::generate_ctc(p, seed), 256);
}

workload::Workload build_random(std::uint64_t seed) {
  workload::RandomModelParams p;
  p.job_count = 500;
  return workload::generate_random(p, seed);
}

workload::Workload build_probabilistic(std::uint64_t seed) {
  workload::CtcModelParams p;
  p.job_count = 2000;
  const auto source =
      workload::trim_to_machine(workload::generate_ctc(p, 1234), 256);
  return workload::generate_probabilistic(source, 700, seed);
}

workload::Workload build_exact(std::uint64_t seed) {
  return workload::with_exact_estimates(build_ctc(seed));
}

const WorkloadCase kWorkloads[] = {
    {"ctc-a", build_ctc, 11},
    {"ctc-b", build_ctc, 22},
    {"random", build_random, 33},
    {"probabilistic", build_probabilistic, 44},
    {"exact", build_exact, 55},
};

class GridProperty
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
 protected:
  static const workload::Workload& workload_for(std::size_t wi) {
    static std::map<std::size_t, workload::Workload> cache;
    auto it = cache.find(wi);
    if (it == cache.end()) {
      it = cache.emplace(wi, kWorkloads[wi].build(kWorkloads[wi].seed)).first;
    }
    return it->second;
  }
};

TEST_P(GridProperty, InvariantsHold) {
  const auto [wi, si] = GetParam();
  const auto& w = workload_for(wi);
  const auto spec = core::paper_grid(core::WeightKind::kUnit)[si];
  SCOPED_TRACE(spec.display_name());

  // run() validates the schedule (throws on any capacity/ordering bug).
  const auto s = test::run(spec, w, 256);

  // Metric identities.
  const double art = metrics::average_response_time(s);
  const double wait = metrics::average_wait_time(s);
  double mean_busy = 0.0;
  for (const auto& r : s.records()) {
    mean_busy += static_cast<double>(r.end - r.start);
  }
  mean_busy /= static_cast<double>(s.size());
  EXPECT_NEAR(art, wait + mean_busy, 1e-6);

  // Makespan bounds: at least the critical path of any single job and at
  // least the total work over the machine width.
  double max_single = 0.0;
  for (JobId i = 0; i < w.size(); ++i) {
    max_single = std::max(
        max_single, static_cast<double>(w.job(i).submit) +
                        static_cast<double>(s[i].end - s[i].start));
  }
  double busy_area = 0.0;
  for (const auto& r : s.records()) {
    busy_area +=
        static_cast<double>(r.nodes) * static_cast<double>(r.end - r.start);
  }
  const auto ms = static_cast<double>(s.makespan());
  EXPECT_GE(ms + 1e-9, max_single);
  EXPECT_GE(ms * 256.0 + 1e-6, busy_area);

  // Utilization in (0, 1].
  const double util = metrics::utilization(s);
  EXPECT_GT(util, 0.0);
  EXPECT_LE(util, 1.0 + 1e-12);

  // AWRT >= 0 and consistent with the normalized variant's ordering.
  EXPECT_GE(metrics::average_weighted_response_time(s), 0.0);
}

TEST_P(GridProperty, DeterministicAcrossRuns) {
  const auto [wi, si] = GetParam();
  const auto& w = workload_for(wi);
  const auto spec = core::paper_grid(core::WeightKind::kEstimatedArea)[si];
  const auto s1 = test::run(spec, w, 256);
  const auto s2 = test::run(spec, w, 256);
  for (JobId i = 0; i < w.size(); ++i) {
    ASSERT_EQ(s1[i].start, s2[i].start) << spec.display_name() << " job " << i;
  }
}

std::string grid_param_name(
    const ::testing::TestParamInfo<std::tuple<std::size_t, std::size_t>>&
        info) {
  const std::size_t wi = std::get<0>(info.param);
  const std::size_t si = std::get<1>(info.param);
  const auto spec = core::paper_grid(core::WeightKind::kUnit)[si];
  std::string name =
      std::string(kWorkloads[wi].name) + "_" + spec.display_name();
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloadsAllAlgorithms, GridProperty,
    ::testing::Combine(::testing::Range<std::size_t>(0, 5),
                       ::testing::Range<std::size_t>(0, 13)),
    grid_param_name);

// FCFS fairness: with the plain list dispatch, start times follow
// submission order ("the completion time of each job is independent of any
// job submitted later", §5.1 — in particular no later job starts first).
class FcfsFairness : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FcfsFairness, StartsFollowSubmissionOrder) {
  const auto& wc = kWorkloads[GetParam()];
  const auto w = wc.build(wc.seed);
  const auto s = test::run(core::AlgorithmSpec{}, w, 256);
  for (JobId i = 1; i < w.size(); ++i) {
    EXPECT_LE(s[i - 1].start, s[i].start);
  }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, FcfsFairness,
                         ::testing::Range<std::size_t>(0, 5));

// Garey&Graham work-conservation: no job waits while enough nodes are
// free. Verified against the executed schedule's free-capacity timeline.
class GgConservation : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GgConservation, NeverIdlesAFittingJob) {
  const auto& wc = kWorkloads[GetParam()];
  const auto w = wc.build(wc.seed);
  core::AlgorithmSpec gg;
  gg.dispatch = core::DispatchKind::kFirstFit;
  const auto s = test::run(gg, w, 256);

  // Free capacity as a sorted breakpoint timeline.
  std::map<Time, int> delta;
  for (const auto& r : s.records()) {
    delta[r.start] += r.nodes;
    delta[r.end] -= r.nodes;
  }
  std::map<Time, int> used;  // usage from t onward
  int acc = 0;
  for (const auto& [t, d] : delta) {
    acc += d;
    used[t] = acc;
  }

  for (JobId i = 0; i < w.size(); ++i) {
    const Job& j = w.job(i);
    if (s[i].start == j.submit) continue;
    // At every breakpoint in [submit, start) the job must not have fit.
    for (auto it = used.lower_bound(j.submit);
         it != used.end() && it->first < s[i].start; ++it) {
      EXPECT_GT(it->second + j.nodes, 256)
          << "job " << i << " idled at t=" << it->first;
    }
    // Also at the submission instant itself.
    auto at = used.upper_bound(j.submit);
    if (at != used.begin()) {
      --at;
      EXPECT_GT(at->second + j.nodes, 256)
          << "job " << i << " idled at submit";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, GgConservation,
                         ::testing::Range<std::size_t>(0, 5));

}  // namespace
}  // namespace jsched
