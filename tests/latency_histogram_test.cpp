#include "util/latency.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace jsched::util {
namespace {

constexpr std::uint64_t kSub = 1ULL << LatencyHistogram::kSubBits;  // 32

TEST(Histogram, EmptyIsAllZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.quantile(0.5), 0u);
  EXPECT_EQ(h.p999(), 0u);
}

TEST(Histogram, SingleSampleAllQuantilesExact) {
  LatencyHistogram h;
  h.record(123'456'789);
  for (double q : {0.0, 0.25, 0.5, 0.99, 0.999, 1.0}) {
    EXPECT_EQ(h.quantile(q), 123'456'789u) << "q=" << q;
  }
  EXPECT_EQ(h.min(), 123'456'789u);
  EXPECT_EQ(h.max(), 123'456'789u);
  EXPECT_EQ(h.mean(), 123'456'789.0);
}

TEST(Histogram, AllEqualSamplesExact) {
  LatencyHistogram h;
  for (int i = 0; i < 1000; ++i) h.record(777);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.p50(), 777u);
  EXPECT_EQ(h.p99(), 777u);
  EXPECT_EQ(h.p999(), 777u);
}

TEST(Histogram, SmallValuesAreExact) {
  // Every value below 2*kSub gets its own bucket: quantiles are exact.
  LatencyHistogram h;
  for (std::uint64_t v = 0; v < 2 * kSub; ++v) h.record(v);
  EXPECT_EQ(h.count(), 2 * kSub);
  EXPECT_EQ(h.quantile(0.5), kSub - 1);  // rank 32 of 64 -> value 31
  EXPECT_EQ(h.quantile(1.0), 2 * kSub - 1);
  EXPECT_EQ(h.quantile(0.0), 0u);
}

TEST(Histogram, BucketBoundariesRoundTrip) {
  // bucket_upper_bound(bucket_of(v)) >= v, and the upper bound itself maps
  // back to the same bucket (it is the largest member).
  const std::vector<std::uint64_t> probes = {
      0,      1,       31,      32,        33,        63,      64,
      65,     127,     128,     1000,      4095,      4096,    4097,
      65535,  65536,   1u << 20, (1u << 20) + 1,      ~0u,
      1ULL << 40, (1ULL << 40) + 12345, ~0ULL >> 1, ~0ULL};
  for (std::uint64_t v : probes) {
    const auto idx = LatencyHistogram::bucket_of(v);
    const auto ub = LatencyHistogram::bucket_upper_bound(idx);
    EXPECT_GE(ub, v) << "v=" << v;
    EXPECT_EQ(LatencyHistogram::bucket_of(ub), idx) << "v=" << v;
    if (idx > 0) {
      // Strictly above the previous bucket's upper bound.
      EXPECT_GT(v, LatencyHistogram::bucket_upper_bound(idx - 1)) << "v=" << v;
    }
  }
}

TEST(Histogram, BucketsAreContiguous) {
  // Walking values across several octaves never skips or reuses buckets
  // out of order.
  std::size_t last = LatencyHistogram::bucket_of(0);
  EXPECT_EQ(last, 0u);
  for (std::uint64_t v = 1; v < 1u << 14; ++v) {
    const auto idx = LatencyHistogram::bucket_of(v);
    EXPECT_TRUE(idx == last || idx == last + 1) << "v=" << v;
    last = idx;
  }
}

TEST(Histogram, RelativeErrorBounded) {
  // Reported quantile of a point mass overstates by < 2^-kSubBits.
  for (std::uint64_t v : {100u, 999u, 12345u, 1u << 22, 3u << 20}) {
    LatencyHistogram h;
    h.record(v);
    h.record(v + v / 64);  // second sample in (likely) the next bucket
    const auto p50 = h.quantile(0.5);
    EXPECT_GE(p50, v);
    EXPECT_LE(static_cast<double>(p50),
              static_cast<double>(v) * (1.0 + 1.0 / kSub) + 1.0)
        << "v=" << v;
  }
}

TEST(Histogram, QuantileClampedToObservedRange) {
  LatencyHistogram h;
  h.record(1'000'000);
  h.record(1'000'001);
  EXPECT_GE(h.quantile(0.0), 1'000'000u);
  EXPECT_LE(h.quantile(1.0), 1'000'001u);
}

TEST(Histogram, MergeMatchesCombinedRecording) {
  LatencyHistogram a, b, combined;
  std::uint64_t v = 1;
  for (int i = 0; i < 200; ++i) {
    v = v * 2862933555777941757ULL + 3037000493ULL;  // cheap LCG
    const std::uint64_t sample = v % 10'000'000;
    if (i % 2 == 0) {
      a.record(sample);
    } else {
      b.record(sample);
    }
    combined.record(sample);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.sum(), combined.sum());
  EXPECT_EQ(a.min(), combined.min());
  EXPECT_EQ(a.max(), combined.max());
  for (double q : {0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    EXPECT_EQ(a.quantile(q), combined.quantile(q)) << "q=" << q;
  }
}

TEST(Histogram, MergeWithEmptyIsIdentity) {
  LatencyHistogram a, empty;
  a.record(42);
  a.record(4242);
  LatencyHistogram before = a;
  a.merge(empty);
  EXPECT_EQ(a.count(), before.count());
  EXPECT_EQ(a.p50(), before.p50());
  // And merging into an empty histogram copies.
  empty.merge(a);
  EXPECT_EQ(empty.count(), a.count());
  EXPECT_EQ(empty.min(), a.min());
  EXPECT_EQ(empty.max(), a.max());
  EXPECT_EQ(empty.p999(), a.p999());
}

TEST(Histogram, QuantileMonotoneInQ) {
  LatencyHistogram h;
  std::uint64_t v = 7;
  for (int i = 0; i < 5000; ++i) {
    v = v * 6364136223846793005ULL + 1442695040888963407ULL;
    h.record(v % 1'000'000'000);
  }
  std::uint64_t last = 0;
  for (double q = 0.0; q <= 1.0; q += 0.01) {
    const auto cur = h.quantile(q);
    EXPECT_GE(cur, last) << "q=" << q;
    last = cur;
  }
}

}  // namespace
}  // namespace jsched::util
