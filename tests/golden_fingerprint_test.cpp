// Golden schedule fingerprints over a small fixed-seed grid.
//
// Every optimization PR claims "faster, schedules unchanged". This test
// makes the second half a one-assert check: the FNV-1a fingerprint of each
// schedule (submit/start/end/nodes/cancelled of every job, in id order)
// over the full 13-configuration paper grid x both objectives — plus the
// full-compression conservative variants the grid does not include — must
// match the values recorded when the behaviour was last intentionally
// changed. A mismatch means some schedule moved: either a bug, or an
// intentional behaviour change that must update the goldens (the failure
// message prints the replacement table).
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/factory.h"
#include "test_support.h"
#include "workload/ctc_model.h"
#include "workload/transforms.h"

namespace jsched {
namespace {

constexpr int kMachineNodes = 256;
constexpr std::size_t kJobs = 700;
constexpr std::uint64_t kSeed = 1999;

struct Golden {
  const char* name;      // display_name of the spec
  const char* weight;    // "unit" or "area"
  std::uint64_t fnv;
};

// Recorded on the fixed-seed workload below. Regenerate by running this
// test and copying the table it prints on mismatch.
constexpr Golden kGolden[] = {
    {"FCFS", "unit", 0x119a442445741fc5ull},
    {"FCFS+CONS", "unit", 0xa440ed4a681adef7ull},
    {"FCFS+EASY", "unit", 0xeff99fb614d8de99ull},
    {"PSRS", "unit", 0x11da6e457dcf86beull},
    {"PSRS+CONS", "unit", 0x73c4cb86641f6607ull},
    {"PSRS+EASY", "unit", 0x4cb622aad295b5b8ull},
    {"SMART-FFIA", "unit", 0xc7dc1ee1dfd6a3aaull},
    {"SMART-FFIA+CONS", "unit", 0x40bda2e33578594full},
    {"SMART-FFIA+EASY", "unit", 0x8a93bd7356c95254ull},
    {"SMART-NFIW", "unit", 0x5468cd3199179ab4ull},
    {"SMART-NFIW+CONS", "unit", 0x522b6b23298b8079ull},
    {"SMART-NFIW+EASY", "unit", 0xbe700945507aba71ull},
    {"Garey&Graham", "unit", 0x142870383855794full},
    {"FCFS", "area", 0x119a442445741fc5ull},
    {"FCFS+CONS", "area", 0xa440ed4a681adef7ull},
    {"FCFS+EASY", "area", 0xeff99fb614d8de99ull},
    {"PSRS", "area", 0x42384c5f3aef1dfcull},
    {"PSRS+CONS", "area", 0x767a9905e05d6a63ull},
    {"PSRS+EASY", "area", 0x55a93f47d17a6784ull},
    {"SMART-FFIA", "area", 0x3a42e07dc71208b0ull},
    {"SMART-FFIA+CONS", "area", 0xd4eb08b2976ce5bbull},
    {"SMART-FFIA+EASY", "area", 0x29d2f573798a3ec0ull},
    {"SMART-NFIW", "area", 0xe78752250887d491ull},
    {"SMART-NFIW+CONS", "area", 0x15016cf2f1543dfeull},
    {"SMART-NFIW+EASY", "area", 0x95641825dab32638ull},
    {"Garey&Graham", "area", 0x142870383855794full},
    // Identical to the plain CONS rows by design: at this backlog depth the
    // default replan_prefix (64) already covers the whole reserved set, so
    // full compression must not change a single placement. The rows still
    // pin the CONS-C gate (debt flag, bulk updates, prefix pinning).
    {"FCFS+CONS-C", "unit", 0xa440ed4a681adef7ull},
    {"SMART-FFIA+CONS-C", "unit", 0x40bda2e33578594full},
};

std::vector<std::pair<std::string, core::AlgorithmSpec>> golden_specs(
    core::WeightKind weight) {
  std::vector<std::pair<std::string, core::AlgorithmSpec>> specs;
  for (const core::AlgorithmSpec& s : core::paper_grid(weight)) {
    specs.emplace_back(s.display_name(), s);
  }
  return specs;
}

TEST(GoldenFingerprints, SmallFixedSeedGrid) {
  workload::CtcModelParams params;
  params.job_count = kJobs;
  const workload::Workload w = workload::trim_to_machine(
      workload::generate_ctc(params, kSeed), kMachineNodes);

  std::vector<std::pair<std::string, std::uint64_t>> actual;  // name|weight
  const auto run_all = [&](core::WeightKind weight) {
    for (const auto& [name, spec] : golden_specs(weight)) {
      actual.emplace_back(name + std::string("|") + core::to_string(weight),
                          test::run_fingerprint(spec, w, kMachineNodes));
    }
  };
  run_all(core::WeightKind::kUnit);
  run_all(core::WeightKind::kEstimatedArea);

  // The tentpole's replan elisions live in the full-compression variant,
  // which the paper grid does not include; pin it explicitly.
  for (const core::OrderKind order :
       {core::OrderKind::kFcfs, core::OrderKind::kSmartFfia}) {
    core::AlgorithmSpec spec;
    spec.order = order;
    spec.dispatch = core::DispatchKind::kConservative;
    spec.conservative.full_compression = true;
    actual.emplace_back(spec.display_name() + std::string("|unit"),
                        test::run_fingerprint(spec, w, kMachineNodes));
  }

  ASSERT_EQ(actual.size(), std::size(kGolden));
  bool all_match = true;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    const std::string key = std::string(kGolden[i].name) + "|" +
                            kGolden[i].weight;
    EXPECT_EQ(actual[i].first, key) << "grid order changed at row " << i;
    if (actual[i].second != kGolden[i].fnv) all_match = false;
    EXPECT_EQ(actual[i].second, kGolden[i].fnv)
        << actual[i].first << ": schedule changed";
  }
  if (!all_match) {
    std::fprintf(stderr, "replacement golden table:\n");
    for (const auto& [key, fnv] : actual) {
      const std::size_t bar = key.find('|');
      std::fprintf(stderr, "    {\"%s\", \"%s\", 0x%016llxull},\n",
                   key.substr(0, bar).c_str(), key.substr(bar + 1).c_str(),
                   static_cast<unsigned long long>(fnv));
    }
  }
}

}  // namespace
}  // namespace jsched
