#include "util/clock.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace jsched::util {
namespace {

using namespace std::chrono_literals;

TEST(Clock, RealClockIsMonotonic) {
  Clock& c = real_clock();
  const auto a = c.now();
  const auto b = c.now();
  EXPECT_LE(a, b);
}

TEST(Clock, RealClockSleepUntilPastIsImmediate) {
  Clock& c = real_clock();
  // A target in the past must not block.
  c.sleep_until(c.now() - 1h);
  SUCCEED();
}

TEST(Clock, ManualClockStartsAtGivenTime) {
  const Clock::time_point start(Clock::duration(1'000'000));
  ManualClock c(start);
  EXPECT_EQ(c.now(), start);
}

TEST(Clock, ManualClockAdvance) {
  ManualClock c;
  const auto t0 = c.now();
  c.advance(250ms);
  EXPECT_EQ(c.now() - t0, 250ms);
  c.advance(1ns);
  EXPECT_EQ(c.now() - t0, 250ms + 1ns);
}

TEST(Clock, ManualClockSleepUntilJumpsForward) {
  ManualClock c;
  const auto target = c.now() + 5s;
  c.sleep_until(target);  // returns immediately, time lands on target
  EXPECT_EQ(c.now(), target);
}

TEST(Clock, ManualClockSleepUntilNeverMovesBackwards) {
  ManualClock c;
  c.advance(10s);
  const auto before = c.now();
  c.sleep_until(before - 3s);
  EXPECT_EQ(c.now(), before);
}

TEST(Clock, ManualClockSleepForUsesCurrentTime) {
  ManualClock c;
  c.advance(1s);
  c.sleep_for(2s);
  EXPECT_EQ(c.now().time_since_epoch(), Clock::duration(3s));
}

// Shared ManualClock: concurrent sleep_until/advance must neither tear nor
// move time backwards (this is what the TSan job exercises).
TEST(Clock, ManualClockConcurrentAdvanceIsMonotonic) {
  ManualClock c;
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&c, t] {
      for (int i = 0; i < 1000; ++i) {
        if (t % 2 == 0) {
          c.advance(std::chrono::nanoseconds(1));
        } else {
          c.sleep_until(c.now() + std::chrono::nanoseconds(2));
        }
      }
    });
  }
  Clock::time_point last = c.now();
  for (int i = 0; i < 1000; ++i) {
    const auto cur = c.now();
    EXPECT_LE(last, cur);
    last = cur;
  }
  for (auto& th : threads) th.join();
  EXPECT_GE(c.now().time_since_epoch(), Clock::duration(2000));
}

}  // namespace
}  // namespace jsched::util
