// EASY backfilling (Lifka's original ANL/IBM SP method) — paper §5.2.
//
// "While EASY backfill will not postpone the *projected* execution of the
//  next job in the list, it may increase the completion time of jobs
//  further down the list."
//
// Only the head of the queue receives a guarantee: from the estimated
// completion times of running jobs, compute the *shadow time* at which the
// head will be able to start and the number of *extra* nodes left over at
// that moment. Any other queued job may start now if it fits the currently
// free nodes and either finishes (by its estimate) before the shadow time
// or uses only extra nodes.
//
// Projections use user estimates, so an early-finishing job can make a
// backfill decision delay the head relative to what an exact-knowledge
// scheduler would have done — exactly the effect the paper discusses and
// Table 6 measures.
#pragma once

#include "core/dispatch.h"

namespace jsched::core {

class EasyBackfillDispatch final : public Dispatcher {
 public:
  std::string name() const override { return "EASY"; }
  void reset(const sim::Machine&, const JobStore& store) override {
    store_ = &store;
  }
  void select(Time now, int free_nodes, const std::vector<JobId>& order,
              const std::vector<RunningJob>& running,
              std::vector<JobId>& starts) override;

 private:
  const JobStore* store_ = nullptr;
  // Scratch for the shadow-time computation (running jobs + greedy starts,
  // sorted by estimated end); kept as a member so the per-event hot path
  // reuses its capacity instead of allocating.
  std::vector<RunningJob> active_;
};

}  // namespace jsched::core
