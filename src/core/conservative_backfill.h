// Conservative backfilling — paper §5.2.
//
// "Conservative backfill will not increase the *projected* completion time
//  of a job submitted before the job used for backfilling. On the other
//  hand conservative backfill requires more computational effort than
//  EASY."
//
// Every queued job holds a reservation at the earliest point of the
// availability profile where it fits behind all higher-priority
// reservations. Reservations are computed from user estimates; when jobs
// finish early, the freed capacity is returned to the profile and the
// front of the plan is recomputed ("compression") so the queue keeps
// draining in priority order. Replanning in queue order can only move
// reservations earlier (capacity is monotone non-decreasing between
// plans), so no job's projected start is ever postponed — the conservative
// guarantee.
//
// Engineering notes (all paper-faithful, bounded for very deep queues):
//  * reservations exist for at most `reservation_depth` jobs at a time —
//    deeper queue positions wait FCFS behind the reserved set and are
//    promoted as it drains. At realistic backlogs (hundreds of jobs) every
//    job is reserved and behaviour is exact conservative backfilling.
//  * after each completion the first `replan_prefix` reservations are
//    recomputed; deeper reservations refresh as they surface. Setting
//    `full_compression` replans the whole reserved set instead (exact
//    compression — quadratic on deep queues, so it is additionally gated
//    by `compression_queue_limit`); the ablation bench measures the gap.
//  * reservations computed from estimates can fall at instants where no
//    completion event happens (a predecessor finished early); the
//    dispatcher exposes these via next_wakeup so the simulator revisits.
//  * compression is maintained incrementally and elided when it provably
//    cannot move anything — always exactly, the schedules stay
//    bit-identical to a from-scratch replan (the full-grid fingerprints in
//    BENCH_grid.json and the differential suite witness this):
//      - on-time completions (zero capacity returned, tracked by a
//        compression-debt flag) skip the replan outright;
//      - a replan first *screens* the window in queue order against the
//        live profile plus a capacity overlay standing in for the
//        reservations a scratch replan would have lifted, and keeps every
//        reservation whose screened fit equals its current start live in
//        the profile (suffix reuse). Only from the first position that
//        would actually move does it fall back to lift-and-re-place. Most
//        replans move nothing and become read-only screens.
#pragma once

#include <cstddef>
#include <queue>
#include <unordered_map>
#include <vector>

#include "core/dispatch.h"
#include "sim/profile.h"

namespace jsched::core {

struct ConservativeParams {
  std::size_t reservation_depth = 4096;
  /// Reservations re-planned (in queue order, from `now`) after each
  /// completion. 0 disables compression entirely: reservations then only
  /// fire at their original times (used by tests pinning the wakeup path).
  std::size_t replan_prefix = 64;
  /// Replan the entire reserved set after each completion instead of just
  /// the prefix, as long as the queue is short enough. Must be >= 1: a
  /// limit of 0 would gate full compression to never run (use
  /// full_compression = false for that).
  bool full_compression = false;
  std::size_t compression_queue_limit = 512;
  /// Use the pre-incremental lift-everything replan instead of the
  /// screened incremental one. The two are provably schedule-identical;
  /// this path is kept as the executable specification the differential
  /// tests compare against. Testing-only — never faster.
  bool scratch_replan = false;
};

class ConservativeBackfillDispatch final : public Dispatcher {
 public:
  explicit ConservativeBackfillDispatch(const ConservativeParams& params = {});

  std::string name() const override {
    return params_.full_compression ? "CONS-C" : "CONS";
  }

  void reset(const sim::Machine& machine, const JobStore& store) override;
  void on_enqueue(JobId id, Time now) override;
  void on_start(JobId id, Time now) override;
  void on_complete(JobId id, Time now, Time estimated_end,
                   const std::vector<JobId>& order) override;
  void on_reorder(const std::vector<JobId>& order, Time now) override;
  void on_capacity_change(Time now, int available_nodes,
                          const std::vector<JobId>& order,
                          const std::vector<RunningJob>& running) override;
  void adopt(Time now, const std::vector<JobId>& order,
             const std::vector<RunningJob>& running) override;
  void select(Time now, int free_nodes, const std::vector<JobId>& order,
              const std::vector<RunningJob>& running,
              std::vector<JobId>& starts) override;
  Time next_wakeup(Time now) const override;

  /// Replan accounting, reset() to zero. Exposed for tests and surfaced
  /// through the bench JSON so compression-cost wins stay measurable.
  struct ReplanStats {
    std::uint64_t completions = 0;      ///< on_complete deliveries
    std::uint64_t replans_elided = 0;   ///< debt-free completions, no replan
    std::uint64_t replans = 0;          ///< replan() invocations
    std::uint64_t replaced = 0;         ///< reservations lifted + re-placed
    std::uint64_t reused = 0;           ///< reservations kept without lifting
    std::uint64_t certified = 0;        ///< reused without even a screen walk
    std::uint64_t moved = 0;            ///< re-placements that changed start
    std::uint64_t cursor_restarts = 0;  ///< screen queries that re-anchored
  };

  /// Introspection for tests.
  Time reservation_of(JobId id) const;
  std::size_t reserved_count() const noexcept { return reserved_.size(); }
  const sim::Profile& profile() const noexcept { return profile_; }
  const ReplanStats& replan_stats() const noexcept { return stats_; }

 private:
  /// One entry of the re-planned window: a reserved job with its current
  /// reservation, in queue order.
  struct PlannedJob {
    JobId id;
    Time start;
    Duration estimate;
    int nodes;
  };

  void reserve(JobId id, Time from);
  void replan(const std::vector<JobId>& order, Time now, std::size_t limit);
  /// Incremental compression: exact screening for the first queue position
  /// whose scratch re-placement would move, then scratch from there.
  void replan_incremental(Time now);
  /// Lift reservations planned_[from..] out of the profile and re-place
  /// them in queue order from `now` — the scratch procedure both replan
  /// flavors reduce to.
  void replace_from(std::size_t from, Time now);
  void promote(const std::vector<JobId>& order, Time now);
  /// False for jobs wider than the machine's surviving capacity: reserving
  /// one would send earliest_fit hunting for a window that cannot exist
  /// while nodes are down. Such jobs stay parked (no reservation) until a
  /// capacity recovery re-admits them. Always true at full capacity.
  bool reservable(JobId id) const {
    return store_->get(id).nodes + down_nodes_ <= profile_.total_nodes();
  }

  ConservativeParams params_;
  const JobStore* store_ = nullptr;
  sim::Profile profile_{1};
  /// Nodes currently down (fault injection). Modeled in the profile as one
  /// open-ended allocation [outage instant, infinity): conservative —
  /// reservations never assume a repair time — and exact again the moment
  /// on_capacity_change re-plans at the recovered capacity.
  int down_nodes_ = 0;
  std::unordered_map<JobId, Time> reserved_;  // queued job -> reserved start
  ReplanStats stats_;
  // Per-replan scratch storage, members to keep the hot path allocation-free.
  std::vector<PlannedJob> planned_;
  std::vector<sim::CapacitySpan> spans_;
  sim::CapacityOverlay overlay_;
  sim::Profile::Cursor cursor_;
  // Cross-replan screening certificates. After every replan the plan is a
  // compressed fixed point: no planned reservation has an earlier fit.
  // That verdict stays exact while capacity only shrinks, so between
  // replans only the *growth* spans (early-completion releases,
  // normalization releases) can invalidate it — collected here and tested
  // with Profile::capacity_crossed. Jobs newly entering the replan window
  // carry no verdict and are always screened (prev_window_ remembers the
  // previous membership); events that rebuild the plan wholesale set
  // screen_all_ instead of enumerating growth.
  std::vector<sim::CapacitySpan> growth_;
  sim::CapacityOverlay growth_overlay_;
  std::vector<JobId> prev_window_;  // sorted ids of the last planned window
  bool screen_all_ = true;
  // True when the plan may no longer be the fixed point of a replay in
  // queue order: capacity was freed (early completion, normalization) or a
  // reservation was created out of queue position (promotion after a
  // reorder). While false, a replan would re-place every reservation
  // exactly where it is, so on-time completions skip compression outright.
  bool compression_debt_ = false;

  struct Wakeup {
    Time t;
    JobId id;
    bool operator>(const Wakeup& o) const noexcept {
      return t != o.t ? t > o.t : id > o.id;
    }
  };
  // Lazy min-heap over reservation times (stale entries skipped on pop).
  mutable std::priority_queue<Wakeup, std::vector<Wakeup>, std::greater<>>
      wakeups_;
};

}  // namespace jsched::core
