#include "core/drain_window.h"

#include <algorithm>
#include <stdexcept>

namespace jsched::core {

DrainWindowDispatch::DrainWindowDispatch(std::unique_ptr<Dispatcher> inner,
                                         PhaseWindow window)
    : inner_(std::move(inner)), window_(window) {
  if (!inner_) throw std::invalid_argument("DrainWindowDispatch: null inner");
}

std::string DrainWindowDispatch::name() const {
  const std::string n = inner_->name();
  return n.empty() ? "DRAIN" : n + "+DRAIN";
}

void DrainWindowDispatch::reset(const sim::Machine& machine,
                                const JobStore& store) {
  inner_->reset(machine, store);
  store_ = &store;
  queue_pending_ = false;
  vetoed_ = 0;
}

void DrainWindowDispatch::select(Time now, int free_nodes,
                                 const std::vector<JobId>& order,
                                 const std::vector<RunningJob>& running,
                                 std::vector<JobId>& starts) {
  queue_pending_ = !order.empty();
  if (window_.contains(now)) {  // the class owns the machine
    starts.clear();
    return;
  }

  const Time window_opens = window_.next_boundary(now);
  inner_->select(now, free_nodes, order, running, starts);
  const auto vetoed_it = std::remove_if(
      starts.begin(), starts.end(), [&](JobId id) {
        const Duration estimate = store_->get(id).estimate;
        return window_opens != kTimeInfinity && now + estimate > window_opens;
      });
  vetoed_ += static_cast<std::size_t>(starts.end() - vetoed_it);
  starts.erase(vetoed_it, starts.end());
  queue_pending_ = queue_pending_ && order.size() > starts.size();
}

Time DrainWindowDispatch::next_wakeup(Time now) const {
  Time wake = inner_->next_wakeup(now);
  if (queue_pending_) {
    // Retry as soon as the current (or next) window closes: jobs vetoed
    // for crossing the window start exactly then.
    Time boundary = window_.next_boundary(std::max<Time>(now, 0));
    if (!window_.contains(now) && boundary != kTimeInfinity) {
      boundary = window_.next_boundary(boundary);  // end of the next window
    }
    wake = std::min(wake, boundary);
  }
  return wake;
}

}  // namespace jsched::core
