// Wait-queue ordering policies.
//
// The paper's algorithm set factors cleanly into "in which order do
// waiting jobs stand in the list" (FCFS by submission; SMART and PSRS by
// recomputed off-line plans, §5.4/§5.5) times "how is the list dispatched
// onto the machine" (greedy head-only, whole-queue first fit, EASY or
// conservative backfilling, §5.1-§5.3). This header is the first factor.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/job_store.h"
#include "sim/machine.h"
#include "util/paged_table.h"
#include "util/time.h"

namespace jsched::core {

/// Maintains the ordered list of waiting jobs.
class OrderingPolicy {
 public:
  virtual ~OrderingPolicy() = default;

  virtual std::string name() const = 0;

  /// Drop all state. `store` outlives the policy and always contains every
  /// job previously passed to on_submit.
  virtual void reset(const sim::Machine& machine, const JobStore& store) = 0;

  /// A job entered the wait queue.
  virtual void on_submit(JobId id, Time now) = 0;

  /// A job left the wait queue (it was started).
  virtual void on_remove(JobId id, Time now) = 0;

  /// Current queue order, highest priority first. Invalidated by any
  /// mutation.
  virtual const std::vector<JobId>& order() const = 0;

  /// Increments whenever the *relative order* of already-queued jobs may
  /// have changed (appends and removals do not count). Conservative
  /// backfilling replans its reservations when this moves.
  virtual std::uint64_t version() const noexcept = 0;
};

/// Ordered job list with an id -> position index, shared by the ordering
/// policies. Removal previously scanned the whole queue with std::find
/// (O(Q) comparisons before the O(Q) erase shift); the index locates the
/// position in O(1) + a bounded hint scan instead.
///
/// The index is deliberately *stale-tolerant*: erasing position i shifts
/// the whole suffix left, and rewriting every shifted entry per removal
/// costs more than the memmove it rides on (it serializes on a
/// load-then-scattered-store chain). Instead, stored positions are upper
/// bounds — a removal only ever moves jobs left, never right — and a
/// lookup scans left from the hint to the true position. A full re-index
/// runs every kReindexPeriod removals, bounding the drift (and thus any
/// scan) by that constant; mid-queue insertions re-index their shifted
/// suffix exactly, which keeps the upper-bound invariant intact. JobIds
/// are dense workload indices, so the index is a paged dense table (not a
/// hash map): O(1) lookups, and hint pages are reclaimed as their id range
/// drains so index memory is O(live ids), not O(largest id ever queued) —
/// on a streamed multi-million-job trace a flat vector here would pin
/// 8 bytes per job forever.
class IndexedJobList {
 public:
  void clear();
  void push_back(JobId id);
  /// Insert `id` before position `index`, shifting the suffix right.
  void insert(std::size_t index, JobId id);
  /// Remove `id`, returning the position it held. Throws std::logic_error
  /// (prefixed with `who`) when the job is not queued.
  std::size_t remove(JobId id, const char* who);
  /// Replace the whole order (a replan); rebuilds the index.
  void assign(std::vector<JobId> fresh);
  const std::vector<JobId>& order() const noexcept { return order_; }
  std::size_t size() const noexcept { return order_.size(); }
  bool empty() const noexcept { return order_.empty(); }

 private:
  static constexpr std::size_t kReindexPeriod = 64;

  void reindex();

  std::vector<JobId> order_;
  // Indexed by JobId: absent when not queued, otherwise an upper bound on
  // the job's position, exact to within kReindexPeriod - 1.
  util::PagedTable<std::size_t> pos_;
  std::size_t removals_since_reindex_ = 0;
};

/// First-Come-First-Serve (paper §5.1): jobs ordered by submission time.
/// "It is fair as the completion time of each job is independent of any
/// job submitted later", needs no execution-time knowledge, and is the
/// order the classical Garey&Graham dispatcher ties-break with (§5.3).
class FcfsOrder final : public OrderingPolicy {
 public:
  std::string name() const override { return "FCFS"; }
  void reset(const sim::Machine& machine, const JobStore& store) override;
  void on_submit(JobId id, Time now) override;
  void on_remove(JobId id, Time now) override;
  const std::vector<JobId>& order() const override { return queue_.order(); }
  std::uint64_t version() const noexcept override { return 0; }

 private:
  IndexedJobList queue_;
};

/// FCFS within priority classes, higher class first (the policy layer's
/// Example 1: drug-design jobs "must be executed as soon as possible").
/// A newly submitted high-priority job is placed ahead of every waiting
/// lower-priority job but never preempts running ones (the machine has no
/// time sharing).
class PriorityFcfsOrder final : public OrderingPolicy {
 public:
  std::string name() const override { return "PRIO-FCFS"; }
  void reset(const sim::Machine& machine, const JobStore& store) override;
  void on_submit(JobId id, Time now) override;
  void on_remove(JobId id, Time now) override;
  const std::vector<JobId>& order() const override { return queue_.order(); }
  /// Insertions can place a job mid-queue, which changes relative order
  /// for dispatchers holding reservations; bump the version then.
  std::uint64_t version() const noexcept override { return version_; }

 private:
  const JobStore* store_ = nullptr;
  IndexedJobList queue_;
  std::uint64_t version_ = 1;
};

/// Shared machinery for SMART and PSRS: both are off-line algorithms that
/// the paper adapts by (a) using them only to compute an *order* for the
/// currently waiting jobs and (b) recomputing when the wait queue holds
/// too many jobs the last plan never saw:
///
///   "the schedule is recalculated when the ratio between the already
///    scheduled jobs in the wait queue to all the jobs in this queue
///    exceeds a certain value. In the example a ratio of 2/3 is used."
///
/// We read this as: recompute as soon as the fraction of *planned* jobs in
/// the queue drops below the threshold (new arrivals are unplanned).
class ReplanningOrder : public OrderingPolicy {
 public:
  explicit ReplanningOrder(double planned_ratio_threshold = 2.0 / 3.0);

  void reset(const sim::Machine& machine, const JobStore& store) override;
  void on_submit(JobId id, Time now) override;
  void on_remove(JobId id, Time now) override;
  const std::vector<JobId>& order() const override { return queue_.order(); }
  std::uint64_t version() const noexcept override { return version_; }

  /// Number of plan recomputations so far (introspection for tests).
  std::uint64_t replans() const noexcept { return replans_; }

 protected:
  /// Compute the full order of `jobs` (all currently waiting), best first.
  virtual std::vector<JobId> plan(const std::vector<JobId>& jobs) const = 0;

  const JobStore& store() const { return *store_; }
  int machine_nodes() const noexcept { return machine_nodes_; }

 private:
  void maybe_replan();

  double threshold_;
  const JobStore* store_ = nullptr;
  int machine_nodes_ = 1;
  IndexedJobList queue_;     // planned jobs ... unplanned tail (FCFS)
  std::size_t planned_ = 0;  // first `planned_` entries came from plan()
  std::uint64_t version_ = 1;
  std::uint64_t replans_ = 0;
};

}  // namespace jsched::core
