#include "core/list_scheduler.h"

#include <algorithm>
#include <stdexcept>

namespace jsched::core {

ListScheduler::ListScheduler(std::unique_ptr<OrderingPolicy> ordering,
                             std::unique_ptr<Dispatcher> dispatcher)
    : ordering_(std::move(ordering)), dispatcher_(std::move(dispatcher)) {
  if (!ordering_ || !dispatcher_) {
    throw std::invalid_argument("ListScheduler: null component");
  }
}

std::string ListScheduler::name() const {
  const std::string d = dispatcher_->name();
  return d.empty() ? ordering_->name() : ordering_->name() + "+" + d;
}

void ListScheduler::reset(const sim::Machine& machine) {
  store_.clear();
  running_.clear();
  ordering_->reset(machine, store_);
  dispatcher_->reset(machine, store_);
  seen_version_ = ordering_->version();
}

void ListScheduler::sync_order_version(Time now) {
  if (ordering_->version() != seen_version_) {
    seen_version_ = ordering_->version();
    dispatcher_->on_reorder(ordering_->order(), now);
  }
}

void ListScheduler::on_submit(const Submission& job, Time now) {
  store_.put(job);
  const std::uint64_t before = ordering_->version();
  ordering_->on_submit(job.id, now);
  if (ordering_->version() != before) {
    // The new job is covered by the reorder notification.
    seen_version_ = ordering_->version();
    dispatcher_->on_reorder(ordering_->order(), now);
  } else {
    dispatcher_->on_enqueue(job.id, now);
  }
}

void ListScheduler::on_complete(JobId id, Time now) {
  auto it = std::find_if(running_.begin(), running_.end(),
                         [&](const RunningJob& r) { return r.id == id; });
  if (it == running_.end()) {
    throw std::logic_error("ListScheduler: completion for job not running");
  }
  const Time estimated_end = it->estimated_end;
  running_.erase(it);
  dispatcher_->on_complete(id, now, estimated_end, ordering_->order());
  sync_order_version(now);
  // The job is finished: no component may consult it again (a fault
  // re-submission re-puts the id). Freeing the entry is what keeps the
  // store O(live jobs) in streaming runs.
  store_.erase(id);
}

void ListScheduler::on_capacity_change(Time now, int available_nodes) {
  dispatcher_->on_capacity_change(now, available_nodes, ordering_->order(),
                                  running_);
}

void ListScheduler::select_starts(Time now, int free_nodes,
                                  std::vector<JobId>& starts) {
  dispatcher_->select(now, free_nodes, ordering_->order(), running_, starts);
  for (JobId id : starts) {
    ordering_->on_remove(id, now);
    dispatcher_->on_start(id, now);
    const Job& j = store_.get(id);
    running_.push_back({id, now, now + j.estimate, j.nodes});
  }
  sync_order_version(now);
}

Time ListScheduler::next_wakeup(Time now) const {
  return dispatcher_->next_wakeup(now);
}

std::size_t ListScheduler::queue_length() const {
  return ordering_->order().size();
}

}  // namespace jsched::core
