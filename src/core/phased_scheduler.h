// Combining the selected algorithms (paper §7).
//
// Example 5's administrator picks *different* winners per objective —
// "the classical list scheduling algorithm for the weighted case [and]
// either SMART or PSRS together with some form of backfilling" for the
// unweighted case — and notes that "she must evaluate the effect of
// combining the selected algorithms". This scheduler is that combination:
// it holds one wait queue but switches the active (ordering, dispatcher)
// pair between the policy's day and night phases.
//
// On a phase flip the queue is re-ordered under the incoming policy and
// the incoming dispatcher adopts the machine state (running jobs and the
// new order); phase boundaries are surfaced through next_wakeup so flips
// happen on time even in event gaps.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/dispatch.h"
#include "core/job_store.h"
#include "core/ordering.h"
#include "sim/scheduler.h"
#include "util/time.h"

namespace jsched::core {

/// A recurring daily phase window (seconds of day, [start, end) with
/// wrap-around; optionally weekdays only, matching policy rules 5/6).
struct PhaseWindow {
  Duration start_second = 7 * kHour;
  Duration end_second = 20 * kHour;
  bool weekdays_only = true;

  /// True when t falls inside the window (day 0 is a Monday).
  bool contains(Time t) const noexcept;

  /// Earliest boundary strictly after t (entering or leaving the window).
  Time next_boundary(Time t) const noexcept;
};

class PhasedScheduler final : public sim::Scheduler {
 public:
  /// `day_*` are active while `window.contains(now)`, `night_*` otherwise.
  PhasedScheduler(PhaseWindow window,
                  std::unique_ptr<OrderingPolicy> day_order,
                  std::unique_ptr<Dispatcher> day_dispatch,
                  std::unique_ptr<OrderingPolicy> night_order,
                  std::unique_ptr<Dispatcher> night_dispatch);

  std::string name() const override;
  void reset(const sim::Machine& machine) override;
  void on_submit(const Submission& job, Time now) override;
  void on_complete(JobId id, Time now) override;
  void on_capacity_change(Time now, int available_nodes) override;
  void select_starts(Time now, int free_nodes,
                     std::vector<JobId>& starts) override;
  Time next_wakeup(Time now) const override;
  std::size_t queue_length() const override;

  /// Which phase is active (introspection for tests).
  bool in_day_phase() const noexcept { return day_active_; }
  std::size_t phase_flips() const noexcept { return flips_; }

 private:
  OrderingPolicy& order() { return day_active_ ? *day_order_ : *night_order_; }
  Dispatcher& dispatch() {
    return day_active_ ? *day_dispatch_ : *night_dispatch_;
  }
  const Dispatcher& dispatch() const {
    return day_active_ ? *day_dispatch_ : *night_dispatch_;
  }
  void sync_phase(Time now);
  void sync_order_version(Time now);

  PhaseWindow window_;
  std::unique_ptr<OrderingPolicy> day_order_;
  std::unique_ptr<Dispatcher> day_dispatch_;
  std::unique_ptr<OrderingPolicy> night_order_;
  std::unique_ptr<Dispatcher> night_dispatch_;

  JobStore store_;
  std::vector<RunningJob> running_;
  bool day_active_ = true;
  std::uint64_t seen_version_ = 0;
  std::size_t flips_ = 0;
  Time last_sync_ = -1;
  /// Machine size and last advertised capacity (fault injection). adopt()
  /// rebuilds the incoming dispatcher at full capacity, so a phase flip
  /// during an outage re-delivers on_capacity_change right after adopting.
  int machine_nodes_ = 0;
  int capacity_ = 0;
};

/// The paper's §7 outcome as a ready-made configuration: SMART-FFIA+EASY
/// (unweighted winner) on weekday daytimes, Garey&Graham (weighted winner)
/// on nights and weekends.
std::unique_ptr<sim::Scheduler> make_institution_b_combined();

}  // namespace jsched::core
