#include "core/ordering.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace jsched::core {

// --- IndexedJobList ---------------------------------------------------------

void IndexedJobList::clear() {
  order_.clear();
  pos_.clear();
  removals_since_reindex_ = 0;
}

void IndexedJobList::reindex() {
  for (std::size_t j = 0; j < order_.size(); ++j) pos_.put(order_[j], j);
  removals_since_reindex_ = 0;
}

void IndexedJobList::push_back(JobId id) {
  pos_.put(id, order_.size());
  order_.push_back(id);
}

void IndexedJobList::insert(std::size_t index, JobId id) {
  order_.insert(order_.begin() + static_cast<std::ptrdiff_t>(index), id);
  // The shifted suffix must be re-indexed exactly: a right shift would
  // break the "stored position >= true position" invariant remove() scans
  // under, so stale hints are not an option here.
  for (std::size_t j = index; j < order_.size(); ++j) pos_.put(order_[j], j);
}

std::size_t IndexedJobList::remove(JobId id, const char* who) {
  if (!pos_.contains(id)) {
    throw std::logic_error(std::string(who) + ": removing job not in queue");
  }
  // The stored position is an upper bound whose drift is capped by the
  // reindex period; scan left from the hint to the true position.
  std::size_t i = std::min(pos_.get(id), order_.size() - 1);
  while (order_[i] != id) --i;
  pos_.erase(id);
  order_.erase(order_.begin() + static_cast<std::ptrdiff_t>(i));
  if (++removals_since_reindex_ >= kReindexPeriod) reindex();
  return i;
}

void IndexedJobList::assign(std::vector<JobId> fresh) {
  order_ = std::move(fresh);
  reindex();
}

// --- policies ---------------------------------------------------------------

void FcfsOrder::reset(const sim::Machine&, const JobStore&) { queue_.clear(); }

void FcfsOrder::on_submit(JobId id, Time) { queue_.push_back(id); }

void FcfsOrder::on_remove(JobId id, Time) { queue_.remove(id, "FcfsOrder"); }

void PriorityFcfsOrder::reset(const sim::Machine&, const JobStore& store) {
  store_ = &store;
  queue_.clear();
  version_ = 1;
}

void PriorityFcfsOrder::on_submit(JobId id, Time) {
  const std::int32_t cls = store_->get(id).priority_class;
  // Insert behind the last queued job with priority >= cls (stable FCFS
  // inside a class).
  const std::vector<JobId>& order = queue_.order();
  std::size_t i = order.size();
  while (i > 0 && store_->get(order[i - 1]).priority_class < cls) --i;
  const bool mid_queue = i != order.size();
  queue_.insert(i, id);
  if (mid_queue) ++version_;
}

void PriorityFcfsOrder::on_remove(JobId id, Time) {
  queue_.remove(id, "PriorityFcfsOrder");
}

ReplanningOrder::ReplanningOrder(double planned_ratio_threshold)
    : threshold_(planned_ratio_threshold) {
  if (threshold_ <= 0.0 || threshold_ > 1.0) {
    throw std::invalid_argument("ReplanningOrder: threshold out of (0,1]");
  }
}

void ReplanningOrder::reset(const sim::Machine& machine, const JobStore& store) {
  machine.validate();
  store_ = &store;
  machine_nodes_ = machine.nodes;
  queue_.clear();
  planned_ = 0;
  version_ = 1;
  replans_ = 0;
}

void ReplanningOrder::on_submit(JobId id, Time) {
  // Unplanned jobs queue FCFS behind the planned prefix until a replan
  // folds them in.
  queue_.push_back(id);
  maybe_replan();
}

void ReplanningOrder::on_remove(JobId id, Time) {
  const std::size_t i = queue_.remove(id, "ReplanningOrder");
  if (i < planned_) --planned_;
}

void ReplanningOrder::maybe_replan() {
  if (queue_.empty()) return;
  const double ratio =
      static_cast<double>(planned_) / static_cast<double>(queue_.size());
  if (ratio >= threshold_) return;
  queue_.assign(plan(queue_.order()));
  planned_ = queue_.size();
  ++version_;
  ++replans_;
}

}  // namespace jsched::core
