#include "core/ordering.h"

#include <algorithm>
#include <stdexcept>

namespace jsched::core {

void FcfsOrder::reset(const sim::Machine&, const JobStore&) { order_.clear(); }

void FcfsOrder::on_submit(JobId id, Time) { order_.push_back(id); }

void FcfsOrder::on_remove(JobId id, Time) {
  auto it = std::find(order_.begin(), order_.end(), id);
  if (it == order_.end()) {
    throw std::logic_error("FcfsOrder: removing job not in queue");
  }
  order_.erase(it);
}

void PriorityFcfsOrder::reset(const sim::Machine&, const JobStore& store) {
  store_ = &store;
  order_.clear();
  version_ = 1;
}

void PriorityFcfsOrder::on_submit(JobId id, Time) {
  const std::int32_t cls = store_->get(id).priority_class;
  // Insert behind the last queued job with priority >= cls (stable FCFS
  // inside a class).
  auto it = order_.end();
  while (it != order_.begin() &&
         store_->get(*std::prev(it)).priority_class < cls) {
    --it;
  }
  const bool mid_queue = it != order_.end();
  order_.insert(it, id);
  if (mid_queue) ++version_;
}

void PriorityFcfsOrder::on_remove(JobId id, Time) {
  auto it = std::find(order_.begin(), order_.end(), id);
  if (it == order_.end()) {
    throw std::logic_error("PriorityFcfsOrder: removing job not in queue");
  }
  order_.erase(it);
}

ReplanningOrder::ReplanningOrder(double planned_ratio_threshold)
    : threshold_(planned_ratio_threshold) {
  if (threshold_ <= 0.0 || threshold_ > 1.0) {
    throw std::invalid_argument("ReplanningOrder: threshold out of (0,1]");
  }
}

void ReplanningOrder::reset(const sim::Machine& machine, const JobStore& store) {
  machine.validate();
  store_ = &store;
  machine_nodes_ = machine.nodes;
  order_.clear();
  planned_ = 0;
  version_ = 1;
  replans_ = 0;
}

void ReplanningOrder::on_submit(JobId id, Time) {
  // Unplanned jobs queue FCFS behind the planned prefix until a replan
  // folds them in.
  order_.push_back(id);
  maybe_replan();
}

void ReplanningOrder::on_remove(JobId id, Time) {
  auto it = std::find(order_.begin(), order_.end(), id);
  if (it == order_.end()) {
    throw std::logic_error("ReplanningOrder: removing job not in queue");
  }
  if (static_cast<std::size_t>(it - order_.begin()) < planned_) --planned_;
  order_.erase(it);
}

void ReplanningOrder::maybe_replan() {
  if (order_.empty()) return;
  const double ratio = static_cast<double>(planned_) /
                       static_cast<double>(order_.size());
  if (ratio >= threshold_) return;
  order_ = plan(order_);
  planned_ = order_.size();
  ++version_;
  ++replans_;
}

}  // namespace jsched::core
