// PSRS — Preemptive Smith-Ratio Scheduling (Schwiegelshohn) — paper §5.5.
//
// The off-line algorithm builds a *preemptive* schedule:
//  1. jobs are ordered by their modified Smith ratio, weight divided by
//     (required nodes x execution time), largest first;
//  2. jobs needing at most half the machine are list-scheduled greedily;
//     a *wide* job (more than half the nodes) that has waited long enough
//     preempts all running jobs, runs alone to completion, and the
//     preempted jobs resume afterwards.
//
// The target machine has no time sharing, so the paper converts the
// preemptive plan into a job *order*:
//  1. two geometric sequences of time instants (factor 2, different
//     offsets) define bins — one sequence for wide jobs, one for small;
//  2. jobs are assigned to bins by their completion time in the preemptive
//     schedule, keeping the Smith-ratio order inside each bin;
//  3. the final order alternates between the two sequences, starting with
//     the small-job sequence: S0 W0 S1 W1 ...
//
// The reference [13] fixes the wide-job waiting rule; it is not spelled
// out in this paper, so the delay is a parameter: a wide job preempts once
// it has waited `wide_delay_factor x` its own execution time (default 1.0,
// i.e. a wide job tolerates a stretch of 2 before it forces its way in).
//
// As with SMART, the on-line adaptation computes only the wait-queue
// order from user estimates and replans via ReplanningOrder.
#pragma once

#include <vector>

#include "core/ordering.h"
#include "util/time.h"

namespace jsched::core {

struct PsrsParams {
  /// Job weight in the Smith ratio (unit or estimated area). Note that
  /// with area weights every modified Smith ratio equals 1, so the order
  /// degenerates to submission order — visible in the paper's Table 3,
  /// where weighted PSRS+EASY exactly matches FCFS+EASY.
  WeightKind weight = WeightKind::kUnit;

  /// A wide job preempts after waiting this multiple of its own time.
  double wide_delay_factor = 1.0;

  /// Offsets of the two geometric (factor 2) completion-time sequences.
  double small_bin_offset = 1.0;
  double wide_bin_offset = 1.5;

  /// Replan threshold (see ReplanningOrder).
  double planned_ratio_threshold = 2.0 / 3.0;
};

class PsrsOrder final : public ReplanningOrder {
 public:
  explicit PsrsOrder(const PsrsParams& params);

  std::string name() const override { return "PSRS"; }

 protected:
  std::vector<JobId> plan(const std::vector<JobId>& jobs) const override;

 private:
  PsrsParams params_;
};

/// Completion times of the internal preemptive schedule (exposed for tests:
/// the conversion and the preemption rule are verified against these).
struct PsrsPreemptiveResult {
  std::vector<JobId> smith_order;        // ratio-descending
  std::vector<Duration> completion;      // indexed like smith_order
  std::vector<bool> wide;                // indexed like smith_order
  std::size_t preemptions = 0;
};

PsrsPreemptiveResult psrs_preemptive_schedule(const std::vector<JobId>& jobs,
                                              const JobStore& store,
                                              int machine_nodes,
                                              const PsrsParams& params);

/// Full off-line PSRS pass: preemptive schedule + bin conversion.
std::vector<JobId> psrs_plan(const std::vector<JobId>& jobs,
                             const JobStore& store, int machine_nodes,
                             const PsrsParams& params);

}  // namespace jsched::core
