// Construction of the paper's algorithm grid.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/conservative_backfill.h"
#include "core/job_store.h"
#include "core/psrs.h"
#include "core/smart.h"
#include "sim/scheduler.h"

namespace jsched::core {

enum class OrderKind { kFcfs, kSmartFfia, kSmartNfiw, kPsrs };
enum class DispatchKind { kList, kFirstFit, kConservative, kEasy };

const char* to_string(OrderKind k);
const char* to_string(DispatchKind k);

/// Full specification of one evaluated algorithm.
struct AlgorithmSpec {
  OrderKind order = OrderKind::kFcfs;
  DispatchKind dispatch = DispatchKind::kList;
  /// Objective the algorithm optimizes internally (paper §7 runs the whole
  /// grid once per objective).
  WeightKind weight = WeightKind::kUnit;

  SmartParams smart{};              // .weight is overridden by `weight`
  PsrsParams psrs{};                // .weight is overridden by `weight`
  ConservativeParams conservative{};

  std::string display_name() const;
};

std::unique_ptr<sim::Scheduler> make_scheduler(const AlgorithmSpec& spec);

/// Parse a display-style algorithm name into a spec: an ordering policy
/// ("FCFS", "PSRS", "SMART-FFIA", "SMART-NFIW") optionally followed by a
/// dispatcher ("+LIST", "+CONS", "+CONS-C", "+EASY"); "GG" / "G&G" /
/// "GAREY&GRAHAM" selects Garey&Graham. Case-insensitive; the inverse of
/// AlgorithmSpec::display_name for every grid member. Throws
/// std::invalid_argument on an unknown name.
AlgorithmSpec parse_spec(const std::string& name,
                         WeightKind weight = WeightKind::kUnit);

/// The 13 configurations of the paper's evaluation (Tables 3-6 rows x
/// columns): {FCFS, PSRS, SMART-FFIA, SMART-NFIW} x {list, conservative,
/// EASY} plus Garey&Graham (list only — "application of backfilling will
/// be of no benefit for this method").
std::vector<AlgorithmSpec> paper_grid(WeightKind weight);

}  // namespace jsched::core
