#include "core/dispatch.h"

namespace jsched::core {

std::vector<JobId> HeadOnlyDispatch::select(Time, int free_nodes,
                                            const std::vector<JobId>& order,
                                            const std::vector<RunningJob>&) {
  std::vector<JobId> starts;
  for (JobId id : order) {
    const int need = store_->get(id).nodes;
    if (need > free_nodes) break;  // head blocks the rest of the list
    free_nodes -= need;
    starts.push_back(id);
  }
  return starts;
}

std::vector<JobId> FirstFitDispatch::select(Time, int free_nodes,
                                            const std::vector<JobId>& order,
                                            const std::vector<RunningJob>&) {
  std::vector<JobId> starts;
  for (JobId id : order) {
    if (free_nodes == 0) break;
    const int need = store_->get(id).nodes;
    if (need <= free_nodes) {
      free_nodes -= need;
      starts.push_back(id);
    }
  }
  return starts;
}

}  // namespace jsched::core
