#include "core/dispatch.h"

namespace jsched::core {

void HeadOnlyDispatch::select(Time, int free_nodes,
                              const std::vector<JobId>& order,
                              const std::vector<RunningJob>&,
                              std::vector<JobId>& starts) {
  starts.clear();
  for (JobId id : order) {
    const int need = store_->get(id).nodes;
    if (need > free_nodes) break;  // head blocks the rest of the list
    free_nodes -= need;
    starts.push_back(id);
  }
}

void FirstFitDispatch::select(Time, int free_nodes,
                              const std::vector<JobId>& order,
                              const std::vector<RunningJob>&,
                              std::vector<JobId>& starts) {
  starts.clear();
  for (JobId id : order) {
    if (free_nodes == 0) break;
    const int need = store_->get(id).nodes;
    if (need <= free_nodes) {
      free_nodes -= need;
      starts.push_back(id);
    }
  }
}

}  // namespace jsched::core
