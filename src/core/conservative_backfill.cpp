#include "core/conservative_backfill.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>

namespace jsched::core {

namespace {

/// Merged breakpoints a single screening query may walk before giving up
/// and treating the job as moved (an early cutoff is exact — see
/// replan_incremental). Screens span [now, reservation]; at realistic
/// replan windows that is a few hundred breakpoints, so the budget only
/// trips on pathological profiles where scratch re-placement is the
/// cheaper tool anyway.
constexpr std::size_t kScreenStepBudget = 2048;

/// Merged breakpoints one certificate-revalidation crossing test may walk
/// before conservatively answering "crossed" (which merely demotes the job
/// to the individual screen walk, still exact). The walk is confined to
/// the growth region — a handful of release spans — so the budget only
/// exists as a backstop.
constexpr std::size_t kCrossingStepBudget = 512;

Time span_end(Time start, Duration duration) {
  return start > kTimeInfinity - duration ? kTimeInfinity : start + duration;
}

}  // namespace

ConservativeBackfillDispatch::ConservativeBackfillDispatch(
    const ConservativeParams& params)
    : params_(params) {
  if (params_.reservation_depth < 1) {
    throw std::invalid_argument("ConservativeBackfill: reservation_depth < 1");
  }
  if (params_.compression_queue_limit < 1) {
    throw std::invalid_argument(
        "ConservativeBackfill: compression_queue_limit < 1 — a zero limit "
        "would gate full compression to never run; use full_compression = "
        "false to disable it");
  }
  // replan_prefix is unsigned; a negative value passed by a caller wraps to
  // the top of the size_t range. No real prefix comes close (use
  // full_compression to replan everything), so reject the wrapped half.
  if (params_.replan_prefix >= std::numeric_limits<std::size_t>::max() / 2) {
    throw std::invalid_argument(
        "ConservativeBackfill: replan_prefix is implausibly large — was a "
        "negative value converted to std::size_t?");
  }
}

void ConservativeBackfillDispatch::reset(const sim::Machine& machine,
                                         const JobStore& store) {
  store_ = &store;
  profile_ = sim::Profile(machine.nodes);
  down_nodes_ = 0;
  reserved_.clear();
  wakeups_ = {};
  compression_debt_ = false;
  stats_ = {};
  cursor_ = {};  // anchored in the profile just replaced
  growth_.clear();
  prev_window_.clear();
  screen_all_ = true;
}

void ConservativeBackfillDispatch::reserve(JobId id, Time from) {
  const Job& j = store_->get(id);
  const Time start = profile_.earliest_fit(from, j.estimate, j.nodes);
  profile_.allocate(start, j.estimate, j.nodes);
  reserved_.insert_or_assign(id, start);
  wakeups_.push({start, id});
}

void ConservativeBackfillDispatch::on_enqueue(JobId id, Time now) {
  if (reserved_.size() < params_.reservation_depth && reservable(id)) {
    reserve(id, now);
  }
}

void ConservativeBackfillDispatch::on_start(JobId id, Time now) {
  // select() already removed the reservation entry; the job's allocation
  // [now, now+estimate) stays in the profile and now represents the
  // running job (on_complete returns the unused tail when the job beats
  // its estimate).
  assert(!reserved_.contains(id));
  (void)id;
  (void)now;
}

void ConservativeBackfillDispatch::on_complete(
    JobId id, Time now, Time estimated_end, const std::vector<JobId>& order) {
  ++stats_.completions;
  if (!compression_debt_) ++stats_.replans_elided;
  if (now < estimated_end) {
    const Job& j = store_->get(id);
    profile_.release(now, estimated_end - now, j.nodes);
    growth_.push_back({now, estimated_end, j.nodes});
    compression_debt_ = true;
  }
  // Compression only moves reservations when capacity was freed since the
  // plan was last consistent. An on-time completion (now == estimated_end)
  // returns zero capacity, so the replan would re-place every reservation
  // exactly where it already is — skip it. compression_debt_ tracks
  // whether any capacity has been freed since the last replan that covered
  // the whole reserved set.
  //
  // A *partial* replan (replan_prefix smaller than the reserved set)
  // deliberately never clears the debt: reservations beyond the prefix
  // were planned against the pre-completion profile, and as the queue
  // drains they surface into the prefix window — each later completion
  // must keep re-screening the window so those stale reservations are
  // refreshed when they arrive (PrefixReplanOnlyTouchesTheFront pins the
  // refresh, PartialReplanKeepsDebt pins the re-run). The incremental
  // screen makes the repeated runs cheap: when nothing in the window can
  // move, the replan is read-only and touches no profile state.
  if (compression_debt_) {
    if (reserved_.empty()) {
      compression_debt_ = false;  // nothing to compress: trivially covered
    } else if (params_.full_compression &&
               reserved_.size() <= params_.compression_queue_limit) {
      replan(order, now, reserved_.size());
    } else if (params_.replan_prefix > 0) {
      replan(order, now, params_.replan_prefix);
    }
  }
  profile_.compact(now);
  // Replanning leaves stale heap entries behind; rebuild once they
  // dominate so the heap stays proportional to the reserved set.
  if (wakeups_.size() > 4 * reserved_.size() + 1024) {
    wakeups_ = {};
    for (const auto& [rid, start] : reserved_) wakeups_.push({start, rid});
  }
}

void ConservativeBackfillDispatch::replan(const std::vector<JobId>& order,
                                          Time now, std::size_t limit) {
  ++stats_.replans;
  // Re-plan the first `limit` reserved jobs (queue order) from `now`.
  // Capacity only ever increased since the previous plan, so each
  // re-placed reservation is at or before its old time — the conservative
  // guarantee survives compression.
  const bool full_coverage = limit >= reserved_.size();

  planned_.clear();
  for (JobId id : order) {
    if (planned_.size() >= limit) break;
    auto it = reserved_.find(id);
    if (it == reserved_.end()) continue;  // dormant (beyond depth)
    const Job& j = store_->get(id);
    planned_.push_back({id, it->second, j.estimate, j.nodes});
  }
  if (!planned_.empty()) {
    if (params_.scratch_replan) {
      replace_from(0, now);  // reference semantics: lift and re-place all
    } else {
      replan_incremental(now);
    }
  }
  // The plan is a compressed fixed point again: every window member now
  // holds a standing certificate "no earlier fit exists", valid until
  // capacity grows across its width (growth_ collects the candidate
  // spans). Members are recorded so jobs surfacing into the window later
  // — which carry no certificate — are recognized and screened in full.
  prev_window_.clear();
  prev_window_.reserve(planned_.size());
  for (const PlannedJob& p : planned_) prev_window_.push_back(p.id);
  std::sort(prev_window_.begin(), prev_window_.end());
  growth_.clear();
  screen_all_ = false;
  if (full_coverage) compression_debt_ = false;
}

void ConservativeBackfillDispatch::replan_incremental(Time now) {
  // Phase 1 — screening. The scratch procedure lifts every planned
  // reservation, then re-places them in queue order; screening finds the
  // first queue position whose re-placement would actually move, without
  // touching the profile. The overlay carries the allocations of the
  // not-yet-reached window positions k..end, so while positions 0..k-1
  // are proven unmoved (their allocations, being identical, stay live),
  // `profile_ + overlay` is bit-for-bit the profile the scratch procedure
  // would query before placing position k. A job whose screened fit
  // equals its reservation is reused in place; the first mismatch ends
  // the screen. Exactness does not depend on the cutoff being tight:
  // scratch re-placement of an unmoved job is a no-op on the canonical
  // profile, so handing any suffix starting at or before the true first
  // mover to replace_from() reproduces the scratch schedule exactly —
  // which is why the screen may also bail out early on budget.
  spans_.clear();
  spans_.reserve(planned_.size());
  for (const PlannedJob& p : planned_) {
    spans_.push_back({p.start, span_end(p.start, p.estimate), p.nodes});
  }
  overlay_.build(spans_);
  // Window entrants are capacity growth too: when the certificates were
  // proven, an entrant's reservation was a dormant blocker outside the
  // window; now the overlay lifts it, so a certified predecessor may
  // legitimately move into its slot. Fold their spans into the growth set
  // the crossing test checks. (Entrants created since the last replan
  // never blocked anything — counting them is merely conservative.)
  if (!screen_all_) {
    for (const PlannedJob& p : planned_) {
      if (!std::binary_search(prev_window_.begin(), prev_window_.end(),
                              p.id)) {
        growth_.push_back({p.start, span_end(p.start, p.estimate), p.nodes});
      }
    }
  }
  growth_overlay_.build(growth_);
  const std::uint64_t restarts_before = cursor_.restarts();
  std::size_t first_affected = planned_.size();
  for (std::size_t k = 0; k < planned_.size(); ++k) {
    const PlannedJob& p = planned_[k];
    bool unmoved;
    if (p.start == now) {
      // Cannot move: the screened fit is >= now and <= its old start.
      unmoved = true;
    } else if (p.start < now) {
      // Overdue reservation whose wakeup has not been delivered yet; the
      // scratch procedure re-places it from `now`, which is a move.
      unmoved = false;
    } else if (!screen_all_ &&
               std::binary_search(prev_window_.begin(), prev_window_.end(),
                                  p.id) &&
               !profile_.capacity_crossed(overlay_, growth_overlay_, now,
                                          span_end(p.start, p.estimate),
                                          p.nodes, kCrossingStepBudget)) {
      // Certificate revalidated. The previous replan proved no earlier
      // fit exists for this job; with positions 0..k-1 unmoved,
      // `profile_ + overlay` differs from the capacity it was proven
      // against only by the growth spans (shrinks cannot create fits,
      // re-placements of later window positions are lifted out either
      // way). A new fit would need the combined capacity to cross the
      // job's width inside the growth region — just tested false — so
      // the verdict stands without walking [now, start) at all.
      unmoved = true;
      ++stats_.certified;
    } else {
      // No certificate (new window member, post-rebuild, or the growth
      // crossed this width) — the individual bounded walk over
      // `profile_ + overlay` is the exact arbiter.
      const Time fit =
          profile_.earliest_fit_with(overlay_, cursor_, now, p.estimate,
                                     p.nodes, p.start, kScreenStepBudget);
      unmoved = fit == p.start;  // moved — or kTimeInfinity on budget
    }
    if (!unmoved) {
      first_affected = k;
      break;
    }
    overlay_.subtract(p.start, span_end(p.start, p.estimate), p.nodes);
    ++stats_.reused;
  }
  stats_.cursor_restarts += cursor_.restarts() - restarts_before;
  // Phase 2 — scratch from the first affected position (absent entirely
  // in the common zero-move replan).
  if (first_affected < planned_.size()) replace_from(first_affected, now);
}

void ConservativeBackfillDispatch::replace_from(std::size_t from, Time now) {
  {
    // A burst of releases with no interleaved queries: defer the
    // profile's segment-tree maintenance to the first re-placement query.
    sim::Profile::BulkUpdate bulk(profile_);
    for (std::size_t k = from; k < planned_.size(); ++k) {
      profile_.release(planned_[k].start, planned_[k].estimate,
                       planned_[k].nodes);
    }
  }
  for (std::size_t k = from; k < planned_.size(); ++k) {
    const PlannedJob& p = planned_[k];
    const Time start = profile_.earliest_fit(now, p.estimate, p.nodes);
    profile_.allocate(start, p.estimate, p.nodes);
    ++stats_.replaced;
    // When the reservation lands exactly where it was, the map entry is
    // already right and a valid heap entry for (start, id) still exists —
    // skip the redundant store and push.
    if (start != p.start) {
      ++stats_.moved;
      reserved_.find(p.id)->second = start;
      wakeups_.push({start, p.id});
    }
  }
}

void ConservativeBackfillDispatch::on_reorder(const std::vector<JobId>& order,
                                              Time now) {
  // A new priority order invalidates every reservation: lift all of them
  // and re-place in the new order.
  {
    sim::Profile::BulkUpdate bulk(profile_);
    for (const auto& [id, start] : reserved_) {
      const Job& j = store_->get(id);
      profile_.release(start, j.estimate, j.nodes);
    }
  }
  const std::size_t count = reserved_.size();
  std::size_t planned = 0;
  wakeups_ = {};
  for (JobId id : order) {
    if (planned >= count) break;
    if (!reserved_.contains(id)) continue;
    reserve(id, now);
    ++planned;
  }
  // Every reservation was just re-placed from `now`: the plan is fully
  // compressed, so the next on-time completion has nothing to replan.
  compression_debt_ = false;
  growth_.clear();
  screen_all_ = true;  // placements outside replan(): no certificates
}

void ConservativeBackfillDispatch::on_capacity_change(
    Time now, int available_nodes, const std::vector<JobId>& order,
    const std::vector<RunningJob>& running) {
  (void)running;
  // Every reservation assumed the old capacity: lift them all, adjust the
  // open-ended outage allocation to the new down count, and re-place in
  // queue order. Shrinking is always legal — after the simulator's kills,
  // running jobs use at most `available_nodes`, so with reservations
  // lifted the profile has at least the extra outage free at every
  // instant. Growing releases the recovered slice of the outage.
  const int down = profile_.total_nodes() - available_nodes;
  {
    sim::Profile::BulkUpdate bulk(profile_);
    for (const auto& [id, start] : reserved_) {
      const Job& j = store_->get(id);
      profile_.release(start, j.estimate, j.nodes);
    }
    if (down > down_nodes_) {
      profile_.allocate(now, kTimeInfinity, down - down_nodes_);
    } else if (down < down_nodes_) {
      profile_.release(now, kTimeInfinity, down_nodes_ - down);
    }
  }
  down_nodes_ = down;
  reserved_.clear();
  wakeups_ = {};
  std::size_t planned = 0;
  for (JobId id : order) {
    if (planned >= params_.reservation_depth) break;
    if (!reservable(id)) continue;  // parked until capacity recovers
    reserve(id, now);
    ++planned;
  }
  // The whole reserved set was just re-placed from `now`: fully
  // compressed by construction.
  compression_debt_ = false;
  growth_.clear();
  screen_all_ = true;  // placements outside replan(): no certificates
}

void ConservativeBackfillDispatch::adopt(
    Time now, const std::vector<JobId>& order,
    const std::vector<RunningJob>& running) {
  // Rebuild the profile from scratch: running jobs occupy capacity until
  // their estimated ends, then every queued job gets a fresh reservation
  // in the adopted order. The rebuild assumes full capacity; when nodes
  // are down the owner (PhasedScheduler) re-delivers on_capacity_change
  // right after adopting, restoring the outage allocation.
  profile_ = sim::Profile(profile_.total_nodes());
  down_nodes_ = 0;
  reserved_.clear();
  wakeups_ = {};
  {
    sim::Profile::BulkUpdate bulk(profile_);
    for (const RunningJob& r : running) {
      if (r.estimated_end > now) {
        profile_.allocate(now, r.estimated_end - now, r.nodes);
      }
    }
  }
  for (JobId id : order) {
    if (reserved_.size() >= params_.reservation_depth) break;
    reserve(id, now);
  }
  compression_debt_ = false;  // fresh plan: fully compressed by construction
  growth_.clear();
  screen_all_ = true;  // placements outside replan(): no certificates
}

void ConservativeBackfillDispatch::promote(const std::vector<JobId>& order,
                                           Time now) {
  if (reserved_.size() >= params_.reservation_depth ||
      reserved_.size() >= order.size()) {
    return;
  }
  for (JobId id : order) {
    if (reserved_.size() >= params_.reservation_depth) break;
    if (!reserved_.contains(id) && reservable(id)) {
      reserve(id, now);
      // The promoted job may rank anywhere in the current order (e.g. a
      // SMART arrival folded in by a reorder before it was ever enqueued
      // here), but earliest-fit placed it behind every existing
      // reservation — the plan is no longer the fixed point of a replay
      // in queue order, so compression has real work again.
      compression_debt_ = true;
    }
  }
}

void ConservativeBackfillDispatch::select(Time now, int free_nodes,
                                          const std::vector<JobId>& order,
                                          const std::vector<RunningJob>&,
                                          std::vector<JobId>& starts) {
  promote(order, now);

  starts.clear();
  [[maybe_unused]] int budget = free_nodes;

  // Start every reservation that is due. Capacity is guaranteed by the
  // profile, so they all fit together.
  while (!wakeups_.empty() && wakeups_.top().t <= now) {
    const Wakeup w = wakeups_.top();
    wakeups_.pop();
    auto it = reserved_.find(w.id);
    if (it == reserved_.end() || it->second != w.t) continue;  // stale
    const Job& j = store_->get(w.id);
    assert(j.nodes <= budget);
    budget -= j.nodes;
    // Normalize the allocation when the reservation was planned for an
    // earlier instant that had no event of its own, then retire the
    // reservation here so duplicate heap entries cannot start it twice.
    if (w.t < now) {
      profile_.release(w.t, j.estimate, j.nodes);
      profile_.allocate(now, j.estimate, j.nodes);
      growth_.push_back({w.t, span_end(w.t, j.estimate), j.nodes});
      compression_debt_ = true;  // the shifted tail perturbed the plan
    }
    reserved_.erase(it);
    starts.push_back(w.id);
  }

  if (!starts.empty()) profile_.compact(now);
}

Time ConservativeBackfillDispatch::next_wakeup(Time) const {
  while (!wakeups_.empty()) {
    const Wakeup w = wakeups_.top();
    auto it = reserved_.find(w.id);
    if (it == reserved_.end() || it->second != w.t) {
      wakeups_.pop();  // stale
      continue;
    }
    return w.t;
  }
  return kTimeInfinity;
}

Time ConservativeBackfillDispatch::reservation_of(JobId id) const {
  auto it = reserved_.find(id);
  return it == reserved_.end() ? kTimeInfinity : it->second;
}

}  // namespace jsched::core
