#include "core/conservative_backfill.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace jsched::core {

ConservativeBackfillDispatch::ConservativeBackfillDispatch(
    const ConservativeParams& params)
    : params_(params) {
  if (params_.reservation_depth < 1) {
    throw std::invalid_argument("ConservativeBackfill: reservation_depth < 1");
  }
}

void ConservativeBackfillDispatch::reset(const sim::Machine& machine,
                                         const JobStore& store) {
  store_ = &store;
  profile_ = sim::Profile(machine.nodes);
  down_nodes_ = 0;
  reserved_.clear();
  wakeups_ = {};
  compression_debt_ = false;
}

void ConservativeBackfillDispatch::reserve(JobId id, Time from) {
  const Job& j = store_->get(id);
  const Time start = profile_.earliest_fit(from, j.estimate, j.nodes);
  profile_.allocate(start, j.estimate, j.nodes);
  reserved_.insert_or_assign(id, start);
  wakeups_.push({start, id});
}

void ConservativeBackfillDispatch::on_enqueue(JobId id, Time now) {
  if (reserved_.size() < params_.reservation_depth && reservable(id)) {
    reserve(id, now);
  }
}

void ConservativeBackfillDispatch::on_start(JobId id, Time now) {
  // select() already removed the reservation entry; the job's allocation
  // [now, now+estimate) stays in the profile and now represents the
  // running job (on_complete returns the unused tail when the job beats
  // its estimate).
  assert(!reserved_.contains(id));
  (void)id;
  (void)now;
}

void ConservativeBackfillDispatch::on_complete(
    JobId id, Time now, Time estimated_end, const std::vector<JobId>& order) {
  if (now < estimated_end) {
    const Job& j = store_->get(id);
    profile_.release(now, estimated_end - now, j.nodes);
    compression_debt_ = true;
  }
  // Compression only moves reservations when capacity was freed since the
  // plan was last consistent. An on-time completion (now == estimated_end)
  // returns zero capacity, so the replan would re-place every reservation
  // exactly where it already is — skip it. compression_debt_ tracks
  // whether any capacity has been freed since the last replan that covered
  // the whole reserved set.
  if (compression_debt_) {
    if (reserved_.empty()) {
      compression_debt_ = false;  // nothing to compress: trivially covered
    } else if (params_.full_compression &&
               reserved_.size() <= params_.compression_queue_limit) {
      replan(order, now, reserved_.size());
    } else if (params_.replan_prefix > 0) {
      replan(order, now, params_.replan_prefix);
    }
  }
  profile_.compact(now);
  // Replanning leaves stale heap entries behind; rebuild once they
  // dominate so the heap stays proportional to the reserved set.
  if (wakeups_.size() > 4 * reserved_.size() + 1024) {
    wakeups_ = {};
    for (const auto& [rid, start] : reserved_) wakeups_.push({start, rid});
  }
}

void ConservativeBackfillDispatch::replan(const std::vector<JobId>& order,
                                          Time now, std::size_t limit) {
  // Lift the first `limit` reserved jobs (queue order) out of the profile
  // and re-place them from `now`. Capacity only ever increased since the
  // previous plan, so each re-placed reservation is at or before its old
  // time — the conservative guarantee survives compression.
  const bool full_coverage = limit >= reserved_.size();

  // Elision: a leading run of reservations already at `now` provably
  // cannot move. Re-placing the first such job would search from `now`
  // with its own slot freed, so earliest_fit returns `now` again; by
  // induction the same holds for each next job while the run lasts. Skip
  // lifting them entirely. The run must be leading — once any reservation
  // is lifted or re-placed, later jobs could in principle shift.
  std::size_t planned = 0;
  std::size_t pinned = 0;
  {
    // A replan is a burst of releases with no interleaved queries: defer
    // the profile's segment-tree maintenance to phase 2's first query.
    sim::Profile::BulkUpdate bulk(profile_);
    bool prefix_intact = true;
    for (JobId id : order) {
      if (planned >= limit) break;
      auto it = reserved_.find(id);
      if (it == reserved_.end()) continue;  // dormant (beyond depth)
      ++planned;
      if (prefix_intact && it->second == now) {
        ++pinned;
        continue;
      }
      prefix_intact = false;
      const Job& j = store_->get(id);
      profile_.release(it->second, j.estimate, j.nodes);
    }
  }
  const std::size_t lifted_total = planned - pinned;
  if (lifted_total == 0) {
    if (full_coverage) compression_debt_ = false;
    return;  // the whole replanned prefix is pinned at `now`
  }

  planned = 0;
  std::size_t skip = pinned;
  for (JobId id : order) {
    if (planned >= limit) break;
    auto it = reserved_.find(id);
    if (it == reserved_.end()) continue;
    ++planned;
    if (skip > 0) {
      --skip;  // pinned prefix: never lifted, nothing to re-place
      continue;
    }
    const Job& j = store_->get(id);
    const Time start = profile_.earliest_fit(now, j.estimate, j.nodes);
    profile_.allocate(start, j.estimate, j.nodes);
    // When the reservation lands exactly where it was, the map entry is
    // already right and a valid heap entry for (start, id) still exists —
    // skip the redundant store and push.
    if (start != it->second) {
      it->second = start;
      wakeups_.push({start, id});
    }
  }
  if (full_coverage) compression_debt_ = false;
}

void ConservativeBackfillDispatch::on_reorder(const std::vector<JobId>& order,
                                              Time now) {
  // A new priority order invalidates every reservation: lift all of them
  // and re-place in the new order.
  {
    sim::Profile::BulkUpdate bulk(profile_);
    for (const auto& [id, start] : reserved_) {
      const Job& j = store_->get(id);
      profile_.release(start, j.estimate, j.nodes);
    }
  }
  const std::size_t count = reserved_.size();
  std::size_t planned = 0;
  wakeups_ = {};
  for (JobId id : order) {
    if (planned >= count) break;
    if (!reserved_.contains(id)) continue;
    reserve(id, now);
    ++planned;
  }
  // Every reservation was just re-placed from `now`: the plan is fully
  // compressed, so the next on-time completion has nothing to replan.
  compression_debt_ = false;
}

void ConservativeBackfillDispatch::on_capacity_change(
    Time now, int available_nodes, const std::vector<JobId>& order,
    const std::vector<RunningJob>& running) {
  (void)running;
  // Every reservation assumed the old capacity: lift them all, adjust the
  // open-ended outage allocation to the new down count, and re-place in
  // queue order. Shrinking is always legal — after the simulator's kills,
  // running jobs use at most `available_nodes`, so with reservations
  // lifted the profile has at least the extra outage free at every
  // instant. Growing releases the recovered slice of the outage.
  const int down = profile_.total_nodes() - available_nodes;
  {
    sim::Profile::BulkUpdate bulk(profile_);
    for (const auto& [id, start] : reserved_) {
      const Job& j = store_->get(id);
      profile_.release(start, j.estimate, j.nodes);
    }
    if (down > down_nodes_) {
      profile_.allocate(now, kTimeInfinity, down - down_nodes_);
    } else if (down < down_nodes_) {
      profile_.release(now, kTimeInfinity, down_nodes_ - down);
    }
  }
  down_nodes_ = down;
  reserved_.clear();
  wakeups_ = {};
  std::size_t planned = 0;
  for (JobId id : order) {
    if (planned >= params_.reservation_depth) break;
    if (!reservable(id)) continue;  // parked until capacity recovers
    reserve(id, now);
    ++planned;
  }
  // The whole reserved set was just re-placed from `now`: fully
  // compressed by construction.
  compression_debt_ = false;
}

void ConservativeBackfillDispatch::adopt(
    Time now, const std::vector<JobId>& order,
    const std::vector<RunningJob>& running) {
  // Rebuild the profile from scratch: running jobs occupy capacity until
  // their estimated ends, then every queued job gets a fresh reservation
  // in the adopted order. The rebuild assumes full capacity; when nodes
  // are down the owner (PhasedScheduler) re-delivers on_capacity_change
  // right after adopting, restoring the outage allocation.
  profile_ = sim::Profile(profile_.total_nodes());
  down_nodes_ = 0;
  reserved_.clear();
  wakeups_ = {};
  {
    sim::Profile::BulkUpdate bulk(profile_);
    for (const RunningJob& r : running) {
      if (r.estimated_end > now) {
        profile_.allocate(now, r.estimated_end - now, r.nodes);
      }
    }
  }
  for (JobId id : order) {
    if (reserved_.size() >= params_.reservation_depth) break;
    reserve(id, now);
  }
  compression_debt_ = false;  // fresh plan: fully compressed by construction
}

void ConservativeBackfillDispatch::promote(const std::vector<JobId>& order,
                                           Time now) {
  if (reserved_.size() >= params_.reservation_depth ||
      reserved_.size() >= order.size()) {
    return;
  }
  for (JobId id : order) {
    if (reserved_.size() >= params_.reservation_depth) break;
    if (!reserved_.contains(id) && reservable(id)) {
      reserve(id, now);
      // The promoted job may rank anywhere in the current order (e.g. a
      // SMART arrival folded in by a reorder before it was ever enqueued
      // here), but earliest-fit placed it behind every existing
      // reservation — the plan is no longer the fixed point of a replay
      // in queue order, so compression has real work again.
      compression_debt_ = true;
    }
  }
}

void ConservativeBackfillDispatch::select(Time now, int free_nodes,
                                          const std::vector<JobId>& order,
                                          const std::vector<RunningJob>&,
                                          std::vector<JobId>& starts) {
  promote(order, now);

  starts.clear();
  [[maybe_unused]] int budget = free_nodes;

  // Start every reservation that is due. Capacity is guaranteed by the
  // profile, so they all fit together.
  while (!wakeups_.empty() && wakeups_.top().t <= now) {
    const Wakeup w = wakeups_.top();
    wakeups_.pop();
    auto it = reserved_.find(w.id);
    if (it == reserved_.end() || it->second != w.t) continue;  // stale
    const Job& j = store_->get(w.id);
    assert(j.nodes <= budget);
    budget -= j.nodes;
    // Normalize the allocation when the reservation was planned for an
    // earlier instant that had no event of its own, then retire the
    // reservation here so duplicate heap entries cannot start it twice.
    if (w.t < now) {
      profile_.release(w.t, j.estimate, j.nodes);
      profile_.allocate(now, j.estimate, j.nodes);
      compression_debt_ = true;  // the shifted tail perturbed the plan
    }
    reserved_.erase(it);
    starts.push_back(w.id);
  }

  if (!starts.empty()) profile_.compact(now);
}

Time ConservativeBackfillDispatch::next_wakeup(Time) const {
  while (!wakeups_.empty()) {
    const Wakeup w = wakeups_.top();
    auto it = reserved_.find(w.id);
    if (it == reserved_.end() || it->second != w.t) {
      wakeups_.pop();  // stale
      continue;
    }
    return w.t;
  }
  return kTimeInfinity;
}

Time ConservativeBackfillDispatch::reservation_of(JobId id) const {
  auto it = reserved_.find(id);
  return it == reserved_.end() ? kTimeInfinity : it->second;
}

}  // namespace jsched::core
