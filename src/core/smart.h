// SMART (Turek, Schwiegelshohn, Wolf, Yu) — paper §5.4.
//
// Off-line shelf algorithm with a constant worst-case factor for (weighted)
// response time:
//  1. jobs are assigned to bins by execution time; bin upper bounds form a
//     geometric sequence ]0,1], ]1,gamma], ]gamma,gamma^2], ...
//  2. within a bin, jobs are packed onto shelves (all jobs of a shelf start
//     concurrently) — two variants:
//       FFIA: First Fit Increasing Area — sort by area (nodes x time)
//             ascending, place each job on the first shelf of its bin with
//             room, new shelf on top otherwise;
//       NFIW: Next Fit Increasing Width-to-Weight — sort by nodes/weight
//             ascending, fill the current shelf, open a new one when full;
//  3. shelves are sequenced by Smith's rule: sum of shelf weights divided
//     by the shelf's maximal execution time, largest ratio first.
//
// The on-line adaptation (the administrator's modification in the paper)
// lives in ReplanningOrder: SMART only ever produces the wait-queue order,
// user estimates stand in for execution times, and the plan is recomputed
// when the queue holds too many unplanned jobs.
#pragma once

#include <vector>

#include "core/ordering.h"

namespace jsched::core {

enum class SmartVariant { kFfia, kNfiw };

struct SmartParams {
  SmartVariant variant = SmartVariant::kFfia;
  /// Geometric bin ratio; "the parameter gamma is chosen to be 2".
  double gamma = 2.0;
  /// Job weight used in shelf Smith ratios (unit or estimated area).
  WeightKind weight = WeightKind::kUnit;
  /// Replan threshold (see ReplanningOrder).
  double planned_ratio_threshold = 2.0 / 3.0;
};

class SmartOrder final : public ReplanningOrder {
 public:
  explicit SmartOrder(const SmartParams& params);

  std::string name() const override;

 protected:
  std::vector<JobId> plan(const std::vector<JobId>& jobs) const override;

 private:
  SmartParams params_;
};

/// The pure off-line SMART pass, exposed for tests and benchmarks: given
/// jobs (all assumed available), returns the shelf-sequenced order.
std::vector<JobId> smart_plan(const std::vector<JobId>& jobs,
                              const JobStore& store, int machine_nodes,
                              const SmartParams& params);

}  // namespace jsched::core
