// Composition of an OrderingPolicy with a Dispatcher into an on-line
// scheduler — the paper's architecture in one class: every evaluated
// algorithm is "a job order" (FCFS / SMART / PSRS) "plus a greedy list
// dispatch" (head-only, Garey&Graham first fit, EASY or conservative
// backfilling).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/dispatch.h"
#include "core/job_store.h"
#include "core/ordering.h"
#include "sim/scheduler.h"

namespace jsched::core {

class ListScheduler final : public sim::Scheduler {
 public:
  ListScheduler(std::unique_ptr<OrderingPolicy> ordering,
                std::unique_ptr<Dispatcher> dispatcher);

  std::string name() const override;
  void reset(const sim::Machine& machine) override;
  void on_submit(const Submission& job, Time now) override;
  void on_complete(JobId id, Time now) override;
  void on_capacity_change(Time now, int available_nodes) override;
  void select_starts(Time now, int free_nodes,
                     std::vector<JobId>& starts) override;
  Time next_wakeup(Time now) const override;
  std::size_t queue_length() const override;

  /// Introspection for tests.
  const OrderingPolicy& ordering() const { return *ordering_; }
  const Dispatcher& dispatcher() const { return *dispatcher_; }
  const std::vector<RunningJob>& running() const { return running_; }

 private:
  void sync_order_version(Time now);

  std::unique_ptr<OrderingPolicy> ordering_;
  std::unique_ptr<Dispatcher> dispatcher_;
  JobStore store_;
  std::vector<RunningJob> running_;
  std::uint64_t seen_version_ = 0;
};

}  // namespace jsched::core
