// Recurring machine-drain windows (paper Example 4).
//
// "Every weekday at 10am the entire machine must be available to a
//  theoretical chemistry class for 1 hour. [...] as users are not able to
//  provide accurate execution time estimates for their jobs no scheduling
//  algorithm can generate good schedules."
//
// This decorator wraps any *stateless* dispatcher (head-only list, G&G
// first fit, EASY) and vetoes starts that would — by the user's estimate —
// still be running when the next drain window opens, and starts nothing
// while a window is open. Because the veto works on estimates, a job that
// overruns its estimate still violates the window: the decorator enforces
// best effort, and metrics::idle_node_seconds measures what the class
// actually got. Exactly the dependence between policy rules and estimate
// quality that Example 4 is about.
//
// Not composable with ConservativeBackfillDispatch (its reservations
// assume every job it selects actually starts); the factory-level
// configurations pair it with EASY or first fit.
#pragma once

#include <memory>

#include "core/dispatch.h"
#include "core/phased_scheduler.h"  // PhaseWindow

namespace jsched::core {

class DrainWindowDispatch final : public Dispatcher {
 public:
  DrainWindowDispatch(std::unique_ptr<Dispatcher> inner, PhaseWindow window);

  std::string name() const override;
  void reset(const sim::Machine& machine, const JobStore& store) override;
  void on_enqueue(JobId id, Time now) override { inner_->on_enqueue(id, now); }
  void on_start(JobId id, Time now) override { inner_->on_start(id, now); }
  void on_complete(JobId id, Time now, Time estimated_end,
                   const std::vector<JobId>& order) override {
    inner_->on_complete(id, now, estimated_end, order);
  }
  void on_reorder(const std::vector<JobId>& order, Time now) override {
    inner_->on_reorder(order, now);
  }
  // The default adopt() would only replay on_reorder, losing the running
  // set a stateful inner needs to rebuild its profile; forward it whole.
  void adopt(Time now, const std::vector<JobId>& order,
             const std::vector<RunningJob>& running) override {
    inner_->adopt(now, order, running);
  }
  void select(Time now, int free_nodes, const std::vector<JobId>& order,
              const std::vector<RunningJob>& running,
              std::vector<JobId>& starts) override;
  Time next_wakeup(Time now) const override;

  /// Starts vetoed so far (introspection for tests).
  std::size_t vetoed() const noexcept { return vetoed_; }

 private:
  std::unique_ptr<Dispatcher> inner_;
  PhaseWindow window_;
  const JobStore* store_ = nullptr;
  bool queue_pending_ = false;
  std::size_t vetoed_ = 0;
};

}  // namespace jsched::core
