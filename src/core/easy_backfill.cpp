#include "core/easy_backfill.h"

#include <algorithm>

namespace jsched::core {

void EasyBackfillDispatch::select(Time now, int free_nodes,
                                  const std::vector<JobId>& order,
                                  const std::vector<RunningJob>& running,
                                  std::vector<JobId>& starts) {
  starts.clear();

  // Greedy phase: start head jobs while they fit.
  std::size_t head = 0;
  while (head < order.size()) {
    const Job& j = store_->get(order[head]);
    if (j.nodes > free_nodes) break;
    free_nodes -= j.nodes;
    starts.push_back(order[head]);
    ++head;
  }
  if (head >= order.size()) return;

  // Reservation for the head: walk estimated completions until enough
  // nodes accumulate. The active set (running jobs + this round's greedy
  // starts, in that order so the unstable sort below sees the exact same
  // sequence) is only materialized when a reservation is actually needed —
  // the everything-started case above skips the copy entirely.
  active_.assign(running.begin(), running.end());
  for (JobId id : starts) {
    const Job& j = store_->get(id);
    active_.push_back({id, now, now + j.estimate, j.nodes});
  }
  const Job& head_job = store_->get(order[head]);
  std::sort(active_.begin(), active_.end(),
            [](const RunningJob& a, const RunningJob& b) {
              return a.estimated_end < b.estimated_end;
            });
  Time shadow = now;
  int avail = free_nodes;
  for (const auto& r : active_) {
    if (avail >= head_job.nodes) break;
    avail += r.nodes;
    shadow = r.estimated_end;
  }
  // `avail` nodes are free once the head can start; whatever the head does
  // not need may be held past the shadow time by backfilled jobs.
  int extra = avail - head_job.nodes;

  // Backfill phase: any later job may start now if it fits and does not
  // disturb the head's reservation.
  for (std::size_t i = head + 1; i < order.size() && free_nodes > 0; ++i) {
    const Job& j = store_->get(order[i]);
    if (j.nodes > free_nodes) continue;
    const bool ends_before_shadow = now + j.estimate <= shadow;
    if (ends_before_shadow || j.nodes <= extra) {
      free_nodes -= j.nodes;
      if (!ends_before_shadow) extra -= j.nodes;
      starts.push_back(order[i]);
    }
  }
}

}  // namespace jsched::core
