#include "core/factory.h"

#include <stdexcept>

#include "core/easy_backfill.h"
#include "core/list_scheduler.h"

namespace jsched::core {

const char* to_string(OrderKind k) {
  switch (k) {
    case OrderKind::kFcfs: return "FCFS";
    case OrderKind::kSmartFfia: return "SMART-FFIA";
    case OrderKind::kSmartNfiw: return "SMART-NFIW";
    case OrderKind::kPsrs: return "PSRS";
  }
  return "?";
}

const char* to_string(DispatchKind k) {
  switch (k) {
    case DispatchKind::kList: return "List";
    case DispatchKind::kFirstFit: return "G&G";
    case DispatchKind::kConservative: return "Backfilling";
    case DispatchKind::kEasy: return "EASY-Backfilling";
  }
  return "?";
}

std::string AlgorithmSpec::display_name() const {
  if (dispatch == DispatchKind::kFirstFit) return "Garey&Graham";
  std::string n = to_string(order);
  switch (dispatch) {
    case DispatchKind::kList: break;
    case DispatchKind::kConservative:
      n += conservative.full_compression ? "+CONS-C" : "+CONS";
      break;
    case DispatchKind::kEasy: n += "+EASY"; break;
    case DispatchKind::kFirstFit: break;
  }
  return n;
}

std::unique_ptr<sim::Scheduler> make_scheduler(const AlgorithmSpec& spec) {
  std::unique_ptr<OrderingPolicy> order;
  switch (spec.order) {
    case OrderKind::kFcfs:
      order = std::make_unique<FcfsOrder>();
      break;
    case OrderKind::kSmartFfia:
    case OrderKind::kSmartNfiw: {
      SmartParams p = spec.smart;
      p.variant = spec.order == OrderKind::kSmartFfia ? SmartVariant::kFfia
                                                      : SmartVariant::kNfiw;
      p.weight = spec.weight;
      order = std::make_unique<SmartOrder>(p);
      break;
    }
    case OrderKind::kPsrs: {
      PsrsParams p = spec.psrs;
      p.weight = spec.weight;
      order = std::make_unique<PsrsOrder>(p);
      break;
    }
  }

  std::unique_ptr<Dispatcher> dispatch;
  switch (spec.dispatch) {
    case DispatchKind::kList:
      dispatch = std::make_unique<HeadOnlyDispatch>();
      break;
    case DispatchKind::kFirstFit:
      if (spec.order != OrderKind::kFcfs) {
        throw std::invalid_argument(
            "Garey&Graham uses the submission order (ties broken "
            "arbitrarily); combine FirstFit with FCFS");
      }
      dispatch = std::make_unique<FirstFitDispatch>();
      break;
    case DispatchKind::kConservative:
      dispatch = std::make_unique<ConservativeBackfillDispatch>(spec.conservative);
      break;
    case DispatchKind::kEasy:
      dispatch = std::make_unique<EasyBackfillDispatch>();
      break;
  }

  return std::make_unique<ListScheduler>(std::move(order), std::move(dispatch));
}

std::vector<AlgorithmSpec> paper_grid(WeightKind weight) {
  std::vector<AlgorithmSpec> grid;
  const OrderKind orders[] = {OrderKind::kFcfs, OrderKind::kPsrs,
                              OrderKind::kSmartFfia, OrderKind::kSmartNfiw};
  const DispatchKind dispatches[] = {DispatchKind::kList,
                                     DispatchKind::kConservative,
                                     DispatchKind::kEasy};
  for (OrderKind o : orders) {
    for (DispatchKind d : dispatches) {
      AlgorithmSpec s;
      s.order = o;
      s.dispatch = d;
      s.weight = weight;
      grid.push_back(s);
    }
  }
  AlgorithmSpec gg;
  gg.order = OrderKind::kFcfs;
  gg.dispatch = DispatchKind::kFirstFit;
  gg.weight = weight;
  grid.push_back(gg);
  return grid;
}

}  // namespace jsched::core
