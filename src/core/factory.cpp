#include "core/factory.h"

#include <cctype>
#include <stdexcept>

#include "core/easy_backfill.h"
#include "core/list_scheduler.h"

namespace jsched::core {

const char* to_string(OrderKind k) {
  switch (k) {
    case OrderKind::kFcfs: return "FCFS";
    case OrderKind::kSmartFfia: return "SMART-FFIA";
    case OrderKind::kSmartNfiw: return "SMART-NFIW";
    case OrderKind::kPsrs: return "PSRS";
  }
  return "?";
}

const char* to_string(DispatchKind k) {
  switch (k) {
    case DispatchKind::kList: return "List";
    case DispatchKind::kFirstFit: return "G&G";
    case DispatchKind::kConservative: return "Backfilling";
    case DispatchKind::kEasy: return "EASY-Backfilling";
  }
  return "?";
}

std::string AlgorithmSpec::display_name() const {
  if (dispatch == DispatchKind::kFirstFit) return "Garey&Graham";
  std::string n = to_string(order);
  switch (dispatch) {
    case DispatchKind::kList: break;
    case DispatchKind::kConservative:
      n += conservative.full_compression ? "+CONS-C" : "+CONS";
      break;
    case DispatchKind::kEasy: n += "+EASY"; break;
    case DispatchKind::kFirstFit: break;
  }
  return n;
}

std::unique_ptr<sim::Scheduler> make_scheduler(const AlgorithmSpec& spec) {
  std::unique_ptr<OrderingPolicy> order;
  switch (spec.order) {
    case OrderKind::kFcfs:
      order = std::make_unique<FcfsOrder>();
      break;
    case OrderKind::kSmartFfia:
    case OrderKind::kSmartNfiw: {
      SmartParams p = spec.smart;
      p.variant = spec.order == OrderKind::kSmartFfia ? SmartVariant::kFfia
                                                      : SmartVariant::kNfiw;
      p.weight = spec.weight;
      order = std::make_unique<SmartOrder>(p);
      break;
    }
    case OrderKind::kPsrs: {
      PsrsParams p = spec.psrs;
      p.weight = spec.weight;
      order = std::make_unique<PsrsOrder>(p);
      break;
    }
  }

  std::unique_ptr<Dispatcher> dispatch;
  switch (spec.dispatch) {
    case DispatchKind::kList:
      dispatch = std::make_unique<HeadOnlyDispatch>();
      break;
    case DispatchKind::kFirstFit:
      if (spec.order != OrderKind::kFcfs) {
        throw std::invalid_argument(
            "Garey&Graham uses the submission order (ties broken "
            "arbitrarily); combine FirstFit with FCFS");
      }
      dispatch = std::make_unique<FirstFitDispatch>();
      break;
    case DispatchKind::kConservative:
      dispatch = std::make_unique<ConservativeBackfillDispatch>(spec.conservative);
      break;
    case DispatchKind::kEasy:
      dispatch = std::make_unique<EasyBackfillDispatch>();
      break;
  }

  return std::make_unique<ListScheduler>(std::move(order), std::move(dispatch));
}

AlgorithmSpec parse_spec(const std::string& name, WeightKind weight) {
  std::string upper;
  upper.reserve(name.size());
  for (const char c : name) {
    upper += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  std::string order = upper;
  std::string dispatch;
  if (const auto plus = upper.find('+'); plus != std::string::npos) {
    order = upper.substr(0, plus);
    dispatch = upper.substr(plus + 1);
  }

  AlgorithmSpec spec;
  spec.weight = weight;
  if (order == "GG" || order == "G&G" || order == "GAREY&GRAHAM") {
    if (!dispatch.empty()) {
      throw std::invalid_argument("parse_spec: Garey&Graham takes no "
                                  "dispatcher suffix: " + name);
    }
    spec.order = OrderKind::kFcfs;
    spec.dispatch = DispatchKind::kFirstFit;
    return spec;
  }
  if (order == "FCFS") {
    spec.order = OrderKind::kFcfs;
  } else if (order == "PSRS") {
    spec.order = OrderKind::kPsrs;
  } else if (order == "SMART-FFIA") {
    spec.order = OrderKind::kSmartFfia;
  } else if (order == "SMART-NFIW") {
    spec.order = OrderKind::kSmartNfiw;
  } else {
    throw std::invalid_argument("parse_spec: unknown ordering policy: " +
                                name);
  }
  if (dispatch.empty() || dispatch == "LIST") {
    spec.dispatch = DispatchKind::kList;
  } else if (dispatch == "EASY") {
    spec.dispatch = DispatchKind::kEasy;
  } else if (dispatch == "CONS") {
    spec.dispatch = DispatchKind::kConservative;
  } else if (dispatch == "CONS-C") {
    spec.dispatch = DispatchKind::kConservative;
    spec.conservative.full_compression = true;
  } else {
    throw std::invalid_argument("parse_spec: unknown dispatcher: " + name);
  }
  return spec;
}

std::vector<AlgorithmSpec> paper_grid(WeightKind weight) {
  std::vector<AlgorithmSpec> grid;
  const OrderKind orders[] = {OrderKind::kFcfs, OrderKind::kPsrs,
                              OrderKind::kSmartFfia, OrderKind::kSmartNfiw};
  const DispatchKind dispatches[] = {DispatchKind::kList,
                                     DispatchKind::kConservative,
                                     DispatchKind::kEasy};
  for (OrderKind o : orders) {
    for (DispatchKind d : dispatches) {
      AlgorithmSpec s;
      s.order = o;
      s.dispatch = d;
      s.weight = weight;
      grid.push_back(s);
    }
  }
  AlgorithmSpec gg;
  gg.order = OrderKind::kFcfs;
  gg.dispatch = DispatchKind::kFirstFit;
  gg.weight = weight;
  grid.push_back(gg);
  return grid;
}

}  // namespace jsched::core
