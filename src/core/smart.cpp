#include "core/smart.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

namespace jsched::core {
namespace {

/// Bin index of an execution time under geometric bounds ]0,1], ]1,g],
/// ]g,g^2], ...: the smallest k with t <= g^(k-1) scaled so that k=0 is
/// ]0,1].
std::size_t bin_index(double t, double gamma) {
  if (t <= 1.0) return 0;
  // k = ceil(log_gamma(t)); guard against floating-point edges by checking
  // the neighbors.
  auto k = static_cast<std::size_t>(std::ceil(std::log(t) / std::log(gamma)));
  while (k > 0 && std::pow(gamma, static_cast<double>(k - 1)) >= t) --k;
  while (std::pow(gamma, static_cast<double>(k)) < t) ++k;
  return k;
}

struct Shelf {
  std::vector<JobId> jobs;
  int used_nodes = 0;
  double weight_sum = 0.0;
  double max_time = 0.0;
  std::size_t bin = 0;
  std::size_t index_in_bin = 0;  // creation order, for deterministic ties

  double smith_ratio() const noexcept {
    return max_time > 0.0 ? weight_sum / max_time : 0.0;
  }
};

}  // namespace

std::vector<JobId> smart_plan(const std::vector<JobId>& jobs,
                              const JobStore& store, int machine_nodes,
                              const SmartParams& params) {
  if (params.gamma <= 1.0) throw std::invalid_argument("SMART: gamma <= 1");
  if (machine_nodes < 1) throw std::invalid_argument("SMART: machine_nodes < 1");

  // Step 1: bins by (estimated) execution time.
  std::map<std::size_t, std::vector<JobId>> bins;
  for (JobId id : jobs) {
    const Job& j = store.get(id);
    bins[bin_index(static_cast<double>(j.estimate), params.gamma)].push_back(id);
  }

  // Step 2: pack each bin's jobs onto shelves.
  std::vector<Shelf> shelves;
  for (auto& [bin, members] : bins) {
    // Variant-specific job order inside the bin.
    if (params.variant == SmartVariant::kFfia) {
      // First Fit Increasing Area: smallest (estimated) area first.
      std::stable_sort(members.begin(), members.end(), [&](JobId a, JobId b) {
        return store.get(a).estimated_area() < store.get(b).estimated_area();
      });
    } else {
      // Next Fit Increasing Width-to-Weight: ascending nodes/weight.
      std::stable_sort(members.begin(), members.end(), [&](JobId a, JobId b) {
        const Job& ja = store.get(a);
        const Job& jb = store.get(b);
        const double ra = static_cast<double>(ja.nodes) /
                          scheduling_weight(ja, params.weight);
        const double rb = static_cast<double>(jb.nodes) /
                          scheduling_weight(jb, params.weight);
        return ra < rb;
      });
    }

    const std::size_t bin_first_shelf = shelves.size();
    for (JobId id : members) {
      const Job& j = store.get(id);
      Shelf* target = nullptr;
      if (params.variant == SmartVariant::kFfia) {
        // All shelves of this bin are considered, first fit.
        for (std::size_t s = bin_first_shelf; s < shelves.size(); ++s) {
          if (shelves[s].used_nodes + j.nodes <= machine_nodes) {
            target = &shelves[s];
            break;
          }
        }
      } else {
        // Only the current (last) shelf of this bin is considered.
        if (shelves.size() > bin_first_shelf &&
            shelves.back().used_nodes + j.nodes <= machine_nodes) {
          target = &shelves.back();
        }
      }
      if (target == nullptr) {
        Shelf s;
        s.bin = bin;
        s.index_in_bin = shelves.size() - bin_first_shelf;
        shelves.push_back(std::move(s));
        target = &shelves.back();
      }
      target->jobs.push_back(id);
      target->used_nodes += j.nodes;
      target->weight_sum += scheduling_weight(j, params.weight);
      target->max_time =
          std::max(target->max_time, static_cast<double>(j.estimate));
    }
  }

  // Step 3: Smith's rule across all shelves, largest ratio first.
  std::stable_sort(shelves.begin(), shelves.end(),
                   [](const Shelf& a, const Shelf& b) {
                     if (a.smith_ratio() != b.smith_ratio()) {
                       return a.smith_ratio() > b.smith_ratio();
                     }
                     if (a.bin != b.bin) return a.bin < b.bin;
                     return a.index_in_bin < b.index_in_bin;
                   });

  std::vector<JobId> order;
  order.reserve(jobs.size());
  for (const Shelf& s : shelves) {
    order.insert(order.end(), s.jobs.begin(), s.jobs.end());
  }
  return order;
}

SmartOrder::SmartOrder(const SmartParams& params)
    : ReplanningOrder(params.planned_ratio_threshold), params_(params) {}

std::string SmartOrder::name() const {
  return params_.variant == SmartVariant::kFfia ? "SMART-FFIA" : "SMART-NFIW";
}

std::vector<JobId> SmartOrder::plan(const std::vector<JobId>& jobs) const {
  return smart_plan(jobs, store(), machine_nodes(), params_);
}

}  // namespace jsched::core
