// Submission-data storage shared by ordering policies and dispatchers.
#pragma once

#include "util/paged_table.h"
#include "workload/job.h"

namespace jsched::core {

/// Dense JobId -> submission data. Only data legitimately visible to an
/// on-line scheduler is stored (the simulator scrubs `runtime` before
/// on_submit, so the copies here carry runtime == 0).
///
/// Backed by a paged table so a streaming simulation that erases finished
/// jobs keeps O(live jobs) memory instead of O(all ids ever submitted);
/// without erasure the paging is invisible (pages only accumulate).
class JobStore {
 public:
  void clear() { jobs_.clear(); }

  void put(const Job& j) { jobs_.put(j.id, j); }

  void put(const Submission& s) { put(s.to_job()); }

  const Job& get(JobId id) const { return jobs_.get(id); }

  /// Forget a finished job; its page is freed once every job on it is
  /// forgotten. A later put() of the same id (fault re-submission)
  /// re-creates the entry.
  void erase(JobId id) { jobs_.erase(id); }

  /// One past the largest id ever stored (monotone; survives erase()).
  std::size_t capacity() const noexcept { return jobs_.high_water(); }

  /// Jobs currently stored.
  std::size_t size() const noexcept { return jobs_.size(); }

  /// Allocated pages (memory-bound introspection for tests).
  std::size_t pages_allocated() const noexcept {
    return jobs_.pages_allocated();
  }

 private:
  util::PagedTable<Job> jobs_;
};

/// Which job weight an algorithm optimizes for (paper §4): the unweighted
/// average response time uses weight 1; the weighted variant uses the
/// job's resource consumption. On-line algorithms only know estimates, so
/// their internal weight is nodes x *estimated* time.
enum class WeightKind {
  kUnit,
  kEstimatedArea,
};

inline double scheduling_weight(const Job& j, WeightKind k) {
  return k == WeightKind::kUnit ? 1.0 : j.estimated_area();
}

inline const char* to_string(WeightKind k) {
  return k == WeightKind::kUnit ? "unit" : "area";
}

}  // namespace jsched::core
