// Submission-data storage shared by ordering policies and dispatchers.
#pragma once

#include <cassert>
#include <vector>

#include "workload/job.h"

namespace jsched::core {

/// Dense JobId -> submission data. Only data legitimately visible to an
/// on-line scheduler is stored (the simulator scrubs `runtime` before
/// on_submit, so the copies here carry runtime == 0).
class JobStore {
 public:
  void clear() { jobs_.clear(); }

  void put(const Job& j) {
    if (j.id >= jobs_.size()) jobs_.resize(j.id + 1);
    jobs_[j.id] = j;
  }

  void put(const Submission& s) { put(s.to_job()); }

  const Job& get(JobId id) const {
    assert(id < jobs_.size());
    return jobs_[id];
  }

  std::size_t capacity() const noexcept { return jobs_.size(); }

 private:
  std::vector<Job> jobs_;
};

/// Which job weight an algorithm optimizes for (paper §4): the unweighted
/// average response time uses weight 1; the weighted variant uses the
/// job's resource consumption. On-line algorithms only know estimates, so
/// their internal weight is nodes x *estimated* time.
enum class WeightKind {
  kUnit,
  kEstimatedArea,
};

inline double scheduling_weight(const Job& j, WeightKind k) {
  return k == WeightKind::kUnit ? 1.0 : j.estimated_area();
}

inline const char* to_string(WeightKind k) {
  return k == WeightKind::kUnit ? "unit" : "area";
}

}  // namespace jsched::core
