// Dispatch policies: how an ordered wait queue is placed on the machine.
//
//  * HeadOnlyDispatch — the plain "greedy list schedule" of the paper: the
//    next job in the list is started as soon as the necessary resources
//    are available; a blocked head blocks everything behind it (§5.1).
//  * FirstFitDispatch — the classical Garey&Graham list scheduling (§5.3):
//    "always starts the next job for which enough resources are
//    available"; backfilling is a no-op on top of this by construction.
//  * EasyBackfillDispatch / ConservativeBackfillDispatch — §5.2, in their
//    own headers.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/job_store.h"
#include "sim/machine.h"
#include "util/time.h"

namespace jsched::core {

/// Per-select context handed from the ListScheduler to its dispatcher.
struct RunningJob {
  JobId id;
  Time start;
  Time estimated_end;  // start + estimate; actual end may come earlier
  int nodes;
};

class Dispatcher {
 public:
  virtual ~Dispatcher() = default;

  /// Name suffix, e.g. "EASY"; empty for the plain list schedule.
  virtual std::string name() const = 0;

  virtual void reset(const sim::Machine& machine, const JobStore& store) = 0;

  /// Queue/lifecycle notifications (defaults: stateless dispatchers ignore
  /// them).
  virtual void on_enqueue(JobId, Time) {}
  virtual void on_start(JobId, Time) {}
  virtual void on_complete(JobId, Time, Time /*estimated_end*/,
                           const std::vector<JobId>& /*order*/) {}
  virtual void on_reorder(const std::vector<JobId>&, Time) {}

  /// The machine's node count changed to `available_nodes` (fault
  /// injection). Kills caused by the change were already delivered via
  /// on_complete; `running` is the post-kill active set. Dispatchers that
  /// plan only against the free_nodes handed to select() (head-only,
  /// first-fit, EASY — all recompute per call) need nothing; dispatchers
  /// holding a long-range availability profile override it to rebuild
  /// their plan at the new capacity.
  virtual void on_capacity_change(Time now, int available_nodes,
                                  const std::vector<JobId>& order,
                                  const std::vector<RunningJob>& running) {
    (void)now;
    (void)available_nodes;
    (void)order;
    (void)running;
  }

  /// Take over a machine mid-flight (phase-switched schedulers): rebuild
  /// any internal state from the currently running jobs and the queue
  /// order. Stateless dispatchers need nothing beyond the default.
  virtual void adopt(Time now, const std::vector<JobId>& order,
                     const std::vector<RunningJob>& running) {
    (void)running;
    on_reorder(order, now);
  }

  /// Fill `starts` with the jobs to start now (clearing whatever it held;
  /// the buffer is caller-owned and reused across calls). `order` is the
  /// current queue (highest priority first); `running` the active jobs.
  /// Selected jobs must fit in free_nodes cumulatively.
  virtual void select(Time now, int free_nodes,
                      const std::vector<JobId>& order,
                      const std::vector<RunningJob>& running,
                      std::vector<JobId>& starts) = 0;

  /// See sim::Scheduler::next_wakeup.
  virtual Time next_wakeup(Time) const { return kTimeInfinity; }
};

/// Greedy list schedule: start from the head, stop at the first job that
/// does not fit.
class HeadOnlyDispatch final : public Dispatcher {
 public:
  std::string name() const override { return ""; }
  void reset(const sim::Machine&, const JobStore& store) override { store_ = &store; }
  void select(Time now, int free_nodes, const std::vector<JobId>& order,
              const std::vector<RunningJob>& running,
              std::vector<JobId>& starts) override;

 private:
  const JobStore* store_ = nullptr;
};

/// Garey & Graham: start every job that fits, scanning the whole queue
/// (ties broken by queue position).
class FirstFitDispatch final : public Dispatcher {
 public:
  std::string name() const override { return "FF"; }
  void reset(const sim::Machine&, const JobStore& store) override { store_ = &store; }
  void select(Time now, int free_nodes, const std::vector<JobId>& order,
              const std::vector<RunningJob>& running,
              std::vector<JobId>& starts) override;

 private:
  const JobStore* store_ = nullptr;
};

}  // namespace jsched::core
