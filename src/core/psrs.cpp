#include "core/psrs.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace jsched::core {
namespace {

/// Smith-order comparison: largest modified Smith ratio first; ties by
/// submission order (id) for determinism and on-line fairness.
struct SmithLess {
  const JobStore& store;
  WeightKind weight;
  bool operator()(JobId a, JobId b) const {
    const Job& ja = store.get(a);
    const Job& jb = store.get(b);
    const double ra = scheduling_weight(ja, weight) / ja.estimated_area();
    const double rb = scheduling_weight(jb, weight) / jb.estimated_area();
    if (ra != rb) return ra > rb;
    return a < b;
  }
};

/// Geometric bin of a completion time: smallest k >= 0 with
/// c <= offset * 2^k.
std::size_t completion_bin(double c, double offset) {
  assert(c > 0.0 && offset > 0.0);
  if (c <= offset) return 0;
  auto k = static_cast<std::size_t>(std::ceil(std::log2(c / offset)));
  while (k > 0 && offset * std::pow(2.0, static_cast<double>(k - 1)) >= c) --k;
  while (offset * std::pow(2.0, static_cast<double>(k)) < c) ++k;
  return k;
}

/// How many pending small jobs a start pass may examine. The plan is a
/// scheduling artifact, not the executed schedule; bounding the first-fit
/// scan keeps replanning near-linear on very deep queues without touching
/// behaviour at realistic queue depths.
constexpr std::size_t kStartScanLimit = 512;

}  // namespace

PsrsPreemptiveResult psrs_preemptive_schedule(const std::vector<JobId>& jobs,
                                              const JobStore& store,
                                              int machine_nodes,
                                              const PsrsParams& params) {
  if (machine_nodes < 1) throw std::invalid_argument("PSRS: machine_nodes < 1");
  if (params.wide_delay_factor < 0.0) {
    throw std::invalid_argument("PSRS: negative wide_delay_factor");
  }

  PsrsPreemptiveResult res;
  res.smith_order = jobs;
  std::sort(res.smith_order.begin(), res.smith_order.end(),
            SmithLess{store, params.weight});

  const std::size_t n = res.smith_order.size();
  res.completion.assign(n, 0);
  res.wide.assign(n, false);

  const int half = machine_nodes / 2;

  // Virtual state: remaining time per job, running small jobs, pending
  // indices (into smith_order) split by width.
  std::vector<Duration> remaining(n);
  std::vector<std::size_t> pending_small;
  std::vector<std::size_t> pending_wide;  // Smith order preserved
  for (std::size_t i = 0; i < n; ++i) {
    const Job& j = store.get(res.smith_order[i]);
    remaining[i] = j.estimate;
    res.wide[i] = j.nodes > half;
    (res.wide[i] ? pending_wide : pending_small).push_back(i);
  }

  struct RunningSmall {
    std::size_t idx;
    Duration end;
  };
  std::vector<RunningSmall> running;
  Duration v = 0;  // virtual clock
  int free_nodes = machine_nodes;
  std::size_t next_wide = 0;

  auto start_smalls = [&] {
    std::size_t examined = 0;
    for (auto it = pending_small.begin();
         it != pending_small.end() && free_nodes > 0 &&
         examined < kStartScanLimit;) {
      const std::size_t idx = *it;
      const Job& j = store.get(res.smith_order[idx]);
      if (j.nodes <= free_nodes) {
        free_nodes -= j.nodes;
        running.push_back({idx, v + remaining[idx]});
        it = pending_small.erase(it);
      } else {
        ++it;
        ++examined;
      }
    }
  };

  while (!pending_small.empty() || next_wide < pending_wide.size() ||
         !running.empty()) {
    start_smalls();

    // Trigger time of the next wide job in Smith order: it has been
    // waiting since virtual time 0 and forces preemption after
    // wide_delay_factor x its own time.
    Duration wide_trigger = kTimeInfinity;
    if (next_wide < pending_wide.size()) {
      const std::size_t widx = pending_wide[next_wide];
      wide_trigger = static_cast<Duration>(std::ceil(
          params.wide_delay_factor * static_cast<double>(remaining[widx])));
      wide_trigger = std::max(wide_trigger, v);
    }

    Duration next_end = kTimeInfinity;
    for (const auto& r : running) next_end = std::min(next_end, r.end);

    if (wide_trigger <= next_end && next_wide < pending_wide.size()) {
      // Preempt everything, run the wide job alone, resume afterwards.
      v = wide_trigger;
      const std::size_t widx = pending_wide[next_wide];
      ++next_wide;
      if (!running.empty()) ++res.preemptions;
      for (auto& r : running) remaining[r.idx] = r.end - v;  // pause
      const Duration wide_time = remaining[widx];
      v += wide_time;
      res.completion[widx] = v;
      for (auto& r : running) r.end = v + remaining[r.idx];  // resume
      continue;
    }

    if (next_end == kTimeInfinity) {
      // Nothing running and no wide to trigger: only unstarted smalls that
      // exceeded the scan bound remain; the scan restarts each loop, so
      // force progress by starting the first pending small directly.
      if (!pending_small.empty() && free_nodes > 0) {
        const std::size_t idx = pending_small.front();
        pending_small.erase(pending_small.begin());
        const Job& j = store.get(res.smith_order[idx]);
        assert(j.nodes <= machine_nodes);
        free_nodes -= j.nodes;
        running.push_back({idx, v + remaining[idx]});
        continue;
      }
      break;
    }

    // Advance to the earliest small completion.
    v = next_end;
    for (std::size_t i = running.size(); i-- > 0;) {
      if (running[i].end == v) {
        res.completion[running[i].idx] = v;
        free_nodes += store.get(res.smith_order[running[i].idx]).nodes;
        running[i] = running.back();
        running.pop_back();
      }
    }
  }
  return res;
}

std::vector<JobId> psrs_plan(const std::vector<JobId>& jobs,
                             const JobStore& store, int machine_nodes,
                             const PsrsParams& params) {
  const PsrsPreemptiveResult pre =
      psrs_preemptive_schedule(jobs, store, machine_nodes, params);

  // Assign jobs to the two geometric bin sequences by preemptive
  // completion time; Smith order inside each bin is preserved because we
  // iterate smith_order.
  std::vector<std::vector<JobId>> small_bins;
  std::vector<std::vector<JobId>> wide_bins;
  for (std::size_t i = 0; i < pre.smith_order.size(); ++i) {
    const double c = static_cast<double>(pre.completion[i]);
    auto& seq = pre.wide[i] ? wide_bins : small_bins;
    const double offset =
        pre.wide[i] ? params.wide_bin_offset : params.small_bin_offset;
    const std::size_t bin = completion_bin(c, offset);
    if (bin >= seq.size()) seq.resize(bin + 1);
    seq[bin].push_back(pre.smith_order[i]);
  }

  // Alternate the sequences, small bins first: S0 W0 S1 W1 ...
  std::vector<JobId> order;
  order.reserve(pre.smith_order.size());
  const std::size_t rounds = std::max(small_bins.size(), wide_bins.size());
  for (std::size_t k = 0; k < rounds; ++k) {
    if (k < small_bins.size()) {
      order.insert(order.end(), small_bins[k].begin(), small_bins[k].end());
    }
    if (k < wide_bins.size()) {
      order.insert(order.end(), wide_bins[k].begin(), wide_bins[k].end());
    }
  }
  return order;
}

PsrsOrder::PsrsOrder(const PsrsParams& params)
    : ReplanningOrder(params.planned_ratio_threshold), params_(params) {}

std::vector<JobId> PsrsOrder::plan(const std::vector<JobId>& jobs) const {
  return psrs_plan(jobs, store(), machine_nodes(), params_);
}

}  // namespace jsched::core
