#include "core/phased_scheduler.h"

#include <algorithm>
#include <stdexcept>

#include "core/easy_backfill.h"
#include "core/smart.h"

namespace jsched::core {

bool PhaseWindow::contains(Time t) const noexcept {
  const long long day_index = t / kDay;
  if (weekdays_only && (day_index % 7) >= 5) return false;  // day 0 = Monday
  const Duration second = t % kDay;
  if (start_second <= end_second) {
    return second >= start_second && second < end_second;
  }
  return second >= start_second || second < end_second;
}

Time PhaseWindow::next_boundary(Time t) const noexcept {
  // Coarse scan (hours) for the first phase change within a week, then a
  // binary search down to the second. A week always contains a boundary
  // unless the window covers everything or nothing.
  const bool here = contains(t);
  Time hi = t;
  bool found = false;
  for (int h = 1; h <= 24 * 7 + 1; ++h) {
    hi = t + h * kHour;
    if (contains(hi) != here) {
      found = true;
      break;
    }
  }
  if (!found) return kTimeInfinity;
  Time lo = hi - kHour;
  while (lo + 1 < hi) {
    const Time mid = lo + (hi - lo) / 2;
    if (contains(mid) != here) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

PhasedScheduler::PhasedScheduler(PhaseWindow window,
                                 std::unique_ptr<OrderingPolicy> day_order,
                                 std::unique_ptr<Dispatcher> day_dispatch,
                                 std::unique_ptr<OrderingPolicy> night_order,
                                 std::unique_ptr<Dispatcher> night_dispatch)
    : window_(window),
      day_order_(std::move(day_order)),
      day_dispatch_(std::move(day_dispatch)),
      night_order_(std::move(night_order)),
      night_dispatch_(std::move(night_dispatch)) {
  if (!day_order_ || !day_dispatch_ || !night_order_ || !night_dispatch_) {
    throw std::invalid_argument("PhasedScheduler: null component");
  }
}

std::string PhasedScheduler::name() const {
  auto half = [](const OrderingPolicy& o, const Dispatcher& d) {
    return d.name().empty() ? o.name() : o.name() + "+" + d.name();
  };
  return "day[" + half(*day_order_, *day_dispatch_) + "]/night[" +
         half(*night_order_, *night_dispatch_) + "]";
}

void PhasedScheduler::reset(const sim::Machine& machine) {
  store_.clear();
  running_.clear();
  day_order_->reset(machine, store_);
  day_dispatch_->reset(machine, store_);
  night_order_->reset(machine, store_);
  night_dispatch_->reset(machine, store_);
  day_active_ = window_.contains(0);
  flips_ = 0;
  last_sync_ = -1;
  machine_nodes_ = machine.nodes;
  capacity_ = machine.nodes;
  seen_version_ = order().version();
}

void PhasedScheduler::sync_phase(Time now) {
  if (now == last_sync_) return;
  last_sync_ = now;
  const bool want_day = window_.contains(now);
  if (want_day == day_active_) return;
  ++flips_;

  // Hand the queue over in submission order (ids are submission-ordered),
  // letting the incoming policy impose its own priorities.
  std::vector<JobId> queued = order().order();
  std::sort(queued.begin(), queued.end());
  OrderingPolicy& incoming = want_day ? *day_order_ : *night_order_;
  for (JobId id : queued) {
    // The outgoing policy keeps its (stale) state; it is reset on the next
    // flip back, so remove jobs from it now to keep it consistent.
    order().on_remove(id, now);
  }
  for (JobId id : queued) incoming.on_submit(id, now);

  day_active_ = want_day;
  dispatch().adopt(now, order().order(), running_);
  if (capacity_ != machine_nodes_) {
    // adopt() rebuilt the incoming dispatcher's state at full capacity;
    // replay the outage so its plan respects the surviving nodes.
    dispatch().on_capacity_change(now, capacity_, order().order(), running_);
  }
  seen_version_ = order().version();
}

void PhasedScheduler::on_capacity_change(Time now, int available_nodes) {
  sync_phase(now);
  capacity_ = available_nodes;
  dispatch().on_capacity_change(now, available_nodes, order().order(),
                                running_);
}

void PhasedScheduler::sync_order_version(Time now) {
  if (order().version() != seen_version_) {
    seen_version_ = order().version();
    dispatch().on_reorder(order().order(), now);
  }
}

void PhasedScheduler::on_submit(const Submission& job, Time now) {
  sync_phase(now);
  store_.put(job);
  const std::uint64_t before = order().version();
  order().on_submit(job.id, now);
  if (order().version() != before) {
    seen_version_ = order().version();
    dispatch().on_reorder(order().order(), now);
  } else {
    dispatch().on_enqueue(job.id, now);
  }
}

void PhasedScheduler::on_complete(JobId id, Time now) {
  sync_phase(now);
  auto it = std::find_if(running_.begin(), running_.end(),
                         [&](const RunningJob& r) { return r.id == id; });
  if (it == running_.end()) {
    throw std::logic_error("PhasedScheduler: completion for job not running");
  }
  const Time estimated_end = it->estimated_end;
  running_.erase(it);
  dispatch().on_complete(id, now, estimated_end, order().order());
  sync_order_version(now);
  store_.erase(id);  // finished: keeps the store O(live jobs) when streaming
}

void PhasedScheduler::select_starts(Time now, int free_nodes,
                                    std::vector<JobId>& starts) {
  sync_phase(now);
  dispatch().select(now, free_nodes, order().order(), running_, starts);
  for (JobId id : starts) {
    order().on_remove(id, now);
    dispatch().on_start(id, now);
    const Job& j = store_.get(id);
    running_.push_back({id, now, now + j.estimate, j.nodes});
  }
  sync_order_version(now);
}

Time PhasedScheduler::next_wakeup(Time now) const {
  // Wake for the dispatcher's reservations and for the next phase flip
  // (only needed while there is anything to schedule).
  Time wake = dispatch().next_wakeup(now);
  if (!running_.empty() || queue_length() > 0) {
    wake = std::min(wake, window_.next_boundary(std::max<Time>(now, 0)));
  }
  return wake;
}

std::size_t PhasedScheduler::queue_length() const {
  return day_active_ ? day_order_->order().size()
                     : night_order_->order().size();
}

std::unique_ptr<sim::Scheduler> make_institution_b_combined() {
  SmartParams smart;
  smart.variant = SmartVariant::kFfia;
  smart.weight = WeightKind::kUnit;
  return std::make_unique<PhasedScheduler>(
      PhaseWindow{7 * kHour, 20 * kHour, true},
      std::make_unique<SmartOrder>(smart),
      std::make_unique<EasyBackfillDispatch>(),
      std::make_unique<FcfsOrder>(), std::make_unique<FirstFitDispatch>());
}

}  // namespace jsched::core
