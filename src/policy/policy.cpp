#include "policy/policy.h"

#include <algorithm>

namespace jsched::policy {
namespace {

bool windows_overlap(const TimeWindowGoalRule& a, const TimeWindowGoalRule& b) {
  // Expand wrapping windows into [start, end) pairs over a two-day span.
  auto expand = [](const TimeWindowGoalRule& r) {
    std::vector<std::pair<Duration, Duration>> spans;
    if (r.start_second <= r.end_second) {
      spans.emplace_back(r.start_second, r.end_second);
    } else {
      spans.emplace_back(r.start_second, kDay);
      spans.emplace_back(0, r.end_second);
    }
    return spans;
  };
  for (const auto& [as, ae] : expand(a)) {
    for (const auto& [bs, be] : expand(b)) {
      if (as < be && bs < ae) return true;
    }
  }
  return false;
}

bool in_window(const TimeWindowGoalRule& r, Time t) {
  const Duration second_of_day = t % kDay;
  const long long day_index = t / kDay;
  // Day 0 is a Monday; Saturday/Sunday are indices 5 and 6 (mod 7).
  const bool weekday = (day_index % 7) < 5;
  if (r.weekdays_only && !weekday) return false;
  if (r.weekends_only && weekday) return false;
  if (r.start_second <= r.end_second) {
    return second_of_day >= r.start_second && second_of_day < r.end_second;
  }
  return second_of_day >= r.start_second || second_of_day < r.end_second;
}

}  // namespace

std::vector<Conflict> Policy::conflicts() const {
  std::vector<Conflict> out;
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    if (const auto* limit = std::get_if<UserJobLimitRule>(&rules_[i])) {
      if (limit->max_active_jobs_per_user < 1) {
        out.push_back({i, i, "user job limit below 1 blocks all jobs"});
      }
    }
    if (const auto* quota = std::get_if<QuotaRule>(&rules_[i])) {
      if (quota->share <= 0.0 || quota->share > 1.0) {
        out.push_back({i, i, "quota share outside (0, 1]"});
      }
    }
    for (std::size_t j = i + 1; j < rules_.size(); ++j) {
      const auto* wa = std::get_if<TimeWindowGoalRule>(&rules_[i]);
      const auto* wb = std::get_if<TimeWindowGoalRule>(&rules_[j]);
      // Two goal windows conflict when their day sets intersect, their
      // time-of-day spans overlap, and the objectives differ.
      const bool disjoint_days =
          wa && wb &&
          ((wa->weekdays_only && wb->weekends_only) ||
           (wa->weekends_only && wb->weekdays_only));
      if (wa && wb && !disjoint_days &&
          wa->objective.name != wb->objective.name &&
          windows_overlap(*wa, *wb)) {
        out.push_back({i, j, "overlapping goal windows with different objectives"});
      }
      const auto* pa = std::get_if<PriorityRule>(&rules_[i]);
      const auto* pb = std::get_if<PriorityRule>(&rules_[j]);
      if (pa && pb && pa->priority_class != pb->priority_class &&
          pa->rank == pb->rank) {
        out.push_back({i, j, "distinct classes share a priority rank"});
      }
      if (pa && pb && pa->priority_class == pb->priority_class &&
          pa->rank != pb->rank) {
        out.push_back({i, j, "one class given two different ranks"});
      }
    }
  }
  // Quota shares must not sum above 1.
  double total_share = 0.0;
  std::size_t last_quota = 0;
  bool any_quota = false;
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    if (const auto* quota = std::get_if<QuotaRule>(&rules_[i])) {
      total_share += quota->share;
      last_quota = i;
      any_quota = true;
    }
  }
  if (any_quota && total_share > 1.0) {
    out.push_back({last_quota, last_quota, "quota shares sum above 1"});
  }
  return out;
}

std::optional<metrics::Objective> Policy::objective_at(Time t) const {
  for (const Rule& r : rules_) {
    if (const auto* w = std::get_if<TimeWindowGoalRule>(&r)) {
      if (in_window(*w, t)) return w->objective;
    }
  }
  return std::nullopt;
}

std::optional<int> Policy::user_job_limit() const {
  std::optional<int> limit;
  for (const Rule& r : rules_) {
    if (const auto* l = std::get_if<UserJobLimitRule>(&r)) {
      limit = limit ? std::min(*limit, l->max_active_jobs_per_user)
                    : l->max_active_jobs_per_user;
    }
  }
  return limit;
}

int Policy::rank_of(std::int32_t priority_class) const {
  int rank = 0;
  for (const Rule& r : rules_) {
    if (const auto* p = std::get_if<PriorityRule>(&r)) {
      if (p->priority_class == priority_class) rank = std::max(rank, p->rank);
    }
  }
  return rank;
}

Policy institution_b_policy() {
  Policy p("Institution B");
  p.add(UserJobLimitRule{2, "Rule 4: at most two batch jobs per user"});
  p.add(TimeWindowGoalRule{7 * kHour, 20 * kHour, /*weekdays_only=*/true,
                           /*weekends_only=*/false,
                           metrics::unweighted_objective(),
                           "Rule 5: weekdays 7am-8pm, minimize response time"});
  p.add(TimeWindowGoalRule{20 * kHour, 7 * kHour, /*weekdays_only=*/true,
                           /*weekends_only=*/false,
                           metrics::weighted_objective(),
                           "Rule 6a: weekday nights, high system load"});
  p.add(TimeWindowGoalRule{0, kDay, /*weekdays_only=*/false,
                           /*weekends_only=*/true,
                           metrics::weighted_objective(),
                           "Rule 6b: weekends and holidays, high system load"});
  return p;
}

Policy example1_policy() {
  Policy p("University A chemistry department");
  p.add(PriorityRule{2, 2, "Rule 1: drug-design jobs as soon as possible"});
  p.add(PriorityRule{1, 1, "Rule 3: chemistry labs have preferred access"});
  p.add(PriorityRule{0, 0, "Rule 3: rest of the university accepted"});
  p.add(QuotaRule{3, 0.1, "Rule 4: computation time sold to industry"});
  p.add(TimeWindowGoalRule{10 * kHour, 11 * kHour, /*weekdays_only=*/true,
                           /*weekends_only=*/false,
                           metrics::unweighted_objective(),
                           "Rule 5: theoretical chemistry lab course"});
  return p;
}

}  // namespace jsched::policy
