// Per-user admission control (Example 5, Rule 4).
//
// "Every user is allowed at most two batch jobs on the machine at any
//  time." The paper's evaluation ignores this rule because the CTC trace
//  was recorded under an equivalent policy — but a production deployment
//  of the selected algorithm needs it enforced, so this decorator wraps
//  any Scheduler: a user's job is handed to the inner scheduler only while
//  the user has fewer than `limit` active (queued-inside or running) jobs;
//  excess jobs wait in a per-user FIFO and are admitted as slots free up.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>

#include "sim/scheduler.h"

namespace jsched::policy {

class UserLimitScheduler final : public sim::Scheduler {
 public:
  UserLimitScheduler(std::unique_ptr<sim::Scheduler> inner, int limit);

  std::string name() const override;
  void reset(const sim::Machine& machine) override;
  void on_submit(const Submission& job, Time now) override;
  void on_complete(JobId id, Time now) override;
  void select_starts(Time now, int free_nodes,
                     std::vector<JobId>& starts) override;
  Time next_wakeup(Time now) const override;
  std::size_t queue_length() const override;

  /// Jobs currently held back by the limit (introspection for tests).
  std::size_t held_count() const noexcept { return held_total_; }

 private:
  std::unique_ptr<sim::Scheduler> inner_;
  int limit_;
  std::unordered_map<std::int32_t, int> active_;          // user -> active jobs
  // user -> waiting submissions (admitted FIFO as slots free up)
  std::unordered_map<std::int32_t, std::deque<Submission>> held_;
  std::unordered_map<JobId, std::int32_t> user_of_;
  std::size_t held_total_ = 0;
};

}  // namespace jsched::policy
