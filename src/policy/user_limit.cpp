#include "policy/user_limit.h"

#include <stdexcept>

namespace jsched::policy {

UserLimitScheduler::UserLimitScheduler(std::unique_ptr<sim::Scheduler> inner,
                                       int limit)
    : inner_(std::move(inner)), limit_(limit) {
  if (!inner_) throw std::invalid_argument("UserLimitScheduler: null inner");
  if (limit_ < 1) throw std::invalid_argument("UserLimitScheduler: limit < 1");
}

std::string UserLimitScheduler::name() const {
  return inner_->name() + "/limit" + std::to_string(limit_);
}

void UserLimitScheduler::reset(const sim::Machine& machine) {
  inner_->reset(machine);
  active_.clear();
  held_.clear();
  user_of_.clear();
  held_total_ = 0;
}

void UserLimitScheduler::on_submit(const Submission& job, Time now) {
  user_of_[job.id] = job.user;
  if (active_[job.user] < limit_) {
    ++active_[job.user];
    inner_->on_submit(job, now);
  } else {
    held_[job.user].push_back(job);
    ++held_total_;
  }
}

void UserLimitScheduler::on_complete(JobId id, Time now) {
  inner_->on_complete(id, now);
  const std::int32_t user = user_of_.at(id);
  user_of_.erase(id);
  --active_[user];
  auto it = held_.find(user);
  if (it != held_.end() && !it->second.empty() && active_[user] < limit_) {
    const Submission next = it->second.front();
    it->second.pop_front();
    --held_total_;
    ++active_[user];
    // The job was submitted earlier but only reaches the scheduler now;
    // its queue position reflects the admission time, as on a real system.
    inner_->on_submit(next, now);
  }
}

void UserLimitScheduler::select_starts(Time now, int free_nodes,
                                       std::vector<JobId>& starts) {
  inner_->select_starts(now, free_nodes, starts);
}

Time UserLimitScheduler::next_wakeup(Time now) const {
  return inner_->next_wakeup(now);
}

std::size_t UserLimitScheduler::queue_length() const {
  return inner_->queue_length() + held_total_;
}

}  // namespace jsched::policy
