// The scheduling-policy layer (paper §2.1): "a collection of rules to
// determine the resource allocation if not enough resources are available
// to satisfy all requests immediately", owned by the machine's
// administrator.
//
// The paper's quality bar for a policy: (1) it contains rules to resolve
// conflicts between other rules if those conflicts may occur, and (2) it
// can be implemented. This module represents rules as data, detects the
// conflicts the paper warns about, and maps time-window goal rules to the
// objective function in force at a given instant — the §4 derivation
// (Rule 5 daytime -> average response time; Rule 6 nights/weekends ->
// average weighted response time).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "metrics/objectives.h"
#include "util/time.h"

namespace jsched::policy {

/// Jobs of `priority_class` are more important than lower classes
/// (Example 1, Rule 1: drug-design jobs "must be executed as soon as
/// possible").
struct PriorityRule {
  std::int32_t priority_class;
  int rank;  // higher rank = served first
  std::string description;
};

/// Between [start_second, end_second) of a day the named objective is in
/// force (Example 5, Rules 5/6). Seconds are relative to midnight;
/// wrapping windows (start > end) cover midnight.
struct TimeWindowGoalRule {
  Duration start_second;
  Duration end_second;
  bool weekdays_only = false;
  bool weekends_only = false;
  metrics::Objective objective;
  std::string description;
};

/// Per-user concurrency cap (Example 5, Rule 4: "every user is allowed at
/// most two batch jobs on the machine at any time").
struct UserJobLimitRule {
  int max_active_jobs_per_user;
  std::string description;
};

/// A share of capacity earmarked for a priority class (Example 1, Rule 4:
/// computation time sold to industry partners).
struct QuotaRule {
  std::int32_t priority_class;
  double share;  // in (0, 1]
  std::string description;
};

using Rule = std::variant<PriorityRule, TimeWindowGoalRule, UserJobLimitRule,
                          QuotaRule>;

/// A detected conflict between two rules plus a human-readable reason.
struct Conflict {
  std::size_t rule_a;
  std::size_t rule_b;
  std::string reason;
};

class Policy {
 public:
  explicit Policy(std::string name = "policy") : name_(std::move(name)) {}

  const std::string& name() const noexcept { return name_; }
  std::size_t size() const noexcept { return rules_.size(); }
  const Rule& rule(std::size_t i) const { return rules_.at(i); }

  Policy& add(Rule r) {
    rules_.push_back(std::move(r));
    return *this;
  }

  /// Conflicts the paper warns about: overlapping goal windows with
  /// different objectives, duplicate priority ranks for distinct classes,
  /// quota shares exceeding 1, non-positive user limits.
  std::vector<Conflict> conflicts() const;

  /// The goal objective in force at absolute time t (day 0 of the
  /// simulation is taken to be a Monday). nullopt when no window matches.
  std::optional<metrics::Objective> objective_at(Time t) const;

  /// Strictest user limit, if any rule sets one.
  std::optional<int> user_job_limit() const;

  /// Priority rank of a class (0 when no rule mentions it).
  int rank_of(std::int32_t priority_class) const;

 private:
  std::string name_;
  std::vector<Rule> rules_;
};

/// Institution B's policy (Example 5) with the paper's §4 objective
/// mapping baked in: 7am-8pm weekdays -> average response time, the rest
/// -> average weighted response time.
Policy institution_b_policy();

/// The chemistry-department policy of Example 1 (priority classes:
/// 2 = drug-design lab, 1 = chemistry department, 0 = rest of university).
Policy example1_policy();

}  // namespace jsched::policy
