// Workload transformations used by the evaluation example (paper §6.1).
#pragma once

#include <cstddef>

#include "workload/workload.h"

namespace jsched::workload {

/// Drop every job requesting more than `machine_nodes` nodes — the paper's
/// adaptation of the 430-node CTC trace to the 256-node Institution-B
/// machine ("less than 0.2% of all jobs require more than 256 nodes [...]
/// she modifies the trace by simply deleting all those highly parallel
/// jobs"). Returns the trimmed workload; `dropped` (optional) receives the
/// number of removed jobs.
Workload trim_to_machine(const Workload& w, int machine_nodes,
                         std::size_t* dropped = nullptr);

/// Replace every user estimate by the actual runtime — the paper's §6.1
/// study of schedulers "under the assumption that precise job execution
/// times are available at job submission" (Table 6 / Fig. 6).
Workload with_exact_estimates(const Workload& w);

/// Keep only the first `n` jobs (by submission order). Used to scale bench
/// runs down via JSCHED_JOBS.
Workload take_prefix(const Workload& w, std::size_t n);

/// Multiply every estimate by `factor` (>= 1), keeping estimate >= runtime.
/// Used by the estimate-accuracy ablation.
Workload scale_estimates(const Workload& w, double factor);

}  // namespace jsched::workload
