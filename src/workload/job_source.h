// Pull-based streaming job production.
//
// A JobSource emits the same job stream a batch generator would build, one
// job at a time and in O(1) state, so multi-million-job workloads never have
// to exist in memory at once. Every concrete source (the synthetic models,
// SWF files, the binary trace format) promises the finalized-Workload
// invariants on its output stream:
//
//  * ids are dense 0..n-1 in emission order,
//  * submits are origin-shifted (first job at 0) and non-decreasing,
//  * nodes >= 1, runtime >= 1, estimate >= 1.
//
// `materialize()` drains a source into an ordinary Workload; the batch
// generators are now thin wrappers around their sources, which is what makes
// stream and batch output bit-identical by construction.
#pragma once

#include <cstddef>
#include <string>

#include "workload/job.h"
#include "workload/workload.h"

namespace jsched::workload {

/// Abstract pull iterator over a job stream (see file comment for the
/// invariants every implementation guarantees).
class JobSource {
 public:
  virtual ~JobSource() = default;
  JobSource(const JobSource&) = delete;
  JobSource& operator=(const JobSource&) = delete;

  /// Pull the next job into `out`. Returns false at end of stream (and
  /// leaves `out` untouched). Not restartable: construct a fresh source to
  /// replay a stream.
  virtual bool next(Job& out) = 0;

  /// Expected total number of jobs, or 0 when unknown (e.g. SWF files).
  /// A hint for pre-reservation only — the stream is authoritative.
  virtual std::size_t size_hint() const noexcept { return 0; }

  /// Stream name, mirroring Workload::name().
  virtual const std::string& name() const noexcept = 0;

 protected:
  JobSource() = default;

  /// Stamp a raw generated job: assign the next dense id and shift the
  /// time origin so the first emitted job submits at 0. Generators keep
  /// their internal clocks unshifted (diurnal phase depends on absolute
  /// time) and call this on every job right before emitting it.
  void stamp(Job& j) noexcept {
    if (emitted_ == 0) origin_ = j.submit;
    j.submit -= origin_;
    j.id = static_cast<JobId>(emitted_++);
  }

  /// Number of jobs emitted so far.
  std::size_t emitted() const noexcept { return emitted_; }

 private:
  Time origin_ = 0;
  std::size_t emitted_ = 0;
};

/// View an already-materialized Workload as a stream (the adapter that lets
/// batch-built workloads flow through streaming-only consumers). Does not
/// own the workload; keep it alive for the source's lifetime.
class WorkloadSource final : public JobSource {
 public:
  explicit WorkloadSource(const Workload& w) noexcept : w_(&w) {}

  bool next(Job& out) override {
    if (pos_ == w_->size()) return false;
    out = (*w_)[pos_++];
    return true;
  }
  std::size_t size_hint() const noexcept override { return w_->size(); }
  const std::string& name() const noexcept override { return w_->name(); }

 private:
  const Workload* w_;
  std::size_t pos_ = 0;
};

/// Drain a source into an in-memory Workload. The result is finalized (a
/// no-op re-sort/re-shift for a well-behaved source, and a full validation
/// pass either way).
Workload materialize(JobSource& source);

}  // namespace jsched::workload
