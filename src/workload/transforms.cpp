#include "workload/transforms.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace jsched::workload {

Workload trim_to_machine(const Workload& w, int machine_nodes,
                         std::size_t* dropped) {
  if (machine_nodes < 1) {
    throw std::invalid_argument("trim_to_machine: machine_nodes < 1");
  }
  std::vector<Job> kept;
  kept.reserve(w.size());
  for (const auto& j : w) {
    if (j.nodes <= machine_nodes) kept.push_back(j);
  }
  if (dropped != nullptr) *dropped = w.size() - kept.size();
  Workload out(std::move(kept), w.name() + "-trim" + std::to_string(machine_nodes));
  return out;
}

Workload with_exact_estimates(const Workload& w) {
  std::vector<Job> jobs(w.begin(), w.end());
  for (auto& j : jobs) j.estimate = j.runtime;
  return Workload(std::move(jobs), w.name() + "-exact");
}

Workload take_prefix(const Workload& w, std::size_t n) {
  n = std::min(n, w.size());
  std::vector<Job> jobs(w.begin(), w.begin() + static_cast<std::ptrdiff_t>(n));
  return Workload(std::move(jobs), w.name());
}

Workload scale_estimates(const Workload& w, double factor) {
  if (factor < 1.0) throw std::invalid_argument("scale_estimates: factor < 1");
  std::vector<Job> jobs(w.begin(), w.end());
  for (auto& j : jobs) {
    const double scaled = static_cast<double>(j.estimate) * factor;
    j.estimate = std::max<Duration>(
        j.runtime, static_cast<Duration>(std::llround(scaled)));
  }
  return Workload(std::move(jobs), w.name() + "-est");
}

}  // namespace jsched::workload
