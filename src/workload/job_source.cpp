#include "workload/job_source.h"

#include <utility>
#include <vector>

namespace jsched::workload {

Workload materialize(JobSource& source) {
  std::vector<Job> jobs;
  jobs.reserve(source.size_hint());
  Job j;
  while (source.next(j)) jobs.push_back(j);
  return Workload(std::move(jobs), source.name());
}

}  // namespace jsched::workload
