// The rigid parallel job model of the paper (Example 5, Rule 2):
// the user provides the exact number of nodes and an upper limit for the
// execution time; jobs exceeding the limit may be cancelled.
#pragma once

#include <cstdint>

#include "util/time.h"

namespace jsched {

/// Stable job identifier; dense indices into the owning Workload.
using JobId = std::uint32_t;

inline constexpr JobId kInvalidJob = static_cast<JobId>(-1);

/// Outcome of the job in the originating trace (SWF field 11). Synthetic
/// workloads and traces without the field report kCompleted. Purely
/// descriptive metadata: the simulator runs every job it is given; use
/// SwfOptions::drop_unsuccessful to exclude failed/cancelled records at
/// parse time.
enum class JobStatus : std::int8_t {
  kCompleted,  // SWF status 1 (and the default)
  kFailed,     // SWF status 0
  kCancelled,  // SWF status 5
  kUnknown,    // anything else (partial-execution codes 2-4, missing -1)
};

/// One rigid batch job.
///
/// The *scheduler* may only ever look at `submit`, `nodes` and `estimate`
/// (plus `user`/`priority_class` for policy layers); `runtime` is ground
/// truth known to the simulator alone and revealed through completion
/// events — this is the paper's on-line model (§2, §5.2).
struct Job {
  JobId id = kInvalidJob;

  /// Submission (release) time.
  Time submit = 0;

  /// Requested number of nodes (rigid). 1 <= nodes <= machine size.
  int nodes = 1;

  /// User-provided upper limit for the execution time (seconds, > 0).
  Duration estimate = 1;

  /// Actual execution time (seconds, > 0, <= estimate in valid workloads;
  /// the simulator cancels at `estimate` otherwise, per Rule 2).
  Duration runtime = 1;

  /// Submitting user (used by policy rules and per-user limits).
  std::int32_t user = 0;

  /// Priority class assigned by the scheduling policy (0 = normal). Higher
  /// values are more important (e.g. Example 1's drug-design lab).
  std::int32_t priority_class = 0;

  /// Trace-reported outcome (see JobStatus); kCompleted for synthetic
  /// jobs. Not part of the submission data a scheduler sees.
  JobStatus status = JobStatus::kCompleted;

  /// Resource consumption ("area") of the job: nodes x actual runtime.
  /// This is the weight of the average *weighted* response time objective
  /// (paper §4).
  double area() const noexcept {
    return static_cast<double>(nodes) * static_cast<double>(runtime);
  }

  /// Area as projected from the user estimate; what on-line algorithms may
  /// use for their decisions (SMART/PSRS weights, §5.4/§5.5).
  double estimated_area() const noexcept {
    return static_cast<double>(nodes) * static_cast<double>(estimate);
  }

  friend bool operator==(const Job&, const Job&) = default;
};

/// The submission-data slice of a Job: exactly the fields an on-line
/// scheduler may see (§2's information boundary), with no runtime member
/// at all. The simulator hands this to Scheduler::on_submit instead of
/// copying the full Job and scrubbing its runtime per arrival — the type
/// itself now enforces the on-line model.
struct Submission {
  JobId id;
  Time submit;
  int nodes;
  Duration estimate;
  std::int32_t user;
  std::int32_t priority_class;

  // Implicit: any Job can be viewed as its submission data.
  Submission(const Job& j) noexcept
      : id(j.id),
        submit(j.submit),
        nodes(j.nodes),
        estimate(j.estimate),
        user(j.user),
        priority_class(j.priority_class) {}

  /// Materialize a Job carrying submission data only (runtime scrubbed to
  /// 0, as the scheduler-side JobStore documents).
  Job to_job() const noexcept {
    Job j;
    j.id = id;
    j.submit = submit;
    j.nodes = nodes;
    j.estimate = estimate;
    j.runtime = 0;
    j.user = user;
    j.priority_class = priority_class;
    return j;
  }
};

}  // namespace jsched
