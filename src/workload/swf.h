// Standard Workload Format (SWF) I/O.
//
// SWF is the format of the Parallel Workloads Archive (Feitelson [1]) in
// which the CTC SP2 trace used by the paper is published. Each record is a
// whitespace-separated line of 18 fields; comment/header lines start with
// ';'. We consume the fields the rigid-job model needs and preserve the
// semantics the archive documents:
//
//   1 job number        5 run time (s)        8 requested processors
//   2 submit time (s)   4/5 used for runtime  9 requested time (s)
//   3 wait time (s)     7 allocated procs    12 user id
//
// Records with missing (-1) runtime or processors are skipped; a requested
// time of -1 falls back to the run time (exact estimate).
#pragma once

#include <fstream>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "workload/job_source.h"
#include "workload/workload.h"

namespace jsched::workload {

struct SwfReadStats {
  std::size_t lines = 0;
  std::size_t comments = 0;
  std::size_t accepted = 0;
  std::size_t skipped_invalid = 0;   // unusable fields (runtime/procs <= 0)
  std::size_t clamped_estimate = 0;  // estimate raised to runtime
  /// Records dropped by SwfOptions::drop_unsuccessful.
  std::size_t skipped_unsuccessful = 0;
  /// Malformed records skipped by SwfOptions::lenient (always 0 in strict
  /// mode, which throws instead).
  std::size_t skipped_malformed = 0;
};

/// One record the lenient parser rejected.
struct SwfParseIssue {
  std::size_t line = 0;  // 1-based line number in the stream
  std::string reason;    // stable slug, e.g. "short-record"
  std::string text;      // the offending line (truncated to ~120 chars)
};

/// What lenient ingestion skipped and why: totals per reason plus the
/// first few offending lines verbatim — enough to triage a dirty archive
/// trace without re-parsing it.
struct SwfParseReport {
  /// First kMaxSamples rejected records, in stream order.
  static constexpr std::size_t kMaxSamples = 8;

  std::size_t malformed = 0;                      // structurally bad lines
  std::size_t out_of_range = 0;                   // unusable field values
  std::map<std::string, std::size_t> reason_counts;
  std::vector<SwfParseIssue> samples;

  std::size_t total() const noexcept { return malformed + out_of_range; }
  /// One-line human summary, e.g.
  /// "7 records skipped (short-record=5, non-numeric-field=2)".
  std::string summary() const;
};

struct SwfOptions {
  /// Drop records whose SWF status is not "completed" (1): failed (0),
  /// cancelled (5) and partial/unknown codes. Off by default — archive
  /// traces are usually replayed whole, failures included, since even a
  /// failed job occupied its nodes for the recorded runtime.
  bool drop_unsuccessful = false;

  /// Lenient ingestion: malformed records (too few fields, non-numeric
  /// junk, non-finite or absurdly out-of-range values) are skipped and
  /// collected into `report` instead of aborting the whole parse — one bad
  /// line in a multi-million-line archive trace should cost one record,
  /// not the run. Off by default: strict mode throws on the first
  /// malformed line, exactly as before.
  bool lenient = false;

  /// Where lenient mode records what it skipped (optional, not owned).
  /// Reset at the start of each read. Ignored in strict mode.
  SwfParseReport* report = nullptr;

  /// Pre-reserve this many job slots before parsing (0 = no reservation).
  /// read_swf_file fills it from a file-size heuristic automatically.
  std::size_t reserve_hint = 0;
};

namespace detail {

/// Per-line SWF record parser shared by the batch reader (`read_swf`) and
/// the streaming `SwfJobSource`: one call per input line, owning all the
/// strict/lenient skip accounting. Holds pointers to the caller's stats /
/// report (reset on construction); neither is owned.
class SwfLineParser {
 public:
  SwfLineParser(const SwfOptions& options, SwfReadStats& stats);

  /// Parse one line. Returns true and fills `out` (id unassigned) when the
  /// line yields a job record; false for blanks, comments and skipped
  /// records. Throws std::runtime_error on malformed lines in strict mode.
  bool parse(const std::string& line, Job& out);

 private:
  SwfOptions options_;
  SwfReadStats* st_;
  SwfParseReport* report_;
};

}  // namespace detail

/// Parse an SWF stream into a Workload. The status field (field 11) is
/// surfaced as Job::status. Throws std::runtime_error on malformed
/// (non-comment, non-empty) lines unless SwfOptions::lenient is set.
Workload read_swf(std::istream& in, std::string name = "swf",
                  SwfReadStats* stats = nullptr, const SwfOptions& options = {});

/// Convenience file overload; throws std::runtime_error if unreadable.
/// Reserves the job vector up front from a bytes-per-record heuristic over
/// the file size, so multi-million-line traces load without growth copies.
Workload read_swf_file(const std::string& path, SwfReadStats* stats = nullptr,
                       const SwfOptions& options = {});

/// Streaming SWF file reader: pulls one record per next() in O(1) memory,
/// reusing the exact strict/lenient per-line machinery of read_swf.
///
/// Because the stream cannot be sorted after the fact, the trace must
/// already be ordered by submit time (archive traces are); an out-of-order
/// record throws std::runtime_error naming the line. The emitted stream is
/// origin-shifted and densely re-id'd exactly like a finalized Workload.
class SwfJobSource final : public JobSource {
 public:
  /// Opens `path`; throws std::runtime_error if unreadable. `stats` is
  /// optional and filled incrementally as the stream is pulled.
  explicit SwfJobSource(const std::string& path,
                        const SwfOptions& options = {},
                        SwfReadStats* stats = nullptr);

  bool next(Job& out) override;
  const std::string& name() const noexcept override { return name_; }

 private:
  std::ifstream in_;
  SwfReadStats local_stats_;
  SwfReadStats* st_;  // where the parser accounts (caller's or local)
  detail::SwfLineParser parser_;
  std::string line_;
  Time prev_raw_submit_ = 0;
  std::string name_;
};

/// Serialize a workload as SWF (fields we don't model are -1). The output
/// round-trips through read_swf.
void write_swf(std::ostream& out, const Workload& w);
void write_swf_file(const std::string& path, const Workload& w);

}  // namespace jsched::workload
