// Standard Workload Format (SWF) I/O.
//
// SWF is the format of the Parallel Workloads Archive (Feitelson [1]) in
// which the CTC SP2 trace used by the paper is published. Each record is a
// whitespace-separated line of 18 fields; comment/header lines start with
// ';'. We consume the fields the rigid-job model needs and preserve the
// semantics the archive documents:
//
//   1 job number        5 run time (s)        8 requested processors
//   2 submit time (s)   4/5 used for runtime  9 requested time (s)
//   3 wait time (s)     7 allocated procs    12 user id
//
// Records with missing (-1) runtime or processors are skipped; a requested
// time of -1 falls back to the run time (exact estimate).
#pragma once

#include <iosfwd>
#include <string>

#include "workload/workload.h"

namespace jsched::workload {

struct SwfReadStats {
  std::size_t lines = 0;
  std::size_t comments = 0;
  std::size_t accepted = 0;
  std::size_t skipped_invalid = 0;   // unusable fields (runtime/procs <= 0)
  std::size_t clamped_estimate = 0;  // estimate raised to runtime
  /// Records dropped by SwfOptions::drop_unsuccessful.
  std::size_t skipped_unsuccessful = 0;
};

struct SwfOptions {
  /// Drop records whose SWF status is not "completed" (1): failed (0),
  /// cancelled (5) and partial/unknown codes. Off by default — archive
  /// traces are usually replayed whole, failures included, since even a
  /// failed job occupied its nodes for the recorded runtime.
  bool drop_unsuccessful = false;
};

/// Parse an SWF stream into a Workload. The status field (field 11) is
/// surfaced as Job::status. Throws std::runtime_error on malformed
/// (non-comment, non-empty) lines.
Workload read_swf(std::istream& in, std::string name = "swf",
                  SwfReadStats* stats = nullptr, const SwfOptions& options = {});

/// Convenience file overload; throws std::runtime_error if unreadable.
Workload read_swf_file(const std::string& path, SwfReadStats* stats = nullptr,
                       const SwfOptions& options = {});

/// Serialize a workload as SWF (fields we don't model are -1). The output
/// round-trips through read_swf.
void write_swf(std::ostream& out, const Workload& w);
void write_swf_file(const std::string& path, const Workload& w);

}  // namespace jsched::workload
