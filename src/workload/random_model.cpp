#include "workload/random_model.h"

#include <algorithm>
#include <stdexcept>

#include "util/rng.h"

namespace jsched::workload {

RandomJobSource::RandomJobSource(const RandomModelParams& p, std::uint64_t seed)
    : params_(p), rng_(seed) {
  if (p.job_count == 0) throw std::invalid_argument("generate_random: job_count == 0");
  if (p.min_nodes < 1 || p.max_nodes < p.min_nodes) {
    throw std::invalid_argument("generate_random: invalid node range");
  }
  if (p.min_estimate < 1 || p.max_estimate < p.min_estimate) {
    throw std::invalid_argument("generate_random: invalid estimate range");
  }
  if (p.min_runtime < 1) {
    throw std::invalid_argument("generate_random: invalid min_runtime");
  }
}

bool RandomJobSource::next(Job& out) {
  const RandomModelParams& p = params_;
  if (emitted() == p.job_count) return false;

  now_ += rng_.uniform_int(0, p.max_interarrival);
  Job j;
  j.submit = now_;
  j.nodes = static_cast<int>(rng_.uniform_int(p.min_nodes, p.max_nodes));
  j.estimate = rng_.uniform_int(p.min_estimate, p.max_estimate);
  j.runtime = rng_.uniform_int(std::min(p.min_runtime, j.estimate), j.estimate);
  stamp(j);
  out = j;
  return true;
}

Workload generate_random(const RandomModelParams& p, std::uint64_t seed) {
  RandomJobSource source(p, seed);
  return materialize(source);
}

}  // namespace jsched::workload
