#include "workload/random_model.h"

#include <stdexcept>

#include "util/rng.h"

namespace jsched::workload {

Workload generate_random(const RandomModelParams& p, std::uint64_t seed) {
  if (p.job_count == 0) throw std::invalid_argument("generate_random: job_count == 0");
  if (p.min_nodes < 1 || p.max_nodes < p.min_nodes) {
    throw std::invalid_argument("generate_random: invalid node range");
  }
  if (p.min_estimate < 1 || p.max_estimate < p.min_estimate) {
    throw std::invalid_argument("generate_random: invalid estimate range");
  }
  if (p.min_runtime < 1) {
    throw std::invalid_argument("generate_random: invalid min_runtime");
  }

  util::Rng rng(seed);
  Workload w;
  Time now = 0;
  for (std::size_t i = 0; i < p.job_count; ++i) {
    now += rng.uniform_int(0, p.max_interarrival);
    Job j;
    j.submit = now;
    j.nodes = static_cast<int>(rng.uniform_int(p.min_nodes, p.max_nodes));
    j.estimate = rng.uniform_int(p.min_estimate, p.max_estimate);
    j.runtime = rng.uniform_int(std::min(p.min_runtime, j.estimate), j.estimate);
    w.add(j);
  }
  w.set_name("randomized");
  w.finalize();
  return w;
}

}  // namespace jsched::workload
