#include "workload/workload.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "util/table.h"
#include "util/timefmt.h"

namespace jsched::workload {

Workload::Workload(std::vector<Job> jobs, std::string name)
    : jobs_(std::move(jobs)), name_(std::move(name)) {
  finalize();
}

void Workload::add(Job j) {
  j.id = static_cast<JobId>(jobs_.size());
  jobs_.push_back(j);
}

void Workload::finalize() {
  std::stable_sort(jobs_.begin(), jobs_.end(),
                   [](const Job& a, const Job& b) { return a.submit < b.submit; });
  if (!jobs_.empty()) {
    const Time origin = jobs_.front().submit;
    for (auto& j : jobs_) j.submit -= origin;
  }
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    jobs_[i].id = static_cast<JobId>(i);
  }
  validate();
}

void Workload::validate() const {
  Time prev = 0;
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    const Job& j = jobs_[i];
    std::ostringstream err;
    if (j.id != i) {
      err << "job at index " << i << " has id " << j.id;
    } else if (j.submit < prev) {
      err << "job " << i << " submitted before its predecessor";
    } else if (j.nodes < 1) {
      err << "job " << i << " requests " << j.nodes << " nodes";
    } else if (j.runtime < 1) {
      err << "job " << i << " has runtime " << j.runtime;
    } else if (j.estimate < 1) {
      err << "job " << i << " has estimate " << j.estimate;
    }
    const std::string msg = err.str();
    if (!msg.empty()) throw std::invalid_argument("Workload: " + msg);
    prev = j.submit;
  }
}

int Workload::max_nodes() const noexcept {
  int m = 0;
  for (const auto& j : jobs_) m = std::max(m, j.nodes);
  return m;
}

Time Workload::span() const noexcept {
  return jobs_.empty() ? 0 : jobs_.back().submit;
}

double Workload::total_area() const noexcept {
  double a = 0.0;
  for (const auto& j : jobs_) a += j.area();
  return a;
}

double WorkloadSummary::offered_load(int machine_nodes) const noexcept {
  if (machine_nodes <= 0 || span <= 0) return 0.0;
  return total_area /
         (static_cast<double>(machine_nodes) * static_cast<double>(span));
}

void SummaryAccumulator::add(const Job& j) noexcept {
  if (s_.job_count > 0) {
    s_.interarrival.add(static_cast<double>(j.submit - prev_submit_));
  }
  prev_submit_ = j.submit;
  ++s_.job_count;
  s_.span = j.submit;  // stream is submit-ordered: the last submit wins
  s_.max_nodes = std::max(s_.max_nodes, j.nodes);
  s_.nodes.add(static_cast<double>(j.nodes));
  s_.runtime.add(static_cast<double>(j.runtime));
  s_.estimate.add(static_cast<double>(j.estimate));
  s_.overestimate_factor.add(static_cast<double>(j.estimate) /
                             static_cast<double>(j.runtime));
  s_.total_area += j.area();
}

WorkloadSummary summarize(const Workload& w) { return w.summary(); }

WorkloadSummary Workload::summary() const {
  SummaryAccumulator acc;
  for (const auto& j : jobs_) acc.add(j);
  return acc.summary();
}

std::string describe(const WorkloadSummary& s) {
  std::ostringstream os;
  os << "jobs:               " << s.job_count << "\n"
     << "span:               " << util::format_duration(s.span) << "\n"
     << "mean interarrival:  " << util::fixed(s.interarrival.mean(), 1) << " s\n"
     << "nodes (mean/max):   " << util::fixed(s.nodes.mean(), 1) << " / "
     << util::fixed(s.nodes.max(), 0) << "\n"
     << "runtime (mean/max): " << util::fixed(s.runtime.mean(), 1) << " s / "
     << util::format_duration(static_cast<Duration>(s.runtime.max())) << "\n"
     << "estimate (mean):    " << util::fixed(s.estimate.mean(), 1) << " s\n"
     << "overestimation:     x" << util::fixed(s.overestimate_factor.mean(), 2)
     << " (mean estimate/runtime)\n"
     << "total area:         " << util::sci(s.total_area) << " node-seconds\n";
  return os.str();
}

namespace {

inline std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t v) noexcept {
  for (int byte = 0; byte < 8; ++byte) {
    h ^= (v >> (8 * byte)) & 0xffu;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

void FingerprintAccumulator::add(const Job& j) noexcept {
  std::uint64_t h = h_;
  h = fnv_mix(h, static_cast<std::uint64_t>(j.submit));
  h = fnv_mix(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(j.nodes)));
  h = fnv_mix(h, static_cast<std::uint64_t>(j.runtime));
  h = fnv_mix(h, static_cast<std::uint64_t>(j.estimate));
  h = fnv_mix(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(j.user)));
  h = fnv_mix(h,
              static_cast<std::uint64_t>(static_cast<std::int64_t>(j.priority_class)));
  h = fnv_mix(h, static_cast<std::uint64_t>(static_cast<std::int8_t>(j.status)));
  h_ = h;
  ++n_;
}

std::uint64_t FingerprintAccumulator::value() const noexcept {
  return fnv_mix(h_, n_);
}

std::uint64_t fingerprint(const Workload& w) {
  FingerprintAccumulator acc;
  for (const Job& j : w) acc.add(j);
  return acc.value();
}

}  // namespace jsched::workload
