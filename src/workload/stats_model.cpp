#include "workload/stats_model.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace jsched::workload {
namespace {

// Requested-time ranges: ]0,60], ]60,120], ... doubling up to 2^k minutes,
// wide enough for any estimate in the source trace.
std::vector<double> estimate_bin_bounds(double max_estimate) {
  std::vector<double> bounds;
  double b = 60.0;
  while (b < max_estimate) {
    bounds.push_back(b);
    b *= 2.0;
  }
  bounds.push_back(b);
  return bounds;
}

}  // namespace

WorkloadStatistics WorkloadStatistics::extract(const Workload& source,
                                               std::size_t accuracy_bins) {
  if (source.size() < 2) {
    throw std::invalid_argument("WorkloadStatistics: source too small");
  }
  if (accuracy_bins < 1) {
    throw std::invalid_argument("WorkloadStatistics: accuracy_bins < 1");
  }

  WorkloadStatistics st;
  st.accuracy_bins_ = accuracy_bins;

  // 1. Weibull fit of inter-arrival times (paper: "a Weibull distribution
  //    matches best the submission times").
  std::vector<double> gaps;
  gaps.reserve(source.size() - 1);
  for (std::size_t i = 1; i < source.size(); ++i) {
    const double g =
        static_cast<double>(source[i].submit - source[i - 1].submit);
    if (g > 0.0) gaps.push_back(g);
  }
  if (gaps.size() < 2) {
    throw std::invalid_argument("WorkloadStatistics: degenerate arrivals");
  }
  st.arrival_ = util::fit_weibull(gaps);

  // 2. One bin per possible node count (paper: "every possible requested
  //    resource number").
  const int max_n = source.max_nodes();
  std::vector<double> node_counts(static_cast<std::size_t>(max_n), 0.0);
  for (const auto& j : source) {
    node_counts[static_cast<std::size_t>(j.nodes - 1)] += 1.0;
  }
  st.node_cdf_ = util::DiscreteCdf(node_counts);

  // 3. Requested-time ranges with probabilities.
  double max_est = 0.0;
  for (const auto& j : source) {
    max_est = std::max(max_est, static_cast<double>(j.estimate));
  }
  st.estimate_bounds_ = estimate_bin_bounds(max_est);
  util::Histogram est_hist(st.estimate_bounds_);
  for (const auto& j : source) est_hist.add(static_cast<double>(j.estimate));
  st.estimate_cdf_ = util::DiscreteCdf(est_hist.weights());

  // 4. Actual-execution-length information, represented as the accuracy
  //    ratio runtime/estimate per requested-time bin so that sampled jobs
  //    are always consistent (runtime <= estimate).
  const std::size_t bins = st.estimate_bounds_.size();
  std::vector<std::vector<double>> acc(bins,
                                       std::vector<double>(accuracy_bins, 0.0));
  for (const auto& j : source) {
    const std::size_t eb = est_hist.bin_of(static_cast<double>(j.estimate));
    const double ratio = static_cast<double>(j.runtime) /
                         static_cast<double>(j.estimate);
    auto ab = static_cast<std::size_t>(ratio * static_cast<double>(accuracy_bins));
    ab = std::min(ab, accuracy_bins - 1);
    acc[eb][ab] += 1.0;
  }
  st.accuracy_cdfs_.reserve(bins);
  for (std::size_t b = 0; b < bins; ++b) {
    double total = 0.0;
    for (double v : acc[b]) total += v;
    if (total == 0.0) acc[b][accuracy_bins - 1] = 1.0;  // unused bin: exact jobs
    st.accuracy_cdfs_.emplace_back(acc[b]);
  }
  return st;
}

double WorkloadStatistics::node_probability(int nodes) const {
  if (nodes < 1 || static_cast<std::size_t>(nodes) > node_cdf_.size()) return 0.0;
  return node_cdf_.probability(static_cast<std::size_t>(nodes - 1));
}

StatsJobSource::StatsJobSource(const WorkloadStatistics& stats,
                               std::size_t job_count, std::uint64_t seed)
    : stats_(stats), job_count_(job_count) {
  util::Rng rng(seed);
  arrival_rng_ = rng.split();
  node_rng_ = rng.split();
  estimate_rng_ = rng.split();
  accuracy_rng_ = rng.split();
}

bool StatsJobSource::next(Job& out) {
  if (emitted() == job_count_) return false;
  const WorkloadStatistics& st = stats_;

  now_ += static_cast<Duration>(std::llround(
      arrival_rng_.weibull(st.arrival_.shape, st.arrival_.scale)));

  Job j;
  j.submit = now_;
  j.nodes = static_cast<int>(st.node_cdf_.sample(node_rng_)) + 1;

  const std::size_t eb = st.estimate_cdf_.sample(estimate_rng_);
  const double lo = eb == 0 ? 1.0 : st.estimate_bounds_[eb - 1];
  const double hi = st.estimate_bounds_[eb];
  j.estimate = std::max<Duration>(
      1, static_cast<Duration>(std::llround(
             estimate_rng_.log_uniform(std::max(lo, 1.0), hi))));

  const std::size_t ab = st.accuracy_cdfs_[eb].sample(accuracy_rng_);
  const double frac_lo =
      static_cast<double>(ab) / static_cast<double>(st.accuracy_bins_);
  const double frac_hi =
      static_cast<double>(ab + 1) / static_cast<double>(st.accuracy_bins_);
  const double frac = accuracy_rng_.uniform(frac_lo, frac_hi);
  j.runtime = std::clamp<Duration>(
      static_cast<Duration>(std::llround(frac * static_cast<double>(j.estimate))),
      1, j.estimate);

  stamp(j);
  out = j;
  return true;
}

Workload WorkloadStatistics::sample(std::size_t job_count,
                                    std::uint64_t seed) const {
  StatsJobSource source(*this, job_count, seed);
  return materialize(source);
}

Workload generate_probabilistic(const Workload& source, std::size_t job_count,
                                std::uint64_t seed) {
  return WorkloadStatistics::extract(source).sample(job_count, seed);
}

}  // namespace jsched::workload
