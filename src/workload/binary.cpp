#include "workload/binary.h"

#include <cstring>
#include <fstream>
#include <stdexcept>
#include <utility>

namespace jsched::workload {
namespace {

constexpr char kMagic[4] = {'J', 'W', 'B', '1'};
constexpr char kEndMagic[4] = {'J', 'W', 'B', 'E'};
constexpr std::uint16_t kVersion = 1;

std::uint64_t fnv1a_bytes(const unsigned char* data, std::size_t n) {
  std::uint64_t h = 14695981039346656037ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

void put_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void write_all(std::ostream& out, const std::string& bytes) {
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

[[noreturn]] void corrupt(const std::string& what) {
  throw std::runtime_error("JWB: " + what);
}

}  // namespace

// --- writer ---------------------------------------------------------------

BinaryWriter::BinaryWriter(std::ostream& out, std::size_t block_jobs)
    : out_(&out), block_jobs_(block_jobs) {
  if (block_jobs_ == 0) {
    throw std::invalid_argument("BinaryWriter: block_jobs == 0");
  }
  std::string header;
  header.append(kMagic, sizeof(kMagic));
  put_u16(header, kVersion);
  put_u16(header, 0);  // flags
  write_all(*out_, header);
}

BinaryWriter::~BinaryWriter() {
  try {
    finish();
  } catch (...) {
    // Destructors must not throw; an explicit finish() reports the error.
  }
}

void BinaryWriter::add(const Job& j) {
  if (finished_) throw std::logic_error("BinaryWriter: add after finish");
  if (j.nodes < 1 || j.runtime < 1 || j.estimate < 1) {
    throw std::invalid_argument("BinaryWriter: invalid job fields");
  }
  if (j.submit < prev_submit_) {
    throw std::invalid_argument("BinaryWriter: jobs out of submit order");
  }
  put_varint(payload_, static_cast<std::uint64_t>(j.submit - prev_submit_));
  put_varint(payload_, static_cast<std::uint64_t>(j.nodes));
  put_varint(payload_, static_cast<std::uint64_t>(j.runtime));
  put_varint(payload_, zigzag(j.estimate - j.runtime));
  put_varint(payload_, zigzag(j.user));
  put_varint(payload_, zigzag(j.priority_class));
  payload_.push_back(static_cast<char>(static_cast<std::int8_t>(j.status)));
  prev_submit_ = j.submit;
  fnv_.add(j);
  if (++block_count_ == block_jobs_) flush_block();
}

void BinaryWriter::flush_block() {
  if (block_count_ == 0) return;
  std::string header;
  put_u32(header, static_cast<std::uint32_t>(payload_.size()));
  put_u32(header, block_count_);
  put_u64(header, fnv1a_bytes(
                      reinterpret_cast<const unsigned char*>(payload_.data()),
                      payload_.size()));
  write_all(*out_, header);
  write_all(*out_, payload_);
  payload_.clear();
  block_count_ = 0;
}

void BinaryWriter::finish() {
  if (finished_) return;
  flush_block();
  std::string footer;
  put_u32(footer, 0);  // end-of-blocks sentinel
  footer.append(kEndMagic, sizeof(kEndMagic));
  put_u64(footer, fnv_.count());
  put_u64(footer, fnv_.value());
  write_all(*out_, footer);
  out_->flush();
  finished_ = true;
  if (!*out_) throw std::runtime_error("BinaryWriter: write failed");
}

// --- reader ---------------------------------------------------------------

namespace {

bool read_exact(std::istream& in, void* dst, std::size_t n) {
  in.read(static_cast<char*>(dst), static_cast<std::streamsize>(n));
  return static_cast<std::size_t>(in.gcount()) == n;
}

std::uint32_t get_u32(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t get_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

BinaryJobSource::BinaryJobSource(const std::string& path, std::string name)
    : in_(path, std::ios::binary),
      name_(name.empty() ? path : std::move(name)) {
  if (!in_) throw std::runtime_error("cannot open JWB file: " + path);
  unsigned char header[8];
  if (!read_exact(in_, header, sizeof(header))) corrupt("truncated header");
  if (std::memcmp(header, kMagic, sizeof(kMagic)) != 0) corrupt("bad magic");
  const std::uint16_t version =
      static_cast<std::uint16_t>(header[4] | (header[5] << 8));
  if (version != kVersion) {
    corrupt("unsupported version " + std::to_string(version));
  }
}

bool BinaryJobSource::load_block() {
  unsigned char size_bytes[4];
  if (!read_exact(in_, size_bytes, sizeof(size_bytes))) {
    corrupt("truncated stream (missing footer)");
  }
  const std::uint32_t payload_bytes = get_u32(size_bytes);
  if (payload_bytes == 0) {
    // Footer: magic, count, fingerprint — all verified.
    unsigned char footer[20];
    if (!read_exact(in_, footer, sizeof(footer))) corrupt("truncated footer");
    if (std::memcmp(footer, kEndMagic, sizeof(kEndMagic)) != 0) {
      corrupt("bad footer magic");
    }
    const std::uint64_t count = get_u64(footer + 4);
    const std::uint64_t fp = get_u64(footer + 12);
    if (count != fnv_.count()) {
      corrupt("footer count mismatch: footer says " + std::to_string(count) +
              ", stream held " + std::to_string(fnv_.count()));
    }
    if (fp != fnv_.value()) corrupt("footer fingerprint mismatch");
    done_ = true;
    return false;
  }

  unsigned char head[12];
  if (!read_exact(in_, head, sizeof(head))) corrupt("truncated block header");
  const std::uint32_t jobs = get_u32(head);
  const std::uint64_t checksum = get_u64(head + 4);
  if (jobs == 0) corrupt("empty block");
  payload_.resize(payload_bytes);
  if (!read_exact(in_, payload_.data(), payload_bytes)) {
    corrupt("truncated block payload");
  }
  if (fnv1a_bytes(payload_.data(), payload_.size()) != checksum) {
    corrupt("block checksum mismatch");
  }
  pos_ = 0;
  block_left_ = jobs;
  return true;
}

bool BinaryJobSource::next(Job& out) {
  if (done_) return false;
  if (block_left_ == 0 && !load_block()) return false;

  const auto varint = [this]() -> std::uint64_t {
    std::uint64_t v = 0;
    int shift = 0;
    while (true) {
      if (pos_ >= payload_.size()) corrupt("varint overruns block payload");
      const unsigned char b = payload_[pos_++];
      if (shift >= 63 && b > 1) corrupt("varint overflow");
      v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
      if ((b & 0x80) == 0) return v;
      shift += 7;
    }
  };

  Job j;
  j.submit = prev_submit_ + static_cast<Time>(varint());
  j.nodes = static_cast<int>(varint());
  j.runtime = static_cast<Duration>(varint());
  j.estimate = j.runtime + static_cast<Duration>(unzigzag(varint()));
  j.user = static_cast<std::int32_t>(unzigzag(varint()));
  j.priority_class = static_cast<std::int32_t>(unzigzag(varint()));
  if (pos_ >= payload_.size()) corrupt("record overruns block payload");
  j.status = static_cast<JobStatus>(static_cast<std::int8_t>(payload_[pos_++]));
  if (j.nodes < 1 || j.runtime < 1 || j.estimate < 1) {
    corrupt("decoded job has invalid fields");
  }
  prev_submit_ = j.submit;
  --block_left_;
  if (block_left_ == 0 && pos_ != payload_.size()) {
    corrupt("block payload has trailing bytes");
  }
  fnv_.add(j);  // pre-stamp: fingerprint is over the stored stream
  stamp(j);
  out = j;
  return true;
}

// --- convenience ----------------------------------------------------------

void write_binary(std::ostream& out, const Workload& w,
                  std::size_t block_jobs) {
  BinaryWriter writer(out, block_jobs);
  for (const Job& j : w) writer.add(j);
  writer.finish();
}

void write_binary_file(const std::string& path, const Workload& w) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open JWB file for write: " + path);
  write_binary(out, w);
}

Workload read_binary_file(const std::string& path, std::string name) {
  BinaryJobSource source(path, std::move(name));
  return materialize(source);
}

}  // namespace jsched::workload
