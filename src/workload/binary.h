// Compact binary workload format ("JWB1"): the interchange format for
// multi-million-job traces.
//
// SWF is the archive's lingua franca but costs ~80 text bytes per record
// and a full parse per load. JWB1 stores the same job stream
// delta-compressed in self-checking blocks at ~6-10 bytes per job, and both
// ends stream: the writer never holds more than one block, the reader
// emits one job at a time through the JobSource interface.
//
// Layout (all integers little-endian):
//
//   header   "JWB1"  u16 version(=1)  u16 flags(=0)
//   block*   u32 payload_bytes (>0)   u32 job_count   u64 payload FNV-1a
//            payload: per job, in stream order
//              varint  submit delta vs previous job (submits are sorted)
//              varint  nodes
//              varint  runtime
//              svarint estimate - runtime   (zigzag; may be negative)
//              svarint user
//              svarint priority_class
//              u8      status
//   footer   u32 0 (end-of-blocks sentinel)
//            "JWBE"  u64 total job count  u64 workload fingerprint
//
// The submit delta chain runs *across* blocks. The footer fingerprint is
// workload::fingerprint of the whole stream — computable by the streaming
// writer only because that hash mixes the job count last. Every block
// carries an FNV-1a checksum of its payload bytes, so truncation and
// corruption are both detected with a named error, not garbage jobs.
#pragma once

#include <cstdint>
#include <fstream>
#include <iosfwd>
#include <string>
#include <vector>

#include "workload/job_source.h"
#include "workload/workload.h"

namespace jsched::workload {

/// Streaming JWB1 writer. Feed jobs in submit order (add throws
/// std::invalid_argument on out-of-order or invalid jobs), then finish().
/// O(one block) memory regardless of stream length.
class BinaryWriter {
 public:
  /// Writes the header immediately. `block_jobs` is the flush granularity.
  explicit BinaryWriter(std::ostream& out, std::size_t block_jobs = 4096);

  /// Flushes any open block and finish()es — but errors in the destructor
  /// are swallowed; call finish() explicitly to learn about them.
  ~BinaryWriter();

  BinaryWriter(const BinaryWriter&) = delete;
  BinaryWriter& operator=(const BinaryWriter&) = delete;

  void add(const Job& j);

  /// Write the final partial block and the footer. Idempotent. Throws
  /// std::runtime_error when the underlying stream failed.
  void finish();

  std::uint64_t count() const noexcept { return fnv_.count(); }

 private:
  void flush_block();

  std::ostream* out_;
  std::size_t block_jobs_;
  std::string payload_;
  std::uint32_t block_count_ = 0;  // jobs in the open block
  Time prev_submit_ = 0;
  FingerprintAccumulator fnv_;
  bool finished_ = false;
};

/// Streaming JWB1 reader: one job per next() in O(one block) memory, with
/// per-block checksum verification and a footer count/fingerprint check on
/// the final pull. Throws std::runtime_error naming the defect on a bad
/// magic/version, a truncated stream, a corrupted block, or a footer
/// mismatch.
class BinaryJobSource final : public JobSource {
 public:
  /// Opens `path`; throws std::runtime_error if unreadable or not JWB1.
  /// `name` defaults to the path.
  explicit BinaryJobSource(const std::string& path, std::string name = {});

  bool next(Job& out) override;
  const std::string& name() const noexcept override { return name_; }

 private:
  bool load_block();  // false at the (verified) footer

  std::ifstream in_;
  std::vector<unsigned char> payload_;
  std::size_t pos_ = 0;           // decode cursor into payload_
  std::uint32_t block_left_ = 0;  // jobs remaining in the loaded block
  Time prev_submit_ = 0;
  FingerprintAccumulator fnv_;
  bool done_ = false;
  std::string name_;
};

/// Serialize a workload as JWB1 (streamed through BinaryWriter).
void write_binary(std::ostream& out, const Workload& w,
                  std::size_t block_jobs = 4096);
void write_binary_file(const std::string& path, const Workload& w);

/// Load a JWB1 file into memory (materialized BinaryJobSource).
Workload read_binary_file(const std::string& path, std::string name = {});

}  // namespace jsched::workload
