#include "workload/ctc_model.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

#include "util/rng.h"
#include "util/time.h"

namespace jsched::workload {
namespace {

// Node-count mixture: (range, probability, power-of-two preference). The
// shape follows published characterizations of the CTC SP2 workload: ~1/4
// serial jobs, strong preference for powers of two, a thin tail of very
// wide jobs (< 0.2% above 256 nodes, as the paper observes).
struct NodeBucket {
  int lo;
  int hi;
  double prob;
};

constexpr std::array<NodeBucket, 10> kNodeBuckets{{
    {1, 1, 0.270},
    {2, 2, 0.105},
    {3, 4, 0.125},
    {5, 8, 0.140},
    {9, 16, 0.130},
    {17, 32, 0.110},
    {33, 64, 0.070},
    {65, 128, 0.035},
    {129, 256, 0.013},
    {257, 430, 0.002},
}};

int sample_nodes(util::Rng& rng, int machine_nodes) {
  std::array<double, kNodeBuckets.size()> weights;
  for (std::size_t i = 0; i < kNodeBuckets.size(); ++i) {
    weights[i] = kNodeBuckets[i].lo <= machine_nodes ? kNodeBuckets[i].prob : 0.0;
  }
  const auto& b = kNodeBuckets[rng.discrete(weights)];
  const int hi = std::min(b.hi, machine_nodes);
  if (b.lo >= hi) return b.lo;
  // Prefer powers of two inside the range: users of SP2-class machines
  // overwhelmingly request them.
  if (rng.bernoulli(0.6)) {
    int p = 1;
    while (p < b.lo) p <<= 1;
    if (p <= hi) return p;
  }
  return static_cast<int>(rng.uniform_int(b.lo, hi));
}

bool is_daytime(Time t) {
  const Time hour = (t % kDay) / kHour;
  return hour >= 8 && hour < 18;
}

}  // namespace

CtcJobSource::CtcJobSource(const CtcModelParams& p, std::uint64_t seed)
    : params_(p) {
  if (p.job_count == 0) throw std::invalid_argument("generate_ctc: job_count == 0");
  if (p.machine_nodes < 1) throw std::invalid_argument("generate_ctc: machine_nodes < 1");
  if (p.mean_interarrival <= 0 || p.interarrival_shape <= 0) {
    throw std::invalid_argument("generate_ctc: invalid interarrival parameters");
  }
  if (p.max_runtime < p.min_runtime || p.min_runtime < 1) {
    throw std::invalid_argument("generate_ctc: invalid runtime clamp");
  }

  util::Rng rng(seed);
  arrival_rng_ = rng.split();
  shape_rng_ = rng.split();
  runtime_rng_ = rng.split();
  estimate_rng_ = rng.split();
  user_rng_ = rng.split();

  // Weibull scale such that the mean equals mean_interarrival:
  // E[X] = scale * Gamma(1 + 1/shape).
  const double gamma_term = std::tgamma(1.0 + 1.0 / p.interarrival_shape);
  scale_ = p.mean_interarrival / gamma_term;

  // Normalize the diurnal multipliers so the long-run mean inter-arrival
  // stays at mean_interarrival. Shorter day gaps mean *more* gaps fall in
  // the 10 day hours, so the correct normalization equalizes arrival
  // counts, not wall-time shares: with day/night gap multipliers d' and n',
  // arrivals per day are 10h/d' + 14h/n' (in units of 1/mean); scaling both
  // by alpha = (10/d + 14/n)/24 makes that exactly 24h/mean.
  if (p.diurnal_cycle) {
    const double alpha =
        (10.0 / p.day_speedup + 14.0 / p.night_slowdown) / 24.0;
    day_mult_ = p.day_speedup * alpha;
    night_mult_ = p.night_slowdown * alpha;
  }

  // Zipf user-activity weights.
  std::vector<double> user_weights(static_cast<std::size_t>(std::max(p.user_count, 1)));
  for (std::size_t u = 0; u < user_weights.size(); ++u) {
    user_weights[u] = 1.0 / static_cast<double>(u + 1);
  }
  user_cdf_ = util::DiscreteCdf(user_weights);
}

bool CtcJobSource::next(Job& out) {
  const CtcModelParams& p = params_;
  if (emitted() == p.job_count) return false;

  double gap = arrival_rng_.weibull(p.interarrival_shape, scale_);
  gap *= is_daytime(now_) ? day_mult_ : night_mult_;
  now_ += std::max<Duration>(0, static_cast<Duration>(std::llround(gap)));

  Job j;
  j.submit = now_;
  j.nodes = sample_nodes(shape_rng_, p.machine_nodes);

  const double raw_runtime =
      runtime_rng_.lognormal(p.runtime_log_mean, p.runtime_log_sigma);
  j.runtime = std::clamp<Duration>(static_cast<Duration>(std::llround(raw_runtime)),
                                   p.min_runtime, p.max_runtime);

  double factor = 1.0;
  if (!estimate_rng_.bernoulli(p.exact_estimate_fraction)) {
    factor = estimate_rng_.log_uniform(1.0, p.max_overestimate);
  }
  auto est = static_cast<Duration>(
      std::ceil(static_cast<double>(j.runtime) * factor));
  if (p.estimate_granularity > 1) {
    est = (est + p.estimate_granularity - 1) / p.estimate_granularity *
          p.estimate_granularity;
  }
  j.estimate = std::clamp<Duration>(est, j.runtime,
                                    std::max(p.max_runtime, j.runtime));

  j.user = static_cast<std::int32_t>(user_cdf_.sample(user_rng_));
  stamp(j);
  out = j;
  return true;
}

Workload generate_ctc(const CtcModelParams& p, std::uint64_t seed) {
  CtcJobSource source(p, seed);
  return materialize(source);
}

}  // namespace jsched::workload
