// A stream of job submissions plus summary statistics.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/stats.h"
#include "workload/job.h"

namespace jsched::workload {

/// An ordered job-submission stream.
///
/// Invariants (enforced by `validate` / maintained by `finalize`):
///  * jobs are sorted by submit time (ties by id),
///  * ids are dense 0..n-1 and equal to the job's index,
///  * nodes >= 1, runtime >= 1, estimate >= 1.
/// A runtime above the estimate is allowed: the simulator cancels such a
/// job at its upper limit (Example 5, Rule 2).
class Workload {
 public:
  Workload() = default;
  explicit Workload(std::vector<Job> jobs, std::string name = {});

  const std::string& name() const noexcept { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  std::size_t size() const noexcept { return jobs_.size(); }
  bool empty() const noexcept { return jobs_.empty(); }
  const Job& operator[](std::size_t i) const noexcept { return jobs_[i]; }
  const Job& job(JobId id) const noexcept { return jobs_[id]; }
  std::span<const Job> jobs() const noexcept { return jobs_; }

  auto begin() const noexcept { return jobs_.begin(); }
  auto end() const noexcept { return jobs_.end(); }

  /// Append a job (id is assigned); call finalize() before simulating.
  void add(Job j);

  /// Pre-reserve capacity for `n` jobs (no-op when already that large).
  void reserve(std::size_t n) { jobs_.reserve(n); }

  /// Sort by submit time, shift the time origin so the first submission is
  /// at 0, and re-assign dense ids. Throws on invalid jobs.
  void finalize();

  /// Throws std::invalid_argument describing the first violated invariant.
  void validate() const;

  /// Largest node request in the stream (0 when empty).
  int max_nodes() const noexcept;

  /// Time of the last submission (0 when empty).
  Time span() const noexcept;

  /// Total resource demand: sum of nodes x runtime.
  double total_area() const noexcept;

  /// Aggregate statistics in one streaming pass (equals summarize(*this)).
  struct WorkloadSummary summary() const;

 private:
  std::vector<Job> jobs_;
  std::string name_;
};

/// Aggregate workload statistics used for reporting and by the
/// probability-distribution model (paper §6.2).
struct WorkloadSummary {
  std::size_t job_count = 0;
  Time span = 0;
  int max_nodes = 0;
  util::RunningStats interarrival;
  util::RunningStats nodes;
  util::RunningStats runtime;
  util::RunningStats estimate;
  util::RunningStats overestimate_factor;  // estimate / runtime
  double total_area = 0.0;
  /// Offered load against a machine of `machine_nodes`:
  /// total_area / (machine_nodes * span).
  double offered_load(int machine_nodes) const noexcept;
};

/// Streaming builder for WorkloadSummary: feed jobs in stream order, read
/// the summary at any point. One pass, O(1) state — usable against a
/// JobSource that never materializes.
class SummaryAccumulator {
 public:
  void add(const Job& j) noexcept;
  const WorkloadSummary& summary() const noexcept { return s_; }

 private:
  WorkloadSummary s_;
  Time prev_submit_ = 0;
};

WorkloadSummary summarize(const Workload& w);

/// Streaming builder for `fingerprint`: feed jobs in stream order, read
/// `value()` at the end. The job count is mixed in *last* (after every
/// record), so a streaming writer can emit the running fingerprint into a
/// trailer without knowing the count up front; `value()` is pure and may
/// be read mid-stream for a fingerprint of the prefix.
class FingerprintAccumulator {
 public:
  void add(const Job& j) noexcept;
  /// Fingerprint of everything added so far (records then count).
  std::uint64_t value() const noexcept;
  std::uint64_t count() const noexcept { return n_; }

 private:
  std::uint64_t h_ = 14695981039346656037ull;
  std::uint64_t n_ = 0;
};

/// FNV-1a (64-bit) fingerprint over every job's submit, nodes, runtime,
/// estimate, user, priority class and status, plus the job count (mixed
/// after the records — see FingerprintAccumulator). Two workloads
/// fingerprint equal iff they are field-identical job streams — the
/// workload-identity half of a sweep-journal cell key (the name is
/// deliberately excluded: a renamed but identical trace is the same work).
std::uint64_t fingerprint(const Workload& w);

/// Human-readable multi-line description of a summary.
std::string describe(const WorkloadSummary& s);

}  // namespace jsched::workload
