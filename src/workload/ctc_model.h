// Synthetic CTC-like workload trace.
//
// The paper evaluates against the Cornell Theory Center SP2 batch-partition
// trace (Jul 1996 - May 1997, 79,164 jobs, 430-node partition) from the
// Parallel Workloads Archive. The trace itself cannot ship with this
// repository, so this model generates a statistically comparable stream:
//
//  * Weibull inter-arrival times (the distribution the paper fits to the
//    CTC submission process, §6.2) with an optional diurnal intensity cycle,
//  * node counts from an empirical mixture biased to small jobs and powers
//    of two (the characteristic shape of SP2 traces),
//  * log-normal actual runtimes clamped to the site's 18 h class limit,
//  * multiplicative user over-estimation with a point mass at "exact" and a
//    heavy log-uniform tail, rounded up to 5-minute granularity (users pick
//    round numbers).
//
// A real SWF trace can be substituted at any point via read_swf_file(); all
// downstream code only sees `Workload`.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.h"
#include "workload/job_source.h"
#include "workload/workload.h"

namespace jsched::workload {

struct CtcModelParams {
  /// Number of jobs to generate (paper: 79,164).
  std::size_t job_count = 79'164;

  /// Size of the machine the trace is recorded on (CTC batch partition).
  int machine_nodes = 430;

  /// Weibull inter-arrival shape (< 1 = bursty) and mean in seconds.
  /// 79,164 jobs over ~11 months is one job every ~365 s on the 430-node
  /// CTC machine; the default is tuned so the trace trimmed to 256 nodes
  /// carries the heavy offered load (~0.95) behind the paper's growing
  /// backlog.
  double interarrival_shape = 0.65;
  double mean_interarrival = 280.0;

  /// Day/night submission-intensity cycle: inter-arrivals drawn between
  /// 8 am and 6 pm are multiplied by `day_speedup`, the rest by
  /// `night_slowdown` (normalized so the overall mean stays put).
  bool diurnal_cycle = true;
  double day_speedup = 0.6;
  double night_slowdown = 1.8;

  /// Log-normal runtime parameters (log-seconds) and hard clamp range.
  double runtime_log_mean = 6.8;   // median ~ 15 min
  double runtime_log_sigma = 1.8;  // heavy tail
  Duration min_runtime = 1;
  Duration max_runtime = 18 * 3600;  // CTC 18 h class limit

  /// Fraction of users who request exactly the runtime they need; everyone
  /// else overestimates by a log-uniform factor in [1, max_overestimate].
  double exact_estimate_fraction = 0.2;
  double max_overestimate = 10.0;
  /// Estimates are rounded up to this granularity (seconds).
  Duration estimate_granularity = 300;

  /// Number of distinct users (Zipf-weighted activity).
  int user_count = 200;
};

/// Streaming CTC-like trace generator: emits the exact job stream
/// `generate_ctc` builds, one job at a time in O(1) state (the batch
/// generator is a thin materialize() over this source). Deterministic in
/// (params, seed); throws std::invalid_argument on bad parameters.
class CtcJobSource final : public JobSource {
 public:
  CtcJobSource(const CtcModelParams& params, std::uint64_t seed);

  bool next(Job& out) override;
  std::size_t size_hint() const noexcept override { return params_.job_count; }
  const std::string& name() const noexcept override { return name_; }

 private:
  CtcModelParams params_;
  util::Rng arrival_rng_;
  util::Rng shape_rng_;  // nodes
  util::Rng runtime_rng_;
  util::Rng estimate_rng_;
  util::Rng user_rng_;
  double scale_ = 1.0;  // Weibull inter-arrival scale
  double day_mult_ = 1.0;
  double night_mult_ = 1.0;
  util::DiscreteCdf user_cdf_;
  Time now_ = 0;  // unshifted model clock (diurnal phase needs it)
  std::string name_ = "ctc-like";
};

/// Generate a CTC-like trace. Deterministic in (params, seed).
Workload generate_ctc(const CtcModelParams& params, std::uint64_t seed);

/// Convenience: paper-scale trace with default parameters.
inline Workload generate_ctc(std::uint64_t seed) {
  return generate_ctc(CtcModelParams{}, seed);
}

}  // namespace jsched::workload
