#include "workload/swf.h"

#include <array>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/journal.h"

namespace jsched::workload {
namespace {

// SWF field indices (0-based) per the Parallel Workloads Archive spec.
constexpr std::size_t kSubmit = 1;
constexpr std::size_t kRunTime = 3;
constexpr std::size_t kAllocProcs = 4;
constexpr std::size_t kReqProcs = 7;
constexpr std::size_t kReqTime = 8;
constexpr std::size_t kStatus = 10;
constexpr std::size_t kUser = 11;
constexpr std::size_t kFieldCount = 18;

JobStatus status_of(double field) {
  // Archive codes: 1 completed, 0 failed, 5 cancelled; 2/3/4 mark partial
  // executions and -1 means "not recorded" — both map to kUnknown.
  const int code = static_cast<int>(field);
  switch (code) {
    case 1:
      return JobStatus::kCompleted;
    case 0:
      return JobStatus::kFailed;
    case 5:
      return JobStatus::kCancelled;
    default:
      return JobStatus::kUnknown;
  }
}

int status_code(JobStatus status) {
  switch (status) {
    case JobStatus::kCompleted:
      return 1;
    case JobStatus::kFailed:
      return 0;
    case JobStatus::kCancelled:
      return 5;
    case JobStatus::kUnknown:
      break;
  }
  return -1;
}

// Sanity bounds on parsed field values before they are cast to the
// integer model types (a cast from a non-finite or out-of-range double is
// undefined behavior, so a garbage trace must be rejected *before* it).
// Times/durations are seconds — 1e15 s is ~30 million years, far beyond
// any archive; processor counts and ids fit int32.
constexpr double kMaxTimeField = 1e15;
constexpr double kMaxIntField = 2e9;

bool time_field_ok(double v) {
  return std::isfinite(v) && v >= -kMaxTimeField && v <= kMaxTimeField;
}

bool int_field_ok(double v) {
  return std::isfinite(v) && v >= -kMaxIntField && v <= kMaxIntField;
}

/// Record one rejected line into the lenient-mode report.
void note_issue(SwfParseReport* report, bool structural, std::size_t line,
                const char* reason, const std::string& text) {
  if (report == nullptr) return;
  if (structural) {
    ++report->malformed;
  } else {
    ++report->out_of_range;
  }
  ++report->reason_counts[reason];
  if (report->samples.size() < SwfParseReport::kMaxSamples) {
    report->samples.push_back({line, reason, text.substr(0, 120)});
  }
}

}  // namespace

std::string SwfParseReport::summary() const {
  std::ostringstream os;
  os << total() << " record" << (total() == 1 ? "" : "s") << " skipped";
  if (!reason_counts.empty()) {
    os << " (";
    bool first = true;
    for (const auto& [reason, count] : reason_counts) {
      if (!first) os << ", ";
      os << reason << "=" << count;
      first = false;
    }
    os << ")";
  }
  return os.str();
}

namespace detail {

SwfLineParser::SwfLineParser(const SwfOptions& options, SwfReadStats& stats)
    : options_(options),
      st_(&stats),
      report_(options.lenient ? options.report : nullptr) {
  *st_ = {};
  if (report_ != nullptr) *report_ = {};
}

bool SwfLineParser::parse(const std::string& line, Job& out) {
  SwfReadStats& st = *st_;
  ++st.lines;
  // Strip UTF-8 BOM / leading whitespace.
  std::size_t first = line.find_first_not_of(" \t\r");
  if (first == std::string::npos) return false;
  if (line[first] == ';') {
    ++st.comments;
    return false;
  }

  std::istringstream fields(line);
  std::array<double, kFieldCount> f;
  f.fill(-1.0);
  std::size_t n = 0;
  double v;
  while (n < kFieldCount && fields >> v) f[n++] = v;
  if (n < kReqTime + 1) {
    // Too few numeric fields: either the line is short, or extraction
    // died on non-numeric junk mid-record.
    fields.clear();
    std::string rest;
    fields >> rest;
    const char* reason = rest.empty() ? "short-record" : "non-numeric-field";
    if (!options_.lenient) {
      throw std::runtime_error("SWF: malformed record at line " +
                               std::to_string(st.lines) + ": " + line);
    }
    ++st.skipped_malformed;
    note_issue(report_, /*structural=*/true, st.lines, reason, line);
    return false;
  }
  // Guard every field we cast to an integer type: a non-finite or
  // absurdly large value would be undefined behavior at the cast.
  const bool finite_ok =
      time_field_ok(f[kSubmit]) && time_field_ok(f[kRunTime]) &&
      time_field_ok(f[kReqTime]) && int_field_ok(f[kAllocProcs]) &&
      int_field_ok(f[kReqProcs]) && int_field_ok(f[kStatus]) &&
      int_field_ok(f[kUser]);
  if (!finite_ok) {
    const bool non_finite =
        !std::isfinite(f[kSubmit]) || !std::isfinite(f[kRunTime]) ||
        !std::isfinite(f[kReqTime]) || !std::isfinite(f[kAllocProcs]) ||
        !std::isfinite(f[kReqProcs]) || !std::isfinite(f[kStatus]) ||
        !std::isfinite(f[kUser]);
    const char* reason =
        non_finite ? "non-finite-field" : "out-of-range-field";
    if (!options_.lenient) {
      throw std::runtime_error("SWF: " + std::string(reason) + " at line " +
                               std::to_string(st.lines) + ": " + line);
    }
    ++st.skipped_malformed;
    note_issue(report_, /*structural=*/false, st.lines, reason, line);
    return false;
  }

  Job j;
  j.submit = static_cast<Time>(f[kSubmit]);
  double procs = f[kReqProcs] > 0 ? f[kReqProcs] : f[kAllocProcs];
  double runtime = f[kRunTime];
  if (procs <= 0 || runtime <= 0 || j.submit < 0) {
    ++st.skipped_invalid;
    return false;
  }
  j.status = status_of(f[kStatus]);
  if (options_.drop_unsuccessful && j.status != JobStatus::kCompleted) {
    ++st.skipped_unsuccessful;
    return false;
  }
  j.nodes = static_cast<int>(procs);
  j.runtime = static_cast<Duration>(runtime);
  j.estimate =
      f[kReqTime] > 0 ? static_cast<Duration>(f[kReqTime]) : j.runtime;
  if (j.estimate < j.runtime) {
    // Archive traces contain jobs that overran their limit and were (or
    // should have been) killed; model them as running to the limit.
    j.estimate = j.runtime;
    ++st.clamped_estimate;
  }
  j.user = f[kUser] > 0 ? static_cast<std::int32_t>(f[kUser]) : 0;
  out = j;
  ++st.accepted;
  return true;
}

}  // namespace detail

Workload read_swf(std::istream& in, std::string name, SwfReadStats* stats,
                  const SwfOptions& options) {
  SwfReadStats local;
  detail::SwfLineParser parser(options, stats ? *stats : local);

  Workload w;
  w.reserve(options.reserve_hint);
  std::string line;
  Job j;
  while (std::getline(in, line)) {
    if (parser.parse(line, j)) w.add(j);
  }
  w.set_name(std::move(name));
  w.finalize();
  return w;
}

Workload read_swf_file(const std::string& path, SwfReadStats* stats,
                       const SwfOptions& options) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open SWF file: " + path);
  SwfOptions opts = options;
  if (opts.reserve_hint == 0) {
    // Reserve from the file size: archive records run ~60-120 bytes, so
    // size/64 over-reserves slightly rather than growth-copying a
    // multi-million-job vector several times.
    in.seekg(0, std::ios::end);
    const auto bytes = in.tellg();
    in.seekg(0, std::ios::beg);
    if (bytes > 0) {
      opts.reserve_hint = static_cast<std::size_t>(bytes) / 64;
    }
  }
  return read_swf(in, path, stats, opts);
}

SwfJobSource::SwfJobSource(const std::string& path, const SwfOptions& options,
                           SwfReadStats* stats)
    : in_(path),
      st_(stats ? stats : &local_stats_),
      parser_(options, *st_),
      name_(path) {
  if (!in_) throw std::runtime_error("cannot open SWF file: " + path);
}

bool SwfJobSource::next(Job& out) {
  Job j;
  while (std::getline(in_, line_)) {
    if (!parser_.parse(line_, j)) continue;
    if (j.submit < prev_raw_submit_) {
      throw std::runtime_error(
          "SwfJobSource: record at line " + std::to_string(st_->lines) +
          " is out of submit order; streaming needs a sorted trace "
          "(read_swf_file sorts in memory)");
    }
    prev_raw_submit_ = j.submit;
    stamp(j);
    out = j;
    return true;
  }
  return false;
}

void write_swf(std::ostream& out, const Workload& w) {
  out << "; SWF written by jsched\n"
      << "; MaxProcs: " << w.max_nodes() << "\n"
      << "; Jobs: " << w.size() << "\n";
  util::BufferedWriter buf(out);
  for (const auto& j : w) {
    // job submit wait run alloc cpu mem reqproc reqtime reqmem status user
    // group app queue part prev think
    buf.append_int(static_cast<std::int64_t>(j.id) + 1);
    buf.append(' ');
    buf.append_int(j.submit);
    buf.append(" -1 ");
    buf.append_int(j.runtime);
    buf.append(' ');
    buf.append_int(j.nodes);
    buf.append(" -1 -1 ");
    buf.append_int(j.nodes);
    buf.append(' ');
    buf.append_int(j.estimate);
    buf.append(" -1 ");
    buf.append_int(status_code(j.status));
    buf.append(' ');
    buf.append_int(j.user);
    buf.append(" -1 -1 -1 -1 -1 -1\n");
  }
}

void write_swf_file(const std::string& path, const Workload& w) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open SWF file for write: " + path);
  write_swf(out, w);
}

}  // namespace jsched::workload
