// The paper's fully randomized workload (§6.3, Table 2): all parameters
// equally distributed, deliberately unlike any real workload, to probe
// scheduler behaviour "even in case of unusual job combinations".
#pragma once

#include <cstdint>
#include <string>

#include "util/rng.h"
#include "workload/job_source.h"
#include "workload/workload.h"

namespace jsched::workload {

struct RandomModelParams {
  /// Paper Table 1: 50,000 jobs.
  std::size_t job_count = 50'000;

  /// "Submission of jobs >= 1 job per hour": uniform inter-arrival in
  /// [0, max_interarrival] seconds.
  Duration max_interarrival = 3600;

  /// "Requested number of nodes 1 - 256".
  int min_nodes = 1;
  int max_nodes = 256;

  /// "Upper limit for the execution time 5 min - 24 h".
  Duration min_estimate = 5 * 60;
  Duration max_estimate = 24 * 3600;

  /// "Actual execution time 1 s - upper limit" (lower bound configurable).
  Duration min_runtime = 1;
};

/// Streaming randomized-workload generator: emits the exact stream
/// `generate_random` builds, one job at a time in O(1) state.
class RandomJobSource final : public JobSource {
 public:
  RandomJobSource(const RandomModelParams& params, std::uint64_t seed);

  bool next(Job& out) override;
  std::size_t size_hint() const noexcept override { return params_.job_count; }
  const std::string& name() const noexcept override { return name_; }

 private:
  RandomModelParams params_;
  util::Rng rng_;
  Time now_ = 0;
  std::string name_ = "randomized";
};

/// Generate the randomized workload. Deterministic in (params, seed).
Workload generate_random(const RandomModelParams& params, std::uint64_t seed);

inline Workload generate_random(std::uint64_t seed) {
  return generate_random(RandomModelParams{}, seed);
}

}  // namespace jsched::workload
