// The paper's "artificial workload based on probability distributions"
// (§6.2): statistics are extracted from a source trace and a new workload
// with the same distributions is sampled from them.
//
//   "An analysis of the CTC workload trace yields that a Weibull
//    distribution matches best the submission times of the jobs in the
//    trace. [...] bins are created for every possible requested resource
//    number (between 1 and 256), various ranges of requested time and of
//    actual execution length. Then probability values are calculated for
//    each bin from the CTC trace."
//
// We implement exactly that pipeline: a Weibull fit for inter-arrival
// times, one bin per node count, geometric requested-time ranges, and —
// so that sampled jobs always satisfy runtime <= estimate — a per-
// requested-time-bin histogram of the accuracy ratio runtime/estimate in
// place of an unconditional execution-length histogram.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.h"
#include "util/stats.h"
#include "workload/job_source.h"
#include "workload/workload.h"

namespace jsched::workload {

class StatsJobSource;

/// Distribution statistics extracted from a trace; a sampleable model.
class WorkloadStatistics {
 public:
  /// Extract from a source workload. `accuracy_bins` controls the
  /// resolution of the runtime/estimate ratio histograms.
  static WorkloadStatistics extract(const Workload& source,
                                    std::size_t accuracy_bins = 20);

  /// Sample `job_count` jobs. Deterministic in (this, seed).
  Workload sample(std::size_t job_count, std::uint64_t seed) const;

  // --- introspection (used by tests and the trace_tools example) ---
  const util::WeibullFit& interarrival_fit() const noexcept { return arrival_; }
  int max_nodes() const noexcept { return static_cast<int>(node_cdf_.size()); }
  double node_probability(int nodes) const;
  std::size_t estimate_bin_count() const noexcept { return estimate_bounds_.size(); }

 private:
  friend class StatsJobSource;

  util::WeibullFit arrival_{1.0, 1.0};
  util::DiscreteCdf node_cdf_;  // index i => (i+1) nodes

  // Requested-time bins: geometric upper bounds (seconds).
  std::vector<double> estimate_bounds_;
  util::DiscreteCdf estimate_cdf_;

  // Per-estimate-bin accuracy (runtime/estimate in (0,1]) histograms.
  std::vector<util::DiscreteCdf> accuracy_cdfs_;
  std::size_t accuracy_bins_ = 20;
};

/// Streaming counterpart of WorkloadStatistics::sample: emits the exact
/// same job stream one at a time. Holds its own copy of the (small,
/// workload-size-independent) statistics, so the model object need not
/// outlive the source.
class StatsJobSource final : public JobSource {
 public:
  StatsJobSource(const WorkloadStatistics& stats, std::size_t job_count,
                 std::uint64_t seed);

  bool next(Job& out) override;
  std::size_t size_hint() const noexcept override { return job_count_; }
  const std::string& name() const noexcept override { return name_; }

 private:
  WorkloadStatistics stats_;
  std::size_t job_count_;
  util::Rng arrival_rng_;
  util::Rng node_rng_;
  util::Rng estimate_rng_;
  util::Rng accuracy_rng_;
  Time now_ = 0;
  std::string name_ = "probabilistic";
};

/// One-call version of the paper's §6.2 workload: extract statistics from
/// `source` and sample `job_count` jobs (paper: 50,000).
Workload generate_probabilistic(const Workload& source, std::size_t job_count,
                                std::uint64_t seed);

}  // namespace jsched::workload
