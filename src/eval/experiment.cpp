#include "eval/experiment.h"

#include <mutex>
#include <stdexcept>

#include "eval/internal.h"
#include "metrics/objectives.h"
#include "metrics/resilience.h"
#include "sim/simulator.h"
#include "util/thread_pool.h"

namespace jsched::eval {

namespace detail {

std::size_t resolved_threads(const ExperimentOptions& options) {
  return options.threads == 0 ? util::ThreadPool::hardware_threads()
                              : options.threads;
}

ExperimentOptions with_serialized_on_run(const ExperimentOptions& options,
                                         std::mutex& mu) {
  ExperimentOptions per_task = options;
  if (options.on_run) {
    per_task.on_run = [&options, &mu](const std::string& name) {
      std::lock_guard<std::mutex> lock(mu);
      options.on_run(name);
    };
  }
  return per_task;
}

}  // namespace detail

RunResult run_one(const sim::Machine& machine, const core::AlgorithmSpec& spec,
                  const workload::Workload& workload,
                  const ExperimentOptions& options) {
  if (options.on_run) options.on_run(spec.display_name());

  auto scheduler = core::make_scheduler(spec);
  sim::SimOptions sim_options;
  sim_options.validate = options.validate;
  sim_options.measure_scheduler_cpu = options.measure_cpu;
  sim_options.faults = options.faults;
  const sim::Schedule schedule =
      sim::simulate(machine, *scheduler, workload, sim_options);

  RunResult r;
  r.spec = spec;
  r.scheduler_name = scheduler->name();
  r.jobs = workload.size();
  r.art = metrics::average_response_time(schedule);
  r.awrt = metrics::average_weighted_response_time(schedule);
  r.wait = metrics::average_wait_time(schedule);
  r.makespan = static_cast<double>(metrics::makespan(schedule));
  r.utilization = metrics::utilization(schedule);
  r.scheduler_cpu_seconds = schedule.scheduler_cpu_seconds;
  r.max_queue_length = schedule.max_queue_length;
  r.schedule_fnv = sim::schedule_fingerprint(schedule);
  const metrics::ResilienceReport res = metrics::resilience(schedule, workload);
  r.goodput_node_seconds = res.useful_node_seconds;
  r.wasted_node_seconds = res.wasted_node_seconds;
  r.goodput_fraction = res.goodput_fraction;
  r.availability = res.availability;
  r.availability_weighted_utilization = res.availability_weighted_utilization;
  r.kills = res.kills;
  r.jobs_hit = res.jobs_hit;
  return r;
}

std::vector<RunResult> run_grid(const sim::Machine& machine,
                                core::WeightKind weight,
                                const workload::Workload& workload,
                                const ExperimentOptions& options) {
  const std::vector<core::AlgorithmSpec> specs = core::paper_grid(weight);
  const std::size_t threads = detail::resolved_threads(options);
  if (threads <= 1) {
    std::vector<RunResult> out;
    for (const core::AlgorithmSpec& spec : specs) {
      out.push_back(run_one(machine, spec, workload, options));
    }
    return out;
  }
  // Each task builds its own scheduler and simulates independently; slot i
  // of the output is written only by task i, so results land in paper_grid
  // order no matter which configuration finishes first.
  std::vector<RunResult> out(specs.size());
  std::mutex on_run_mu;
  const ExperimentOptions per_task =
      detail::with_serialized_on_run(options, on_run_mu);
  util::parallel_for_each(specs.size(), threads, [&](std::size_t i) {
    out[i] = run_one(machine, specs[i], workload, per_task);
  });
  return out;
}

std::vector<std::vector<RunResult>> run_fault_sweep(
    const sim::Machine& machine, core::WeightKind weight,
    const workload::Workload& workload,
    const std::vector<FaultSweepPoint>& points,
    const ExperimentOptions& options) {
  std::vector<std::vector<RunResult>> out;
  out.reserve(points.size());
  for (const FaultSweepPoint& point : points) {
    ExperimentOptions per_point = options;
    per_point.faults = point.faults;
    out.push_back(run_grid(machine, weight, workload, per_point));
  }
  return out;
}

const RunResult& find(const std::vector<RunResult>& results,
                      core::OrderKind order, core::DispatchKind dispatch) {
  for (const RunResult& r : results) {
    if (r.spec.order == order && r.spec.dispatch == dispatch) return r;
  }
  throw std::out_of_range("eval::find: configuration not in results");
}

}  // namespace jsched::eval
