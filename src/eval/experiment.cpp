#include "eval/experiment.h"

#include <mutex>
#include <stdexcept>

#include "eval/internal.h"
#include "eval/journal.h"
#include "eval/shard.h"
#include "metrics/objectives.h"
#include "metrics/resilience.h"
#include "metrics/streaming.h"
#include "sim/schedule.h"
#include "sim/simulator.h"
#include "sim/streaming.h"
#include "util/thread_pool.h"

namespace jsched::eval {

void ShardSpec::validate() const {
  if (count == 0) {
    throw std::invalid_argument("ShardSpec: count must be >= 1");
  }
  if (index >= count) {
    throw std::invalid_argument("ShardSpec: index " + std::to_string(index) +
                                " out of range for " + std::to_string(count) +
                                " shard" + (count == 1 ? "" : "s"));
  }
}

namespace detail {

std::size_t resolved_threads(const ExperimentOptions& options) {
  return options.threads == 0 ? util::ThreadPool::hardware_threads()
                              : options.threads;
}

ExperimentOptions with_serialized_on_run(const ExperimentOptions& options,
                                         std::mutex& mu) {
  ExperimentOptions per_task = options;
  if (options.on_run) {
    per_task.on_run = [&options, &mu](const std::string& name) {
      std::lock_guard<std::mutex> lock(mu);
      options.on_run(name);
    };
  }
  return per_task;
}

RunError classify_current_exception(const std::string& scheduler) {
  RunError err;
  err.scheduler = scheduler;
  try {
    throw;
  } catch (const sim::CancelledError& e) {
    err.kind = e.reason() == sim::CancelledError::Reason::kDeadline
                   ? RunErrorKind::kTimeout
                   : RunErrorKind::kCancelled;
    err.message = e.what();
  } catch (const PhaseError& e) {
    err.kind = e.kind();
    err.message = e.what();
  } catch (const sim::ValidationError& e) {
    err.kind = RunErrorKind::kValidation;
    err.message = e.what();
  } catch (const std::logic_error& e) {
    // The simulator's event-loop contract checks (bad start selections,
    // overallocation, out-of-order events) throw logic_error: the
    // scheduler, not the harness, broke the rules.
    err.kind = RunErrorKind::kScheduler;
    err.message = e.what();
  } catch (const std::exception& e) {
    err.kind = RunErrorKind::kSimulation;
    err.message = e.what();
  } catch (...) {
    err.kind = RunErrorKind::kSimulation;
    err.message = "unknown non-standard exception";
  }
  return err;
}

RunOutcome run_cell_protected(const ExperimentOptions& options,
                              std::uint64_t key,
                              const core::AlgorithmSpec& spec,
                              const std::function<RunResult()>& attempt) {
  if (options.journal != nullptr) {
    RunResult cached;
    if (options.journal->lookup(key, spec, &cached)) {
      return RunOutcome::success(std::move(cached), 0);
    }
  }
  const auto record = [&](const RunResult& r) {
    if (options.journal != nullptr) options.journal->record(key, r);
  };
  if (options.error_policy == ErrorPolicy::kFailFast) {
    // Nothing is caught: callers observe the original exception type.
    RunResult r = attempt();
    record(r);
    return RunOutcome::success(std::move(r), 1);
  }
  const std::size_t total_attempts =
      options.error_policy == ErrorPolicy::kRetryN ? 1 + options.max_retries
                                                   : 1;
  RunError err;
  for (std::size_t tries = 1; tries <= total_attempts; ++tries) {
    try {
      RunResult r = attempt();
      record(r);
      return RunOutcome::success(std::move(r), tries);
    } catch (...) {
      err = classify_current_exception(spec.display_name());
      err.attempts = tries;
    }
  }
  return RunOutcome::failure(std::move(err));
}

namespace {

/// Key for a grid cell; 0 when no journal is active (never looked up).
std::uint64_t grid_cell_key(const ExperimentOptions& options,
                            std::uint64_t workload_fnv, int machine_nodes,
                            const core::AlgorithmSpec& spec) {
  if (options.journal == nullptr) return 0;
  return cell_key(workload_fnv, machine_nodes, spec, options.journal_salt);
}

/// Workload fingerprint, computed only when a journal needs it.
std::uint64_t journal_workload_fnv(const ExperimentOptions& options,
                                   const workload::Workload& workload) {
  return options.journal == nullptr ? 0 : workload::fingerprint(workload);
}

/// FNV-1a over a string — salts fault-sweep points by label.
std::uint64_t label_salt(const std::string& label) {
  std::uint64_t h = 14695981039346656037ull;
  for (char c : label) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

}  // namespace detail

RunResult run_streamed(const sim::Machine& machine,
                       const core::AlgorithmSpec& spec,
                       workload::JobSource& source,
                       const ExperimentOptions& options) {
  if (options.on_run) options.on_run(spec.display_name());

  auto scheduler = options.scheduler_factory ? options.scheduler_factory(spec)
                                             : core::make_scheduler(spec);
  sim::StreamOptions stream_options;
  stream_options.measure_scheduler_cpu = options.measure_cpu;
  stream_options.faults = options.faults;
  sim::CancelToken token(options.cancel);
  token.set_clock(options.clock);
  if (options.run_deadline.count() != 0) {
    token.set_deadline_after(options.run_deadline);
  }
  if (options.cancel != nullptr || options.run_deadline.count() != 0) {
    stream_options.cancel = &token;
  }
  metrics::StreamingAggregator aggregator(machine.nodes);
  const sim::StreamStats stats = sim::simulate_stream(
      machine, *scheduler, source, aggregator, stream_options);
  const metrics::StreamedMetrics m = aggregator.finish();

  RunResult r;
  r.spec = spec;
  r.scheduler_name = scheduler->name();
  r.jobs = m.jobs;
  r.art = m.art;
  r.awrt = m.awrt;
  r.wait = m.wait;
  r.makespan = static_cast<double>(m.makespan);
  r.utilization = m.utilization;
  r.scheduler_cpu_seconds = stats.scheduler_cpu_seconds;
  r.max_queue_length = stats.max_queue_length;
  r.schedule_fnv = m.schedule_fnv;
  r.goodput_node_seconds = m.resilience.useful_node_seconds;
  r.wasted_node_seconds = m.resilience.wasted_node_seconds;
  r.goodput_fraction = m.resilience.goodput_fraction;
  r.availability = m.resilience.availability;
  r.availability_weighted_utilization =
      m.resilience.availability_weighted_utilization;
  r.kills = m.resilience.kills;
  r.jobs_hit = m.resilience.jobs_hit;
  return r;
}

RunResult run_one(const sim::Machine& machine, const core::AlgorithmSpec& spec,
                  const workload::Workload& workload,
                  const ExperimentOptions& options) {
  if (options.streaming) {
    workload::WorkloadSource source(workload);
    return run_streamed(machine, spec, source, options);
  }
  if (options.on_run) options.on_run(spec.display_name());

  auto scheduler = options.scheduler_factory ? options.scheduler_factory(spec)
                                             : core::make_scheduler(spec);
  sim::SimOptions sim_options;
  sim_options.validate = options.validate;
  sim_options.measure_scheduler_cpu = options.measure_cpu;
  sim_options.faults = options.faults;
  // Per-run deadline token, chained to the sweep-wide token (if any) so an
  // external cancel and a local deadline both stop this run.
  sim::CancelToken token(options.cancel);
  token.set_clock(options.clock);
  if (options.run_deadline.count() != 0) {
    token.set_deadline_after(options.run_deadline);
  }
  if (options.cancel != nullptr || options.run_deadline.count() != 0) {
    sim_options.cancel = &token;
  }
  const sim::Schedule schedule =
      sim::simulate(machine, *scheduler, workload, sim_options);

  RunResult r;
  r.spec = spec;
  r.scheduler_name = scheduler->name();
  r.jobs = workload.size();
  r.art = metrics::average_response_time(schedule);
  r.awrt = metrics::average_weighted_response_time(schedule);
  r.wait = metrics::average_wait_time(schedule);
  r.makespan = static_cast<double>(metrics::makespan(schedule));
  r.utilization = metrics::utilization(schedule);
  r.scheduler_cpu_seconds = schedule.scheduler_cpu_seconds;
  r.max_queue_length = schedule.max_queue_length;
  r.schedule_fnv = sim::schedule_fingerprint(schedule);
  const metrics::ResilienceReport res = metrics::resilience(schedule, workload);
  r.goodput_node_seconds = res.useful_node_seconds;
  r.wasted_node_seconds = res.wasted_node_seconds;
  r.goodput_fraction = res.goodput_fraction;
  r.availability = res.availability;
  r.availability_weighted_utilization = res.availability_weighted_utilization;
  r.kills = res.kills;
  r.jobs_hit = res.jobs_hit;
  return r;
}

RunOutcome run_one_outcome(const sim::Machine& machine,
                           const core::AlgorithmSpec& spec,
                           const workload::Workload& workload,
                           const ExperimentOptions& options) {
  const std::uint64_t key = detail::grid_cell_key(
      options, detail::journal_workload_fnv(options, workload), machine.nodes,
      spec);
  return detail::run_cell_protected(
      options, key, spec,
      [&] { return run_one(machine, spec, workload, options); });
}

GridResult run_grid_outcomes(const sim::Machine& machine,
                             core::WeightKind weight,
                             const workload::Workload& workload,
                             const ExperimentOptions& options) {
  options.shard.validate();
  const std::vector<core::AlgorithmSpec> specs = core::paper_grid(weight);
  // Cell keys serve two masters: journal checkpointing and the shard
  // partition. Either one needs the workload fingerprint computed.
  const bool keyed = options.journal != nullptr || options.shard.active();
  const std::uint64_t workload_fnv =
      keyed ? workload::fingerprint(workload) : 0;
  std::vector<std::uint64_t> keys(specs.size(), 0);
  if (keyed) {
    for (std::size_t i = 0; i < specs.size(); ++i) {
      keys[i] = cell_key(workload_fnv, machine.nodes, specs[i],
                         options.journal_salt);
    }
  }
  // The shard assignment is a pure function of this grid's key set, so
  // every shard process derives the identical disjoint partition with no
  // coordination (see shard.h).
  std::unique_ptr<ShardPlan> plan;
  if (options.shard.active()) {
    plan = std::make_unique<ShardPlan>(keys, options.shard.count);
  }
  const std::size_t threads = detail::resolved_threads(options);

  GridResult out;
  if (options.journal != nullptr) {
    // Bind the journal to this sweep before any lookup: cells recorded
    // for a different workload/machine are stale and must not linger as
    // silent dead weight (their keys would never hit anyway — the point
    // is the explicit report and the fresh segment).
    out.journal_note = options.journal->open_segment(
        sweep_fingerprint(workload_fnv, machine.nodes));
  }
  out.cells.resize(specs.size());
  const auto run_cell = [&](std::size_t i, const ExperimentOptions& opts) {
    const core::AlgorithmSpec& spec = specs[i];
    if (plan != nullptr && plan->shard_of(keys[i]) != opts.shard.index) {
      out.cells[i] = RunOutcome::other_shard();
      return;
    }
    out.cells[i] = detail::run_cell_protected(
        opts, keys[i], spec,
        [&] { return run_one(machine, spec, workload, opts); });
  };

  if (threads <= 1) {
    for (std::size_t i = 0; i < specs.size(); ++i) run_cell(i, options);
    return out;
  }
  // Each task builds its own scheduler and simulates independently; slot i
  // of the output is written only by task i, so results land in paper_grid
  // order no matter which configuration finishes first. Under kFailFast a
  // failing cell stops the pool from *starting* further cells (in-flight
  // ones drain) before the exception is rethrown here.
  std::mutex on_run_mu;
  const ExperimentOptions per_task =
      detail::with_serialized_on_run(options, on_run_mu);
  util::ThreadPool::ParallelOptions pool_options;
  pool_options.stop_on_error = options.error_policy == ErrorPolicy::kFailFast;
  util::parallel_for_each(
      specs.size(), threads, [&](std::size_t i) { run_cell(i, per_task); },
      pool_options);
  return out;
}

std::vector<RunResult> run_grid(const sim::Machine& machine,
                                core::WeightKind weight,
                                const workload::Workload& workload,
                                const ExperimentOptions& options) {
  if (options.shard.active()) {
    throw std::invalid_argument(
        "run_grid: a sharded sweep produces a partial grid; use "
        "run_grid_outcomes and merge the shard journals");
  }
  GridResult grid = run_grid_outcomes(machine, weight, workload, options);
  // Only reachable under kIsolate / kRetryN: kFailFast already threw the
  // original exception from inside the sweep.
  if (!grid.all_ok()) {
    std::string msg = "run_grid: " + std::to_string(grid.failed()) + " of " +
                      std::to_string(grid.cells.size()) + " cells failed:";
    for (const RunError& e : grid.failures()) {
      msg += "\n  " + e.describe();
    }
    msg += "\nuse run_grid_outcomes to receive partial results";
    throw std::runtime_error(msg);
  }
  return grid.results();
}

std::vector<GridResult> run_fault_sweep_outcomes(
    const sim::Machine& machine, core::WeightKind weight,
    const workload::Workload& workload,
    const std::vector<FaultSweepPoint>& points,
    const ExperimentOptions& options) {
  std::vector<GridResult> out;
  out.reserve(points.size());
  for (const FaultSweepPoint& point : points) {
    ExperimentOptions per_point = options;
    per_point.faults = point.faults;
    // Salt the journal key per point: the same grid cell under different
    // fault intensities is different work.
    per_point.journal_salt =
        options.journal_salt ^ detail::label_salt(point.label);
    out.push_back(run_grid_outcomes(machine, weight, workload, per_point));
  }
  return out;
}

std::vector<std::vector<RunResult>> run_fault_sweep(
    const sim::Machine& machine, core::WeightKind weight,
    const workload::Workload& workload,
    const std::vector<FaultSweepPoint>& points,
    const ExperimentOptions& options) {
  std::vector<std::vector<RunResult>> out;
  out.reserve(points.size());
  const std::vector<GridResult> grids =
      run_fault_sweep_outcomes(machine, weight, workload, points, options);
  for (std::size_t p = 0; p < grids.size(); ++p) {
    if (!grids[p].all_ok()) {
      std::string msg = "run_fault_sweep: point '" + points[p].label + "': " +
                        std::to_string(grids[p].failed()) + " cells failed:";
      for (const RunError& e : grids[p].failures()) {
        msg += "\n  " + e.describe();
      }
      throw std::runtime_error(msg);
    }
    out.push_back(grids[p].results());
  }
  return out;
}

const RunResult& find(const std::vector<RunResult>& results,
                      core::OrderKind order, core::DispatchKind dispatch) {
  for (const RunResult& r : results) {
    if (r.spec.order == order && r.spec.dispatch == dispatch) return r;
  }
  throw std::out_of_range(std::string("eval::find: configuration ") +
                          core::to_string(order) + "+" +
                          core::to_string(dispatch) + " not in results");
}

}  // namespace jsched::eval
