#include "eval/experiment.h"

#include <stdexcept>

#include "metrics/objectives.h"
#include "sim/simulator.h"

namespace jsched::eval {

RunResult run_one(const sim::Machine& machine, const core::AlgorithmSpec& spec,
                  const workload::Workload& workload,
                  const ExperimentOptions& options) {
  if (options.on_run) options.on_run(spec.display_name());

  auto scheduler = core::make_scheduler(spec);
  sim::SimOptions sim_options;
  sim_options.validate = options.validate;
  sim_options.measure_scheduler_cpu = options.measure_cpu;
  const sim::Schedule schedule =
      sim::simulate(machine, *scheduler, workload, sim_options);

  RunResult r;
  r.spec = spec;
  r.scheduler_name = scheduler->name();
  r.jobs = workload.size();
  r.art = metrics::average_response_time(schedule);
  r.awrt = metrics::average_weighted_response_time(schedule);
  r.wait = metrics::average_wait_time(schedule);
  r.makespan = static_cast<double>(metrics::makespan(schedule));
  r.utilization = metrics::utilization(schedule);
  r.scheduler_cpu_seconds = schedule.scheduler_cpu_seconds;
  r.max_queue_length = schedule.max_queue_length;
  return r;
}

std::vector<RunResult> run_grid(const sim::Machine& machine,
                                core::WeightKind weight,
                                const workload::Workload& workload,
                                const ExperimentOptions& options) {
  std::vector<RunResult> out;
  for (const core::AlgorithmSpec& spec : core::paper_grid(weight)) {
    out.push_back(run_one(machine, spec, workload, options));
  }
  return out;
}

const RunResult& find(const std::vector<RunResult>& results,
                      core::OrderKind order, core::DispatchKind dispatch) {
  for (const RunResult& r : results) {
    if (r.spec.order == order && r.spec.dispatch == dispatch) return r;
  }
  throw std::out_of_range("eval::find: configuration not in results");
}

}  // namespace jsched::eval
