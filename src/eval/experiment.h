// The evaluation harness: run the paper's algorithm grid over a workload
// and collect every metric the tables and figures report.
//
// Fault tolerance: every sweep entry point exists in two forms. The
// classic form (run_grid, run_fault_sweep) returns plain results and
// throws on failure; the *_outcomes form returns RunOutcome cells that
// carry either a RunResult or a structured RunError, with the behavior on
// failure selected by ExperimentOptions::error_policy. Under the default
// kFailFast policy the harness catches nothing, so existing callers see
// byte-identical behavior.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/factory.h"
#include "eval/outcome.h"
#include "fault/fault.h"
#include "sim/cancel.h"
#include "sim/machine.h"
#include "workload/job_source.h"
#include "workload/workload.h"

namespace jsched::eval {

class SweepJournal;
class WorkloadCache;

/// One shard of a deterministically partitioned sweep. The cells of a grid
/// are ranked by their FNV cell key (see shard.h) and dealt round-robin:
/// cell with key-rank r belongs to shard r % count. Every shard of a sweep
/// — whether spawned by the coordinator in tools/sweepd or launched by
/// hand on another machine — computes the identical assignment from the
/// identical inputs, so the shards are disjoint and cover the grid with no
/// coordination. The default {0, 1} owns everything (sharding inactive).
struct ShardSpec {
  std::size_t index = 0;
  std::size_t count = 1;

  bool active() const noexcept { return count > 1; }
  /// Throws std::invalid_argument unless index < count and count >= 1.
  void validate() const;
};

/// Everything measured for one (algorithm, workload) simulation.
struct RunResult {
  core::AlgorithmSpec spec;
  std::string scheduler_name;
  std::size_t jobs = 0;

  double art = 0.0;      // average response time (s)
  double awrt = 0.0;     // average weighted response time (node-s * s / job)
  double wait = 0.0;     // average wait time (s)
  double makespan = 0.0;
  double utilization = 0.0;
  double scheduler_cpu_seconds = 0.0;
  std::size_t max_queue_length = 0;
  /// sim::schedule_fingerprint of the produced schedule: the bit-identity
  /// witness perf PRs compare against their baseline (BENCH_grid.json).
  std::uint64_t schedule_fnv = 0;

  // Resilience metrics (metrics::resilience). In a fault-free run goodput
  // equals the executed node-seconds, wasted is 0, availability is 1 and
  // the availability-weighted utilization equals `utilization`.
  double goodput_node_seconds = 0.0;
  double wasted_node_seconds = 0.0;
  double goodput_fraction = 1.0;
  double availability = 1.0;
  double availability_weighted_utilization = 0.0;
  std::size_t kills = 0;
  std::size_t jobs_hit = 0;

  /// The metric matching the run's objective (art for unit weight, awrt
  /// for area weight).
  double objective_cost() const {
    return spec.weight == core::WeightKind::kUnit ? art : awrt;
  }
};

/// One sweep cell: a RunResult, the structured error that replaced it, or
/// a marker that the cell belongs to another shard of a partitioned sweep.
struct RunOutcome {
  bool ok = false;
  /// True when this cell was not attempted because ShardSpec assigns it to
  /// a different shard (ok is false, but the cell did not *fail* — another
  /// worker owns it). Skipped cells never count toward failed().
  bool skipped = false;
  /// Attempts consumed: 1 for a clean run, more under ErrorPolicy::kRetryN,
  /// and 0 when the result was resumed from a SweepJournal without
  /// re-simulating.
  std::size_t attempts = 1;
  RunResult result;  // meaningful iff ok
  RunError error;    // meaningful iff !ok && !skipped

  static RunOutcome success(RunResult r, std::size_t attempts) {
    RunOutcome o;
    o.ok = true;
    o.attempts = attempts;
    o.result = std::move(r);
    return o;
  }
  static RunOutcome failure(RunError e) {
    RunOutcome o;
    o.ok = false;
    o.attempts = e.attempts;
    o.error = std::move(e);
    return o;
  }
  static RunOutcome other_shard() {
    RunOutcome o;
    o.skipped = true;
    o.attempts = 0;
    return o;
  }
};

/// All cells of one grid sweep, in core::paper_grid order, plus the
/// failure bookkeeping a report needs.
struct GridResult {
  std::vector<RunOutcome> cells;
  /// Stale-journal report from SweepJournal::open_segment ("" when the
  /// journal matched the sweep, or no journal was used). Surfaced by
  /// failure_summary.
  std::string journal_note;

  std::size_t failed() const {
    std::size_t n = 0;
    for (const RunOutcome& c : cells) n += (!c.ok && !c.skipped) ? 1 : 0;
    return n;
  }
  bool all_ok() const { return failed() == 0; }
  /// Cells assigned to other shards of a partitioned sweep (not run here).
  std::size_t skipped() const {
    std::size_t n = 0;
    for (const RunOutcome& c : cells) n += c.skipped ? 1 : 0;
    return n;
  }
  /// Cells resumed from a journal (attempts == 0).
  std::size_t resumed() const {
    std::size_t n = 0;
    for (const RunOutcome& c : cells) n += (c.ok && c.attempts == 0) ? 1 : 0;
    return n;
  }
  /// The successful results, in cell order (failed cells are skipped; use
  /// failures() to see what is missing).
  std::vector<RunResult> results() const {
    std::vector<RunResult> out;
    out.reserve(cells.size());
    for (const RunOutcome& c : cells) {
      if (c.ok) out.push_back(c.result);
    }
    return out;
  }
  std::vector<RunError> failures() const {
    std::vector<RunError> out;
    for (const RunOutcome& c : cells) {
      if (!c.ok) out.push_back(c.error);
    }
    return out;
  }
};

struct ExperimentOptions {
  bool measure_cpu = true;
  bool validate = true;
  /// Run simulations through the bounded-memory streaming path
  /// (sim::simulate_stream + metrics::StreamingAggregator) instead of
  /// materializing a Schedule. Off by default; when on, every RunResult
  /// field — including schedule_fnv — is bit-identical to the batch path
  /// (the goldens suite pins this), but `validate` is ignored because
  /// whole-schedule validation needs the materialized records.
  bool streaming = false;
  /// Worker threads for run_grid / run_replicated sweeps. 1 = fully serial
  /// (today's behavior, bit-for-bit); 0 = one per hardware thread. Results
  /// are aggregated in task-index order regardless of completion order, so
  /// any thread count returns identical RunResult vectors — per-run
  /// scheduler CPU time stays exact because the simulator measures with
  /// the thread CPU clock.
  std::size_t threads = 1;
  /// Called before each run with the algorithm display name (progress
  /// reporting in long benches); may be empty. With threads > 1 the
  /// callback is serialized by a mutex but fires in completion order.
  std::function<void(const std::string&)> on_run;
  /// Fault-injection axis, forwarded to every simulation (the referenced
  /// trace must outlive the run). Inactive by default; results are then
  /// bit-identical to a build without fault support. Simulation is
  /// deterministic in (workload, trace, recovery), so any `threads` value
  /// produces identical results under faults too.
  fault::FaultOptions faults{};

  /// What a sweep does when one cell throws (see outcome.h). kFailFast —
  /// the default — catches nothing: exceptions keep their original type
  /// and abort the sweep exactly as before this option existed.
  ErrorPolicy error_policy = ErrorPolicy::kFailFast;
  /// Extra attempts per failed cell under ErrorPolicy::kRetryN (total
  /// attempts = 1 + max_retries). Retries re-run the identical inputs.
  std::size_t max_retries = 2;
  /// Per-run wall-clock budget; 0 = unlimited (a negative budget is
  /// already expired — deterministic timeouts in tests). Checked
  /// cooperatively at event-loop iteration boundaries, so an expired run
  /// stops within one iteration and surfaces as a kTimeout RunError (or,
  /// under kFailFast, as sim::CancelledError).
  std::chrono::milliseconds run_deadline{0};
  /// Optional sweep-wide cancellation (not owned; may be null): cancelling
  /// it aborts every in-flight run at its next event-loop iteration.
  const sim::CancelToken* cancel = nullptr;
  /// Time source for run_deadline arming and expiry checks (not owned; may
  /// be null = the real steady clock). Tests inject a util::ManualClock and
  /// advance it instead of sleeping, so deadline tests are deterministic.
  const util::Clock* clock = nullptr;
  /// Checkpoint/resume journal (not owned; may be null). Completed cells
  /// are recorded; cells whose key is already journaled are skipped and
  /// their stored RunResult returned with attempts == 0. Works under every
  /// error policy.
  SweepJournal* journal = nullptr;
  /// Mixed into every journal cell key; lets one journal file hold several
  /// sweeps over the same workload (e.g. fault-sweep points) without
  /// collisions.
  std::uint64_t journal_salt = 0;
  /// This process's shard of a partitioned sweep (see shard.h). With
  /// count > 1, run_grid_outcomes attempts only the cells the deterministic
  /// key partition assigns to `index` and marks the rest skipped; a merge
  /// of all shards' journals reconstitutes the full grid bit-identically.
  /// run_grid (the throwing form) rejects an active shard spec — partial
  /// grids need the outcome-aware API.
  ShardSpec shard{};
  /// Memoized workload materializations keyed by caller-chosen identity
  /// (not owned; may be null). run_replicated consults it per seed, so a
  /// replication study sweeping many specs over the same seeds generates
  /// each workload once instead of once per spec. Must outlive the run;
  /// thread-safe.
  WorkloadCache* workload_cache = nullptr;
  /// Override scheduler construction (testing/CI hook: inject a throwing
  /// or instrumented scheduler for selected specs). Null = core
  /// factory. Must be thread-safe when threads > 1.
  std::function<std::unique_ptr<sim::Scheduler>(const core::AlgorithmSpec&)>
      scheduler_factory;
};

/// Simulate one algorithm over one workload. Always throws on failure
/// regardless of error_policy (a single run has no other cells to
/// salvage); deadline/cancellation/journal options are honored.
RunResult run_one(const sim::Machine& machine, const core::AlgorithmSpec& spec,
                  const workload::Workload& workload,
                  const ExperimentOptions& options = {});

/// Simulate one algorithm over a job *stream* without ever materializing
/// the workload or the schedule — the O(1)-RSS entry point for runs too
/// large to hold in memory (10M-job scaling studies). Metric semantics
/// are identical to run_one (same aggregation order, bit-identical
/// results); `options.validate` is ignored and `jobs` is the streamed
/// count. The source is consumed.
RunResult run_streamed(const sim::Machine& machine,
                       const core::AlgorithmSpec& spec,
                       workload::JobSource& source,
                       const ExperimentOptions& options = {});

/// run_one with the failure captured per error_policy: under kFailFast the
/// exception propagates; under kIsolate / kRetryN it is returned as a
/// structured RunOutcome failure.
RunOutcome run_one_outcome(const sim::Machine& machine,
                           const core::AlgorithmSpec& spec,
                           const workload::Workload& workload,
                           const ExperimentOptions& options = {});

/// Simulate the paper's full grid (13 configurations) for one objective.
/// Runs configurations on `options.threads` workers; the returned vector
/// is always in paper_grid order and identical for any thread count.
/// Under kIsolate / kRetryN a sweep with failed cells throws
/// std::runtime_error summarizing them — use run_grid_outcomes to receive
/// partial results instead. Throws std::invalid_argument when
/// options.shard is active (a shard is a partial grid by construction).
std::vector<RunResult> run_grid(const sim::Machine& machine,
                                core::WeightKind weight,
                                const workload::Workload& workload,
                                const ExperimentOptions& options = {});

/// run_grid with per-cell outcomes. Under kFailFast the first cell failure
/// propagates as its original exception; under kIsolate / kRetryN every
/// healthy cell completes and failed cells carry their RunError.
GridResult run_grid_outcomes(const sim::Machine& machine,
                             core::WeightKind weight,
                             const workload::Workload& workload,
                             const ExperimentOptions& options = {});

/// Find the grid entry with the given order/dispatch; throws
/// std::out_of_range naming the missing pair if absent.
const RunResult& find(const std::vector<RunResult>& results,
                      core::OrderKind order, core::DispatchKind dispatch);

/// One point of a failure-intensity sweep: a label ("mtbf=7d") plus the
/// fault axis to apply.
struct FaultSweepPoint {
  std::string label;
  fault::FaultOptions faults;
};

/// Run the full grid once per sweep point (each via run_grid, so
/// `options.threads` parallelizes within a point); result [i] belongs to
/// points[i]. Any faults already present in `options` are replaced by each
/// point's. Degradation curves (goodput, ART inflation, ...) read
/// straight off the per-point RunResult vectors.
std::vector<std::vector<RunResult>> run_fault_sweep(
    const sim::Machine& machine, core::WeightKind weight,
    const workload::Workload& workload,
    const std::vector<FaultSweepPoint>& points,
    const ExperimentOptions& options = {});

/// run_fault_sweep with per-cell outcomes; each point's journal cells are
/// salted with the point's label so one journal can hold the whole sweep.
std::vector<GridResult> run_fault_sweep_outcomes(
    const sim::Machine& machine, core::WeightKind weight,
    const workload::Workload& workload,
    const std::vector<FaultSweepPoint>& points,
    const ExperimentOptions& options = {});

}  // namespace jsched::eval
