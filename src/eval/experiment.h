// The evaluation harness: run the paper's algorithm grid over a workload
// and collect every metric the tables and figures report.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/factory.h"
#include "fault/fault.h"
#include "sim/machine.h"
#include "workload/workload.h"

namespace jsched::eval {

/// Everything measured for one (algorithm, workload) simulation.
struct RunResult {
  core::AlgorithmSpec spec;
  std::string scheduler_name;
  std::size_t jobs = 0;

  double art = 0.0;      // average response time (s)
  double awrt = 0.0;     // average weighted response time (node-s * s / job)
  double wait = 0.0;     // average wait time (s)
  double makespan = 0.0;
  double utilization = 0.0;
  double scheduler_cpu_seconds = 0.0;
  std::size_t max_queue_length = 0;
  /// sim::schedule_fingerprint of the produced schedule: the bit-identity
  /// witness perf PRs compare against their baseline (BENCH_grid.json).
  std::uint64_t schedule_fnv = 0;

  // Resilience metrics (metrics::resilience). In a fault-free run goodput
  // equals the executed node-seconds, wasted is 0, availability is 1 and
  // the availability-weighted utilization equals `utilization`.
  double goodput_node_seconds = 0.0;
  double wasted_node_seconds = 0.0;
  double goodput_fraction = 1.0;
  double availability = 1.0;
  double availability_weighted_utilization = 0.0;
  std::size_t kills = 0;
  std::size_t jobs_hit = 0;

  /// The metric matching the run's objective (art for unit weight, awrt
  /// for area weight).
  double objective_cost() const {
    return spec.weight == core::WeightKind::kUnit ? art : awrt;
  }
};

struct ExperimentOptions {
  bool measure_cpu = true;
  bool validate = true;
  /// Worker threads for run_grid / run_replicated sweeps. 1 = fully serial
  /// (today's behavior, bit-for-bit); 0 = one per hardware thread. Results
  /// are aggregated in task-index order regardless of completion order, so
  /// any thread count returns identical RunResult vectors — per-run
  /// scheduler CPU time stays exact because the simulator measures with
  /// the thread CPU clock.
  std::size_t threads = 1;
  /// Called before each run with the algorithm display name (progress
  /// reporting in long benches); may be empty. With threads > 1 the
  /// callback is serialized by a mutex but fires in completion order.
  std::function<void(const std::string&)> on_run;
  /// Fault-injection axis, forwarded to every simulation (the referenced
  /// trace must outlive the run). Inactive by default; results are then
  /// bit-identical to a build without fault support. Simulation is
  /// deterministic in (workload, trace, recovery), so any `threads` value
  /// produces identical results under faults too.
  fault::FaultOptions faults{};
};

/// Simulate one algorithm over one workload.
RunResult run_one(const sim::Machine& machine, const core::AlgorithmSpec& spec,
                  const workload::Workload& workload,
                  const ExperimentOptions& options = {});

/// Simulate the paper's full grid (13 configurations) for one objective.
/// Runs configurations on `options.threads` workers; the returned vector
/// is always in paper_grid order and identical for any thread count.
std::vector<RunResult> run_grid(const sim::Machine& machine,
                                core::WeightKind weight,
                                const workload::Workload& workload,
                                const ExperimentOptions& options = {});

/// Find the grid entry with the given order/dispatch; throws if absent.
const RunResult& find(const std::vector<RunResult>& results,
                      core::OrderKind order, core::DispatchKind dispatch);

/// One point of a failure-intensity sweep: a label ("mtbf=7d") plus the
/// fault axis to apply.
struct FaultSweepPoint {
  std::string label;
  fault::FaultOptions faults;
};

/// Run the full grid once per sweep point (each via run_grid, so
/// `options.threads` parallelizes within a point); result [i] belongs to
/// points[i]. Any faults already present in `options` are replaced by each
/// point's. Degradation curves (goodput, ART inflation, ...) read
/// straight off the per-point RunResult vectors.
std::vector<std::vector<RunResult>> run_fault_sweep(
    const sim::Machine& machine, core::WeightKind weight,
    const workload::Workload& workload,
    const std::vector<FaultSweepPoint>& points,
    const ExperimentOptions& options = {});

}  // namespace jsched::eval
