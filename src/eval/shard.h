// Deterministic sweep partitioning and shard-journal merging.
//
// A sweep grid is a set of cells, each with a collision-free 64-bit FNV
// cell key (eval/journal.h). To scale a sweep past one machine's cores,
// the cell set is partitioned into N disjoint shards *by key*: sort the
// keys, deal rank r to shard r % N. The assignment is pure arithmetic over
// data every participant already has (the workload fingerprint, machine
// size and algorithm specs), so N worker processes — spawned by the
// tools/sweepd coordinator or launched by hand across machines — agree on
// the partition with zero coordination, and the same partition is
// recomputed identically on resume.
//
// Each shard appends finished cells to its own SweepJournal. The merge
// step reads all shard journals, validates the partition invariants
// (every expected cell present exactly once, nothing foreign, nothing
// duplicated across shards) and writes a single merged journal whose
// bytes are identical to what an uninterrupted single-process sweep with
// threads=1 would have journaled — the v1 record format round-trips
// exactly (doubles are IEEE-754 bit patterns), and records are emitted in
// grid-enumeration order, which is the serial execution order. Resuming a
// grid from the merged journal therefore reproduces every RunResult, and
// every schedule fingerprint, bit for bit: how the computation was
// partitioned is unobservable in the results.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "eval/experiment.h"

namespace jsched::eval {

/// The deterministic cell-to-shard assignment for one sweep: keys are
/// sorted ascending and rank r maps to shard r % count. Rank-based dealing
/// (rather than key % count) guarantees balanced cell *counts* per shard
/// for any key distribution while remaining a pure function of the key
/// set. Construction throws std::invalid_argument on duplicate keys (two
/// distinct cells may never share a key) or count == 0.
class ShardPlan {
 public:
  ShardPlan(std::vector<std::uint64_t> keys, std::size_t count);

  std::size_t count() const noexcept { return count_; }
  std::size_t size() const noexcept { return sorted_.size(); }

  /// Shard owning `key`; throws std::out_of_range when `key` is not part
  /// of this sweep.
  std::size_t shard_of(std::uint64_t key) const;

  /// All keys assigned to `shard`, in ascending key order.
  std::vector<std::uint64_t> keys_of(std::size_t shard) const;

 private:
  std::vector<std::uint64_t> sorted_;
  std::size_t count_;
};

/// Cell keys of the full paper grid for one objective, in paper_grid
/// (enumeration == serial execution) order. These are the exact keys
/// run_grid_outcomes journals under, so a driver can pre-compute the
/// expected cell set of a sweep it has not run yet.
std::vector<std::uint64_t> grid_cell_keys(std::uint64_t workload_fnv,
                                          int machine_nodes,
                                          core::WeightKind weight,
                                          std::uint64_t salt = 0);

/// What merge_shard_journals found and wrote.
struct MergeReport {
  std::size_t merged = 0;      // records written to the merged journal
  std::size_t duplicates = 0;  // keys present in more than one shard
  /// Expected keys found in no shard journal, in enumeration order.
  std::vector<std::uint64_t> missing;
  /// missing split by owning shard (filled when a plan is supplied).
  std::vector<std::size_t> missing_by_shard;
  /// Keys found in shard journals but not expected — footprint of a shard
  /// journal reused across different sweeps.
  std::size_t unexpected = 0;

  bool ok() const {
    return duplicates == 0 && missing.empty() && unexpected == 0;
  }
  /// One-line human summary ("26 cells merged" / "2 missing (shard 1: 2)").
  std::string describe() const;
};

struct MergeOptions {
  /// Shard journal paths in shard-index order. A path may name a missing
  /// file (a shard that never started): its cells simply report missing.
  std::vector<std::string> shard_paths;
  /// The complete expected cell set, in the order records should appear in
  /// the merged journal (grid-enumeration order for bit-identity with a
  /// serial single-process journal).
  std::vector<std::uint64_t> expected_keys;
  /// Segment fingerprint (eval::sweep_fingerprint) for the merged journal.
  std::uint64_t sweep_fingerprint = 0;
  /// Output path; an existing file is replaced, not appended to.
  std::string out_path;
  /// Optional assignment used to attribute missing cells to the shard that
  /// should have produced them.
  const ShardPlan* plan = nullptr;
};

/// Merge shard journals into one (see file comment for the invariants).
/// All found expected cells are written even when the report is not ok(),
/// so a partially crashed sweep merges to a journal that resumes exactly
/// the missing cells. Throws on unreadable/corrupt journals.
MergeReport merge_shard_journals(const MergeOptions& options);

/// Memoized workload materializations, shared across sweep entry points
/// via ExperimentOptions::workload_cache. Keys are caller-chosen (a
/// generator seed, a workload fingerprint — whatever identifies the
/// materialization); the first get() per key runs `make` and measures it,
/// later ones return the cached Workload and credit the measured cost to
/// saved_seconds. Generation runs under the cache lock, serializing
/// concurrent misses of the same key into one materialization.
class WorkloadCache {
 public:
  struct Stats {
    std::size_t hits = 0;
    std::size_t misses = 0;
    double generation_seconds = 0.0;  // total spent materializing misses
    double saved_seconds = 0.0;       // generation cost avoided by hits
  };

  std::shared_ptr<const workload::Workload> get(
      std::uint64_t key, const std::function<workload::Workload()>& make);

  Stats stats() const;

 private:
  struct Entry {
    std::shared_ptr<const workload::Workload> workload;
    double generation_seconds = 0.0;
  };

  mutable std::mutex mu_;
  std::map<std::uint64_t, Entry> entries_;
  Stats stats_;
};

}  // namespace jsched::eval
