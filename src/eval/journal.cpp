#include "eval/journal.h"

#include <bit>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

namespace jsched::eval {

namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void mix(std::uint64_t& h, std::uint64_t v) noexcept {
  for (int byte = 0; byte < 8; ++byte) {
    h ^= (v >> (8 * byte)) & 0xffu;
    h *= kFnvPrime;
  }
}

using util::hex64;

std::uint64_t parse_hex64(const std::string& token, std::size_t line_no) {
  std::uint64_t v = 0;
  if (!util::parse_hex64(token, &v)) {
    throw std::runtime_error("sweep journal: bad hex field '" + token +
                             "' at record " + std::to_string(line_no));
  }
  return v;
}

std::string hex_double(double v) { return hex64(std::bit_cast<std::uint64_t>(v)); }

double parse_hex_double(const std::string& token, std::size_t line_no) {
  return std::bit_cast<double>(parse_hex64(token, line_no));
}

}  // namespace

std::uint64_t cell_key(std::uint64_t workload_fnv, int machine_nodes,
                       const core::AlgorithmSpec& spec,
                       std::uint64_t salt) noexcept {
  std::uint64_t h = kFnvOffset;
  mix(h, workload_fnv);
  mix(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(machine_nodes)));
  mix(h, static_cast<std::uint64_t>(spec.order));
  mix(h, static_cast<std::uint64_t>(spec.dispatch));
  mix(h, static_cast<std::uint64_t>(spec.weight));
  mix(h, salt);
  return h;
}

std::uint64_t sweep_fingerprint(std::uint64_t workload_fnv,
                                int machine_nodes) noexcept {
  std::uint64_t h = kFnvOffset;
  mix(h, workload_fnv);
  mix(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(machine_nodes)));
  // 0 is the adopted-legacy sentinel inside SweepJournal; keep real
  // fingerprints out of it.
  return h == 0 ? 1 : h;
}

SweepJournal::SweepJournal(std::string path) : log_(std::move(path)) {
  std::size_t line_no = 0;
  std::uint64_t first_segment = kLegacySegment;
  for (const std::string& line : util::AppendLog::read_lines(log_.path())) {
    ++line_no;
    std::istringstream in(line);
    std::string tag;
    in >> tag;
    if (tag == "v1seg") {
      // Segment header: records below belong to this sweep fingerprint. A
      // malformed header is treated like a torn line (its records stay in
      // the previous segment — at worst dropped as stale later, never
      // wrongly resumed, since cell keys still gate every lookup).
      std::string fp;
      if (in >> fp && fp.size() == 16) {
        segment_ = parse_hex64(fp, line_no);
        if (first_segment == kLegacySegment) first_segment = segment_;
      }
      continue;
    }
    if (tag == "v2") {
      // Checksummed record (PR 10): `v2 <fnv1a(body)> <body>` where the
      // body carries the exact v1 field sequence. A failed checksum is
      // corruption, not a format skew — surface it with position info.
      std::string body;
      try {
        util::AppendLog::check_record(line, "v2", &body);
      } catch (const util::CorruptRecordError& e) {
        throw util::CorruptRecordError("sweep journal " + log_.path() + ": " +
                                       e.what() + " at record " +
                                       std::to_string(line_no));
      }
      in.str(body);
      in.clear();
    } else if (tag != "v1") {
      continue;  // unknown record versions are skipped
    }

    const auto fail = [&](const char* what) -> std::runtime_error {
      return std::runtime_error("sweep journal " + log_.path() + ": " + what +
                                " at record " + std::to_string(line_no));
    };
    const auto next = [&]() {
      std::string token;
      if (!(in >> token)) throw fail("truncated record");
      return token;
    };
    const auto next_int = [&](int lo, int hi) {
      const std::string token = next();
      int v = 0;
      try {
        v = std::stoi(token);
      } catch (const std::exception&) {
        throw fail("non-numeric field");
      }
      if (v < lo || v > hi) throw fail("enum field out of range");
      return v;
    };
    const auto next_size = [&]() {
      const std::string token = next();
      try {
        return static_cast<std::size_t>(std::stoull(token));
      } catch (const std::exception&) {
        throw fail("non-numeric field");
      }
    };

    const std::uint64_t key = parse_hex64(next(), line_no);
    RunResult r;
    r.spec.order = static_cast<core::OrderKind>(next_int(0, 3));
    r.spec.dispatch = static_cast<core::DispatchKind>(next_int(0, 3));
    r.spec.weight = static_cast<core::WeightKind>(next_int(0, 1));
    r.jobs = next_size();
    r.max_queue_length = next_size();
    r.kills = next_size();
    r.jobs_hit = next_size();
    r.art = parse_hex_double(next(), line_no);
    r.awrt = parse_hex_double(next(), line_no);
    r.wait = parse_hex_double(next(), line_no);
    r.makespan = parse_hex_double(next(), line_no);
    r.utilization = parse_hex_double(next(), line_no);
    r.scheduler_cpu_seconds = parse_hex_double(next(), line_no);
    r.goodput_node_seconds = parse_hex_double(next(), line_no);
    r.wasted_node_seconds = parse_hex_double(next(), line_no);
    r.goodput_fraction = parse_hex_double(next(), line_no);
    r.availability = parse_hex_double(next(), line_no);
    r.availability_weighted_utilization = parse_hex_double(next(), line_no);
    r.schedule_fnv = parse_hex64(next(), line_no);
    std::string name;
    std::getline(in, name);
    const std::size_t start = name.find_first_not_of(' ');
    r.scheduler_name = start == std::string::npos ? "" : name.substr(start);

    cells_[key] = {segment_, r};  // last record wins, matching append order
    ++loaded_;
  }
  if (first_segment != kLegacySegment) {
    // Records before the first header were adopted by the open_segment()
    // that wrote it; reconstruct that adoption. Records superseded by a
    // *later* segment header were reported stale when that segment
    // opened — retire them silently here rather than re-reporting a
    // staleness that was already handled.
    for (auto it = cells_.begin(); it != cells_.end();) {
      if (it->second.segment == kLegacySegment) {
        it->second.segment = first_segment;
      }
      if (it->second.segment != segment_) {
        it = cells_.erase(it);
        --loaded_;
      } else {
        ++it;
      }
    }
  }
}

std::string SweepJournal::open_segment(std::uint64_t fingerprint) {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t stale = 0;
  std::uint64_t stale_segment = kLegacySegment;
  for (auto it = cells_.begin(); it != cells_.end();) {
    if (it->second.segment == kLegacySegment) {
      // Pre-segment record: adopt it into the opening sweep.
      it->second.segment = fingerprint;
      ++it;
    } else if (it->second.segment != fingerprint) {
      stale_segment = it->second.segment;
      it = cells_.erase(it);
      ++stale;
    } else {
      ++it;
    }
  }
  stale_dropped_ += stale;
  if (segment_ != fingerprint) {
    segment_ = fingerprint;
    log_.append("v1seg " + hex64(fingerprint));
  }
  // First header of a legacy (or empty) journal is a silent upgrade; only
  // actual stale work is worth a report.
  if (stale == 0) return "";
  return "sweep journal " + path() + ": " + std::to_string(stale) +
         " stale cell" + (stale == 1 ? "" : "s") + " from segment " +
         hex64(stale_segment) + " dropped (sweep is " + hex64(fingerprint) +
         ") — fresh segment opened";
}

std::size_t SweepJournal::stale_dropped() const noexcept {
  std::lock_guard<std::mutex> lock(mu_);
  return stale_dropped_;
}

void SweepJournal::record(std::uint64_t key, const RunResult& r) {
  std::ostringstream os;
  os << hex64(key) << ' ' << static_cast<int>(r.spec.order) << ' '
     << static_cast<int>(r.spec.dispatch) << ' '
     << static_cast<int>(r.spec.weight) << ' ' << r.jobs << ' '
     << r.max_queue_length << ' ' << r.kills << ' ' << r.jobs_hit << ' '
     << hex_double(r.art) << ' ' << hex_double(r.awrt) << ' '
     << hex_double(r.wait) << ' ' << hex_double(r.makespan) << ' '
     << hex_double(r.utilization) << ' ' << hex_double(r.scheduler_cpu_seconds)
     << ' ' << hex_double(r.goodput_node_seconds) << ' '
     << hex_double(r.wasted_node_seconds) << ' '
     << hex_double(r.goodput_fraction) << ' ' << hex_double(r.availability)
     << ' ' << hex_double(r.availability_weighted_utilization) << ' '
     << hex64(r.schedule_fnv) << ' ' << r.scheduler_name;
  {
    std::lock_guard<std::mutex> lock(mu_);
    cells_[key] = {segment_, r};
  }
  // Checksummed v2 record; v1 journals (pre-PR 10) still load, the two
  // formats coexist freely within one file across resumed runs.
  log_.append_checked("v2", os.str());
}

bool SweepJournal::lookup(std::uint64_t key, const core::AlgorithmSpec& spec,
                          RunResult* out) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cells_.find(key);
  if (it == cells_.end()) return false;
  const RunResult& stored = it->second.result;
  if (stored.spec.order != spec.order || stored.spec.dispatch != spec.dispatch ||
      stored.spec.weight != spec.weight) {
    throw std::runtime_error(
        "sweep journal " + path() + ": record " + hex64(key) + " stores " +
        stored.spec.display_name() + " but the sweep asked for " +
        spec.display_name() + " — key collision or corrupt journal");
  }
  *out = stored;
  // The stored spec only round-trips order/dispatch/weight; hand back the
  // caller's full spec so parameter blocks (smart/psrs knobs) are intact.
  out->spec = spec;
  ++hits_;
  return true;
}

std::size_t SweepJournal::hits() const noexcept {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::vector<std::pair<std::uint64_t, RunResult>> SweepJournal::snapshot()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::uint64_t, RunResult>> out;
  out.reserve(cells_.size());
  for (const auto& [key, cell] : cells_) out.emplace_back(key, cell.result);
  return out;
}

}  // namespace jsched::eval
