// Rendering of grid results in the paper's table layouts.
#pragma once

#include <string>
#include <vector>

#include "eval/experiment.h"
#include "util/table.h"

namespace jsched::eval {

/// Tables 3-6 layout: one row per ordering algorithm (+ Garey&Graham),
/// columns Listscheduler / Backfilling / EASY-Backfilling, each with the
/// absolute metric and the percentage relative to FCFS+EASY (the paper's
/// reference, "as this algorithm is used by the CTC").
///
/// `metric` selects which RunResult field is shown (art or awrt).
util::Table response_time_table(const std::vector<RunResult>& results,
                                double RunResult::* metric,
                                const std::string& title);

/// Tables 7/8 layout: scheduler computation time as a percentage relative
/// to FCFS+EASY for the Listscheduler and EASY columns (the paper reports
/// SMART as a single row; we keep both variants).
util::Table cpu_time_table(const std::vector<RunResult>& results,
                           const std::string& title);

/// Figures 3-6 are bar charts over the same data; emit them as CSV series
/// (one row per algorithm/dispatch with the metric value) for plotting.
std::string figure_csv(const std::vector<RunResult>& results,
                       double RunResult::* metric);

/// Convenience: title string "<workload> (n jobs), <objective>".
std::string experiment_title(const std::string& workload_name,
                             std::size_t jobs, core::WeightKind weight);

/// Failure report of an isolated sweep: one row per failed cell with the
/// configuration, error kind, attempts consumed and message. Empty-rowed
/// (but still valid) when nothing failed.
util::Table failure_table(const GridResult& grid, const std::string& title);

/// One-line sweep health summary, e.g.
/// "12/13 cells ok, 1 failed (scheduler=1), 4 resumed from journal"; a
/// sharded grid counts only its own cells ("7/7 cells ok, 6 on other
/// shards").
std::string failure_summary(const GridResult& grid);

/// Metadata block of the full-grid perf-trajectory JSON.
struct GridJsonMeta {
  std::size_t jobs = 0;
  int machine_nodes = 0;
  std::uint64_t seed = 0;
  std::size_t threads = 0;
};

/// Write the full-grid perf trajectory (the BENCH_grid.json format): wall
/// seconds per objective plus, per configuration, the scheduler CPU
/// seconds and the schedule fingerprint. One function emits the file for
/// both the single-process bench and the sharded sweep driver, so "the
/// merged grid reproduces BENCH_grid.json" is a byte-level statement about
/// identical inputs, not two writers happening to agree. Prints a warning
/// to stderr (and returns) when the file cannot be opened.
void write_grid_json(const std::string& path, const GridJsonMeta& meta,
                     const std::vector<RunResult>& unweighted,
                     double unweighted_wall,
                     const std::vector<RunResult>& weighted,
                     double weighted_wall);

}  // namespace jsched::eval
