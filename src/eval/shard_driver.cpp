#include "eval/shard_driver.h"

#include <csignal>
#include <stdexcept>
#include <thread>
#include <utility>

#include "core/job_store.h"
#include "eval/journal.h"
#include "eval/reporting.h"

namespace jsched::eval {

std::string shard_journal_path(const std::string& dir, std::size_t index) {
  return dir + "/shard-" + std::to_string(index) + ".journal";
}

ShardWorkerReport run_shard_worker(
    const std::function<workload::Workload()>& make_workload,
    const ShardWorkerConfig& config) {
  config.shard.validate();
  if (config.journal_path.empty()) {
    throw std::invalid_argument("run_shard_worker: journal_path required");
  }
  SweepJournal journal(config.journal_path);

  ExperimentOptions opts = config.options;
  opts.journal = &journal;
  opts.shard = config.shard;
  WorkloadCache cache;
  opts.workload_cache = &cache;

  // Chaos kill: arm only on a virgin journal, so the relaunched worker
  // (which finds the records its predecessor left) runs clean instead of
  // dying on the same cell forever. on_run fires at the *start* of each
  // fresh simulation and never for resumed cells, so with serial threads
  // the raise() lands exactly after `chaos_kill_after` journaled records.
  std::size_t fresh_started = 0;
  if (config.chaos_kill_after > 0 && journal.loaded() == 0) {
    const auto inner = opts.on_run;
    opts.on_run = [&fresh_started, kill_after = config.chaos_kill_after,
                   inner](const std::string& name) {
      if (++fresh_started > kill_after) std::raise(SIGKILL);
      if (inner) inner(name);
    };
  }

  ShardWorkerReport report;
  for (core::WeightKind weight : config.weights) {
    const auto workload = cache.get(config.workload_key, make_workload);
    GridResult grid = run_grid_outcomes(config.machine, weight, *workload, opts);
    report.cells += grid.cells.size() - grid.skipped();
    report.skipped += grid.skipped();
    report.resumed += grid.resumed();
    report.failed += grid.failed();
    for (const RunOutcome& c : grid.cells) {
      if (c.ok && c.attempts >= 1) ++report.ran;
    }
    if (config.log) {
      config.log("shard " + std::to_string(config.shard.index) + "/" +
                 std::to_string(config.shard.count) + " " +
                 core::to_string(weight) + ": " + failure_summary(grid));
    }
  }
  report.cache = cache.stats();
  return report;
}

namespace {

std::size_t journal_cells(const std::string& path) {
  // Cell records only — v2 (checksummed, current) plus legacy v1; segment
  // headers ("v1seg ") share no prefix with either and are not counted.
  return util::count_complete_lines(path, "v2 ") +
         util::count_complete_lines(path, "v1 ");
}

}  // namespace

CoordinatorReport run_shard_coordinator(const CoordinatorConfig& config) {
  if (config.shards.empty()) {
    throw std::invalid_argument("run_shard_coordinator: no shards");
  }
  const std::size_t n = config.shards.size();
  const auto say = [&config](const std::string& line) {
    if (config.log) config.log(line);
  };

  CoordinatorReport report;
  report.shards.resize(n);
  std::vector<std::optional<util::Subprocess>> procs(n);
  const auto launch = [&](std::size_t i) {
    procs[i] = util::Subprocess::spawn(config.shards[i].argv,
                                       config.shards[i].extra_env);
    say("shard " + std::to_string(i) + ": pid " +
        std::to_string(procs[i]->pid()));
  };
  for (std::size_t i = 0; i < n; ++i) launch(i);

  util::Clock& clock =
      config.clock != nullptr ? *config.clock : util::real_clock();

  // Graceful drain: SIGTERM everyone still running, give them drain_grace
  // to flush and exit, SIGKILL the rest. Journals survive either way; the
  // drained shards stay not-ok so the caller knows the sweep is partial.
  const auto drain = [&](std::size_t& live_count) {
    report.stopped_by_request = true;
    say("stop requested: draining " + std::to_string(live_count) +
        " live shard(s)");
    for (std::size_t i = 0; i < n; ++i) {
      if (procs[i].has_value()) procs[i]->kill(SIGTERM);
    }
    const auto deadline = clock.now() + config.drain_grace;
    while (live_count > 0 && clock.now() < deadline) {
      clock.sleep_for(config.poll_interval);
      for (std::size_t i = 0; i < n; ++i) {
        if (!procs[i].has_value()) continue;
        const std::optional<util::ExitStatus> status = procs[i]->poll();
        if (!status.has_value()) continue;
        report.shards[i].last_exit = *status;
        procs[i].reset();
        --live_count;
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (!procs[i].has_value()) continue;
      say("shard " + std::to_string(i) + ": unresponsive after " +
          std::to_string(config.drain_grace.count()) + "ms, killing");
      procs[i]->kill();
      report.shards[i].last_exit = procs[i]->wait();
      procs[i].reset();
      --live_count;
    }
  };

  std::size_t live = n;
  auto last_beat = clock.now();
  while (live > 0) {
    if (config.poll_stop && config.poll_stop()) {
      drain(live);
      break;
    }
    clock.sleep_for(config.poll_interval);
    for (std::size_t i = 0; i < n; ++i) {
      if (!procs[i].has_value()) continue;
      const std::optional<util::ExitStatus> status = procs[i]->poll();
      if (!status.has_value()) continue;
      procs[i].reset();
      --live;
      ShardStatus& s = report.shards[i];
      s.last_exit = *status;
      if (status->success()) {
        s.ok = true;
        say("shard " + std::to_string(i) + ": done (" +
            std::to_string(journal_cells(config.shards[i].journal_path)) +
            " cells journaled)");
      } else if (s.restarts < config.restart_budget) {
        ++s.restarts;
        say("shard " + std::to_string(i) + ": " + status->describe() +
            "; restarting (" + std::to_string(s.restarts) + "/" +
            std::to_string(config.restart_budget) + "), will resume " +
            std::to_string(journal_cells(config.shards[i].journal_path)) +
            " journaled cells");
        launch(i);
        ++live;
      } else {
        say("shard " + std::to_string(i) + ": " + status->describe() +
            "; restart budget exhausted, giving up on this shard");
      }
    }
    const auto now = clock.now();
    if (live > 0 && config.progress_interval.count() > 0 &&
        now - last_beat >= config.progress_interval) {
      last_beat = now;
      std::string beat = "progress:";
      for (std::size_t i = 0; i < n; ++i) {
        beat += " shard" + std::to_string(i) + "=" +
                std::to_string(journal_cells(config.shards[i].journal_path));
      }
      say(beat);
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    report.shards[i].cells_done = journal_cells(config.shards[i].journal_path);
  }
  return report;
}

}  // namespace jsched::eval
