// Process-level runtime of a sharded sweep: the worker loop one shard
// process runs, and the coordinator loop that spawns, monitors and
// restarts N of them.
//
// The split keeps policy out of the binaries: tools/sweepd and the
// bench/shard_scale harness both delegate here, differing only in how
// they build argv for a worker and which workload they materialize. The
// coordinator's knowledge of a worker is deliberately thin — an exit code
// and the growing shard journal (util::count_complete_lines over "v2 " /
// legacy "v1 " records) — so the same monitoring works for workers it did
// not spawn,
// e.g. shards launched by hand on other machines whose journals are
// merged later with merge_shard_journals.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "eval/shard.h"
#include "sim/machine.h"
#include "util/clock.h"
#include "util/subprocess.h"

namespace jsched::eval {

/// Conventional shard journal path: `<dir>/shard-<index>.journal`.
std::string shard_journal_path(const std::string& dir, std::size_t index);

/// One worker's whole assignment: the paper grid per objective in
/// `weights`, filtered to the cells `shard` owns, checkpointed into
/// `journal_path`.
struct ShardWorkerConfig {
  sim::Machine machine;
  /// Objectives to sweep, in order. The default is the full evaluation:
  /// the unweighted grid then the weighted one (26 cells total).
  std::vector<core::WeightKind> weights{core::WeightKind::kUnit,
                                        core::WeightKind::kEstimatedArea};
  std::string journal_path;
  ShardSpec shard{};
  /// Base options for every grid; journal, shard and workload_cache are
  /// overridden by the worker (error policy, threads, deadlines pass
  /// through).
  ExperimentOptions options{};
  /// Cache identity of the materialized workload (e.g. its generator
  /// seed): the grids share one materialization through a WorkloadCache,
  /// whose hit/miss/saved statistics the report surfaces.
  std::uint64_t workload_key = 0;
  /// Crash-injection hook for the restart/resume drill (0 = off): SIGKILL
  /// this process at the start of its (N+1)th fresh simulation, i.e. right
  /// after N cells were journaled. Armed only when the journal starts
  /// empty, so the restarted worker — which resumes those N cells — runs
  /// to completion instead of dying in a loop. Use N >= 1.
  std::size_t chaos_kill_after = 0;
  /// Progress sink (one line per grid); may be empty.
  std::function<void(const std::string&)> log;
};

struct ShardWorkerReport {
  std::size_t cells = 0;    // cells this shard owns, across all weights
  std::size_t ran = 0;      // freshly simulated this run
  std::size_t resumed = 0;  // restored from the shard journal
  std::size_t skipped = 0;  // cells owned by other shards
  std::size_t failed = 0;
  WorkloadCache::Stats cache;

  bool ok() const noexcept { return failed == 0; }
};

/// Run one shard worker to completion in this process. `make_workload`
/// materializes the sweep's workload (called through the cache — once,
/// however many objectives run). Exceptions propagate: a worker process
/// should let them kill it and leave the journal for its replacement.
ShardWorkerReport run_shard_worker(
    const std::function<workload::Workload()>& make_workload,
    const ShardWorkerConfig& config);

/// How the coordinator launches (and relaunches) one shard.
struct ShardProcess {
  std::vector<std::string> argv;
  std::vector<std::pair<std::string, std::string>> extra_env;
  /// The shard's journal, polled for the cells-done heartbeat.
  std::string journal_path;
};

struct CoordinatorConfig {
  std::vector<ShardProcess> shards;
  /// Relaunches allowed per shard after a crash (nonzero exit or signal).
  /// A relaunched worker resumes from its journal, so each restart repays
  /// at most one in-flight cell.
  std::size_t restart_budget = 2;
  std::chrono::milliseconds poll_interval{100};
  /// Cadence of the journal-tail progress heartbeat (0 = silent).
  std::chrono::milliseconds progress_interval{2000};
  std::function<void(const std::string&)> log;
  /// Polled once per loop iteration (may be empty). Returning true starts
  /// a graceful drain: every live worker gets SIGTERM, the coordinator
  /// waits up to `drain_grace` for them to exit (their journals keep every
  /// completed cell), SIGKILLs stragglers, and returns with
  /// stopped_by_request set. tools/sweepd wires this to SignalDrain so ^C
  /// produces a summary instead of a mess of orphans.
  std::function<bool()> poll_stop;
  /// How long a drain waits for SIGTERM'd workers before SIGKILL.
  std::chrono::milliseconds drain_grace{3000};
  /// Time source for poll sleeps and the progress/drain timers (null = the
  /// real clock). Tests drive the loop with a util::ManualClock.
  util::Clock* clock = nullptr;
};

struct ShardStatus {
  bool ok = false;
  std::size_t restarts = 0;
  util::ExitStatus last_exit{};
  /// Complete journal records at the final poll.
  std::size_t cells_done = 0;
};

struct CoordinatorReport {
  std::vector<ShardStatus> shards;
  /// True when poll_stop ended the sweep early: still-running shards were
  /// drained (SIGTERM, grace, SIGKILL) and are reported not-ok. The caller
  /// should exit nonzero — the sweep is incomplete, though every journaled
  /// cell survives for a resumed run.
  bool stopped_by_request = false;

  bool all_ok() const {
    for (const ShardStatus& s : shards) {
      if (!s.ok) return false;
    }
    return true;
  }
  std::size_t total_restarts() const {
    std::size_t n = 0;
    for (const ShardStatus& s : shards) n += s.restarts;
    return n;
  }
};

/// Spawn every shard, babysit them to completion (restart-on-crash within
/// the budget), and report per-shard health. Does not merge journals —
/// callers follow up with merge_shard_journals so the merge also covers
/// shards this coordinator never ran.
CoordinatorReport run_shard_coordinator(const CoordinatorConfig& config);

}  // namespace jsched::eval
