// Checkpoint/resume journal for evaluation sweeps.
//
// A sweep journal maps a 64-bit *cell key* — the identity of one unit of
// sweep work (workload fingerprint, machine size, algorithm spec, caller
// salt) — to the full RunResult that work produced. Completed cells are
// appended to a text file (one line per cell, flushed per record via
// util::AppendLog, so a SIGKILL costs at most the in-flight cell); a
// re-run with the same journal skips every recorded cell and returns the
// stored result bit-for-bit.
//
// Bit-for-bit matters: RunResult carries the schedule fingerprint the
// perf-tracking workflow compares across runs, and its doubles feed
// golden-number tables. Doubles are therefore serialized as 16-hex-digit
// IEEE-754 bit patterns, not decimal — a resumed sweep is indistinguishable
// from an uninterrupted one, fingerprints included.
//
// Record format (one line, space-separated):
//   v2 <fnv1a(body)> <body>
//   body: <key> <order> <dispatch> <weight> <jobs> <maxq> <kills> <jobs_hit>
//         <12 doubles as hex bit patterns> <schedule_fnv> <scheduler name...>
// The scheduler name is the final field and runs to end of line. New
// records are written checksummed (v2, via util::AppendLog's checked
// records) so mid-file bit corruption raises util::CorruptRecordError
// instead of silently resuming garbage; legacy `v1 <body>` records
// (pre-checksum journals) still load. Unknown leading tags are skipped
// (forward compatibility); a corrupt complete record throws — a journal
// that lies must not silently poison a resume.
//
// Stale-journal detection: a `v1seg <fingerprint>` line marks the start of
// a *segment* — all records after it belong to the sweep identified by
// that fingerprint (workload + machine, see sweep_fingerprint). A sweep
// calls open_segment() before its first lookup: when the journal's live
// segment was written by a *different* sweep (the workload file changed
// under the same journal path, a copy-paste reused a journal, ...), the
// stale cells are dropped from the resume set and a fresh segment header
// is appended, and the caller gets a one-line report to surface. Without
// the header (journals predating segments) records are adopted into the
// first opened segment — exactly the old trust-the-keys behavior.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "eval/experiment.h"
#include "util/journal.h"

namespace jsched::eval {

/// Identity of one sweep cell. Two cells collide only if they would run
/// the exact same simulation: same workload (by field-level fingerprint),
/// machine size, algorithm configuration and caller salt.
std::uint64_t cell_key(std::uint64_t workload_fnv, int machine_nodes,
                       const core::AlgorithmSpec& spec,
                       std::uint64_t salt) noexcept;

/// Identity of the sweep a journal segment belongs to: the workload
/// (field-level fingerprint) and the machine it runs on. Deliberately
/// spec-free — one segment holds every cell of a grid (and every point of
/// a fault sweep) over that workload.
std::uint64_t sweep_fingerprint(std::uint64_t workload_fnv,
                                int machine_nodes) noexcept;

class SweepJournal {
 public:
  /// Opens (creating if missing) the journal at `path` and loads every
  /// complete record; a torn trailing line from a killed writer is
  /// ignored. Throws std::runtime_error on unopenable files or corrupt
  /// complete records.
  explicit SweepJournal(std::string path);

  SweepJournal(const SweepJournal&) = delete;
  SweepJournal& operator=(const SweepJournal&) = delete;

  const std::string& path() const noexcept { return log_.path(); }
  /// Records loaded (and kept as resume candidates) at construction.
  /// Records superseded by a later segment header are not counted — their
  /// staleness was reported when that segment first opened.
  std::size_t loaded() const noexcept { return loaded_; }
  /// Lookups that returned a stored result so far.
  std::size_t hits() const noexcept;

  /// Bind the journal to the sweep identified by `fingerprint`
  /// (sweep_fingerprint of the workload about to run). Cells recorded
  /// under a different segment fingerprint are stale — they describe a
  /// sweep that no longer exists — and are dropped from the resume set; a
  /// fresh `v1seg` header is appended so subsequent records land in the
  /// new segment. Records from pre-segment journals (no header) are
  /// adopted rather than dropped. Returns a one-line report when stale
  /// cells were detected, "" otherwise. Idempotent per fingerprint;
  /// thread-safe.
  std::string open_segment(std::uint64_t fingerprint);
  /// Stale cells dropped by open_segment() so far.
  std::size_t stale_dropped() const noexcept;

  /// If `key` is journaled, copy the stored result into `*out` and return
  /// true. The stored algorithm spec is verified against `spec`: a
  /// mismatch (key collision or corrupt journal) throws std::runtime_error
  /// rather than resuming the wrong work.
  bool lookup(std::uint64_t key, const core::AlgorithmSpec& spec,
              RunResult* out);

  /// Record a completed cell (appends + flushes one line). Thread-safe.
  void record(std::uint64_t key, const RunResult& r);

  /// Copy of every resumable cell (key -> stored result), in ascending key
  /// order. This is the read side of the shard-merge step: a coordinator
  /// drains each shard journal's cells and re-records them into one merged
  /// journal. Thread-safe.
  std::vector<std::pair<std::uint64_t, RunResult>> snapshot() const;

 private:
  /// Adopted-legacy marker: records written before segment headers
  /// existed. Matched by the first open_segment() regardless of its
  /// fingerprint.
  static constexpr std::uint64_t kLegacySegment = 0;

  struct Cell {
    std::uint64_t segment = kLegacySegment;
    RunResult result;
  };

  util::AppendLog log_;
  mutable std::mutex mu_;
  std::map<std::uint64_t, Cell> cells_;
  std::uint64_t segment_ = kLegacySegment;  // live (last) segment in the file
  std::size_t loaded_ = 0;
  std::size_t hits_ = 0;
  std::size_t stale_dropped_ = 0;
};

}  // namespace jsched::eval
