// Multi-seed replication (paper §2.3).
//
// "The reliability of this method depends on several factors [...] the
//  procedure is repeated with a large number of input data sets."
//
// A single simulated workload is one draw from the workload model; the
// honest version of the paper's comparison repeats each configuration
// over independently seeded workloads and reports the dispersion — so a
// ranking can be read as "robust" rather than "lucky seed".
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "eval/experiment.h"
#include "util/stats.h"

namespace jsched::eval {

/// Aggregate of one algorithm over several independently seeded workloads.
struct ReplicatedResult {
  core::AlgorithmSpec spec;
  std::string scheduler_name;
  util::RunningStats art;
  util::RunningStats awrt;
  util::RunningStats utilization;
  /// Share of executed node-seconds that was useful work (1.0 without
  /// fault injection; see ExperimentOptions::faults).
  util::RunningStats goodput_fraction;

  /// Per-seed outcomes in seed order. Under ErrorPolicy::kFailFast every
  /// entry is a success (a failure would have thrown); under kIsolate /
  /// kRetryN failed replicates stay here as structured RunErrors and are
  /// excluded from the statistics above.
  std::vector<RunOutcome> outcomes;
  /// Failed replicates (outcomes with !ok).
  std::size_t failed_replicates = 0;

  /// Coefficient of variation of the ART across seeds (stddev / mean) —
  /// a quick robustness indicator.
  double art_cv() const {
    return art.mean() > 0.0 ? art.stddev() / art.mean() : 0.0;
  }
};

/// Run `spec` once per seed; `make_workload` maps a seed to a workload
/// (typically a generator + trim pipeline) and must be safe to call from
/// several threads when `options.threads > 1`. Replicates are aggregated
/// in seed order whatever the thread count, so parallel and serial runs
/// report identical statistics. Throws std::runtime_error if the
/// generator returns wildly different job counts (> 5% apart) for
/// different seeds — the tell of a buggy generator; the small spread a
/// trim_to_machine pipeline produces is allowed.
///
/// Fault tolerance: under ErrorPolicy::kIsolate / kRetryN a throwing
/// replicate (workload generation included — its failures classify as
/// kWorkload) is captured into `outcomes` and the statistics aggregate
/// the surviving seeds. With an ExperimentOptions::journal, completed
/// replicates are keyed by (machine, spec, seed, salt) and skipped on
/// resume without calling `make_workload` again. With an
/// ExperimentOptions::workload_cache, materialized workloads are memoized
/// by seed, so sweeping several specs over one seed list with a shared
/// cache generates each workload once instead of once per spec.
ReplicatedResult run_replicated(
    const sim::Machine& machine, const core::AlgorithmSpec& spec,
    const std::function<workload::Workload(std::uint64_t)>& make_workload,
    std::span<const std::uint64_t> seeds, const ExperimentOptions& options = {});

/// True when `a` beats `b` on the mean ART by more than `z` pooled
/// standard errors — the "is this ranking robust?" question of §2.3.
/// Standard errors are built from the unbiased (n-1) sample stddev.
bool robustly_better_art(const ReplicatedResult& a, const ReplicatedResult& b,
                         double z = 2.0);

}  // namespace jsched::eval
