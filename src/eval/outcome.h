// Structured failure taxonomy for the evaluation harness.
//
// A sweep over a large grid multiplies every fragile ingredient — workload
// generators, third-party scheduler plug-ins, multi-hour simulations — and
// a single raw exception aborting the whole sweep throws away every
// completed cell. This header defines what a failure *is* (RunError: which
// phase failed, in which run, after how many attempts) and what the
// harness should do about one (ErrorPolicy). The run_*_outcomes entry
// points in experiment.h return these instead of throwing.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>

namespace jsched::eval {

/// Which phase of a run failed. Classification is by exception type at the
/// per-cell boundary:
///   * sim::CancelledError        -> kTimeout / kCancelled (by its Reason)
///   * a workload-generation failure (exception escaping the user's
///     make_workload callback)    -> kWorkload
///   * sim::ValidationError       -> kValidation
///   * std::logic_error           -> kScheduler (the simulator's event-loop
///     contract checks throw logic_error when a scheduler misbehaves)
///   * anything else              -> kSimulation
enum class RunErrorKind {
  kWorkload,    // workload generation / ingestion failed
  kScheduler,   // the scheduler violated the simulator contract
  kSimulation,  // the simulation itself failed (resources, internal bug)
  kValidation,  // the produced schedule failed validate_schedule
  kTimeout,     // the per-run deadline expired
  kCancelled,   // the run was cancelled from outside
};

constexpr std::string_view to_string(RunErrorKind kind) noexcept {
  switch (kind) {
    case RunErrorKind::kWorkload:
      return "workload";
    case RunErrorKind::kScheduler:
      return "scheduler";
    case RunErrorKind::kSimulation:
      return "simulation";
    case RunErrorKind::kValidation:
      return "validation";
    case RunErrorKind::kTimeout:
      return "timeout";
    case RunErrorKind::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

/// One structured failure: everything a sweep report needs to say "this
/// cell failed, here is why, and the others are unaffected".
struct RunError {
  RunErrorKind kind = RunErrorKind::kSimulation;
  std::string message;    // the exception's what()
  std::string scheduler;  // display name of the failing configuration
  std::size_t attempts = 1;  // tries consumed (retries included)

  /// "scheduler error in SMART-NFIW+EASY after 3 attempts: <what>"
  std::string describe() const {
    std::string out(to_string(kind));
    out += " error in ";
    out += scheduler.empty() ? "?" : scheduler;
    if (attempts > 1) {
      out += " after " + std::to_string(attempts) + " attempts";
    }
    out += ": " + message;
    return out;
  }
};

/// What the harness does when a cell of a sweep throws.
enum class ErrorPolicy {
  /// Let the exception propagate and abort the sweep — today's behavior,
  /// and the default. The harness catches nothing, so callers observe the
  /// original exception type.
  kFailFast,
  /// Catch the failure into the cell's RunOutcome and keep sweeping; the
  /// sweep completes every healthy cell and reports the failures.
  kIsolate,
  /// Like kIsolate, but first re-run the failed cell (same seed, same
  /// inputs) up to ExperimentOptions::max_retries extra times — for flaky
  /// environmental failures; a deterministic bug fails every attempt.
  kRetryN,
};

constexpr std::string_view to_string(ErrorPolicy policy) noexcept {
  switch (policy) {
    case ErrorPolicy::kFailFast:
      return "fail_fast";
    case ErrorPolicy::kIsolate:
      return "isolate";
    case ErrorPolicy::kRetryN:
      return "retry";
  }
  return "unknown";
}

/// Parse "fail_fast" / "isolate" / "retry" (the JSCHED_ERROR_POLICY env
/// values); throws std::invalid_argument on anything else.
inline ErrorPolicy error_policy_from_string(std::string_view s) {
  if (s == "fail_fast") return ErrorPolicy::kFailFast;
  if (s == "isolate") return ErrorPolicy::kIsolate;
  if (s == "retry") return ErrorPolicy::kRetryN;
  throw std::invalid_argument("unknown error policy: " + std::string(s) +
                              " (expected fail_fast|isolate|retry)");
}

}  // namespace jsched::eval
