#include "eval/shard.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "eval/journal.h"

namespace jsched::eval {

ShardPlan::ShardPlan(std::vector<std::uint64_t> keys, std::size_t count)
    : sorted_(std::move(keys)), count_(count) {
  if (count_ == 0) {
    throw std::invalid_argument("ShardPlan: shard count must be >= 1");
  }
  std::sort(sorted_.begin(), sorted_.end());
  const auto dup = std::adjacent_find(sorted_.begin(), sorted_.end());
  if (dup != sorted_.end()) {
    throw std::invalid_argument(
        "ShardPlan: duplicate cell key " + std::to_string(*dup) +
        " — two distinct cells may never share a key");
  }
}

std::size_t ShardPlan::shard_of(std::uint64_t key) const {
  const auto it = std::lower_bound(sorted_.begin(), sorted_.end(), key);
  if (it == sorted_.end() || *it != key) {
    throw std::out_of_range("ShardPlan: key " + std::to_string(key) +
                            " is not part of this sweep");
  }
  return static_cast<std::size_t>(it - sorted_.begin()) % count_;
}

std::vector<std::uint64_t> ShardPlan::keys_of(std::size_t shard) const {
  if (shard >= count_) {
    throw std::out_of_range("ShardPlan: shard " + std::to_string(shard) +
                            " of " + std::to_string(count_));
  }
  std::vector<std::uint64_t> out;
  out.reserve(sorted_.size() / count_ + 1);
  for (std::size_t rank = shard; rank < sorted_.size(); rank += count_) {
    out.push_back(sorted_[rank]);
  }
  return out;
}

std::vector<std::uint64_t> grid_cell_keys(std::uint64_t workload_fnv,
                                          int machine_nodes,
                                          core::WeightKind weight,
                                          std::uint64_t salt) {
  std::vector<std::uint64_t> keys;
  const std::vector<core::AlgorithmSpec> specs = core::paper_grid(weight);
  keys.reserve(specs.size());
  for (const core::AlgorithmSpec& spec : specs) {
    keys.push_back(cell_key(workload_fnv, machine_nodes, spec, salt));
  }
  return keys;
}

std::string MergeReport::describe() const {
  std::string out = std::to_string(merged) + " cells merged";
  if (ok()) return out;
  if (duplicates > 0) {
    out += ", " + std::to_string(duplicates) + " duplicate" +
           (duplicates == 1 ? "" : "s") + " across shards";
  }
  if (!missing.empty()) {
    out += ", " + std::to_string(missing.size()) + " missing";
    if (!missing_by_shard.empty()) {
      out += " (";
      bool first = true;
      for (std::size_t s = 0; s < missing_by_shard.size(); ++s) {
        if (missing_by_shard[s] == 0) continue;
        if (!first) out += ", ";
        out += "shard " + std::to_string(s) + ": " +
               std::to_string(missing_by_shard[s]);
        first = false;
      }
      out += ")";
    }
  }
  if (unexpected > 0) {
    out += ", " + std::to_string(unexpected) + " unexpected key" +
           (unexpected == 1 ? "" : "s");
  }
  return out;
}

MergeReport merge_shard_journals(const MergeOptions& options) {
  MergeReport report;
  const std::unordered_set<std::uint64_t> expected(
      options.expected_keys.begin(), options.expected_keys.end());
  if (expected.size() != options.expected_keys.size()) {
    throw std::invalid_argument(
        "merge_shard_journals: expected_keys contains duplicates");
  }

  // Gather every shard's cells; the first shard (in index order) to
  // provide a key wins, later providers count as duplicates. With the
  // deterministic partition duplicates are impossible, so any hit here
  // means two shards were launched with overlapping specs — worth failing
  // the merge over, not silently resolving.
  std::unordered_map<std::uint64_t, RunResult> found;
  found.reserve(expected.size());
  for (const std::string& path : options.shard_paths) {
    if (!std::ifstream(path).good()) continue;  // never-started shard
    SweepJournal shard(path);
    for (auto& [key, result] : shard.snapshot()) {
      if (expected.find(key) == expected.end()) {
        ++report.unexpected;
        continue;
      }
      if (!found.emplace(key, std::move(result)).second) {
        ++report.duplicates;
      }
    }
  }

  // Rewrite in enumeration order. The v1 format round-trips exactly, and a
  // serial single-process sweep journals cells in this same order, so the
  // merged file is byte-identical to the never-sharded one.
  std::remove(options.out_path.c_str());
  SweepJournal merged(options.out_path);
  merged.open_segment(options.sweep_fingerprint);
  if (options.plan != nullptr) {
    report.missing_by_shard.assign(options.plan->count(), 0);
  }
  for (const std::uint64_t key : options.expected_keys) {
    const auto it = found.find(key);
    if (it == found.end()) {
      report.missing.push_back(key);
      if (options.plan != nullptr) {
        ++report.missing_by_shard[options.plan->shard_of(key)];
      }
      continue;
    }
    merged.record(key, it->second);
    ++report.merged;
  }
  return report;
}

std::shared_ptr<const workload::Workload> WorkloadCache::get(
    std::uint64_t key, const std::function<workload::Workload()>& make) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    ++stats_.hits;
    stats_.saved_seconds += it->second.generation_seconds;
    return it->second.workload;
  }
  const auto t0 = std::chrono::steady_clock::now();
  auto workload = std::make_shared<const workload::Workload>(make());
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  ++stats_.misses;
  stats_.generation_seconds += secs;
  entries_.emplace(key, Entry{workload, secs});
  return workload;
}

WorkloadCache::Stats WorkloadCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace jsched::eval
