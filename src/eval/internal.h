// Internal helpers shared by the eval translation units; not installed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <string>

#include "eval/experiment.h"

namespace jsched::eval::detail {

/// options.threads with 0 resolved to the hardware thread count.
std::size_t resolved_threads(const ExperimentOptions& options);

/// Copy of `options` whose on_run (if any) is wrapped in `mu` so worker
/// threads never interleave progress output. `options` and `mu` must
/// outlive the copy.
ExperimentOptions with_serialized_on_run(const ExperimentOptions& options,
                                         std::mutex& mu);

/// Re-thrown wrapper that pins an exception to a specific RunErrorKind —
/// used where the phase cannot be told from the exception type alone
/// (e.g. a workload generator throwing std::runtime_error). Only raised
/// when the harness is catching (kIsolate / kRetryN); under kFailFast the
/// original exception propagates untouched.
class PhaseError : public std::runtime_error {
 public:
  PhaseError(RunErrorKind kind, const std::string& what)
      : std::runtime_error(what), kind_(kind) {}
  RunErrorKind kind() const noexcept { return kind_; }

 private:
  RunErrorKind kind_;
};

/// Classify the in-flight exception (call inside a catch block only) into
/// a RunError for `scheduler`. See outcome.h for the type -> kind map.
RunError classify_current_exception(const std::string& scheduler);

/// Run one sweep cell under the options' error policy and journal:
/// journal lookup first (hit -> attempts == 0), then `attempt` once (or
/// 1 + max_retries times under kRetryN), recording a success into the
/// journal. Under kFailFast nothing is caught: `attempt`'s exception
/// propagates with its original type.
RunOutcome run_cell_protected(const ExperimentOptions& options,
                              std::uint64_t key,
                              const core::AlgorithmSpec& spec,
                              const std::function<RunResult()>& attempt);

}  // namespace jsched::eval::detail
