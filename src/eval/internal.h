// Internal helpers shared by the eval translation units; not installed.
#pragma once

#include <cstddef>
#include <mutex>

#include "eval/experiment.h"

namespace jsched::eval::detail {

/// options.threads with 0 resolved to the hardware thread count.
std::size_t resolved_threads(const ExperimentOptions& options);

/// Copy of `options` whose on_run (if any) is wrapped in `mu` so worker
/// threads never interleave progress output. `options` and `mu` must
/// outlive the copy.
ExperimentOptions with_serialized_on_run(const ExperimentOptions& options,
                                         std::mutex& mu);

}  // namespace jsched::eval::detail
