#include "eval/replication.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "eval/internal.h"
#include "util/thread_pool.h"

namespace jsched::eval {

namespace {

/// Replicate job counts may differ by this relative factor before the run
/// is rejected. A generator + trim_to_machine pipeline legitimately drops
/// a seed-dependent handful of too-wide jobs (a fraction of a percent);
/// counts further apart than this mean the seeds are not drawing from one
/// workload model and the replicate statistics would be meaningless.
constexpr double kMaxJobCountSpread = 1.05;

/// Fold per-seed results into the replicate aggregate in seed order — the
/// same add() sequence as a serial loop, so parallel and serial runs
/// produce bit-for-bit identical statistics. Throws if the workload
/// generator produced wildly different job counts for different seeds: a
/// size mismatch is the cheap tell of a buggy generator.
ReplicatedResult aggregate(const core::AlgorithmSpec& spec,
                           std::span<const std::uint64_t> seeds,
                           const std::vector<RunResult>& runs) {
  ReplicatedResult out;
  out.spec = spec;
  out.scheduler_name = runs.front().scheduler_name;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const auto lo = std::min(runs[i].jobs, runs.front().jobs);
    const auto hi = std::max(runs[i].jobs, runs.front().jobs);
    if (static_cast<double>(hi) > kMaxJobCountSpread * static_cast<double>(lo)) {
      throw std::runtime_error(
          "run_replicated: make_workload returned " +
          std::to_string(runs.front().jobs) + " jobs for seed " +
          std::to_string(seeds[0]) + " but " + std::to_string(runs[i].jobs) +
          " for seed " + std::to_string(seeds[i]) +
          "; replicates must draw from one workload model");
    }
    out.art.add(runs[i].art);
    out.awrt.add(runs[i].awrt);
    out.utilization.add(runs[i].utilization);
    out.goodput_fraction.add(runs[i].goodput_fraction);
  }
  return out;
}

}  // namespace

ReplicatedResult run_replicated(
    const sim::Machine& machine, const core::AlgorithmSpec& spec,
    const std::function<workload::Workload(std::uint64_t)>& make_workload,
    std::span<const std::uint64_t> seeds, const ExperimentOptions& options) {
  if (seeds.empty()) {
    throw std::invalid_argument("run_replicated: no seeds");
  }
  const std::size_t threads = detail::resolved_threads(options);
  std::vector<RunResult> runs(seeds.size());
  if (threads <= 1) {
    for (std::size_t i = 0; i < seeds.size(); ++i) {
      const workload::Workload w = make_workload(seeds[i]);
      runs[i] = run_one(machine, spec, w, options);
    }
  } else {
    std::mutex on_run_mu;
    const ExperimentOptions per_task =
        detail::with_serialized_on_run(options, on_run_mu);
    util::parallel_for_each(seeds.size(), threads, [&](std::size_t i) {
      const workload::Workload w = make_workload(seeds[i]);
      runs[i] = run_one(machine, spec, w, per_task);
    });
  }
  return aggregate(spec, seeds, runs);
}

bool robustly_better_art(const ReplicatedResult& a, const ReplicatedResult& b,
                         double z) {
  if (a.art.count() < 2 || b.art.count() < 2) {
    throw std::invalid_argument("robustly_better_art: need >= 2 replicates");
  }
  // Standard errors use the unbiased n-1 sample stddev: the replicates are
  // a sample from the workload model, and the population formula (divide
  // by n) understates the spread — badly so for the small replicate counts
  // typical here, declaring significance the data does not support.
  const double se_a =
      a.art.sample_stddev() / std::sqrt(static_cast<double>(a.art.count()));
  const double se_b =
      b.art.sample_stddev() / std::sqrt(static_cast<double>(b.art.count()));
  const double pooled = std::sqrt(se_a * se_a + se_b * se_b);
  return a.art.mean() + z * pooled < b.art.mean();
}

}  // namespace jsched::eval
