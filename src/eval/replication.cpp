#include "eval/replication.h"

#include <cmath>
#include <stdexcept>

namespace jsched::eval {

ReplicatedResult run_replicated(
    const sim::Machine& machine, const core::AlgorithmSpec& spec,
    const std::function<workload::Workload(std::uint64_t)>& make_workload,
    std::span<const std::uint64_t> seeds, const ExperimentOptions& options) {
  if (seeds.empty()) {
    throw std::invalid_argument("run_replicated: no seeds");
  }
  ReplicatedResult out;
  out.spec = spec;
  for (std::uint64_t seed : seeds) {
    const workload::Workload w = make_workload(seed);
    const RunResult r = run_one(machine, spec, w, options);
    out.scheduler_name = r.scheduler_name;
    out.art.add(r.art);
    out.awrt.add(r.awrt);
    out.utilization.add(r.utilization);
  }
  return out;
}

bool robustly_better_art(const ReplicatedResult& a, const ReplicatedResult& b,
                         double z) {
  if (a.art.count() < 2 || b.art.count() < 2) {
    throw std::invalid_argument("robustly_better_art: need >= 2 replicates");
  }
  const double se_a =
      a.art.stddev() / std::sqrt(static_cast<double>(a.art.count()));
  const double se_b =
      b.art.stddev() / std::sqrt(static_cast<double>(b.art.count()));
  const double pooled = std::sqrt(se_a * se_a + se_b * se_b);
  return a.art.mean() + z * pooled < b.art.mean();
}

}  // namespace jsched::eval
