#include "eval/replication.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

#include "eval/internal.h"
#include "eval/journal.h"
#include "eval/shard.h"
#include "util/thread_pool.h"

namespace jsched::eval {

namespace {

/// Replicate job counts may differ by this relative factor before the run
/// is rejected. A generator + trim_to_machine pipeline legitimately drops
/// a seed-dependent handful of too-wide jobs (a fraction of a percent);
/// counts further apart than this mean the seeds are not drawing from one
/// workload model and the replicate statistics would be meaningless.
constexpr double kMaxJobCountSpread = 1.05;

/// Journal key of one replicate. The workload fingerprint is deliberately
/// absent — on resume the whole point is to skip regenerating the
/// workload — so the seed (which determines the workload) stands in for
/// it.
std::uint64_t replicate_key(const ExperimentOptions& options, int machine_nodes,
                            const core::AlgorithmSpec& spec,
                            std::uint64_t seed) {
  if (options.journal == nullptr) return 0;
  return cell_key(seed, machine_nodes, spec,
                  options.journal_salt ^ 0x9e3779b97f4a7c15ull);
}

/// Fold per-seed results into the replicate aggregate in seed order — the
/// same add() sequence as a serial loop, so parallel and serial runs
/// produce bit-for-bit identical statistics. Failed replicates (possible
/// only under kIsolate / kRetryN) are skipped. Throws if the workload
/// generator produced wildly different job counts for different seeds: a
/// size mismatch is the cheap tell of a buggy generator.
ReplicatedResult aggregate(const core::AlgorithmSpec& spec,
                           std::span<const std::uint64_t> seeds,
                           std::vector<RunOutcome> outcomes) {
  ReplicatedResult out;
  out.spec = spec;
  const RunResult* reference = nullptr;
  std::size_t reference_seed_index = 0;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    if (!outcomes[i].ok) {
      ++out.failed_replicates;
      continue;
    }
    const RunResult& r = outcomes[i].result;
    if (reference == nullptr) {
      reference = &r;
      reference_seed_index = i;
      out.scheduler_name = r.scheduler_name;
    }
    const auto lo = std::min(r.jobs, reference->jobs);
    const auto hi = std::max(r.jobs, reference->jobs);
    if (static_cast<double>(hi) > kMaxJobCountSpread * static_cast<double>(lo)) {
      throw std::runtime_error(
          "run_replicated: make_workload returned " +
          std::to_string(reference->jobs) + " jobs for seed " +
          std::to_string(seeds[reference_seed_index]) + " but " +
          std::to_string(r.jobs) + " for seed " + std::to_string(seeds[i]) +
          "; replicates must draw from one workload model");
    }
    out.art.add(r.art);
    out.awrt.add(r.awrt);
    out.utilization.add(r.utilization);
    out.goodput_fraction.add(r.goodput_fraction);
  }
  out.outcomes = std::move(outcomes);
  return out;
}

}  // namespace

ReplicatedResult run_replicated(
    const sim::Machine& machine, const core::AlgorithmSpec& spec,
    const std::function<workload::Workload(std::uint64_t)>& make_workload,
    std::span<const std::uint64_t> seeds, const ExperimentOptions& options) {
  if (seeds.empty()) {
    throw std::invalid_argument("run_replicated: no seeds");
  }
  const std::size_t threads = detail::resolved_threads(options);
  // Under kFailFast a make_workload failure must propagate untouched; when
  // the harness is catching, tag it so it classifies as kWorkload instead
  // of whatever generic type the generator threw.
  const bool tag_phases = options.error_policy != ErrorPolicy::kFailFast;
  const auto run_seed = [&](std::size_t i, const ExperimentOptions& opts) {
    const std::uint64_t key =
        replicate_key(opts, machine.nodes, spec, seeds[i]);
    return detail::run_cell_protected(opts, key, spec, [&] {
      const auto materialize = [&]() -> workload::Workload {
        if (!tag_phases) return make_workload(seeds[i]);
        try {
          return make_workload(seeds[i]);
        } catch (const std::exception& e) {
          throw detail::PhaseError(
              RunErrorKind::kWorkload,
              "make_workload(seed=" + std::to_string(seeds[i]) +
                  "): " + e.what());
        }
      };
      // With a cache, the seed identifies the materialization: a study
      // sweeping many specs over the same seeds pays for each workload
      // once, not once per (spec, seed) cell.
      if (opts.workload_cache != nullptr) {
        const auto w = opts.workload_cache->get(seeds[i], materialize);
        return run_one(machine, spec, *w, opts);
      }
      const workload::Workload w = materialize();
      return run_one(machine, spec, w, opts);
    });
  };

  std::vector<RunOutcome> outcomes(seeds.size());
  if (threads <= 1) {
    for (std::size_t i = 0; i < seeds.size(); ++i) {
      outcomes[i] = run_seed(i, options);
    }
  } else {
    std::mutex on_run_mu;
    const ExperimentOptions per_task =
        detail::with_serialized_on_run(options, on_run_mu);
    util::ThreadPool::ParallelOptions pool_options;
    pool_options.stop_on_error =
        options.error_policy == ErrorPolicy::kFailFast;
    util::parallel_for_each(
        seeds.size(), threads,
        [&](std::size_t i) { outcomes[i] = run_seed(i, per_task); },
        pool_options);
  }
  return aggregate(spec, seeds, std::move(outcomes));
}

bool robustly_better_art(const ReplicatedResult& a, const ReplicatedResult& b,
                         double z) {
  if (a.art.count() < 2 || b.art.count() < 2) {
    throw std::invalid_argument("robustly_better_art: need >= 2 replicates");
  }
  // Standard errors use the unbiased n-1 sample stddev: the replicates are
  // a sample from the workload model, and the population formula (divide
  // by n) understates the spread — badly so for the small replicate counts
  // typical here, declaring significance the data does not support.
  const double se_a =
      a.art.sample_stddev() / std::sqrt(static_cast<double>(a.art.count()));
  const double se_b =
      b.art.sample_stddev() / std::sqrt(static_cast<double>(b.art.count()));
  const double pooled = std::sqrt(se_a * se_a + se_b * se_b);
  return a.art.mean() + z * pooled < b.art.mean();
}

}  // namespace jsched::eval
