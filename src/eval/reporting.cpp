#include "eval/reporting.h"

#include <array>
#include <cstdio>
#include <utility>

namespace jsched::eval {
namespace {

constexpr std::array<core::OrderKind, 4> kRowOrders = {
    core::OrderKind::kFcfs, core::OrderKind::kPsrs,
    core::OrderKind::kSmartFfia, core::OrderKind::kSmartNfiw};

const RunResult* try_find(const std::vector<RunResult>& results,
                          core::OrderKind order, core::DispatchKind dispatch) {
  for (const RunResult& r : results) {
    if (r.spec.order == order && r.spec.dispatch == dispatch) return &r;
  }
  return nullptr;
}

}  // namespace

util::Table response_time_table(const std::vector<RunResult>& results,
                                double RunResult::* metric,
                                const std::string& title) {
  const RunResult& ref =
      find(results, core::OrderKind::kFcfs, core::DispatchKind::kEasy);
  const double reference = ref.*metric;

  util::Table t({"Algorithm", "Listscheduler", "pct", "Backfilling", "pct",
                 "EASY-Backfilling", "pct"});
  t.set_title(title);
  for (core::OrderKind order : kRowOrders) {
    std::vector<std::string> row;
    row.push_back(core::to_string(order));
    for (core::DispatchKind dispatch :
         {core::DispatchKind::kList, core::DispatchKind::kConservative,
          core::DispatchKind::kEasy}) {
      const RunResult* r = try_find(results, order, dispatch);
      if (r != nullptr) {
        row.push_back(util::sci(r->*metric));
        row.push_back(util::pct(r->*metric, reference));
      } else {
        row.push_back("-");
        row.push_back("-");
      }
    }
    t.add_row(std::move(row));
  }
  if (const RunResult* gg = try_find(results, core::OrderKind::kFcfs,
                                     core::DispatchKind::kFirstFit)) {
    t.add_row({"Garey&Graham", util::sci(gg->*metric),
               util::pct(gg->*metric, reference), "-", "-", "-", "-"});
  }
  return t;
}

util::Table cpu_time_table(const std::vector<RunResult>& results,
                           const std::string& title) {
  const RunResult& ref =
      find(results, core::OrderKind::kFcfs, core::DispatchKind::kEasy);
  const double reference = ref.scheduler_cpu_seconds;

  util::Table t({"Algorithm", "Listscheduler", "pct", "EASY-Backfilling",
                 "pct"});
  t.set_title(title);
  for (core::OrderKind order : kRowOrders) {
    std::vector<std::string> row;
    row.push_back(core::to_string(order));
    for (core::DispatchKind dispatch :
         {core::DispatchKind::kList, core::DispatchKind::kEasy}) {
      const RunResult* r = try_find(results, order, dispatch);
      if (r != nullptr) {
        row.push_back(util::fixed(r->scheduler_cpu_seconds, 3) + "s");
        row.push_back(util::pct(r->scheduler_cpu_seconds, reference));
      } else {
        row.push_back("-");
        row.push_back("-");
      }
    }
    t.add_row(std::move(row));
  }
  if (const RunResult* gg = try_find(results, core::OrderKind::kFcfs,
                                     core::DispatchKind::kFirstFit)) {
    t.add_row({"Garey&Graham", util::fixed(gg->scheduler_cpu_seconds, 3) + "s",
               util::pct(gg->scheduler_cpu_seconds, reference), "-", "-"});
  }
  return t;
}

std::string figure_csv(const std::vector<RunResult>& results,
                       double RunResult::* metric) {
  util::Table t({"algorithm", "dispatch", "value"});
  for (const RunResult& r : results) {
    t.add_row({core::to_string(r.spec.order), core::to_string(r.spec.dispatch),
               util::sci(r.*metric, 6)});
  }
  return t.to_csv();
}

std::string experiment_title(const std::string& workload_name,
                             std::size_t jobs, core::WeightKind weight) {
  std::string objective = weight == core::WeightKind::kUnit
                              ? "unweighted (average response time)"
                              : "weighted (average weighted response time)";
  return workload_name + " (" + std::to_string(jobs) + " jobs), " + objective;
}

util::Table failure_table(const GridResult& grid, const std::string& title) {
  util::Table t({"Configuration", "Error", "Attempts", "Message"});
  t.set_title(title);
  for (const RunError& e : grid.failures()) {
    t.add_row({e.scheduler, std::string(to_string(e.kind)),
               std::to_string(e.attempts), e.message});
  }
  return t;
}

std::string failure_summary(const GridResult& grid) {
  const std::size_t failed = grid.failed();
  const std::size_t skipped = grid.skipped();
  const std::size_t mine = grid.cells.size() - skipped;
  std::string out =
      std::to_string(mine - failed) + "/" + std::to_string(mine) + " cells ok";
  if (skipped > 0) {
    out += ", " + std::to_string(skipped) + " on other shards";
  }
  if (failed > 0) {
    // Count failures per kind for the parenthetical, in first-seen order.
    std::vector<std::pair<RunErrorKind, std::size_t>> kinds;
    for (const RunError& e : grid.failures()) {
      bool found = false;
      for (auto& [kind, count] : kinds) {
        if (kind == e.kind) {
          ++count;
          found = true;
        }
      }
      if (!found) kinds.emplace_back(e.kind, 1);
    }
    out += ", " + std::to_string(failed) + " failed (";
    for (std::size_t i = 0; i < kinds.size(); ++i) {
      if (i > 0) out += ", ";
      out += std::string(to_string(kinds[i].first)) + "=" +
             std::to_string(kinds[i].second);
    }
    out += ")";
  }
  if (const std::size_t resumed = grid.resumed(); resumed > 0) {
    out += ", " + std::to_string(resumed) + " resumed from journal";
  }
  if (!grid.journal_note.empty()) out += "; " + grid.journal_note;
  return out;
}

void write_grid_json(const std::string& path, const GridJsonMeta& meta,
                     const std::vector<RunResult>& unweighted,
                     double unweighted_wall,
                     const std::vector<RunResult>& weighted,
                     double weighted_wall) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: could not write %s\n", path.c_str());
    return;
  }
  const auto emit_runs = [f](const char* key,
                             const std::vector<RunResult>& runs, double wall,
                             bool last) {
    std::fprintf(f, "  \"%s\": {\n", key);
    std::fprintf(f, "    \"wall_seconds\": %.2f,\n", wall);
    std::fprintf(f, "    \"configs\": [\n");
    for (std::size_t i = 0; i < runs.size(); ++i) {
      const RunResult& r = runs[i];
      std::fprintf(f,
                   "      {\"scheduler\": \"%s\", "
                   "\"scheduler_cpu_seconds\": %.4f, "
                   "\"schedule_fnv\": \"%016llx\"}%s\n",
                   r.scheduler_name.c_str(), r.scheduler_cpu_seconds,
                   static_cast<unsigned long long>(r.schedule_fnv),
                   i + 1 == runs.size() ? "" : ",");
    }
    std::fprintf(f, "    ]\n");
    std::fprintf(f, "  }%s\n", last ? "" : ",");
  };
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"benchmark\": \"full_grid\",\n");
  std::fprintf(f, "  \"jobs\": %zu,\n", meta.jobs);
  std::fprintf(f, "  \"machine_nodes\": %d,\n", meta.machine_nodes);
  std::fprintf(f, "  \"seed\": %llu,\n",
               static_cast<unsigned long long>(meta.seed));
  std::fprintf(f, "  \"threads\": %zu,\n", meta.threads);
  emit_runs("unweighted", unweighted, unweighted_wall, false);
  emit_runs("weighted", weighted, weighted_wall, true);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n\n", path.c_str());
}

}  // namespace jsched::eval
