#include "util/table.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace jsched::util {
namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!(std::isdigit(static_cast<unsigned char>(c)) || c == '.' || c == '-' ||
          c == '+' || c == 'e' || c == 'E' || c == '%')) {
      return false;
    }
  }
  return true;
}

std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("Table needs >= 1 column");
}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("Table row width mismatch");
  }
  rows_.push_back(std::move(row));
}

std::string Table::to_ascii() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto rule = [&] {
    os << '+';
    for (auto w : width) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto emit = [&](const std::vector<std::string>& cells, bool align_right) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      const auto pad = width[c] - cells[c].size();
      const bool right = align_right && looks_numeric(cells[c]);
      os << ' ' << (right ? std::string(pad, ' ') + cells[c]
                          : cells[c] + std::string(pad, ' '))
         << ' ' << '|';
    }
    os << '\n';
  };

  if (!title_.empty()) os << title_ << '\n';
  rule();
  emit(header_, false);
  rule();
  for (const auto& row : rows_) emit(row, true);
  rule();
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(cells[c]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string sci(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*E", digits, value);
  return buf;
}

std::string pct(double value, double reference) {
  if (reference == 0.0) return "n/a";
  const double rel = (value - reference) / reference * 100.0;
  if (std::abs(rel) < 0.05) return "0%";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%+.1f%%", rel);
  return buf;
}

std::string fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  return buf;
}

std::ostream& operator<<(std::ostream& os, const Table& t) {
  return os << t.to_ascii();
}

}  // namespace jsched::util
