// ASCII / CSV table rendering for the evaluation harness.
//
// The bench binaries reproduce the paper's Tables 3-8; this renderer prints
// them in the paper's layout (row label column + per-variant value/percent
// column pairs) without each bench reimplementing formatting.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace jsched::util {

/// A rectangular table of strings with a header row and optional title.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  std::size_t columns() const noexcept { return header_.size(); }
  std::size_t rows() const noexcept { return rows_.size(); }

  /// Append a row; must match the header width.
  void add_row(std::vector<std::string> row);

  void set_title(std::string title) { title_ = std::move(title); }

  /// Render with box-drawing rules and right-aligned numeric-looking cells.
  std::string to_ascii() const;

  /// Render as RFC-4180-ish CSV (quotes cells containing commas/quotes).
  std::string to_csv() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double in the paper's scientific style, e.g. "4.91E+06".
std::string sci(double value, int digits = 2);

/// Format a relative difference vs. a reference as the paper prints it,
/// e.g. "-69.6%" or "+1143.0%"; the reference itself prints as "0%".
std::string pct(double value, double reference);

/// Fixed-point with the given number of decimals.
std::string fixed(double value, int decimals = 1);

std::ostream& operator<<(std::ostream& os, const Table& t);

}  // namespace jsched::util
