// Crash-tolerant append-only record log.
//
// The checkpoint/resume layer of the evaluation harness journals one line
// per completed sweep cell; a killed process leaves at worst one torn
// trailing line, which the reader drops. This file is the I/O half only —
// plain newline-terminated text records, appended and flushed one at a
// time — so the eval layer owns the record format and this stays reusable
// for any future append-only need (progress logs, replayable event
// streams).
#pragma once

#include <cstdint>
#include <fstream>
#include <iosfwd>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace jsched::util {

/// A complete record whose checksum does not match its payload: the file
/// was bit-flipped (or hand-edited) *mid-file*, which the torn-tail rule
/// cannot explain away. Raised by AppendLog::check_record so journal
/// readers fail loudly instead of replaying garbage.
class CorruptRecordError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// FNV-1a over `data` — the framework's standard 64-bit content hash
/// (same constants as the schedule fingerprint), here exposed for
/// per-record journal checksums.
std::uint64_t fnv1a(std::string_view data) noexcept;

/// `v` as exactly 16 lowercase hex digits.
std::string hex64(std::uint64_t v);

/// Parse a 16-hex-digit token; returns false on any malformation.
bool parse_hex64(std::string_view token, std::uint64_t* out) noexcept;

/// Chunked text writer over an std::ostream: records are formatted into an
/// internal string (integers via std::to_chars — no locale machinery, no
/// per-field virtual sentry) and handed to the stream in large blocks.
/// This is the shared formatting layer of AppendLog (which drains + flushes
/// per record, the crash-tolerance contract) and of bulk writers like
/// write_swf (which drain every ~256 KiB and turn millions of tiny
/// operator<< calls into a handful of block writes).
class BufferedWriter {
 public:
  /// Buffer up to `flush_threshold` bytes between stream writes. The
  /// destructor drains the buffer but does not flush the stream.
  explicit BufferedWriter(std::ostream& out,
                          std::size_t flush_threshold = 256 * 1024);
  ~BufferedWriter();

  BufferedWriter(const BufferedWriter&) = delete;
  BufferedWriter& operator=(const BufferedWriter&) = delete;

  void append(std::string_view text);
  void append(char c);
  /// Decimal integer, exactly as operator<< would print it.
  void append_int(std::int64_t v);

  /// Drain the buffer into the stream (does not flush the stream itself).
  void drain();

 private:
  void maybe_drain();

  std::ostream* out_;
  std::string buf_;
  std::size_t threshold_;
};

/// Append-only line log. Appends are serialized by an internal mutex and
/// flushed per record, so every record written before a kill survives it.
class AppendLog {
 public:
  /// Per-record durability level. kFlush (the default) flushes to the OS
  /// after every record — survives any process kill, but a power loss can
  /// still eat records the kernel had not written back. kFsync adds an
  /// fsync(2) per record so journals survive power loss too; it is
  /// ~10-100x slower per append and only worth it when a sweep shard is
  /// expensive enough that replaying it beats trusting the page cache.
  enum class Durability { kFlush, kFsync };

  /// The process-wide default: Durability::kFsync when the environment
  /// variable JSCHED_JOURNAL_FSYNC is truthy ("1"/"true"/"yes"/"on"),
  /// kFlush otherwise. Read once per call, so tests can flip it.
  static Durability durability_from_env();

  /// Opens `path` in append mode, creating the file when missing. Throws
  /// std::runtime_error when the file cannot be opened for writing.
  /// `durability` defaults to the JSCHED_JOURNAL_FSYNC environment switch.
  explicit AppendLog(std::string path);
  AppendLog(std::string path, Durability durability);

  ~AppendLog();

  AppendLog(const AppendLog&) = delete;
  AppendLog& operator=(const AppendLog&) = delete;

  const std::string& path() const noexcept { return path_; }

  /// Append one record (a trailing newline is added) and flush. `line`
  /// must not contain '\n' — records are the unit of crash tolerance.
  /// Throws std::invalid_argument on an embedded newline and
  /// std::runtime_error when the write fails.
  void append(std::string_view line);

  /// Append one *checksummed* record: the line written is
  /// `<tag> <fnv1a(payload) as 16 hex digits> <payload>`. The payload may
  /// be empty; neither tag nor payload may contain a newline.
  void append_checked(std::string_view tag, std::string_view payload);

  /// The read half of append_checked. When `line` does not start with
  /// `tag` followed by a space, returns false (not this record kind — the
  /// caller skips or dispatches elsewhere). When it does, verifies the
  /// checksum and stores the payload into `*payload`, returning true; a
  /// checksum/framing mismatch throws CorruptRecordError — a complete line
  /// with the right tag and wrong bits is corruption, never a torn tail.
  static bool check_record(std::string_view line, std::string_view tag,
                           std::string* payload);

  /// Every *complete* line of `path`, in file order. A trailing fragment
  /// without a final newline (the footprint of a process killed
  /// mid-append) is dropped, and a missing file reads as empty — both are
  /// normal resume situations, not errors.
  static std::vector<std::string> read_lines(const std::string& path);

 private:
  std::string path_;
  std::mutex mu_;
  std::ofstream out_;
  Durability durability_ = Durability::kFlush;
  int fsync_fd_ = -1;  // opened only under Durability::kFsync
};

}  // namespace jsched::util
