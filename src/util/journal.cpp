#include "util/journal.h"

#include <algorithm>
#include <charconv>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include <fcntl.h>
#include <unistd.h>

#include "util/env.h"

namespace jsched::util {

namespace {
constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;
}  // namespace

std::uint64_t fnv1a(std::string_view data) noexcept {
  std::uint64_t h = kFnvOffset;
  for (const char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return h;
}

std::string hex64(std::uint64_t v) {
  char buf[17];
  for (int i = 15; i >= 0; --i) {
    buf[i] = "0123456789abcdef"[v & 0xfu];
    v >>= 4;
  }
  buf[16] = '\0';
  return std::string(buf);
}

bool parse_hex64(std::string_view token, std::uint64_t* out) noexcept {
  if (token.size() != 16) return false;
  std::uint64_t v = 0;
  for (const char c : token) {
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return false;
    }
  }
  *out = v;
  return true;
}

BufferedWriter::BufferedWriter(std::ostream& out, std::size_t flush_threshold)
    : out_(&out), threshold_(flush_threshold) {
  buf_.reserve(threshold_ + 64);
}

BufferedWriter::~BufferedWriter() { drain(); }

void BufferedWriter::append(std::string_view text) {
  buf_.append(text);
  maybe_drain();
}

void BufferedWriter::append(char c) {
  buf_.push_back(c);
  maybe_drain();
}

void BufferedWriter::append_int(std::int64_t v) {
  char digits[24];
  const auto [end, ec] = std::to_chars(digits, digits + sizeof(digits), v);
  buf_.append(digits, static_cast<std::size_t>(end - digits));
  maybe_drain();
}

void BufferedWriter::drain() {
  if (buf_.empty()) return;
  out_->write(buf_.data(), static_cast<std::streamsize>(buf_.size()));
  buf_.clear();
}

void BufferedWriter::maybe_drain() {
  if (buf_.size() >= threshold_) drain();
}

AppendLog::Durability AppendLog::durability_from_env() {
  return env_bool("JSCHED_JOURNAL_FSYNC", false) ? Durability::kFsync
                                                 : Durability::kFlush;
}

AppendLog::AppendLog(std::string path)
    : AppendLog(std::move(path), durability_from_env()) {}

AppendLog::AppendLog(std::string path, Durability durability)
    : path_(std::move(path)), durability_(durability) {
  out_.open(path_, std::ios::out | std::ios::app);
  if (!out_) {
    throw std::runtime_error("AppendLog: cannot open for append: " + path_);
  }
  if (durability_ == Durability::kFsync) {
    // fsync(2) takes a file descriptor and the ofstream hides its own, so
    // keep a second descriptor on the same file; fsync flushes the file's
    // dirty pages regardless of which descriptor wrote them.
    fsync_fd_ = ::open(path_.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
    if (fsync_fd_ < 0) {
      throw std::runtime_error("AppendLog: cannot open for fsync: " + path_);
    }
  }
}

AppendLog::~AppendLog() {
  if (fsync_fd_ >= 0) ::close(fsync_fd_);
}

void AppendLog::append(std::string_view line) {
  if (line.find('\n') != std::string_view::npos) {
    throw std::invalid_argument("AppendLog: record contains a newline");
  }
  std::lock_guard<std::mutex> lock(mu_);
  // Format through the shared writer, then flush the stream: the
  // record-at-a-time durability contract is the drain+flush, not the
  // formatting.
  {
    BufferedWriter w(out_, /*flush_threshold=*/0);
    w.append(line);
    w.append('\n');
  }
  out_.flush();
  if (!out_) {
    throw std::runtime_error("AppendLog: write failed: " + path_);
  }
  if (fsync_fd_ >= 0 && ::fsync(fsync_fd_) != 0) {
    throw std::runtime_error("AppendLog: fsync failed: " + path_);
  }
}

void AppendLog::append_checked(std::string_view tag, std::string_view payload) {
  if (tag.empty() || tag.find(' ') != std::string_view::npos) {
    throw std::invalid_argument("AppendLog: bad checked-record tag");
  }
  std::string line;
  line.reserve(tag.size() + payload.size() + 18);
  line.append(tag);
  line.push_back(' ');
  line.append(hex64(fnv1a(payload)));
  if (!payload.empty()) {
    line.push_back(' ');
    line.append(payload);
  }
  append(line);
}

bool AppendLog::check_record(std::string_view line, std::string_view tag,
                             std::string* payload) {
  if (line.size() < tag.size() + 1 || line.compare(0, tag.size(), tag) != 0 ||
      line[tag.size()] != ' ') {
    return false;
  }
  const auto corrupt = [&](const char* what) -> CorruptRecordError {
    return CorruptRecordError("corrupt journal record (" + std::string(what) +
                              "): " +
                              std::string(line.substr(0, 48)) +
                              (line.size() > 48 ? "..." : ""));
  };
  std::string_view rest = line.substr(tag.size() + 1);
  const std::string_view crc_token = rest.substr(0, std::min<std::size_t>(
                                                        rest.find(' '), 16));
  std::uint64_t crc = 0;
  if (!parse_hex64(crc_token, &crc)) throw corrupt("bad checksum field");
  std::string_view body;
  if (rest.size() > 16) {
    if (rest[16] != ' ') throw corrupt("bad checksum field");
    body = rest.substr(17);
  }
  if (fnv1a(body) != crc) throw corrupt("checksum mismatch");
  payload->assign(body);
  return true;
}

std::vector<std::string> AppendLog::read_lines(const std::string& path) {
  std::ifstream in(path, std::ios::in | std::ios::binary);
  std::vector<std::string> lines;
  if (!in) return lines;  // no journal yet: a fresh sweep
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string content = buf.str();
  std::size_t pos = 0;
  while (pos < content.size()) {
    const std::size_t nl = content.find('\n', pos);
    if (nl == std::string::npos) break;  // torn trailing record: drop it
    lines.push_back(content.substr(pos, nl - pos));
    pos = nl + 1;
  }
  return lines;
}

}  // namespace jsched::util
