#include "util/journal.h"

#include <sstream>
#include <stdexcept>
#include <utility>

namespace jsched::util {

AppendLog::AppendLog(std::string path) : path_(std::move(path)) {
  out_.open(path_, std::ios::out | std::ios::app);
  if (!out_) {
    throw std::runtime_error("AppendLog: cannot open for append: " + path_);
  }
}

void AppendLog::append(std::string_view line) {
  if (line.find('\n') != std::string_view::npos) {
    throw std::invalid_argument("AppendLog: record contains a newline");
  }
  std::lock_guard<std::mutex> lock(mu_);
  out_ << line << '\n';
  out_.flush();
  if (!out_) {
    throw std::runtime_error("AppendLog: write failed: " + path_);
  }
}

std::vector<std::string> AppendLog::read_lines(const std::string& path) {
  std::ifstream in(path, std::ios::in | std::ios::binary);
  std::vector<std::string> lines;
  if (!in) return lines;  // no journal yet: a fresh sweep
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string content = buf.str();
  std::size_t pos = 0;
  while (pos < content.size()) {
    const std::size_t nl = content.find('\n', pos);
    if (nl == std::string::npos) break;  // torn trailing record: drop it
    lines.push_back(content.substr(pos, nl - pos));
    pos = nl + 1;
  }
  return lines;
}

}  // namespace jsched::util
