#include "util/journal.h"

#include <charconv>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include <fcntl.h>
#include <unistd.h>

#include "util/env.h"

namespace jsched::util {

BufferedWriter::BufferedWriter(std::ostream& out, std::size_t flush_threshold)
    : out_(&out), threshold_(flush_threshold) {
  buf_.reserve(threshold_ + 64);
}

BufferedWriter::~BufferedWriter() { drain(); }

void BufferedWriter::append(std::string_view text) {
  buf_.append(text);
  maybe_drain();
}

void BufferedWriter::append(char c) {
  buf_.push_back(c);
  maybe_drain();
}

void BufferedWriter::append_int(std::int64_t v) {
  char digits[24];
  const auto [end, ec] = std::to_chars(digits, digits + sizeof(digits), v);
  buf_.append(digits, static_cast<std::size_t>(end - digits));
  maybe_drain();
}

void BufferedWriter::drain() {
  if (buf_.empty()) return;
  out_->write(buf_.data(), static_cast<std::streamsize>(buf_.size()));
  buf_.clear();
}

void BufferedWriter::maybe_drain() {
  if (buf_.size() >= threshold_) drain();
}

AppendLog::Durability AppendLog::durability_from_env() {
  return env_bool("JSCHED_JOURNAL_FSYNC", false) ? Durability::kFsync
                                                 : Durability::kFlush;
}

AppendLog::AppendLog(std::string path)
    : AppendLog(std::move(path), durability_from_env()) {}

AppendLog::AppendLog(std::string path, Durability durability)
    : path_(std::move(path)), durability_(durability) {
  out_.open(path_, std::ios::out | std::ios::app);
  if (!out_) {
    throw std::runtime_error("AppendLog: cannot open for append: " + path_);
  }
  if (durability_ == Durability::kFsync) {
    // fsync(2) takes a file descriptor and the ofstream hides its own, so
    // keep a second descriptor on the same file; fsync flushes the file's
    // dirty pages regardless of which descriptor wrote them.
    fsync_fd_ = ::open(path_.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
    if (fsync_fd_ < 0) {
      throw std::runtime_error("AppendLog: cannot open for fsync: " + path_);
    }
  }
}

AppendLog::~AppendLog() {
  if (fsync_fd_ >= 0) ::close(fsync_fd_);
}

void AppendLog::append(std::string_view line) {
  if (line.find('\n') != std::string_view::npos) {
    throw std::invalid_argument("AppendLog: record contains a newline");
  }
  std::lock_guard<std::mutex> lock(mu_);
  // Format through the shared writer, then flush the stream: the
  // record-at-a-time durability contract is the drain+flush, not the
  // formatting.
  {
    BufferedWriter w(out_, /*flush_threshold=*/0);
    w.append(line);
    w.append('\n');
  }
  out_.flush();
  if (!out_) {
    throw std::runtime_error("AppendLog: write failed: " + path_);
  }
  if (fsync_fd_ >= 0 && ::fsync(fsync_fd_) != 0) {
    throw std::runtime_error("AppendLog: fsync failed: " + path_);
  }
}

std::vector<std::string> AppendLog::read_lines(const std::string& path) {
  std::ifstream in(path, std::ios::in | std::ios::binary);
  std::vector<std::string> lines;
  if (!in) return lines;  // no journal yet: a fresh sweep
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string content = buf.str();
  std::size_t pos = 0;
  while (pos < content.size()) {
    const std::size_t nl = content.find('\n', pos);
    if (nl == std::string::npos) break;  // torn trailing record: drop it
    lines.push_back(content.substr(pos, nl - pos));
    pos = nl + 1;
  }
  return lines;
}

}  // namespace jsched::util
