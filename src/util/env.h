// Tiny environment-variable configuration helpers.
//
// The bench harness is scaled through JSCHED_* variables (e.g. JSCHED_JOBS)
// so the paper-size runs and quick smoke runs share one binary.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace jsched::util {

/// Raw lookup; nullopt when unset.
std::optional<std::string> env_string(const std::string& name);

/// Integer lookup with default; throws std::invalid_argument on garbage.
std::int64_t env_int(const std::string& name, std::int64_t fallback);

/// Double lookup with default; throws std::invalid_argument on garbage.
double env_double(const std::string& name, double fallback);

/// Boolean lookup: "1/true/yes/on" => true, "0/false/no/off" => false.
bool env_bool(const std::string& name, bool fallback);

}  // namespace jsched::util
