// Paged dense-index table with page reclamation.
//
// A drop-in bound for the "vector indexed by dense id" pattern whose ids
// only grow: entries are stored in fixed-size pages allocated on first
// touch and *freed when their last entry is erased*. With erasure roughly
// tracking insertion (a scheduler forgetting finished jobs), resident
// memory is O(live entries + pages), not O(total ids ever seen) — the
// difference between ~500 MB and a few MB over a 10M-job streaming run.
#pragma once

#include <cassert>
#include <cstddef>
#include <memory>
#include <vector>

namespace jsched::util {

template <typename T>
class PagedTable {
 public:
  static constexpr std::size_t kPageSize = 4096;

  void clear() {
    pages_.clear();
    high_water_ = 0;
    live_ = 0;
  }

  /// Insert or overwrite entry `i`. Overwriting a live entry is allowed
  /// (a re-submitted job updates in place).
  void put(std::size_t i, const T& v) {
    Page& p = page_for(i);
    const std::size_t s = i % kPageSize;
    p.live_count += p.present[s] ? 0u : 1u;
    live_ += p.present[s] ? 0u : 1u;
    p.present[s] = 1;
    p.slots[s] = v;
    if (i + 1 > high_water_) high_water_ = i + 1;
  }

  const T& get(std::size_t i) const {
    const std::size_t pi = i / kPageSize;
    assert(pi < pages_.size() && pages_[pi] != nullptr &&
           pages_[pi]->present[i % kPageSize]);
    return pages_[pi]->slots[i % kPageSize];
  }

  bool contains(std::size_t i) const {
    const std::size_t pi = i / kPageSize;
    return pi < pages_.size() && pages_[pi] != nullptr &&
           pages_[pi]->present[i % kPageSize] != 0;
  }

  /// Remove entry `i` (no-op when absent); frees the page when it empties.
  void erase(std::size_t i) {
    const std::size_t pi = i / kPageSize;
    if (pi >= pages_.size() || pages_[pi] == nullptr) return;
    Page& p = *pages_[pi];
    const std::size_t s = i % kPageSize;
    if (!p.present[s]) return;
    p.present[s] = 0;
    --p.live_count;
    --live_;
    if (p.live_count == 0) pages_[pi].reset();
  }

  /// One past the largest index ever put (monotone; survives erasure).
  std::size_t high_water() const noexcept { return high_water_; }
  /// Live (present) entries.
  std::size_t size() const noexcept { return live_; }
  /// Currently allocated pages — the memory witness tests assert on.
  std::size_t pages_allocated() const noexcept {
    std::size_t n = 0;
    for (const auto& p : pages_) {
      if (p != nullptr) ++n;
    }
    return n;
  }

 private:
  struct Page {
    std::vector<T> slots;
    std::vector<unsigned char> present;
    std::size_t live_count = 0;
    Page() : slots(kPageSize), present(kPageSize, 0) {}
  };

  Page& page_for(std::size_t i) {
    const std::size_t pi = i / kPageSize;
    if (pi >= pages_.size()) pages_.resize(pi + 1);
    if (pages_[pi] == nullptr) pages_[pi] = std::make_unique<Page>();
    return *pages_[pi];
  }

  std::vector<std::unique_ptr<Page>> pages_;
  std::size_t high_water_ = 0;
  std::size_t live_ = 0;
};

}  // namespace jsched::util
