// Cooperative SIGINT/SIGTERM draining, shared by the long-running tools.
//
// Both schedd (the serve daemon) and sweepd (the sharded sweep coordinator)
// want the same shutdown contract: the first signal asks for a *drain* —
// stop taking new work, finish or hand off what's in flight, emit the final
// summary — and a second signal means "abort now". A plain signal() handler
// can't carry that state safely, so SignalDrain installs async-signal-safe
// counting handlers on construction and restores the previous disposition on
// destruction; the polling loop reads the counters between iterations.
#pragma once

#include <csignal>

namespace jsched::util {

class SignalDrain {
 public:
  /// Installs handlers for SIGINT and SIGTERM. Only one instance may be
  /// live at a time (the handlers count into process-wide state).
  SignalDrain();
  ~SignalDrain();

  SignalDrain(const SignalDrain&) = delete;
  SignalDrain& operator=(const SignalDrain&) = delete;

  /// Number of SIGINT/SIGTERM received since construction.
  static int count() noexcept;
  /// The most recent signal number received, or 0 if none.
  static int last_signal() noexcept;

  /// First signal seen: finish in-flight work, emit the summary, exit.
  static bool drain_requested() noexcept { return count() >= 1; }
  /// Second signal seen: the user is impatient — stop immediately.
  static bool abort_requested() noexcept { return count() >= 2; }

  /// Reset counters (test hook; also used between schedd modes).
  static void reset() noexcept;

 private:
  struct sigaction prev_int_;
  struct sigaction prev_term_;
};

}  // namespace jsched::util
