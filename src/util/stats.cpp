#include "util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace jsched::util {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return n_ >= 2 ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::sample_variance() const noexcept {
  return n_ >= 2 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::sample_stddev() const noexcept {
  return std::sqrt(sample_variance());
}

double quantile(std::span<const double> values, double q) {
  if (values.empty()) throw std::invalid_argument("quantile of empty sample");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile q out of [0,1]");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), counts_(bounds_.size(), 0) {
  if (bounds_.empty()) throw std::invalid_argument("Histogram needs >= 1 bound");
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end()) {
    throw std::invalid_argument("Histogram bounds must be strictly increasing");
  }
}

std::size_t Histogram::bin_of(double x) const noexcept {
  auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  if (it == bounds_.end()) return bounds_.size() - 1;
  return static_cast<std::size_t>(it - bounds_.begin());
}

void Histogram::add(double x) noexcept {
  ++counts_[bin_of(x)];
  ++total_;
}

double Histogram::lower_bound(std::size_t bin, double fallback_low) const noexcept {
  return bin == 0 ? fallback_low : bounds_[bin - 1];
}

std::vector<double> Histogram::weights() const {
  std::vector<double> w(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    w[i] = static_cast<double>(counts_[i]);
  }
  return w;
}

std::vector<double> geometric_bounds(double first, double ratio, std::size_t n) {
  assert(first > 0.0 && ratio > 1.0 && n >= 1);
  std::vector<double> bounds;
  bounds.reserve(n);
  double b = first;
  for (std::size_t i = 0; i < n; ++i) {
    bounds.push_back(b);
    b *= ratio;
  }
  return bounds;
}

WeibullFit fit_weibull(std::span<const double> samples) {
  // If X ~ Weibull(k, lambda) then log X has variance pi^2 / (6 k^2) and
  // mean log(lambda) - gamma_E / k; solving the two moment equations gives
  // closed-form estimates.
  RunningStats logs;
  for (double x : samples) {
    if (x > 0.0) logs.add(std::log(x));
  }
  if (logs.count() < 2) throw std::invalid_argument("fit_weibull: need >= 2 positive samples");
  constexpr double kEulerGamma = 0.5772156649015329;
  constexpr double kPi = 3.141592653589793;
  const double sd = std::max(logs.stddev(), 1e-12);
  const double shape = kPi / (sd * std::sqrt(6.0));
  const double scale = std::exp(logs.mean() + kEulerGamma / shape);
  return {shape, scale};
}

}  // namespace jsched::util
