// Human-readable formatting of the integer time types.
#pragma once

#include <string>

#include "util/time.h"

namespace jsched::util {

/// "2d 03:14:07" style duration formatting (days only when nonzero).
std::string format_duration(Duration d);

/// "1996-07-14 08:00:00"-style formatting of an absolute simulation time
/// given an epoch expressed as a Unix timestamp; pure arithmetic (UTC), no
/// locale or timezone dependence.
std::string format_time(Time t, Time unix_epoch_offset = 0);

}  // namespace jsched::util
