// Streaming and batch statistics used across workload analysis, metric
// reporting and the probability-distribution workload model.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace jsched::util {

/// Numerically stable streaming moments (Welford) plus min/max.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Population variance (divide by n); 0 for fewer than two samples.
  /// This is the descriptive second moment of the data seen so far — the
  /// right quantity when the added values ARE the whole population of
  /// interest (e.g. fit_weibull's method-of-moments over a full trace).
  double variance() const noexcept;
  double stddev() const noexcept;
  /// Unbiased sample variance (divide by n-1); 0 for fewer than two
  /// samples. Use this when the added values are replicates drawn from a
  /// larger population and the goal is a standard error — with few
  /// replicates the population formula understates the spread and makes
  /// confidence intervals too narrow (eval::robustly_better_art).
  double sample_variance() const noexcept;
  double sample_stddev() const noexcept;
  double sum() const noexcept { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exact quantile of a sample (nearest-rank); q in [0, 1]. Copies & sorts.
double quantile(std::span<const double> values, double q);

/// Fixed-boundary histogram over doubles. Values below the first boundary
/// fall into bin 0; values >= the last boundary into the last bin.
///
/// The paper's probability-distribution workload (§6.2) "creates bins for
/// … various ranges of requested time and of actual execution length" and
/// derives probabilities per bin — this is that structure.
class Histogram {
 public:
  /// `upper_bounds` must be strictly increasing and non-empty; bin i covers
  /// (upper_bounds[i-1], upper_bounds[i]] with bin 0 = (-inf, upper_bounds[0]].
  explicit Histogram(std::vector<double> upper_bounds);

  void add(double x) noexcept;
  std::size_t bin_of(double x) const noexcept;

  std::size_t bin_count() const noexcept { return counts_.size(); }
  std::uint64_t count(std::size_t bin) const noexcept { return counts_[bin]; }
  std::uint64_t total() const noexcept { return total_; }
  double upper_bound(std::size_t bin) const noexcept { return bounds_[bin]; }
  /// Lower edge of bin i (bounds_[i-1], or `fallback_low` for bin 0).
  double lower_bound(std::size_t bin, double fallback_low) const noexcept;

  /// Counts as doubles (for DiscreteCdf construction).
  std::vector<double> weights() const;

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Geometric bin boundaries: {first, first*ratio, first*ratio^2, ...} with
/// `n` entries. Shared by the Histogram users and by SMART's execution-time
/// binning (paper §5.4).
std::vector<double> geometric_bounds(double first, double ratio, std::size_t n);

/// Fit a Weibull distribution to strictly positive samples via the method
/// of moments on log-values (fast, deterministic, adequate for workload
/// modelling). Returns {shape, scale}; requires >= 2 positive samples.
struct WeibullFit {
  double shape;
  double scale;
};
WeibullFit fit_weibull(std::span<const double> samples);

}  // namespace jsched::util
