#include "util/latency.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace jsched::util {

namespace {

constexpr std::uint64_t kSub = 1ULL << LatencyHistogram::kSubBits;  // 32

}  // namespace

std::size_t LatencyHistogram::bucket_of(std::uint64_t value) noexcept {
  // Values below 2*kSub get one bucket each (exact); above that, 32 linear
  // sub-buckets per power of two, so bucket width <= value / 32.
  if (value < 2 * kSub) return static_cast<std::size_t>(value);
  const unsigned msb = static_cast<unsigned>(std::bit_width(value)) - 1;
  const unsigned shift = msb - kSubBits;  // >= 1 here
  const std::uint64_t sub = (value >> shift) & (kSub - 1);
  return static_cast<std::size_t>(shift) * kSub + kSub +
         static_cast<std::size_t>(sub);
}

std::uint64_t LatencyHistogram::bucket_upper_bound(std::size_t index) noexcept {
  if (index < 2 * kSub) return static_cast<std::uint64_t>(index);
  const std::uint64_t shift = index / kSub - 1;
  const std::uint64_t sub = index % kSub;
  // Bucket covers [(kSub + sub) << shift, ((kSub + sub + 1) << shift) - 1].
  return ((kSub + sub + 1) << shift) - 1;
}

void LatencyHistogram::record(std::uint64_t value) {
  const std::size_t idx = bucket_of(value);
  if (idx >= counts_.size()) counts_.resize(idx + 1, 0);
  ++counts_[idx];
  ++count_;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  if (other.count_ == 0) return;
  if (other.counts_.size() > counts_.size()) {
    counts_.resize(other.counts_.size(), 0);
  }
  for (std::size_t i = 0; i < other.counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

std::uint64_t LatencyHistogram::quantile(double q) const noexcept {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the sample we report: ceil(q * count), at least 1.
  auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  rank = std::clamp<std::uint64_t>(rank, 1, count_);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen >= rank) {
      return std::clamp(bucket_upper_bound(i), min_, max_);
    }
  }
  return max_;  // unreachable: seen reaches count_ by the last bucket
}

}  // namespace jsched::util
