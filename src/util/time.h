// Integer time base for the whole framework.
//
// All trace formats used in parallel-job scheduling (SWF in particular) are
// second-resolution, so the simulator works in integral seconds. Using
// integers keeps event ordering exact and runs deterministic across
// platforms; doubles would make tie-breaking in the event queue fragile.
#pragma once

#include <cstdint>
#include <limits>

namespace jsched {

/// Absolute simulation time in seconds since the simulation epoch (the
/// submission time of the first job is typically shifted to 0).
using Time = std::int64_t;

/// A span of time in seconds.
using Duration = std::int64_t;

/// Sentinel for "never" / "unknown".
inline constexpr Time kTimeInfinity = std::numeric_limits<Time>::max();

inline constexpr Duration kSecond = 1;
inline constexpr Duration kMinute = 60;
inline constexpr Duration kHour = 3600;
inline constexpr Duration kDay = 24 * kHour;
inline constexpr Duration kWeek = 7 * kDay;

}  // namespace jsched
