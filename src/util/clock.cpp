#include "util/clock.h"

#include <thread>

namespace jsched::util {

namespace {

class RealClock final : public Clock {
 public:
  time_point now() const noexcept override {
    return std::chrono::steady_clock::now();
  }
  void sleep_until(time_point t) override { std::this_thread::sleep_until(t); }
};

}  // namespace

Clock& real_clock() noexcept {
  static RealClock clock;
  return clock;
}

}  // namespace jsched::util
