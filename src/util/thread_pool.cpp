#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>
#include <utility>

namespace jsched::util {

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t count = std::max<std::size_t>(threads, 1);
  workers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  has_task_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  has_task_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      has_task_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ThreadPool::parallel_for_each(std::size_t n,
                                   const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  // One puller per worker; each drains indices from a shared counter so a
  // long task on one thread never blocks the remaining indices.
  auto next = std::make_shared<std::atomic<std::size_t>>(0);
  auto first_error = std::make_shared<std::exception_ptr>();
  auto error_mu = std::make_shared<std::mutex>();
  const std::size_t pullers = std::min(size(), n);
  for (std::size_t p = 0; p < pullers; ++p) {
    submit([n, &fn, next, first_error, error_mu] {
      for (std::size_t i = (*next)++; i < n; i = (*next)++) {
        try {
          fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(*error_mu);
          if (!*first_error) *first_error = std::current_exception();
        }
      }
    });
  }
  wait();
  if (*first_error) std::rethrow_exception(*first_error);
}

std::size_t ThreadPool::hardware_threads() {
  return std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
}

void parallel_for_each(std::size_t n, std::size_t threads,
                       const std::function<void(std::size_t)>& fn) {
  if (threads <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  ThreadPool pool(std::min(threads, n == 0 ? std::size_t{1} : n));
  pool.parallel_for_each(n, fn);
}

}  // namespace jsched::util
