#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

namespace jsched::util {

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t count = std::max<std::size_t>(threads, 1);
  workers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  has_task_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  has_task_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      has_task_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    // Destroy the closure before signaling completion: once in_flight_
    // hits 0 a waiter may tear down (or rethrow from) state the closure
    // still shares — e.g. parallel_for_each's error channel.
    task = nullptr;
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

namespace {

/// Shared error channel of one parallel_for_each call: the first exception
/// (by completion order) plus a count of later ones, so no failure is ever
/// silently dropped.
struct ErrorChannel {
  std::mutex mu;
  std::exception_ptr first;
  std::size_t suppressed = 0;
  std::atomic<bool> failed{false};

  void capture(std::exception_ptr e) {
    std::lock_guard<std::mutex> lock(mu);
    if (!first) {
      first = std::move(e);
    } else {
      ++suppressed;
    }
    failed.store(true, std::memory_order_relaxed);
  }

  /// Rethrow the first exception. With suppressed secondary failures the
  /// original type cannot carry the count, so the rethrown error becomes a
  /// std::runtime_error wrapping the first message plus the count.
  [[noreturn]] void rethrow() {
    if (suppressed == 0) std::rethrow_exception(first);
    std::string what;
    try {
      std::rethrow_exception(first);
    } catch (const std::exception& e) {
      what = e.what();
    } catch (...) {
      what = "non-standard exception";
    }
    throw std::runtime_error(what + " (+" + std::to_string(suppressed) +
                             " further task failure" +
                             (suppressed == 1 ? "" : "s") + " suppressed)");
  }
};

}  // namespace

void ThreadPool::parallel_for_each(
    std::size_t n, const std::function<void(std::size_t)>& fn) {
  parallel_for_each(n, fn, ParallelOptions{});
}

void ThreadPool::parallel_for_each(std::size_t n,
                                   const std::function<void(std::size_t)>& fn,
                                   const ParallelOptions& options) {
  if (n == 0) return;
  // One puller per worker; each drains indices from a shared counter so a
  // long task on one thread never blocks the remaining indices.
  auto next = std::make_shared<std::atomic<std::size_t>>(0);
  auto errors = std::make_shared<ErrorChannel>();
  const bool stop_on_error = options.stop_on_error;
  const std::size_t pullers = std::min(size(), n);
  for (std::size_t p = 0; p < pullers; ++p) {
    submit([n, &fn, next, errors, stop_on_error] {
      for (std::size_t i = (*next)++; i < n; i = (*next)++) {
        if (stop_on_error && errors->failed.load(std::memory_order_relaxed)) {
          return;  // drain: finish nothing new, abandon nothing in flight
        }
        try {
          fn(i);
        } catch (...) {
          errors->capture(std::current_exception());
        }
      }
    });
  }
  wait();
  if (errors->first) errors->rethrow();
}

std::size_t ThreadPool::hardware_threads() {
  return std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
}

void parallel_for_each(std::size_t n, std::size_t threads,
                       const std::function<void(std::size_t)>& fn,
                       const ThreadPool::ParallelOptions& options) {
  if (threads <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  ThreadPool pool(std::min(threads, n == 0 ? std::size_t{1} : n));
  pool.parallel_for_each(n, fn, options);
}

}  // namespace jsched::util
