#include "util/rng.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace jsched::util {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  // SplitMix64 expansion guarantees a non-degenerate state for any seed.
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 random bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  assert(lo <= hi);
  const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling for exact uniformity.
  const std::uint64_t limit = (~0ULL) - (~0ULL) % range;
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return lo + static_cast<std::int64_t>(v % range);
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

double Rng::exponential(double rate) noexcept {
  assert(rate > 0.0);
  double u = uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return -std::log1p(-u) / rate;
}

double Rng::weibull(double shape, double scale) noexcept {
  assert(shape > 0.0 && scale > 0.0);
  double u = uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return scale * std::pow(-std::log1p(-u), 1.0 / shape);
}

double Rng::log_uniform(double lo, double hi) noexcept {
  assert(lo > 0.0 && lo <= hi);
  return std::exp(uniform(std::log(lo), std::log(hi)));
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double m = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * m;
  has_cached_normal_ = true;
  return u * m;
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Rng::lognormal(double mu, double sigma) noexcept {
  return std::exp(normal(mu, sigma));
}

std::size_t Rng::discrete(std::span<const double> weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += w;
  assert(total > 0.0);
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  // Numerical leftover: return the last positive-weight category.
  for (std::size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0.0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::split() noexcept {
  Rng child(0);
  for (auto& s : child.s_) s = next_u64();
  // Guard against the (astronomically unlikely) all-zero state.
  bool all_zero = true;
  for (auto s : child.s_) all_zero = all_zero && s == 0;
  if (all_zero) child.s_[0] = 1;
  return child;
}

DiscreteCdf::DiscreteCdf(std::span<const double> weights) {
  cdf_.reserve(weights.size());
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  assert(total > 0.0);
  double acc = 0.0;
  for (double w : weights) {
    acc += w / total;
    cdf_.push_back(acc);
  }
  cdf_.back() = 1.0;
}

std::size_t DiscreteCdf::sample(Rng& rng) const noexcept {
  assert(!cdf_.empty());
  const double u = rng.uniform();
  auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<std::size_t>(it - cdf_.begin());
}

double DiscreteCdf::probability(std::size_t i) const noexcept {
  assert(i < cdf_.size());
  return i == 0 ? cdf_[0] : cdf_[i] - cdf_[i - 1];
}

}  // namespace jsched::util
