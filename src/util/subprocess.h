// Minimal child-process management for the sharded sweep driver.
//
// The multi-process sweep coordinator spawns one worker per shard, polls
// them for exit, and restarts crashed ones. Workers need no IPC channel:
// their only observable state is the shard journal they append to, so the
// coordinator's "heartbeat" is the number of complete records in that file
// (count_complete_lines below). This keeps the protocol trivially robust —
// a worker that can write its journal is making progress, and one that
// cannot is indistinguishable from a dead one, which is exactly how the
// restart logic should treat it.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include <sys/types.h>

namespace jsched::util {

/// How a child ended: a normal exit (code) or a fatal signal.
struct ExitStatus {
  bool signaled = false;
  int code = 0;  // exit code, or the signal number when `signaled`

  bool success() const noexcept { return !signaled && code == 0; }
  /// "exit 3" / "signal 9 (SIGKILL is 9)" style description.
  std::string describe() const;
};

/// One spawned child process (fork + execvp). Movable, not copyable; the
/// destructor does NOT kill or reap a still-running child — callers that
/// want an orphan-free exit must wait() or kill() explicitly (the sweep
/// coordinator always does: an abandoned shard worker would keep writing
/// its journal).
class Subprocess {
 public:
  /// Launch `argv` (argv[0] is the program, resolved via PATH). The
  /// current environment is inherited; `extra_env` entries are added (or
  /// overridden) on top. Throws std::invalid_argument on an empty argv and
  /// std::runtime_error when fork fails. An exec failure inside the child
  /// surfaces as exit code 127 — the shell convention — since the parent
  /// has already returned by then.
  static Subprocess spawn(
      const std::vector<std::string>& argv,
      const std::vector<std::pair<std::string, std::string>>& extra_env = {});

  Subprocess(Subprocess&& other) noexcept;
  Subprocess& operator=(Subprocess&& other) noexcept;
  Subprocess(const Subprocess&) = delete;
  Subprocess& operator=(const Subprocess&) = delete;
  ~Subprocess() = default;

  pid_t pid() const noexcept { return pid_; }

  /// Non-blocking: the exit status when the child has ended, nullopt while
  /// it is still running. Idempotent after the child is reaped.
  std::optional<ExitStatus> poll();

  /// Blocking wait; returns the exit status. Idempotent.
  ExitStatus wait();

  /// Send `sig` (default SIGKILL) to the child. No-op after it is reaped.
  void kill(int sig);
  void kill();

 private:
  explicit Subprocess(pid_t pid) : pid_(pid) {}

  pid_t pid_ = -1;
  std::optional<ExitStatus> status_;
};

/// Absolute path of the running executable (/proc/self/exe), so a driver
/// can respawn itself in worker mode. Throws std::runtime_error when the
/// link cannot be read (non-Linux /proc-less environments).
std::string self_exe_path();

/// Number of complete (newline-terminated) lines in `path` that start with
/// `prefix`; a missing file counts 0. This is the journal-tail progress
/// protocol: shard workers append one "v1 ..." record per finished cell,
/// so the line count IS the cell count — no pipe, socket or shared memory
/// involved, and it works unchanged for workers on other machines whose
/// journals arrive over a shared filesystem.
std::size_t count_complete_lines(const std::string& path,
                                 std::string_view prefix);

}  // namespace jsched::util
