// Log-bucketed latency histogram (HdrHistogram-style, fixed precision).
//
// The serve daemon records one sample per scheduling decision; a run can
// make millions of decisions, so per-sample storage is out and the summary
// must still answer "what was p999" precisely enough to enforce an SLO.
// Values (nanoseconds, but the class is unit-agnostic) are bucketed with
// kSubBits sub-buckets per power of two: bucket width is at most
// value / 2^kSubBits, so any reported quantile overstates the true sample
// by < 2^-kSubBits (3.2% at the default 5 bits). Counts are exact, min/max/
// sum are exact, and two histograms merge by adding bucket counts — which
// is what lets sharded or per-scheduler runs combine their SLO reports
// without keeping samples.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace jsched::util {

class LatencyHistogram {
 public:
  /// Sub-bucket resolution: 2^kSubBits linear buckets per octave.
  /// Quantile upper bounds overstate by less than 2^-kSubBits (~3.2%).
  static constexpr unsigned kSubBits = 5;

  /// Record one sample. O(1), no allocation beyond growing the (bounded,
  /// <= ~2k entry) bucket vector to the sample's bucket.
  void record(std::uint64_t value);

  /// Fold `other` into this histogram. The result is exactly what
  /// recording both sample streams into one histogram would have produced.
  void merge(const LatencyHistogram& other);

  std::uint64_t count() const noexcept { return count_; }
  std::uint64_t sum() const noexcept { return sum_; }
  /// Exact extremes; 0 when empty.
  std::uint64_t min() const noexcept { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const noexcept { return max_; }
  double mean() const noexcept {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  /// Upper bound of the bucket holding the sample of rank ceil(q * count),
  /// clamped into [min, max] — so quantiles of a single-valued distribution
  /// are exact, q <= 0 returns min and q >= 1 returns max. Empty histogram
  /// returns 0. `q` outside [0, 1] is clamped.
  std::uint64_t quantile(double q) const noexcept;

  std::uint64_t p50() const noexcept { return quantile(0.50); }
  std::uint64_t p99() const noexcept { return quantile(0.99); }
  std::uint64_t p999() const noexcept { return quantile(0.999); }

  /// Bucket index of `value` (exposed for the boundary unit tests).
  static std::size_t bucket_of(std::uint64_t value) noexcept;
  /// Largest value mapping to bucket `index` (inverse of bucket_of).
  static std::uint64_t bucket_upper_bound(std::size_t index) noexcept;

 private:
  std::vector<std::uint64_t> counts_;  // grown lazily to the highest bucket
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = ~0ULL;
  std::uint64_t max_ = 0;
};

}  // namespace jsched::util
