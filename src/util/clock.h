// Injectable monotonic time source.
//
// Everything in this repo that *waits* or *measures wall time* — the serve
// daemon's pacing loop, run deadlines, the sweep coordinator's poll sleeps —
// goes through this interface instead of calling std::chrono directly. The
// production implementation (real_clock()) is std::chrono::steady_clock plus
// a real sleep; tests substitute a ManualClock whose time only moves when the
// test (or a sleep_until call) advances it, which makes every timing-
// dependent test deterministic: a "deadline expired" test advances the clock
// past the deadline instead of actually waiting and hoping the scheduler of
// the CI machine cooperates.
#pragma once

#include <atomic>
#include <chrono>

namespace jsched::util {

class Clock {
 public:
  // steady_clock's representation so real and fake time_points interconvert
  // with the rest of the codebase (CancelToken deadlines in particular).
  using time_point = std::chrono::steady_clock::time_point;
  using duration = std::chrono::nanoseconds;

  virtual ~Clock() = default;

  /// Current monotonic time.
  virtual time_point now() const noexcept = 0;

  /// Block until now() >= t (no-op when already past). A ManualClock
  /// "sleeps" by jumping its time forward, so waiters never actually block.
  virtual void sleep_until(time_point t) = 0;

  void sleep_for(duration d) { sleep_until(now() + d); }
};

/// The process-wide real clock: steady_clock::now + this_thread::sleep.
Clock& real_clock() noexcept;

/// Deterministic clock for tests: time is a value the test controls.
/// sleep_until advances time to the target immediately (simulated waiting),
/// so code paths that pace themselves run at full speed under test while
/// observing exactly the time sequence the test scripted. Reads and
/// advances are atomic — safe to share with the thread under test.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(time_point start = time_point{}) noexcept
      : ns_(start.time_since_epoch().count()) {}

  time_point now() const noexcept override {
    return time_point(duration(ns_.load(std::memory_order_relaxed)));
  }

  void sleep_until(time_point t) override {
    // Monotonic: never move backwards even if another thread advanced past.
    auto target = t.time_since_epoch().count();
    auto cur = ns_.load(std::memory_order_relaxed);
    while (cur < target &&
           !ns_.compare_exchange_weak(cur, target, std::memory_order_relaxed)) {
    }
  }

  void advance(duration d) noexcept {
    ns_.fetch_add(d.count(), std::memory_order_relaxed);
  }

 private:
  std::atomic<duration::rep> ns_;
};

}  // namespace jsched::util
