// Deterministic random number generation for workload synthesis.
//
// Everything random in jsched flows through this class so that a seed fully
// determines a workload (and therefore a schedule and every reported
// metric). The core generator is xoshiro256**, seeded via SplitMix64 — both
// are public-domain algorithms with excellent statistical quality and are
// trivially reproducible across compilers/platforms, unlike the
// distribution objects in <random> whose outputs are implementation
// defined.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace jsched::util {

/// xoshiro256** pseudo random generator with convenience distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Next raw 64-bit value.
  std::uint64_t next_u64() noexcept;

  // UniformRandomBitGenerator interface (usable with std::shuffle).
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }
  result_type operator()() noexcept { return next_u64(); }

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) noexcept;

  /// Exponential variate with the given rate (lambda > 0).
  double exponential(double rate) noexcept;

  /// Weibull variate with shape k > 0 and scale lambda > 0.
  ///
  /// The IPPS'99 paper fits a Weibull distribution to the CTC job
  /// submission (inter-arrival) process; this is the sampler backing that
  /// model.
  double weibull(double shape, double scale) noexcept;

  /// Log-uniform variate in [lo, hi], lo > 0: uniform in log-space. Heavy
  /// right tail, a standard stand-in for job runtime distributions.
  double log_uniform(double lo, double hi) noexcept;

  /// Standard normal via Marsaglia polar method.
  double normal() noexcept;

  /// Normal with the given mean / stddev.
  double normal(double mean, double stddev) noexcept;

  /// Lognormal: exp(Normal(mu, sigma)).
  double lognormal(double mu, double sigma) noexcept;

  /// Draw an index from an (unnormalized) non-negative weight vector.
  /// Requires at least one strictly positive weight.
  std::size_t discrete(std::span<const double> weights) noexcept;

  /// Split off an independent stream (useful to decouple job attributes so
  /// that adding a field doesn't perturb unrelated draws).
  Rng split() noexcept;

 private:
  std::uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

/// Precomputed cumulative distribution over bin indices: O(log n) sampling
/// from an empirical histogram. Used by the statistics-derived workload
/// model (paper §6.2).
class DiscreteCdf {
 public:
  DiscreteCdf() = default;
  /// Build from unnormalized non-negative weights; zero-total is invalid.
  explicit DiscreteCdf(std::span<const double> weights);

  /// Number of categories.
  std::size_t size() const noexcept { return cdf_.size(); }
  bool empty() const noexcept { return cdf_.empty(); }

  /// Sample a category index.
  std::size_t sample(Rng& rng) const noexcept;

  /// Probability mass of category i.
  double probability(std::size_t i) const noexcept;

 private:
  std::vector<double> cdf_;  // strictly increasing, back() == 1.0
};

}  // namespace jsched::util
