// Fixed-size thread pool for embarrassingly parallel evaluation sweeps.
//
// The paper's methodology runs a 13-configuration algorithm grid over
// several workloads and seeds; every (spec, seed) simulation is
// independent, so the eval layer fans them out here. The pool is
// deliberately simple — a shared FIFO queue, no work stealing — because
// every task is a multi-second simulation and queue contention is noise.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace jsched::util {

/// Fixed-size worker pool over a shared task queue. Threads are started in
/// the constructor and joined in the destructor; `submit` never blocks.
class ThreadPool {
 public:
  /// Starts `threads` workers; 0 is clamped to 1.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue one task. A task must not submit to or wait on its own pool.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished.
  void wait();

  struct ParallelOptions {
    /// After the first task failure, stop handing out new indices: tasks
    /// already in flight drain normally (they are never abandoned), but
    /// indices not yet started are skipped. Off (the default) runs every
    /// index to completion — the historical behavior.
    bool stop_on_error = false;
  };

  /// Run fn(0), ..., fn(n-1) across the pool and block until all are done.
  /// Indices are handed out in order but may complete in any order; the
  /// caller owns result placement (typically out[i] = ...). If any call
  /// throws, the first exception (by completion order) is rethrown after
  /// every started index finishes. When further tasks threw too, the
  /// rethrown error is a std::runtime_error carrying the first failure's
  /// message plus the count of suppressed exceptions — secondary failures
  /// are counted, never silently lost.
  void parallel_for_each(std::size_t n,
                         const std::function<void(std::size_t)>& fn);
  void parallel_for_each(std::size_t n,
                         const std::function<void(std::size_t)>& fn,
                         const ParallelOptions& options);

  /// std::thread::hardware_concurrency with a floor of 1.
  static std::size_t hardware_threads();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable has_task_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

/// One-shot helper: run fn(0..n-1) on `threads` workers. `threads <= 1`
/// runs inline on the calling thread (no pool, bit-for-bit serial order;
/// stop_on_error is implicit — the first exception propagates directly);
/// `threads == 0` is treated as 1. Exceptions propagate as in
/// ThreadPool::parallel_for_each.
void parallel_for_each(std::size_t n, std::size_t threads,
                       const std::function<void(std::size_t)>& fn,
                       const ThreadPool::ParallelOptions& options = {});

}  // namespace jsched::util
