#include "util/signals.h"

#include <stdexcept>

namespace jsched::util {

namespace {

volatile std::sig_atomic_t g_count = 0;
volatile std::sig_atomic_t g_last = 0;
bool g_installed = false;

extern "C" void drain_handler(int sig) {
  g_count = g_count + 1;
  g_last = sig;
}

}  // namespace

SignalDrain::SignalDrain() {
  if (g_installed) {
    throw std::logic_error("SignalDrain: already installed in this process");
  }
  g_installed = true;
  g_count = 0;
  g_last = 0;
  struct sigaction sa = {};
  sa.sa_handler = &drain_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: interrupt blocking reads so loops notice
  sigaction(SIGINT, &sa, &prev_int_);
  sigaction(SIGTERM, &sa, &prev_term_);
}

SignalDrain::~SignalDrain() {
  sigaction(SIGINT, &prev_int_, nullptr);
  sigaction(SIGTERM, &prev_term_, nullptr);
  g_installed = false;
}

int SignalDrain::count() noexcept { return static_cast<int>(g_count); }

int SignalDrain::last_signal() noexcept { return static_cast<int>(g_last); }

void SignalDrain::reset() noexcept {
  g_count = 0;
  g_last = 0;
}

}  // namespace jsched::util
