#include "util/timefmt.h"

#include <cstdio>
#include <cstdlib>

namespace jsched::util {

std::string format_duration(Duration d) {
  const bool neg = d < 0;
  if (neg) d = -d;
  const Duration days = d / kDay;
  const Duration h = (d % kDay) / kHour;
  const Duration m = (d % kHour) / kMinute;
  const Duration s = d % kMinute;
  char buf[64];
  if (days > 0) {
    std::snprintf(buf, sizeof buf, "%s%lldd %02lld:%02lld:%02lld",
                  neg ? "-" : "", static_cast<long long>(days),
                  static_cast<long long>(h), static_cast<long long>(m),
                  static_cast<long long>(s));
  } else {
    std::snprintf(buf, sizeof buf, "%s%02lld:%02lld:%02lld", neg ? "-" : "",
                  static_cast<long long>(h), static_cast<long long>(m),
                  static_cast<long long>(s));
  }
  return buf;
}

namespace {

// Civil-from-days algorithm (Howard Hinnant, public domain derivation).
void civil_from_days(long long z, int& y, unsigned& mo, unsigned& da) {
  z += 719468;
  const long long era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const long long yy = static_cast<long long>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  da = doy - (153 * mp + 2) / 5 + 1;
  mo = mp < 10 ? mp + 3 : mp - 9;
  y = static_cast<int>(yy + (mo <= 2));
}

}  // namespace

std::string format_time(Time t, Time unix_epoch_offset) {
  const long long total = static_cast<long long>(t) + unix_epoch_offset;
  long long days = total / kDay;
  long long rem = total % kDay;
  if (rem < 0) {
    rem += kDay;
    --days;
  }
  int y;
  unsigned mo, da;
  civil_from_days(days, y, mo, da);
  char buf[64];
  std::snprintf(buf, sizeof buf, "%04d-%02u-%02u %02lld:%02lld:%02lld", y, mo,
                da, rem / kHour, (rem % kHour) / kMinute, rem % kMinute);
  return buf;
}

}  // namespace jsched::util
