#include "util/subprocess.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <utility>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

namespace jsched::util {

std::string ExitStatus::describe() const {
  if (signaled) return "signal " + std::to_string(code);
  return "exit " + std::to_string(code);
}

Subprocess Subprocess::spawn(
    const std::vector<std::string>& argv,
    const std::vector<std::pair<std::string, std::string>>& extra_env) {
  if (argv.empty()) {
    throw std::invalid_argument("Subprocess::spawn: empty argv");
  }
  // Build the exec vectors before forking: the child must only call
  // async-signal-safe functions, and heap allocation after fork() in a
  // multithreaded parent is not.
  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const std::string& a : argv) {
    cargv.push_back(const_cast<char*>(a.c_str()));
  }
  cargv.push_back(nullptr);
  std::vector<std::string> env_strings;
  env_strings.reserve(extra_env.size());
  for (const auto& [k, v] : extra_env) env_strings.push_back(k + "=" + v);

  const pid_t pid = ::fork();
  if (pid < 0) {
    throw std::runtime_error(std::string("Subprocess::spawn: fork: ") +
                             std::strerror(errno));
  }
  if (pid == 0) {
    // Child. putenv/execvp are not strictly async-signal-safe but operate
    // on pre-built buffers; this matches common practice for fork+exec
    // helpers without vfork/posix_spawn's portability baggage.
    for (std::string& kv : env_strings) ::putenv(kv.data());
    ::execvp(cargv[0], cargv.data());
    // Exec failed: report via the shell's 127 convention and die without
    // running parent atexit handlers.
    ::_exit(127);
  }
  return Subprocess(pid);
}

Subprocess::Subprocess(Subprocess&& other) noexcept
    : pid_(std::exchange(other.pid_, -1)), status_(std::move(other.status_)) {}

Subprocess& Subprocess::operator=(Subprocess&& other) noexcept {
  pid_ = std::exchange(other.pid_, -1);
  status_ = std::move(other.status_);
  return *this;
}

namespace {

ExitStatus decode(int wstatus) {
  ExitStatus s;
  if (WIFSIGNALED(wstatus)) {
    s.signaled = true;
    s.code = WTERMSIG(wstatus);
  } else {
    s.code = WEXITSTATUS(wstatus);
  }
  return s;
}

}  // namespace

std::optional<ExitStatus> Subprocess::poll() {
  if (status_.has_value()) return status_;
  if (pid_ < 0) return std::nullopt;
  int wstatus = 0;
  const pid_t r = ::waitpid(pid_, &wstatus, WNOHANG);
  if (r == 0) return std::nullopt;  // still running
  if (r < 0) {
    throw std::runtime_error(std::string("Subprocess::poll: waitpid: ") +
                             std::strerror(errno));
  }
  status_ = decode(wstatus);
  return status_;
}

ExitStatus Subprocess::wait() {
  if (status_.has_value()) return *status_;
  if (pid_ < 0) {
    throw std::logic_error("Subprocess::wait: no child (moved-from handle)");
  }
  int wstatus = 0;
  if (::waitpid(pid_, &wstatus, 0) < 0) {
    throw std::runtime_error(std::string("Subprocess::wait: waitpid: ") +
                             std::strerror(errno));
  }
  status_ = decode(wstatus);
  return *status_;
}

void Subprocess::kill(int sig) {
  if (status_.has_value() || pid_ < 0) return;
  ::kill(pid_, sig);
}

void Subprocess::kill() { kill(SIGKILL); }

std::string self_exe_path() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) {
    throw std::runtime_error("self_exe_path: cannot read /proc/self/exe");
  }
  buf[n] = '\0';
  return std::string(buf);
}

std::size_t count_complete_lines(const std::string& path,
                                 std::string_view prefix) {
  std::ifstream in(path, std::ios::in | std::ios::binary);
  if (!in) return 0;
  std::size_t count = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (in.eof() && !line.empty()) break;  // torn trailing fragment
    if (line.compare(0, prefix.size(), prefix) == 0) ++count;
  }
  return count;
}

}  // namespace jsched::util
