#include "util/env.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <stdexcept>

namespace jsched::util {

std::optional<std::string> env_string(const std::string& name) {
  const char* v = std::getenv(name.c_str());
  if (v == nullptr) return std::nullopt;
  return std::string(v);
}

std::int64_t env_int(const std::string& name, std::int64_t fallback) {
  auto v = env_string(name);
  if (!v) return fallback;
  std::size_t pos = 0;
  const std::int64_t parsed = std::stoll(*v, &pos);
  if (pos != v->size()) {
    throw std::invalid_argument(name + ": not an integer: " + *v);
  }
  return parsed;
}

double env_double(const std::string& name, double fallback) {
  auto v = env_string(name);
  if (!v) return fallback;
  std::size_t pos = 0;
  const double parsed = std::stod(*v, &pos);
  if (pos != v->size()) {
    throw std::invalid_argument(name + ": not a number: " + *v);
  }
  return parsed;
}

bool env_bool(const std::string& name, bool fallback) {
  auto v = env_string(name);
  if (!v) return fallback;
  std::string s = *v;
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (s == "1" || s == "true" || s == "yes" || s == "on") return true;
  if (s == "0" || s == "false" || s == "no" || s == "off") return false;
  throw std::invalid_argument(name + ": not a boolean: " + *v);
}

}  // namespace jsched::util
