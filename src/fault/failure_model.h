// Stochastic failure-trace generation.
//
// Per-node renewal process: each node alternates an up phase drawn from
// the MTBF distribution with a repair phase drawn from the MTTR
// distribution, independently of every other node. Exponential phases
// give the memoryless baseline; Weibull phases (shape < 1 for uptime)
// reproduce the infant-mortality / burstiness reported for real MPP
// failure logs. The same deterministic RNG discipline as
// workload::CtcModel applies: one util::Rng seeded by the caller, one
// split() stream per node, so adding a node never perturbs the draws of
// another and a seed fully determines the trace.
#pragma once

#include <cstdint>

#include "fault/fault.h"
#include "util/time.h"

namespace jsched::fault {

enum class FailureDistribution { kExponential, kWeibull };

struct FailureModelParams {
  /// Machine size the trace is generated for.
  int nodes = 256;
  /// Failures are generated in [0, horizon); repairs may complete later
  /// (every failure is always eventually repaired, so a simulation never
  /// ends with capacity permanently lost).
  Time horizon = 30 * kDay;
  /// Mean time between failures of one node (seconds).
  double mtbf = 30.0 * static_cast<double>(kDay);
  /// Mean time to repair one node (seconds).
  double mttr = 2.0 * static_cast<double>(kHour);
  FailureDistribution uptime_dist = FailureDistribution::kExponential;
  FailureDistribution repair_dist = FailureDistribution::kExponential;
  /// Weibull shape parameters (used only by the matching *_dist). The
  /// scale is derived so the mean stays at mtbf / mttr respectively.
  double uptime_shape = 0.7;
  double repair_shape = 2.0;

  /// Throws std::invalid_argument on nonsensical values.
  void validate() const;
};

/// Generate a validated failure trace: per-node alternating
/// time-to-failure / time-to-repair draws, merged over all nodes into
/// single-instant capacity steps. Deterministic in (params, seed).
FailureTrace generate_failures(const FailureModelParams& params,
                               std::uint64_t seed);

}  // namespace jsched::fault
