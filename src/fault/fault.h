// Fault injection: node failure traces and recovery semantics.
//
// The paper evaluates schedulers on an ideal always-up machine; this
// subsystem opens the failure axis. A FailureTrace is a validated list of
// capacity deltas (nodes going down and coming back); the simulator
// replays it against any scheduler, killing running jobs when a failure
// removes the nodes under them, and a RecoveryPolicy decides how much of
// the killed work is lost before the job is re-submitted. The zero-failure
// path (no trace) is untouched — schedules stay bit-identical to the
// fault-free simulator.
#pragma once

#include <vector>

#include "util/time.h"

namespace jsched::fault {

/// What happens to a job killed by a node failure.
enum class RecoveryPolicy {
  /// All progress is lost; the job is re-submitted with its full remaining
  /// work (the classic batch-system requeue).
  kRequeueFromScratch,
  /// Progress is checkpointed every `checkpoint_interval` seconds of
  /// useful work; the re-submitted job resumes from the last checkpoint
  /// and pays `restart_overhead` seconds before making new progress.
  kCheckpointRestart,
};

struct RecoveryOptions {
  RecoveryPolicy policy = RecoveryPolicy::kRequeueFromScratch;
  /// Seconds of useful work between checkpoints (kCheckpointRestart only).
  Duration checkpoint_interval = kHour;
  /// Seconds of restart work (state reload) preceding any new progress
  /// after a kill (kCheckpointRestart only).
  Duration restart_overhead = 0;

  /// Throws std::invalid_argument on nonsensical values
  /// (checkpoint_interval < 1 under kCheckpointRestart, negative
  /// restart_overhead).
  void validate() const;
};

/// One capacity step: at time t, `delta` nodes leave (< 0) or rejoin (> 0)
/// the machine.
struct FailureEvent {
  Time t = 0;
  int delta = 0;

  friend bool operator==(const FailureEvent&, const FailureEvent&) = default;
};

/// A validated, replayable failure trace bound to a machine size.
///
/// Invariants (established by make_failure_trace): events are sorted by
/// strictly increasing time, every delta is nonzero (same-instant events
/// are coalesced; zero-sum instants dropped), and the cumulative number of
/// down nodes stays within [0, machine_nodes] at every prefix — capacity
/// never exceeds the machine and never goes below zero.
struct FailureTrace {
  std::vector<FailureEvent> events;
  int machine_nodes = 0;
  /// Peak number of simultaneously down nodes over the trace.
  int max_down = 0;

  bool empty() const noexcept { return events.empty(); }
};

/// Sort, coalesce and validate `events` into a FailureTrace for a machine
/// of `machine_nodes` nodes. Throws std::invalid_argument when an event
/// has t < 0 or delta == 0, or when the cumulative down count leaves
/// [0, machine_nodes].
FailureTrace make_failure_trace(std::vector<FailureEvent> events,
                                int machine_nodes);

/// Available nodes at virtual time `t`: machine_nodes plus every delta at
/// or before t. This is the wall-clock mapping helper of the serve daemon
/// — a live run maps wall time to a virtual instant and needs the
/// capacity in force *at* that instant (restart-from-journal resume
/// points, progress reports) without replaying the event list by hand.
int capacity_at(const FailureTrace& trace, Time t) noexcept;

/// Replays an explicit event list — the test-facing injector. Thin wrapper
/// over make_failure_trace that keeps the validated trace alive alongside
/// the FaultOptions pointing at it.
class TraceInjector {
 public:
  TraceInjector(std::vector<FailureEvent> events, int machine_nodes)
      : trace_(make_failure_trace(std::move(events), machine_nodes)) {}

  const FailureTrace& trace() const noexcept { return trace_; }

 private:
  FailureTrace trace_;
};

/// The fault axis of a simulation. Default-constructed (null trace) means
/// "no faults": the simulator takes its original event loop and produces
/// bit-identical schedules.
struct FaultOptions {
  /// Not owned; must outlive the simulation. nullptr disables injection.
  const FailureTrace* trace = nullptr;
  RecoveryOptions recovery{};

  bool active() const noexcept { return trace != nullptr && !trace->empty(); }
};

}  // namespace jsched::fault
