#include "fault/failure_model.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.h"

namespace jsched::fault {
namespace {

/// One phase-length draw with the requested distribution and mean.
/// Weibull scale is derived from the target mean exactly as
/// workload::CtcModel does: mean = scale * Gamma(1 + 1/shape).
double draw_phase(util::Rng& rng, FailureDistribution dist, double mean,
                  double shape) {
  if (dist == FailureDistribution::kExponential) {
    return rng.exponential(1.0 / mean);
  }
  const double scale = mean / std::tgamma(1.0 + 1.0 / shape);
  return rng.weibull(shape, scale);
}

/// Round a phase draw to the integer-second time base, never below 1s
/// (zero-length phases would fold a failure and its repair into one
/// instant and vanish).
Duration phase_seconds(double v) {
  return std::max<Duration>(1, static_cast<Duration>(std::llround(v)));
}

}  // namespace

void FailureModelParams::validate() const {
  if (nodes < 1) throw std::invalid_argument("FailureModel: nodes < 1");
  if (horizon < 0) throw std::invalid_argument("FailureModel: horizon < 0");
  if (!(mtbf > 0.0)) throw std::invalid_argument("FailureModel: mtbf <= 0");
  if (!(mttr > 0.0)) throw std::invalid_argument("FailureModel: mttr <= 0");
  if (uptime_dist == FailureDistribution::kWeibull && !(uptime_shape > 0.0)) {
    throw std::invalid_argument("FailureModel: uptime_shape <= 0");
  }
  if (repair_dist == FailureDistribution::kWeibull && !(repair_shape > 0.0)) {
    throw std::invalid_argument("FailureModel: repair_shape <= 0");
  }
}

FailureTrace generate_failures(const FailureModelParams& params,
                               std::uint64_t seed) {
  params.validate();
  util::Rng rng(seed);
  std::vector<FailureEvent> events;
  for (int node = 0; node < params.nodes; ++node) {
    // One independent stream per node: adding nodes extends the trace
    // without perturbing the existing nodes' failure times.
    util::Rng node_rng = rng.split();
    Time t = 0;
    while (true) {
      const Duration up = phase_seconds(draw_phase(
          node_rng, params.uptime_dist, params.mtbf, params.uptime_shape));
      if (t > params.horizon - up) break;  // next failure beyond horizon
      t += up;
      const Duration repair = phase_seconds(draw_phase(
          node_rng, params.repair_dist, params.mttr, params.repair_shape));
      events.push_back({t, -1});
      events.push_back({t + repair, +1});
      t += repair;
    }
  }
  return make_failure_trace(std::move(events), params.nodes);
}

}  // namespace jsched::fault
