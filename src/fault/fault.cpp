#include "fault/fault.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace jsched::fault {

void RecoveryOptions::validate() const {
  if (policy == RecoveryPolicy::kCheckpointRestart && checkpoint_interval < 1) {
    throw std::invalid_argument(
        "RecoveryOptions: checkpoint_interval must be >= 1 second");
  }
  if (restart_overhead < 0) {
    throw std::invalid_argument(
        "RecoveryOptions: restart_overhead must be >= 0");
  }
}

FailureTrace make_failure_trace(std::vector<FailureEvent> events,
                                int machine_nodes) {
  if (machine_nodes < 1) {
    throw std::invalid_argument("make_failure_trace: machine_nodes < 1");
  }
  for (const FailureEvent& e : events) {
    if (e.t < 0) {
      throw std::invalid_argument("make_failure_trace: event before time 0");
    }
    if (e.delta == 0) {
      throw std::invalid_argument("make_failure_trace: zero-delta event");
    }
  }
  // Stable sort by time so same-instant deltas coalesce deterministically
  // whatever order the caller supplied them in.
  std::stable_sort(events.begin(), events.end(),
                   [](const FailureEvent& a, const FailureEvent& b) {
                     return a.t < b.t;
                   });

  FailureTrace trace;
  trace.machine_nodes = machine_nodes;
  trace.events.reserve(events.size());
  int down = 0;
  for (std::size_t i = 0; i < events.size();) {
    const Time t = events[i].t;
    int delta = 0;
    for (; i < events.size() && events[i].t == t; ++i) delta += events[i].delta;
    if (delta == 0) continue;  // zero-sum instant: no capacity step at all
    down -= delta;
    if (down < 0) {
      throw std::invalid_argument(
          "make_failure_trace: more nodes repaired than failed at time " +
          std::to_string(t));
    }
    if (down > machine_nodes) {
      throw std::invalid_argument(
          "make_failure_trace: more than machine_nodes down at time " +
          std::to_string(t));
    }
    trace.max_down = std::max(trace.max_down, down);
    trace.events.push_back({t, delta});
  }
  return trace;
}

int capacity_at(const FailureTrace& trace, Time t) noexcept {
  int capacity = trace.machine_nodes;
  for (const FailureEvent& e : trace.events) {
    if (e.t > t) break;  // events are strictly time-sorted
    capacity += e.delta;
  }
  return capacity;
}

}  // namespace jsched::fault
