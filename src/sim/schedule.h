// The produced schedule: "an allocation of system resources to individual
// jobs for certain time periods" (paper §2). The simulator fills one of
// these; the metrics library evaluates it; the validator enforces the
// machine's validity constraints.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "sim/machine.h"
#include "util/time.h"
#include "workload/workload.h"

namespace jsched::sim {

/// Per-job outcome. Indexed by JobId in the owning Schedule.
struct JobRecord {
  Time submit = 0;
  Time start = 0;
  Time end = 0;  // completion (or cancellation) time
  int nodes = 0;
  /// True when the job hit its user-provided upper limit and was cancelled
  /// (Example 5, Rule 2).
  bool cancelled = false;

  Duration response() const noexcept { return end - submit; }
  Duration wait() const noexcept { return start - submit; }
};

/// One *killed* execution attempt of a job under fault injection. The
/// job's final (completing) attempt lives in its JobRecord; earlier
/// attempts ended by a node failure are appended here in kill order.
/// Empty in fault-free simulations.
struct AttemptRecord {
  JobId id = kInvalidJob;
  Time start = 0;
  Time end = 0;  // kill time
  int nodes = 0;
  /// Work carried over to the next attempt (checkpointed seconds);
  /// 0 under kRequeueFromScratch. (end - start) - saved is the attempt's
  /// lost work.
  Duration saved = 0;

  Duration lost() const noexcept { return (end - start) - saved; }
};

/// A complete executed schedule.
class Schedule {
 public:
  Schedule() = default;
  Schedule(Machine machine, std::size_t job_count, std::string scheduler_name);

  const Machine& machine() const noexcept { return machine_; }
  const std::string& scheduler_name() const noexcept { return scheduler_name_; }

  std::size_t size() const noexcept { return records_.size(); }
  const JobRecord& operator[](JobId id) const noexcept { return records_[id]; }
  const std::vector<JobRecord>& records() const noexcept { return records_; }

  void record_start(JobId id, Time submit, Time start, int nodes);
  void record_end(JobId id, Time end, bool cancelled);

  /// Completion time of the last job (0 for an empty schedule).
  Time makespan() const noexcept;

  /// CPU seconds spent inside the scheduler (paper Tables 7/8).
  double scheduler_cpu_seconds = 0.0;

  /// Peak number of simultaneously waiting jobs (backlog indicator, §6.1).
  std::size_t max_queue_length = 0;

  /// Queue length after each event (only filled when
  /// SimOptions::record_backlog is set): the §6.1 "larger job backlog
  /// during the simulation" as a plottable time series. Consecutive
  /// samples at one instant are coalesced to the last value.
  std::vector<std::pair<Time, std::size_t>> backlog;

  /// Killed execution attempts, in kill order (fault injection only;
  /// empty otherwise). metrics::resilience folds these into wasted-work
  /// and resubmission accounting.
  std::vector<AttemptRecord> attempts;

  /// Machine capacity steps: (time, available nodes *after* the step),
  /// one entry per failure-trace instant reached by the simulation.
  /// Capacity is machine().nodes before the first entry. Empty in
  /// fault-free simulations.
  std::vector<std::pair<Time, int>> capacity_events;

 private:
  Machine machine_;
  std::string scheduler_name_;
  std::vector<JobRecord> records_;
};

/// FNV-1a (64-bit) fingerprint over every job record of `s`, in JobId
/// order: submit, start, end, nodes and the cancelled flag of each job are
/// folded in, followed by every killed attempt and capacity event (both
/// empty in fault-free simulations, so fault-free fingerprints are
/// unchanged from before fault injection existed). Two schedules
/// fingerprint equal iff they are bit-identical as (per-job) start/end
/// decisions — the check optimization PRs use to prove they changed cost,
/// never decisions, and fault PRs use to prove zero-failure runs are
/// untouched.
std::uint64_t schedule_fingerprint(const Schedule& s);

/// Thrown by validate_schedule. Still a std::logic_error (an invalid
/// schedule is a scheduler/simulator bug), but a distinct type so the eval
/// harness's error taxonomy can file it under `validation` instead of the
/// generic scheduler-contract violations the event loop throws.
class ValidationError : public std::logic_error {
 public:
  explicit ValidationError(const std::string& what) : std::logic_error(what) {}
};

/// Validity constraints of the target machine (paper §2): node capacity is
/// never exceeded at any instant, partitions are exclusive (implied by
/// capacity in the identical-node model), no job starts before submission,
/// every job runs for exactly its runtime (or is cancelled at its
/// estimate), and — since the machine has no time sharing — allocations are
/// contiguous in time.
///
/// Under fault injection (non-empty attempts/capacity_events) the per-job
/// duration check is replaced by a conservation bound — total executed
/// time across all attempts covers at least the job's fault-free lifetime
/// — and the capacity sweep checks usage against the *time-varying*
/// capacity, with releases and capacity steps applied before acquisitions
/// at equal instants (the simulator's own event order).
///
/// Throws sim::ValidationError describing the first violation.
void validate_schedule(const Schedule& s, const workload::Workload& w);

/// Export the executed schedule as an SWF-ready "as executed" trace: one
/// record per job with its *executed* lifetime (end - start) as the
/// runtime, status kCancelled when the job hit its Rule-2 upper limit and
/// kCompleted otherwise, plus one kFailed record per fault-killed attempt
/// (lifetime = elapsed time of the attempt; zero-length attempts are
/// dropped since a workload requires runtime >= 1). This is how killed
/// attempts survive a write_swf/read_swf round trip — they become the
/// status-0 ("failed") records a real archive trace would carry.
workload::Workload as_executed_workload(const Schedule& s,
                                        const workload::Workload& w);

}  // namespace jsched::sim
