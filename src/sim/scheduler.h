// The on-line scheduler contract.
//
// The paper's scheduling system "receives a stream of job submission data
// and produces a valid schedule" (§2) and "may not be aware of any data
// arriving in the future". This interface encodes exactly that information
// boundary:
//
//  * on_submit delivers a job's *submission data* — nodes and the user's
//    estimate; the actual runtime is ground truth owned by the simulator,
//  * on_complete reveals an actual completion, possibly earlier than the
//    estimate implied,
//  * select_starts asks which waiting jobs to start right now,
//  * next_wakeup lets a scheduler holding future reservations fire them at
//    times where no arrival/completion event happens to occur.
#pragma once

#include <string>
#include <vector>

#include "sim/machine.h"
#include "util/time.h"
#include "workload/job.h"

namespace jsched::sim {

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Display name, e.g. "SMART-FFIA+EASY".
  virtual std::string name() const = 0;

  /// Called once before a simulation; drop all state.
  virtual void reset(const Machine& machine) = 0;

  /// A job has been submitted. Submission carries exactly the data an
  /// on-line scheduler may see — the actual runtime is not in the type, so
  /// the information boundary of §2 is enforced structurally (no per-
  /// arrival scrub copy needed).
  virtual void on_submit(const Submission& job, Time now) = 0;

  /// A previously started job has completed (or was cancelled).
  virtual void on_complete(JobId id, Time now) = 0;

  /// The machine's node count changed to `available_nodes` (fault
  /// injection: nodes failed or were repaired). Jobs killed by the change
  /// were already delivered through on_complete; their re-submissions
  /// follow as regular on_submit calls. The default is a no-op — every
  /// scheduler that plans only against the `free_nodes` handed to
  /// select_starts keeps working unmodified; schedulers holding long-range
  /// reservations (conservative backfilling) override it to invalidate
  /// plans that assumed the old capacity. Never called in fault-free
  /// simulations.
  virtual void on_capacity_change(Time now, int available_nodes) {
    (void)now;
    (void)available_nodes;
  }

  /// Fill `starts` with the jobs to start at `now`, in start order
  /// (clearing whatever it held; the buffer is caller-owned so the
  /// simulator's hot loop reuses one allocation across all rounds).
  /// `free_nodes` is the machine capacity not occupied by running jobs
  /// before any of the returned jobs start. The simulator starts them all;
  /// returning a job set that exceeds capacity is a scheduler bug (the
  /// simulator throws).
  virtual void select_starts(Time now, int free_nodes,
                             std::vector<JobId>& starts) = 0;

  /// Earliest future time at which this scheduler wants to be invoked even
  /// if no arrival/completion occurs (e.g. a reservation computed from
  /// estimated completions that actual completions never touch).
  /// kTimeInfinity when no such time exists.
  virtual Time next_wakeup(Time now) const {
    (void)now;
    return kTimeInfinity;
  }

  /// Number of jobs currently waiting (for backlog accounting).
  virtual std::size_t queue_length() const = 0;
};

}  // namespace jsched::sim
