// The target machine model of the evaluation example (paper §3):
// a space-shared MPP with identical nodes, variable partitioning, no time
// sharing, and exclusive access of batch jobs to their partition.
#pragma once

#include <stdexcept>

namespace jsched::sim {

struct Machine {
  /// Number of identical nodes in the batch partition (Institution B: 256;
  /// CTC: 430).
  int nodes = 256;

  /// The machine does not support time sharing (paper §3); kept as an
  /// explicit capability flag so the schedule validator can reject
  /// preemptive schedules on this target while PSRS's *internal* preemptive
  /// plan remains a pure planning artifact.
  bool time_sharing = false;

  void validate() const {
    if (nodes < 1) throw std::invalid_argument("Machine: nodes < 1");
  }
};

}  // namespace jsched::sim
