#include "sim/profile.h"

#include <algorithm>
#include <cassert>
#include <climits>
#include <sstream>
#include <stdexcept>

namespace jsched::sim {

// --- CapacityOverlay --------------------------------------------------------

void CapacityOverlay::build(const std::vector<CapacitySpan>& spans) {
  clear();
  // Sweep over sorted edge events: +nodes at start, -nodes at end. Every
  // edge becomes a breakpoint (even when the running sum does not change),
  // so subtract() can later adjust any span without inserting.
  std::vector<std::pair<Time, int>> edges;
  edges.reserve(2 * spans.size());
  for (const CapacitySpan& s : spans) {
    if (s.start >= s.end || s.nodes == 0) continue;
    edges.emplace_back(s.start, s.nodes);
    if (s.end != kTimeInfinity) edges.emplace_back(s.end, -s.nodes);
  }
  if (edges.empty()) return;
  std::sort(edges.begin(), edges.end());
  t_.reserve(edges.size());
  add_.reserve(edges.size());
  int running = 0;
  for (const auto& [t, delta] : edges) {
    running += delta;
    if (!t_.empty() && t_.back() == t) {
      add_.back() = running;
    } else {
      t_.push_back(t);
      add_.push_back(running);
    }
  }
}

void CapacityOverlay::subtract(Time start, Time end, int nodes) {
  if (start >= end || nodes == 0) return;
  const auto lo_it = std::lower_bound(t_.begin(), t_.end(), start);
  assert(lo_it != t_.end() && *lo_it == start);  // boundary from build()
  const std::size_t lo = static_cast<std::size_t>(lo_it - t_.begin());
  std::size_t hi = t_.size();
  if (end != kTimeInfinity) {
    const auto hi_it = std::lower_bound(t_.begin(), t_.end(), end);
    assert(hi_it != t_.end() && *hi_it == end);
    hi = static_cast<std::size_t>(hi_it - t_.begin());
  }
  for (std::size_t i = lo; i < hi; ++i) {
    add_[i] -= nodes;
    assert(add_[i] >= 0);
  }
}

int CapacityOverlay::at(Time t) const {
  const auto it = std::upper_bound(t_.begin(), t_.end(), t);
  if (it == t_.begin()) return 0;
  return add_[static_cast<std::size_t>(it - t_.begin()) - 1];
}

Profile::Profile(int total_nodes) : total_(total_nodes) {
  if (total_nodes < 1) throw std::invalid_argument("Profile: total_nodes < 1");
  pts_.push_back({Time{0}, total_});
}

std::size_t Profile::lower_bound(Time t) const {
  return static_cast<std::size_t>(
      std::lower_bound(pts_.begin() + static_cast<std::ptrdiff_t>(front_),
                       pts_.end(), t,
                       [](const Breakpoint& b, Time v) { return b.t < v; }) -
      pts_.begin());
}

std::size_t Profile::segment_at(Time t) const {
  const std::size_t i = static_cast<std::size_t>(
      std::upper_bound(pts_.begin() + static_cast<std::ptrdiff_t>(front_),
                       pts_.end(), t,
                       [](Time v, const Breakpoint& b) { return v < b.t; }) -
      pts_.begin());
  assert(i > front_);  // breakpoint at/before any queried time
  return i - 1;
}

int Profile::capacity_at(Time t) const { return pts_[segment_at(t)].free; }

// --- segment tree ----------------------------------------------------------

void Profile::repair_range(std::size_t lo, std::size_t hi) const {
  assert(lo < hi && hi <= leaf_cap_);
  for (std::size_t i = lo; i < hi; ++i) {
    tmin_[leaf_cap_ + i] = tmax_[leaf_cap_ + i] = pts_[i].free;
  }
  std::size_t l = leaf_cap_ + lo;
  std::size_t r = leaf_cap_ + hi - 1;
  while (l > 1) {
    l >>= 1;
    r >>= 1;
    for (std::size_t i = l; i <= r; ++i) {
      tmin_[i] = std::min(tmin_[2 * i], tmin_[2 * i + 1]);
      tmax_[i] = std::max(tmax_[2 * i], tmax_[2 * i + 1]);
    }
  }
}

void Profile::ensure_tree() const {
  if (dirty_from_ == kClean) return;
  const std::size_t n = pts_.size();
  std::size_t cap = leaf_cap_ ? leaf_cap_ : 1;
  while (cap < n) cap <<= 1;
  std::size_t from = dirty_from_;
  if (cap != leaf_cap_) {
    leaf_cap_ = cap;
    tmin_.assign(2 * cap, INT_MAX);
    tmax_.assign(2 * cap, INT_MIN);
    filled_ = 0;
    from = 0;
  }
  from = std::min(from, n);
  // Leaves past the new size (after a shrink) revert to sentinels.
  for (std::size_t i = n; i < filled_; ++i) {
    tmin_[cap + i] = INT_MAX;
    tmax_[cap + i] = INT_MIN;
  }
  const std::size_t touched_end = std::max(filled_, n);
  filled_ = n;
  if (from < touched_end) {
    for (std::size_t i = from; i < n; ++i) {
      tmin_[cap + i] = tmax_[cap + i] = pts_[i].free;
    }
    std::size_t lo = cap + from;
    std::size_t hi = cap + touched_end - 1;
    while (lo > 1) {
      lo >>= 1;
      hi >>= 1;
      for (std::size_t i = lo; i <= hi; ++i) {
        tmin_[i] = std::min(tmin_[2 * i], tmin_[2 * i + 1]);
        tmax_[i] = std::max(tmax_[2 * i], tmax_[2 * i + 1]);
      }
    }
  }
  dirty_from_ = kClean;
}

void Profile::ensure_tree_to(std::size_t hi) const {
  if (dirty_from_ >= hi) return;  // clean (kClean) or already valid there
  const std::size_t n = pts_.size();
  if (leaf_cap_ < n || hi >= n) {
    // Tree must be (re)grown, or the repair reaches the end anyway — the
    // full rebuild also handles shrink sentinels and filled_.
    ensure_tree();
    return;
  }
  // Repair only [dirty_from_, hi): ancestors recomputed from still-stale
  // right siblings remain ancestors of leaves >= hi, so the class
  // invariant holds with dirty_from_ advanced to hi. Bottom-up range
  // queries bounded by hi never read such nodes.
  repair_range(dirty_from_, hi);
  dirty_from_ = hi;
}

std::size_t Profile::first_below(std::size_t from, int nodes) const {
  const std::size_t n = pts_.size();
  if (from >= n) return n;
  std::size_t i = leaf_cap_ + from;
  if (tmin_[i] >= nodes) {
    // Climb right along the tree until a subtree holds a value < nodes.
    while (true) {
      while (i & 1) {
        if (i == 1) return n;  // root: everything to the right exhausted
        i >>= 1;
      }
      ++i;
      if (tmin_[i] < nodes) break;
    }
  }
  while (i < leaf_cap_) {
    i <<= 1;
    if (tmin_[i] >= nodes) ++i;
  }
  const std::size_t idx = i - leaf_cap_;
  return idx < n ? idx : n;
}

std::size_t Profile::first_at_least(std::size_t from, int nodes) const {
  const std::size_t n = pts_.size();
  if (from >= n) return n;
  std::size_t i = leaf_cap_ + from;
  if (tmax_[i] < nodes) {
    while (true) {
      while (i & 1) {
        if (i == 1) return n;
        i >>= 1;
      }
      ++i;
      if (tmax_[i] >= nodes) break;
    }
  }
  while (i < leaf_cap_) {
    i <<= 1;
    if (tmax_[i] < nodes) ++i;
  }
  const std::size_t idx = i - leaf_cap_;
  return idx < n ? idx : n;
}

int Profile::range_min(std::size_t lo, std::size_t hi) const {
  int res = INT_MAX;
  for (std::size_t l = leaf_cap_ + lo, r = leaf_cap_ + hi; l < r;
       l >>= 1, r >>= 1) {
    if (l & 1) res = std::min(res, tmin_[l++]);
    if (r & 1) res = std::min(res, tmin_[--r]);
  }
  return res;
}

// --- queries ----------------------------------------------------------------

bool Profile::fits(Time start, Duration duration, int nodes) const {
  assert(duration > 0);
  const Time end =
      start > kTimeInfinity - duration ? kTimeInfinity : start + duration;
  const std::size_t lo = segment_at(start);
  const std::size_t hi = lower_bound(end);
  // The bottom-up range query only reads nodes entirely inside [lo, hi),
  // so repairing the tree up to hi suffices.
  ensure_tree_to(hi);
  return range_min(lo, hi) >= nodes;
}

Time Profile::earliest_fit(Time from, Duration duration, int nodes) const {
  assert(duration > 0);
  if (nodes > total_) {
    throw std::invalid_argument("Profile::earliest_fit: job wider than machine");
  }
  // The blocking-run descents may inspect any suffix subtree, so the whole
  // tree has to be valid.
  ensure_tree();
  const std::size_t n = pts_.size();

  // Candidate window starts are `from` and the starts of segments with
  // enough free capacity; between candidates, jump over whole blocking
  // runs with one tree descent each.
  std::size_t j = segment_at(from);
  Time candidate = from;
  if (pts_[j].free < nodes) {
    j = first_at_least(j + 1, nodes);
    if (j == n) {
      // Profile never recovers — cannot happen while allocations are
      // finite, because the final segment is full capacity.
      throw std::logic_error("Profile: final segment under capacity");
    }
    candidate = pts_[j].t;
  }
  while (true) {
    const Time end = candidate > kTimeInfinity - duration
                         ? kTimeInfinity
                         : candidate + duration;
    const std::size_t block = first_below(j, nodes);
    if (block == n || pts_[block].t >= end) return candidate;
    j = first_at_least(block + 1, nodes);
    if (j == n) {
      throw std::logic_error("Profile: final segment under capacity");
    }
    candidate = pts_[j].t;
  }
}

Time Profile::earliest_fit_with(const CapacityOverlay& extra, Cursor& cursor,
                                Time from, Duration duration, int nodes,
                                Time stop, std::size_t max_steps) const {
  assert(duration > 0);
  assert(stop >= from);

  // Re-anchor the cursor: resume from its cached segment when it is still
  // talking about this profile at this version and `from` has not moved
  // backwards; otherwise one binary search.
  std::size_t i;
  if (cursor.owner_ == this && cursor.version_ == version_ &&
      cursor.idx_ >= front_ && cursor.idx_ < pts_.size() &&
      pts_[cursor.idx_].t <= from) {
    i = cursor.idx_;
    while (i + 1 < pts_.size() && pts_[i + 1].t <= from) ++i;
  } else {
    i = segment_at(from);
    ++cursor.restarts_;
  }
  cursor.owner_ = this;
  cursor.version_ = version_;
  cursor.idx_ = i;

  const std::size_t n = pts_.size();
  // Overlay position: index of the last overlay breakpoint at or before
  // the walk, or SIZE_MAX before the first.
  std::size_t o = static_cast<std::size_t>(
      std::upper_bound(extra.t_.begin(), extra.t_.end(), from) -
      extra.t_.begin());
  int over = o == 0 ? 0 : extra.add_[o - 1];

  // Standard run-length scan over the merged step function: `run` is the
  // earliest instant since which combined capacity has continuously been
  // >= nodes (kTimeInfinity = no open run).
  int combined = pts_[i].free + over;
  Time run = combined >= nodes ? from : kTimeInfinity;
  std::size_t steps = 0;
  while (true) {
    const Time next_p = i + 1 < n ? pts_[i + 1].t : kTimeInfinity;
    const Time next_o = o < extra.t_.size() ? extra.t_[o] : kTimeInfinity;
    const Time boundary = std::min(next_p, next_o);
    if (run != kTimeInfinity && boundary - run >= duration) return run;
    if (boundary >= stop) {
      // The walk reached the caller-guaranteed fit at `stop`. An open run
      // that started earlier extends through [stop, stop + duration) by
      // that guarantee, so it is the (earlier) answer; otherwise `stop`
      // itself is the earliest fit.
      if (run != kTimeInfinity) return run < stop ? run : stop;
      if (boundary == kTimeInfinity) {
        // Only reachable with stop == kTimeInfinity: the final merged
        // segment extends forever under capacity — impossible while
        // allocations are finite, same invariant as earliest_fit.
        throw std::logic_error("Profile: final segment under capacity");
      }
      return stop;
    }
    if (++steps > max_steps) return kTimeInfinity;  // budget exhausted
    if (boundary == next_p) ++i;
    if (boundary == next_o) over = extra.add_[o++];
    combined = pts_[i].free + over;
    if (combined >= nodes) {
      if (run == kTimeInfinity) run = boundary;
    } else {
      run = kTimeInfinity;
    }
  }
}

bool Profile::capacity_crossed(const CapacityOverlay& extra,
                               const CapacityOverlay& growth, Time from,
                               Time to, int nodes,
                               std::size_t max_steps) const {
  std::size_t steps = 0;
  const std::size_t gn = growth.t_.size();
  for (std::size_t gi = 0; gi < gn; ++gi) {
    if (growth.t_[gi] >= to) break;
    const int g = growth.add_[gi];
    const Time gend = gi + 1 < gn ? growth.t_[gi + 1] : kTimeInfinity;
    if (g <= 0) continue;
    const Time lo = std::max(growth.t_[gi], from);
    const Time hi = std::min(gend, to);
    if (lo >= hi) continue;
    // Merged walk of profile + extra across this growth segment.
    std::size_t i = segment_at(lo);
    std::size_t o = static_cast<std::size_t>(
        std::upper_bound(extra.t_.begin(), extra.t_.end(), lo) -
        extra.t_.begin());
    while (true) {
      const int s = pts_[i].free + (o == 0 ? 0 : extra.add_[o - 1]);
      if (s >= nodes && s - g < nodes) return true;
      const Time next_p = i + 1 < pts_.size() ? pts_[i + 1].t : kTimeInfinity;
      const Time next_o =
          o < extra.t_.size() ? extra.t_[o] : kTimeInfinity;
      const Time boundary = std::min(next_p, next_o);
      if (boundary >= hi) break;
      if (++steps > max_steps) return true;  // unknown — caller re-screens
      if (boundary == next_p) ++i;
      if (boundary == next_o) ++o;
    }
  }
  return false;
}

// --- mutations --------------------------------------------------------------

void Profile::add_over_range(Time start, Time end, int delta) {
  if (start >= end || delta == 0) return;
  ++version_;  // any cursor anchored before this mutation must re-search

  // Materialize breakpoints at the range edges. Structural edits (insert
  // or merge-erase) shift leaf indices and force the lazy suffix repair;
  // pure value updates keep the tree geometry and are repaired in place.
  bool structural = false;
  std::size_t lo = lower_bound(start);
  if (lo == pts_.size() || pts_[lo].t != start) {
    assert(lo > front_);
    pts_.insert(pts_.begin() + static_cast<std::ptrdiff_t>(lo),
                {start, pts_[lo - 1].free});
    structural = true;
  }
  std::size_t hi = pts_.size();
  if (end != kTimeInfinity) {
    hi = lower_bound(end);
    if (hi == pts_.size() || pts_[hi].t != end) {
      assert(hi > front_);
      pts_.insert(pts_.begin() + static_cast<std::ptrdiff_t>(hi),
                  {end, pts_[hi - 1].free});
      structural = true;
    }
  }

  for (std::size_t i = lo; i < hi; ++i) {
    pts_[i].free += delta;
    assert(pts_[i].free >= 0 && pts_[i].free <= total_);
  }

  // A uniform add preserves all differences inside (lo, hi); only the two
  // edges can newly equal their predecessors. Merge them away to keep the
  // representation canonical (erase `hi` first so `lo` stays valid).
  if (hi < pts_.size() && pts_[hi].free == pts_[hi - 1].free) {
    pts_.erase(pts_.begin() + static_cast<std::ptrdiff_t>(hi));
    structural = true;
  }
  if (lo > front_ && pts_[lo].free == pts_[lo - 1].free) {
    pts_.erase(pts_.begin() + static_cast<std::ptrdiff_t>(lo));
    structural = true;
  }

  if (!structural && bulk_depth_ == 0 && leaf_cap_ >= pts_.size()) {
    // Leaf indices did not shift: write the touched leaves and recompute
    // their ancestors — O(touched + log n) — instead of dirtying the whole
    // suffix. Any pending dirtiness elsewhere stays tracked by dirty_from_.
    repair_range(lo, hi);
  } else {
    dirty_from_ = std::min(dirty_from_, lo);
  }
}

void Profile::allocate(Time start, Duration duration, int nodes) {
  assert(duration > 0 && nodes >= 0);
  const Time end =
      start > kTimeInfinity - duration ? kTimeInfinity : start + duration;
  add_over_range(start, end, -nodes);
}

void Profile::release(Time start, Duration duration, int nodes) {
  assert(duration > 0 && nodes >= 0);
  const Time end =
      start > kTimeInfinity - duration ? kTimeInfinity : start + duration;
  add_over_range(start, end, nodes);
}

void Profile::compact(Time now) {
  assert(now >= pts_[front_].t);  // simulation time never flows backwards
  const std::size_t i = segment_at(now);
  if (i == front_) return;  // nothing before `now` to drop: no-op, no churn
  ++version_;
  // Advance the live-range offset instead of splicing the vector: leaf
  // indices stay put, so the segment tree stays valid (it only ever stores
  // `free` values, and queries never look left of a live index).
  front_ = i;
  // Re-key the effective breakpoint at `now` for a tidy front (already
  // there when `now` hit it exactly).
  pts_[front_].t = now;
  // Splice the dead prefix out only once it dominates the storage, making
  // the O(n) erase + full-suffix tree repair amortized O(1) per compact.
  if (front_ >= 64 && 2 * front_ >= pts_.size()) {
    pts_.erase(pts_.begin(), pts_.begin() + static_cast<std::ptrdiff_t>(front_));
    front_ = 0;
    dirty_from_ = 0;
  }
}

std::string Profile::dump() const {
  std::ostringstream os;
  for (std::size_t i = front_; i < pts_.size(); ++i) {
    os << pts_[i].t << ':' << pts_[i].free << ' ';
  }
  return os.str();
}

}  // namespace jsched::sim
