#include "sim/streaming.h"

#include <algorithm>
#include <ctime>
#include <deque>
#include <queue>
#include <stdexcept>
#include <string>
#include <vector>

namespace jsched::sim {
namespace {

/// Thread CPU time in seconds (Linux/glibc).
double cpu_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

/// A scheduled completion. `epoch` snapshots the job's kill counter at
/// start so completions of killed attempts are recognized as stale.
struct StreamCompletion {
  Time t;
  JobId id;
  std::uint32_t epoch;
  bool operator>(const StreamCompletion& o) const noexcept {
    return t != o.t ? t > o.t : id > o.id;
  }
};

/// Per-live-job state: everything the materializing simulator keeps in its
/// O(n) side arrays, scoped to the job's stay in the window.
struct Slot {
  Job job;
  JobRecord rec;
  std::uint32_t epoch = 0;
  Duration rem_life = 0;
  Duration pending_overhead = 0;
  Duration charged_overhead = 0;
  Time start_of = 0;
  bool running = false;
  bool done = false;
};

}  // namespace

StreamStats simulate_stream(const Machine& machine, Scheduler& scheduler,
                            workload::JobSource& source, RecordSink& sink,
                            const StreamOptions& options) {
  machine.validate();
  const bool faults_active = options.faults.active();
  if (faults_active) {
    const fault::FailureTrace& trace = *options.faults.trace;
    if (trace.machine_nodes != machine.nodes) {
      throw std::invalid_argument(
          "simulate: failure trace built for " +
          std::to_string(trace.machine_nodes) + " nodes but the machine has " +
          std::to_string(machine.nodes));
    }
    options.faults.recovery.validate();
  }
  const fault::RecoveryOptions& recovery = options.faults.recovery;
  const bool checkpointing =
      faults_active &&
      recovery.policy == fault::RecoveryPolicy::kCheckpointRestart;

  StreamStats stats;
  double cpu = 0.0;
  auto timed = [&](auto&& fn) {
    if (options.measure_scheduler_cpu) {
      const double t0 = cpu_seconds();
      fn();
      cpu += cpu_seconds() - t0;
    } else {
      fn();
    }
  };

  timed([&] { scheduler.reset(machine); });

  std::priority_queue<StreamCompletion, std::vector<StreamCompletion>,
                      std::greater<>>
      completions;
  // Live window: slots for ids [frontier, frontier + window.size()).
  std::deque<Slot> window;
  JobId frontier = 0;
  std::size_t undone = 0;  // arrived jobs whose completion is still ahead
  int capacity = machine.nodes;
  int free_nodes = capacity;
  std::size_t next_fault = 0;
  std::vector<JobId> active;  // running jobs, for victim selection
  if (faults_active) active.reserve(64);
  Time prev_t = -1;

  // One-job lookahead into the source, validated as it is pulled: the
  // stream must carry the finalized-Workload invariants.
  Job pending;
  bool has_pending = false;
  Time prev_submit = 0;
  JobId expected = 0;  // id the next pulled job must carry
  const auto pull = [&] {
    has_pending = source.next(pending);
    if (!has_pending) return;
    if (pending.id != expected) {
      throw std::invalid_argument(
          "simulate: source emitted job id " + std::to_string(pending.id) +
          " where " + std::to_string(expected) + " was expected (ids must be "
          "dense and in order)");
    }
    if (pending.submit < prev_submit) {
      throw std::invalid_argument("simulate: source emitted job " +
                                  std::to_string(pending.id) +
                                  " with a decreasing submit time");
    }
    if (pending.nodes < 1 || pending.runtime < 1 || pending.estimate < 1) {
      throw std::invalid_argument("simulate: source emitted job " +
                                  std::to_string(pending.id) +
                                  " with invalid fields");
    }
    if (pending.nodes > machine.nodes) {
      throw std::invalid_argument(
          "simulate: workload contains jobs wider than the machine; "
          "trim_to_machine() first");
    }
    prev_submit = pending.submit;
    ++expected;
  };
  pull();

  std::vector<JobId> starts;
  std::vector<JobId> completed;
  std::vector<JobId> resubmit;
  starts.reserve(64);
  completed.reserve(64);

  const auto slot_of = [&](JobId id) -> Slot& { return window[id - frontier]; };

  while (undone > 0 || has_pending) {
    // Cancellation point: one iteration is the abort granularity.
    if (options.cancel != nullptr) options.cancel->check();

    // Purge stale completion entries so the next-event time is real. An id
    // below the frontier is a dead epoch of a job that has since finished.
    while (!completions.empty()) {
      const StreamCompletion& top = completions.top();
      if (top.id >= frontier && top.epoch == slot_of(top.id).epoch) break;
      completions.pop();
    }
    Time t = kTimeInfinity;
    if (has_pending) t = pending.submit;
    if (!completions.empty()) t = std::min(t, completions.top().t);
    if (faults_active) {
      const auto& events = options.faults.trace->events;
      if (next_fault < events.size()) t = std::min(t, events[next_fault].t);
    }
    const Time wake = scheduler.next_wakeup(prev_t);
    if (wake > prev_t && wake < t) t = wake;
    if (t == kTimeInfinity) {
      throw std::logic_error("simulate: no events left but " +
                             std::to_string(undone) + " jobs pending (" +
                             scheduler.name() + " starved them)");
    }
    prev_t = t;

    // (1) completions at t — before fault events, so a job ending exactly
    // when its nodes fail has completed, not been killed.
    completed.clear();
    while (!completions.empty() && completions.top().t == t) {
      const StreamCompletion c = completions.top();
      completions.pop();
      if (c.id < frontier) continue;  // stale: attempt of a finished job
      Slot& s = slot_of(c.id);
      if (c.epoch != s.epoch) continue;  // stale: attempt was killed
      free_nodes += s.job.nodes;
      s.running = false;
      s.done = true;
      --undone;
      if (faults_active) {
        active.erase(std::find(active.begin(), active.end(), c.id));
      }
      completed.push_back(c.id);
    }
    if (!completed.empty()) {
      timed([&] {
        for (JobId id : completed) scheduler.on_complete(id, t);
      });
    }

    // (2) fault events at t. A failure first removes capacity; while usage
    // exceeds the surviving capacity, running jobs are killed — latest
    // start first (they lose the least work), larger id on ties.
    resubmit.clear();
    bool capacity_changed = false;
    if (faults_active) {
      const auto& events = options.faults.trace->events;
      while (next_fault < events.size() && events[next_fault].t == t) {
        capacity += events[next_fault].delta;
        free_nodes += events[next_fault].delta;
        ++next_fault;
        capacity_changed = true;
        while (free_nodes < 0) {
          std::size_t vi = 0;
          for (std::size_t k = 1; k < active.size(); ++k) {
            const JobId a = active[k];
            const JobId b = active[vi];
            if (slot_of(a).start_of > slot_of(b).start_of ||
                (slot_of(a).start_of == slot_of(b).start_of && a > b)) {
              vi = k;
            }
          }
          const JobId victim = active[vi];
          Slot& s = slot_of(victim);
          free_nodes += s.job.nodes;
          s.running = false;
          ++s.epoch;
          active.erase(active.begin() + static_cast<std::ptrdiff_t>(vi));
          const Duration elapsed = t - s.start_of;
          // Progress excludes the attempt's restart overhead; checkpoints
          // save whole intervals of progress only.
          const Duration overhead_done = std::min(elapsed, s.charged_overhead);
          const Duration progress = elapsed - overhead_done;
          const Duration saved =
              checkpointing ? (progress / recovery.checkpoint_interval) *
                                  recovery.checkpoint_interval
                            : 0;
          s.rem_life -= saved;
          s.pending_overhead = checkpointing ? recovery.restart_overhead : 0;
          sink.on_attempt({victim, s.start_of, t, s.job.nodes, saved});
          timed([&] { scheduler.on_complete(victim, t); });
          resubmit.push_back(victim);
        }
        sink.on_capacity_event(t, capacity);
      }
    }
    if (capacity_changed) {
      timed([&] { scheduler.on_capacity_change(t, capacity); });
    }

    // (3) fresh arrivals at t.
    while (has_pending && pending.submit == t) {
      window.emplace_back();
      Slot& s = window.back();
      s.job = pending;
      s.rem_life = std::min(pending.runtime, pending.estimate);
      ++undone;
      stats.peak_live_jobs = std::max(stats.peak_live_jobs, window.size());
      timed([&] { scheduler.on_submit(Submission(s.job), t); });
      pull();
    }

    // (4) re-submissions of the jobs killed at t, with an estimate that
    // covers restart overhead + remaining work + the user's original slack.
    for (JobId id : resubmit) {
      const Slot& s = slot_of(id);
      Job r = s.job;
      const Duration headroom = r.estimate - std::min(r.runtime, r.estimate);
      r.submit = t;
      r.estimate = s.pending_overhead + s.rem_life + headroom;
      timed([&] { scheduler.on_submit(Submission(r), t); });
    }

    // (5) start decisions.
    while (true) {
      timed([&] { scheduler.select_starts(t, free_nodes, starts); });
      if (starts.empty()) break;
      for (JobId id : starts) {
        if (id >= frontier + window.size()) {
          throw std::logic_error("simulate: scheduler started unknown job");
        }
        if (id < frontier) {
          throw std::logic_error("simulate: scheduler started job " +
                                 std::to_string(id) + " twice");
        }
        Slot& s = slot_of(id);
        if (s.running || s.done) {
          throw std::logic_error("simulate: scheduler started job " +
                                 std::to_string(id) + " twice");
        }
        if (s.job.nodes > free_nodes) {
          throw std::logic_error(
              "simulate: scheduler oversubscribed the machine with job " +
              std::to_string(id));
        }
        free_nodes -= s.job.nodes;
        s.running = true;
        s.start_of = t;
        if (faults_active) active.push_back(id);
        s.charged_overhead = s.pending_overhead;
        s.pending_overhead = 0;
        const Duration lifetime = s.charged_overhead + s.rem_life;
        s.rec.submit = s.job.submit;
        s.rec.start = t;
        s.rec.nodes = s.job.nodes;
        // Rule 2: a job whose true runtime exceeds its original estimate
        // runs to its (remaining) limit and is recorded as cancelled.
        s.rec.end = t + lifetime;
        s.rec.cancelled = s.job.runtime > s.job.estimate;
        completions.push({t + lifetime, id, s.epoch});
      }
    }

    stats.max_queue_length =
        std::max(stats.max_queue_length, scheduler.queue_length());

    // Fold finished records into the sink in JobId order and free their
    // slots — the frontier advance that keeps the window bounded.
    while (!window.empty() && window.front().done) {
      const Slot& s = window.front();
      sink.on_record(frontier, s.rec, s.job);
      stats.makespan = std::max(stats.makespan, s.rec.end);
      ++stats.jobs;
      window.pop_front();
      ++frontier;
    }
  }

  stats.scheduler_cpu_seconds = cpu;
  return stats;
}

}  // namespace jsched::sim
