// Future node-availability profile.
//
// Backfilling (paper §5.2) plans against *estimated* completion times: the
// profile is a piecewise-constant map from time to free nodes, updated as
// jobs are allocated (running jobs until their estimated end, reservations
// for queued jobs) and as capacity is returned early when a job finishes
// before its estimate.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/time.h"

namespace jsched::sim {

/// One hypothetical capacity span for a CapacityOverlay: `nodes` extra free
/// nodes over [start, end).
struct CapacitySpan {
  Time start;
  Time end;
  int nodes;
};

/// Additive step function of *extra* free capacity, laid over a Profile in
/// what-if queries (Profile::earliest_fit_with). The canonical use is
/// conservative-backfill compression screening: the overlay holds the
/// allocations of the reservations that a scratch replan *would* lift, so
/// `profile + overlay` is exactly the profile the scratch procedure would
/// query — without mutating the profile at all.
///
/// Built once from a batch of spans (O(n log n)), then spans are retired
/// one at a time with subtract() as the screen walks the queue. subtract()
/// never inserts breakpoints — every span boundary was materialized by
/// build() — so the time vector is immutable between builds and a retire
/// is two binary searches plus a linear range add.
class CapacityOverlay {
 public:
  /// Replace the overlay with the sum of `spans` (empty spans are ignored).
  void build(const std::vector<CapacitySpan>& spans);

  /// Remove one span previously included in build(). Precondition: the
  /// span was part of the built batch (its boundaries exist and its
  /// capacity is still present); asserted in debug builds.
  void subtract(Time start, Time end, int nodes);

  void clear() noexcept {
    t_.clear();
    add_.clear();
  }
  bool empty() const noexcept { return t_.empty(); }
  std::size_t breakpoints() const noexcept { return t_.size(); }

  /// Extra free nodes at time `t` (0 before the first breakpoint).
  int at(Time t) const;

 private:
  friend class Profile;
  // Parallel arrays: add_[i] applies on [t_[i], t_[i+1]), and 0 outside.
  // Adjacent equal values are not merged — subtract() relies on stable
  // indices, and the merged walk in earliest_fit_with tolerates redundant
  // breakpoints.
  std::vector<Time> t_;
  std::vector<int> add_;
};

/// Piecewise-constant free-capacity timeline.
///
/// Stored as a flat sorted vector of {time, free} breakpoints, each valid
/// from its time until the next breakpoint; the final breakpoint extends to
/// infinity. There is always a breakpoint at or before any queried time
/// (the initial one sits at time 0, or at the `now` passed to compact()).
/// The vector may carry a dead prefix of [0, front_) retired breakpoints:
/// compact() advances the offset in O(1) and the storage is physically
/// erased only once the dead prefix dominates (amortized O(1) per call).
///
/// The breakpoints are augmented with an implicit segment tree over the
/// free-capacity values (range-min for fits(), plus range-max to jump
/// between candidate windows), so
///   * fits() is one range-min query                       — O(log n),
///   * earliest_fit() is a descent over candidate windows  — O(log n) per
///     window inspected, and each under-capacity run is inspected at most
///     once per query (no restart scans over breakpoints),
///   * allocate()/release() that only modify breakpoint values in place
///     (no insert/erase, the steady-state case) repair the tree over the
///     touched leaf span immediately — O(touched + log n) — and leave any
///     pending suffix dirtiness untouched,
///   * structural allocate()/release() (edge inserted or merged away) mark
///     the tree dirty from the first shifted leaf; queries repair lazily —
///     fits() only up to its own right boundary, earliest_fit() fully
///     (its descents may inspect any suffix node).
///
/// A BulkUpdate scope defers even the in-place repairs, so a burst of
/// mutations (a replan lifting k reservations) pays one combined repair at
/// the first query after the burst instead of k interleaved ones.
///
/// The adjacent-equal-value merge rule keeps the representation canonical:
/// two profiles that agree as step functions store identical breakpoints.
class Profile {
 public:
  explicit Profile(int total_nodes);

  int total_nodes() const noexcept { return total_; }

  /// Free nodes at time t.
  int capacity_at(Time t) const;

  /// True if `nodes` are free throughout [start, start + duration).
  bool fits(Time start, Duration duration, int nodes) const;

  /// Earliest t >= from such that `nodes` are free throughout
  /// [t, t + duration). Always exists (the profile eventually returns to
  /// full capacity).
  Time earliest_fit(Time from, Duration duration, int nodes) const;

  /// Resumable scan state for batched earliest-fit queries. A cursor
  /// remembers which segment contained the previous query's `from`, so a
  /// run of queries anchored at the same (or advancing) instant skips the
  /// per-query binary search and resumes walking the breakpoint vector
  /// where it stood. The cursor revalidates itself against the owning
  /// profile and its mutation counter: any profile mutation (or a different
  /// profile) forces one fresh binary search, counted in restarts().
  /// Stale cursors are therefore always safe, never wrong.
  class Cursor {
   public:
    /// Queries that had to re-anchor with a binary search instead of
    /// resuming (first use, profile mutated, or `from` moved backwards).
    std::uint64_t restarts() const noexcept { return restarts_; }

   private:
    friend class Profile;
    const Profile* owner_ = nullptr;
    std::uint64_t version_ = 0;
    std::size_t idx_ = 0;  // segment index of the previous query's `from`
    std::uint64_t restarts_ = 0;
  };

  /// Earliest fit of (duration, nodes) in the pointwise sum
  /// `*this + extra`, scanning merged breakpoints linearly from `from`,
  /// clamped at `stop`. Precondition: `stop` is itself a known fit — the
  /// caller guarantees `nodes` free throughout [stop, stop + duration) in
  /// the sum (compression screening satisfies this trivially: the
  /// reservation under test is allocated in the profile and lifted by the
  /// overlay, so its own window has >= nodes free). Under that guarantee
  /// the result is exact: the true earliest fit if it starts before
  /// `stop`, else `stop` — and the walk never advances past `stop`, which
  /// is what makes screening cheap when reservations are close to now.
  /// Unlike earliest_fit() this never touches the segment tree (and so
  /// never pays a deferred rebuild). Returns kTimeInfinity when
  /// `max_steps` merged breakpoints were consumed first ("unknown —
  /// caller falls back"); a real fit is always finite.
  Time earliest_fit_with(const CapacityOverlay& extra, Cursor& cursor,
                         Time from, Duration duration, int nodes, Time stop,
                         std::size_t max_steps) const;

  /// Certificate revalidation: true iff the capacity described by
  /// `growth` could have newly unblocked a width-`nodes` window somewhere
  /// in [from, to) — i.e. some instant u with growth(u) > 0 has combined
  /// capacity (*this + extra) at least `nodes` now but not before the
  /// growth: combined(u) - growth(u) < nodes <= combined(u). A reservation
  /// screened unmoved while capacity could only shrink stays unmoved
  /// unless such a crossing exists (every previously-blocked window keeps
  /// its blocker), so a false result extends the previous screen's
  /// verdict exactly; a true result means "maybe" and the caller must
  /// re-screen. Only the growth region is walked — the cost is
  /// proportional to the capacity returned since the last replan, not to
  /// the replan window. Returns true when `max_steps` breakpoints were
  /// consumed first (unknown — caller falls back).
  bool capacity_crossed(const CapacityOverlay& extra,
                        const CapacityOverlay& growth, Time from, Time to,
                        int nodes, std::size_t max_steps) const;

  /// Subtract `nodes` over [start, start + duration). Precondition: fits().
  void allocate(Time start, Duration duration, int nodes);

  /// Add `nodes` back over [start, start + duration). Inverse of allocate;
  /// also used to return capacity early when a job beats its estimate.
  void release(Time start, Duration duration, int nodes);

  /// Drop breakpoints strictly before `now` (keeping the value in effect
  /// at `now`). Call as simulation time advances to keep operations
  /// O(future). A no-op when `now` is inside (or at the start of) the
  /// first segment; otherwise O(1) amortized — the dead prefix is only
  /// spliced out of storage once it dominates. Precondition (asserted):
  /// `now` is not earlier than the first breakpoint — time never flows
  /// backwards in the simulator.
  void compact(Time now);

  /// Scoped batch-mutation mode: while at least one BulkUpdate is alive,
  /// allocate()/release() defer all segment-tree maintenance (queries are
  /// still valid — they repair on demand). Open one around a burst of
  /// mutations with no interleaved queries, e.g. a replan lifting every
  /// reservation, so the burst pays one combined repair at the next query
  /// instead of one per mutation. Mutations and queries remain legal (and
  /// byte-identical in effect) inside the scope; only their cost changes.
  class BulkUpdate {
   public:
    explicit BulkUpdate(Profile& p) noexcept : p_(&p) { ++p.bulk_depth_; }
    ~BulkUpdate() { --p_->bulk_depth_; }
    BulkUpdate(const BulkUpdate&) = delete;
    BulkUpdate& operator=(const BulkUpdate&) = delete;

   private:
    Profile* p_;
  };

  /// Number of stored (live) breakpoints (for tests/benchmarks).
  std::size_t breakpoints() const noexcept { return pts_.size() - front_; }

  /// Debug rendering "t0:c0 t1:c1 ...".
  std::string dump() const;

 private:
  struct Breakpoint {
    Time t;
    int free;
  };

  void add_over_range(Time start, Time end, int delta);

  /// Index of the segment containing t (pts_[i].t <= t < pts_[i+1].t).
  std::size_t segment_at(Time t) const;

  /// First index with pts_[i].t >= t (== pts_.size() when none), searching
  /// the live range [front_, size).
  std::size_t lower_bound(Time t) const;

  // --- implicit segment tree over pts_[i].free -------------------------
  // Leaves [leaf_cap_, leaf_cap_ + n) mirror the physical pts_ array
  // (dead-prefix leaves are never consulted: every query starts at a live
  // index and only ever moves right), padded with sentinels; internal
  // node i covers children 2i and 2i+1.
  //
  // Invariant: every tree node that is not an ancestor of a leaf in
  // [dirty_from_, max(filled_, n)) agrees with pts_. In-place mutations
  // preserve it by repairing their touched span immediately; structural
  // mutations preserve it by lowering dirty_from_ to the first shifted
  // leaf. ensure_tree() restores it everywhere; ensure_tree_to(hi)
  // restores it for [0, hi) and advances dirty_from_ to hi, which is
  // enough for bottom-up range queries whose nodes lie entirely inside
  // [0, hi).
  void ensure_tree() const;
  void ensure_tree_to(std::size_t hi) const;
  /// Write leaves [lo, hi) from pts_ and recompute their ancestors.
  void repair_range(std::size_t lo, std::size_t hi) const;
  /// First index >= from with free < nodes (pts_.size() when none).
  std::size_t first_below(std::size_t from, int nodes) const;
  /// First index >= from with free >= nodes (pts_.size() when none).
  std::size_t first_at_least(std::size_t from, int nodes) const;
  /// Min free over segment indices [lo, hi).
  int range_min(std::size_t lo, std::size_t hi) const;

  static constexpr std::size_t kClean = static_cast<std::size_t>(-1);

  int total_;
  int bulk_depth_ = 0;
  std::vector<Breakpoint> pts_;
  std::size_t front_ = 0;  // first live breakpoint (dead prefix before it)
  // Bumped on every mutation that can move or revalue breakpoints
  // (allocate/release/compact); lets a Cursor detect that its cached
  // segment index may no longer be meaningful.
  std::uint64_t version_ = 1;
  mutable std::vector<int> tmin_, tmax_;
  mutable std::size_t leaf_cap_ = 0;
  mutable std::size_t filled_ = 0;      // leaves holding real values
  mutable std::size_t dirty_from_ = 0;  // first stale leaf; kClean if none
};

}  // namespace jsched::sim
