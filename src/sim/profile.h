// Future node-availability profile.
//
// Backfilling (paper §5.2) plans against *estimated* completion times: the
// profile is a piecewise-constant map from time to free nodes, updated as
// jobs are allocated (running jobs until their estimated end, reservations
// for queued jobs) and as capacity is returned early when a job finishes
// before its estimate.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/time.h"

namespace jsched::sim {

/// Piecewise-constant free-capacity timeline.
///
/// Stored as a flat sorted vector of {time, free} breakpoints, each valid
/// from its time until the next breakpoint; the final breakpoint extends to
/// infinity. There is always a breakpoint at or before any queried time
/// (the initial one sits at time 0, or at the `now` passed to compact()).
/// The vector may carry a dead prefix of [0, front_) retired breakpoints:
/// compact() advances the offset in O(1) and the storage is physically
/// erased only once the dead prefix dominates (amortized O(1) per call).
///
/// The breakpoints are augmented with an implicit segment tree over the
/// free-capacity values (range-min for fits(), plus range-max to jump
/// between candidate windows), so
///   * fits() is one range-min query                       — O(log n),
///   * earliest_fit() is a descent over candidate windows  — O(log n) per
///     window inspected, and each under-capacity run is inspected at most
///     once per query (no restart scans over breakpoints),
///   * allocate()/release() that only modify breakpoint values in place
///     (no insert/erase, the steady-state case) repair the tree over the
///     touched leaf span immediately — O(touched + log n) — and leave any
///     pending suffix dirtiness untouched,
///   * structural allocate()/release() (edge inserted or merged away) mark
///     the tree dirty from the first shifted leaf; queries repair lazily —
///     fits() only up to its own right boundary, earliest_fit() fully
///     (its descents may inspect any suffix node).
///
/// A BulkUpdate scope defers even the in-place repairs, so a burst of
/// mutations (a replan lifting k reservations) pays one combined repair at
/// the first query after the burst instead of k interleaved ones.
///
/// The adjacent-equal-value merge rule keeps the representation canonical:
/// two profiles that agree as step functions store identical breakpoints.
class Profile {
 public:
  explicit Profile(int total_nodes);

  int total_nodes() const noexcept { return total_; }

  /// Free nodes at time t.
  int capacity_at(Time t) const;

  /// True if `nodes` are free throughout [start, start + duration).
  bool fits(Time start, Duration duration, int nodes) const;

  /// Earliest t >= from such that `nodes` are free throughout
  /// [t, t + duration). Always exists (the profile eventually returns to
  /// full capacity).
  Time earliest_fit(Time from, Duration duration, int nodes) const;

  /// Subtract `nodes` over [start, start + duration). Precondition: fits().
  void allocate(Time start, Duration duration, int nodes);

  /// Add `nodes` back over [start, start + duration). Inverse of allocate;
  /// also used to return capacity early when a job beats its estimate.
  void release(Time start, Duration duration, int nodes);

  /// Drop breakpoints strictly before `now` (keeping the value in effect
  /// at `now`). Call as simulation time advances to keep operations
  /// O(future). A no-op when `now` is inside (or at the start of) the
  /// first segment; otherwise O(1) amortized — the dead prefix is only
  /// spliced out of storage once it dominates. Precondition (asserted):
  /// `now` is not earlier than the first breakpoint — time never flows
  /// backwards in the simulator.
  void compact(Time now);

  /// Scoped batch-mutation mode: while at least one BulkUpdate is alive,
  /// allocate()/release() defer all segment-tree maintenance (queries are
  /// still valid — they repair on demand). Open one around a burst of
  /// mutations with no interleaved queries, e.g. a replan lifting every
  /// reservation, so the burst pays one combined repair at the next query
  /// instead of one per mutation. Mutations and queries remain legal (and
  /// byte-identical in effect) inside the scope; only their cost changes.
  class BulkUpdate {
   public:
    explicit BulkUpdate(Profile& p) noexcept : p_(&p) { ++p.bulk_depth_; }
    ~BulkUpdate() { --p_->bulk_depth_; }
    BulkUpdate(const BulkUpdate&) = delete;
    BulkUpdate& operator=(const BulkUpdate&) = delete;

   private:
    Profile* p_;
  };

  /// Number of stored (live) breakpoints (for tests/benchmarks).
  std::size_t breakpoints() const noexcept { return pts_.size() - front_; }

  /// Debug rendering "t0:c0 t1:c1 ...".
  std::string dump() const;

 private:
  struct Breakpoint {
    Time t;
    int free;
  };

  void add_over_range(Time start, Time end, int delta);

  /// Index of the segment containing t (pts_[i].t <= t < pts_[i+1].t).
  std::size_t segment_at(Time t) const;

  /// First index with pts_[i].t >= t (== pts_.size() when none), searching
  /// the live range [front_, size).
  std::size_t lower_bound(Time t) const;

  // --- implicit segment tree over pts_[i].free -------------------------
  // Leaves [leaf_cap_, leaf_cap_ + n) mirror the physical pts_ array
  // (dead-prefix leaves are never consulted: every query starts at a live
  // index and only ever moves right), padded with sentinels; internal
  // node i covers children 2i and 2i+1.
  //
  // Invariant: every tree node that is not an ancestor of a leaf in
  // [dirty_from_, max(filled_, n)) agrees with pts_. In-place mutations
  // preserve it by repairing their touched span immediately; structural
  // mutations preserve it by lowering dirty_from_ to the first shifted
  // leaf. ensure_tree() restores it everywhere; ensure_tree_to(hi)
  // restores it for [0, hi) and advances dirty_from_ to hi, which is
  // enough for bottom-up range queries whose nodes lie entirely inside
  // [0, hi).
  void ensure_tree() const;
  void ensure_tree_to(std::size_t hi) const;
  /// Write leaves [lo, hi) from pts_ and recompute their ancestors.
  void repair_range(std::size_t lo, std::size_t hi) const;
  /// First index >= from with free < nodes (pts_.size() when none).
  std::size_t first_below(std::size_t from, int nodes) const;
  /// First index >= from with free >= nodes (pts_.size() when none).
  std::size_t first_at_least(std::size_t from, int nodes) const;
  /// Min free over segment indices [lo, hi).
  int range_min(std::size_t lo, std::size_t hi) const;

  static constexpr std::size_t kClean = static_cast<std::size_t>(-1);

  int total_;
  int bulk_depth_ = 0;
  std::vector<Breakpoint> pts_;
  std::size_t front_ = 0;  // first live breakpoint (dead prefix before it)
  mutable std::vector<int> tmin_, tmax_;
  mutable std::size_t leaf_cap_ = 0;
  mutable std::size_t filled_ = 0;      // leaves holding real values
  mutable std::size_t dirty_from_ = 0;  // first stale leaf; kClean if none
};

}  // namespace jsched::sim
