// Future node-availability profile.
//
// Backfilling (paper §5.2) plans against *estimated* completion times: the
// profile is a piecewise-constant map from time to free nodes, updated as
// jobs are allocated (running jobs until their estimated end, reservations
// for queued jobs) and as capacity is returned early when a job finishes
// before its estimate.
#pragma once

#include <cstddef>
#include <map>
#include <string>

#include "util/time.h"

namespace jsched::sim {

/// Piecewise-constant free-capacity timeline.
///
/// Stored as an ordered map time -> free nodes valid from that time until
/// the next entry; the final entry extends to infinity. There is always an
/// entry at or before any queried time (the initial entry sits at time 0,
/// or at the `horizon_start` passed to compact()).
class Profile {
 public:
  explicit Profile(int total_nodes);

  int total_nodes() const noexcept { return total_; }

  /// Free nodes at time t.
  int capacity_at(Time t) const;

  /// True if `nodes` are free throughout [start, start + duration).
  bool fits(Time start, Duration duration, int nodes) const;

  /// Earliest t >= from such that `nodes` are free throughout
  /// [t, t + duration). Always exists (the profile eventually returns to
  /// full capacity).
  Time earliest_fit(Time from, Duration duration, int nodes) const;

  /// Subtract `nodes` over [start, start + duration). Precondition: fits().
  void allocate(Time start, Duration duration, int nodes);

  /// Add `nodes` back over [start, start + duration). Inverse of allocate;
  /// also used to return capacity early when a job beats its estimate.
  void release(Time start, Duration duration, int nodes);

  /// Drop entries strictly before `now` (keeping the value in effect at
  /// `now`). Call as simulation time advances to keep operations O(future).
  void compact(Time now);

  /// Number of stored breakpoints (for tests/benchmarks).
  std::size_t breakpoints() const noexcept { return cap_.size(); }

  /// Debug rendering "t0:c0 t1:c1 ...".
  std::string dump() const;

 private:
  void add_over_range(Time start, Time end, int delta);
  std::map<Time, int>::const_iterator at(Time t) const;

  int total_;
  std::map<Time, int> cap_;
};

}  // namespace jsched::sim
