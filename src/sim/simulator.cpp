#include "sim/simulator.h"

#include <algorithm>
#include <ctime>
#include <queue>
#include <stdexcept>
#include <vector>

namespace jsched::sim {
namespace {

/// Thread CPU time in seconds (Linux/glibc).
double cpu_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

struct Completion {
  Time t;
  JobId id;
  bool operator>(const Completion& o) const noexcept {
    return t != o.t ? t > o.t : id > o.id;
  }
};

}  // namespace

Schedule simulate(const Machine& machine, Scheduler& scheduler,
                  const workload::Workload& workload,
                  const SimOptions& options) {
  machine.validate();
  if (workload.max_nodes() > machine.nodes) {
    throw std::invalid_argument(
        "simulate: workload contains jobs wider than the machine; "
        "trim_to_machine() first");
  }

  Schedule schedule(machine, workload.size(), scheduler.name());
  if (options.record_backlog) {
    // One sample per event; arrivals + completions bound the event count
    // (wakeup-only events coalesce into these in practice).
    schedule.backlog.reserve(2 * workload.size() + 1);
  }

  double cpu = 0.0;
  auto timed = [&](auto&& fn) {
    if (options.measure_scheduler_cpu) {
      const double t0 = cpu_seconds();
      fn();
      cpu += cpu_seconds() - t0;
    } else {
      fn();
    }
  };

  timed([&] { scheduler.reset(machine); });

  std::priority_queue<Completion, std::vector<Completion>, std::greater<>>
      completions;
  std::size_t next_arrival = 0;
  int free_nodes = machine.nodes;
  std::vector<char> submitted(workload.size(), 0);
  std::vector<char> running(workload.size(), 0);
  std::vector<char> done(workload.size(), 0);
  std::size_t remaining = workload.size();
  Time prev_t = -1;

  // Reused buffers: the event loop itself performs no per-event heap
  // allocations (schedulers fill `starts` in place).
  std::vector<JobId> starts;
  std::vector<JobId> completed;
  starts.reserve(64);
  completed.reserve(64);

  while (remaining > 0) {
    // Next event time: arrival, completion, or scheduler wakeup.
    Time t = kTimeInfinity;
    if (next_arrival < workload.size()) {
      t = workload[next_arrival].submit;
    }
    if (!completions.empty()) t = std::min(t, completions.top().t);
    // Honor a scheduler wakeup that strictly advances time (stale wakeups
    // are ignored so a buggy scheduler cannot stall the clock).
    const Time wake = scheduler.next_wakeup(prev_t);
    if (wake > prev_t && wake < t) t = wake;
    if (t == kTimeInfinity) {
      throw std::logic_error("simulate: no events left but " +
                             std::to_string(remaining) + " jobs pending (" +
                             scheduler.name() + " starved them)");
    }
    prev_t = t;

    // Deliver all completions at t in one batch (release first: a node
    // freed at t is available to a job starting at t). Draining the heap
    // before notifying keeps delivery order identical to one-at-a-time
    // draining while paying the CPU-clock reads once per timestamp.
    completed.clear();
    while (!completions.empty() && completions.top().t == t) {
      const Completion c = completions.top();
      completions.pop();
      free_nodes += workload.job(c.id).nodes;
      running[c.id] = 0;
      done[c.id] = 1;
      --remaining;
      completed.push_back(c.id);
    }
    if (!completed.empty()) {
      timed([&] {
        for (JobId id : completed) scheduler.on_complete(id, t);
      });
    }

    // Deliver all arrivals at t. Submission is the runtime-free slice of
    // the job, so schedulers see submission data only (on-line model)
    // without a full Job copy per arrival.
    while (next_arrival < workload.size() &&
           workload[next_arrival].submit == t) {
      const Job& arrived = workload[next_arrival];
      submitted[arrived.id] = 1;
      ++next_arrival;
      timed([&] { scheduler.on_submit(arrived, t); });
    }

    // Ask for start decisions until the scheduler has none at this time.
    while (true) {
      timed([&] { scheduler.select_starts(t, free_nodes, starts); });
      if (starts.empty()) break;
      for (JobId id : starts) {
        if (id >= workload.size() || !submitted[id]) {
          throw std::logic_error("simulate: scheduler started unknown job");
        }
        if (running[id] || done[id]) {
          throw std::logic_error("simulate: scheduler started job " +
                                 std::to_string(id) + " twice");
        }
        const Job& j = workload.job(id);
        if (j.nodes > free_nodes) {
          throw std::logic_error(
              "simulate: scheduler oversubscribed the machine with job " +
              std::to_string(id));
        }
        free_nodes -= j.nodes;
        running[id] = 1;
        schedule.record_start(id, j.submit, t, j.nodes);
        // Rule 2: jobs exceeding their upper limit are cancelled there.
        const bool cancelled = j.runtime > j.estimate;
        const Duration lifetime = cancelled ? j.estimate : j.runtime;
        schedule.record_end(id, t + lifetime, cancelled);
        completions.push({t + lifetime, id});
      }
    }

    schedule.max_queue_length =
        std::max(schedule.max_queue_length, scheduler.queue_length());
    if (options.record_backlog) {
      if (!schedule.backlog.empty() && schedule.backlog.back().first == t) {
        schedule.backlog.back().second = scheduler.queue_length();
      } else {
        schedule.backlog.emplace_back(t, scheduler.queue_length());
      }
    }
  }

  schedule.scheduler_cpu_seconds = cpu;
  if (options.validate) validate_schedule(schedule, workload);
  return schedule;
}

}  // namespace jsched::sim
