#include "sim/simulator.h"

#include <algorithm>
#include <ctime>
#include <queue>
#include <stdexcept>
#include <vector>

namespace jsched::sim {
namespace {

/// Thread CPU time in seconds (Linux/glibc).
double cpu_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

struct Completion {
  Time t;
  JobId id;
  bool operator>(const Completion& o) const noexcept {
    return t != o.t ? t > o.t : id > o.id;
  }
};

/// The original fault-free event loop, kept as its own function so the
/// zero-failure path stays bit-identical (and pays nothing) regardless of
/// fault support.
Schedule simulate_basic(const Machine& machine, Scheduler& scheduler,
                        const workload::Workload& workload,
                        const SimOptions& options) {
  Schedule schedule(machine, workload.size(), scheduler.name());
  if (options.record_backlog) {
    // One sample per event; arrivals + completions bound the event count
    // (wakeup-only events coalesce into these in practice).
    schedule.backlog.reserve(2 * workload.size() + 1);
  }

  double cpu = 0.0;
  auto timed = [&](auto&& fn) {
    if (options.measure_scheduler_cpu) {
      const double t0 = cpu_seconds();
      fn();
      cpu += cpu_seconds() - t0;
    } else {
      fn();
    }
  };

  timed([&] { scheduler.reset(machine); });

  std::priority_queue<Completion, std::vector<Completion>, std::greater<>>
      completions;
  std::size_t next_arrival = 0;
  int free_nodes = machine.nodes;
  std::vector<char> submitted(workload.size(), 0);
  std::vector<char> running(workload.size(), 0);
  std::vector<char> done(workload.size(), 0);
  std::size_t remaining = workload.size();
  Time prev_t = -1;

  // Reused buffers: the event loop itself performs no per-event heap
  // allocations (schedulers fill `starts` in place).
  std::vector<JobId> starts;
  std::vector<JobId> completed;
  starts.reserve(64);
  completed.reserve(64);

  while (remaining > 0) {
    // Cancellation point: one iteration is the abort granularity.
    if (options.cancel != nullptr) options.cancel->check();

    // Next event time: arrival, completion, or scheduler wakeup.
    Time t = kTimeInfinity;
    if (next_arrival < workload.size()) {
      t = workload[next_arrival].submit;
    }
    if (!completions.empty()) t = std::min(t, completions.top().t);
    // Honor a scheduler wakeup that strictly advances time (stale wakeups
    // are ignored so a buggy scheduler cannot stall the clock).
    const Time wake = scheduler.next_wakeup(prev_t);
    if (wake > prev_t && wake < t) t = wake;
    if (t == kTimeInfinity) {
      throw std::logic_error("simulate: no events left but " +
                             std::to_string(remaining) + " jobs pending (" +
                             scheduler.name() + " starved them)");
    }
    prev_t = t;

    // Deliver all completions at t in one batch (release first: a node
    // freed at t is available to a job starting at t). Draining the heap
    // before notifying keeps delivery order identical to one-at-a-time
    // draining while paying the CPU-clock reads once per timestamp.
    completed.clear();
    while (!completions.empty() && completions.top().t == t) {
      const Completion c = completions.top();
      completions.pop();
      free_nodes += workload.job(c.id).nodes;
      running[c.id] = 0;
      done[c.id] = 1;
      --remaining;
      completed.push_back(c.id);
    }
    if (!completed.empty()) {
      timed([&] {
        for (JobId id : completed) scheduler.on_complete(id, t);
      });
    }

    // Deliver all arrivals at t. Submission is the runtime-free slice of
    // the job, so schedulers see submission data only (on-line model)
    // without a full Job copy per arrival.
    while (next_arrival < workload.size() &&
           workload[next_arrival].submit == t) {
      const Job& arrived = workload[next_arrival];
      submitted[arrived.id] = 1;
      ++next_arrival;
      timed([&] { scheduler.on_submit(arrived, t); });
    }

    // Ask for start decisions until the scheduler has none at this time.
    while (true) {
      timed([&] { scheduler.select_starts(t, free_nodes, starts); });
      if (starts.empty()) break;
      for (JobId id : starts) {
        if (id >= workload.size() || !submitted[id]) {
          throw std::logic_error("simulate: scheduler started unknown job");
        }
        if (running[id] || done[id]) {
          throw std::logic_error("simulate: scheduler started job " +
                                 std::to_string(id) + " twice");
        }
        const Job& j = workload.job(id);
        if (j.nodes > free_nodes) {
          throw std::logic_error(
              "simulate: scheduler oversubscribed the machine with job " +
              std::to_string(id));
        }
        free_nodes -= j.nodes;
        running[id] = 1;
        schedule.record_start(id, j.submit, t, j.nodes);
        // Rule 2: jobs exceeding their upper limit are cancelled there.
        const bool cancelled = j.runtime > j.estimate;
        const Duration lifetime = cancelled ? j.estimate : j.runtime;
        schedule.record_end(id, t + lifetime, cancelled);
        completions.push({t + lifetime, id});
      }
    }

    schedule.max_queue_length =
        std::max(schedule.max_queue_length, scheduler.queue_length());
    if (options.record_backlog) {
      if (!schedule.backlog.empty() && schedule.backlog.back().first == t) {
        schedule.backlog.back().second = scheduler.queue_length();
      } else {
        schedule.backlog.emplace_back(t, scheduler.queue_length());
      }
    }
  }

  schedule.scheduler_cpu_seconds = cpu;
  if (options.validate) validate_schedule(schedule, workload);
  return schedule;
}

/// A scheduled completion under fault injection. `epoch` snapshots the
/// job's kill counter at start: a kill bumps the counter, so completions
/// of killed attempts are recognized as stale and skipped lazily.
struct FaultyCompletion {
  Time t;
  JobId id;
  std::uint32_t epoch;
  bool operator>(const FaultyCompletion& o) const noexcept {
    return t != o.t ? t > o.t : id > o.id;
  }
};

/// Event loop with failure-trace replay. Event order at one instant t:
/// completions, then every fault event at t (kills release nodes inside
/// the step; each step records a capacity event), then one
/// on_capacity_change, then fresh arrivals, then re-submissions of the
/// jobs killed at t, then start selection.
Schedule simulate_faulty(const Machine& machine, Scheduler& scheduler,
                         const workload::Workload& workload,
                         const SimOptions& options) {
  const fault::FailureTrace& trace = *options.faults.trace;
  if (trace.machine_nodes != machine.nodes) {
    throw std::invalid_argument(
        "simulate: failure trace built for " +
        std::to_string(trace.machine_nodes) + " nodes but the machine has " +
        std::to_string(machine.nodes));
  }
  options.faults.recovery.validate();
  const fault::RecoveryOptions& recovery = options.faults.recovery;
  const bool checkpointing =
      recovery.policy == fault::RecoveryPolicy::kCheckpointRestart;

  Schedule schedule(machine, workload.size(), scheduler.name());
  if (options.record_backlog) {
    schedule.backlog.reserve(2 * workload.size() + 1);
  }

  double cpu = 0.0;
  auto timed = [&](auto&& fn) {
    if (options.measure_scheduler_cpu) {
      const double t0 = cpu_seconds();
      fn();
      cpu += cpu_seconds() - t0;
    } else {
      fn();
    }
  };

  timed([&] { scheduler.reset(machine); });

  std::priority_queue<FaultyCompletion, std::vector<FaultyCompletion>,
                      std::greater<>>
      completions;
  const std::size_t n = workload.size();
  std::size_t next_arrival = 0;
  std::size_t next_fault = 0;
  int capacity = machine.nodes;
  int free_nodes = capacity;
  std::vector<char> submitted(n, 0);
  std::vector<char> running(n, 0);
  std::vector<char> done(n, 0);
  std::vector<std::uint32_t> epoch(n, 0);
  // Ground truth carried across attempts: remaining fault-free lifetime,
  // restart overhead owed at the next start, overhead included in the
  // current attempt (its first charged_overhead seconds are restart work,
  // not fresh progress).
  std::vector<Duration> rem_life(n);
  std::vector<Duration> pending_overhead(n, 0);
  std::vector<Duration> charged_overhead(n, 0);
  std::vector<Time> start_of(n, 0);
  std::vector<JobId> active;  // running jobs, for victim selection
  active.reserve(64);
  for (JobId id = 0; id < n; ++id) {
    const Job& j = workload.job(id);
    rem_life[id] = std::min(j.runtime, j.estimate);
  }
  std::size_t remaining = n;
  Time prev_t = -1;

  std::vector<JobId> starts;
  std::vector<JobId> completed;
  std::vector<JobId> resubmit;
  starts.reserve(64);
  completed.reserve(64);

  while (remaining > 0) {
    // Cancellation point: one iteration is the abort granularity.
    if (options.cancel != nullptr) options.cancel->check();

    // Purge stale completion entries so the next-event time is real.
    while (!completions.empty() &&
           completions.top().epoch != epoch[completions.top().id]) {
      completions.pop();
    }
    Time t = kTimeInfinity;
    if (next_arrival < n) t = workload[next_arrival].submit;
    if (!completions.empty()) t = std::min(t, completions.top().t);
    if (next_fault < trace.events.size()) {
      t = std::min(t, trace.events[next_fault].t);
    }
    const Time wake = scheduler.next_wakeup(prev_t);
    if (wake > prev_t && wake < t) t = wake;
    if (t == kTimeInfinity) {
      throw std::logic_error("simulate: no events left but " +
                             std::to_string(remaining) + " jobs pending (" +
                             scheduler.name() + " starved them)");
    }
    prev_t = t;

    // (1) completions at t — before fault events, so a job ending exactly
    // when its nodes fail has completed, not been killed.
    completed.clear();
    while (!completions.empty() && completions.top().t == t) {
      const FaultyCompletion c = completions.top();
      completions.pop();
      if (c.epoch != epoch[c.id]) continue;  // stale: attempt was killed
      free_nodes += workload.job(c.id).nodes;
      running[c.id] = 0;
      done[c.id] = 1;
      --remaining;
      active.erase(std::find(active.begin(), active.end(), c.id));
      completed.push_back(c.id);
    }
    if (!completed.empty()) {
      timed([&] {
        for (JobId id : completed) scheduler.on_complete(id, t);
      });
    }

    // (2) fault events at t. A failure first removes capacity; while usage
    // exceeds the surviving capacity, running jobs are killed — latest
    // start first (they lose the least work), larger id on ties.
    resubmit.clear();
    bool capacity_changed = false;
    while (next_fault < trace.events.size() &&
           trace.events[next_fault].t == t) {
      capacity += trace.events[next_fault].delta;
      free_nodes += trace.events[next_fault].delta;
      ++next_fault;
      capacity_changed = true;
      while (free_nodes < 0) {
        std::size_t vi = 0;
        for (std::size_t k = 1; k < active.size(); ++k) {
          const JobId a = active[k];
          const JobId b = active[vi];
          if (start_of[a] > start_of[b] ||
              (start_of[a] == start_of[b] && a > b)) {
            vi = k;
          }
        }
        const JobId victim = active[vi];
        const Job& j = workload.job(victim);
        free_nodes += j.nodes;
        running[victim] = 0;
        ++epoch[victim];
        active.erase(active.begin() + static_cast<std::ptrdiff_t>(vi));
        const Duration elapsed = t - start_of[victim];
        // Progress excludes the attempt's restart overhead; checkpoints
        // save whole intervals of progress only.
        const Duration overhead_done =
            std::min(elapsed, charged_overhead[victim]);
        const Duration progress = elapsed - overhead_done;
        const Duration saved =
            checkpointing
                ? (progress / recovery.checkpoint_interval) *
                      recovery.checkpoint_interval
                : 0;
        rem_life[victim] -= saved;
        pending_overhead[victim] = checkpointing ? recovery.restart_overhead : 0;
        schedule.attempts.push_back(
            {victim, start_of[victim], t, j.nodes, saved});
        timed([&] { scheduler.on_complete(victim, t); });
        resubmit.push_back(victim);
      }
      schedule.capacity_events.emplace_back(t, capacity);
    }
    if (capacity_changed) {
      timed([&] { scheduler.on_capacity_change(t, capacity); });
    }

    // (3) fresh arrivals at t.
    while (next_arrival < n && workload[next_arrival].submit == t) {
      const Job& arrived = workload[next_arrival];
      submitted[arrived.id] = 1;
      ++next_arrival;
      timed([&] { scheduler.on_submit(arrived, t); });
    }

    // (4) re-submissions of the jobs killed at t. The scheduler sees a
    // fresh Submission whose estimate covers the restart overhead plus the
    // remaining work plus the user's original slack — exactly what the
    // user would request for the resumed job.
    for (JobId id : resubmit) {
      Job r = workload.job(id);
      const Duration headroom = r.estimate - std::min(r.runtime, r.estimate);
      r.submit = t;
      r.estimate = pending_overhead[id] + rem_life[id] + headroom;
      timed([&] { scheduler.on_submit(Submission(r), t); });
    }

    // (5) start decisions.
    while (true) {
      timed([&] { scheduler.select_starts(t, free_nodes, starts); });
      if (starts.empty()) break;
      for (JobId id : starts) {
        if (id >= n || !submitted[id]) {
          throw std::logic_error("simulate: scheduler started unknown job");
        }
        if (running[id] || done[id]) {
          throw std::logic_error("simulate: scheduler started job " +
                                 std::to_string(id) + " twice");
        }
        const Job& j = workload.job(id);
        if (j.nodes > free_nodes) {
          throw std::logic_error(
              "simulate: scheduler oversubscribed the machine with job " +
              std::to_string(id));
        }
        free_nodes -= j.nodes;
        running[id] = 1;
        start_of[id] = t;
        active.push_back(id);
        charged_overhead[id] = pending_overhead[id];
        pending_overhead[id] = 0;
        const Duration lifetime = charged_overhead[id] + rem_life[id];
        schedule.record_start(id, j.submit, t, j.nodes);
        // Rule 2 still applies across restarts: a job whose true runtime
        // exceeds its original estimate runs to its (remaining) limit.
        schedule.record_end(id, t + lifetime, j.runtime > j.estimate);
        completions.push({t + lifetime, id, epoch[id]});
      }
    }

    schedule.max_queue_length =
        std::max(schedule.max_queue_length, scheduler.queue_length());
    if (options.record_backlog) {
      if (!schedule.backlog.empty() && schedule.backlog.back().first == t) {
        schedule.backlog.back().second = scheduler.queue_length();
      } else {
        schedule.backlog.emplace_back(t, scheduler.queue_length());
      }
    }
  }

  schedule.scheduler_cpu_seconds = cpu;
  if (options.validate) validate_schedule(schedule, workload);
  return schedule;
}

}  // namespace

Schedule simulate(const Machine& machine, Scheduler& scheduler,
                  const workload::Workload& workload,
                  const SimOptions& options) {
  machine.validate();
  if (workload.max_nodes() > machine.nodes) {
    throw std::invalid_argument(
        "simulate: workload contains jobs wider than the machine; "
        "trim_to_machine() first");
  }
  if (options.faults.active()) {
    return simulate_faulty(machine, scheduler, workload, options);
  }
  return simulate_basic(machine, scheduler, workload, options);
}

}  // namespace jsched::sim
