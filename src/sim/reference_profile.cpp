#include "sim/reference_profile.h"

#include <cassert>
#include <sstream>
#include <stdexcept>

namespace jsched::sim {

ReferenceProfile::ReferenceProfile(int total_nodes) : total_(total_nodes) {
  if (total_nodes < 1) {
    throw std::invalid_argument("ReferenceProfile: total_nodes < 1");
  }
  cap_.emplace(Time{0}, total_);
}

std::map<Time, int>::const_iterator ReferenceProfile::at(Time t) const {
  auto it = cap_.upper_bound(t);
  assert(it != cap_.begin());  // entry at/before any queried time
  return std::prev(it);
}

int ReferenceProfile::capacity_at(Time t) const { return at(t)->second; }

bool ReferenceProfile::fits(Time start, Duration duration, int nodes) const {
  assert(duration > 0);
  auto it = at(start);
  const Time end = start > kTimeInfinity - duration ? kTimeInfinity
                                                    : start + duration;
  for (; it != cap_.end() && it->first < end; ++it) {
    if (it->second < nodes) return false;
  }
  return true;
}

Time ReferenceProfile::earliest_fit(Time from, Duration duration,
                                    int nodes) const {
  assert(duration > 0);
  if (nodes > total_) {
    throw std::invalid_argument(
        "ReferenceProfile::earliest_fit: job wider than machine");
  }
  Time candidate = from;
  auto it = at(from);
  while (true) {
    // Scan forward from `candidate`; on the first under-capacity segment,
    // restart the window at the segment's end.
    const Time end = candidate > kTimeInfinity - duration ? kTimeInfinity
                                                          : candidate + duration;
    bool ok = true;
    for (auto scan = it; scan != cap_.end() && scan->first < end; ++scan) {
      if (scan->second < nodes) {
        auto next = std::next(scan);
        if (next == cap_.end()) {
          // Profile never recovers — cannot happen while allocations are
          // finite, because the final segment is full capacity.
          throw std::logic_error("ReferenceProfile: final segment under capacity");
        }
        candidate = next->first;
        it = next;
        ok = false;
        break;
      }
    }
    if (ok) return candidate;
  }
}

void ReferenceProfile::add_over_range(Time start, Time end, int delta) {
  if (start >= end) return;
  // Materialize breakpoints at the range edges.
  auto lo = cap_.lower_bound(start);
  if (lo == cap_.end() || lo->first != start) {
    assert(lo != cap_.begin());
    lo = cap_.emplace_hint(lo, start, std::prev(lo)->second);
  }
  if (end != kTimeInfinity) {
    auto hi = cap_.lower_bound(end);
    if (hi == cap_.end() || hi->first != end) {
      assert(hi != cap_.begin());
      cap_.emplace_hint(hi, end, std::prev(hi)->second);
    }
  }
  for (auto it = lo; it != cap_.end() && (end == kTimeInfinity || it->first < end);
       ++it) {
    it->second += delta;
    assert(it->second >= 0 && it->second <= total_);
  }
  // Merge redundant breakpoints inside/just after the touched range.
  auto it = lo == cap_.begin() ? lo : std::prev(lo);
  while (it != cap_.end()) {
    auto next = std::next(it);
    if (next == cap_.end() ||
        (end != kTimeInfinity && next->first > end)) {
      break;
    }
    if (next->second == it->second) {
      cap_.erase(next);
    } else {
      it = next;
    }
  }
}

void ReferenceProfile::allocate(Time start, Duration duration, int nodes) {
  assert(duration > 0 && nodes >= 0);
  const Time end =
      start > kTimeInfinity - duration ? kTimeInfinity : start + duration;
  add_over_range(start, end, -nodes);
}

void ReferenceProfile::release(Time start, Duration duration, int nodes) {
  assert(duration > 0 && nodes >= 0);
  const Time end =
      start > kTimeInfinity - duration ? kTimeInfinity : start + duration;
  add_over_range(start, end, nodes);
}

void ReferenceProfile::compact(Time now) {
  auto it = cap_.upper_bound(now);
  assert(it != cap_.begin());
  --it;  // entry in effect at `now`
  if (it == cap_.begin()) return;
  const int value = it->second;
  cap_.erase(cap_.begin(), it);
  // Re-key the effective entry at `now` for a tidy front.
  cap_.erase(cap_.begin());
  cap_.emplace(now, value);
}

std::string ReferenceProfile::dump() const {
  std::ostringstream os;
  for (const auto& [t, c] : cap_) os << t << ':' << c << ' ';
  return os.str();
}

}  // namespace jsched::sim
