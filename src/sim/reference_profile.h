// The seed std::map-backed availability profile, retained verbatim as the
// differential-test oracle and benchmark baseline for sim::Profile.
//
// Same public surface and observable behaviour as Profile (canonical
// merged breakpoints, identical compact()/earliest_fit() semantics), but
// with linear restart scans over the breakpoints — O(n) fits/earliest_fit.
// Production code must use Profile; this class exists so correctness and
// speedups can be measured against the original, not remembered.
#pragma once

#include <cstddef>
#include <map>
#include <string>

#include "util/time.h"

namespace jsched::sim {

class ReferenceProfile {
 public:
  explicit ReferenceProfile(int total_nodes);

  int total_nodes() const noexcept { return total_; }
  int capacity_at(Time t) const;
  bool fits(Time start, Duration duration, int nodes) const;
  Time earliest_fit(Time from, Duration duration, int nodes) const;
  void allocate(Time start, Duration duration, int nodes);
  void release(Time start, Duration duration, int nodes);
  void compact(Time now);
  std::size_t breakpoints() const noexcept { return cap_.size(); }
  std::string dump() const;

 private:
  void add_over_range(Time start, Time end, int delta);
  std::map<Time, int>::const_iterator at(Time t) const;

  int total_;
  std::map<Time, int> cap_;
};

}  // namespace jsched::sim
