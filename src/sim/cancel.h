// Cooperative cancellation for long-running simulations.
//
// A simulation is a tight single-threaded event loop; the only safe way to
// stop one early is to ask it to stop itself. A CancelToken carries an
// external cancellation flag and/or a wall-clock deadline; the simulator
// polls it once per event-loop iteration (only when one is installed, so
// the default path pays a single null check) and aborts by throwing
// CancelledError. The eval harness maps that exception onto the timeout /
// cancelled entries of its RunError taxonomy.
//
// Tokens chain: a per-run token constructed with a parent observes the
// parent's cancellation too, so one sweep-wide token can stop every run of
// a grid while each run keeps its own deadline. `cancel()` is safe to call
// from any thread; deadlines must be set before the token is shared with
// the simulating thread (they are plain fields, synchronized by whatever
// hand-off publishes the token — e.g. the thread pool's queue mutex).
#pragma once

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>

#include "util/clock.h"

namespace jsched::sim {

/// Thrown by the simulator (from CancelToken::check) when a run is
/// cancelled or exceeds its deadline. Derives from std::runtime_error, not
/// std::logic_error: an expired run is an operational event, not a bug.
class CancelledError : public std::runtime_error {
 public:
  enum class Reason {
    kCancelled,  // CancelToken::cancel() was called
    kDeadline,   // the wall-clock deadline passed
  };

  CancelledError(Reason reason, const std::string& what)
      : std::runtime_error(what), reason_(reason) {}

  Reason reason() const noexcept { return reason_; }

 private:
  Reason reason_;
};

class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  CancelToken() = default;
  /// A child token: cancelled/expired when this token *or* `parent` is.
  /// `parent` (may be null) must outlive this token.
  explicit CancelToken(const CancelToken* parent) : parent_(parent) {}

  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Request cancellation. Callable from any thread, any number of times.
  void cancel() noexcept { cancelled_.store(true, std::memory_order_relaxed); }

  /// Install an absolute wall-clock deadline. Not thread-safe: call before
  /// handing the token to the simulating thread.
  void set_deadline(Clock::time_point deadline) noexcept {
    deadline_ = deadline;
    has_deadline_ = true;
  }

  /// Deadline `budget` from now (as observed by this token's clock).
  void set_deadline_after(Clock::duration budget) {
    set_deadline(now() + budget);
  }

  /// Route deadline checks through an injected time source. Null restores
  /// the default (the real steady clock). Tests install a util::ManualClock
  /// and *advance* it past the deadline instead of sleeping — the expiry
  /// tests stop depending on the CI machine's scheduler. Not thread-safe:
  /// set before sharing the token, like set_deadline.
  void set_clock(const util::Clock* clock) noexcept { clock_ = clock; }

  bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_relaxed) ||
           (parent_ != nullptr && parent_->cancelled());
  }

  bool expired() const noexcept {
    return (has_deadline_ && now() >= deadline_) ||
           (parent_ != nullptr && parent_->expired());
  }

  /// Throw CancelledError if cancelled or past the deadline. Explicit
  /// cancellation wins the tie so an externally stopped sweep reports
  /// kCancelled, not a coincidental kDeadline.
  void check() const {
    if (cancelled()) {
      throw CancelledError(CancelledError::Reason::kCancelled,
                           "simulation cancelled");
    }
    if (expired()) {
      throw CancelledError(CancelledError::Reason::kDeadline,
                           "simulation deadline expired");
    }
  }

 private:
  Clock::time_point now() const noexcept {
    return clock_ != nullptr ? clock_->now() : Clock::now();
  }

  const CancelToken* parent_ = nullptr;
  const util::Clock* clock_ = nullptr;
  std::atomic<bool> cancelled_{false};
  bool has_deadline_ = false;
  Clock::time_point deadline_{};
};

}  // namespace jsched::sim
