#include "sim/schedule.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace jsched::sim {

Schedule::Schedule(Machine machine, std::size_t job_count,
                   std::string scheduler_name)
    : machine_(machine),
      scheduler_name_(std::move(scheduler_name)),
      records_(job_count) {
  machine_.validate();
}

void Schedule::record_start(JobId id, Time submit, Time start, int nodes) {
  JobRecord& r = records_.at(id);
  r.submit = submit;
  r.start = start;
  r.nodes = nodes;
  r.end = kTimeInfinity;
}

void Schedule::record_end(JobId id, Time end, bool cancelled) {
  JobRecord& r = records_.at(id);
  r.end = end;
  r.cancelled = cancelled;
}

std::uint64_t schedule_fingerprint(const Schedule& s) {
  // FNV-1a, folding each record field as its 64-bit representation.
  std::uint64_t h = 14695981039346656037ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (8 * byte)) & 0xffu;
      h *= 1099511628211ull;
    }
  };
  for (JobId id = 0; id < s.size(); ++id) {
    const JobRecord& r = s[id];
    mix(static_cast<std::uint64_t>(r.submit));
    mix(static_cast<std::uint64_t>(r.start));
    mix(static_cast<std::uint64_t>(r.end));
    mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(r.nodes)));
    mix(r.cancelled ? 1u : 0u);
  }
  // Fault-injection extras. Both vectors are empty in fault-free runs, so
  // this folds nothing and the fingerprint equals the historical one.
  for (const AttemptRecord& a : s.attempts) {
    mix(static_cast<std::uint64_t>(a.id));
    mix(static_cast<std::uint64_t>(a.start));
    mix(static_cast<std::uint64_t>(a.end));
    mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(a.nodes)));
    mix(static_cast<std::uint64_t>(a.saved));
  }
  for (const auto& [t, capacity] : s.capacity_events) {
    mix(static_cast<std::uint64_t>(t));
    mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(capacity)));
  }
  return h;
}

Time Schedule::makespan() const noexcept {
  Time m = 0;
  for (const auto& r : records_) m = std::max(m, r.end);
  return m;
}

namespace {

/// Validity under fault injection: per-job conservation instead of exact
/// durations, and a capacity sweep against the recorded capacity steps.
void validate_faulty_schedule(const Schedule& s, const workload::Workload& w) {
  auto fail = [](const std::string& msg) { throw ValidationError("schedule: " + msg); };

  std::vector<Duration> executed(s.size(), 0);
  for (JobId id = 0; id < s.size(); ++id) {
    const JobRecord& r = s[id];
    const Job& j = w.job(id);
    std::ostringstream who;
    who << "job " << id << ": ";
    if (r.end == kTimeInfinity) fail(who.str() + "never completed");
    if (r.nodes != j.nodes) fail(who.str() + "node count mismatch");
    if (r.submit != j.submit) fail(who.str() + "submit time mismatch");
    if (r.start < j.submit) fail(who.str() + "started before submission");
    if (r.end <= r.start) fail(who.str() + "non-positive final attempt");
    executed[id] = r.end - r.start;
  }
  for (const AttemptRecord& a : s.attempts) {
    std::ostringstream who;
    who << "attempt of job " << a.id << ": ";
    if (a.id >= s.size()) fail(who.str() + "unknown job");
    const Job& j = w.job(a.id);
    if (a.nodes != j.nodes) fail(who.str() + "node count mismatch");
    if (a.start < j.submit) fail(who.str() + "started before submission");
    if (a.end <= a.start) fail(who.str() + "non-positive attempt");
    if (a.end > s[a.id].start) {
      fail(who.str() + "killed attempt overlaps the final attempt");
    }
    if (a.saved < 0 || a.saved > a.end - a.start) {
      fail(who.str() + "saved work outside the attempt");
    }
    executed[a.id] += a.end - a.start;
  }
  for (JobId id = 0; id < s.size(); ++id) {
    const Job& j = w.job(id);
    // Conservation: across all attempts the job must have executed at
    // least its fault-free lifetime (requeued work is re-executed; restart
    // overhead only adds on top).
    if (executed[id] < std::min(j.runtime, j.estimate)) {
      fail("job " + std::to_string(id) + ": executed less than its lifetime");
    }
  }

  // Capacity sweep against the time-varying capacity. At equal instants
  // the simulator releases completions first, then applies capacity steps
  // (kills release within the step), then starts jobs — mirror that order.
  enum EdgeKind { kRelease = 0, kCapacity = 1, kAcquire = 2 };
  struct Edge {
    Time t;
    int kind;
    int value;  // usage delta, or the new capacity for kCapacity edges
  };
  std::vector<Edge> edges;
  edges.reserve(2 * (s.size() + s.attempts.size()) + s.capacity_events.size());
  for (JobId id = 0; id < s.size(); ++id) {
    edges.push_back({s[id].start, kAcquire, s[id].nodes});
    edges.push_back({s[id].end, kRelease, -s[id].nodes});
  }
  for (const AttemptRecord& a : s.attempts) {
    edges.push_back({a.start, kAcquire, a.nodes});
    edges.push_back({a.end, kRelease, -a.nodes});
  }
  for (const auto& [t, capacity] : s.capacity_events) {
    edges.push_back({t, kCapacity, capacity});
  }
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    if (a.t != b.t) return a.t < b.t;
    if (a.kind != b.kind) return a.kind < b.kind;
    return a.value < b.value;
  });
  int in_use = 0;
  int capacity = s.machine().nodes;
  for (const Edge& e : edges) {
    if (e.kind == kCapacity) {
      capacity = e.value;
    } else {
      in_use += e.value;
    }
    if (in_use < 0) fail("negative usage at time " + std::to_string(e.t));
    if (in_use > capacity) {
      fail("node capacity exceeded at time " + std::to_string(e.t));
    }
  }
  if (in_use != 0) fail("dangling allocations after last completion");
}

}  // namespace

void validate_schedule(const Schedule& s, const workload::Workload& w) {
  auto fail = [](const std::string& msg) { throw ValidationError("schedule: " + msg); };
  if (s.size() != w.size()) fail("job count mismatch");
  if (!s.attempts.empty() || !s.capacity_events.empty()) {
    validate_faulty_schedule(s, w);
    return;
  }

  struct Edge {
    Time t;
    int delta;
  };
  std::vector<Edge> edges;
  edges.reserve(2 * s.size());

  for (JobId id = 0; id < s.size(); ++id) {
    const JobRecord& r = s[id];
    const Job& j = w.job(id);
    std::ostringstream who;
    who << "job " << id << ": ";
    if (r.end == kTimeInfinity) fail(who.str() + "never completed");
    if (r.nodes != j.nodes) fail(who.str() + "node count mismatch");
    if (r.submit != j.submit) fail(who.str() + "submit time mismatch");
    if (r.start < j.submit) fail(who.str() + "started before submission");
    if (r.cancelled) {
      if (r.end - r.start != j.estimate) {
        fail(who.str() + "cancelled at other than the upper limit");
      }
      if (j.runtime <= j.estimate) {
        fail(who.str() + "cancelled although it fit its limit");
      }
    } else {
      if (r.end - r.start != j.runtime) {
        fail(who.str() + "ran for other than its runtime (no time sharing)");
      }
    }
    edges.push_back({r.start, j.nodes});
    edges.push_back({r.end, -j.nodes});
  }

  // Capacity sweep: releases before acquisitions at equal times (a node
  // freed at t is usable by a job starting at t).
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    if (a.t != b.t) return a.t < b.t;
    return a.delta < b.delta;
  });
  int in_use = 0;
  for (const auto& e : edges) {
    in_use += e.delta;
    if (in_use > s.machine().nodes) {
      fail("node capacity exceeded at time " + std::to_string(e.t));
    }
    if (in_use < 0) fail("negative usage at time " + std::to_string(e.t));
  }
  if (in_use != 0) fail("dangling allocations after last completion");
}

workload::Workload as_executed_workload(const Schedule& s,
                                        const workload::Workload& w) {
  workload::Workload out;
  out.reserve(s.size() + s.attempts.size());
  for (JobId id = 0; id < s.size(); ++id) {
    const JobRecord& r = s[id];
    Job j = w.job(id);
    j.submit = r.submit;
    j.runtime = r.end - r.start;
    j.status = r.cancelled ? JobStatus::kCancelled : JobStatus::kCompleted;
    out.add(j);
  }
  for (const AttemptRecord& a : s.attempts) {
    if (a.end <= a.start) continue;  // killed at its start instant
    Job j = w.job(a.id);
    j.runtime = a.end - a.start;
    j.status = JobStatus::kFailed;
    out.add(j);
  }
  out.set_name(w.name() + "-executed");
  out.finalize();
  return out;
}

}  // namespace jsched::sim
