#include "sim/schedule.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace jsched::sim {

Schedule::Schedule(Machine machine, std::size_t job_count,
                   std::string scheduler_name)
    : machine_(machine),
      scheduler_name_(std::move(scheduler_name)),
      records_(job_count) {
  machine_.validate();
}

void Schedule::record_start(JobId id, Time submit, Time start, int nodes) {
  JobRecord& r = records_.at(id);
  r.submit = submit;
  r.start = start;
  r.nodes = nodes;
  r.end = kTimeInfinity;
}

void Schedule::record_end(JobId id, Time end, bool cancelled) {
  JobRecord& r = records_.at(id);
  r.end = end;
  r.cancelled = cancelled;
}

std::uint64_t schedule_fingerprint(const Schedule& s) {
  // FNV-1a, folding each record field as its 64-bit representation.
  std::uint64_t h = 14695981039346656037ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (8 * byte)) & 0xffu;
      h *= 1099511628211ull;
    }
  };
  for (JobId id = 0; id < s.size(); ++id) {
    const JobRecord& r = s[id];
    mix(static_cast<std::uint64_t>(r.submit));
    mix(static_cast<std::uint64_t>(r.start));
    mix(static_cast<std::uint64_t>(r.end));
    mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(r.nodes)));
    mix(r.cancelled ? 1u : 0u);
  }
  return h;
}

Time Schedule::makespan() const noexcept {
  Time m = 0;
  for (const auto& r : records_) m = std::max(m, r.end);
  return m;
}

void validate_schedule(const Schedule& s, const workload::Workload& w) {
  auto fail = [](const std::string& msg) { throw std::logic_error("schedule: " + msg); };
  if (s.size() != w.size()) fail("job count mismatch");

  struct Edge {
    Time t;
    int delta;
  };
  std::vector<Edge> edges;
  edges.reserve(2 * s.size());

  for (JobId id = 0; id < s.size(); ++id) {
    const JobRecord& r = s[id];
    const Job& j = w.job(id);
    std::ostringstream who;
    who << "job " << id << ": ";
    if (r.end == kTimeInfinity) fail(who.str() + "never completed");
    if (r.nodes != j.nodes) fail(who.str() + "node count mismatch");
    if (r.submit != j.submit) fail(who.str() + "submit time mismatch");
    if (r.start < j.submit) fail(who.str() + "started before submission");
    if (r.cancelled) {
      if (r.end - r.start != j.estimate) {
        fail(who.str() + "cancelled at other than the upper limit");
      }
      if (j.runtime <= j.estimate) {
        fail(who.str() + "cancelled although it fit its limit");
      }
    } else {
      if (r.end - r.start != j.runtime) {
        fail(who.str() + "ran for other than its runtime (no time sharing)");
      }
    }
    edges.push_back({r.start, j.nodes});
    edges.push_back({r.end, -j.nodes});
  }

  // Capacity sweep: releases before acquisitions at equal times (a node
  // freed at t is usable by a job starting at t).
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    if (a.t != b.t) return a.t < b.t;
    return a.delta < b.delta;
  });
  int in_use = 0;
  for (const auto& e : edges) {
    in_use += e.delta;
    if (in_use > s.machine().nodes) {
      fail("node capacity exceeded at time " + std::to_string(e.t));
    }
    if (in_use < 0) fail("negative usage at time " + std::to_string(e.t));
  }
  if (in_use != 0) fail("dangling allocations after last completion");
}

}  // namespace jsched::sim
