// Bounded-memory simulation: drive a scheduler from a workload::JobSource
// and fold each finished JobRecord into a visitor instead of retaining it.
//
// The materializing `simulate()` holds the whole workload, the whole
// Schedule and a handful of O(n) side arrays — ~1.4 GB at 10M jobs. This
// path holds only the *live window*: jobs that have arrived but whose
// records are not yet final. Arrivals happen in JobId order (ids are dense
// and submit-sorted), so the live window is a contiguous id range managed
// as a deque; the frontier advances as jobs complete and each record is
// handed to the sink exactly once, in JobId order — the same order every
// batch metric and the schedule fingerprint iterate in, which is what
// makes streaming aggregates bit-identical to their batch counterparts.
//
// One unified event loop serves both the fault-free and the faulty case:
// with an inactive trace its event order is identical to the fault-free
// loop in simulator.cpp (completions, arrivals, starts), so decisions —
// and therefore records — match the materializing simulator exactly.
#pragma once

#include <cstddef>
#include <cstdint>

#include "fault/fault.h"
#include "sim/cancel.h"
#include "sim/machine.h"
#include "sim/schedule.h"
#include "sim/scheduler.h"
#include "workload/job_source.h"

namespace jsched::sim {

/// Visitor receiving the simulation's output as it becomes final.
/// `on_record` is called exactly once per job, in JobId order; attempts
/// arrive in kill order and capacity events in trace order — the same
/// orders the materializing Schedule stores them in.
class RecordSink {
 public:
  virtual ~RecordSink() = default;

  /// Final record of job `id` (its workload entry is `j`). The references
  /// are only valid during the call.
  virtual void on_record(JobId id, const JobRecord& record, const Job& j) = 0;

  /// A killed execution attempt (fault injection only).
  virtual void on_attempt(const AttemptRecord& attempt) { (void)attempt; }

  /// A machine capacity step: available nodes after the step.
  virtual void on_capacity_event(Time t, int capacity) {
    (void)t;
    (void)capacity;
  }
};

/// What the streaming loop itself measures (everything else — objectives,
/// fingerprints, resilience — lives in the sink).
struct StreamStats {
  std::size_t jobs = 0;
  Time makespan = 0;
  double scheduler_cpu_seconds = 0.0;
  std::size_t max_queue_length = 0;
  /// Peak size of the live window (arrived, record not yet emitted): the
  /// run's actual memory witness — simulator state is O(this), not O(jobs).
  std::size_t peak_live_jobs = 0;
};

/// Options for simulate_stream — SimOptions minus the pieces that require
/// a materialized Schedule (validate, record_backlog).
struct StreamOptions {
  /// Measure CPU time spent in scheduler callbacks (Tables 7/8).
  bool measure_scheduler_cpu = false;

  /// Fault injection; identical semantics to SimOptions::faults.
  fault::FaultOptions faults{};

  /// Cooperative cancellation (not owned; may be null), polled once per
  /// event-loop iteration like the materializing simulator.
  const CancelToken* cancel = nullptr;
};

/// Run `scheduler` over the stream from `source` on `machine`, folding
/// output into `sink`. Enforces the same scheduler contract as simulate()
/// (unknown job / started twice / oversubscription → std::logic_error) and
/// additionally validates the source stream as it is pulled (dense ids,
/// sorted submits, valid fields, jobs no wider than the machine →
/// std::invalid_argument).
StreamStats simulate_stream(const Machine& machine, Scheduler& scheduler,
                            workload::JobSource& source, RecordSink& sink,
                            const StreamOptions& options = {});

}  // namespace jsched::sim
