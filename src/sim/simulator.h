// Discrete-event simulator driving an on-line scheduler over a workload.
#pragma once

#include <cstdint>

#include "fault/fault.h"
#include "sim/cancel.h"
#include "sim/machine.h"
#include "sim/schedule.h"
#include "sim/scheduler.h"
#include "workload/workload.h"

namespace jsched::sim {

struct SimOptions {
  /// Validate the produced schedule before returning (cheap: O(n log n)).
  bool validate = true;

  /// Measure CPU time spent in scheduler callbacks (Tables 7/8). Uses
  /// thread CPU clock; adds two clock reads per callback.
  bool measure_scheduler_cpu = false;

  /// Record the queue-length time series into Schedule::backlog.
  bool record_backlog = false;

  /// Fault injection. Inactive (the default) takes the original event
  /// loop: schedules are bit-identical to a build without fault support.
  /// Active, the simulator replays faults.trace, kills running jobs when
  /// a failure removes the nodes under them (victims: latest start first,
  /// larger id on ties), applies faults.recovery to decide the lost work,
  /// and re-submits the remainder at the kill instant. The trace must be
  /// built for exactly machine.nodes nodes.
  fault::FaultOptions faults{};

  /// Cooperative cancellation (not owned; may be null). When set, the
  /// token is polled once per event-loop iteration and an expired or
  /// cancelled run aborts by throwing sim::CancelledError — within the
  /// deadline plus one event-loop iteration, with no watchdog thread.
  /// Null (the default) costs one untaken branch per iteration.
  const CancelToken* cancel = nullptr;
};

/// Run `scheduler` over `workload` on `machine`; returns the executed
/// schedule. The scheduler is reset() first, so a scheduler instance can be
/// reused across runs. Throws std::logic_error if the scheduler starts a
/// job that does not fit or that it was never given.
Schedule simulate(const Machine& machine, Scheduler& scheduler,
                  const workload::Workload& workload,
                  const SimOptions& options = {});

}  // namespace jsched::sim
