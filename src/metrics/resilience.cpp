#include "metrics/resilience.h"

#include <algorithm>

#include "metrics/streaming.h"

namespace jsched::metrics {

ResilienceReport resilience(const sim::Schedule& s,
                            const workload::Workload& w) {
  ResilienceReport r;

  for (JobId id = 0; id < s.size(); ++id) {
    const sim::JobRecord& rec = s[id];
    const Job& j = w.job(id);
    r.executed_node_seconds += static_cast<double>(rec.nodes) *
                               static_cast<double>(rec.end - rec.start);
    r.useful_node_seconds += static_cast<double>(j.nodes) *
                             static_cast<double>(std::min(j.runtime, j.estimate));
  }
  const std::vector<std::size_t> counts = resubmission_counts(s);
  for (const sim::AttemptRecord& a : s.attempts) {
    r.executed_node_seconds +=
        static_cast<double>(a.nodes) * static_cast<double>(a.end - a.start);
  }
  r.kills = s.attempts.size();
  for (std::size_t c : counts) {
    if (c > 0) ++r.jobs_hit;
    r.max_resubmissions = std::max(r.max_resubmissions, c);
  }
  r.wasted_node_seconds = r.executed_node_seconds - r.useful_node_seconds;
  r.goodput_fraction = r.executed_node_seconds > 0.0
                           ? r.useful_node_seconds / r.executed_node_seconds
                           : 1.0;

  // Integrate the capacity step function over [0, makespan].
  const Time makespan = s.makespan();
  if (makespan > 0) {
    const double available = available_node_seconds(
        s.capacity_events, s.machine().nodes, makespan);
    const double total = static_cast<double>(s.machine().nodes) *
                         static_cast<double>(makespan);
    r.availability = total > 0.0 ? available / total : 1.0;
    r.availability_weighted_utilization =
        available > 0.0 ? r.executed_node_seconds / available : 0.0;
  }
  return r;
}

std::vector<std::size_t> resubmission_counts(const sim::Schedule& s) {
  std::vector<std::size_t> counts(s.size(), 0);
  for (const sim::AttemptRecord& a : s.attempts) ++counts[a.id];
  return counts;
}

}  // namespace jsched::metrics
