#include "metrics/objectives.h"

#include <algorithm>
#include <stdexcept>

namespace jsched::metrics {
namespace {

double job_weight(const sim::JobRecord& r) {
  // Resource consumption as executed: nodes x occupied time. For a
  // cancelled job the occupied time is its upper limit.
  return static_cast<double>(r.nodes) * static_cast<double>(r.end - r.start);
}

void require_jobs(const sim::Schedule& s, const char* what) {
  if (s.size() == 0) {
    throw std::invalid_argument(std::string(what) + " of an empty schedule");
  }
}

}  // namespace

double average_response_time(const sim::Schedule& s) {
  require_jobs(s, "average_response_time");
  double sum = 0.0;
  for (const auto& r : s.records()) sum += static_cast<double>(r.response());
  return sum / static_cast<double>(s.size());
}

double average_weighted_response_time(const sim::Schedule& s) {
  require_jobs(s, "average_weighted_response_time");
  double sum = 0.0;
  for (const auto& r : s.records()) {
    sum += job_weight(r) * static_cast<double>(r.response());
  }
  return sum / static_cast<double>(s.size());
}

double weight_normalized_response_time(const sim::Schedule& s) {
  require_jobs(s, "weight_normalized_response_time");
  double sum = 0.0;
  double weights = 0.0;
  for (const auto& r : s.records()) {
    sum += job_weight(r) * static_cast<double>(r.response());
    weights += job_weight(r);
  }
  return weights > 0.0 ? sum / weights : 0.0;
}

double average_response_time_if(
    const sim::Schedule& s,
    const std::function<bool(JobId, const sim::JobRecord&)>& pred) {
  double sum = 0.0;
  std::size_t n = 0;
  for (JobId id = 0; id < s.size(); ++id) {
    if (!pred(id, s[id])) continue;
    sum += static_cast<double>(s[id].response());
    ++n;
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

double average_weighted_response_time_if(
    const sim::Schedule& s,
    const std::function<bool(JobId, const sim::JobRecord&)>& pred) {
  double sum = 0.0;
  std::size_t n = 0;
  for (JobId id = 0; id < s.size(); ++id) {
    if (!pred(id, s[id])) continue;
    sum += job_weight(s[id]) * static_cast<double>(s[id].response());
    ++n;
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

double average_wait_time(const sim::Schedule& s) {
  require_jobs(s, "average_wait_time");
  double sum = 0.0;
  for (const auto& r : s.records()) sum += static_cast<double>(r.wait());
  return sum / static_cast<double>(s.size());
}

double average_bounded_slowdown(const sim::Schedule& s, Duration tau) {
  require_jobs(s, "average_bounded_slowdown");
  double sum = 0.0;
  for (const auto& r : s.records()) {
    const double p =
        static_cast<double>(std::max<Duration>(r.end - r.start, tau));
    sum += static_cast<double>(r.response()) / p;
  }
  return sum / static_cast<double>(s.size());
}

Time makespan(const sim::Schedule& s) { return s.makespan(); }

double utilization(const sim::Schedule& s) {
  const Time m = s.makespan();
  if (m <= 0) return 0.0;
  double busy = 0.0;
  for (const auto& r : s.records()) busy += job_weight(r);
  return busy / (static_cast<double>(s.machine().nodes) * static_cast<double>(m));
}

double idle_node_seconds(const sim::Schedule& s, Time frame_start,
                         Time frame_end) {
  if (frame_end <= frame_start) {
    throw std::invalid_argument("idle_node_seconds: empty frame");
  }
  double busy = 0.0;
  for (const auto& r : s.records()) {
    const Time lo = std::max(r.start, frame_start);
    const Time hi = std::min(r.end, frame_end);
    if (hi > lo) busy += static_cast<double>(r.nodes) * static_cast<double>(hi - lo);
  }
  const double total = static_cast<double>(s.machine().nodes) *
                       static_cast<double>(frame_end - frame_start);
  return total - busy;
}

double fraction_within(const sim::Schedule& s, const workload::Workload& w,
                       std::int32_t priority_class, Duration deadline) {
  std::size_t total = 0;
  std::size_t within = 0;
  for (JobId id = 0; id < s.size(); ++id) {
    if (w.job(id).priority_class != priority_class) continue;
    ++total;
    if (s[id].response() <= deadline) ++within;
  }
  return total == 0 ? 1.0
                    : static_cast<double>(within) / static_cast<double>(total);
}

double class_average_response_time(const sim::Schedule& s,
                                   const workload::Workload& w,
                                   std::int32_t priority_class) {
  std::size_t total = 0;
  double sum = 0.0;
  for (JobId id = 0; id < s.size(); ++id) {
    if (w.job(id).priority_class != priority_class) continue;
    ++total;
    sum += static_cast<double>(s[id].response());
  }
  return total == 0 ? 0.0 : sum / static_cast<double>(total);
}

Objective unweighted_objective() {
  return {"average response time",
          [](const sim::Schedule& s) { return average_response_time(s); },
          true};
}

Objective weighted_objective() {
  return {"average weighted response time",
          [](const sim::Schedule& s) {
            return average_weighted_response_time(s);
          },
          true};
}

}  // namespace jsched::metrics
