// Schedule lower bounds (paper §2.3).
//
// "Occasionally, [algorithmic theory] is used to determine lower bounds
//  for schedules. These lower bounds can provide an estimate for a
//  potential improvement of the schedule by switching to a different
//  algorithm."
//
// All bounds here hold for EVERY valid schedule of the workload on the
// given machine — including clairvoyant off-line ones — so the gap between
// a simulated cost and the bound caps how much any better algorithm could
// still gain.
#pragma once

#include "sim/machine.h"
#include "util/time.h"
#include "workload/workload.h"

namespace jsched::metrics {

/// Lower bound on the makespan: no schedule can beat the total work spread
/// over the full machine, the longest single job (from its release), or
/// the last submission.
Time makespan_lower_bound(const workload::Workload& w,
                          const sim::Machine& machine);

/// Lower bound on the average response time. Combines
///  * the run-time bound: every job responds in at least its runtime, and
///  * a capacity bound: ranking jobs by area, the machine cannot finish
///    more than `nodes` node-seconds per second, so even a clairvoyant
///    preemptive schedule must delay some jobs once the instantaneous
///    offered load exceeds capacity (computed via a fluid busy-period
///    sweep over the arrival sequence).
double art_lower_bound(const workload::Workload& w,
                       const sim::Machine& machine);

/// Lower bound on the average weighted response time (weights = areas):
/// every job contributes at least weight x runtime.
double awrt_lower_bound(const workload::Workload& w);

/// "Potential improvement" report line for a measured cost vs its bound:
/// (measured - bound) / measured, in [0, 1); 0 means provably optimal.
double potential_improvement(double measured, double bound);

}  // namespace jsched::metrics
