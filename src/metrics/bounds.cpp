#include "metrics/bounds.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace jsched::metrics {

Time makespan_lower_bound(const workload::Workload& w,
                          const sim::Machine& machine) {
  machine.validate();
  Time bound = 0;
  double area = 0.0;
  for (const Job& j : w) {
    // Occupied time is the runtime, or the limit if the job overruns it
    // and is cancelled (Rule 2).
    const auto p = static_cast<double>(std::min(j.runtime, j.estimate));
    bound = std::max(bound, j.submit + std::min(j.runtime, j.estimate));
    area += static_cast<double>(j.nodes) * p;
  }
  const auto area_bound =
      static_cast<Time>(area / static_cast<double>(machine.nodes));
  return std::max(bound, area_bound);
}

double art_lower_bound(const workload::Workload& w,
                       const sim::Machine& machine) {
  machine.validate();
  if (w.empty()) return 0.0;
  const auto n = static_cast<double>(w.size());

  // Trivial bound: every job responds in at least its own runtime.
  double runtime_sum = 0.0;
  for (const Job& j : w) {
    runtime_sum += static_cast<double>(std::min(j.runtime, j.estimate));
  }
  const double runtime_bound = runtime_sum / n;

  // Capacity bound on the sum of completion times: if C_(1) <= ... <= C_(n)
  // are the completions of ANY valid schedule, then
  //   (a) the i jobs finished by C_(i) carry at least the i smallest areas,
  //       and no schedule completes more than `nodes` node-seconds per
  //       second, so C_(i) >= prefix_smallest_areas(i) / nodes;
  //   (b) any i-element subset's largest (release + runtime) is at least
  //       the i-th smallest such value over all jobs, so C_(i) >= that.
  std::vector<double> areas;
  std::vector<double> ready;  // r_j + p_j
  areas.reserve(w.size());
  ready.reserve(w.size());
  double release_sum = 0.0;
  for (const Job& j : w) {
    const auto p = static_cast<double>(std::min(j.runtime, j.estimate));
    areas.push_back(static_cast<double>(j.nodes) * p);
    ready.push_back(static_cast<double>(j.submit) + p);
    release_sum += static_cast<double>(j.submit);
  }
  std::sort(areas.begin(), areas.end());
  std::sort(ready.begin(), ready.end());
  double completion_sum = 0.0;
  double prefix = 0.0;
  for (std::size_t i = 0; i < w.size(); ++i) {
    prefix += areas[i];
    completion_sum +=
        std::max(prefix / static_cast<double>(machine.nodes), ready[i]);
  }
  const double capacity_bound = (completion_sum - release_sum) / n;

  return std::max(runtime_bound, capacity_bound);
}

double awrt_lower_bound(const workload::Workload& w) {
  if (w.empty()) return 0.0;
  double sum = 0.0;
  for (const Job& j : w) {
    const auto p = static_cast<double>(std::min(j.runtime, j.estimate));
    sum += static_cast<double>(j.nodes) * p * p;  // weight x response >= area x runtime
  }
  return sum / static_cast<double>(w.size());
}

double potential_improvement(double measured, double bound) {
  if (measured <= 0.0) throw std::invalid_argument("potential_improvement: measured <= 0");
  if (bound < 0.0 || bound > measured) {
    // A bound above the measurement signals an invalid bound (or an
    // invalid schedule); clamp defensively to "no improvement possible".
    return 0.0;
  }
  return (measured - bound) / measured;
}

}  // namespace jsched::metrics
