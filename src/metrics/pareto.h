// Multi-criteria schedule comparison (paper §2.2, Fig. 1/2).
//
// The paper's objective-function methodology starts from Pareto-optimal
// schedules under several policy criteria: "at first all Pareto-optimal
// schedules are selected", then a partial order over them is elicited and
// an objective function derived that generates this order. These tools
// implement that pipeline over arbitrary criterion vectors.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace jsched::metrics {

/// One evaluated schedule in criterion space; all criteria are costs
/// (smaller is better — invert benefit criteria before building points).
struct CriteriaPoint {
  std::string label;           // e.g. the scheduler that produced it
  std::vector<double> costs;   // one entry per criterion
};

/// True if a weakly dominates b (a <= b everywhere, < somewhere).
bool dominates(const CriteriaPoint& a, const CriteriaPoint& b);

/// Indices of the Pareto-optimal points (no other point dominates them).
/// Deterministic: preserves input order.
std::vector<std::size_t> pareto_front(const std::vector<CriteriaPoint>& points);

/// A linear scalarization sum_i lambda_i * cost_i — the simplest objective
/// function consistent with a Pareto analysis; `weights` must match the
/// criterion count.
double scalarize(const CriteriaPoint& p, const std::vector<double>& weights);

/// Check whether the scalarization with `weights` reproduces a desired
/// partial order: for every pair (better, worse) in `preferences`
/// (indices into `points`), scalarize(points[better]) <
/// scalarize(points[worse]). Returns the number of violated preferences —
/// 0 means the objective function "generates this order" (§2.2, step 3).
std::size_t order_violations(
    const std::vector<CriteriaPoint>& points,
    const std::vector<std::pair<std::size_t, std::size_t>>& preferences,
    const std::vector<double>& weights);

}  // namespace jsched::metrics
