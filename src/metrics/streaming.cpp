#include "metrics/streaming.h"

#include <algorithm>
#include <stdexcept>

namespace jsched::metrics {
namespace {

void fnv_mix(std::uint64_t& h, std::uint64_t v) {
  for (int byte = 0; byte < 8; ++byte) {
    h ^= (v >> (8 * byte)) & 0xffu;
    h *= 1099511628211ull;
  }
}

}  // namespace

double available_node_seconds(
    const std::vector<std::pair<Time, int>>& capacity_events,
    int machine_nodes, Time makespan) {
  double available = 0.0;
  Time prev_t = 0;
  int capacity = machine_nodes;
  for (const auto& [t, cap] : capacity_events) {
    const Time clipped = std::min(t, makespan);
    if (clipped > prev_t) {
      available +=
          static_cast<double>(capacity) * static_cast<double>(clipped - prev_t);
      prev_t = clipped;
    }
    if (t >= makespan) break;
    capacity = cap;
  }
  if (prev_t < makespan) {
    available += static_cast<double>(capacity) *
                 static_cast<double>(makespan - prev_t);
  }
  return available;
}

StreamingAggregator::StreamingAggregator(int machine_nodes)
    : machine_nodes_(machine_nodes), record_fnv_(14695981039346656037ull) {}

void StreamingAggregator::on_record(JobId id, const sim::JobRecord& r,
                                    const Job& j) {
  (void)id;
  ++jobs_;
  const double response = static_cast<double>(r.response());
  const double wait = static_cast<double>(r.wait());
  const double weight =
      static_cast<double>(r.nodes) * static_cast<double>(r.end - r.start);
  response_sum_ += response;
  weighted_sum_ += weight * response;
  wait_sum_ += wait;
  busy_ += weight;
  executed_records_ += static_cast<double>(r.nodes) *
                       static_cast<double>(r.end - r.start);
  useful_ += static_cast<double>(j.nodes) *
             static_cast<double>(std::min(j.runtime, j.estimate));
  makespan_ = std::max(makespan_, r.end);
  response_stats_.add(response);
  wait_stats_.add(wait);
  fnv_mix(record_fnv_, static_cast<std::uint64_t>(r.submit));
  fnv_mix(record_fnv_, static_cast<std::uint64_t>(r.start));
  fnv_mix(record_fnv_, static_cast<std::uint64_t>(r.end));
  fnv_mix(record_fnv_,
          static_cast<std::uint64_t>(static_cast<std::int64_t>(r.nodes)));
  fnv_mix(record_fnv_, r.cancelled ? 1u : 0u);
}

void StreamingAggregator::on_attempt(const sim::AttemptRecord& attempt) {
  attempts_.push_back(attempt);
}

void StreamingAggregator::on_capacity_event(Time t, int capacity) {
  capacity_events_.emplace_back(t, capacity);
}

StreamedMetrics StreamingAggregator::finish() const {
  if (jobs_ == 0) {
    throw std::invalid_argument("streamed metrics of an empty schedule");
  }
  StreamedMetrics m;
  m.jobs = jobs_;
  const double n = static_cast<double>(jobs_);
  m.art = response_sum_ / n;
  m.awrt = weighted_sum_ / n;
  m.wait = wait_sum_ / n;
  m.makespan = makespan_;
  m.utilization =
      makespan_ > 0 ? busy_ / (static_cast<double>(machine_nodes_) *
                               static_cast<double>(makespan_))
                    : 0.0;
  m.response_stats = response_stats_;
  m.wait_stats = wait_stats_;

  // Fingerprint: the record chain was folded as records streamed by;
  // attempts and capacity events follow in batch order.
  std::uint64_t h = record_fnv_;
  for (const sim::AttemptRecord& a : attempts_) {
    fnv_mix(h, static_cast<std::uint64_t>(a.id));
    fnv_mix(h, static_cast<std::uint64_t>(a.start));
    fnv_mix(h, static_cast<std::uint64_t>(a.end));
    fnv_mix(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(a.nodes)));
    fnv_mix(h, static_cast<std::uint64_t>(a.saved));
  }
  for (const auto& [t, capacity] : capacity_events_) {
    fnv_mix(h, static_cast<std::uint64_t>(t));
    fnv_mix(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(capacity)));
  }
  m.schedule_fnv = h;

  // Resilience: the per-record sums accumulated in JobId order, then the
  // attempt folds — the exact addition order of metrics::resilience.
  ResilienceReport& r = m.resilience;
  r.executed_node_seconds = executed_records_;
  r.useful_node_seconds = useful_;
  for (const sim::AttemptRecord& a : attempts_) {
    r.executed_node_seconds +=
        static_cast<double>(a.nodes) * static_cast<double>(a.end - a.start);
  }
  r.kills = attempts_.size();
  std::vector<JobId> hit;
  hit.reserve(attempts_.size());
  for (const sim::AttemptRecord& a : attempts_) hit.push_back(a.id);
  std::sort(hit.begin(), hit.end());
  for (std::size_t i = 0; i < hit.size();) {
    std::size_t j = i;
    while (j < hit.size() && hit[j] == hit[i]) ++j;
    ++r.jobs_hit;
    r.max_resubmissions = std::max(r.max_resubmissions, j - i);
    i = j;
  }
  r.wasted_node_seconds = r.executed_node_seconds - r.useful_node_seconds;
  r.goodput_fraction = r.executed_node_seconds > 0.0
                           ? r.useful_node_seconds / r.executed_node_seconds
                           : 1.0;
  if (makespan_ > 0) {
    const double available =
        available_node_seconds(capacity_events_, machine_nodes_, makespan_);
    const double total = static_cast<double>(machine_nodes_) *
                         static_cast<double>(makespan_);
    r.availability = total > 0.0 ? available / total : 1.0;
    r.availability_weighted_utilization =
        available > 0.0 ? r.executed_node_seconds / available : 0.0;
  }
  return m;
}

}  // namespace jsched::metrics
