// Streaming metric aggregation: a sim::RecordSink folding each finished
// JobRecord into scalar accumulators as the bounded-memory simulation
// emits it, reproducing the batch pipeline bit-for-bit.
//
// Bit-identity argument: every batch metric (objectives.cpp, resilience.cpp,
// schedule_fingerprint) is a left-to-right fold over records in JobId
// order, optionally followed by folds over the attempt and capacity-event
// vectors. simulate_stream delivers records in JobId order, so each
// accumulator here performs the *same floating-point additions in the same
// order* as its batch counterpart. Attempts and capacity events are O(#
// failures) — they are buffered and folded at finish() in the exact batch
// order (records first, then attempts, then capacity events).
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "metrics/resilience.h"
#include "sim/schedule.h"
#include "sim/streaming.h"
#include "util/stats.h"
#include "util/time.h"

namespace jsched::metrics {

/// The availability integral of metrics::resilience — ∫ capacity(t) dt
/// over [0, makespan], clipping events past the makespan. Factored out so
/// the batch and streaming paths share one definition (and stay
/// bit-identical). Capacity is `machine_nodes` before the first event.
double available_node_seconds(
    const std::vector<std::pair<Time, int>>& capacity_events,
    int machine_nodes, Time makespan);

/// Everything run_one derives from a materialized Schedule, computed
/// without one.
struct StreamedMetrics {
  std::size_t jobs = 0;
  double art = 0.0;   // metrics::average_response_time
  double awrt = 0.0;  // metrics::average_weighted_response_time
  double wait = 0.0;  // metrics::average_wait_time
  Time makespan = 0;
  double utilization = 0.0;
  std::uint64_t schedule_fnv = 0;  // sim::schedule_fingerprint
  ResilienceReport resilience;

  /// Bonus distribution info the batch scalar metrics do not expose
  /// (Welford moments + min/max of per-job response and wait). Streaming
  /// only — not part of the batch-parity contract.
  util::RunningStats response_stats;
  util::RunningStats wait_stats;
};

/// Sink that aggregates as the simulation runs. O(1) state per record;
/// O(#kills + #capacity steps) total — independent of the job count.
class StreamingAggregator final : public sim::RecordSink {
 public:
  explicit StreamingAggregator(int machine_nodes);

  void on_record(JobId id, const sim::JobRecord& record,
                 const Job& j) override;
  void on_attempt(const sim::AttemptRecord& attempt) override;
  void on_capacity_event(Time t, int capacity) override;

  std::size_t jobs() const noexcept { return jobs_; }

  /// Finalize. Throws std::invalid_argument on an empty stream, mirroring
  /// the batch metrics' refusal to average an empty schedule.
  StreamedMetrics finish() const;

 private:
  int machine_nodes_;
  std::size_t jobs_ = 0;
  double response_sum_ = 0.0;
  double weighted_sum_ = 0.0;
  double wait_sum_ = 0.0;
  double busy_ = 0.0;
  double executed_records_ = 0.0;
  double useful_ = 0.0;
  Time makespan_ = 0;
  std::uint64_t record_fnv_;  // FNV chain over the records seen so far
  util::RunningStats response_stats_;
  util::RunningStats wait_stats_;
  std::vector<sim::AttemptRecord> attempts_;
  std::vector<std::pair<Time, int>> capacity_events_;
};

}  // namespace jsched::metrics
