// Resilience metrics for fault-injected schedules.
//
// A failure trace makes the classic objectives (paper §2.2) incomplete:
// two schedulers with equal response times may differ wildly in how much
// node time they burned re-executing killed work, and raw utilization
// mis-reads an outage as the scheduler's fault. These metrics separate the
// three quantities — what the machine executed, what of that was useful,
// and what was available to begin with.
#pragma once

#include <cstddef>
#include <vector>

#include "sim/schedule.h"
#include "workload/workload.h"

namespace jsched::metrics {

struct ResilienceReport {
  /// Node-seconds the machine actually executed: every attempt (killed and
  /// final) times its width.
  double executed_node_seconds = 0.0;
  /// Goodput: node-seconds of fault-free work content delivered — each
  /// job's min(runtime, estimate) times its width. Equals executed in a
  /// fault-free run.
  double useful_node_seconds = 0.0;
  /// Re-executed (lost) work plus restart overhead: executed - useful.
  double wasted_node_seconds = 0.0;
  /// useful / executed; 1.0 when nothing was wasted (or nothing ran).
  double goodput_fraction = 1.0;

  /// Number of kill events (= re-submissions) over the whole run.
  std::size_t kills = 0;
  /// Number of distinct jobs killed at least once.
  std::size_t jobs_hit = 0;
  /// Largest re-submission count of any single job.
  std::size_t max_resubmissions = 0;

  /// Time-averaged fraction of the machine that was up over
  /// [0, makespan]: integral of capacity / (nodes * makespan). 1.0 without
  /// failures.
  double availability = 1.0;
  /// Executed node-seconds over *available* node-seconds — utilization
  /// measured against the capacity that actually existed, so an outage is
  /// not mistaken for scheduler idleness. Equals plain utilization in a
  /// fault-free run.
  double availability_weighted_utilization = 0.0;
};

/// Compute the report for `s` produced over `w`. Works on fault-free
/// schedules too (wasted = 0, availability = 1).
ResilienceReport resilience(const sim::Schedule& s, const workload::Workload& w);

/// Per-job kill counts (resubmissions), indexed by JobId.
std::vector<std::size_t> resubmission_counts(const sim::Schedule& s);

}  // namespace jsched::metrics
