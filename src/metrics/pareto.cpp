#include "metrics/pareto.h"

#include <stdexcept>

namespace jsched::metrics {

bool dominates(const CriteriaPoint& a, const CriteriaPoint& b) {
  if (a.costs.size() != b.costs.size()) {
    throw std::invalid_argument("dominates: criterion count mismatch");
  }
  bool strictly = false;
  for (std::size_t i = 0; i < a.costs.size(); ++i) {
    if (a.costs[i] > b.costs[i]) return false;
    if (a.costs[i] < b.costs[i]) strictly = true;
  }
  return strictly;
}

std::vector<std::size_t> pareto_front(const std::vector<CriteriaPoint>& points) {
  std::vector<std::size_t> front;
  for (std::size_t i = 0; i < points.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < points.size() && !dominated; ++j) {
      if (j != i && dominates(points[j], points[i])) dominated = true;
    }
    if (!dominated) front.push_back(i);
  }
  return front;
}

double scalarize(const CriteriaPoint& p, const std::vector<double>& weights) {
  if (p.costs.size() != weights.size()) {
    throw std::invalid_argument("scalarize: weight count mismatch");
  }
  double v = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) v += weights[i] * p.costs[i];
  return v;
}

std::size_t order_violations(
    const std::vector<CriteriaPoint>& points,
    const std::vector<std::pair<std::size_t, std::size_t>>& preferences,
    const std::vector<double>& weights) {
  std::size_t violations = 0;
  for (const auto& [better, worse] : preferences) {
    if (better >= points.size() || worse >= points.size()) {
      throw std::invalid_argument("order_violations: preference out of range");
    }
    if (!(scalarize(points[better], weights) <
          scalarize(points[worse], weights))) {
      ++violations;
    }
  }
  return violations;
}

}  // namespace jsched::metrics
