// Objective functions (paper §2.2 / §4).
//
// "An objective function must be defined that assigns a scalar value, the
//  so-called schedule cost, to each schedule."
//
// The evaluation example derives two objectives from Institution B's
// policy rules:
//  * daytime (Rule 5): the average response time — "the sum of the
//    differences between the completion time and submission time for each
//    job divided by the number of jobs";
//  * night/weekend (Rule 6): originally the sum of idle times, replaced —
//    because a time-frame criterion does not support on-line scheduling —
//    by the average *weighted* response time "where the weight is
//    identical to the resource consumption of a job, that is, the product
//    of the execution time and the number of required nodes".
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "sim/schedule.h"
#include "util/time.h"
#include "workload/workload.h"

namespace jsched::metrics {

/// Average response time: (1/n) * sum_j (c_j - r_j).
double average_response_time(const sim::Schedule& s);

/// Average weighted response time with w_j = nodes_j x runtime_j (actual
/// resource consumption): (1/n) * sum_j w_j (c_j - r_j), the direct
/// reading of §4 ("calculated in the same fashion ... with the exception
/// that the difference ... is multiplied with the weight").
double average_weighted_response_time(const sim::Schedule& s);

/// Variant normalized by total weight instead of job count:
/// sum_j w_j (c_j - r_j) / sum_j w_j. Ordering of schedules is identical
/// (the denominator is schedule-independent); provided for comparison with
/// later AWRT literature.
double weight_normalized_response_time(const sim::Schedule& s);

/// Average wait time: (1/n) * sum_j (s_j - r_j).
double average_wait_time(const sim::Schedule& s);

/// Average response time restricted to the jobs selected by `pred`
/// (e.g. "submitted during the daytime window"); 0 when none match.
/// Backbone of the phase-split evaluation of combined schedulers (§7).
double average_response_time_if(
    const sim::Schedule& s,
    const std::function<bool(JobId, const sim::JobRecord&)>& pred);

/// Average weighted response time restricted to selected jobs; 0 when
/// none match.
double average_weighted_response_time_if(
    const sim::Schedule& s,
    const std::function<bool(JobId, const sim::JobRecord&)>& pred);

/// Average bounded slowdown: (1/n) * sum_j (c_j - r_j) / max(p_j, tau).
double average_bounded_slowdown(const sim::Schedule& s, Duration tau = 10);

/// Completion time of the last job.
Time makespan(const sim::Schedule& s);

/// Machine utilization over [0, makespan]: busy node-seconds / available
/// node-seconds.
double utilization(const sim::Schedule& s);

/// Sum of idle node-seconds within [frame_start, frame_end) — the
/// time-frame criterion of Rule 6 that the paper discusses and then
/// replaces for on-line use.
double idle_node_seconds(const sim::Schedule& s, Time frame_start,
                         Time frame_end);

/// Share of jobs of `priority_class` completed within `deadline` of
/// submission (policy-layer criterion, used by the Example 1 analysis).
double fraction_within(const sim::Schedule& s, const workload::Workload& w,
                       std::int32_t priority_class, Duration deadline);

/// Average response time restricted to one priority class; 0 when the
/// class is empty.
double class_average_response_time(const sim::Schedule& s,
                                   const workload::Workload& w,
                                   std::int32_t priority_class);

/// A named scalar objective — the "objective function" component of the
/// paper's scheduling-system decomposition, as a first-class value.
struct Objective {
  std::string name;
  std::function<double(const sim::Schedule&)> cost;
  /// True when smaller cost is better (all objectives here are costs).
  bool minimize = true;
};

/// The two objectives of the evaluation example.
Objective unweighted_objective();
Objective weighted_objective();

}  // namespace jsched::metrics
