#include "serve/feed.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <utility>

namespace jsched::serve {

namespace {

/// Split `line` into whitespace-separated tokens (no allocation per char).
std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    std::size_t j = i;
    while (j < line.size() && line[j] != ' ' && line[j] != '\t') ++j;
    if (j > i) tokens.emplace_back(line.substr(i, j - i));
    i = j;
  }
  return tokens;
}

bool to_i64(const std::string& s, std::int64_t& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  out = v;
  return true;
}

ParseResult fail(std::string* error, const std::string& why) {
  if (error != nullptr) *error = why;
  return ParseResult::kError;
}

}  // namespace

ParseResult parse_submit_line(const std::string& line, SubmitRecord& out,
                              std::string* error) {
  // Strip a trailing CR so socket clients may send CRLF.
  std::string body = line;
  if (!body.empty() && body.back() == '\r') body.pop_back();
  const std::size_t first = body.find_first_not_of(" \t");
  if (first == std::string::npos) return ParseResult::kSkip;
  if (body[first] == '#') return ParseResult::kSkip;

  std::vector<std::string> tokens = tokenize(body);
  if (tokens.size() == 1 && tokens[0] == "end") return ParseResult::kEnd;

  SubmitRecord r;
  std::size_t k = 0;
  if (tokens[0][0] == '@') {
    std::int64_t submit = 0;
    if (!to_i64(tokens[0].substr(1), submit) || submit < 0) {
      return fail(error, "bad @submit field: " + tokens[0]);
    }
    r.submit = submit;
    k = 1;
  }
  if (tokens.size() - k < 3 || tokens.size() - k > 4) {
    return fail(error,
                "expected [@submit] nodes runtime estimate [user]: " + body);
  }
  std::int64_t nodes = 0, runtime = 0, estimate = 0, user = 0;
  if (!to_i64(tokens[k], nodes) || nodes < 1) {
    return fail(error, "bad nodes field: " + tokens[k]);
  }
  if (!to_i64(tokens[k + 1], runtime) || runtime < 1) {
    return fail(error, "bad runtime field: " + tokens[k + 1]);
  }
  if (!to_i64(tokens[k + 2], estimate) || estimate < 1) {
    return fail(error, "bad estimate field: " + tokens[k + 2]);
  }
  if (tokens.size() - k == 4 && !to_i64(tokens[k + 3], user)) {
    return fail(error, "bad user field: " + tokens[k + 3]);
  }
  r.nodes = static_cast<int>(nodes);
  r.runtime = runtime;
  r.estimate = estimate;
  r.user = static_cast<std::int32_t>(user);
  out = r;
  return ParseResult::kRecord;
}

// ---------------------------------------------------------------- ScriptFeed

ScriptFeed::ScriptFeed(std::vector<SubmitRecord> records)
    : records_(std::move(records)) {
  Time prev = 0;
  for (const SubmitRecord& r : records_) {
    if (r.submit < 0) {
      throw std::invalid_argument("ScriptFeed: live (-1) submits not allowed");
    }
    if (r.submit < prev) {
      throw std::invalid_argument("ScriptFeed: submits must be sorted");
    }
    prev = r.submit;
  }
}

bool ScriptFeed::poll(Time vnow, std::vector<SubmitRecord>& out) {
  while (pos_ < records_.size() && records_[pos_].submit <= vnow) {
    out.push_back(records_[pos_++]);
  }
  return pos_ < records_.size();
}

Time ScriptFeed::next_submit() const {
  return pos_ < records_.size() ? records_[pos_].submit : kTimeInfinity;
}

// ------------------------------------------------------------- JobSourceFeed

JobSourceFeed::JobSourceFeed(workload::JobSource& source) : source_(&source) {
  pull();
}

void JobSourceFeed::pull() { has_pending_ = source_->next(pending_); }

bool JobSourceFeed::poll(Time vnow, std::vector<SubmitRecord>& out) {
  while (has_pending_ && pending_.submit <= vnow) {
    SubmitRecord r;
    r.submit = pending_.submit;
    r.nodes = pending_.nodes;
    r.runtime = pending_.runtime;
    r.estimate = pending_.estimate;
    r.user = pending_.user;
    out.push_back(r);
    pull();
  }
  return has_pending_;
}

Time JobSourceFeed::next_submit() const {
  return has_pending_ ? pending_.submit : kTimeInfinity;
}

// ---------------------------------------------------------------- FdLineFeed

FdLineFeed::FdLineFeed(int fd, bool tail, bool close_fd)
    : fd_(fd), tail_(tail), close_fd_(close_fd) {
  const int flags = fcntl(fd_, F_GETFL, 0);
  if (flags >= 0) fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
}

FdLineFeed::~FdLineFeed() {
  if (close_fd_ && fd_ >= 0) ::close(fd_);
}

void FdLineFeed::drain_fd() {
  if (eof_ || ended_) return;
  char buf[16384];
  while (true) {
    const ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n > 0) {
      partial_.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) {
      // In tail mode EOF just means "caught up" — keep watching.
      if (!tail_) terminate_feed();
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;  // no data right now
    // Hard error (EBADF, EIO, ...): this fd will never produce data again;
    // end the feed (even in tail mode) so the daemon doesn't poll forever.
    std::fprintf(stderr, "feed: read: %s\n", std::strerror(errno));
    terminate_feed();
    return;
  }
}

void FdLineFeed::terminate_feed() {
  eof_ = true;
  // A final line without a trailing newline is still a line: terminate it
  // so parse_buffered delivers it instead of dropping it silently.
  if (!partial_.empty() && partial_.back() != '\n') partial_.push_back('\n');
}

void FdLineFeed::parse_buffered() {
  std::size_t start = 0;
  while (true) {
    const std::size_t nl = partial_.find('\n', start);
    if (nl == std::string::npos) break;
    const std::string line = partial_.substr(start, nl - start);
    start = nl + 1;
    if (ended_) continue;  // protocol over; drop trailing lines
    SubmitRecord r;
    std::string err;
    switch (parse_submit_line(line, r, &err)) {
      case ParseResult::kRecord:
        parsed_.push_back(r);
        break;
      case ParseResult::kEnd:
        ended_ = true;
        break;
      case ParseResult::kError:
        ++parse_errors_;
        std::fprintf(stderr, "feed: %s\n", err.c_str());
        break;
      case ParseResult::kSkip:
        break;
    }
  }
  partial_.erase(0, start);
}

bool FdLineFeed::poll(Time vnow, std::vector<SubmitRecord>& out) {
  drain_fd();
  parse_buffered();
  while (!parsed_.empty()) {
    const SubmitRecord& front = parsed_.front();
    if (front.submit >= 0 && front.submit > vnow) break;
    out.push_back(front);
    parsed_.pop_front();
  }
  if (parsed_.empty() && (ended_ || eof_)) return false;
  return true;
}

Time FdLineFeed::next_submit() const {
  if (!parsed_.empty() && parsed_.front().submit >= 0) {
    return parsed_.front().submit;
  }
  return kTimeInfinity;
}

// ------------------------------------------------------------------- TcpFeed

TcpFeed::TcpFeed(std::uint16_t port) : listen_fd_(-1), port_(0) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error("TcpFeed: socket() failed");
  }
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // localhost only
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    ::close(listen_fd_);
    throw std::runtime_error("TcpFeed: cannot bind 127.0.0.1:" +
                             std::to_string(port));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    port_ = ntohs(bound.sin_port);
  }
}

TcpFeed::~TcpFeed() {
  for (const Client& c : clients_) ::close(c.fd);
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void TcpFeed::accept_clients() {
  constexpr std::chrono::milliseconds kBackoffMin{10};
  constexpr std::chrono::milliseconds kBackoffMax{2000};
  if (accept_backoff_.count() > 0 &&
      std::chrono::steady_clock::now() < accept_retry_at_) {
    return;  // still backing off after resource exhaustion
  }
  while (true) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK);
    if (fd >= 0) {
      accept_backoff_ = std::chrono::milliseconds{0};
      clients_.push_back(Client{fd, {}});
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      accept_backoff_ = std::chrono::milliseconds{0};
      return;  // no pending connections
    }
    if (errno == ECONNABORTED) {
      // The peer gave up during the handshake; its slot in the backlog is
      // simply gone. Count it, take the next pending connection.
      ++transient_accept_errors_;
      continue;
    }
    if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
        errno == ENOMEM) {
      // Resource exhaustion is transient by definition — fds free up when
      // clients hang up. Killing the listener here would turn a burst of
      // connections into a permanent outage; back off instead (capped
      // exponential: retrying instantly would busy-loop on EMFILE) and
      // keep serving the clients already connected.
      ++transient_accept_errors_;
      accept_backoff_ = accept_backoff_.count() == 0
                            ? kBackoffMin
                            : std::min(accept_backoff_ * 2, kBackoffMax);
      accept_retry_at_ = std::chrono::steady_clock::now() + accept_backoff_;
      std::fprintf(stderr,
                   "feed: accept: %s (transient; retrying in %lldms)\n",
                   std::strerror(errno),
                   static_cast<long long>(accept_backoff_.count()));
      return;
    }
    // Anything else is unexpected; log it and keep the listener alive —
    // established clients are unaffected either way.
    std::fprintf(stderr, "feed: accept: %s\n", std::strerror(errno));
    return;
  }
}

void TcpFeed::drain_clients() {
  for (std::size_t i = 0; i < clients_.size();) {
    Client& c = clients_[i];
    char buf[16384];
    bool closed = false;
    while (true) {
      const ssize_t n = ::read(c.fd, buf, sizeof(buf));
      if (n > 0) {
        c.partial.append(buf, static_cast<std::size_t>(n));
        continue;
      }
      if (n == 0) {
        closed = true;
        break;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      closed = true;  // hard error: treat as a hangup
      break;
    }
    // A closing client's final line counts even without a trailing newline.
    if (closed && !c.partial.empty() && c.partial.back() != '\n') {
      c.partial.push_back('\n');
    }
    // Parse complete lines from this client's buffer.
    std::size_t start = 0;
    while (true) {
      const std::size_t nl = c.partial.find('\n', start);
      if (nl == std::string::npos) break;
      const std::string line = c.partial.substr(start, nl - start);
      start = nl + 1;
      if (ended_) continue;
      SubmitRecord r;
      std::string err;
      switch (parse_submit_line(line, r, &err)) {
        case ParseResult::kRecord:
          parsed_.push_back(r);
          break;
        case ParseResult::kEnd:
          ended_ = true;
          break;
        case ParseResult::kError:
          ++parse_errors_;
          std::fprintf(stderr, "feed: %s\n", err.c_str());
          break;
        case ParseResult::kSkip:
          break;
      }
    }
    c.partial.erase(0, start);
    if (closed) {
      ::close(c.fd);
      clients_.erase(clients_.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
}

bool TcpFeed::poll(Time vnow, std::vector<SubmitRecord>& out) {
  if (!ended_) {
    accept_clients();
    drain_clients();
  }
  while (!parsed_.empty()) {
    const SubmitRecord& front = parsed_.front();
    if (front.submit >= 0 && front.submit > vnow) break;
    out.push_back(front);
    parsed_.pop_front();
  }
  return !(ended_ && parsed_.empty());
}

Time TcpFeed::next_submit() const {
  if (!parsed_.empty() && parsed_.front().submit >= 0) {
    return parsed_.front().submit;
  }
  return kTimeInfinity;
}

// ----------------------------------------------------------- TcpSubmitClient

std::string format_submit_line(const SubmitRecord& r) {
  char buf[128];
  if (r.submit >= 0) {
    std::snprintf(buf, sizeof(buf),
                  "@%" PRId64 " %d %" PRId64 " %" PRId64 " %" PRId32,
                  static_cast<std::int64_t>(r.submit), r.nodes,
                  static_cast<std::int64_t>(r.runtime),
                  static_cast<std::int64_t>(r.estimate), r.user);
  } else {
    std::snprintf(buf, sizeof(buf), "%d %" PRId64 " %" PRId64 " %" PRId32,
                  r.nodes, static_cast<std::int64_t>(r.runtime),
                  static_cast<std::int64_t>(r.estimate), r.user);
  }
  return buf;
}

TcpSubmitClient::TcpSubmitClient(std::uint16_t port, std::size_t max_attempts)
    : port_(port), max_attempts_(max_attempts) {}

TcpSubmitClient::~TcpSubmitClient() { drop_connection(); }

void TcpSubmitClient::drop_connection() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool TcpSubmitClient::ensure_connected() {
  constexpr std::chrono::milliseconds kBackoffMin{10};
  constexpr std::chrono::milliseconds kBackoffMax{1000};
  if (fd_ >= 0) return true;
  std::size_t failures = 0;
  while (true) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd >= 0) {
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      addr.sin_port = htons(port_);
      int rc;
      do {
        rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                       sizeof(addr));
      } while (rc != 0 && errno == EINTR);
      if (rc == 0) {
        fd_ = fd;
        backoff_ = std::chrono::milliseconds{0};
        if (ever_connected_) ++reconnects_;
        ever_connected_ = true;
        return true;
      }
      ::close(fd);
    }
    ++failures;
    if (max_attempts_ != 0 && failures >= max_attempts_) return false;
    backoff_ = backoff_.count() == 0 ? kBackoffMin
                                     : std::min(backoff_ * 2, kBackoffMax);
    std::this_thread::sleep_for(backoff_);
  }
}

bool TcpSubmitClient::send_line(const std::string& line) {
  const std::string wire = line + "\n";
  while (true) {
    if (!ensure_connected()) return false;
    std::size_t off = 0;
    bool broken = false;
    while (off < wire.size()) {
      const ssize_t n = ::send(fd_, wire.data() + off, wire.size() - off,
                               MSG_NOSIGNAL);
      if (n > 0) {
        off += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      broken = true;  // EPIPE/ECONNRESET/...: daemon went away mid-line
      break;
    }
    if (!broken) return true;
    // The daemon may have read a prefix of this line before dying; its
    // restart drops the torn line at the buffer level (no trailing \n from
    // a reset socket), so resending the whole line after reconnect is safe.
    drop_connection();
  }
}

bool TcpSubmitClient::send(const SubmitRecord& r) {
  return send_line(format_submit_line(r));
}

bool TcpSubmitClient::send_end() { return send_line("end"); }

}  // namespace jsched::serve
