#include "serve/loadgen.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace jsched::serve {

void OpenLoopConfig::validate() const {
  if (rate < 0) throw std::invalid_argument("loadgen: rate must be >= 0");
  if (rate > 0 && horizon == 0 && job_count == 0) {
    throw std::invalid_argument(
        "loadgen: a Poisson stream needs a horizon or a job_count");
  }
  if (!crons.empty() && horizon == 0) {
    throw std::invalid_argument("loadgen: cron templates need a horizon");
  }
  if (rate == 0 && crons.empty()) {
    throw std::invalid_argument("loadgen: no arrival process configured");
  }
  if (nodes_max < 1 || runtime_min < 1 || runtime_max < runtime_min ||
      estimate_factor_max < 1.0) {
    throw std::invalid_argument("loadgen: bad job-shape parameters");
  }
  for (const CronTemplate& c : crons) {
    if (c.period < 1 || c.offset < 0 || c.nodes < 1 || c.runtime < 1 ||
        c.estimate < 1) {
      throw std::invalid_argument("loadgen: bad cron template");
    }
  }
}

OpenLoopSource::OpenLoopSource(const OpenLoopConfig& config)
    : config_(config), arrivals_(config.seed), shapes_(arrivals_.split()) {
  config_.validate();
  if (config_.rate > 0) {
    next_poisson_ = 0;
    advance_poisson();  // first arrival: one exponential gap from 0
  }
  next_cron_.reserve(config_.crons.size());
  for (const CronTemplate& c : config_.crons) {
    next_cron_.push_back(c.offset < config_.horizon ? c.offset
                                                    : kTimeInfinity);
  }
}

void OpenLoopSource::advance_poisson() {
  if (config_.job_count > 0 && poisson_emitted_ >= config_.job_count) {
    next_poisson_ = kTimeInfinity;
    return;
  }
  poisson_clock_ += arrivals_.exponential(config_.rate);
  const Time t = static_cast<Time>(std::floor(poisson_clock_));
  if (config_.horizon > 0 && t >= config_.horizon) {
    next_poisson_ = kTimeInfinity;
    return;
  }
  next_poisson_ = t;
}

Time OpenLoopSource::next_submit() const {
  Time t = next_poisson_;
  for (Time c : next_cron_) t = std::min(t, c);
  return t;
}

bool OpenLoopSource::poll(Time vnow, std::vector<SubmitRecord>& out) {
  while (true) {
    // Earliest pending arrival across the Poisson stream and every cron.
    Time t = next_poisson_;
    std::size_t cron = next_cron_.size();  // size() = the Poisson stream
    for (std::size_t i = 0; i < next_cron_.size(); ++i) {
      if (next_cron_[i] < t) {
        t = next_cron_[i];
        cron = i;
      }
    }
    if (t == kTimeInfinity || t > vnow) break;

    SubmitRecord r;
    r.submit = t;
    if (cron < next_cron_.size()) {
      const CronTemplate& c = config_.crons[cron];
      r.nodes = c.nodes;
      r.runtime = c.runtime;
      r.estimate = c.estimate;
      r.user = c.user;
      const Time next = next_cron_[cron] + c.period;
      next_cron_[cron] = next < config_.horizon ? next : kTimeInfinity;
    } else {
      // Ad-hoc job: log2-uniform width, log-uniform runtime, padded
      // estimate. Every job consumes the same number of shape draws so
      // the stream is stable under parameter changes.
      const double width_exp = shapes_.uniform(
          0.0, std::log2(static_cast<double>(config_.nodes_max) + 1.0));
      r.nodes = std::clamp(static_cast<int>(std::exp2(width_exp)), 1,
                           config_.nodes_max);
      r.runtime = std::max<Duration>(
          1, static_cast<Duration>(
                 shapes_.log_uniform(static_cast<double>(config_.runtime_min),
                                     static_cast<double>(config_.runtime_max))));
      const double factor = shapes_.uniform(1.0, config_.estimate_factor_max);
      const bool exact = shapes_.bernoulli(config_.exact_estimate_prob);
      r.estimate = exact ? r.runtime
                         : std::max<Duration>(
                               r.runtime,
                               static_cast<Duration>(
                                   static_cast<double>(r.runtime) * factor));
      r.user = static_cast<std::int32_t>(shapes_.uniform_int(0, 15));
      ++poisson_emitted_;
      advance_poisson();
    }
    out.push_back(r);
    ++emitted_;
  }
  return next_submit() != kTimeInfinity;
}

}  // namespace jsched::serve
