#include "serve/journal.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <sstream>
#include <utility>

namespace jsched::serve {

namespace {

constexpr char kTag[] = "s1";

std::uint64_t decision_key(JobId id, std::uint32_t epoch) noexcept {
  return (static_cast<std::uint64_t>(id) << 32) | epoch;
}

}  // namespace

AdmissionJournal::AdmissionJournal(std::string path)
    : log_(std::move(path)) {
  load();
}

AdmissionJournal::AdmissionJournal(std::string path,
                                   util::AppendLog::Durability durability)
    : log_(std::move(path), durability) {
  load();
}

void AdmissionJournal::load() {
  std::size_t line_no = 0;
  for (const std::string& line : util::AppendLog::read_lines(log_.path())) {
    ++line_no;
    std::string payload;
    try {
      if (!util::AppendLog::check_record(line, kTag, &payload)) {
        continue;  // unknown record versions are skipped (forward compat)
      }
    } catch (const util::CorruptRecordError& e) {
      throw util::CorruptRecordError("admission journal " + log_.path() +
                                     ": " + e.what() + " at record " +
                                     std::to_string(line_no));
    }
    std::istringstream in(payload);
    std::string verb;
    in >> verb;
    const auto fail = [&](const char* what) -> JournalReplayError {
      return JournalReplayError("admission journal " + log_.path() + ": " +
                                what + " at record " +
                                std::to_string(line_no));
    };
    const auto next_i64 = [&]() -> std::int64_t {
      std::int64_t v = 0;
      if (!(in >> v)) throw fail("truncated record");
      return v;
    };
    if (verb == "run") {
      (void)next_i64();
      ++runs_;
    } else if (verb == "admit") {
      JournaledJob j;
      j.record.submit = next_i64();
      j.record.nodes = static_cast<int>(next_i64());
      j.record.runtime = next_i64();
      j.record.estimate = next_i64();
      j.record.user = static_cast<std::int32_t>(next_i64());
      const std::int64_t flags = next_i64();
      j.late = (flags & 1) != 0;
      j.delayed = (flags & 2) != 0;
      if (j.record.submit < 0 || j.record.nodes < 1 || j.record.runtime < 1 ||
          j.record.estimate < 1) {
        throw fail("admit record with invalid fields");
      }
      late_at_open_ += j.late ? 1 : 0;
      delayed_at_open_ += j.delayed ? 1 : 0;
      last_event_time_ = std::max(last_event_time_, j.record.submit);
      admitted_.push_back(j);
      ++consumed_at_open_;
    } else if (verb == "drop") {
      const std::int64_t kind = next_i64();
      if (kind < 0 || kind > 2) throw fail("drop record with unknown kind");
      ++drops_[kind];
      ++consumed_at_open_;
    } else if (verb == "start" || verb == "done") {
      const std::int64_t id = next_i64();
      const std::int64_t attempt = next_i64();
      const Time t = next_i64();
      if (id < 0 || static_cast<std::size_t>(id) >= admitted_.size()) {
        throw fail("decision record for a job never admitted");
      }
      if (attempt < 0 || attempt > 0xffffffffll) {
        throw fail("decision record with a bad epoch");
      }
      DecisionMap& map = verb[0] == 's' ? starts_ : dones_;
      map[decision_key(static_cast<JobId>(id),
                       static_cast<std::uint32_t>(attempt))] = t;
      last_event_time_ = std::max(last_event_time_, t);
    }
    // Unknown verbs under a valid checksum: written by a newer daemon;
    // skipping them keeps old binaries able to at least open the file.
  }
  completed_at_open_ = dones_.size();  // one done per job, at its last epoch
}

void AdmissionJournal::append_record(const std::string& payload) {
  log_.append_checked(kTag, payload);
  ++appends_;
}

void AdmissionJournal::begin_run() {
  append_record("run " + std::to_string(runs_));
}

void AdmissionJournal::record_admit(const SubmitRecord& r, bool late,
                                    bool delayed) {
  char buf[160];
  const int flags = (late ? 1 : 0) | (delayed ? 2 : 0);
  std::snprintf(buf, sizeof(buf),
                "admit %" PRId64 " %d %" PRId64 " %" PRId64 " %" PRId32 " %d",
                static_cast<std::int64_t>(r.submit), r.nodes,
                static_cast<std::int64_t>(r.runtime),
                static_cast<std::int64_t>(r.estimate), r.user, flags);
  JournaledJob j;
  j.record = r;
  j.late = late;
  j.delayed = delayed;
  admitted_.push_back(j);
  append_record(buf);
}

void AdmissionJournal::record_drop(DropKind kind) {
  ++drops_[static_cast<int>(kind)];
  append_record("drop " + std::to_string(static_cast<int>(kind)));
}

bool AdmissionJournal::record_decision(const char* verb, DecisionMap& map,
                                       JobId id, std::uint32_t epoch,
                                       Time t) {
  if (static_cast<std::size_t>(id) >= admitted_.size()) {
    throw JournalReplayError("admission journal " + log_.path() + ": " +
                             verb + " for job " + std::to_string(id) +
                             " which was never admitted");
  }
  const auto it = map.find(decision_key(id, epoch));
  if (it != map.end()) {
    if (it->second == t) return true;  // replayed decision: suppress
    throw JournalReplayError(
        "admission journal " + log_.path() + ": replay diverged — " + verb +
        " of job " + std::to_string(id) + " (epoch " + std::to_string(epoch) +
        ") re-derived at t=" + std::to_string(t) + " but journaled at t=" +
        std::to_string(it->second) +
        " (journal written by a different feed, spec or machine?)");
  }
  map.emplace(decision_key(id, epoch), t);
  char buf[80];
  std::snprintf(buf, sizeof(buf), "%s %u %u %" PRId64, verb, id, epoch,
                static_cast<std::int64_t>(t));
  append_record(buf);
  return false;
}

bool AdmissionJournal::record_start(JobId id, std::uint32_t epoch, Time t) {
  return record_decision("start", starts_, id, epoch, t);
}

bool AdmissionJournal::record_done(JobId id, std::uint32_t epoch, Time t) {
  return record_decision("done", dones_, id, epoch, t);
}

}  // namespace jsched::serve
