// SLO report serialization for the serve daemon.
//
// One JSON schema serves three consumers: schedd's final summary (written
// on clean exit AND on signal drain — the operator always gets numbers),
// bench/serve_latency's BENCH_serve.json (many labeled runs in one file),
// and the CI smoke job, which parses the summary and enforces a p99
// decision-latency budget. Latencies are nanoseconds; quantiles come from
// the mergeable log-bucketed histogram (<= 3.2% overstatement, exact
// counts).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "serve/daemon.h"

namespace jsched::serve {

/// Identification block of one serve run.
struct ServeRunMeta {
  std::string label;      // e.g. "FCFS+EASY @ 4x"
  std::string source;     // e.g. "replay:ctc-79164" / "loadgen:rate=40"
  double speed = 0.0;     // 0 = free-run
  std::uint64_t seed = 0; // 0 = not applicable
};

/// One run as a JSON object (indented by `indent` spaces, no trailing
/// newline): {"label": ..., "decision_latency_ns": {"p50": ...}, ...}.
std::string serve_run_json(const ServeRunMeta& meta, const ServeReport& report,
                           int indent);

/// Write the standalone summary file schedd emits:
/// {"serve_summary": <run object>}. Warns on stderr when the file cannot
/// be opened.
void write_serve_summary(const std::string& path, const ServeRunMeta& meta,
                         const ServeReport& report);

/// Write BENCH_serve.json: {"benchmark": "serve_latency", "runs": [...]}.
/// `extra`, when nonempty, is a pre-rendered top-level JSON member (e.g.
/// `"recovery": [...]`) appended after "runs" — how the bench publishes
/// sections that are not per-run reports.
void write_serve_bench(const std::string& path,
                       const std::vector<ServeRunMeta>& metas,
                       const std::vector<ServeReport>& reports,
                       const std::string& extra = "");

}  // namespace jsched::serve
