#include "serve/daemon.h"

#include <algorithm>
#include <cmath>
#include <csignal>
#include <deque>
#include <queue>
#include <stdexcept>
#include <vector>

#include "serve/journal.h"

namespace jsched::serve {

namespace {

/// A scheduled completion, ordered (t, id) like the offline simulator's.
/// `epoch` snapshots the job's kill counter at start so completions of
/// killed attempts are recognized as stale.
struct Completion {
  Time t;
  JobId id;
  std::uint32_t epoch;
  bool operator>(const Completion& o) const noexcept {
    return t != o.t ? t > o.t : id > o.id;
  }
};

/// Per-live-job state (the serve twin of the streaming simulator's Slot):
/// jobs admitted but whose record is not yet final. The fault fields are
/// inert (epoch 0, overheads 0) when no trace is active, keeping the
/// fault-free path bit-identical to the pre-fault loop.
struct Slot {
  Job job;
  sim::JobRecord rec;
  std::uint32_t epoch = 0;
  Duration rem_life = 0;
  Duration pending_overhead = 0;
  Duration charged_overhead = 0;
  Time start_of = 0;
  bool running = false;
  bool done = false;
};

}  // namespace

ServeReport serve(Feed& feed, const ServeOptions& options) {
  options.machine.validate();
  if (options.queue_capacity < 1) {
    throw std::invalid_argument("serve: queue_capacity must be >= 1");
  }
  if (options.speed < 0) {
    throw std::invalid_argument("serve: speed must be >= 0");
  }
  const bool faults_active = options.faults.active();
  if (faults_active) {
    const fault::FailureTrace& trace = *options.faults.trace;
    if (trace.machine_nodes != options.machine.nodes) {
      throw std::invalid_argument(
          "serve: failure trace built for " +
          std::to_string(trace.machine_nodes) + " nodes but the machine has " +
          std::to_string(options.machine.nodes));
    }
    options.faults.recovery.validate();
  }
  const fault::RecoveryOptions& recovery = options.faults.recovery;
  const bool checkpointing =
      faults_active &&
      recovery.policy == fault::RecoveryPolicy::kCheckpointRestart;
  AdmissionJournal* const journal = options.journal;
  if (options.chaos_kill_after_appends > 0 && journal == nullptr) {
    throw std::invalid_argument(
        "serve: chaos_kill_after_appends requires a journal");
  }

  util::Clock& clock =
      options.clock != nullptr ? *options.clock : util::real_clock();
  const bool paced_at_start = options.speed > 0;
  bool paced = paced_at_start;
  const double speed = options.speed;
  const util::Clock::time_point epoch = clock.now();

  ServeReport report;
  report.min_capacity = options.machine.nodes;

  // ---- Recovery preload. A journal with history turns the loop's first
  // phase into a replay: the recovered admissions feed the event loop
  // (bypassing admit() — they were stamped by the dead run), the feed
  // stays un-polled until the replay drains, and the dead run's
  // drop/late/delay counters are restored so the final report reads as if
  // the daemon had never died.
  std::deque<SubmitRecord> replay_queue;
  std::size_t skip_feed = 0;
  Time start_virtual = 0;
  if (journal != nullptr && journal->has_history()) {
    report.recovered = true;
    report.recovered_jobs = journal->admitted().size();
    report.recovered_completed = journal->completed_at_open();
    for (const JournaledJob& j : journal->admitted()) {
      replay_queue.push_back(j.record);
    }
    report.late_arrivals = journal->late_at_open();
    report.delayed_admissions = journal->delayed_at_open();
    report.rejected_invalid = journal->dropped_invalid();
    report.shed_capacity = journal->dropped_shed_capacity();
    report.shed_backlog = journal->dropped_shed_backlog();
    if (options.feed_restarts_from_start) {
      skip_feed = journal->consumed_feed_records();
    }
    // Resume the virtual clock at the last journaled instant: the replay
    // runs at memory speed regardless of pacing, and wall-time mapping
    // continues from where the dead run reached, not from zero.
    start_virtual = journal->last_event_time();
    if (options.log) {
      options.log("journal " + journal->path() + ": replaying " +
                  std::to_string(report.recovered_jobs) + " admission(s) (" +
                  std::to_string(report.recovered_completed) +
                  " completed), skipping " + std::to_string(skip_feed) +
                  " consumed feed record(s), resuming at t=" +
                  std::to_string(start_virtual));
    }
  }
  if (journal != nullptr) journal->begin_run();

  // Crash drill: die *for real* once this run has journaled enough. Placed
  // after each append point so the kill lands mid-stream, between a
  // journaled decision and whatever would have followed it.
  const auto chaos_tick = [&] {
    if (options.chaos_kill_after_appends > 0 &&
        journal->appends() >= options.chaos_kill_after_appends) {
      std::raise(SIGKILL);
    }
  };

  // Virtual/wall mapping. vnow = V0 + floor(elapsed * speed); an event at
  // virtual t falls due at epoch + ceil((t - V0) / speed) — the ceil
  // guarantees vnow(due(t)) >= t, so sleeping until due never wakes
  // early, and anything at or before the resume point V0 is due at once.
  const Time v0 = start_virtual;
  const auto vnow = [&]() -> Time {
    if (!paced) return kTimeInfinity;
    const auto elapsed = std::chrono::duration_cast<std::chrono::nanoseconds>(
        clock.now() - epoch);
    return v0 + static_cast<Time>(std::floor(
                    static_cast<double>(elapsed.count()) * speed * 1e-9));
  };
  const auto due_wall = [&](Time t) -> util::Clock::time_point {
    if (t <= v0) return epoch;
    const double ns = std::ceil(static_cast<double>(t - v0) * 1e9 / speed);
    return epoch + std::chrono::nanoseconds(static_cast<std::int64_t>(ns));
  };

  auto scheduler = options.scheduler_factory
                       ? options.scheduler_factory(options.spec)
                       : core::make_scheduler(options.spec);
  scheduler->reset(options.machine);

  report.scheduler_name = scheduler->name();
  metrics::StreamingAggregator aggregator(options.machine.nodes);

  std::priority_queue<Completion, std::vector<Completion>, std::greater<>>
      completions;
  std::deque<Slot> window;  // slots for ids [frontier, frontier+size)
  JobId frontier = 0;
  JobId next_id = 0;
  std::size_t undone = 0;
  int capacity = options.machine.nodes;
  int free_nodes = capacity;
  std::size_t next_fault = 0;
  std::vector<JobId> active;  // running jobs, for fault victim selection
  if (faults_active) active.reserve(64);
  Time prev_t = -1;

  std::deque<SubmitRecord> admission;  // accepted, not yet delivered
  std::deque<SubmitRecord> holdover;   // polled, blocked on a full queue
  std::vector<SubmitRecord> batch;
  std::vector<JobId> starts;
  std::vector<JobId> completed;
  std::vector<JobId> resubmit;
  starts.reserve(64);
  completed.reserve(64);
  bool feed_open = true;
  Time last_stamp = v0;  // admission stamps are non-decreasing

  const auto slot_of = [&](JobId id) -> Slot& { return window[id - frontier]; };

  // Graceful degradation: under faults the backlog bound shrinks with the
  // surviving capacity (never below 1 — a transient total outage should
  // not shed the job that would start the moment nodes return). With no
  // faults, or a full machine, this is exactly options.max_backlog.
  const auto effective_max_backlog = [&]() -> std::size_t {
    if (options.max_backlog == 0) return 0;
    if (!faults_active || capacity >= options.machine.nodes) {
      return options.max_backlog;
    }
    if (capacity <= 0) return 1;
    const std::size_t scaled =
        options.max_backlog * static_cast<std::size_t>(capacity) /
        static_cast<std::size_t>(options.machine.nodes);
    return std::max<std::size_t>(scaled, 1);
  };

  // Stamp + enqueue one polled record; drops are counted (and journaled —
  // a dropped record is still a *consumed* one). `from_holdover` marks
  // records admitted late under kBlock backpressure.
  const auto admit = [&](SubmitRecord r, bool from_holdover) {
    if (r.nodes < 1 || r.runtime < 1 || r.estimate < 1 ||
        r.nodes > options.machine.nodes) {
      ++report.rejected_invalid;
      if (journal != nullptr) {
        journal->record_drop(DropKind::kInvalid);
        chaos_tick();
      }
      if (options.log) {
        options.log("rejected: " + std::to_string(r.nodes) + " nodes / " +
                    std::to_string(r.estimate) + "s estimate (machine has " +
                    std::to_string(options.machine.nodes) + " nodes)");
      }
      return;
    }
    const std::size_t backlog = effective_max_backlog();
    if (backlog > 0 &&
        scheduler->queue_length() + admission.size() >= backlog) {
      ++report.shed_backlog;
      if (journal != nullptr) {
        journal->record_drop(DropKind::kShedBacklog);
        chaos_tick();
      }
      return;
    }
    // Time can only move forward: a live record is stamped "now", and a
    // timed record that shows up after its moment is clamped to the
    // monotone floor (counted — late explicit submits are a client bug
    // worth surfacing, not a daemon crash).
    const Time floor_t = std::max<Time>(last_stamp, std::max<Time>(prev_t, 0));
    Time stamp;
    bool late = false;
    if (r.submit < 0) {
      const Time v = paced ? vnow() : floor_t;
      stamp = std::max(v, floor_t);
    } else {
      stamp = std::max(r.submit, floor_t);
      if (stamp != r.submit) {
        ++report.late_arrivals;
        late = true;
      }
    }
    if (from_holdover) ++report.delayed_admissions;
    r.submit = stamp;
    last_stamp = stamp;
    if (journal != nullptr) {
      journal->record_admit(r, late, from_holdover);
      chaos_tick();
    }
    admission.push_back(r);
    report.peak_admission_queue =
        std::max(report.peak_admission_queue, admission.size());
  };

  // Deliver one admitted record to the scheduler at time `t` — shared by
  // the replay queue and the live admission queue, which is what makes a
  // recovered job indistinguishable from a freshly admitted one.
  const auto deliver = [&](const SubmitRecord& r, Time t) {
    window.emplace_back();
    Slot& s = window.back();
    s.job.id = next_id++;
    s.job.submit = r.submit;
    s.job.nodes = r.nodes;
    s.job.runtime = r.runtime;
    s.job.estimate = r.estimate;
    s.job.user = r.user;
    s.rem_life = std::min(r.runtime, r.estimate);
    ++undone;
    ++report.submitted;
    scheduler->on_submit(Submission(s.job), t);
  };

  auto last_report = clock.now();

  while (true) {
    // Signals: 1 = drain (stop intake, finish at full speed), 2 = abort.
    if (options.poll_signal) {
      const int sig = options.poll_signal();
      if (sig >= 2) {
        report.aborted = true;
        break;
      }
      if (sig >= 1 && !report.drained) {
        report.drained = true;
        feed_open = false;
        paced = false;
        report.dropped_on_drain += holdover.size();
        holdover.clear();
        if (options.log) {
          options.log("drain: feed closed, finishing " +
                      std::to_string(undone + admission.size() +
                                     replay_queue.size()) +
                      " admitted job(s)");
        }
      }
    }

    if (!feed_open && replay_queue.empty() && holdover.empty() &&
        admission.empty() && undone == 0) {
      break;  // served everything
    }

    const bool replaying = !replay_queue.empty();

    // Move blocked records into the queue as space frees up.
    while (!holdover.empty() && admission.size() < options.queue_capacity) {
      admit(holdover.front(), /*from_holdover=*/true);
      holdover.pop_front();
    }

    // Purge stale completion entries so the next-event time is real. An id
    // below the frontier is a dead epoch of a job that has since finished.
    while (!completions.empty()) {
      const Completion& top = completions.top();
      if (top.id >= frontier && top.epoch == slot_of(top.id).epoch) break;
      completions.pop();
    }

    // Next event from local state alone.
    Time t = kTimeInfinity;
    if (replaying) t = replay_queue.front().submit;
    if (!admission.empty()) t = std::min(t, admission.front().submit);
    if (!completions.empty()) t = std::min(t, completions.top().t);
    if (faults_active) {
      const auto& events = options.faults.trace->events;
      if (next_fault < events.size()) t = std::min(t, events[next_fault].t);
    }
    const Time wake = scheduler->next_wakeup(prev_t);
    if (wake > prev_t && wake < t) t = wake;

    // Poll the feed. Paced: deliver whatever wall time has made due.
    // Free-run: deliver only up to the next event (min(t, next_submit)) so
    // a replayed trace streams through the bounded queue instead of being
    // inhaled whole. During journal replay the feed is not touched at all:
    // the recovered admissions must rebuild the exact pre-crash state
    // before any fresh record can influence a decision.
    if (feed_open && !replaying && holdover.empty() &&
        (options.overload == OverloadPolicy::kShed ||
         admission.size() < options.queue_capacity)) {
      const Time ns = feed.next_submit();
      const Time poll_at = paced ? vnow() : std::min(t, ns);
      batch.clear();
      feed_open = feed.poll(poll_at, batch);
      for (const SubmitRecord& r : batch) {
        if (skip_feed > 0) {
          --skip_feed;  // consumed by the journaled run: already replayed
          continue;
        }
        if (admission.size() >= options.queue_capacity) {
          if (options.overload == OverloadPolicy::kShed) {
            ++report.shed_capacity;
            if (journal != nullptr) {
              journal->record_drop(DropKind::kShedCapacity);
              chaos_tick();
            }
          } else {
            holdover.push_back(r);
          }
          continue;
        }
        if (!holdover.empty()) {
          holdover.push_back(r);  // keep arrival order behind blocked ones
          continue;
        }
        admit(r, /*from_holdover=*/false);
      }
      // Recompute the event horizon — the poll may have admitted earlier
      // arrivals.
      t = kTimeInfinity;
      if (!admission.empty()) t = admission.front().submit;
      if (!completions.empty()) t = std::min(t, completions.top().t);
      if (faults_active) {
        const auto& events = options.faults.trace->events;
        if (next_fault < events.size()) t = std::min(t, events[next_fault].t);
      }
      const Time wake2 = scheduler->next_wakeup(prev_t);
      if (wake2 > prev_t && wake2 < t) t = wake2;
    }

    // The replay gate: while the feed still knows of arrivals at or before
    // t, admit them first — equal-submit batches must reach the scheduler
    // together, exactly as the offline simulator delivers them. A full
    // kBlock queue overrides the gate (the arrival will be delayed; that
    // is what backpressure means). An idle live feed reports kTimeInfinity
    // and must not trip the gate: with t also infinite that would spin the
    // loop (and feed due_wall an unrepresentable time) instead of falling
    // through to the idle sleep below. Journal replay bypasses the gate
    // for the same reason it bypasses the poll.
    if (feed_open && !replaying && holdover.empty()) {
      const Time ns = feed.next_submit();
      if (ns != kTimeInfinity && ns <= t) {
        if (paced && vnow() < ns) clock.sleep_until(due_wall(ns));
        continue;  // next iteration's poll picks it up
      }
    }

    if (t == kTimeInfinity) {
      if (!feed_open) {
        if (undone > 0) {
          throw std::logic_error("serve: no events left but " +
                                 std::to_string(undone) + " jobs pending (" +
                                 scheduler->name() + " starved them)");
        }
        continue;  // loop head terminates
      }
      // Live feed, nothing buffered: wait for input.
      clock.sleep_for(options.poll_granularity);
      continue;
    }

    if (paced && vnow() < t) {
      // Wait for the event to fall due — but keep polling a live feed at
      // poll_granularity so an earlier arrival can preempt it.
      const auto due = due_wall(t);
      if (feed_open) {
        clock.sleep_until(
            std::min(due, clock.now() + options.poll_granularity));
      } else {
        clock.sleep_until(due);
      }
      continue;
    }

    // ---- Process the event at t, in the offline simulator's order:
    // completions, fault batch, capacity change, arrivals, re-submissions,
    // starts. One round = one decision sample.
    prev_t = t;
    const auto decision_start = clock.now();

    // (1) completions at t — before fault events, so a job ending exactly
    // when its nodes fail has completed, not been killed.
    completed.clear();
    while (!completions.empty() && completions.top().t == t) {
      const Completion c = completions.top();
      completions.pop();
      if (c.id < frontier) continue;  // stale: attempt of a finished job
      Slot& s = slot_of(c.id);
      if (c.epoch != s.epoch) continue;  // stale: attempt was killed
      free_nodes += s.job.nodes;
      s.running = false;
      s.done = true;
      --undone;
      if (faults_active) {
        active.erase(std::find(active.begin(), active.end(), c.id));
      }
      completed.push_back(c.id);
    }
    for (JobId id : completed) {
      scheduler->on_complete(id, t);
      if (journal != nullptr) {
        if (journal->record_done(id, slot_of(id).epoch, t)) {
          ++report.replayed_decisions;
        } else {
          chaos_tick();
        }
      }
    }

    // (2) fault events at t. A failure first removes capacity; while usage
    // exceeds the surviving capacity, running jobs are killed — latest
    // start first (they lose the least work), larger id on ties.
    resubmit.clear();
    bool capacity_changed = false;
    if (faults_active) {
      const auto& events = options.faults.trace->events;
      while (next_fault < events.size() && events[next_fault].t == t) {
        capacity += events[next_fault].delta;
        free_nodes += events[next_fault].delta;
        ++next_fault;
        capacity_changed = true;
        ++report.capacity_events;
        report.min_capacity = std::min(report.min_capacity, capacity);
        while (free_nodes < 0) {
          std::size_t vi = 0;
          for (std::size_t k = 1; k < active.size(); ++k) {
            const JobId a = active[k];
            const JobId b = active[vi];
            if (slot_of(a).start_of > slot_of(b).start_of ||
                (slot_of(a).start_of == slot_of(b).start_of && a > b)) {
              vi = k;
            }
          }
          const JobId victim = active[vi];
          Slot& s = slot_of(victim);
          free_nodes += s.job.nodes;
          s.running = false;
          ++s.epoch;
          active.erase(active.begin() + static_cast<std::ptrdiff_t>(vi));
          const Duration elapsed = t - s.start_of;
          // Progress excludes the attempt's restart overhead; checkpoints
          // save whole intervals of progress only.
          const Duration overhead_done = std::min(elapsed, s.charged_overhead);
          const Duration progress = elapsed - overhead_done;
          const Duration saved =
              checkpointing ? (progress / recovery.checkpoint_interval) *
                                  recovery.checkpoint_interval
                            : 0;
          s.rem_life -= saved;
          s.pending_overhead = checkpointing ? recovery.restart_overhead : 0;
          aggregator.on_attempt({victim, s.start_of, t, s.job.nodes, saved});
          scheduler->on_complete(victim, t);
          resubmit.push_back(victim);
          ++report.killed;
        }
        aggregator.on_capacity_event(t, capacity);
      }
    }
    if (capacity_changed) {
      scheduler->on_capacity_change(t, capacity);
    }

    // (3) arrivals at t: the journal replay first (it rebuilds the
    // pre-crash state and is always time-ordered before anything fresh —
    // the feed stays closed until it drains), then the live queue.
    while (!replay_queue.empty() && replay_queue.front().submit <= t) {
      deliver(replay_queue.front(), t);
      replay_queue.pop_front();
      if (replay_queue.empty()) {
        const auto elapsed =
            std::chrono::duration_cast<std::chrono::nanoseconds>(clock.now() -
                                                                 epoch);
        report.recovery_replay_seconds =
            static_cast<double>(elapsed.count()) * 1e-9;
        if (options.log) {
          options.log("journal replay complete: " +
                      std::to_string(report.recovered_jobs) +
                      " admission(s) rebuilt in " +
                      std::to_string(report.recovery_replay_seconds) +
                      "s; feed open");
        }
      }
    }
    while (!admission.empty() && admission.front().submit <= t) {
      deliver(admission.front(), t);
      admission.pop_front();
    }

    // (4) re-submissions of the jobs killed at t, with an estimate that
    // covers restart overhead + remaining work + the user's original
    // slack.
    for (JobId id : resubmit) {
      const Slot& s = slot_of(id);
      Job r = s.job;
      const Duration headroom = r.estimate - std::min(r.runtime, r.estimate);
      r.submit = t;
      r.estimate = s.pending_overhead + s.rem_life + headroom;
      scheduler->on_submit(Submission(r), t);
      ++report.requeued;
    }

    // (5) start decisions.
    while (true) {
      scheduler->select_starts(t, free_nodes, starts);
      if (starts.empty()) break;
      for (JobId id : starts) {
        if (id >= frontier + window.size()) {
          throw std::logic_error("serve: scheduler started unknown job");
        }
        if (id < frontier) {
          throw std::logic_error("serve: scheduler started job " +
                                 std::to_string(id) + " twice");
        }
        Slot& s = slot_of(id);
        if (s.running || s.done) {
          throw std::logic_error("serve: scheduler started job " +
                                 std::to_string(id) + " twice");
        }
        if (s.job.nodes > free_nodes) {
          throw std::logic_error(
              "serve: scheduler oversubscribed the machine with job " +
              std::to_string(id));
        }
        free_nodes -= s.job.nodes;
        s.running = true;
        s.start_of = t;
        if (faults_active) active.push_back(id);
        s.charged_overhead = s.pending_overhead;
        s.pending_overhead = 0;
        // Rule 2: jobs run min(runtime, estimate) — here as remaining life
        // plus any checkpoint-restart overhead; one that would exceed its
        // original estimate is cut off there and recorded as cancelled.
        const Duration lifetime = s.charged_overhead + s.rem_life;
        s.rec.submit = s.job.submit;
        s.rec.start = t;
        s.rec.nodes = s.job.nodes;
        s.rec.end = t + lifetime;
        s.rec.cancelled = s.job.runtime > s.job.estimate;
        completions.push({t + lifetime, id, s.epoch});
        if (journal != nullptr) {
          if (journal->record_start(id, s.epoch, t)) {
            ++report.replayed_decisions;
          } else {
            chaos_tick();
          }
        }
      }
    }

    const auto decision_end = clock.now();
    report.decision_latency_ns.record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(decision_end -
                                                             decision_start)
            .count()));
    ++report.decisions;
    report.peak_scheduler_queue =
        std::max(report.peak_scheduler_queue, scheduler->queue_length());

    // Finalize records in JobId order (what makes the aggregator — and its
    // fingerprint — bit-identical to the offline pipeline).
    while (!window.empty() && window.front().done) {
      const Slot& s = window.front();
      aggregator.on_record(frontier, s.rec, s.job);
      report.virtual_makespan = std::max(report.virtual_makespan, s.rec.end);
      ++report.completed;
      window.pop_front();
      ++frontier;
    }

    if (options.report_interval.count() > 0 && options.log &&
        decision_end - last_report >= options.report_interval) {
      last_report = decision_end;
      options.log(
          "t=" + std::to_string(t) + " submitted=" +
          std::to_string(report.submitted) + " completed=" +
          std::to_string(report.completed) + " queue=" +
          std::to_string(scheduler->queue_length()) + " admission=" +
          std::to_string(admission.size()) + " shed=" +
          std::to_string(report.shed_capacity + report.shed_backlog) +
          (faults_active
               ? " capacity=" + std::to_string(capacity) + " killed=" +
                     std::to_string(report.killed)
               : "") +
          " p99=" + std::to_string(report.decision_latency_ns.p99()) + "ns");
    }
  }

  const auto elapsed = std::chrono::duration_cast<std::chrono::nanoseconds>(
      clock.now() - epoch);
  report.wall_seconds = static_cast<double>(elapsed.count()) * 1e-9;
  if (report.wall_seconds > 0) {
    report.jobs_per_second =
        static_cast<double>(report.completed) / report.wall_seconds;
    report.decisions_per_second =
        static_cast<double>(report.decisions) / report.wall_seconds;
  }
  if (journal != nullptr) report.journal_appends = journal->appends();
  if (report.completed > 0) {
    report.metrics = aggregator.finish();
    report.has_metrics = true;
    report.schedule_fnv = report.metrics.schedule_fnv;
    report.wasted_node_seconds = report.metrics.resilience.wasted_node_seconds;
    report.availability = report.metrics.resilience.availability;
  }
  return report;
}

}  // namespace jsched::serve
