#include "serve/daemon.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <queue>
#include <stdexcept>
#include <vector>

namespace jsched::serve {

namespace {

/// A scheduled completion, ordered (t, id) like the offline simulator's.
struct Completion {
  Time t;
  JobId id;
  bool operator>(const Completion& o) const noexcept {
    return t != o.t ? t > o.t : id > o.id;
  }
};

/// Per-live-job state (the fault-free slice of the streaming simulator's
/// Slot): jobs admitted but whose record is not yet final.
struct Slot {
  Job job;
  sim::JobRecord rec;
  bool running = false;
  bool done = false;
};

}  // namespace

ServeReport serve(Feed& feed, const ServeOptions& options) {
  options.machine.validate();
  if (options.queue_capacity < 1) {
    throw std::invalid_argument("serve: queue_capacity must be >= 1");
  }
  if (options.speed < 0) {
    throw std::invalid_argument("serve: speed must be >= 0");
  }

  util::Clock& clock =
      options.clock != nullptr ? *options.clock : util::real_clock();
  const bool paced_at_start = options.speed > 0;
  bool paced = paced_at_start;
  const double speed = options.speed;
  const util::Clock::time_point epoch = clock.now();

  // Virtual/wall mapping. vnow = floor(elapsed * speed); an event at
  // virtual t falls due at epoch + ceil(t / speed) — the ceil guarantees
  // vnow(due(t)) >= t, so sleeping until due never wakes early.
  const auto vnow = [&]() -> Time {
    if (!paced) return kTimeInfinity;
    const auto elapsed = std::chrono::duration_cast<std::chrono::nanoseconds>(
        clock.now() - epoch);
    return static_cast<Time>(
        std::floor(static_cast<double>(elapsed.count()) * speed * 1e-9));
  };
  const auto due_wall = [&](Time t) -> util::Clock::time_point {
    const double ns = std::ceil(static_cast<double>(t) * 1e9 / speed);
    return epoch + std::chrono::nanoseconds(static_cast<std::int64_t>(ns));
  };

  auto scheduler = options.scheduler_factory
                       ? options.scheduler_factory(options.spec)
                       : core::make_scheduler(options.spec);
  scheduler->reset(options.machine);

  ServeReport report;
  report.scheduler_name = scheduler->name();
  metrics::StreamingAggregator aggregator(options.machine.nodes);

  std::priority_queue<Completion, std::vector<Completion>, std::greater<>>
      completions;
  std::deque<Slot> window;  // slots for ids [frontier, frontier+size)
  JobId frontier = 0;
  JobId next_id = 0;
  std::size_t undone = 0;
  int free_nodes = options.machine.nodes;
  Time prev_t = -1;

  std::deque<SubmitRecord> admission;  // accepted, not yet delivered
  std::deque<SubmitRecord> holdover;   // polled, blocked on a full queue
  std::vector<SubmitRecord> batch;
  std::vector<JobId> starts;
  std::vector<JobId> completed;
  starts.reserve(64);
  completed.reserve(64);
  bool feed_open = true;
  Time last_stamp = 0;  // admission stamps are non-decreasing

  const auto slot_of = [&](JobId id) -> Slot& { return window[id - frontier]; };

  // Stamp + enqueue one polled record; returns false when it was dropped
  // (shed / rejected). `from_holdover` marks records admitted late under
  // kBlock backpressure.
  const auto admit = [&](SubmitRecord r, bool from_holdover) {
    if (r.nodes < 1 || r.runtime < 1 || r.estimate < 1 ||
        r.nodes > options.machine.nodes) {
      ++report.rejected_invalid;
      if (options.log) {
        options.log("rejected: " + std::to_string(r.nodes) + " nodes / " +
                    std::to_string(r.estimate) + "s estimate (machine has " +
                    std::to_string(options.machine.nodes) + " nodes)");
      }
      return;
    }
    if (options.max_backlog > 0 &&
        scheduler->queue_length() + admission.size() >= options.max_backlog) {
      ++report.shed_backlog;
      return;
    }
    // Time can only move forward: a live record is stamped "now", and a
    // timed record that shows up after its moment is clamped to the
    // monotone floor (counted — late explicit submits are a client bug
    // worth surfacing, not a daemon crash).
    const Time floor_t = std::max<Time>(last_stamp, std::max<Time>(prev_t, 0));
    Time stamp;
    if (r.submit < 0) {
      const Time v = paced ? vnow() : floor_t;
      stamp = std::max(v, floor_t);
    } else {
      stamp = std::max(r.submit, floor_t);
      if (stamp != r.submit) ++report.late_arrivals;
    }
    if (from_holdover) ++report.delayed_admissions;
    r.submit = stamp;
    last_stamp = stamp;
    admission.push_back(r);
    report.peak_admission_queue =
        std::max(report.peak_admission_queue, admission.size());
  };

  auto last_report = clock.now();

  while (true) {
    // Signals: 1 = drain (stop intake, finish at full speed), 2 = abort.
    if (options.poll_signal) {
      const int sig = options.poll_signal();
      if (sig >= 2) {
        report.aborted = true;
        break;
      }
      if (sig >= 1 && !report.drained) {
        report.drained = true;
        feed_open = false;
        paced = false;
        report.dropped_on_drain += holdover.size();
        holdover.clear();
        if (options.log) {
          options.log("drain: feed closed, finishing " +
                      std::to_string(undone + admission.size()) +
                      " admitted job(s)");
        }
      }
    }

    if (!feed_open && holdover.empty() && admission.empty() && undone == 0) {
      break;  // served everything
    }

    // Move blocked records into the queue as space frees up.
    while (!holdover.empty() && admission.size() < options.queue_capacity) {
      admit(holdover.front(), /*from_holdover=*/true);
      holdover.pop_front();
    }

    // Next event from local state alone.
    Time t = kTimeInfinity;
    if (!admission.empty()) t = admission.front().submit;
    if (!completions.empty()) t = std::min(t, completions.top().t);
    const Time wake = scheduler->next_wakeup(prev_t);
    if (wake > prev_t && wake < t) t = wake;

    // Poll the feed. Paced: deliver whatever wall time has made due.
    // Free-run: deliver only up to the next event (min(t, next_submit)) so
    // a replayed trace streams through the bounded queue instead of being
    // inhaled whole.
    if (feed_open && holdover.empty() &&
        (options.overload == OverloadPolicy::kShed ||
         admission.size() < options.queue_capacity)) {
      const Time ns = feed.next_submit();
      const Time poll_at = paced ? vnow() : std::min(t, ns);
      batch.clear();
      feed_open = feed.poll(poll_at, batch);
      for (const SubmitRecord& r : batch) {
        if (admission.size() >= options.queue_capacity) {
          if (options.overload == OverloadPolicy::kShed) {
            ++report.shed_capacity;
          } else {
            holdover.push_back(r);
          }
          continue;
        }
        if (!holdover.empty()) {
          holdover.push_back(r);  // keep arrival order behind blocked ones
          continue;
        }
        admit(r, /*from_holdover=*/false);
      }
      // Recompute the event horizon — the poll may have admitted earlier
      // arrivals.
      t = kTimeInfinity;
      if (!admission.empty()) t = admission.front().submit;
      if (!completions.empty()) t = std::min(t, completions.top().t);
      const Time wake2 = scheduler->next_wakeup(prev_t);
      if (wake2 > prev_t && wake2 < t) t = wake2;
    }

    // The replay gate: while the feed still knows of arrivals at or before
    // t, admit them first — equal-submit batches must reach the scheduler
    // together, exactly as the offline simulator delivers them. A full
    // kBlock queue overrides the gate (the arrival will be delayed; that
    // is what backpressure means). An idle live feed reports kTimeInfinity
    // and must not trip the gate: with t also infinite that would spin the
    // loop (and feed due_wall an unrepresentable time) instead of falling
    // through to the idle sleep below.
    if (feed_open && holdover.empty()) {
      const Time ns = feed.next_submit();
      if (ns != kTimeInfinity && ns <= t) {
        if (paced && vnow() < ns) clock.sleep_until(due_wall(ns));
        continue;  // next iteration's poll picks it up
      }
    }

    if (t == kTimeInfinity) {
      if (!feed_open) {
        if (undone > 0) {
          throw std::logic_error("serve: no events left but " +
                                 std::to_string(undone) + " jobs pending (" +
                                 scheduler->name() + " starved them)");
        }
        continue;  // loop head terminates
      }
      // Live feed, nothing buffered: wait for input.
      clock.sleep_for(options.poll_granularity);
      continue;
    }

    if (paced && vnow() < t) {
      // Wait for the event to fall due — but keep polling a live feed at
      // poll_granularity so an earlier arrival can preempt it.
      const auto due = due_wall(t);
      if (feed_open) {
        clock.sleep_until(
            std::min(due, clock.now() + options.poll_granularity));
      } else {
        clock.sleep_until(due);
      }
      continue;
    }

    // ---- Process the event at t (offline event order: completions,
    // arrivals, starts). One round = one decision sample.
    prev_t = t;
    const auto decision_start = clock.now();

    completed.clear();
    while (!completions.empty() && completions.top().t == t) {
      const Completion c = completions.top();
      completions.pop();
      Slot& s = slot_of(c.id);
      free_nodes += s.job.nodes;
      s.running = false;
      s.done = true;
      --undone;
      completed.push_back(c.id);
    }
    for (JobId id : completed) scheduler->on_complete(id, t);

    while (!admission.empty() && admission.front().submit <= t) {
      const SubmitRecord r = admission.front();
      admission.pop_front();
      window.emplace_back();
      Slot& s = window.back();
      s.job.id = next_id++;
      s.job.submit = r.submit;
      s.job.nodes = r.nodes;
      s.job.runtime = r.runtime;
      s.job.estimate = r.estimate;
      s.job.user = r.user;
      ++undone;
      ++report.submitted;
      scheduler->on_submit(Submission(s.job), t);
    }

    while (true) {
      scheduler->select_starts(t, free_nodes, starts);
      if (starts.empty()) break;
      for (JobId id : starts) {
        if (id >= frontier + window.size()) {
          throw std::logic_error("serve: scheduler started unknown job");
        }
        if (id < frontier) {
          throw std::logic_error("serve: scheduler started job " +
                                 std::to_string(id) + " twice");
        }
        Slot& s = slot_of(id);
        if (s.running || s.done) {
          throw std::logic_error("serve: scheduler started job " +
                                 std::to_string(id) + " twice");
        }
        if (s.job.nodes > free_nodes) {
          throw std::logic_error(
              "serve: scheduler oversubscribed the machine with job " +
              std::to_string(id));
        }
        free_nodes -= s.job.nodes;
        s.running = true;
        // Rule 2: jobs run min(runtime, estimate); one that would exceed
        // its estimate is cut off there and recorded as cancelled.
        const Duration lifetime = std::min(s.job.runtime, s.job.estimate);
        s.rec.submit = s.job.submit;
        s.rec.start = t;
        s.rec.nodes = s.job.nodes;
        s.rec.end = t + lifetime;
        s.rec.cancelled = s.job.runtime > s.job.estimate;
        completions.push({t + lifetime, id});
      }
    }

    const auto decision_end = clock.now();
    report.decision_latency_ns.record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(decision_end -
                                                             decision_start)
            .count()));
    ++report.decisions;
    report.peak_scheduler_queue =
        std::max(report.peak_scheduler_queue, scheduler->queue_length());

    // Finalize records in JobId order (what makes the aggregator — and its
    // fingerprint — bit-identical to the offline pipeline).
    while (!window.empty() && window.front().done) {
      const Slot& s = window.front();
      aggregator.on_record(frontier, s.rec, s.job);
      report.virtual_makespan = std::max(report.virtual_makespan, s.rec.end);
      ++report.completed;
      window.pop_front();
      ++frontier;
    }

    if (options.report_interval.count() > 0 && options.log &&
        decision_end - last_report >= options.report_interval) {
      last_report = decision_end;
      options.log(
          "t=" + std::to_string(t) + " submitted=" +
          std::to_string(report.submitted) + " completed=" +
          std::to_string(report.completed) + " queue=" +
          std::to_string(scheduler->queue_length()) + " admission=" +
          std::to_string(admission.size()) + " shed=" +
          std::to_string(report.shed_capacity + report.shed_backlog) +
          " p99=" + std::to_string(report.decision_latency_ns.p99()) + "ns");
    }
  }

  const auto elapsed = std::chrono::duration_cast<std::chrono::nanoseconds>(
      clock.now() - epoch);
  report.wall_seconds = static_cast<double>(elapsed.count()) * 1e-9;
  if (report.wall_seconds > 0) {
    report.jobs_per_second =
        static_cast<double>(report.completed) / report.wall_seconds;
    report.decisions_per_second =
        static_cast<double>(report.decisions) / report.wall_seconds;
  }
  if (report.completed > 0) {
    report.metrics = aggregator.finish();
    report.has_metrics = true;
    report.schedule_fnv = report.metrics.schedule_fnv;
  }
  return report;
}

}  // namespace jsched::serve
